// Command contrasim runs a single routing experiment on the
// packet-level simulator: a flow-completion-time run or a
// link-failure (failover) run, for Contra or any baseline. Both modes
// are scenarios under the hood; -fail and -failover simply add events
// to the scenario's script.
//
// Usage:
//
//	contrasim -topo dc -scheme contra -dist websearch -load 0.6
//	contrasim -topo dc -scheme ecmp -load 0.4 -queues
//	contrasim -topo dc -scheme contra -failover
//	contrasim -topo abilene+hosts -scheme spain -dist cache -load 0.3
//	contrasim -topo dc -scheme contra -fail E0-A0 -load 0.5
package main

import (
	"flag"
	"fmt"
	"os"

	"contra/internal/cliutil"
	"contra/internal/scenario"
)

func main() {
	topoSpec := flag.String("topo", "dc", "topology spec")
	scheme := flag.String("scheme", "contra", "contra|ecmp|hula|spain|sp")
	policyArg := flag.String("policy", "minimize(path.util)", "Contra policy source or @file")
	dist := flag.String("dist", "websearch", "websearch|cache")
	load := flag.Float64("load", 0.5, "offered load fraction")
	durationMs := flag.Int("duration", 20, "arrival window in ms")
	maxFlows := flag.Int("maxflows", 4000, "cap on generated flows")
	seed := flag.Int64("seed", 1, "workload seed")
	queues := flag.Bool("queues", false, "print queue length CDF")
	loops := flag.Bool("loops", false, "track looped traffic")
	failover := flag.Bool("failover", false, "run the Figure 14 failover experiment instead")
	failLink := flag.String("fail", "", "pre-fail link `A-B` (asymmetric topology)")
	packing := flag.Bool("probe-packing", false, "pack multi-origin probes into one frame per port per period (contra/hula)")
	suppressEps := flag.Float64("suppress-eps", 0, "delta-suppression epsilon; > 0 (or -refresh-every) enables suppression")
	refreshEvery := flag.Int("refresh-every", 0, "forced re-advertisement every N probe periods under suppression (default 4)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to `file` (pprof)")
	memProfile := flag.String("memprofile", "", "write a heap profile to `file` at exit (pprof)")
	flag.Parse()

	stop, err := cliutil.StartProfiles(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "contrasim:", err)
		os.Exit(1)
	}
	runErr := run(*topoSpec, *scheme, *policyArg, *dist, *load, *durationMs,
		*maxFlows, *seed, *queues, *loops, *failover, *failLink,
		*packing, *suppressEps, *refreshEvery)
	if err := stop(); err != nil && runErr == nil {
		runErr = err
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "contrasim:", runErr)
		os.Exit(1)
	}
}

func run(topoSpec, scheme, policyArg, dist string, load float64, durationMs,
	maxFlows int, seed int64, queues, loops, failover bool, failLink string,
	packing bool, suppressEps float64, refreshEvery int) error {
	src, err := cliutil.ReadPolicyArg(policyArg)
	if err != nil {
		return err
	}
	s := scenario.Scenario{
		Name:         topoSpec + "/" + scheme,
		TopoSpec:     topoSpec,
		Scheme:       scenario.Scheme(scheme),
		Policy:       src,
		Seed:         seed,
		SampleQueues: queues,
		TrackLoops:   loops,
		ProbePacking: packing,
		SuppressEps:  suppressEps,
		RefreshEvery: refreshEvery,
	}
	if failLink != "" {
		// A pre-failed link is a link_down event at t=0: the scenario
		// engine marks it down in the topology before routers deploy,
		// so schemes with offline path computation see the asymmetry.
		s.Events = append(s.Events, scenario.Event{Kind: scenario.LinkDown, AtNs: 0, Link: failLink})
	}

	if failover {
		s.Workload = scenario.Workload{Kind: scenario.WorkloadCBR}
		s.Events = append(s.Events, scenario.Event{Kind: scenario.LinkDown, AtNs: 50_000_000, Link: "auto"})
		res, err := scenario.Run(s)
		if err != nil {
			return err
		}
		fmt.Printf("baseline %.2f Gbps, dip to %.2f Gbps, recovery %.2f ms after failure\n",
			res.BaselineBps/1e9, res.MinBps/1e9, float64(res.RecoveryNs)/1e6)
		for _, p := range res.Series {
			mark := ""
			if p.T >= res.FailAtNs && p.T < res.FailAtNs+res.BinNs {
				mark = "  <- link fails"
			}
			fmt.Printf("t=%6.2fms  %6.2f Gbps%s\n", float64(p.T)/1e6, p.V/1e9, mark)
		}
		return nil
	}

	s.Workload = scenario.Workload{
		Kind:       scenario.WorkloadFCT,
		Dist:       dist,
		Load:       load,
		DurationNs: int64(durationMs) * 1_000_000,
		MaxFlows:   maxFlows,
	}
	res, err := scenario.Run(s)
	if err != nil {
		return err
	}
	fmt.Println(res)
	fmt.Printf("fabric bytes: data=%.0f ack=%.0f probe=%.0f tag=%.0f (probe share %.3f%%)\n",
		res.DataBytes, res.AckBytes, res.ProbeBytes, res.TagBytes, 100*res.ProbeFrac())
	if res.ProbeTxSaved > 0 || res.ProbeSuppressed > 0 {
		fmt.Printf("probe aggregation: %.0f probe transmissions avoided, %.0f re-advertisements suppressed\n",
			res.ProbeTxSaved, res.ProbeSuppressed)
	}
	if loops {
		fmt.Printf("looped traffic: %.4f%% of data packets, %d loop breaks\n",
			100*res.LoopedFrac, int64(res.LoopBreaks))
	}
	if queues {
		fmt.Println("queue length CDF (MSS):")
		for _, q := range []float64{0.5, 0.9, 0.99, 1.0} {
			fmt.Printf("  p%-4g %8.1f\n", q*100, res.QueueMSS.Quantile(q))
		}
	}
	fmt.Printf("simulated %.2fms in %v\n", float64(res.SimulatedNs)/1e6, res.WallTime)
	return nil
}
