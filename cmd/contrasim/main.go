// Command contrasim runs a single routing experiment on the
// packet-level simulator: a flow-completion-time run or a
// link-failure (failover) run, for Contra or any baseline. Both modes
// are scenarios under the hood; -fail and -failover simply add events
// to the scenario's script.
//
// Usage:
//
//	contrasim -topo dc -scheme contra -dist websearch -load 0.6
//	contrasim -topo dc -scheme ecmp -load 0.4 -queues
//	contrasim -topo dc -scheme contra -failover
//	contrasim -topo abilene+hosts -scheme spain -dist cache -load 0.3
//	contrasim -topo dc -scheme contra -fail l0-s0 -load 0.5
//	contrasim -topo dc -scheme contra -trace-level decisions -trace-out trace.jsonl
//	contrasim -topo dc -scheme contra -class-stats -counterfactual 10
//	contrasim -topo dc -scheme contra -load 0.6 -record run.flow.jsonl
//	contrasim -topo dc -scheme contra -replay run.flow.jsonl
package main

import (
	"flag"
	"fmt"
	"os"

	"contra/internal/cliutil"
	"contra/internal/scenario"
	"contra/internal/trace"
)

// obsOpts bundles the observability flags: decision tracing, per-class
// FCT attribution, and counterfactual what-if replay.
type obsOpts struct {
	traceLevel      string
	traceOut        string
	classStats      bool
	elephantBytes   int64
	counterK        int
	counterMode     string
	metricsInterval int64
	metricsOut      string
}

func main() {
	topoSpec := flag.String("topo", "dc", "topology spec")
	scheme := flag.String("scheme", "contra", "contra|ecmp|hula|spain|sp")
	policyArg := flag.String("policy", "minimize(path.util)", "Contra policy source or @file")
	dist := flag.String("dist", "websearch", "websearch|cache")
	load := flag.Float64("load", 0.5, "offered load fraction")
	durationMs := flag.Int("duration", 20, "arrival window in ms")
	maxFlows := flag.Int("maxflows", 4000, "cap on generated flows")
	seed := flag.Int64("seed", 1, "workload seed")
	queues := flag.Bool("queues", false, "print queue length CDF")
	loops := flag.Bool("loops", false, "track looped traffic")
	failover := flag.Bool("failover", false, "run the Figure 14 failover experiment instead")
	failLink := flag.String("fail", "", "pre-fail link `A-B` (asymmetric topology)")
	packing := flag.Bool("probe-packing", false, "pack multi-origin probes into one frame per port per period (contra/hula)")
	suppressEps := flag.Float64("suppress-eps", 0, "delta-suppression epsilon; > 0 (or -refresh-every) enables suppression")
	refreshEvery := flag.Int("refresh-every", 0, "forced re-advertisement every N probe periods under suppression (default 4)")
	record := flag.String("record", "", "capture the offered flows as a v1 flow trace in `file` (see docs/trace-format.md)")
	replay := flag.String("replay", "", "replay the flows recorded in `file` instead of generating a workload (byte-identical results given the same non-workload flags)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to `file` (pprof)")
	memProfile := flag.String("memprofile", "", "write a heap profile to `file` at exit (pprof)")
	var obs obsOpts
	flag.StringVar(&obs.traceLevel, "trace-level", "off", "decision tracing: off|flows|decisions")
	flag.StringVar(&obs.traceOut, "trace-out", "", "write the trace as JSONL to `file` (- for stdout)")
	flag.BoolVar(&obs.classStats, "class-stats", false, "report per-class FCT attribution (elephants vs mice, Jain index)")
	flag.Int64Var(&obs.elephantBytes, "elephant-bytes", 0, "elephant/mice size threshold in bytes (default 1MB)")
	flag.IntVar(&obs.counterK, "counterfactual", 0, "replay with the top-`K` divergent flows pinned to the counterfactual choice and report per-flow ΔFCT")
	flag.StringVar(&obs.counterMode, "counterfactual-mode", "runnerup", "counterfactual choice: runnerup|ecmp|hula")
	flag.Int64Var(&obs.metricsInterval, "metrics-interval", 0, "sample network telemetry every `ns` of simulated time (0 = off)")
	flag.StringVar(&obs.metricsOut, "metrics-out", "", "write the telemetry samples as JSONL to `file` (- for stdout)")
	flag.Parse()

	stop, err := cliutil.StartProfiles(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "contrasim:", err)
		os.Exit(1)
	}
	runErr := run(*topoSpec, *scheme, *policyArg, *dist, *load, *durationMs,
		*maxFlows, *seed, *queues, *loops, *failover, *failLink,
		*packing, *suppressEps, *refreshEvery, *record, *replay, obs)
	if err := stop(); err != nil && runErr == nil {
		runErr = err
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "contrasim:", runErr)
		os.Exit(1)
	}
}

func run(topoSpec, scheme, policyArg, dist string, load float64, durationMs,
	maxFlows int, seed int64, queues, loops, failover bool, failLink string,
	packing bool, suppressEps float64, refreshEvery int, record, replay string, obs obsOpts) error {
	src, err := cliutil.ReadPolicyArg(policyArg)
	if err != nil {
		return err
	}
	if _, err := trace.ParseLevel(obs.traceLevel); err != nil {
		return err
	}
	if (record != "" || replay != "") && obs.counterK > 0 {
		return fmt.Errorf("-record/-replay do not combine with -counterfactual")
	}
	if obs.traceOut != "" && (obs.traceLevel == "" || obs.traceLevel == "off") {
		return fmt.Errorf("-trace-out needs -trace-level flows or decisions")
	}
	if obs.metricsOut != "" && obs.metricsInterval <= 0 {
		return fmt.Errorf("-metrics-out needs -metrics-interval > 0")
	}
	s := scenario.Scenario{
		Name:              topoSpec + "/" + scheme,
		TopoSpec:          topoSpec,
		Scheme:            scenario.Scheme(scheme),
		Policy:            src,
		Seed:              seed,
		SampleQueues:      queues,
		TrackLoops:        loops,
		ProbePacking:      packing,
		SuppressEps:       suppressEps,
		RefreshEvery:      refreshEvery,
		TraceLevel:        obs.traceLevel,
		ClassStats:        obs.classStats,
		ElephantBytes:     obs.elephantBytes,
		MetricsIntervalNs: obs.metricsInterval,
	}
	if failLink != "" {
		// A pre-failed link is a link_down event at t=0: the scenario
		// engine marks it down in the topology before routers deploy,
		// so schemes with offline path computation see the asymmetry.
		s.Events = append(s.Events, scenario.Event{Kind: scenario.LinkDown, AtNs: 0, Link: failLink})
	}

	s.RecordFlows = record != ""

	if failover {
		s.Workload = scenario.Workload{Kind: scenario.WorkloadCBR}
		if replay != "" {
			// Replay reproduces the recorded arrivals; the event script
			// (here the failover link_down) still comes from the flags.
			s.Workload = scenario.Workload{Kind: scenario.WorkloadTrace, TracePath: replay}
		}
		s.Events = append(s.Events, scenario.Event{Kind: scenario.LinkDown, AtNs: 50_000_000, Link: "auto"})
		res, err := scenario.Run(s)
		if err != nil {
			return err
		}
		if err := writeFlowTrace(res, record); err != nil {
			return err
		}
		fmt.Printf("baseline %.2f Gbps, dip to %.2f Gbps, recovery %.2f ms after failure\n",
			res.BaselineBps/1e9, res.MinBps/1e9, float64(res.RecoveryNs)/1e6)
		for _, p := range res.Series {
			mark := ""
			if p.T >= res.FailAtNs && p.T < res.FailAtNs+res.BinNs {
				mark = "  <- link fails"
			}
			fmt.Printf("t=%6.2fms  %6.2f Gbps%s\n", float64(p.T)/1e6, p.V/1e9, mark)
		}
		printTraceSummary(res)
		printMetricsSummary(res)
		if err := writeTrace(res, obs.traceOut); err != nil {
			return err
		}
		return writeMetrics(res, obs.metricsOut)
	}

	s.Workload = scenario.Workload{
		Kind:       scenario.WorkloadFCT,
		Dist:       dist,
		Load:       load,
		DurationNs: int64(durationMs) * 1_000_000,
		MaxFlows:   maxFlows,
	}
	if replay != "" {
		s.Workload = scenario.Workload{Kind: scenario.WorkloadTrace, TracePath: replay}
	}

	if obs.counterK > 0 {
		rep, baseRes, err := scenario.Counterfactual(s, scenario.CounterfactualConfig{
			TopK: obs.counterK, Mode: obs.counterMode,
		})
		if err != nil {
			return err
		}
		fmt.Println(baseRes)
		printClasses(baseRes)
		printCounterfactual(rep)
		if err := writeTrace(baseRes, obs.traceOut); err != nil {
			return err
		}
		return writeMetrics(baseRes, obs.metricsOut)
	}

	res, err := scenario.Run(s)
	if err != nil {
		return err
	}
	fmt.Println(res)
	printClasses(res)
	printTraceSummary(res)
	printMetricsSummary(res)
	if err := writeFlowTrace(res, record); err != nil {
		return err
	}
	if err := writeTrace(res, obs.traceOut); err != nil {
		return err
	}
	if err := writeMetrics(res, obs.metricsOut); err != nil {
		return err
	}
	fmt.Printf("fabric bytes: data=%.0f ack=%.0f probe=%.0f tag=%.0f (probe share %.3f%%)\n",
		res.DataBytes, res.AckBytes, res.ProbeBytes, res.TagBytes, 100*res.ProbeFrac())
	if res.ProbeTxSaved > 0 || res.ProbeSuppressed > 0 {
		fmt.Printf("probe aggregation: %.0f probe transmissions avoided, %.0f re-advertisements suppressed\n",
			res.ProbeTxSaved, res.ProbeSuppressed)
	}
	if loops {
		fmt.Printf("looped traffic: %.4f%% of data packets, %d loop breaks\n",
			100*res.LoopedFrac, int64(res.LoopBreaks))
	}
	if queues {
		fmt.Println("queue length CDF (MSS):")
		for _, q := range []float64{0.5, 0.9, 0.99, 1.0} {
			fmt.Printf("  p%-4g %8.1f\n", q*100, res.QueueMSS.Quantile(q))
		}
	}
	fmt.Printf("simulated %.2fms in %v\n", float64(res.SimulatedNs)/1e6, res.WallTime)
	return nil
}

// printTraceSummary reports the trace volume when tracing was on.
func printTraceSummary(res *scenario.Result) {
	if res.Trace == nil {
		return
	}
	fmt.Printf("trace: level=%s flows=%d decisions=%d divergent=%d\n",
		res.TraceLevel, res.TraceFlows, res.TraceDecisions, res.TraceDivergent)
}

// printClasses reports the per-class FCT attribution block.
func printClasses(res *scenario.Result) {
	c := res.Classes
	if c == nil {
		return
	}
	fmt.Printf("classes (elephant >= %d B): jain=%.4f\n", c.ElephantBytes, c.Jain)
	fmt.Printf("  mice:      flows=%-5d mean=%.3fms p50=%.3fms p95=%.3fms p99=%.3fms jain=%.4f\n",
		c.Mice.Flows, c.Mice.MeanMs, c.Mice.P50Ms, c.Mice.P95Ms, c.Mice.P99Ms, c.JainMice)
	fmt.Printf("  elephants: flows=%-5d mean=%.3fms p50=%.3fms p95=%.3fms p99=%.3fms jain=%.4f\n",
		c.Elephants.Flows, c.Elephants.MeanMs, c.Elephants.P50Ms, c.Elephants.P95Ms, c.Elephants.P99Ms, c.JainElephants)
	for _, co := range c.Cohorts {
		fmt.Printf("  cohort %d:  flows=%-5d mean=%.3fms p99=%.3fms\n",
			co.Cohort, co.Flows, co.MeanMs, co.P99Ms)
	}
}

// printCounterfactual renders the per-flow ΔFCT table of a what-if
// replay. Negative delta: the counterfactual choice would have been
// faster for that flow.
func printCounterfactual(rep *scenario.CounterfactualReport) {
	fmt.Printf("counterfactual (%s): %d/%d decisions divergent, %d candidate flows, pinned top %d\n",
		rep.Mode, rep.BaseDivergent, rep.BaseDecisions, rep.Candidates, len(rep.Flows))
	if len(rep.Flows) == 0 {
		return
	}
	fmt.Printf("  %-12s %-8s %-8s %10s %6s %12s %12s %10s\n",
		"flow", "src", "dst", "bytes", "div", "base_ms", "alt_ms", "delta")
	for _, f := range rep.Flows {
		alt, delta := "lost", "-"
		if f.AltFctNs >= 0 {
			alt = fmt.Sprintf("%.3f", float64(f.AltFctNs)/1e6)
			delta = fmt.Sprintf("%+.1f%%", f.DeltaPct)
		}
		fmt.Printf("  %-12d %-8s %-8s %10d %6d %12.3f %12s %10s\n",
			f.Flow, f.Src, f.Dst, f.SizeBytes, f.Divergent,
			float64(f.BaseFctNs)/1e6, alt, delta)
	}
}

// printMetricsSummary reports the telemetry volume when sampling was
// on.
func printMetricsSummary(res *scenario.Result) {
	if res.Metrics == nil {
		return
	}
	fmt.Printf("metrics: interval=%dns samples=%d links=%d routers=%d dropped=%d\n",
		res.Metrics.IntervalNs(), res.Metrics.Samples(),
		len(res.Metrics.Links()), len(res.Metrics.Routers()), res.Metrics.Dropped())
}

// writeMetrics emits the recorded telemetry samples as JSONL.
func writeMetrics(res *scenario.Result, out string) error {
	if out == "" {
		return nil
	}
	if res.Metrics == nil {
		return fmt.Errorf("-metrics-out: no telemetry was recorded")
	}
	if out == "-" {
		return res.Metrics.WriteJSONL(os.Stdout)
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	if err := res.Metrics.WriteJSONL(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeFlowTrace writes the captured flow trace (-record).
func writeFlowTrace(res *scenario.Result, out string) error {
	if out == "" {
		return nil
	}
	if res.FlowTrace == nil {
		return fmt.Errorf("-record: no flow trace was captured")
	}
	if err := res.FlowTrace.WriteFile(out); err != nil {
		return err
	}
	fmt.Printf("recorded %d flow(s) to %s\n", len(res.FlowTrace.Flows), out)
	return nil
}

// writeTrace emits the recorded trace as JSONL.
func writeTrace(res *scenario.Result, out string) error {
	if out == "" {
		return nil
	}
	if res.Trace == nil {
		return fmt.Errorf("-trace-out: no trace was recorded")
	}
	if out == "-" {
		return res.Trace.WriteJSONL(os.Stdout)
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	if err := res.Trace.WriteJSONL(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
