// Command contrasim runs a single routing experiment on the
// packet-level simulator: a flow-completion-time run or a
// link-failure (failover) run, for Contra or any baseline.
//
// Usage:
//
//	contrasim -topo dc -scheme contra -dist websearch -load 0.6
//	contrasim -topo dc -scheme ecmp -load 0.4 -queues
//	contrasim -topo dc -scheme contra -failover
//	contrasim -topo abilene+hosts -scheme spain -dist cache -load 0.3
package main

import (
	"flag"
	"fmt"
	"os"

	"contra"
	"contra/internal/cliutil"
	"contra/internal/workload"
)

func main() {
	topoSpec := flag.String("topo", "dc", "topology spec")
	scheme := flag.String("scheme", "contra", "contra|ecmp|hula|spain|sp")
	policyArg := flag.String("policy", "minimize(path.util)", "Contra policy source or @file")
	dist := flag.String("dist", "websearch", "websearch|cache")
	load := flag.Float64("load", 0.5, "offered load fraction")
	durationMs := flag.Int("duration", 20, "arrival window in ms")
	maxFlows := flag.Int("maxflows", 4000, "cap on generated flows")
	seed := flag.Int64("seed", 1, "workload seed")
	queues := flag.Bool("queues", false, "print queue length CDF")
	loops := flag.Bool("loops", false, "track looped traffic")
	failover := flag.Bool("failover", false, "run the Figure 14 failover experiment instead")
	failLink := flag.String("fail", "", "pre-fail link `A-B` (asymmetric topology)")
	flag.Parse()

	if err := run(*topoSpec, *scheme, *policyArg, *dist, *load, *durationMs,
		*maxFlows, *seed, *queues, *loops, *failover, *failLink); err != nil {
		fmt.Fprintln(os.Stderr, "contrasim:", err)
		os.Exit(1)
	}
}

func run(topoSpec, scheme, policyArg, dist string, load float64, durationMs,
	maxFlows int, seed int64, queues, loops, failover bool, failLink string) error {
	g, err := cliutil.BuildTopology(topoSpec)
	if err != nil {
		return err
	}
	if failLink != "" {
		var a, b string
		if _, err := fmt.Sscanf(failLink, "%s", &a); err != nil || len(failLink) == 0 {
			return fmt.Errorf("bad -fail %q, want A-B", failLink)
		}
		n, err := splitLink(failLink)
		if err != nil {
			return err
		}
		a, b = n[0], n[1]
		na, ok := g.NodeByName(a)
		if !ok {
			return fmt.Errorf("unknown node %q", a)
		}
		nb, ok := g.NodeByName(b)
		if !ok {
			return fmt.Errorf("unknown node %q", b)
		}
		l := g.LinkBetween(na, nb)
		if l == nil {
			return fmt.Errorf("no link %s-%s", a, b)
		}
		g.SetDown(l.ID, true)
	}
	src, err := cliutil.ReadPolicyArg(policyArg)
	if err != nil {
		return err
	}

	if failover {
		res, err := contra.RunFailover(contra.FailoverConfig{
			Topo: g, Scheme: contra.Scheme(scheme), PolicySrc: src, Seed: seed,
		})
		if err != nil {
			return err
		}
		fmt.Printf("baseline %.2f Gbps, dip to %.2f Gbps, recovery %.2f ms after failure\n",
			res.BaselineBps/1e9, res.MinBps/1e9, float64(res.RecoveryNs)/1e6)
		for _, p := range res.Series {
			mark := ""
			if p.T >= res.FailAtNs && p.T < res.FailAtNs+int64(res.BinNs) {
				mark = "  <- link fails"
			}
			fmt.Printf("t=%6.2fms  %6.2f Gbps%s\n", float64(p.T)/1e6, p.V/1e9, mark)
		}
		return nil
	}

	d, err := workload.ByName(dist)
	if err != nil {
		return err
	}
	res, err := contra.RunFCT(contra.FCTConfig{
		Topo: g, Scheme: contra.Scheme(scheme), PolicySrc: src,
		Dist: d, Load: load, DurationNs: int64(durationMs) * 1_000_000,
		MaxFlows: maxFlows, Seed: seed,
		SampleQueues: queues, TrackLoops: loops,
	})
	if err != nil {
		return err
	}
	fmt.Println(res)
	fmt.Printf("fabric bytes: data=%.0f ack=%.0f probe=%.0f tag=%.0f (probe share %.3f%%)\n",
		res.DataBytes, res.AckBytes, res.ProbeBytes, res.TagBytes,
		100*res.ProbeBytes/res.FabricBytes)
	if loops {
		fmt.Printf("looped traffic: %.4f%% of data packets, %d loop breaks\n",
			100*res.LoopedFrac, int64(res.LoopBreaks))
	}
	if queues {
		fmt.Println("queue length CDF (MSS):")
		for _, q := range []float64{0.5, 0.9, 0.99, 1.0} {
			fmt.Printf("  p%-4g %8.1f\n", q*100, res.QueueMSS.Quantile(q))
		}
	}
	fmt.Printf("simulated %v in %v\n", res.SimulatedTime, res.WallTime)
	return nil
}

func splitLink(s string) ([2]string, error) {
	for i := 1; i < len(s)-1; i++ {
		if s[i] == '-' {
			return [2]string{s[:i], s[i+1:]}, nil
		}
	}
	return [2]string{}, fmt.Errorf("bad link spec %q, want A-B", s)
}
