// Command contracamp runs a scenario campaign: it expands a JSON spec
// (topologies × schemes × loads × event scripts × seeds) into
// scenarios, executes them on a bounded worker pool, and writes the
// aggregated results as JSON and/or CSV plus a scheme-comparison
// table.
//
// Usage:
//
//	contracamp -spec examples/campaign/campaign.json -workers 8 -out results.json
//	contracamp -spec campaign.json -workers 1 -csv results.csv -q
//
// Campaign output is deterministic: the same spec produces
// byte-identical JSON/CSV whatever the worker count.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"

	"contra/internal/campaign"
	"contra/internal/cliutil"
)

func main() {
	spec := flag.String("spec", "", "campaign spec file (JSON, required)")
	workers := flag.Int("workers", runtime.NumCPU(), "parallel scenario workers")
	out := flag.String("out", "", "write aggregated results JSON to `file` (- for stdout)")
	csvOut := flag.String("csv", "", "write per-scenario CSV to `file` (- for stdout)")
	quiet := flag.Bool("q", false, "suppress per-scenario progress")
	noTable := flag.Bool("notable", false, "skip the scheme-comparison table")
	flag.Parse()

	if *spec == "" {
		fmt.Fprintln(os.Stderr, "contracamp: -spec is required")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*spec, *workers, *out, *csvOut, *quiet, *noTable); err != nil {
		fmt.Fprintln(os.Stderr, "contracamp:", err)
		os.Exit(1)
	}
}

func run(specPath string, workers int, out, csvOut string, quiet, noTable bool) error {
	spec, err := campaign.LoadFile(specPath)
	if err != nil {
		return err
	}
	opts := campaign.Options{Workers: workers}
	if !quiet {
		fmt.Fprintf(os.Stderr, "campaign %q: %d scenarios on %d workers\n",
			spec.Name, spec.Size(), workers)
		opts.Progress = func(done, total int, o *campaign.Outcome) {
			status := "ok"
			if o.Err != "" {
				status = "FAIL: " + o.Err
			} else if o.Result != nil && o.Result.Flows > 0 {
				status = fmt.Sprintf("done=%d/%d p99=%.3fms",
					o.Result.Completed, o.Result.Flows, o.Result.P99FCT*1e3)
			}
			fmt.Fprintf(os.Stderr, "[%3d/%3d] %-40s %s\n", done, total, o.Scenario.Name, status)
		}
	}
	report, err := campaign.Run(spec, opts)
	if err != nil {
		return err
	}

	if out != "" {
		if err := writeTo(out, report.WriteJSON); err != nil {
			return err
		}
	}
	if csvOut != "" {
		if err := writeTo(csvOut, report.WriteCSV); err != nil {
			return err
		}
	}
	if !noTable {
		header, rows := report.ComparisonTable(spec.Schemes)
		cliutil.Table(header, rows)
	}
	if n := report.Failed(); n > 0 {
		return fmt.Errorf("%d of %d scenarios failed", n, len(report.Outcomes))
	}
	return nil
}

// writeTo streams an encoder to a file path, "-" meaning stdout.
func writeTo(path string, write func(w io.Writer) error) error {
	if path == "-" {
		return write(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
