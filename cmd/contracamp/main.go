// Command contracamp runs scenario campaigns: it expands a JSON spec
// (topologies × schemes × loads × event scripts × seeds) into
// scenarios, executes them on a bounded worker pool, and renders the
// results as JSON, CSV, a scheme-comparison table, and seed-aggregated
// figure data.
//
// One-process campaigns hold the report in memory:
//
//	contracamp -spec examples/campaign/campaign.json -workers 8 -out results.json -csv results.csv
//
// Large sweeps shard across processes or machines, stream every
// outcome to a JSONL file as it completes, and checkpoint completed
// scenarios so an interrupted run resumes where it stopped:
//
//	contracamp -spec sweep.json -shard 0/2 -stream s0.jsonl -checkpoint s0.ck
//	contracamp -spec sweep.json -shard 1/2 -stream s1.jsonl -checkpoint s1.ck
//	contracamp -spec sweep.json -shard 0/2 -stream s0.jsonl -checkpoint s0.ck -resume   # after a crash
//	contracamp -merge s0.jsonl,s1.jsonl -out merged.json -csv merged.csv
//	contracamp -aggregate merged.json -agg-csv agg.csv -fct-csv fct.csv -rec-csv rec.csv
//
// The fault-tolerant fabric replaces static sharding when workers may
// crash: a coordinator leases cells to workers over HTTP, re-leases
// them if a worker stops heartbeating, steals stragglers' cells near
// the end, and deduplicates results so the merged output is
// byte-identical to a single-process run:
//
//	contracamp -spec sweep.json -serve :7070 -stream out.jsonl -workers 4   # local fleet
//	contracamp -worker http://host:7070 -worker-dir /tmp/w0                 # extra workers, any machine
//	contracamp -spec sweep.json -serve :7070 -stream out.jsonl -resume      # restarted coordinator
//
// Campaign output is deterministic: the same spec produces
// byte-identical JSON/CSV whatever the worker count, shard count,
// completion order, or number of crash/resume cycles.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"contra/internal/agg"
	"contra/internal/campaign"
	"contra/internal/cliutil"
	"contra/internal/dist"
	"contra/internal/figures"
	"contra/internal/flowtrace"
	"contra/internal/scenario"
	"contra/internal/trace"
)

type options struct {
	spec            string
	workers         int
	out             string
	csvOut          string
	quiet           bool
	noTable         bool
	traceLevel      string
	traceDir        string
	recordDir       string
	metricsInterval int64
	metricsDir      string
	figuresDir      string
	progressEvery   time.Duration

	shard      string
	stream     string
	checkpoint string
	resume     bool

	serve      string
	urlFile    string
	leaseTTL   time.Duration
	stealAfter time.Duration
	journal    string
	worker     string
	workerDir  string
	workerID   string

	postmortem string
	statusURL  string
	watch      time.Duration

	cellTimeout time.Duration
	strict      bool

	merge     string
	aggregate string
	aggCSV    string
	fctCSV    string
	recCSV    string

	cpuProfile string
	memProfile string
}

func main() {
	var o options
	flag.StringVar(&o.spec, "spec", "", "campaign spec file (JSON; required unless -merge/-aggregate)")
	flag.IntVar(&o.workers, "workers", runtime.NumCPU(), "parallel scenario workers")
	flag.StringVar(&o.out, "out", "", "write results JSON to `file` (- for stdout)")
	flag.StringVar(&o.csvOut, "csv", "", "write per-scenario CSV to `file` (- for stdout)")
	flag.BoolVar(&o.quiet, "q", false, "suppress per-scenario progress")
	flag.BoolVar(&o.noTable, "notable", false, "skip the scheme-comparison table")
	flag.StringVar(&o.traceLevel, "trace-level", "", "override the spec's trace_level (off|flows|decisions; off clears it)")
	flag.StringVar(&o.traceDir, "trace-dir", "", "write per-scenario trace JSONL files into `dir` (in-memory runs only)")
	flag.StringVar(&o.recordDir, "record-dir", "", "record each cell's flow trace into `dir` as <cell name>.flow.jsonl; a trace-kind spec pointing workload.trace at the dir replays the campaign byte-identically (see docs/trace-format.md)")
	flag.Int64Var(&o.metricsInterval, "metrics-interval", -1, "override the spec's metrics_interval_ns: sample telemetry every `ns` (0 forces off, -1 leaves the spec)")
	flag.StringVar(&o.metricsDir, "metrics-dir", "", "write per-scenario telemetry JSONL files into `dir` (in-memory runs only)")
	flag.StringVar(&o.figuresDir, "figures", "", "emit paper-figure gnuplot data into `dir` (in-memory runs only; enables telemetry sampling if the spec left it off)")
	flag.DurationVar(&o.progressEvery, "progress-every", 2*time.Second, "minimum interval between live progress/ETA lines")
	flag.StringVar(&o.shard, "shard", "", "run only shard `i/N` of the expansion (requires -stream)")
	flag.StringVar(&o.stream, "stream", "", "stream outcomes to a JSONL `file` instead of holding them in memory")
	flag.StringVar(&o.checkpoint, "checkpoint", "", "record completed scenario keys in `file` (requires -stream)")
	flag.BoolVar(&o.resume, "resume", false, "skip scenarios already in -checkpoint and append to -stream")
	flag.StringVar(&o.serve, "serve", "", "run the fabric coordinator on `addr` (e.g. 127.0.0.1:7070, :0 for ephemeral; requires -spec and -stream; -workers N spawns a local fleet, 0 means external workers only)")
	flag.StringVar(&o.urlFile, "url-file", "", "serve mode: write the coordinator's URL to `file` once listening (for scripting with -serve :0)")
	flag.DurationVar(&o.leaseTTL, "lease-ttl", fabricDefaultTTL, "serve mode: lease lifetime without a heartbeat; a dead worker's cells re-lease after this")
	flag.DurationVar(&o.stealAfter, "steal-after", 0, "serve mode: min age of an in-flight cell before idle workers steal it at end of campaign (0 = lease TTL)")
	flag.StringVar(&o.journal, "journal", "", "serve mode: append every coordinator event (grants, heartbeats, expiries, steals, results) to a JSONL `file`; a post-mortem report is written next to it at completion")
	flag.StringVar(&o.worker, "worker", "", "run as a fabric worker against the coordinator at `url`")
	flag.StringVar(&o.workerDir, "worker-dir", "", "worker mode: local durability `dir` (results + checkpoint; reuse it to resume after a crash)")
	flag.StringVar(&o.workerID, "worker-id", "", "worker mode: self-chosen worker `id` (default hostname-pid)")
	flag.DurationVar(&o.cellTimeout, "cell-timeout", -1, "per-cell wall-clock budget; exceeded cells are recorded as failed (0 forces off, -1 leaves the spec)")
	flag.BoolVar(&o.strict, "strict", false, "exit nonzero if any scenario failed (default: failed cells carry their error in the output and the exit is clean)")
	flag.StringVar(&o.postmortem, "postmortem", "", "render a campaign post-mortem (markdown, plus -csv) from a coordinator journal `file`")
	flag.StringVar(&o.statusURL, "status", "", "print a live fleet snapshot from the coordinator at `url` (workers, telemetry, straggler cells)")
	flag.DurationVar(&o.watch, "watch", 0, "status mode: refresh every `interval` until the campaign completes (0 prints once)")
	flag.StringVar(&o.merge, "merge", "", "merge comma-separated JSONL shard `files` into one report (with -out/-csv/table)")
	flag.StringVar(&o.aggregate, "aggregate", "", "aggregate comma-separated report JSON / JSONL `files` across seeds")
	flag.StringVar(&o.aggCSV, "agg-csv", "", "aggregate mode: write the full mean/stddev/min/max CSV to `file`")
	flag.StringVar(&o.fctCSV, "fct-csv", "", "aggregate mode: write FCT-vs-load figure data to `file`")
	flag.StringVar(&o.recCSV, "rec-csv", "", "aggregate mode: write recovery-time figure data to `file`")
	flag.StringVar(&o.cpuProfile, "cpuprofile", "", "write a CPU profile to `file` (pprof)")
	flag.StringVar(&o.memProfile, "memprofile", "", "write a heap profile to `file` at exit (pprof)")
	flag.Parse()

	stop, err := cliutil.StartProfiles(o.cpuProfile, o.memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "contracamp:", err)
		os.Exit(1)
	}
	runErr := run(o)
	if err := stop(); err != nil && runErr == nil {
		runErr = err
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "contracamp:", runErr)
		os.Exit(1)
	}
}

func run(o options) error {
	modes := 0
	for _, on := range []bool{o.spec != "", o.merge != "", o.aggregate != "", o.worker != "",
		o.postmortem != "", o.statusURL != ""} {
		if on {
			modes++
		}
	}
	if modes != 1 {
		flag.Usage()
		return fmt.Errorf("exactly one of -spec, -merge, -aggregate, -worker, -postmortem, -status is required")
	}
	switch {
	case o.merge != "":
		return runMerge(o)
	case o.aggregate != "":
		return runAggregate(o)
	case o.worker != "":
		return runWorkerMode(o)
	case o.postmortem != "":
		return runPostmortem(o)
	case o.statusURL != "":
		return runStatusMode(o)
	}
	if o.serve != "" {
		return runServe(o)
	}
	if o.journal != "" {
		return fmt.Errorf("-journal records coordinator events; it needs -serve")
	}
	if o.shard != "" && o.stream == "" {
		return fmt.Errorf("-shard partitions a streamed run; add -stream (results merge later with -merge)")
	}
	if o.checkpoint != "" && o.stream == "" {
		return fmt.Errorf("-checkpoint needs -stream: without the record stream there is nothing to resume from")
	}
	if o.resume && (o.checkpoint == "" || o.stream == "") {
		return fmt.Errorf("-resume needs both -checkpoint and -stream")
	}
	if o.traceLevel != "" {
		if _, err := trace.ParseLevel(o.traceLevel); err != nil {
			return err
		}
	}
	if o.traceDir != "" && o.stream != "" {
		return fmt.Errorf("-trace-dir needs the in-memory report (traces are not streamed); drop -stream")
	}
	if o.metricsDir != "" && o.stream != "" {
		return fmt.Errorf("-metrics-dir needs the in-memory report (telemetry is not streamed); drop -stream")
	}
	if o.figuresDir != "" && o.stream != "" {
		return fmt.Errorf("-figures needs the in-memory report; drop -stream (merge shards first, then aggregate)")
	}
	if o.stream != "" {
		return runStreaming(o)
	}
	return runInMemory(o)
}

// progress returns the per-scenario progress printer, nil when quiet.
func progress(o options) func(done, total int, out *campaign.Outcome) {
	if o.quiet {
		return nil
	}
	return func(done, total int, out *campaign.Outcome) {
		status := "ok"
		if out.Err != "" {
			status = "FAIL: " + out.Err
		} else if out.Result != nil && out.Result.Flows > 0 {
			status = fmt.Sprintf("done=%d/%d p99=%.3fms",
				out.Result.Completed, out.Result.Flows, out.Result.P99FCT*1e3)
		}
		fmt.Fprintf(os.Stderr, "[%3d/%3d] %-40s %s\n", done, total, out.Scenario.Name, status)
	}
}

// progressHooks combines the per-scenario printer with the live
// elapsed/ETA/straggler Meter. Both print to stderr; quiet silences
// both. tick re-prints the rate-limited live line without recording an
// event — serve mode fires it on every worker heartbeat so the line
// moves between completions.
func progressHooks(o options, total int) (started func(*campaign.Job), completed func(int, int, *campaign.Outcome), tick func()) {
	per := progress(o)
	if o.quiet {
		return nil, per, nil
	}
	meter := campaign.NewMeter(os.Stderr, total)
	if o.progressEvery > 0 {
		meter.Every = o.progressEvery
	}
	return meter.Started, func(done, total int, out *campaign.Outcome) {
		if per != nil {
			per(done, total, out)
		}
		meter.Completed(done, total, out)
	}, meter.Tick
}

// applyMetricsInterval lets -metrics-interval override the spec's
// metrics_interval_ns (0 forces sampling off, -1 leaves the spec), and
// -figures turn sampling on at a default interval when both the spec
// and the flag left it off — the utilization-timeline figure needs
// samples to exist.
func applyMetricsInterval(spec *campaign.Spec, o options) {
	if o.metricsInterval >= 0 {
		spec.MetricsIntervalNs = o.metricsInterval
	}
	if o.figuresDir != "" && spec.MetricsIntervalNs == 0 {
		spec.MetricsIntervalNs = 500_000
	}
}

// runInMemory is the classic single-process path: run everything, hold
// the report, render JSON/CSV/table.
func runInMemory(o options) error {
	spec, err := campaign.LoadFile(o.spec)
	if err != nil {
		return err
	}
	applyTraceLevel(spec, o)
	applyMetricsInterval(spec, o)
	applyCellTimeout(spec, o)
	spec.Record = o.recordDir != ""
	if !o.quiet {
		fmt.Fprintf(os.Stderr, "campaign %q: %d scenarios on %d workers\n",
			spec.Name, spec.Size(), o.workers)
	}
	started, completed, _ := progressHooks(o, spec.Size())
	report, err := campaign.Run(spec, campaign.Options{
		Workers: o.workers, Progress: completed, Started: started,
		CellTimeout: spec.CellTimeout(),
	})
	if err != nil {
		return err
	}
	if o.recordDir != "" {
		if err := writeFlowTraces(report, o.recordDir, o.quiet); err != nil {
			return err
		}
	}
	if o.traceDir != "" {
		if err := writeTraces(report, o.traceDir, o.quiet); err != nil {
			return err
		}
	}
	if o.metricsDir != "" {
		if err := writeMetricsFiles(report, o.metricsDir, o.quiet); err != nil {
			return err
		}
	}
	if o.figuresDir != "" {
		written, err := figures.Emit(o.figuresDir, report)
		if err != nil {
			return err
		}
		if !o.quiet {
			fmt.Fprintf(os.Stderr, "wrote %d figure file(s) to %s: %s\n",
				len(written), o.figuresDir, strings.Join(written, ", "))
		}
	}
	if err := render(report, spec.Schemes, o); err != nil {
		return err
	}
	return failures(report.Failed(), len(report.Outcomes), o)
}

// runStreaming is the sharded path: outcomes go straight to the JSONL
// sink and optionally into a checkpoint; nothing is held in memory.
func runStreaming(o options) error {
	if o.out != "" || o.csvOut != "" {
		return fmt.Errorf("-out/-csv render a full report; streamed shards are merged first (-merge %s)", o.stream)
	}
	spec, err := campaign.LoadFile(o.spec)
	if err != nil {
		return err
	}
	applyTraceLevel(spec, o)
	applyMetricsInterval(spec, o)
	applyCellTimeout(spec, o)
	shard, err := dist.ParseShard(o.shard)
	if err != nil {
		return err
	}
	var ck *dist.Checkpoint
	if o.checkpoint != "" {
		if !o.resume {
			// A fresh run must not silently skip work recorded by an
			// earlier one.
			if err := os.Remove(o.checkpoint); err != nil && !os.IsNotExist(err) {
				return err
			}
		}
		if ck, err = dist.OpenCheckpoint(o.checkpoint); err != nil {
			return err
		}
		defer ck.Close()
		if o.resume {
			// The checkpoint and the stream are separate files: after
			// a power loss a key can be durable while its record is
			// not. Trust only keys whose records actually exist.
			keys, err := dist.StreamKeys(o.stream)
			if err != nil {
				return err
			}
			if dropped := ck.Retain(func(k string) bool { return keys[k] }); dropped > 0 && !o.quiet {
				fmt.Fprintf(os.Stderr, "checkpoint lists %d scenario(s) missing from %s; re-running them\n",
					dropped, o.stream)
			}
		}
	}
	if o.recordDir != "" {
		spec.Record = true
		if err := os.MkdirAll(o.recordDir, 0o755); err != nil {
			return err
		}
	}
	sink, err := dist.CreateJSONL(o.stream, o.resume)
	if err != nil {
		return err
	}
	started, completed, _ := progressHooks(o, spec.Size())
	st, runErr := dist.Run(spec, dist.Options{
		Workers:     o.workers,
		Shard:       shard,
		Checkpoint:  ck,
		Progress:    completed,
		Started:     started,
		CellTimeout: spec.CellTimeout(),
		RecordDir:   o.recordDir,
	}, sink)
	if cerr := sink.Close(); runErr == nil {
		runErr = cerr
	}
	if !o.quiet {
		fmt.Fprintf(os.Stderr, "shard %s of campaign %q: %d planned, %d skipped (checkpointed), %d ran, %d failed\n",
			shard, spec.Name, st.Planned, st.Skipped, st.Ran, st.Failed)
	}
	if runErr != nil {
		return runErr
	}
	return failures(st.Failed, st.Ran, o)
}

// runMerge folds shard JSONL files into one deterministic report.
func runMerge(o options) error {
	report, err := dist.Merge(splitList(o.merge))
	if err != nil {
		return err
	}
	if !o.quiet {
		fmt.Fprintf(os.Stderr, "merged %d scenarios from %d shard file(s)\n",
			len(report.Outcomes), len(splitList(o.merge)))
	}
	if err := render(report, dist.Schemes(report), o); err != nil {
		return err
	}
	return failures(report.Failed(), len(report.Outcomes), o)
}

// runAggregate collapses the seed axis and writes figure data.
func runAggregate(o options) error {
	var outcomes []campaign.Outcome
	for _, path := range splitList(o.aggregate) {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		outs, err := agg.Load(data)
		if err != nil {
			return fmt.Errorf("%s: %v", path, err)
		}
		outcomes = append(outcomes, outs...)
	}
	tab := agg.FromOutcomes(outcomes)
	if !o.quiet {
		fmt.Fprintf(os.Stderr, "aggregated %d outcomes into %d cells\n", len(outcomes), len(tab.Groups))
	}
	aggCSV := o.aggCSV
	if aggCSV == "" && o.fctCSV == "" && o.recCSV == "" {
		aggCSV = "-" // no outputs requested: full aggregate to stdout
	}
	if aggCSV != "" {
		if err := writeTo(aggCSV, tab.WriteCSV); err != nil {
			return err
		}
	}
	if o.fctCSV != "" {
		if err := writeTo(o.fctCSV, tab.WriteFCTCurve); err != nil {
			return err
		}
	}
	if o.recCSV != "" {
		if err := writeTo(o.recCSV, tab.WriteRecoveryCurve); err != nil {
			return err
		}
	}
	return nil
}

// render writes the report JSON/CSV and prints the comparison table.
func render(report *campaign.Report, schemes []scenario.Scheme, o options) error {
	if o.out != "" {
		if err := writeTo(o.out, report.WriteJSON); err != nil {
			return err
		}
	}
	if o.csvOut != "" {
		if err := writeTo(o.csvOut, report.WriteCSV); err != nil {
			return err
		}
	}
	if !o.noTable {
		header, rows := report.ComparisonTable(schemes)
		cliutil.Table(header, rows)
	}
	return nil
}

// applyTraceLevel lets the -trace-level flag override the spec's
// trace_level: "off" clears it (the zero-cost default), anything else
// replaces it. Campaign.Expand normalizes "off" away, so scenario keys
// — and hence checkpoints and golden digests — are unaffected by an
// explicit off.
func applyTraceLevel(spec *campaign.Spec, o options) {
	if o.traceLevel != "" {
		spec.TraceLevel = o.traceLevel
	}
}

// writeFlowTraces writes one v1 flow-trace file per recorded cell into
// dir (the in-memory half of -record-dir; streamed and fabric runs
// write them as each cell completes).
func writeFlowTraces(report *campaign.Report, dir string, quiet bool) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	n := 0
	for i := range report.Outcomes {
		out := &report.Outcomes[i]
		if out.Result == nil || out.Result.FlowTrace == nil {
			continue
		}
		path := filepath.Join(dir, flowtrace.FileName(out.Scenario.Name))
		if err := out.Result.FlowTrace.WriteFile(path); err != nil {
			return err
		}
		n++
	}
	if n == 0 {
		return fmt.Errorf("-record-dir: no cell captured a flow trace")
	}
	if !quiet {
		fmt.Fprintf(os.Stderr, "recorded %d flow trace(s) to %s\n", n, dir)
	}
	return nil
}

// writeTraces writes one JSONL file per traced scenario into dir,
// named by the sanitized scenario name.
func writeTraces(report *campaign.Report, dir string, quiet bool) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	n := 0
	for i := range report.Outcomes {
		out := &report.Outcomes[i]
		if out.Result == nil || out.Result.Trace == nil {
			continue
		}
		path := filepath.Join(dir, sanitizeName(out.Scenario.Name)+".jsonl")
		if err := writeTo(path, out.Result.Trace.WriteJSONL); err != nil {
			return err
		}
		n++
	}
	if n == 0 {
		return fmt.Errorf("-trace-dir: no scenario recorded a trace; set -trace-level (or trace_level in the spec)")
	}
	if !quiet {
		fmt.Fprintf(os.Stderr, "wrote %d trace file(s) to %s\n", n, dir)
	}
	return nil
}

// writeMetricsFiles writes one telemetry JSONL file per sampled
// scenario into dir, named by the sanitized scenario name.
func writeMetricsFiles(report *campaign.Report, dir string, quiet bool) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	n := 0
	for i := range report.Outcomes {
		out := &report.Outcomes[i]
		if out.Result == nil || out.Result.Metrics == nil {
			continue
		}
		path := filepath.Join(dir, sanitizeName(out.Scenario.Name)+".jsonl")
		if err := writeTo(path, out.Result.Metrics.WriteJSONL); err != nil {
			return err
		}
		n++
	}
	if n == 0 {
		return fmt.Errorf("-metrics-dir: no scenario recorded telemetry; set -metrics-interval (or metrics_interval_ns in the spec)")
	}
	if !quiet {
		fmt.Fprintf(os.Stderr, "wrote %d telemetry file(s) to %s\n", n, dir)
	}
	return nil
}

// sanitizeName maps a scenario name to a safe file stem.
func sanitizeName(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
			return r
		default:
			return '_'
		}
	}, name)
}

// splitList splits a comma-separated file list.
func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// writeTo streams an encoder to a file path, "-" meaning stdout.
func writeTo(path string, write func(w io.Writer) error) error {
	if path == "-" {
		return write(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
