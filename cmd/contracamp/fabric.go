package main

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"contra/internal/campaign"
	"contra/internal/cliutil"
	"contra/internal/dist"
	"contra/internal/fabric"
)

// fabricDefaultTTL is the -lease-ttl default (see fabric.DefaultLeaseTTL).
const fabricDefaultTTL = fabric.DefaultLeaseTTL

// runServe is the coordinator side of the distributed fabric: expand
// the spec, serve leases over HTTP, stream deduplicated results to
// -stream, optionally spawn a local worker fleet, and when the last
// cell lands, merge the stream into the usual report outputs.
func runServe(o options) error {
	if o.stream == "" {
		return fmt.Errorf("-serve streams results; add -stream (the coordinator's output file)")
	}
	if o.shard != "" {
		return fmt.Errorf("-serve owns the full expansion; -shard applies to standalone streamed runs")
	}
	if o.checkpoint != "" {
		return fmt.Errorf("-serve resumes from the stream itself; drop -checkpoint (workers keep their own in -worker-dir)")
	}
	if o.traceDir != "" || o.metricsDir != "" || o.figuresDir != "" {
		return fmt.Errorf("-trace-dir/-metrics-dir/-figures need the in-memory report; merge the fabric stream first")
	}
	spec, err := campaign.LoadFile(o.spec)
	if err != nil {
		return err
	}
	applyTraceLevel(spec, o)
	applyMetricsInterval(spec, o)
	applyCellTimeout(spec, o)

	// Coordinator restart: every key already durable in the stream is
	// a done cell; workers re-delivering them get "duplicate".
	var alreadyDone map[string]bool
	if o.resume {
		if alreadyDone, err = dist.StreamKeys(o.stream); err != nil {
			return err
		}
	}
	sink, err := dist.CreateJSONL(o.stream, o.resume)
	if err != nil {
		return err
	}
	var journal *fabric.Journal
	if o.journal != "" {
		if journal, err = fabric.CreateJournal(o.journal); err != nil {
			sink.Close()
			return err
		}
	}
	closeAll := func() {
		sink.Close()
		if journal != nil {
			journal.Close()
		}
	}
	started, completed, tick := progressHooks(o, spec.Size())
	coord, err := fabric.New(spec, sink, alreadyDone, fabric.Options{
		LeaseTTL:   o.leaseTTL,
		StealAfter: o.stealAfter,
		Journal:    journal,
		Started:    started,
		Progress:   completed,
		Beat:       tick,
	})
	if err != nil {
		closeAll()
		return err
	}

	ln, err := net.Listen("tcp", o.serve)
	if err != nil {
		closeAll()
		return err
	}
	url := "http://" + ln.Addr().String()
	if o.urlFile != "" {
		if err := os.WriteFile(o.urlFile, []byte(url+"\n"), 0o644); err != nil {
			closeAll()
			return err
		}
	}
	if !o.quiet {
		fmt.Fprintf(os.Stderr, "campaign %q: %d cells (%d already done); coordinator at %s\n",
			spec.Name, spec.Size(), len(alreadyDone), url)
	}
	srv := &http.Server{Handler: coord.Handler()}
	serveErr := make(chan error, 1)
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			serveErr <- err
		}
	}()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	fleetErr := make(chan error, 1)
	if o.workers > 0 {
		go func() { fleetErr <- runFleet(ctx, o, url) }()
	}

	select {
	case <-coord.Done():
	case err := <-serveErr:
		closeAll()
		return err
	case err := <-fleetErr:
		// The whole local fleet died (respawn budget exhausted) with
		// cells still outstanding; without external workers the
		// campaign can never finish.
		closeAll()
		if err == nil {
			err = fmt.Errorf("local worker fleet exited with the campaign unfinished")
		}
		return err
	}
	// Campaign complete: let in-flight requests (straggler duplicate
	// deliveries) drain, then stop serving.
	sdCtx, sdCancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer sdCancel()
	srv.Shutdown(sdCtx)
	cancel()
	if err := sink.Close(); err != nil {
		return err
	}
	st := coord.Status()
	if !o.quiet {
		fmt.Fprintf(os.Stderr, "campaign %q complete: %d cells, %d failed, %d expired lease(s), %d stolen, %d duplicate result(s)\n",
			spec.Name, st.Total, st.Failed, st.ExpiredLeases, st.StolenLeases, st.DuplicateResults)
	}
	if journal != nil {
		if err := journal.Close(); err != nil {
			// Observability must never fail the campaign it observed.
			fmt.Fprintf(os.Stderr, "warning: coordinator journal: %v\n", err)
		} else if err := writePostmortemFiles(o.journal, o.quiet); err != nil {
			fmt.Fprintf(os.Stderr, "warning: post-mortem: %v\n", err)
		}
	}
	report, err := dist.Merge([]string{o.stream})
	if err != nil {
		return err
	}
	if err := render(report, spec.Schemes, o); err != nil {
		return err
	}
	return failures(report.Failed(), len(report.Outcomes), o)
}

// runFleet spawns o.workers local worker subprocesses (this same
// binary in -worker mode), each with its own durability dir under
// <stream>.fleet/, and respawns any that die until the context ends.
// It returns when every slot has exited cleanly (campaign done) or the
// shared respawn budget is exhausted.
func runFleet(ctx context.Context, o options, url string) error {
	self, err := os.Executable()
	if err != nil {
		return err
	}
	baseDir := o.stream + ".fleet"
	// A crashed worker is respawned into the same dir and re-sends its
	// checkpointed results; the budget only bounds pathological crash
	// loops (a worker binary that cannot start at all).
	budget := 3 * o.workers
	var budgetMu sync.Mutex
	takeRespawn := func() bool {
		budgetMu.Lock()
		defer budgetMu.Unlock()
		if budget == 0 {
			return false
		}
		budget--
		return true
	}
	var wg sync.WaitGroup
	errs := make(chan error, o.workers)
	for i := 0; i < o.workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			dir := filepath.Join(baseDir, "worker"+strconv.Itoa(i))
			id := "local" + strconv.Itoa(i)
			for {
				args := []string{"-worker", url, "-worker-dir", dir, "-worker-id", id, "-q"}
				if o.recordDir != "" {
					// Local workers share one trace dir: cell names are
					// unique and trace content is deterministic, so a
					// stolen cell's re-write is byte-identical.
					args = append(args, "-record-dir", o.recordDir)
				}
				cmd := exec.CommandContext(ctx, self, args...)
				cmd.Stderr = os.Stderr
				err := cmd.Run()
				if err == nil || ctx.Err() != nil {
					return // campaign done, or coordinator shut us down
				}
				if !takeRespawn() {
					errs <- fmt.Errorf("worker %s: %v (respawn budget exhausted)", id, err)
					return
				}
				if !o.quiet {
					fmt.Fprintf(os.Stderr, "worker %s died (%v); respawning into %s\n", id, err, dir)
				}
			}
		}(i)
	}
	wg.Wait()
	select {
	case err := <-errs:
		return err
	default:
		return nil
	}
}

// runWorkerMode is the worker side: poll the coordinator at o.worker
// for leases until the campaign completes. -worker-dir holds the local
// results.jsonl + done.ck pair that makes a kill -9'd worker resume by
// re-sending instead of re-running.
func runWorkerMode(o options) error {
	if o.workerDir == "" {
		return fmt.Errorf("-worker needs -worker-dir (the local crash-recovery directory)")
	}
	id := o.workerID
	if id == "" {
		host, err := os.Hostname()
		if err != nil {
			host = "worker"
		}
		id = host + "-" + strconv.Itoa(os.Getpid())
	}
	var logw *os.File
	if !o.quiet {
		logw = os.Stderr
	}
	client := &fabric.Client{
		Base:   o.worker,
		Worker: id,
		Retry:  cliutil.Retry{}, // defaults: 8 attempts, 100ms base, 5s cap, ±20% jitter
	}
	st, err := fabric.RunWorker(context.Background(), client, fabric.WorkerOptions{
		Dir:         o.workerDir,
		CellTimeout: workerCellTimeout(o.cellTimeout),
		Log:         logw,
		RecordDir:   o.recordDir,
	})
	if err != nil {
		return err
	}
	if !o.quiet {
		fmt.Fprintf(os.Stderr, "worker %s: %d ran (%d failed), %d re-sent, %d duplicate(s)\n",
			id, st.Ran, st.Failed, st.Resent, st.Duplicates)
	}
	// Failed cells are the coordinator's to report (-strict there);
	// a worker that delivered everything it leased exits clean.
	return nil
}

// writePostmortemFiles renders <journal>.pm.md and <journal>.pm.csv
// from a completed coordinator journal (the auto-run post-mortem at
// -serve completion; the same rendering as -postmortem).
func writePostmortemFiles(journalPath string, quiet bool) error {
	meta, events, err := fabric.ReadJournalFile(journalPath)
	if err != nil {
		return err
	}
	pm := fabric.BuildPostmortem(meta, events)
	mdPath, csvPath := journalPath+".pm.md", journalPath+".pm.csv"
	if err := writeTo(mdPath, pm.WriteMarkdown); err != nil {
		return err
	}
	if err := writeTo(csvPath, pm.WriteCSV); err != nil {
		return err
	}
	if !quiet {
		fmt.Fprintf(os.Stderr, "post-mortem: %s, %s\n", mdPath, csvPath)
	}
	return nil
}

// runPostmortem renders a campaign post-mortem from a coordinator
// journal: markdown to -out (stdout by default), per-cell CSV to -csv.
func runPostmortem(o options) error {
	meta, events, err := fabric.ReadJournalFile(o.postmortem)
	if err != nil {
		return err
	}
	pm := fabric.BuildPostmortem(meta, events)
	out := o.out
	if out == "" {
		out = "-"
	}
	if err := writeTo(out, pm.WriteMarkdown); err != nil {
		return err
	}
	if o.csvOut != "" {
		if err := writeTo(o.csvOut, pm.WriteCSV); err != nil {
			return err
		}
	}
	return nil
}

// runStatusMode prints a live fleet snapshot from a running
// coordinator: aggregate progress, per-worker telemetry rows, and the
// in-flight cells. -watch re-polls until the campaign completes.
func runStatusMode(o options) error {
	client := &fabric.Client{
		Base:   o.statusURL,
		Worker: "status",
		Retry:  cliutil.Retry{Attempts: 3},
	}
	ctx := context.Background()
	seen := false
	for {
		st, err := client.Status(ctx)
		if err != nil {
			// The coordinator exits when its campaign completes, so a
			// watched fleet going unreachable after a good snapshot is
			// the expected end of the show, not a failure.
			if seen {
				fmt.Fprintf(os.Stderr, "contracamp: coordinator gone (campaign complete or stopped): %v\n", err)
				return nil
			}
			return err
		}
		cells, err := client.Cells(ctx)
		if err != nil {
			return err
		}
		seen = true
		printFleet(st, cells)
		if st.Done >= st.Total {
			return nil
		}
		if o.watch <= 0 {
			return nil
		}
		time.Sleep(o.watch)
		fmt.Println()
	}
}

// printFleet renders one status snapshot to stdout.
func printFleet(st *fabric.Status, cells *fabric.CellsResponse) {
	name := st.Campaign
	if name == "" {
		name = "(unnamed)"
	}
	fmt.Printf("campaign %q: %d/%d cells done (%d failed), %d pending, %d in flight, %d active lease(s), %d expired, %d stolen, %d duplicate(s)\n",
		name, st.Done, st.Total, st.Failed, st.Pending, st.InFlight,
		st.ActiveLeases, st.ExpiredLeases, st.StolenLeases, st.DuplicateResults)
	if len(st.Workers) > 0 {
		rows := make([][]string, 0, len(st.Workers))
		for i := range st.Workers {
			w := &st.Workers[i]
			rows = append(rows, []string{
				w.Worker,
				strconv.Itoa(w.Leases),
				strconv.Itoa(w.Delivered),
				strconv.FormatInt(w.Heartbeats, 10),
				time.Duration(w.LastSeenNs).Round(time.Millisecond).String(),
				strconv.Itoa(w.Telemetry.CellsDone),
				time.Duration(w.Telemetry.ElapsedNs).Round(time.Millisecond).String(),
				strconv.FormatInt(w.Telemetry.UploadRetries, 10),
				strconv.Itoa(w.Telemetry.Replayed),
			})
		}
		cliutil.Table([]string{"worker", "leases", "delivered", "beats", "last-seen",
			"cells-done", "cell-elapsed", "retries", "replayed"}, rows)
	}
	var rows [][]string
	for i := range cells.Cells {
		c := &cells.Cells[i]
		if c.State != fabric.CellLeased && c.State != fabric.CellRunning {
			continue
		}
		holders := make([]string, 0, 2)
		for _, a := range c.Attempts {
			if a.Outcome == fabric.AttemptRunning {
				holders = append(holders, a.Worker)
			}
		}
		rows = append(rows, []string{
			strconv.Itoa(c.Index), c.Name, c.State,
			strconv.Itoa(len(c.Attempts)), strings.Join(holders, "+"),
		})
		if len(rows) == 10 {
			break
		}
	}
	if len(rows) > 0 {
		fmt.Println("in flight:")
		cliutil.Table([]string{"cell", "scenario", "state", "attempts", "worker(s)"}, rows)
	}
}

// applyCellTimeout lets -cell-timeout override the spec's
// cell_timeout_ns: 0 forces the bound off, -1 (the default) leaves the
// spec alone. Like the spec knob it is execution-only — scenario keys,
// checkpoints, and golden digests are unaffected.
func applyCellTimeout(spec *campaign.Spec, o options) {
	if o.cellTimeout >= 0 {
		spec.CellTimeoutNs = int64(o.cellTimeout)
	}
}

// workerCellTimeout maps the CLI flag convention (-1 defer to the
// grant, 0 force off, >0 override) onto fabric.WorkerOptions's (0
// defer, <0 force off, >0 override).
func workerCellTimeout(d time.Duration) time.Duration {
	switch {
	case d == 0:
		return -1
	case d < 0:
		return 0
	default:
		return d
	}
}

// failures turns scenario failures into an exit status: by default a
// campaign degrades gracefully (failed cells carry their reason in the
// JSON/CSV error column, everything else is intact) and the exit is
// clean; -strict makes any failure fatal.
func failures(failed, total int, o options) error {
	if failed == 0 {
		return nil
	}
	if o.strict {
		return fmt.Errorf("%d of %d scenarios failed", failed, total)
	}
	if !o.quiet {
		fmt.Fprintf(os.Stderr, "warning: %d of %d scenarios failed (rows carry the error; -strict makes this fatal)\n",
			failed, total)
	}
	return nil
}
