// Command experiments regenerates every table and figure in the
// paper's evaluation (§6): compiler scalability (Fig 9), switch state
// (Fig 10), data center FCT on symmetric and asymmetric fabrics
// (Figs 11-12), queue length CDFs (Fig 13), failure recovery (Fig 14),
// wide-area FCT (Fig 15), traffic overhead (Fig 16), and the §6.5
// transient-loop statistics.
//
// Usage:
//
//	experiments              # full run (several minutes)
//	experiments -quick       # reduced loads and durations
//	experiments -only fig11,fig16
//	experiments -out results # also write results/<fig>.txt
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"contra"
	"contra/internal/topo"
	"contra/internal/workload"
)

type runCfg struct {
	quick      bool
	outDir     string
	durationNs int64
	maxFlows   int
	loads      []float64
	seed       int64
}

func main() {
	quick := flag.Bool("quick", false, "reduced sweep for a fast smoke run")
	only := flag.String("only", "", "comma-separated figure list, e.g. fig9,fig11")
	out := flag.String("out", "", "directory for per-figure result files")
	seed := flag.Int64("seed", 1, "workload seed")
	flag.Parse()

	cfg := runCfg{quick: *quick, outDir: *out, seed: *seed}
	if *quick {
		cfg.durationNs = 8_000_000
		cfg.maxFlows = 600
		cfg.loads = []float64{0.2, 0.5, 0.8}
	} else {
		cfg.durationNs = 30_000_000
		cfg.maxFlows = 3000
		cfg.loads = []float64{0.2, 0.4, 0.6, 0.8, 0.9}
	}

	figures := map[string]func(runCfg) (string, error){
		"fig9":     fig9,
		"fig10":    fig10,
		"fig11":    fig11,
		"fig12":    fig12,
		"fig13":    fig13,
		"fig14":    fig14,
		"fig15":    fig15,
		"fig16":    fig16,
		"loops":    loopStats,
		"appendix": appendix,
	}
	var names []string
	if *only != "" {
		names = strings.Split(*only, ",")
	} else {
		for n := range figures {
			names = append(names, n)
		}
		sort.Strings(names)
	}
	failed := false
	for _, name := range names {
		fn, ok := figures[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown figure %q\n", name)
			failed = true
			continue
		}
		text, err := fn(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			failed = true
			continue
		}
		fmt.Println(text)
		if cfg.outDir != "" {
			if err := os.MkdirAll(cfg.outDir, 0o755); err == nil {
				_ = os.WriteFile(filepath.Join(cfg.outDir, name+".txt"), []byte(text), 0o644)
			}
		}
	}
	if failed {
		os.Exit(1)
	}
}

func sweepTopos(cfg runCfg) ([]*contra.Topology, []*contra.Topology) {
	var fattrees, randoms []*contra.Topology
	ks := []int{4, 10, 14, 18, 20}
	ns := []int{100, 200, 300, 400, 500}
	if cfg.quick {
		ks = []int{4, 8, 10}
		ns = []int{50, 100, 200}
	}
	for _, k := range ks {
		fattrees = append(fattrees, contra.Fattree(k, 0))
	}
	for _, n := range ns {
		randoms = append(randoms, contra.RandomTopology(n, 4, 42))
	}
	return fattrees, randoms
}

// fig9: compile time vs topology size for MU / WP / CA.
func fig9(cfg runCfg) (string, error) {
	fattrees, randoms := sweepTopos(cfg)
	var b strings.Builder
	b.WriteString("== Figure 9: compiler scalability (compile time) ==\n")
	for label, topos := range map[string][]*contra.Topology{
		"(a) fat-trees": fattrees, "(b) random": randoms,
	} {
		rows, err := contra.CompileSweep(topos, contra.StandardPolicies())
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "%s\n%-16s %-8s %-6s %12s %8s\n", label, "topology", "switches", "policy", "compile", "pg-nodes")
		sortRows(rows)
		for _, r := range rows {
			fmt.Fprintf(&b, "%-16s %-8d %-6s %12v %8d\n",
				r.Topology, r.Switches, r.Policy, r.CompileTime.Round(10_000), r.PGNodes)
		}
	}
	return b.String(), nil
}

// fig10: switch state vs topology size.
func fig10(cfg runCfg) (string, error) {
	fattrees, randoms := sweepTopos(cfg)
	var b strings.Builder
	b.WriteString("== Figure 10: switch state (kB) ==\n")
	for label, topos := range map[string][]*contra.Topology{
		"(a) fat-trees": fattrees, "(b) random": randoms,
	} {
		rows, err := contra.CompileSweep(topos, contra.StandardPolicies())
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "%s\n%-16s %-8s %-6s %10s %10s %8s %5s\n",
			label, "topology", "switches", "policy", "max-kB", "mean-kB", "tagbits", "pids")
		sortRows(rows)
		for _, r := range rows {
			fmt.Fprintf(&b, "%-16s %-8d %-6s %10.1f %10.1f %8d %5d\n",
				r.Topology, r.Switches, r.Policy, r.MaxStateKB, r.MeanStateKB, r.TagBits, r.Pids)
		}
	}
	return b.String(), nil
}

func sortRows(rows []contra.CompileRow) {
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Switches != rows[j].Switches {
			return rows[i].Switches < rows[j].Switches
		}
		return rows[i].Policy < rows[j].Policy
	})
}

// dcPolicy is the Contra policy for the data center experiments: the
// paper notes (§6.3) that Contra discovers shortest paths dynamically
// "by carrying the path length as well as the utilization", i.e.
// least-utilized shortest paths, matching HULA's semantics.
const dcPolicy = "minimize((path.len, path.util))"

func fctTable(cfg runCfg, g *contra.Topology, schemes []contra.Scheme, dists []string, capacity float64) (string, error) {
	return fctTablePolicy(cfg, g, schemes, dists, capacity, dcPolicy, nil)
}

func fctTablePolicy(cfg runCfg, g *contra.Topology, schemes []contra.Scheme, dists []string, capacity float64, policySrc string, pairs [][2]contra.NodeID) (string, error) {
	var b strings.Builder
	for _, distName := range dists {
		d, err := workload.ByName(distName)
		if err != nil {
			return "", err
		}
		// The cache workload's flows are ~100x smaller than web
		// search's; the flow cap must scale accordingly or high loads
		// silently degenerate into short bursts.
		maxFlows := cfg.maxFlows
		if distName == "cache" {
			maxFlows *= 4
		}
		fmt.Fprintf(&b, "workload: %s\n%-6s", distName, "load")
		for _, s := range schemes {
			fmt.Fprintf(&b, " %12s", s)
		}
		b.WriteString("   (mean FCT ms)\n")
		for _, load := range cfg.loads {
			fmt.Fprintf(&b, "%-6.0f", load*100)
			for _, s := range schemes {
				res, err := contra.RunFCT(contra.FCTConfig{
					Topo: g, Scheme: s, PolicySrc: policySrc, Dist: d, Load: load,
					CapacityBps: capacity, Pairs: pairs,
					DurationNs: cfg.durationNs, MaxFlows: maxFlows, Seed: cfg.seed,
				})
				if err != nil {
					return "", err
				}
				fmt.Fprintf(&b, " %12.3f", res.MeanFCT*1e3)
			}
			b.WriteString("\n")
		}
	}
	return b.String(), nil
}

// fig11: symmetric data center FCT.
func fig11(cfg runCfg) (string, error) {
	g := contra.PaperDataCenter()
	body, err := fctTable(cfg, g,
		[]contra.Scheme{contra.SchemeECMP, contra.SchemeContra, contra.SchemeHula},
		[]string{"websearch", "cache"}, 0)
	if err != nil {
		return "", err
	}
	return "== Figure 11: FCT on the symmetric data center ==\n" + body, nil
}

// fig12: asymmetric data center FCT (one leaf-spine link down).
func fig12(cfg runCfg) (string, error) {
	g := asymmetricDC()
	body, err := fctTable(cfg, g,
		[]contra.Scheme{contra.SchemeECMP, contra.SchemeContra, contra.SchemeHula},
		[]string{"websearch", "cache"}, 0)
	if err != nil {
		return "", err
	}
	return "== Figure 12: FCT on the asymmetric data center (l0-s0 down) ==\n" + body, nil
}

func asymmetricDC() *contra.Topology {
	g := contra.PaperDataCenter()
	l := g.LinkBetween(g.MustNode("l0"), g.MustNode("s0"))
	g.SetDown(l.ID, true)
	return g
}

// fig13: queue length CDF, Contra vs ECMP at 60% web-search load.
func fig13(cfg runCfg) (string, error) {
	g := asymmetricDC()
	var b strings.Builder
	b.WriteString("== Figure 13: queue length CDF (MSS), 60% web-search, asymmetric ==\n")
	quantiles := []float64{0.5, 0.9, 0.95, 0.99, 0.999, 1}
	fmt.Fprintf(&b, "%-8s", "scheme")
	for _, q := range quantiles {
		fmt.Fprintf(&b, " %8s", fmt.Sprintf("p%g", q*100))
	}
	b.WriteString("\n")
	for _, s := range []contra.Scheme{contra.SchemeContra, contra.SchemeECMP} {
		res, err := contra.RunFCT(contra.FCTConfig{
			Topo: g, Scheme: s, PolicySrc: dcPolicy,
			Dist: workload.WebSearch(), Load: 0.6,
			DurationNs: cfg.durationNs, MaxFlows: cfg.maxFlows, Seed: cfg.seed,
			SampleQueues: true,
		})
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "%-8s", s)
		for _, q := range quantiles {
			fmt.Fprintf(&b, " %8.1f", res.QueueMSS.Quantile(q))
		}
		b.WriteString("\n")
	}
	return b.String(), nil
}

// fig14: throughput around a link failure.
func fig14(cfg runCfg) (string, error) {
	var b strings.Builder
	b.WriteString("== Figure 14: throughput around a link failure (UDP 4.25 Gbps) ==\n")
	for _, s := range []contra.Scheme{contra.SchemeContra, contra.SchemeHula} {
		res, err := contra.RunFailover(contra.FailoverConfig{
			Topo: contra.PaperDataCenter(), Scheme: s, PolicySrc: dcPolicy, Seed: cfg.seed,
		})
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "%-7s baseline=%.2fGbps dip=%.2fGbps recovery=%.2fms\n",
			s, res.BaselineBps/1e9, res.MinBps/1e9, float64(res.RecoveryNs)/1e6)
	}
	return b.String(), nil
}

// fig15: wide-area FCT on Abilene.
func fig15(cfg runCfg) (string, error) {
	// Delay scale 0.002 gives links of 6-24us: propagation is then
	// small against queueing delay, the regime the paper's wide-area
	// numbers imply (its ns-3 setup used sub-geographic delays), and
	// the one where load-aware routing can pay for its detours.
	g := topo.AbileneWithHostsScaled(0, 0.002)
	// §6.4: four fixed sender/receiver pairs. These pairs' shortest
	// paths overlap heavily on DEN-KC-IND, so shortest-path routing
	// concentrates load while SPAIN and Contra can spread it.
	pairs := [][2]contra.NodeID{
		{g.MustNode("H_SEA"), g.MustNode("H_NYC")},
		{g.MustNode("H_SNV"), g.MustNode("H_WDC")},
		{g.MustNode("H_LA"), g.MustNode("H_CHI")},
		{g.MustNode("H_DEN"), g.MustNode("H_ATL")},
	}
	// Longer arrival window: only four pairs feed the WAN, so the
	// web-search sample would otherwise be tiny.
	wanCfg := cfg
	wanCfg.durationNs *= 2
	// The paper labels this series "Contra (MU)": pure minimum
	// utilization on the WAN.
	body, err := fctTablePolicy(wanCfg, g,
		[]contra.Scheme{contra.SchemeSP, contra.SchemeContra, contra.SchemeSpain},
		[]string{"websearch", "cache"}, 40e9, "minimize(path.util)", pairs)
	if err != nil {
		return "", err
	}
	return "== Figure 15: FCT on Abilene (SP vs Contra-MU vs SPAIN) ==\n" + body, nil
}

// fig16: traffic overhead normalized to ECMP.
func fig16(cfg runCfg) (string, error) {
	g := contra.PaperDataCenter()
	var b strings.Builder
	b.WriteString("== Figure 16: fabric traffic normalized to ECMP ==\n")
	fmt.Fprintf(&b, "%-18s %10s %10s %10s\n", "workload", "ecmp", "hula", "contra")
	for _, distName := range []string{"websearch", "cache"} {
		d, _ := workload.ByName(distName)
		for _, load := range []float64{0.1, 0.6} {
			var bytes [3]float64
			for i, s := range []contra.Scheme{contra.SchemeECMP, contra.SchemeHula, contra.SchemeContra} {
				res, err := contra.RunFCT(contra.FCTConfig{
					Topo: g, Scheme: s, PolicySrc: dcPolicy, Dist: d, Load: load,
					DurationNs: cfg.durationNs, MaxFlows: cfg.maxFlows, Seed: cfg.seed,
				})
				if err != nil {
					return "", err
				}
				bytes[i] = res.FabricBytes + res.TagBytes
			}
			fmt.Fprintf(&b, "%-18s %10.4f %10.4f %10.4f\n",
				fmt.Sprintf("%s %.0f%%", distName, load*100),
				1.0, bytes[1]/bytes[0], bytes[2]/bytes[0])
		}
	}
	return b.String(), nil
}

// loopStats: §6.5 transient loop measurements.
func loopStats(cfg runCfg) (string, error) {
	var b strings.Builder
	b.WriteString("== §6.5: traffic in transient loops (MU policy, 60% load) ==\n")
	cases := []struct {
		name string
		g    *contra.Topology
	}{
		{"datacenter", contra.PaperDataCenter()},
		{"abilene", contra.AbileneWithHosts(0)},
	}
	for _, c := range cases {
		capacity := 0.0
		if c.name == "abilene" {
			capacity = 40e9
		}
		res, err := contra.RunFCT(contra.FCTConfig{
			Topo: c.g, Scheme: contra.SchemeContra, Dist: workload.WebSearch(),
			Load: 0.6, CapacityBps: capacity,
			DurationNs: cfg.durationNs, MaxFlows: cfg.maxFlows, Seed: cfg.seed,
			TrackLoops: true,
		})
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "%-12s looped=%.4f%% of data packets, loop-breaks=%d\n",
			c.name, 100*res.LoopedFrac, int64(res.LoopBreaks))
	}
	return b.String(), nil
}

// appendix: the paper's appendix D+E — traffic overhead on Abilene and
// for the waypointing policy on the data center.
func appendix(cfg runCfg) (string, error) {
	var b strings.Builder
	b.WriteString("== Appendix D+E: additional traffic overhead measurements ==\n")

	// D: the protocol's own overhead (probes + tags) as a share of
	// Contra's fabric traffic on Abilene. Total bytes are not
	// comparable across schemes on a WAN: a min-util policy takes
	// longer paths by design, which is workload placement, not
	// protocol overhead.
	g := topo.AbileneWithHostsScaled(0, 0.002)
	run := func(g *contra.Topology, s contra.Scheme, policySrc string, cap float64) (*contra.FCTResult, error) {
		return contra.RunFCT(contra.FCTConfig{
			Topo: g, Scheme: s, PolicySrc: policySrc,
			Dist: workload.WebSearch(), Load: 0.6, CapacityBps: cap,
			DurationNs: cfg.durationNs, MaxFlows: cfg.maxFlows, Seed: cfg.seed,
		})
	}
	ab, err := run(g, contra.SchemeContra, "minimize(path.util)", 40e9)
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "abilene web-search 60%%: probes+tags = %.4f%% of contra fabric bytes\n",
		100*(ab.ProbeBytes+ab.TagBytes)/(ab.FabricBytes+ab.TagBytes))

	// E: WP policy overhead on the data center, normalized to ECMP.
	dc := contra.PaperDataCenter()
	wp := "minimize(if .* (s0 + s1) .* then (path.len, path.util) else inf)"
	ecmpRes, err := run(dc, contra.SchemeECMP, dcPolicy, 0)
	if err != nil {
		return "", err
	}
	wpRes, err := run(dc, contra.SchemeContra, wp, 0)
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "datacenter web-search 60%% with WP policy: contra/ecmp traffic = %.4f\n",
		(wpRes.FabricBytes+wpRes.TagBytes)/(ecmpRes.FabricBytes+ecmpRes.TagBytes))
	return b.String(), nil
}
