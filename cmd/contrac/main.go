// Command contrac is the Contra compiler CLI: it compiles a policy
// against a topology and reports the analysis, per-switch state, and
// (optionally) the generated P4 programs.
//
// Usage:
//
//	contrac -topo abilene -policy 'minimize(path.lat)'
//	contrac -topo fattree:8 -policy @policy.txt -p4 e0_0
//	contrac -topo dc -policy 'minimize(path.util)' -p4-dir out/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"contra"
	"contra/internal/cliutil"
)

func main() {
	topoSpec := flag.String("topo", "abilene", "topology spec (see internal/cliutil)")
	policyArg := flag.String("policy", "minimize(path.util)", "policy source or @file")
	p4Switch := flag.String("p4", "", "print the generated P4 program for this switch")
	p4Dir := flag.String("p4-dir", "", "write P4 programs for every switch into this directory")
	flag.Parse()

	if err := run(*topoSpec, *policyArg, *p4Switch, *p4Dir); err != nil {
		fmt.Fprintln(os.Stderr, "contrac:", err)
		os.Exit(1)
	}
}

func run(topoSpec, policyArg, p4Switch, p4Dir string) error {
	g, err := cliutil.BuildTopology(topoSpec)
	if err != nil {
		return err
	}
	src, err := cliutil.ReadPolicyArg(policyArg)
	if err != nil {
		return err
	}
	prog, err := contra.CompileSource(src, g)
	if err != nil {
		return err
	}
	fmt.Print(prog.AnalysisReport())
	fmt.Print(prog.Describe())

	if p4Switch != "" {
		p4, err := prog.P4(p4Switch)
		if err != nil {
			return err
		}
		fmt.Println(p4)
	}
	if p4Dir != "" {
		if err := os.MkdirAll(p4Dir, 0o755); err != nil {
			return err
		}
		count := 0
		for _, n := range g.Nodes() {
			if n.Kind != contra.Switch {
				continue
			}
			p4, err := prog.P4(n.Name)
			if err != nil {
				return err
			}
			path := filepath.Join(p4Dir, n.Name+".p4")
			if err := os.WriteFile(path, []byte(p4), 0o644); err != nil {
				return err
			}
			count++
		}
		fmt.Printf("wrote %d P4 programs to %s\n", count, p4Dir)
	}
	return nil
}
