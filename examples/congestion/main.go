// Congestion: the paper's P9 soft-threshold policy in action. When the
// network is lightly loaded the policy prefers least-utilized paths
// (even long ones); past 80% utilization it switches to shortest paths
// to save bandwidth globally. P9 is non-isotonic, so the compiler
// decomposes it into two probe classes that propagate independently
// and are recombined at each switch (§3, challenge 3).
//
//	go run ./examples/congestion
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"contra"
)

func main() {
	// A square with one direct link and two 2-hop detours, plus hosts
	// to generate load.
	g := contra.NewTopology("square")
	for _, n := range []string{"S", "A", "B", "D"} {
		g.AddNode(n, contra.Switch)
	}
	link := func(a, b string) {
		g.AddLink(g.MustNode(a), g.MustNode(b), 10e9, 1000)
	}
	link("S", "A")
	link("S", "B")
	link("S", "D")
	link("A", "D")
	link("B", "D")
	for _, n := range []string{"S", "D"} {
		h := g.AddNode("H"+n, contra.Host)
		g.AddLink(g.MustNode(n), h, 10e9, 1000)
	}

	prog, err := contra.Compile(contra.CongestionAware(), g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== the policy and its decomposition ==")
	fmt.Print(prog.AnalysisReport())

	sim := contra.NewSimulation(prog, 1)
	sim.WarmUp()

	report := func(when string) {
		path, rank, err := sim.BestPath("S", "D")
		if err != nil {
			log.Fatal(err)
		}
		branch := "util branch (light load)"
		if !rank.IsInf() && len(rank.V) > 0 && rank.V[0] >= 2 {
			branch = "shortest-path branch (heavy load)"
		}
		fmt.Printf("%-28s S->D via %-12s rank=%-18s %s\n",
			when, strings.Join(path, "-"), rank.String(), branch)
	}
	report("idle network:")

	// Saturate the direct S-D link beyond the 80% threshold.
	src, _ := sim.HostNamed("HS")
	dst, _ := sim.HostNamed("HD")
	sim.AddFlows(contra.Flow{ID: 1, Src: src, Dst: dst, RateBps: 9e9})
	sim.RunFor(30 * prog.ProbePeriod())
	report("after saturating S-D:")

	// Let the heavy flow finish; utilization decays back under the
	// threshold and the policy returns to the util branch.
	sim.RunFor(2 * time.Millisecond)
	fmt.Println()
	fmt.Println("The rank's first component is the conditional branch: 1 while any")
	fmt.Println("path stays under 80% utilization, 2 once every choice is hot and")
	fmt.Println("the policy falls back to conserving hops.")
}
