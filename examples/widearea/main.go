// Widearea: policy programmability on a WAN — waypointing, forbidden
// links, weighted links, and Propane-style failover preferences, all
// on the Abilene backbone. This is what distinguishes Contra from
// point solutions like HULA: the same compiler serves every policy.
//
//	go run ./examples/widearea
package main

import (
	"fmt"
	"log"
	"strings"

	"contra"
)

func show(policySrc, description string, pairs [][2]string) {
	g := contra.Abilene()
	prog, err := contra.CompileSource(policySrc, g)
	if err != nil {
		log.Fatal(err)
	}
	sim := contra.NewSimulation(prog, 1)
	sim.WarmUp()
	fmt.Printf("-- %s\n   %s\n", description, policySrc)
	fmt.Printf("   probe classes: %d, tag bits: %d\n",
		prog.ProbeClasses(), prog.TagBits())
	for _, pair := range pairs {
		path, rank, err := sim.BestPath(pair[0], pair[1])
		if err != nil {
			fmt.Printf("   %-3s -> %-3s: %v\n", pair[0], pair[1], err)
			continue
		}
		fmt.Printf("   %-3s -> %-3s via %-36s rank=%s\n",
			pair[0], pair[1], strings.Join(path, "-"), rank)
	}
	fmt.Println()
}

func main() {
	pairs := [][2]string{{"SEA", "NYC"}, {"LA", "NYC"}, {"SNV", "WDC"}}

	show("minimize(path.lat)",
		"Baseline: shortest-latency routing", pairs)

	show("minimize(if .* KC .* then path.lat else inf)",
		"Waypointing (P5): all traffic must cross Kansas City", pairs)

	show("minimize(if .* DEN KC .* then inf else path.lat)",
		"Forbidden link: never traverse Denver->Kansas City", pairs)

	show("minimize((if .* CHI NYC .* then 100000 else 0) + path.lat)",
		"Weighted link (P7): make Chicago->New York expensive", pairs)

	show("minimize(if SEA .* then path.util else path.lat)",
		"Source-local (P8): Seattle optimizes utilization, others latency", pairs)

	// Propane-style failover: prefer the northern route, fall back to
	// the southern one.
	g := contra.Abilene()
	north := []string{"SEA", "DEN", "KC", "IND", "CHI", "NYC"}
	south := []string{"SEA", "SNV", "LA", "HOU", "ATL", "WDC", "NYC"}
	prog, err := contra.Compile(contra.Failover(north, south), g)
	if err != nil {
		log.Fatal(err)
	}
	sim := contra.NewSimulation(prog, 1)
	sim.WarmUp()
	path, rank, err := sim.BestPath("SEA", "NYC")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("-- Failover preference (Propane-style)\n")
	fmt.Printf("   primary:  %s rank=%s\n", strings.Join(path, "-"), rank)
	if err := sim.FailLink("KC", "IND", 0); err != nil {
		log.Fatal(err)
	}
	sim.RunFor(8 * prog.ProbePeriod())
	path, rank, err = sim.BestPath("SEA", "NYC")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   after KC-IND fails: %s rank=%s\n", strings.Join(path, "-"), rank)
}
