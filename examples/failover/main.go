// Failover: the paper's Figure 14 — steady UDP traffic, a fabric link
// dies mid-run, and Contra's data-plane failure detection reroutes
// within about a millisecond (k probe periods + flowlet expiry).
//
//	go run ./examples/failover
package main

import (
	"fmt"
	"log"
	"strings"

	"contra"
)

func main() {
	res, err := contra.RunFailover(contra.FailoverConfig{
		Topo:      contra.PaperDataCenter(),
		Scheme:    contra.SchemeContra,
		PolicySrc: "minimize((path.len, path.util))",
		RateBps:   4.25e9, // the paper's stable UDP rate
		FailAtNs:  50_000_000,
		EndNs:     80_000_000,
		Seed:      1,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Aggregate receive throughput around a leaf-spine link failure")
	fmt.Printf("baseline %.2f Gbps; dip to %.2f Gbps; recovered %.2f ms after the failure\n\n",
		res.BaselineBps/1e9, res.MinBps/1e9, float64(res.RecoveryNs)/1e6)

	// Render an ASCII strip chart of the window around the failure.
	for _, p := range res.Series {
		if p.T < res.FailAtNs-5_000_000 || p.T > res.FailAtNs+10_000_000 {
			continue
		}
		bar := int(p.V / res.BaselineBps * 50)
		if bar < 0 {
			bar = 0
		}
		if bar > 60 {
			bar = 60
		}
		mark := ""
		if p.T >= res.FailAtNs && p.T < res.FailAtNs+res.BinNs {
			mark = "  <- link fails"
		}
		fmt.Printf("t=%6.1fms %6.2fGbps |%s%s\n",
			float64(p.T)/1e6, p.V/1e9, strings.Repeat("#", bar), mark)
	}
}
