// Quickstart: compile a performance-aware policy for a small WAN,
// let the protocol converge, and inspect the routes it picked.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"

	"contra"
)

func main() {
	// The Internet2 Abilene backbone: 11 switches, 14 links, with
	// realistic propagation delays.
	g := contra.Abilene()

	// Rank paths by latency. Any policy from the paper's catalog (or
	// your own) drops in here: try
	//   minimize(path.util)
	//   minimize(if .* KC .* then path.lat else inf)
	prog, err := contra.CompileSource("minimize(path.lat)", g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== analysis ==")
	fmt.Print(prog.AnalysisReport())
	fmt.Println("== compilation ==")
	fmt.Print(prog.Describe())

	// Run the compiled per-switch programs on the packet-level
	// simulator and let a few probe rounds converge the routes.
	sim := contra.NewSimulation(prog, 1)
	sim.WarmUp()

	fmt.Println("== converged routes ==")
	for _, pair := range [][2]string{
		{"SEA", "NYC"}, {"LA", "WDC"}, {"HOU", "CHI"},
	} {
		path, rank, err := sim.BestPath(pair[0], pair[1])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-3s -> %-3s via %-32s rank=%s\n",
			pair[0], pair[1], strings.Join(path, "-"), rank)
	}

	// The compiler also emits the per-device P4 program a hardware
	// deployment would install.
	p4, err := prog.P4("SEA")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== first lines of SEA's P4 program ==")
	lines := strings.SplitN(p4, "\n", 8)
	fmt.Println(strings.Join(lines[:7], "\n"))
}
