// Datacenter: reproduce the core of the paper's Figure 11 at small
// scale — Contra's utilization-aware routing vs static ECMP on the
// 32-host leaf-spine fabric, under the web-search workload.
//
//	go run ./examples/datacenter
package main

import (
	"fmt"
	"log"

	"contra"
	"contra/internal/workload"
)

func main() {
	fmt.Println("Flow completion times on the paper's data center")
	fmt.Println("(4 leaves x 8 hosts, 2 spines, 4:1 oversubscription)")
	fmt.Println()
	fmt.Printf("%-6s %12s %12s %12s\n", "load", "ecmp", "contra", "hula")

	for _, load := range []float64{0.2, 0.4, 0.6} {
		fmt.Printf("%-6.0f", load*100)
		for _, scheme := range []contra.Scheme{
			contra.SchemeECMP, contra.SchemeContra, contra.SchemeHula,
		} {
			res, err := contra.RunFCT(contra.FCTConfig{
				Topo:   contra.PaperDataCenter(),
				Scheme: scheme,
				// Least-utilized shortest paths: HULA's policy,
				// expressed in Contra's language (paper §6.3).
				PolicySrc:  "minimize((path.len, path.util))",
				Dist:       workload.WebSearch(),
				Load:       load,
				DurationNs: 10_000_000, // 10ms of arrivals
				MaxFlows:   800,
				Seed:       7,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %9.3fms", res.MeanFCT*1e3)
		}
		fmt.Println()
	}
	fmt.Println()
	fmt.Println("Contra and HULA track each other closely; ECMP falls behind as")
	fmt.Println("load grows because it cannot steer flows away from hot links.")
}
