package contra_test

import (
	"fmt"
	"strings"

	"contra"
)

// ExampleCompileSource shows the minimal compile-and-inspect flow.
func ExampleCompileSource() {
	g := contra.Abilene()
	prog, err := contra.CompileSource("minimize(path.lat)", g)
	if err != nil {
		panic(err)
	}
	fmt.Println("probe classes:", prog.ProbeClasses())
	fmt.Println("tag bits:", prog.TagBits())
	// Output:
	// probe classes: 1
	// tag bits: 0
}

// ExampleSimulation_BestPath runs the compiled protocol on the
// simulator and reads back a converged route.
func ExampleSimulation_BestPath() {
	g := contra.Abilene()
	prog, err := contra.CompileSource("minimize(path.lat)", g)
	if err != nil {
		panic(err)
	}
	sim := contra.NewSimulation(prog, 1)
	sim.WarmUp()
	path, _, err := sim.BestPath("SEA", "NYC")
	if err != nil {
		panic(err)
	}
	fmt.Println(strings.Join(path, "-"))
	// Output:
	// SEA-DEN-KC-IND-CHI-NYC
}

// ExampleWaypoint shows a Figure 3 catalog policy and the analysis the
// compiler applies to it.
func ExampleWaypoint() {
	pol := contra.Waypoint("F1", "F2")
	fmt.Println(pol.String())
	// Output:
	// minimize((if .* (F1 + F2) .* then path.util else inf))
}

// ExampleParsePolicy validates policy source against a topology's
// switch names.
func ExampleParsePolicy() {
	g := contra.Abilene()
	_, err := contra.ParsePolicy("minimize(if Z .* then 0 else 1)", g.SortedNames()...)
	fmt.Println(err != nil)
	// Output:
	// true
}
