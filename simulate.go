package contra

import (
	"fmt"
	"time"

	"contra/internal/dataplane"
	"contra/internal/sim"
	"contra/internal/topo"
)

// Flow describes one traffic flow for a Simulation.
type Flow = sim.FlowSpec

// Simulation runs a compiled program on the packet-level simulator,
// with interactive controls for examples and exploratory use: inject
// flows, fail links, inspect converged routes. The experiment runners
// (RunFCT etc.) are the batch equivalents.
type Simulation struct {
	prog    *Program
	eng     *sim.Engine
	net     *sim.Network
	routers map[topo.NodeID]*dataplane.Contra
}

// NewSimulation deploys the program's switch programs on a fresh
// network instance.
func NewSimulation(p *Program, seed int64) *Simulation {
	eng := sim.NewEngine(seed)
	net := sim.NewNetwork(eng, p.compiled.Topo, sim.Config{})
	routers := dataplane.Deploy(net, p.compiled)
	net.Start()
	return &Simulation{prog: p, eng: eng, net: net, routers: routers}
}

// WarmUp runs enough probe rounds for routes to converge.
func (s *Simulation) WarmUp() {
	s.eng.Run(s.eng.Now() + 12*s.prog.compiled.Opts.ProbePeriodNs)
}

// RunFor advances simulated time.
func (s *Simulation) RunFor(d time.Duration) { s.eng.Run(s.eng.Now() + int64(d)) }

// Now returns the current simulated time.
func (s *Simulation) Now() time.Duration { return time.Duration(s.eng.Now()) }

// AddFlows injects flows (IDs must be unique within the simulation).
func (s *Simulation) AddFlows(flows ...Flow) {
	// Shift relative start times to "now".
	base := s.eng.Now()
	for i := range flows {
		flows[i].Start += base
	}
	s.net.StartFlows(flows)
}

// RunUntilDone advances time until every registered flow has
// completed or the budget elapses; it reports whether all completed.
func (s *Simulation) RunUntilDone(budget time.Duration, nflows int64) bool {
	deadline := s.eng.Now() + int64(budget)
	for s.eng.Now() < deadline && s.net.CompletedFlows() < nflows {
		s.eng.Run(s.eng.Now() + 5_000_000)
	}
	return s.net.CompletedFlows() >= nflows
}

// FailLink takes the link between two named nodes down after delay.
func (s *Simulation) FailLink(a, b string, after time.Duration) error {
	g := s.prog.compiled.Topo
	na, ok := g.NodeByName(a)
	if !ok {
		return fmt.Errorf("contra: unknown node %q", a)
	}
	nb, ok := g.NodeByName(b)
	if !ok {
		return fmt.Errorf("contra: unknown node %q", b)
	}
	l := g.LinkBetween(na, nb)
	if l == nil {
		return fmt.Errorf("contra: no link %s-%s", a, b)
	}
	s.net.FailLink(l.ID, s.eng.Now()+int64(after))
	return nil
}

// BestPath reproduces the exact path a fresh flowlet from a source
// switch to a destination switch would take: the source's BestT picks
// the initial (tag, pid), and the walk follows FwdT entries and tag
// rewrites hop by hop — just like a packet, and unlike chaining each
// switch's own preference (which is wrong under path constraints: a
// downstream switch follows the packet's tag, not its own BestT).
func (s *Simulation) BestPath(src, dst string) ([]string, Rank, error) {
	g := s.prog.compiled.Topo
	from, ok := g.NodeByName(src)
	if !ok {
		return nil, Rank{}, fmt.Errorf("contra: unknown switch %q", src)
	}
	to, ok := g.NodeByName(dst)
	if !ok {
		return nil, Rank{}, fmt.Errorf("contra: unknown switch %q", dst)
	}
	vnode, pid, rank, ok := s.routers[from].BestEntry(to)
	if !ok {
		return nil, Rank{}, fmt.Errorf("contra: %s has no route to %s", src, dst)
	}
	names := []string{g.Node(from).Name}
	cur := from
	for hops := 0; cur != to; hops++ {
		if hops > 2*g.NumNodes() {
			return nil, Rank{}, fmt.Errorf("contra: best-path walk did not converge (loop?)")
		}
		nhop, ntag, ok := s.routers[cur].Entry(to, vnode, pid)
		if !ok {
			return nil, Rank{}, fmt.Errorf("contra: %s has no usable entry toward %s", g.Node(cur).Name, dst)
		}
		cur = g.Ports(cur)[nhop].Peer
		vnode = ntag
		names = append(names, g.Node(cur).Name)
	}
	return names, rank, nil
}

// MeanFCT returns the mean flow completion time so far.
func (s *Simulation) MeanFCT() time.Duration {
	return time.Duration(s.net.FCT.Mean() * 1e9)
}

// CompletedFlows returns how many flows have finished.
func (s *Simulation) CompletedFlows() int64 { return s.net.CompletedFlows() }

// Counter reads a named measurement counter (e.g. "bytes_probe",
// "drop_queue", "loop_break"). Hot-path counts accumulate in typed
// fields; fold them in so the labeled view is current.
func (s *Simulation) Counter(label string) float64 {
	s.net.FoldCounters()
	return s.net.Counters.Get(label)
}

// HostNamed returns the node ID of a named host (for Flow specs).
func (s *Simulation) HostNamed(name string) (NodeID, error) {
	id, ok := s.prog.compiled.Topo.NodeByName(name)
	if !ok {
		return 0, fmt.Errorf("contra: unknown host %q", name)
	}
	return id, nil
}
