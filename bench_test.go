package contra

// Benchmark harness: one target per table/figure in the paper's
// evaluation (§6). Each benchmark runs the same code as
// cmd/experiments, scaled down so `go test -bench=.` completes in
// minutes; the figure-quality sweeps live in cmd/experiments.
//
//	Fig 9   BenchmarkFig09Compile{Fattree,Random}   compile time
//	Fig 10  BenchmarkFig10SwitchState               per-switch state
//	Fig 11  BenchmarkFig11FCTSymmetric              FCT, symmetric DC
//	Fig 12  BenchmarkFig12FCTAsymmetric             FCT, failed link
//	Fig 13  BenchmarkFig13QueueCDF                  queue p99
//	Fig 14  BenchmarkFig14FailureRecovery           recovery time
//	Fig 15  BenchmarkFig15Abilene                   FCT, WAN
//	Fig 16  BenchmarkFig16Overhead                  traffic vs ECMP
//	§6.5    BenchmarkLoopTraffic                    looped packets
//	Fig 3   BenchmarkPolicyCatalog                  P1-P9 compile
//	+       BenchmarkAblation*                      design knobs

import (
	"fmt"
	"testing"

	"contra/internal/workload"
)

// dcPolicy matches cmd/experiments: least-utilized shortest paths.
const dcPolicy = "minimize((path.len, path.util))"

func BenchmarkFig09CompileFattree(b *testing.B) {
	for _, k := range []int{4, 10, 14} {
		g := Fattree(k, 0)
		for name, gen := range StandardPolicies() {
			src := gen(g)
			b.Run(fmt.Sprintf("k%d-%s", k, name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := CompileSource(src, g); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func BenchmarkFig09CompileRandom(b *testing.B) {
	for _, n := range []int{100, 200} {
		g := RandomTopology(n, 4, 42)
		for name, gen := range StandardPolicies() {
			src := gen(g)
			b.Run(fmt.Sprintf("n%d-%s", n, name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := CompileSource(src, g); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func BenchmarkFig10SwitchState(b *testing.B) {
	for _, k := range []int{4, 10} {
		g := Fattree(k, 0)
		for name, gen := range StandardPolicies() {
			src := gen(g)
			b.Run(fmt.Sprintf("k%d-%s", k, name), func(b *testing.B) {
				var kb float64
				for i := 0; i < b.N; i++ {
					p, err := CompileSource(src, g)
					if err != nil {
						b.Fatal(err)
					}
					kb = float64(p.MaxStateBytes()) / 1000
				}
				b.ReportMetric(kb, "kB-max/switch")
			})
		}
	}
}

// benchFCT runs a scaled-down FCT experiment and reports mean FCT.
func benchFCT(b *testing.B, g *Topology, scheme Scheme, dist *workload.Distribution, load float64, policySrc string, capacity float64) {
	b.Helper()
	var mean float64
	for i := 0; i < b.N; i++ {
		res, err := RunFCT(FCTConfig{
			Topo: g, Scheme: scheme, PolicySrc: policySrc,
			Dist: dist, Load: load, CapacityBps: capacity,
			DurationNs: 4_000_000, MaxFlows: 300, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		mean = res.MeanFCT
	}
	b.ReportMetric(mean*1e3, "fct-ms")
}

func BenchmarkFig11FCTSymmetric(b *testing.B) {
	g := PaperDataCenter()
	for _, dist := range []*workload.Distribution{workload.WebSearch(), workload.Cache()} {
		for _, scheme := range []Scheme{SchemeECMP, SchemeContra, SchemeHula} {
			for _, load := range []float64{0.2, 0.6} {
				b.Run(fmt.Sprintf("%s-%s-load%.0f", dist.Name, scheme, load*100), func(b *testing.B) {
					benchFCT(b, g, scheme, dist, load, dcPolicy, 0)
				})
			}
		}
	}
}

func asymmetricDC() *Topology {
	g := PaperDataCenter()
	l := g.LinkBetween(g.MustNode("l0"), g.MustNode("s0"))
	g.SetDown(l.ID, true)
	return g
}

func BenchmarkFig12FCTAsymmetric(b *testing.B) {
	g := asymmetricDC()
	for _, scheme := range []Scheme{SchemeECMP, SchemeContra, SchemeHula} {
		for _, load := range []float64{0.2, 0.6} {
			b.Run(fmt.Sprintf("websearch-%s-load%.0f", scheme, load*100), func(b *testing.B) {
				benchFCT(b, g, scheme, workload.WebSearch(), load, dcPolicy, 0)
			})
		}
	}
}

func BenchmarkFig13QueueCDF(b *testing.B) {
	g := asymmetricDC()
	for _, scheme := range []Scheme{SchemeContra, SchemeECMP} {
		b.Run(string(scheme), func(b *testing.B) {
			var p99 float64
			for i := 0; i < b.N; i++ {
				res, err := RunFCT(FCTConfig{
					Topo: g, Scheme: scheme, PolicySrc: dcPolicy,
					Dist: workload.WebSearch(), Load: 0.6,
					DurationNs: 4_000_000, MaxFlows: 300, Seed: 1,
					SampleQueues: true,
				})
				if err != nil {
					b.Fatal(err)
				}
				p99 = res.QueueMSS.Quantile(0.99)
			}
			b.ReportMetric(p99, "queue-p99-MSS")
		})
	}
}

func BenchmarkFig14FailureRecovery(b *testing.B) {
	for _, scheme := range []Scheme{SchemeContra, SchemeHula} {
		b.Run(string(scheme), func(b *testing.B) {
			var rec float64
			for i := 0; i < b.N; i++ {
				res, err := RunFailover(FailoverConfig{
					Topo: PaperDataCenter(), Scheme: scheme, PolicySrc: dcPolicy,
					FailAtNs: 20_000_000, EndNs: 35_000_000, Seed: 1,
				})
				if err != nil {
					b.Fatal(err)
				}
				rec = float64(res.RecoveryNs) / 1e6
			}
			b.ReportMetric(rec, "recovery-ms")
		})
	}
}

func BenchmarkFig15Abilene(b *testing.B) {
	g := AbileneWithHosts(0)
	for _, scheme := range []Scheme{SchemeSP, SchemeContra, SchemeSpain} {
		for _, load := range []float64{0.3, 0.6} {
			b.Run(fmt.Sprintf("%s-load%.0f", scheme, load*100), func(b *testing.B) {
				benchFCT(b, g, scheme, workload.WebSearch(), load, "minimize(path.util)", 40e9)
			})
		}
	}
}

func BenchmarkFig16Overhead(b *testing.B) {
	g := PaperDataCenter()
	for _, scheme := range []Scheme{SchemeHula, SchemeContra} {
		b.Run(string(scheme), func(b *testing.B) {
			var ratio float64
			for i := 0; i < b.N; i++ {
				run := func(s Scheme) float64 {
					res, err := RunFCT(FCTConfig{
						Topo: g, Scheme: s, PolicySrc: dcPolicy,
						Dist: workload.WebSearch(), Load: 0.6,
						DurationNs: 4_000_000, MaxFlows: 300, Seed: 1,
					})
					if err != nil {
						b.Fatal(err)
					}
					return res.FabricBytes + res.TagBytes
				}
				ratio = run(scheme) / run(SchemeECMP)
			}
			b.ReportMetric(ratio, "traffic-vs-ecmp")
		})
	}
}

func BenchmarkLoopTraffic(b *testing.B) {
	cases := []struct {
		name     string
		topo     *Topology
		capacity float64
	}{
		{"datacenter", PaperDataCenter(), 0},
		{"abilene", AbileneWithHosts(0), 40e9},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			var frac float64
			for i := 0; i < b.N; i++ {
				res, err := RunFCT(FCTConfig{
					Topo: c.topo, Scheme: SchemeContra,
					PolicySrc: "minimize(path.util)",
					Dist:      workload.WebSearch(), Load: 0.6,
					CapacityBps: c.capacity,
					DurationNs:  4_000_000, MaxFlows: 300, Seed: 1,
					TrackLoops: true,
				})
				if err != nil {
					b.Fatal(err)
				}
				frac = res.LoopedFrac
			}
			b.ReportMetric(frac*100, "looped-%")
		})
	}
}

func BenchmarkPolicyCatalog(b *testing.B) {
	g := Abilene()
	pols := map[string]*Policy{
		"P1": ShortestPathPolicy(), "P2": MinUtil(), "P3": WidestShortest(),
		"P4": ShortestWidest(), "P5": Waypoint("KC", "DEN"),
		"P6": LinkPreference("SEA", "DEN"), "P7": WeightedLink("SEA", "DEN", 10),
		"P8": SourceLocal("SEA"), "P9": CongestionAware(),
	}
	for name, pol := range pols {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Compile(pol, g); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Ablations: the design knobs DESIGN.md calls out.

// §5.2: probe frequency. Too-slow probes leave stale routes; the
// period must exceed half the worst RTT but not by much.
func BenchmarkAblationProbePeriod(b *testing.B) {
	g := PaperDataCenter()
	for _, period := range []int64{64_000, 256_000, 1_024_000} {
		b.Run(fmt.Sprintf("period%dus", period/1000), func(b *testing.B) {
			var mean float64
			for i := 0; i < b.N; i++ {
				res, err := RunFCT(FCTConfig{
					Topo: g, Scheme: SchemeContra, PolicySrc: dcPolicy,
					Dist: workload.WebSearch(), Load: 0.6,
					DurationNs: 4_000_000, MaxFlows: 300, Seed: 1,
					ProbePeriodNs: period,
				})
				if err != nil {
					b.Fatal(err)
				}
				mean = res.MeanFCT
			}
			b.ReportMetric(mean*1e3, "fct-ms")
		})
	}
}

// §5.3: flowlet timeout trades load balance against reordering.
func BenchmarkAblationFlowletTimeout(b *testing.B) {
	g := PaperDataCenter()
	for _, timeout := range []int64{50_000, 200_000, 1_000_000} {
		b.Run(fmt.Sprintf("flowlet%dus", timeout/1000), func(b *testing.B) {
			var mean float64
			for i := 0; i < b.N; i++ {
				res, err := RunFCT(FCTConfig{
					Topo: g, Scheme: SchemeContra, PolicySrc: dcPolicy,
					Dist: workload.WebSearch(), Load: 0.6,
					DurationNs: 4_000_000, MaxFlows: 300, Seed: 1,
					FlowletTimeoutNs: timeout,
				})
				if err != nil {
					b.Fatal(err)
				}
				mean = res.MeanFCT
			}
			b.ReportMetric(mean*1e3, "fct-ms")
		})
	}
}

// §5.4: failure detection threshold k vs recovery time.
func BenchmarkAblationFailureK(b *testing.B) {
	for _, k := range []int{2, 3, 6} {
		b.Run(fmt.Sprintf("k%d", k), func(b *testing.B) {
			var rec float64
			for i := 0; i < b.N; i++ {
				res, err := RunFailover(FailoverConfig{
					Topo: PaperDataCenter(), Scheme: SchemeContra,
					PolicySrc: dcPolicy, FailAtNs: 20_000_000, EndNs: 35_000_000,
					BinNs:                100_000, // fine bins so k differences resolve
					FailureDetectPeriods: k, Seed: 1,
				})
				if err != nil {
					b.Fatal(err)
				}
				rec = float64(res.RecoveryNs) / 1e6
			}
			b.ReportMetric(rec, "recovery-ms")
		})
	}
}
