package contra

import (
	"strings"
	"testing"
	"time"
)

func TestCompileSourceAndInspect(t *testing.T) {
	g := Abilene()
	p, err := CompileSource("minimize(path.lat)", g)
	if err != nil {
		t.Fatal(err)
	}
	if p.ProbeClasses() != 1 {
		t.Fatalf("probe classes = %d, want 1", p.ProbeClasses())
	}
	if p.MaxStateBytes() <= 0 || p.CompileTime() <= 0 {
		t.Fatal("missing stats")
	}
	p4, err := p.P4("SEA")
	if err != nil || !strings.Contains(p4, "contra_probe_t") {
		t.Fatalf("P4 generation failed: %v", err)
	}
	if _, err := p.P4("NOPE"); err == nil {
		t.Fatal("unknown switch should error")
	}
	if !strings.Contains(p.AnalysisReport(), "isotone: true") {
		t.Fatalf("analysis report:\n%s", p.AnalysisReport())
	}
}

func TestSimulationBestPath(t *testing.T) {
	g := Abilene()
	p, err := CompileSource("minimize(path.lat)", g)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSimulation(p, 1)
	s.WarmUp()
	path, rank, err := s.BestPath("SEA", "NYC")
	if err != nil {
		t.Fatal(err)
	}
	if path[0] != "SEA" || path[len(path)-1] != "NYC" {
		t.Fatalf("path endpoints wrong: %v", path)
	}
	if rank.IsInf() {
		t.Fatal("rank should be finite")
	}
	// SEA-DEN-KC-IND-CHI-NYC = 10+5+4+2+8 = 29ms; the alternative
	// through WDC is 10+5+4+5+6+3 = 33ms.
	want := []string{"SEA", "DEN", "KC", "IND", "CHI", "NYC"}
	if strings.Join(path, "-") != strings.Join(want, "-") {
		t.Fatalf("path = %v, want %v", path, want)
	}
}

func TestSimulationFailoverReroutes(t *testing.T) {
	g := Abilene()
	p, err := CompileSource("minimize(path.lat)", g)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSimulation(p, 2)
	s.WarmUp()
	if err := s.FailLink("CHI", "NYC", 0); err != nil {
		t.Fatal(err)
	}
	// Wait for failure detection (k periods) plus margin.
	s.RunFor(time.Duration(8) * p.ProbePeriod())
	path, _, err := s.BestPath("SEA", "NYC")
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(path, "-")
	if strings.Contains(joined, "CHI-NYC") {
		t.Fatalf("path still uses failed link: %v", path)
	}
	if path[len(path)-1] != "NYC" {
		t.Fatalf("path does not reach NYC: %v", path)
	}
}

func TestSimulationFlows(t *testing.T) {
	g := AbileneWithHosts(0)
	p, err := CompileSource("minimize(path.util)", g)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSimulation(p, 3)
	s.WarmUp()
	src, err := s.HostNamed("H_SEA")
	if err != nil {
		t.Fatal(err)
	}
	dst, err := s.HostNamed("H_NYC")
	if err != nil {
		t.Fatal(err)
	}
	s.AddFlows(Flow{ID: 1, Src: src, Dst: dst, Size: 200_000})
	if !s.RunUntilDone(2*time.Second, 1) {
		t.Fatal("flow did not complete")
	}
	if s.MeanFCT() <= 0 {
		t.Fatal("no FCT recorded")
	}
	if s.Counter("bytes_probe") == 0 {
		t.Fatal("no probe traffic counted")
	}
}

func TestCatalogCompilesOnAbilene(t *testing.T) {
	g := Abilene()
	pols := map[string]*Policy{
		"P1": ShortestPathPolicy(),
		"P2": MinUtil(),
		"P3": WidestShortest(),
		"P4": ShortestWidest(),
		"P5": Waypoint("KC", "DEN"),
		"P6": LinkPreference("SEA", "DEN"),
		"P7": WeightedLink("SEA", "DEN", 10),
		"P8": SourceLocal("SEA"),
		"P9": CongestionAware(),
	}
	for name, pol := range pols {
		if _, err := Compile(pol, g); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestOptions(t *testing.T) {
	g := Abilene()
	p, err := CompileSource("minimize(path.util)", g,
		WithProbePeriod(500*time.Microsecond),
		WithFlowletTimeout(300*time.Microsecond),
		WithFailureDetectPeriods(5))
	if err != nil {
		t.Fatal(err)
	}
	if p.ProbePeriod() != 500*time.Microsecond {
		t.Fatalf("probe period = %v", p.ProbePeriod())
	}
}

func TestParseTopologyFacade(t *testing.T) {
	src := "node A switch\nnode B switch\nlink A B 10G 1us\n"
	g, err := ParseTopology(strings.NewReader(src), "t")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CompileSource("minimize(path.len)", g); err != nil {
		t.Fatal(err)
	}
	// Policy with unknown switch name fails under symbol checking.
	if _, err := CompileSource("minimize(if Z .* then 0 else path.len)", g); err == nil {
		t.Fatal("unknown symbol should fail")
	}
}
