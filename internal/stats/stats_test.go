package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestSummaryBasics(t *testing.T) {
	var s Summary
	if s.Count() != 0 || s.Mean() != 0 || s.Var() != 0 {
		t.Fatalf("zero value not empty: %v", s.String())
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.Count() != 8 {
		t.Fatalf("count = %d, want 8", s.Count())
	}
	if !almost(s.Mean(), 5, 1e-12) {
		t.Fatalf("mean = %v, want 5", s.Mean())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("min/max = %v/%v, want 2/9", s.Min(), s.Max())
	}
	// Sample variance of that classic dataset is 32/7.
	if !almost(s.Var(), 32.0/7.0, 1e-12) {
		t.Fatalf("var = %v, want %v", s.Var(), 32.0/7.0)
	}
}

func TestSummaryMergeMatchesSequential(t *testing.T) {
	// Bound magnitudes: variance of astronomically large inputs
	// overflows float64, which is out of scope for this helper.
	clamp := func(x float64) (float64, bool) {
		if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e12 {
			return 0, false
		}
		return x, true
	}
	f := func(a, b []float64) bool {
		var all, s1, s2 Summary
		for _, x := range a {
			x, ok := clamp(x)
			if !ok {
				return true
			}
			all.Add(x)
			s1.Add(x)
		}
		for _, x := range b {
			x, ok := clamp(x)
			if !ok {
				return true
			}
			all.Add(x)
			s2.Add(x)
		}
		s1.Merge(&s2)
		if s1.Count() != all.Count() {
			return false
		}
		if all.Count() == 0 {
			return true
		}
		scale := math.Max(1, math.Abs(all.Mean()))
		return almost(s1.Mean(), all.Mean(), 1e-9*scale) &&
			almost(s1.Var(), all.Var(), 1e-6*scale*scale+1e-9) &&
			s1.Min() == all.Min() && s1.Max() == all.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSampleQuantiles(t *testing.T) {
	s := NewSample()
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 100}, {0.5, 50.5}, {0.25, 25.75}, {0.99, 99.01},
	}
	for _, c := range cases {
		if got := s.Quantile(c.q); !almost(got, c.want, 1e-9) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestSampleQuantileMonotone(t *testing.T) {
	f := func(xs []float64, qa, qb float64) bool {
		s := NewSample()
		for _, x := range xs {
			if math.IsNaN(x) {
				return true
			}
			s.Add(x)
		}
		qa = math.Abs(math.Mod(qa, 1))
		qb = math.Abs(math.Mod(qb, 1))
		if qa > qb {
			qa, qb = qb, qa
		}
		return s.Quantile(qa) <= s.Quantile(qb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReservoirBounded(t *testing.T) {
	s := NewReservoir(64, 42)
	for i := 0; i < 10000; i++ {
		s.Add(float64(i))
	}
	if s.Len() != 64 {
		t.Fatalf("reservoir len = %d, want 64", s.Len())
	}
	if s.Count() != 10000 {
		t.Fatalf("count = %d, want 10000", s.Count())
	}
	// Mean of a uniform ramp should be near the middle.
	if m := s.Mean(); m < 2000 || m > 8000 {
		t.Fatalf("reservoir mean %v implausible for uniform 0..9999", m)
	}
}

func TestReservoirDeterministic(t *testing.T) {
	a, b := NewReservoir(16, 7), NewReservoir(16, 7)
	for i := 0; i < 1000; i++ {
		a.Add(float64(i))
		b.Add(float64(i))
	}
	for q := 0.0; q <= 1.0; q += 0.25 {
		if a.Quantile(q) != b.Quantile(q) {
			t.Fatalf("same seed diverged at q=%v", q)
		}
	}
}

func TestCDF(t *testing.T) {
	s := NewSample()
	for i := 1; i <= 10; i++ {
		s.Add(float64(i))
	}
	pts := s.CDF(0)
	if len(pts) != 10 {
		t.Fatalf("CDF points = %d, want 10", len(pts))
	}
	if pts[len(pts)-1].Frac != 1 {
		t.Fatalf("last frac = %v, want 1", pts[len(pts)-1].Frac)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Value < pts[i-1].Value || pts[i].Frac < pts[i-1].Frac {
			t.Fatalf("CDF not monotone at %d: %+v", i, pts)
		}
	}
	if got := s.FracLE(5); !almost(got, 0.5, 1e-12) {
		t.Fatalf("FracLE(5) = %v, want 0.5", got)
	}
	if got := s.FracLE(0); got != 0 {
		t.Fatalf("FracLE(0) = %v, want 0", got)
	}
	if got := s.FracLE(100); got != 1 {
		t.Fatalf("FracLE(100) = %v, want 1", got)
	}
}

func TestDREConvergesToRate(t *testing.T) {
	// Send 1250 bytes every 1us => 10 Gbps. After many taus the
	// estimator should read close to 10 Gbps.
	d := NewDRE(100e3) // tau = 100us
	var now int64
	for i := 0; i < 100000; i++ {
		d.Add(now, 1250)
		now += 1000
	}
	rate := d.Rate(now)
	wantBps := 1250.0 * 1e9 / 1000 // bytes per second
	if math.Abs(rate-wantBps)/wantBps > 0.05 {
		t.Fatalf("rate = %v B/s, want ~%v B/s", rate, wantBps)
	}
	u := d.Utilization(now, 10e9)
	if math.Abs(u-1.0) > 0.05 {
		t.Fatalf("utilization = %v, want ~1.0", u)
	}
}

func TestDREDecays(t *testing.T) {
	d := NewDRE(1e6)
	d.Add(0, 100000)
	r0 := d.Rate(0)
	r1 := d.Rate(5e6) // 5 taus later
	if r1 >= r0*0.01 {
		t.Fatalf("rate did not decay: %v -> %v", r0, r1)
	}
	if u := d.Utilization(10e6, 1e9); u != 0 && u > 1e-3 {
		t.Fatalf("stale utilization should be ~0, got %v", u)
	}
}

func TestDREUtilizationClamped(t *testing.T) {
	d := NewDRE(1000)
	d.Add(0, 1<<30)
	if u := d.Utilization(0, 1); u != 1 {
		t.Fatalf("clamp high: got %v", u)
	}
	d2 := NewDRE(1000)
	if u := d2.Utilization(0, 1e9); u != 0 {
		t.Fatalf("empty DRE utilization: got %v", u)
	}
}

func TestTimeseries(t *testing.T) {
	ts := NewTimeseries(1000)
	ts.Add(1500, 10)
	ts.Add(1999, 5)
	ts.Add(3500, 7)
	pts := ts.Points()
	if len(pts) != 3 {
		t.Fatalf("bins = %d, want 3 (%+v)", len(pts), pts)
	}
	if pts[0].V != 15 || pts[1].V != 0 || pts[2].V != 7 {
		t.Fatalf("bin totals wrong: %+v", pts)
	}
	// Backfill before start.
	ts.Add(200, 3)
	pts = ts.Points()
	if pts[0].V != 3 {
		t.Fatalf("backfill failed: %+v", pts)
	}
	if r := ts.Rate(1000); !almost(r, 8e9, 1) {
		t.Fatalf("Rate(1000B/1us) = %v, want 8e9 bps", r)
	}
}

func TestCounter(t *testing.T) {
	c := NewCounter()
	c.Add("data", 100)
	c.Add("probe", 10)
	c.Add("data", 50)
	if c.Get("data") != 150 || c.Get("probe") != 10 || c.Get("absent") != 0 {
		t.Fatalf("counter values wrong")
	}
	labels := c.Labels()
	if len(labels) != 2 || labels[0] != "data" || labels[1] != "probe" {
		t.Fatalf("labels = %v", labels)
	}
}
