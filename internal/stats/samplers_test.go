package stats

import (
	"math"
	"math/rand"
	"testing"
)

// meanOf draws n samples and averages them.
func meanOf(n int, draw func(*rand.Rand) float64) float64 {
	rng := rand.New(rand.NewSource(7))
	var sum float64
	for i := 0; i < n; i++ {
		sum += draw(rng)
	}
	return sum / float64(n)
}

func wantClose(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want)/want > tol {
		t.Errorf("%s: mean %.4g, want %.4g (±%.0f%%)", name, got, want, tol*100)
	}
}

func TestSamplerMeans(t *testing.T) {
	const n = 200_000
	wantClose(t, "gamma(2, 3)", meanOf(n, func(r *rand.Rand) float64 {
		return SampleGamma(r, 2, 3)
	}), 6, 0.02)
	wantClose(t, "gamma(0.5, 4)", meanOf(n, func(r *rand.Rand) float64 {
		return SampleGamma(r, 0.5, 4)
	}), 2, 0.02)
	wantClose(t, "weibull(1.5, 2)", meanOf(n, func(r *rand.Rand) float64 {
		return SampleWeibull(r, 1.5, 2)
	}), WeibullMean(1.5, 2), 0.02)
	wantClose(t, "lognormal(1e4, 1)", meanOf(n, func(r *rand.Rand) float64 {
		return SampleLogNormal(r, 1e4, 1)
	}), 1e4, 0.03)
	wantClose(t, "pareto(100, 2.5)", meanOf(n, func(r *rand.Rand) float64 {
		return SamplePareto(r, 100, 2.5)
	}), ParetoMean(100, 2.5), 0.03)
}

// TestSamplerDeterminism pins the exact first draws of each sampler:
// cohort generation relies on bit-identical sequences per seed.
func TestSamplerDeterminism(t *testing.T) {
	a := rand.New(rand.NewSource(42))
	b := rand.New(rand.NewSource(42))
	for i := 0; i < 100; i++ {
		if x, y := SampleGamma(a, 1.7, 2), SampleGamma(b, 1.7, 2); x != y {
			t.Fatalf("gamma draw %d diverged: %v vs %v", i, x, y)
		}
		if x, y := SampleWeibull(a, 0.8, 5), SampleWeibull(b, 0.8, 5); x != y {
			t.Fatalf("weibull draw %d diverged: %v vs %v", i, x, y)
		}
		if x, y := SampleLogNormal(a, 1e3, 2), SampleLogNormal(b, 1e3, 2); x != y {
			t.Fatalf("lognormal draw %d diverged: %v vs %v", i, x, y)
		}
		if x, y := SamplePareto(a, 10, 1.2), SamplePareto(b, 10, 1.2); x != y {
			t.Fatalf("pareto draw %d diverged: %v vs %v", i, x, y)
		}
	}
}

func TestSamplerPositivity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 10_000; i++ {
		if v := SampleGamma(rng, 0.3, 1); v < 0 {
			t.Fatalf("gamma produced negative %v", v)
		}
		if v := SampleWeibull(rng, 2, 1); v < 0 {
			t.Fatalf("weibull produced negative %v", v)
		}
		if v := SamplePareto(rng, 5, 3); v < 5 {
			t.Fatalf("pareto produced %v below its minimum", v)
		}
	}
}
