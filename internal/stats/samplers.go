package stats

import (
	"math"
	"math/rand"
)

// Samplers for the generative workload layer: deterministic draws from
// the classical renewal-process and heavy-tail families, parameterized
// the way workload specs want them (means and shapes, not raw scales).
// Every sampler consumes only the *rand.Rand it is handed, so a fixed
// seed replays the identical sequence on any platform.

// SampleGamma draws from a Gamma distribution with the given shape k
// and scale theta (mean k*theta) using the Marsaglia-Tsang method,
// with Ahrens-Dieter boosting for shape < 1. Panics on non-positive
// parameters (spec validation rejects them first).
func SampleGamma(rng *rand.Rand, shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		panic("stats: gamma needs positive shape and scale")
	}
	if shape < 1 {
		// Gamma(k) = Gamma(k+1) * U^(1/k).
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		return SampleGamma(rng, shape+1, scale) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v * scale
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v * scale
		}
	}
}

// SampleWeibull draws from a Weibull distribution with the given shape
// and scale by inverse transform: scale * (-ln U)^(1/shape). Panics on
// non-positive parameters.
func SampleWeibull(rng *rand.Rand, shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		panic("stats: weibull needs positive shape and scale")
	}
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	return scale * math.Pow(-math.Log(u), 1/shape)
}

// WeibullMean returns the mean of a Weibull(shape, scale) distribution:
// scale * Gamma(1 + 1/shape).
func WeibullMean(shape, scale float64) float64 {
	return scale * math.Gamma(1+1/shape)
}

// SampleLogNormal draws from a log-normal distribution parameterized by
// its arithmetic mean and the sigma of the underlying normal: the
// location mu is derived as ln(mean) - sigma^2/2 so the sample mean
// converges to the requested mean regardless of sigma. Panics on
// non-positive mean or negative sigma.
func SampleLogNormal(rng *rand.Rand, mean, sigma float64) float64 {
	if mean <= 0 || sigma < 0 {
		panic("stats: lognormal needs positive mean and non-negative sigma")
	}
	mu := math.Log(mean) - sigma*sigma/2
	return math.Exp(mu + sigma*rng.NormFloat64())
}

// SamplePareto draws from a Pareto distribution with minimum xm and
// tail index alpha by inverse transform: xm * U^(-1/alpha). The mean
// is finite only for alpha > 1 (it is xm*alpha/(alpha-1)); spec
// validation enforces that, this sampler only requires positivity.
func SamplePareto(rng *rand.Rand, xm, alpha float64) float64 {
	if xm <= 0 || alpha <= 0 {
		panic("stats: pareto needs positive minimum and alpha")
	}
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	return xm * math.Pow(u, -1/alpha)
}

// ParetoMean returns the mean of a Pareto(xm, alpha) distribution for
// alpha > 1; callers must not ask for a mean of a heavier tail.
func ParetoMean(xm, alpha float64) float64 {
	if alpha <= 1 {
		panic("stats: pareto mean diverges for alpha <= 1")
	}
	return xm * alpha / (alpha - 1)
}
