package stats

// Jain returns the Jain fairness index of the values:
//
//	J = (Σx)² / (n · Σx²)
//
// J is 1 when every value is equal and approaches 1/n when a single
// value dominates, so it summarizes how evenly a resource (here:
// per-flow throughput) is shared. Empty input — and the degenerate
// all-zero case, where the index is undefined — return 0.
func Jain(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	var sum, sumSq float64
	for _, v := range values {
		sum += v
		sumSq += v * v
	}
	if sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(len(values)) * sumSq)
}
