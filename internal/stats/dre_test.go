package stats

import (
	"math"
	"testing"
)

// An idle port's estimate must decay toward zero: after many time
// constants with no traffic, utilization reads as (effectively) zero
// rather than holding the last busy reading.
func TestDREIdleDecayTowardZero(t *testing.T) {
	d := NewDRE(200_000)
	capBps := 10e9
	d.Add(0, 150_000) // a burst at t=0
	if u := d.Utilization(0, capBps); u == 0 {
		t.Fatal("burst did not register")
	}
	prev := math.Inf(1)
	for _, now := range []int64{200_000, 400_000, 1_000_000, 4_000_000} {
		u := d.Utilization(now, capBps)
		if u >= prev {
			t.Fatalf("utilization not monotonically decaying: %g at t=%d (prev %g)", u, now, prev)
		}
		prev = u
	}
	if u := d.Utilization(10_000_000, capBps); u > 1e-9 {
		t.Fatalf("after 50 tau idle, utilization = %g, want ~0", u)
	}
}

// Sustained line-rate traffic must saturate the estimate at (clamped)
// 1.0: a 10 Gb/s link fed 10 Gb/s worth of bytes every tau/10 settles
// at full utilization.
func TestDRESustainedSaturation(t *testing.T) {
	tau := 200_000.0
	d := NewDRE(tau)
	capBps := 10e9
	bytesPerNs := capBps / 8 / 1e9
	step := int64(tau / 10)
	perStep := int(bytesPerNs * float64(step))
	var now int64
	for i := 0; i < 200; i++ {
		now = int64(i) * step
		d.Add(now, perStep)
	}
	u := d.Utilization(now, capBps)
	if u < 0.99 {
		t.Fatalf("sustained line rate reads %g, want >= 0.99", u)
	}
	if u > 1 {
		t.Fatalf("utilization exceeds clamp: %g", u)
	}
}

// A very long event gap (dt >> tau, far past float underflow of
// exp(-dt/tau)) must read as exactly zero rate, not NaN/Inf, and the
// next Add must start cleanly from zero.
func TestDREDecayAcrossVeryLongGap(t *testing.T) {
	d := NewDRE(200_000)
	d.Add(0, 1_000_000)
	// ~5e12 tau later: exp underflows to exactly 0.
	far := int64(1) << 62
	r := d.Rate(far)
	if r != 0 || math.IsNaN(r) || math.IsInf(r, 0) {
		t.Fatalf("rate after huge gap = %g, want exactly 0", r)
	}
	d.Add(far, 1500)
	got := d.Rate(far)
	want := 1500.0 / d.Tau * 1e9
	if math.Abs(got-want) > 1e-9*want {
		t.Fatalf("rate after restart = %g, want %g", got, want)
	}
}

// Peek reads must match what a mutating read at the same instant would
// return, bitwise, while leaving the estimator state untouched.
func TestDREPeekMatchesAndDoesNotMutate(t *testing.T) {
	capBps := 10e9
	mk := func() *DRE {
		d := NewDRE(200_000)
		d.Add(0, 9_000)
		d.Add(50_000, 3_000)
		return d
	}
	a, b := mk(), mk()
	// Peek twice on a, including between Adds; b never peeks.
	if got, want := a.UtilizationPeek(120_000, capBps), b.Utilization(120_000, capBps); got != want {
		t.Fatalf("peek %v != mutating read %v", got, want)
	}
	a.UtilizationPeek(170_000, capBps)
	a.Add(200_000, 4_500)
	b.Add(200_000, 4_500)
	// A mutating read folded decay at t=120k into b; a's state must be
	// what a peek-free history with the same reads would give. The
	// non-associativity of float exp means b may now legitimately
	// differ from a — the contract is that PEEKS leave no trace, i.e. a
	// equals a fresh peek-free replay.
	c := mk()
	c.Utilization(120_000, capBps)
	c.Add(200_000, 4_500)
	if a.RatePeek(300_000) == 0 {
		t.Fatal("estimator lost state")
	}
	if got, want := a.counter, func() float64 {
		d := mk()
		d.Add(200_000, 4_500)
		return d.counter
	}(); got != want {
		t.Fatalf("peek mutated estimator state: counter %v, want %v", got, want)
	}
	if b.counter != c.counter {
		t.Fatalf("control mismatch: %v vs %v", b.counter, c.counter)
	}
}
