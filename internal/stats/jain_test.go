package stats

import (
	"math"
	"testing"
)

func TestJain(t *testing.T) {
	approx := func(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

	if got := Jain(nil); got != 0 {
		t.Errorf("Jain(empty) = %v, want 0", got)
	}
	if got := Jain([]float64{0, 0, 0}); got != 0 {
		t.Errorf("Jain(all zero) = %v, want 0", got)
	}
	if got := Jain([]float64{42}); !approx(got, 1) {
		t.Errorf("Jain(single) = %v, want 1", got)
	}
	if got := Jain([]float64{3, 3, 3, 3}); !approx(got, 1) {
		t.Errorf("Jain(all equal) = %v, want 1", got)
	}
	// One value dominating n=4 drives the index toward 1/4.
	got := Jain([]float64{1e9, 1e-6, 1e-6, 1e-6})
	if !approx(got, 0.25) {
		t.Errorf("Jain(one dominant of 4) = %v, want ~0.25", got)
	}
	// Known hand-computed case: (1+2+3)² / (3 · (1+4+9)) = 36/42.
	if got := Jain([]float64{1, 2, 3}); !approx(got, 36.0/42.0) {
		t.Errorf("Jain(1,2,3) = %v, want %v", got, 36.0/42.0)
	}
	// Scale invariance.
	if a, b := Jain([]float64{1, 2, 3}), Jain([]float64{10, 20, 30}); !approx(a, b) {
		t.Errorf("Jain not scale invariant: %v vs %v", a, b)
	}
}
