package stats

import (
	"fmt"
	"math"
	"sort"
)

// P2Quantile estimates a single quantile of a stream in O(1) memory
// using the P² algorithm (Jain & Chlamtac, CACM 1985): five markers
// track the minimum, the target quantile, the quantile's half-way
// neighbours, and the maximum, adjusted with piecewise-parabolic
// interpolation as observations arrive. The estimator is fully
// deterministic for a given observation order, so results that flow
// into campaign output stay byte-reproducible.
//
// The zero value is not usable; construct with NewP2Quantile.
type P2Quantile struct {
	p  float64
	q  [5]float64 // marker heights
	n  [5]float64 // marker positions (1-based)
	np [5]float64 // desired marker positions
	dn [5]float64 // desired position increments per observation
	m  int        // observations seen while m < 5 (initialization)
}

// NewP2Quantile returns a streaming estimator for the p-th quantile
// (0 < p < 1).
func NewP2Quantile(p float64) *P2Quantile {
	if p <= 0 || p >= 1 {
		panic(fmt.Sprintf("stats: quantile %v outside (0, 1)", p))
	}
	e := &P2Quantile{p: p}
	e.dn = [5]float64{0, p / 2, p, (1 + p) / 2, 1}
	return e
}

// P returns the quantile this estimator targets.
func (e *P2Quantile) P() float64 { return e.p }

// Count returns the number of observations recorded.
func (e *P2Quantile) Count() int64 {
	if e.m < 5 {
		return int64(e.m)
	}
	return int64(e.n[4])
}

// Add records one observation.
func (e *P2Quantile) Add(x float64) {
	if e.m < 5 {
		e.q[e.m] = x
		e.m++
		if e.m == 5 {
			sort.Float64s(e.q[:])
			for i := 0; i < 5; i++ {
				e.n[i] = float64(i + 1)
				e.np[i] = 1 + 4*e.dn[i]
			}
		}
		return
	}

	// Find the cell k with q[k] <= x < q[k+1], widening the extremes.
	var k int
	switch {
	case x < e.q[0]:
		e.q[0] = x
		k = 0
	case x >= e.q[4]:
		e.q[4] = x
		k = 3
	default:
		k = sort.SearchFloat64s(e.q[:], x)
		if e.q[k] > x {
			k--
		}
		if k > 3 {
			k = 3
		}
	}
	for i := k + 1; i < 5; i++ {
		e.n[i]++
	}
	for i := 0; i < 5; i++ {
		e.np[i] += e.dn[i]
	}

	// Adjust the three interior markers toward their desired positions.
	for i := 1; i <= 3; i++ {
		d := e.np[i] - e.n[i]
		if (d >= 1 && e.n[i+1]-e.n[i] > 1) || (d <= -1 && e.n[i-1]-e.n[i] < -1) {
			s := math.Copysign(1, d)
			qn := e.parabolic(i, s)
			if e.q[i-1] < qn && qn < e.q[i+1] {
				e.q[i] = qn
			} else {
				e.q[i] = e.linear(i, s)
			}
			e.n[i] += s
		}
	}
}

// parabolic is the P² piecewise-parabolic marker height update.
func (e *P2Quantile) parabolic(i int, s float64) float64 {
	return e.q[i] + s/(e.n[i+1]-e.n[i-1])*
		((e.n[i]-e.n[i-1]+s)*(e.q[i+1]-e.q[i])/(e.n[i+1]-e.n[i])+
			(e.n[i+1]-e.n[i]-s)*(e.q[i]-e.q[i-1])/(e.n[i]-e.n[i-1]))
}

// linear is the fallback when the parabolic update would reorder markers.
func (e *P2Quantile) linear(i int, s float64) float64 {
	j := i + int(s)
	return e.q[i] + s*(e.q[j]-e.q[i])/(e.n[j]-e.n[i])
}

// Value returns the current quantile estimate. With fewer than five
// observations it interpolates the exact quantile of what it has seen;
// an empty estimator returns 0.
func (e *P2Quantile) Value() float64 {
	if e.m < 5 {
		if e.m == 0 {
			return 0
		}
		xs := append([]float64(nil), e.q[:e.m]...)
		sort.Float64s(xs)
		pos := e.p * float64(len(xs)-1)
		lo := int(pos)
		frac := pos - float64(lo)
		if lo+1 >= len(xs) {
			return xs[len(xs)-1]
		}
		return xs[lo]*(1-frac) + xs[lo+1]*frac
	}
	return e.q[2]
}

// Quantiles tracks several stream quantiles at once in O(1) memory —
// the default set is the tail-latency trio p50/p95/p99 used by the
// scenario and campaign layers for flow-completion times. Unlike
// Sample it never retains observations, so it is safe on streams of
// arbitrary length (the motivation: multi-seed campaign sweeps whose
// flow counts would otherwise accumulate in per-run Samples).
type Quantiles struct {
	targets []float64
	est     []*P2Quantile
	count   int64
}

// NewQuantiles returns a tracker for the given quantiles; with no
// arguments it tracks 0.5, 0.95 and 0.99.
func NewQuantiles(targets ...float64) *Quantiles {
	if len(targets) == 0 {
		targets = []float64{0.5, 0.95, 0.99}
	}
	q := &Quantiles{targets: append([]float64(nil), targets...)}
	for _, p := range q.targets {
		q.est = append(q.est, NewP2Quantile(p))
	}
	return q
}

// Add records one observation in every tracked estimator.
func (q *Quantiles) Add(x float64) {
	q.count++
	for _, e := range q.est {
		e.Add(x)
	}
}

// Count returns the number of observations recorded.
func (q *Quantiles) Count() int64 { return q.count }

// Targets returns the tracked quantiles in construction order.
func (q *Quantiles) Targets() []float64 { return append([]float64(nil), q.targets...) }

// Quantile returns the estimate for a tracked quantile p, or 0 when p
// is not tracked (exact match on the construction value).
func (q *Quantiles) Quantile(p float64) float64 {
	for i, t := range q.targets {
		if t == p {
			return q.est[i].Value()
		}
	}
	return 0
}
