// Package stats provides small, allocation-conscious statistics helpers
// used throughout the Contra simulator and benchmark harness: streaming
// summaries, percentile estimation, empirical CDFs, time series, and the
// discounting rate estimator (DRE) used for link-utilization measurement.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary accumulates a stream of float64 observations and reports
// count, mean, variance, min and max without retaining samples.
// The zero value is ready to use.
type Summary struct {
	n        int64
	mean, m2 float64
	min, max float64
}

// Add records one observation.
func (s *Summary) Add(x float64) {
	if s.n == 0 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	s.n++
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// Merge folds the observations summarized by o into s.
func (s *Summary) Merge(o *Summary) {
	if o.n == 0 {
		return
	}
	if s.n == 0 {
		*s = *o
		return
	}
	n := s.n + o.n
	d := o.mean - s.mean
	s.m2 += o.m2 + d*d*float64(s.n)*float64(o.n)/float64(n)
	s.mean += d * float64(o.n) / float64(n)
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
	s.n = n
}

// Count returns the number of observations recorded.
func (s *Summary) Count() int64 { return s.n }

// Mean returns the arithmetic mean, or 0 if empty.
func (s *Summary) Mean() float64 { return s.mean }

// Min returns the smallest observation, or 0 if empty.
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation, or 0 if empty.
func (s *Summary) Max() float64 { return s.max }

// Var returns the sample variance, or 0 for fewer than two observations.
func (s *Summary) Var() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Stddev returns the sample standard deviation.
func (s *Summary) Stddev() float64 { return math.Sqrt(s.Var()) }

// String renders a compact human-readable summary.
func (s *Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g min=%.4g max=%.4g sd=%.4g",
		s.n, s.Mean(), s.Min(), s.Max(), s.Stddev())
}

// Sample retains observations (optionally reservoir-sampled) so that
// percentiles and CDFs can be computed after the fact.
type Sample struct {
	xs     []float64
	sorted bool

	// cap>0 enables reservoir sampling with the given capacity.
	cap  int
	seen int64
	rng  uint64
}

// NewSample returns a Sample retaining every observation.
func NewSample() *Sample { return &Sample{} }

// NewReservoir returns a Sample that keeps a uniform random subset of at
// most capacity observations (Vitter's algorithm R) with a deterministic
// internal PRNG derived from seed.
func NewReservoir(capacity int, seed uint64) *Sample {
	if capacity <= 0 {
		capacity = 1
	}
	return &Sample{cap: capacity, rng: seed ^ 0x9e3779b97f4a7c15}
}

func (s *Sample) next() uint64 {
	// xorshift64*: fast deterministic PRNG, plenty for sampling.
	s.rng ^= s.rng >> 12
	s.rng ^= s.rng << 25
	s.rng ^= s.rng >> 27
	return s.rng * 0x2545f4914f6cdd1d
}

// Add records one observation.
func (s *Sample) Add(x float64) {
	s.sorted = false
	s.seen++
	if s.cap == 0 || len(s.xs) < s.cap {
		s.xs = append(s.xs, x)
		return
	}
	// Reservoir: replace a random slot with probability cap/seen.
	j := s.next() % uint64(s.seen)
	if j < uint64(s.cap) {
		s.xs[j] = x
	}
}

// Count returns the number of observations offered (not retained).
func (s *Sample) Count() int64 { return s.seen }

// Len returns the number of retained observations.
func (s *Sample) Len() int { return len(s.xs) }

func (s *Sample) ensureSorted() {
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
}

// Quantile returns the q-th quantile (0<=q<=1) by linear interpolation.
// It returns 0 for an empty sample.
func (s *Sample) Quantile(q float64) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	s.ensureSorted()
	if q <= 0 {
		return s.xs[0]
	}
	if q >= 1 {
		return s.xs[len(s.xs)-1]
	}
	pos := q * float64(len(s.xs)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(s.xs) {
		return s.xs[len(s.xs)-1]
	}
	return s.xs[lo]*(1-frac) + s.xs[lo+1]*frac
}

// Mean returns the mean of retained observations.
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// CDFPoint is one point of an empirical CDF: fraction Frac of samples
// are <= Value.
type CDFPoint struct {
	Value float64
	Frac  float64
}

// CDF returns up to maxPoints evenly spaced empirical CDF points.
// If maxPoints <= 0 every distinct retained sample becomes a point.
func (s *Sample) CDF(maxPoints int) []CDFPoint {
	if len(s.xs) == 0 {
		return nil
	}
	s.ensureSorted()
	n := len(s.xs)
	if maxPoints <= 0 || maxPoints > n {
		maxPoints = n
	}
	pts := make([]CDFPoint, 0, maxPoints)
	for i := 0; i < maxPoints; i++ {
		idx := (i + 1) * n / maxPoints
		if idx > n {
			idx = n
		}
		pts = append(pts, CDFPoint{Value: s.xs[idx-1], Frac: float64(idx) / float64(n)})
	}
	return pts
}

// FracLE returns the fraction of retained samples <= x.
func (s *Sample) FracLE(x float64) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	s.ensureSorted()
	i := sort.SearchFloat64s(s.xs, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(s.xs))
}

// DRE is a discounting rate estimator, the standard data-plane technique
// (used by CONGA and HULA) for measuring link utilization: a byte counter
// that decays exponentially with time constant Tau. Reading the estimator
// at time t yields bytes-per-second smoothed over roughly Tau.
//
// The decay is applied lazily on access, so the estimator costs O(1) per
// packet with no background timers. Times are nanoseconds.
type DRE struct {
	Tau     float64 // time constant in nanoseconds
	counter float64
	last    int64
}

// NewDRE returns a DRE with the given time constant in nanoseconds.
func NewDRE(tauNs float64) *DRE {
	if tauNs <= 0 {
		tauNs = 1
	}
	return &DRE{Tau: tauNs}
}

func (d *DRE) decay(now int64) {
	if now <= d.last {
		return
	}
	dt := float64(now - d.last)
	d.counter *= math.Exp(-dt / d.Tau)
	d.last = now
}

// Add records size bytes transmitted at time now (ns).
func (d *DRE) Add(now int64, size int) {
	d.decay(now)
	d.counter += float64(size)
}

// Rate returns the smoothed transmission rate in bytes/second at time now.
func (d *DRE) Rate(now int64) float64 {
	d.decay(now)
	return d.counter / d.Tau * 1e9
}

// Utilization returns Rate normalized by a link capacity in bits/second,
// clamped to [0, 1].
func (d *DRE) Utilization(now int64, capacityBps float64) float64 {
	if capacityBps <= 0 {
		return 0
	}
	u := d.Rate(now) * 8 / capacityBps
	if u < 0 {
		return 0
	}
	if u > 1 {
		return 1
	}
	return u
}

// RatePeek returns the smoothed rate at time now (bytes/second)
// WITHOUT folding the decay into the estimator's state. Exponential
// decay in floating point is not associative — exp(-a)*exp(-b) is not
// bitwise exp(-(a+b)) — so a mutating read between two Adds perturbs
// every later reading. Observers (the metrics sampler) must use the
// peek variants so sampling cannot change what the routing protocol
// measures.
func (d *DRE) RatePeek(now int64) float64 {
	c := d.counter
	if now > d.last {
		c *= math.Exp(-float64(now-d.last) / d.Tau)
	}
	return c / d.Tau * 1e9
}

// UtilizationPeek is Utilization without mutating the estimator; see
// RatePeek. At equal times it returns bitwise the same value a
// mutating Utilization call would.
func (d *DRE) UtilizationPeek(now int64, capacityBps float64) float64 {
	if capacityBps <= 0 {
		return 0
	}
	u := d.RatePeek(now) * 8 / capacityBps
	if u < 0 {
		return 0
	}
	if u > 1 {
		return 1
	}
	return u
}

// Reset clears the estimator.
func (d *DRE) Reset() { d.counter, d.last = 0, 0 }

// Timeseries accumulates (t, value) observations into fixed-width time
// bins; used for throughput-over-time plots such as Figure 14.
type Timeseries struct {
	BinWidth int64 // ns
	start    int64
	bins     []float64
	set      bool
}

// NewTimeseries creates a Timeseries with the given bin width in ns.
func NewTimeseries(binWidthNs int64) *Timeseries {
	if binWidthNs <= 0 {
		binWidthNs = 1
	}
	return &Timeseries{BinWidth: binWidthNs}
}

// Add accumulates v into the bin containing time t (ns).
func (ts *Timeseries) Add(t int64, v float64) {
	if !ts.set {
		ts.start = t - t%ts.BinWidth
		ts.set = true
	}
	if t < ts.start {
		// Grow backwards: rare; shift bins.
		shift := int((ts.start - t + ts.BinWidth - 1) / ts.BinWidth)
		ts.bins = append(make([]float64, shift), ts.bins...)
		ts.start -= int64(shift) * ts.BinWidth
	}
	idx := int((t - ts.start) / ts.BinWidth)
	for idx >= len(ts.bins) {
		ts.bins = append(ts.bins, 0)
	}
	ts.bins[idx] += v
}

// Point is one time-series bin: the bin's start time and its total.
type Point struct {
	T int64
	V float64
}

// Points returns the accumulated bins in time order.
func (ts *Timeseries) Points() []Point {
	pts := make([]Point, len(ts.bins))
	for i, v := range ts.bins {
		pts[i] = Point{T: ts.start + int64(i)*ts.BinWidth, V: v}
	}
	return pts
}

// Rate converts a bin total of bytes into bits/second given the bin width.
func (ts *Timeseries) Rate(binTotalBytes float64) float64 {
	return binTotalBytes * 8 * 1e9 / float64(ts.BinWidth)
}

// Counter is a labeled monotonically increasing counter set, used for
// traffic accounting (data bytes, probe bytes, header overhead, drops).
type Counter struct {
	m map[string]float64
}

// NewCounter returns an empty counter set.
func NewCounter() *Counter { return &Counter{m: make(map[string]float64)} }

// Add increments label by v.
func (c *Counter) Add(label string, v float64) { c.m[label] += v }

// Set overwrites label with v: the fold point for hot paths that
// accumulate into typed fields and materialize labels at run end.
func (c *Counter) Set(label string, v float64) { c.m[label] = v }

// Get returns the current value for label.
func (c *Counter) Get(label string) float64 { return c.m[label] }

// Labels returns all labels in sorted order.
func (c *Counter) Labels() []string {
	out := make([]string, 0, len(c.m))
	for k := range c.m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
