package stats

import (
	"math"
	"math/rand"
	"testing"
)

// relErr is the relative error tolerance for P² estimates against the
// exact sample quantile on well-behaved streams.
const relErr = 0.08

func TestP2QuantileTracksExactSample(t *testing.T) {
	for _, p := range []float64{0.5, 0.95, 0.99} {
		for seed := int64(1); seed <= 3; seed++ {
			rng := rand.New(rand.NewSource(seed))
			est := NewP2Quantile(p)
			exact := NewSample()
			for i := 0; i < 50000; i++ {
				// Log-normal-ish heavy tail, the FCT shape.
				x := math.Exp(rng.NormFloat64())
				est.Add(x)
				exact.Add(x)
			}
			want := exact.Quantile(p)
			got := est.Value()
			if math.Abs(got-want)/want > relErr {
				t.Errorf("p=%.2f seed=%d: P² %.4f vs exact %.4f", p, seed, got, want)
			}
		}
	}
}

func TestP2QuantileSmallStreams(t *testing.T) {
	e := NewP2Quantile(0.5)
	if e.Value() != 0 || e.Count() != 0 {
		t.Fatal("empty estimator should report 0")
	}
	for _, x := range []float64{3, 1, 2} {
		e.Add(x)
	}
	if got := e.Value(); got != 2 {
		t.Fatalf("median of {1,2,3} = %v, want 2 (exact below 5 observations)", got)
	}
	if e.Count() != 3 {
		t.Fatalf("Count() = %d, want 3", e.Count())
	}
}

func TestP2QuantileDeterminism(t *testing.T) {
	a, b := NewP2Quantile(0.99), NewP2Quantile(0.99)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 10000; i++ {
		x := rng.ExpFloat64()
		a.Add(x)
		b.Add(x)
	}
	if a.Value() != b.Value() {
		t.Fatal("same stream produced different estimates")
	}
}

func TestP2QuantileMonotoneStream(t *testing.T) {
	// A sorted stream is the classic P² stress case; the estimate must
	// stay within the observed range and near the true quantile.
	e := NewP2Quantile(0.95)
	n := 10000
	for i := 0; i < n; i++ {
		e.Add(float64(i))
	}
	got := e.Value()
	want := 0.95 * float64(n-1)
	if got < 0 || got > float64(n-1) {
		t.Fatalf("estimate %v escaped the observed range", got)
	}
	if math.Abs(got-want)/want > relErr {
		t.Fatalf("sorted stream: P² %.1f vs true %.1f", got, want)
	}
}

func TestP2QuantileRejectsBadP(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewP2Quantile(%v) should panic", p)
				}
			}()
			NewP2Quantile(p)
		}()
	}
}

func TestQuantilesDefaultTrio(t *testing.T) {
	q := NewQuantiles()
	rng := rand.New(rand.NewSource(4))
	exact := NewSample()
	for i := 0; i < 30000; i++ {
		x := rng.ExpFloat64()
		q.Add(x)
		exact.Add(x)
	}
	if q.Count() != 30000 {
		t.Fatalf("Count() = %d", q.Count())
	}
	for _, p := range []float64{0.5, 0.95, 0.99} {
		want := exact.Quantile(p)
		got := q.Quantile(p)
		if math.Abs(got-want)/want > relErr {
			t.Errorf("p=%.2f: streaming %.4f vs exact %.4f", p, got, want)
		}
	}
	if q.Quantile(0.42) != 0 {
		t.Fatal("untracked quantile should return 0")
	}
	want := []float64{0.5, 0.95, 0.99}
	for i, p := range q.Targets() {
		if p != want[i] {
			t.Fatalf("Targets() = %v", q.Targets())
		}
	}
}
