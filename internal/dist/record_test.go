package dist

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"contra/internal/campaign"
	"contra/internal/flowtrace"
	"contra/internal/scenario"
)

// resultsByName maps cell name -> canonical Result JSON for a set of
// shard streams. Live and replay campaigns share cell names (the axes
// are identical) but not scenario keys (the workloads differ), so name
// is the join column.
func resultsByName(t *testing.T, streams ...string) map[string]string {
	t.Helper()
	out := map[string]string{}
	for _, path := range streams {
		recs, err := ReadRecordsFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for i := range recs {
			r := &recs[i]
			if r.Err != "" {
				t.Fatalf("cell %s failed: %s", r.Scenario.Name, r.Err)
			}
			enc, err := json.Marshal(r.Result)
			if err != nil {
				t.Fatal(err)
			}
			out[r.Scenario.Name] = string(enc)
		}
	}
	return out
}

// TestRecordDirReplayAcrossShards pins the campaign-level trace
// contract: a recorded campaign replayed from its trace directory is
// byte-identical per cell, whether the replay runs in one process or
// as two merged shards, and the record dir holds one durable trace per
// cell.
func TestRecordDirReplayAcrossShards(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()
	traceDir := filepath.Join(dir, "traces")
	if err := os.MkdirAll(traceDir, 0o755); err != nil {
		t.Fatal(err)
	}

	live := sweepSpec()
	live.Record = true
	liveStream := filepath.Join(dir, "live.jsonl")
	sink, err := CreateJSONL(liveStream, false)
	if err != nil {
		t.Fatal(err)
	}
	st, err := Run(live, Options{Workers: 4, RecordDir: traceDir}, sink)
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if st.Failed > 0 {
		t.Fatalf("%d live cells failed", st.Failed)
	}

	// One trace per cell, each named by the sanitized cell name and
	// readable under the strict v1 contract.
	entries, err := os.ReadDir(traceDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != live.Size() {
		t.Fatalf("record dir holds %d traces, campaign has %d cells", len(entries), live.Size())
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".flow.jsonl") {
			t.Fatalf("unexpected file %s in record dir", e.Name())
		}
		if _, err := flowtrace.ReadFile(filepath.Join(traceDir, e.Name())); err != nil {
			t.Fatal(err)
		}
	}

	replaySpec := func() *campaign.Spec {
		s := sweepSpec()
		s.Workload = scenario.Workload{Kind: scenario.WorkloadTrace, TracePath: traceDir}
		return s
	}

	oneStream := filepath.Join(dir, "replay1.jsonl")
	sink, err = CreateJSONL(oneStream, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(replaySpec(), Options{Workers: 4}, sink); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}

	shardStreams := []string{filepath.Join(dir, "s0.jsonl"), filepath.Join(dir, "s1.jsonl")}
	for i, path := range shardStreams {
		sink, err := CreateJSONL(path, false)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Run(replaySpec(), Options{Workers: 2, Shard: Shard{i, 2}}, sink); err != nil {
			t.Fatal(err)
		}
		if err := sink.Close(); err != nil {
			t.Fatal(err)
		}
	}

	liveRes := resultsByName(t, liveStream)
	oneRes := resultsByName(t, oneStream)
	shardRes := resultsByName(t, shardStreams...)
	if len(liveRes) != live.Size() || len(oneRes) != live.Size() || len(shardRes) != live.Size() {
		t.Fatalf("cell counts differ: live %d, replay %d, sharded replay %d (want %d)",
			len(liveRes), len(oneRes), len(shardRes), live.Size())
	}
	for name, want := range liveRes {
		if got := oneRes[name]; got != want {
			t.Errorf("cell %s: single-process replay differs from live:\nlive:   %s\nreplay: %s", name, want, got)
		}
		if got := shardRes[name]; got != want {
			t.Errorf("cell %s: sharded replay differs from live:\nlive:   %s\nreplay: %s", name, want, got)
		}
	}

	// The merged sharded replay report must equal the single-process
	// replay report byte for byte (the usual merge determinism
	// contract, now over trace-kind cells).
	mergedOne, err := Merge([]string{oneStream})
	if err != nil {
		t.Fatal(err)
	}
	mergedShards, err := Merge(shardStreams)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := renderReport(t, mergedOne), renderReport(t, mergedShards); a != b {
		t.Fatal("sharded trace replay renders differently from single-process replay")
	}
}
