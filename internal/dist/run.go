package dist

import (
	"fmt"
	"path/filepath"
	"time"

	"contra/internal/campaign"
	"contra/internal/flowtrace"
)

// Options tunes one shard's streaming run.
type Options struct {
	// Workers bounds the scenario worker pool; <= 0 means 1.
	Workers int

	// Shard selects this process's slice of the expansion; the zero
	// value runs everything.
	Shard Shard

	// Checkpoint, when set, is consulted before running (completed
	// keys are skipped) and appended to after each record is emitted.
	Checkpoint *Checkpoint

	// Progress, when set, fires after each emitted outcome.
	Progress func(done, total int, o *campaign.Outcome)

	// Started, when set, fires when a worker picks a scenario up
	// (campaign.Options.Started).
	Started func(j *campaign.Job)

	// CellTimeout bounds one scenario's wall-clock execution
	// (campaign.Options.CellTimeout); <= 0 means no bound.
	CellTimeout time.Duration

	// RecordDir, when set, writes each cell's v1 flow trace there
	// (<sanitized cell name>.flow.jsonl) before the record is emitted —
	// the same crash ordering as the record stream, so a checkpointed
	// cell always has a durable trace. Traces shard with their cells:
	// each shard writes only the cells it owns, and the directory's
	// union across shards covers the campaign.
	RecordDir string
}

// Stats summarizes one shard run.
type Stats struct {
	// Planned is the number of scenarios in this shard.
	Planned int
	// Skipped is how many of them the checkpoint already covered.
	Skipped int
	// Ran is how many executed this run (Planned - Skipped).
	Ran int
	// Failed is how many of Ran ended in a scenario error.
	Failed int
}

// Run executes one shard of a campaign, streaming every outcome to the
// sink as it completes. Scenario failures are recorded, not fatal; a
// sink or checkpoint write error aborts the run (it would otherwise
// lose results silently).
func Run(spec *campaign.Spec, opts Options, sink Sink) (Stats, error) {
	var st Stats
	if sink == nil {
		return st, fmt.Errorf("dist: nil sink")
	}
	jobs, err := spec.Jobs()
	if err != nil {
		return st, err
	}
	var mine []campaign.Job
	for _, j := range jobs {
		if !opts.Shard.Owns(j.Index) {
			continue
		}
		st.Planned++
		if opts.Checkpoint != nil && opts.Checkpoint.Done(j.Scenario.Key()) {
			st.Skipped++
			continue
		}
		mine = append(mine, j)
	}
	err = campaign.Stream(mine, campaign.Options{
		Workers: opts.Workers, Progress: opts.Progress, Started: opts.Started,
		CellTimeout: opts.CellTimeout,
	},
		func(j *campaign.Job, o *campaign.Outcome) error {
			key := j.Scenario.Key()
			rec := &Record{
				Campaign: spec.Name,
				Key:      key,
				Index:    j.Index,
				Scenario: &j.Scenario,
				Result:   o.Result,
				Err:      o.Err,
			}
			// Trace first, then record, then mark: a cell the checkpoint
			// calls done always has both artifacts on disk.
			if opts.RecordDir != "" && o.Result != nil && o.Result.FlowTrace != nil {
				path := filepath.Join(opts.RecordDir, flowtrace.FileName(j.Scenario.Name))
				if err := o.Result.FlowTrace.WriteFile(path); err != nil {
					return fmt.Errorf("dist: writing trace for %s: %v", j.Scenario.Name, err)
				}
			}
			if err := sink.Emit(rec); err != nil {
				return err
			}
			// Mark after the record is durable in the stream: a crash
			// between the two re-runs the scenario, and Merge drops
			// the duplicate record by key.
			if opts.Checkpoint != nil {
				if err := opts.Checkpoint.Mark(key); err != nil {
					return err
				}
			}
			st.Ran++
			if o.Err != "" {
				st.Failed++
			}
			return nil
		})
	return st, err
}
