package dist

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
)

// Checkpoint is the resume journal of a sharded campaign run: one
// canonical scenario key (scenario.Key) per line, appended after the
// scenario's record reaches the sink. On restart the runner skips
// every checkpointed key, so interrupting a week-long sweep costs at
// most the scenarios that were in flight.
//
// Crash ordering: the record is emitted first, the key marked second.
// A crash between the two leaves the record without its mark; the
// scenario re-runs on resume and Merge deduplicates the identical
// records by key. A torn trailing key line (crash mid-Mark) is
// truncated away on open, and a torn line *inside* the file — a crash
// during a concurrent append, with valid records written after it —
// is skipped rather than fatal: the garbled line's key(s) simply
// re-run, which at-least-once execution already tolerates.
type Checkpoint struct {
	mu      sync.Mutex
	f       *os.File
	done    map[string]bool
	garbled int
}

// OpenCheckpoint opens (or creates) a checkpoint file and loads the
// completed key set from its complete lines.
func OpenCheckpoint(path string) (*Checkpoint, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := sealTornLine(f); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(0, 0); err != nil {
		f.Close()
		return nil, err
	}
	done := make(map[string]bool)
	garbled := 0
	br := bufio.NewReaderSize(f, 64<<10)
	for {
		line, err := br.ReadString('\n')
		if key := strings.TrimSpace(line); key != "" {
			if validKeyLine(key) {
				done[key] = true
			} else {
				// A torn line from a crashed concurrent append — possibly
				// fused with the valid line written after it. The fused
				// key(s) cannot be separated reliably, so drop the line;
				// its scenarios re-run and Merge dedups the records.
				garbled++
			}
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("dist: checkpoint %s: %v", path, err)
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, err
	}
	return &Checkpoint{f: f, done: done, garbled: garbled}, nil
}

// validKeyLine reports whether line has the shape of one canonical
// scenario key: name '#' followed by exactly 16 hex digits at the end
// (scenario.Key's format). A torn fragment, or a fragment fused with
// the line appended after it, fails the check — except when the fusion
// happens to end in a well-formed key, in which case the fused line is
// kept as an inert entry that matches no real key (Done never returns
// true for it) and the affected scenarios re-run.
func validKeyLine(line string) bool {
	i := strings.LastIndexByte(line, '#')
	if i < 1 || len(line)-i-1 != 16 {
		return false
	}
	for _, c := range line[i+1:] {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Garbled returns how many unparseable (torn or fused) lines the open
// skipped.
func (c *Checkpoint) Garbled() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.garbled
}

// Retain drops (in memory) every checkpointed key the predicate does
// not vouch for, returning how many were dropped. Resume paths call it
// with "does the stream file hold this key's record": the checkpoint
// and the stream are separate files with no write-ordering guarantee
// between their page-cache flushes, so after a power loss a key can be
// durable while its record is not — the scenario must then re-run
// rather than be skipped with its result lost. The file keeps the
// stale line; re-marking after the re-run is a no-op in the file's
// semantics (the key set is a set).
func (c *Checkpoint) Retain(present func(key string) bool) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	dropped := 0
	for key := range c.done {
		if !present(key) {
			delete(c.done, key)
			dropped++
		}
	}
	return dropped
}

// Done reports whether key has been checkpointed.
func (c *Checkpoint) Done(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.done[key]
}

// Len returns the number of checkpointed keys.
func (c *Checkpoint) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.done)
}

// Mark records key as completed, appending it to the file in a single
// write so a crash tears at most this one line.
func (c *Checkpoint) Mark(key string) error {
	if strings.ContainsAny(key, "\n\r") {
		return fmt.Errorf("dist: checkpoint key %q contains a newline", key)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.done[key] {
		return nil
	}
	var b bytes.Buffer
	b.WriteString(key)
	b.WriteByte('\n')
	if _, err := c.f.Write(b.Bytes()); err != nil {
		return err
	}
	c.done[key] = true
	return nil
}

// Close closes the underlying file.
func (c *Checkpoint) Close() error { return c.f.Close() }
