// Package dist scales campaign execution beyond one process: it
// partitions a campaign.Spec into deterministic shards, streams each
// completed outcome as a JSONL record through a Sink instead of
// accumulating a report in memory, checkpoints completed scenario keys
// to disk so an interrupted sweep resumes without re-running finished
// work, and merges per-shard record files back into output that is
// byte-identical to a single-process run.
//
// The moving parts compose around campaign.Stream:
//
//	shard 0:  contracamp -spec s.json -shard 0/2 -stream a.jsonl -checkpoint a.ck
//	shard 1:  contracamp -spec s.json -shard 1/2 -stream b.jsonl -checkpoint b.ck
//	merge:    contracamp -merge a.jsonl,b.jsonl -out merged.json -csv merged.csv
//
// Determinism contract: scenario execution is a pure function of the
// scenario, shard membership is a pure function of the expansion
// index, and Merge orders records by expansion index — so shard
// count, worker count, completion order, and crash/resume cycles are
// all invisible in the merged output.
package dist

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"sync"

	"contra/internal/scenario"
)

// Shard selects every Total-th expanded scenario, starting at Index:
// scenario i belongs to shard (i mod Total). Index is zero-based. The
// zero value (normalized by ParseShard and Owns) means "everything".
type Shard struct {
	Index int
	Total int
}

// ParseShard parses the CLI form "i/N" with 0 <= i < N; the empty
// string means the whole campaign (0/1).
func ParseShard(s string) (Shard, error) {
	if s == "" {
		return Shard{0, 1}, nil
	}
	idx, tot, ok := strings.Cut(s, "/")
	if !ok {
		return Shard{}, fmt.Errorf("dist: shard %q is not of the form i/N", s)
	}
	var sh Shard
	var err error
	if sh.Index, err = strconv.Atoi(idx); err != nil {
		return Shard{}, fmt.Errorf("dist: shard %q is not of the form i/N", s)
	}
	if sh.Total, err = strconv.Atoi(tot); err != nil {
		return Shard{}, fmt.Errorf("dist: shard %q is not of the form i/N", s)
	}
	if sh.Total < 1 || sh.Index < 0 || sh.Index >= sh.Total {
		return Shard{}, fmt.Errorf("dist: shard %q needs 0 <= i < N", s)
	}
	return sh, nil
}

// String renders the CLI form.
func (s Shard) String() string { return fmt.Sprintf("%d/%d", s.Index, s.Total) }

// Owns reports whether expansion index i belongs to this shard. The
// striped (mod) partition interleaves the matrix axes across shards,
// so every shard sees a similar mix of cheap and expensive scenarios
// rather than one shard drawing all the big-topology cells.
func (s Shard) Owns(i int) bool {
	if s.Total <= 1 {
		return true
	}
	return i%s.Total == s.Index
}

// Record is one streamed outcome: the scenario's canonical key and
// expansion index (the merge sort key), the scenario itself (so a
// merged report can rebuild CSV rows and comparison tables without
// the spec), and the result or error.
type Record struct {
	Campaign string             `json:"campaign,omitempty"`
	Key      string             `json:"key"`
	Index    int                `json:"index"`
	Scenario *scenario.Scenario `json:"scenario"`
	Result   *scenario.Result   `json:"result,omitempty"`
	Err      string             `json:"error,omitempty"`
}

// Sink consumes streamed records. Emit is never called concurrently
// (campaign.Stream serializes emission), so implementations need no
// locking for that path; JSONLSink still locks so ad-hoc Go callers
// can share one.
type Sink interface {
	Emit(*Record) error
	Close() error
}

// JSONLSink writes one record per line. Each Emit issues a single
// Write of the whole line, so a crash tears at most the final line of
// the file — which ReadRecords and the append-mode opener tolerate.
type JSONLSink struct {
	mu sync.Mutex
	w  io.Writer
	c  io.Closer
}

// NewJSONLSink streams records to w.
func NewJSONLSink(w io.Writer) *JSONLSink {
	s := &JSONLSink{w: w}
	if c, ok := w.(io.Closer); ok {
		s.c = c
	}
	return s
}

// CreateJSONL opens a record stream file. With resume set, the file is
// opened for append, first truncating any torn trailing line a crashed
// run left behind (the record was incomplete, so its scenario was
// never checkpointed and will re-run); otherwise the file is created
// fresh.
func CreateJSONL(path string, resume bool) (*JSONLSink, error) {
	if !resume {
		f, err := os.Create(path)
		if err != nil {
			return nil, err
		}
		return NewJSONLSink(f), nil
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := sealTornLine(f); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, err
	}
	return NewJSONLSink(f), nil
}

// sealTornLine truncates f back to its last complete ('\n'-terminated)
// line, dropping the partial record a mid-write crash left at the end.
func sealTornLine(f *os.File) error {
	info, err := f.Stat()
	if err != nil {
		return err
	}
	size := info.Size()
	if size == 0 {
		return nil
	}
	// Walk back from the end in chunks until a newline is found.
	const chunk = 64 << 10
	buf := make([]byte, chunk)
	end := size
	for end > 0 {
		n := int64(chunk)
		if n > end {
			n = end
		}
		if _, err := f.ReadAt(buf[:n], end-n); err != nil {
			return err
		}
		if i := bytes.LastIndexByte(buf[:n], '\n'); i >= 0 {
			return f.Truncate(end - n + int64(i) + 1)
		}
		end -= n
	}
	return f.Truncate(0) // no newline at all: the whole file is one torn line
}

// Emit writes one record line.
func (s *JSONLSink) Emit(rec *Record) error {
	b, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("dist: encode record %s: %v", rec.Key, err)
	}
	b = append(b, '\n')
	s.mu.Lock()
	defer s.mu.Unlock()
	_, err = s.w.Write(b)
	return err
}

// Close closes the underlying writer when it is closable.
func (s *JSONLSink) Close() error {
	if s.c != nil {
		return s.c.Close()
	}
	return nil
}

// ReadRecords decodes a JSONL record stream. A torn final line (no
// trailing newline — the signature of a crashed writer) is dropped;
// corruption anywhere else is an error, not a silent skip.
func ReadRecords(r io.Reader) ([]Record, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var recs []Record
	for lineNo := 1; ; lineNo++ {
		line, err := br.ReadBytes('\n')
		terminated := err == nil
		if trimmed := bytes.TrimSpace(line); len(trimmed) > 0 {
			var rec Record
			if uerr := json.Unmarshal(trimmed, &rec); uerr != nil {
				if !terminated {
					break // torn final line from a crash: ignore
				}
				return nil, fmt.Errorf("dist: record line %d: %v", lineNo, uerr)
			}
			recs = append(recs, rec)
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
	}
	return recs, nil
}

// StreamKeys returns the set of record keys a stream file holds; a
// missing file is an empty set. Resume paths use it to cross-check the
// checkpoint (Checkpoint.Retain): only a key whose record actually
// reached the stream may be skipped.
func StreamKeys(path string) (map[string]bool, error) {
	recs, err := ReadRecordsFile(path)
	if os.IsNotExist(err) {
		return map[string]bool{}, nil
	}
	if err != nil {
		return nil, err
	}
	keys := make(map[string]bool, len(recs))
	for i := range recs {
		keys[recs[i].Key] = true
	}
	return keys, nil
}

// ReadRecordsFile reads a JSONL record stream from disk.
func ReadRecordsFile(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	recs, err := ReadRecords(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return recs, nil
}
