package dist

import "sync"

// DedupSink wraps a Sink and drops every record whose key has already
// been emitted through it (or was listed as seen upfront). It is the
// at-least-once → exactly-once seam of the campaign fabric: workers
// may deliver the same cell's record twice — crash/resume re-sends,
// stolen cells finishing on two workers, retried uploads whose first
// attempt actually landed — and the coordinator writes its result
// stream through a DedupSink so each cell appears exactly once, the
// invariant Merge's byte-identity contract builds on. (Merge itself
// also deduplicates by key, so the two layers back each other up.)
type DedupSink struct {
	mu   sync.Mutex
	sink Sink
	seen map[string]bool
	dups int
}

// NewDedupSink wraps sink, pre-marking the keys of seen (may be nil)
// as already emitted — the resume path, fed from StreamKeys of the
// stream being appended to. The map is copied.
func NewDedupSink(sink Sink, seen map[string]bool) *DedupSink {
	d := &DedupSink{sink: sink, seen: make(map[string]bool, len(seen))}
	for k, ok := range seen {
		if ok {
			d.seen[k] = true
		}
	}
	return d
}

// Emit forwards the first record of each key and silently drops the
// rest. The key is marked seen only after the underlying Emit
// succeeds, so a failed write may be retried.
func (d *DedupSink) Emit(rec *Record) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.seen[rec.Key] {
		d.dups++
		return nil
	}
	if err := d.sink.Emit(rec); err != nil {
		return err
	}
	d.seen[rec.Key] = true
	return nil
}

// Seen reports whether key has already been emitted (or was pre-marked).
func (d *DedupSink) Seen(key string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.seen[key]
}

// Duplicates returns how many records were dropped as duplicates.
func (d *DedupSink) Duplicates() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.dups
}

// Close closes the underlying sink.
func (d *DedupSink) Close() error { return d.sink.Close() }
