package dist

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"contra/internal/scenario"
)

func TestDedupSinkEmitsEachKeyOnce(t *testing.T) {
	var buf bytes.Buffer
	d := NewDedupSink(NewJSONLSink(&buf), map[string]bool{"pre#0000000000000000": true})
	sc := &scenario.Scenario{Name: "x"}
	recs := []*Record{
		{Campaign: "c", Key: "a#1111111111111111", Index: 0, Scenario: sc},
		{Campaign: "c", Key: "a#1111111111111111", Index: 0, Scenario: sc},   // duplicate delivery
		{Campaign: "c", Key: "pre#0000000000000000", Index: 1, Scenario: sc}, // pre-seen (resume)
		{Campaign: "c", Key: "b#2222222222222222", Index: 2, Scenario: sc},
	}
	for _, r := range recs {
		if err := d.Emit(r); err != nil {
			t.Fatal(err)
		}
	}
	got, err := ReadRecords(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Key != "a#1111111111111111" || got[1].Key != "b#2222222222222222" {
		t.Fatalf("stream holds %d records %+v, want exactly a then b", len(got), got)
	}
	if d.Duplicates() != 2 {
		t.Fatalf("Duplicates() = %d, want 2", d.Duplicates())
	}
	if !d.Seen("pre#0000000000000000") || d.Seen("c#3333333333333333") {
		t.Fatal("Seen misreports")
	}
}

// TestDedupSinkDuplicateMergesOnce is the fabric dedup regression at
// the merge layer: the same scenario.Key delivered twice through a
// DedupSink-guarded stream merges to exactly one outcome.
func TestDedupSinkDuplicateMergesOnce(t *testing.T) {
	spec := sweepSpec()
	jobs, err := spec.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	j := jobs[0]
	res, err := scenario.Run(j.Scenario)
	if err != nil {
		t.Fatal(err)
	}
	rec := &Record{Campaign: spec.Name, Key: j.Scenario.Key(), Index: j.Index, Scenario: &j.Scenario, Result: res}

	path := filepath.Join(t.TempDir(), "dup.jsonl")
	sink, err := CreateJSONL(path, false)
	if err != nil {
		t.Fatal(err)
	}
	d := NewDedupSink(sink, nil)
	if err := d.Emit(rec); err != nil {
		t.Fatal(err)
	}
	if err := d.Emit(rec); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	report, err := Merge([]string{path})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Outcomes) != 1 {
		t.Fatalf("merged %d outcomes, want 1", len(report.Outcomes))
	}
	if d.Duplicates() != 1 {
		t.Fatalf("Duplicates() = %d, want 1", d.Duplicates())
	}
}

// TestCheckpointToleratesTornLineMidFile covers the crash-during-
// concurrent-append shape: a torn fragment with valid key lines
// appended after it on disk. Opening must succeed, every intact key
// must load, and the fused line must at worst re-run its scenarios
// (never satisfy Done for a key it swallowed).
func TestCheckpointToleratesTornLineMidFile(t *testing.T) {
	const (
		alpha = "alpha#00112233445566aa"
		beta  = "beta#8899aabbccddeeff"
		gamma = "gamma#0f1e2d3c4b5a6978"
	)
	path := filepath.Join(t.TempDir(), "torn.ck")
	// alpha committed; a crash tore "beta#8899" mid-write; the next
	// appender's gamma line landed right after the fragment.
	raw := alpha + "\n" + "beta#8899" + gamma + "\n"
	if err := os.WriteFile(path, []byte(raw), 0o644); err != nil {
		t.Fatal(err)
	}
	ck, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatalf("OpenCheckpoint on torn-mid-file checkpoint: %v", err)
	}
	if !ck.Done(alpha) {
		t.Error("intact key before the tear was lost")
	}
	if ck.Done(beta) || ck.Done(gamma) {
		t.Error("keys touching the torn line must re-run, not be skipped")
	}
	// The file stays appendable and re-marking the lost keys works.
	if err := ck.Mark(gamma); err != nil {
		t.Fatal(err)
	}
	ck.Close()
	ck, err = OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ck.Close()
	if !ck.Done(alpha) || !ck.Done(gamma) {
		t.Error("re-marked key did not survive reopen")
	}
}

// TestCheckpointSkipsGarbledLines: junk that does not resemble any
// canonical key (here a fragment torn before its hash was complete,
// with nothing fused after it but a later valid line) is skipped and
// counted, not fatal and not loaded.
func TestCheckpointSkipsGarbledLines(t *testing.T) {
	const good = "cell#aaaabbbbccccdddd"
	path := filepath.Join(t.TempDir(), "garbled.ck")
	raw := "not a key at all\n" + good + "\n" + "short#ab\n"
	if err := os.WriteFile(path, []byte(raw), 0o644); err != nil {
		t.Fatal(err)
	}
	ck, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatalf("OpenCheckpoint: %v", err)
	}
	defer ck.Close()
	if !ck.Done(good) {
		t.Error("valid key between garbled lines was lost")
	}
	if ck.Len() != 1 {
		t.Errorf("Len() = %d, want 1 (garbled lines must not load)", ck.Len())
	}
	if ck.Garbled() != 2 {
		t.Errorf("Garbled() = %d, want 2", ck.Garbled())
	}
}

// TestCheckpointToleratesOverlongTornLine: the pre-fix loader used a
// 1MB-capped scanner, so a huge torn line followed by valid records
// failed the whole open with "token too long".
func TestCheckpointToleratesOverlongTornLine(t *testing.T) {
	const good = "cell#aaaabbbbccccdddd"
	path := filepath.Join(t.TempDir(), "huge.ck")
	raw := strings.Repeat("x", 2<<20) + "\n" + good + "\n"
	if err := os.WriteFile(path, []byte(raw), 0o644); err != nil {
		t.Fatal(err)
	}
	ck, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatalf("OpenCheckpoint with a >1MB torn line: %v", err)
	}
	defer ck.Close()
	if !ck.Done(good) {
		t.Error("valid key after the overlong torn line was lost")
	}
	if ck.Garbled() != 1 {
		t.Errorf("Garbled() = %d, want 1", ck.Garbled())
	}
}
