package dist

import (
	"fmt"
	"sort"

	"contra/internal/campaign"
	"contra/internal/scenario"
)

// Merge folds per-shard record streams back into a campaign report.
// Records are deduplicated by canonical scenario key (a crash between
// stream-write and checkpoint-mark makes the resumed run re-emit an
// identical record) and ordered by expansion index, so the report —
// and the JSON/CSV rendered from it — is byte-identical to a
// single-process campaign.Run whatever the shard count, worker count,
// completion order, or number of crash/resume cycles.
//
// Merging is tolerant of missing scenarios (an unfinished sweep merges
// to a partial report) but rejects conflicting duplicates and records
// from different campaigns, which indicate mixed-up shard files.
func Merge(paths []string) (*campaign.Report, error) {
	if len(paths) == 0 {
		return nil, fmt.Errorf("dist: nothing to merge")
	}
	seen := map[string]*Record{}
	var recs []*Record
	name := ""
	named := false
	for _, path := range paths {
		fileRecs, err := ReadRecordsFile(path)
		if err != nil {
			return nil, err
		}
		for i := range fileRecs {
			rec := &fileRecs[i]
			if !named {
				name, named = rec.Campaign, true
			} else if rec.Campaign != name {
				return nil, fmt.Errorf("dist: %s mixes campaign %q into a merge of %q",
					path, rec.Campaign, name)
			}
			if rec.Scenario == nil {
				return nil, fmt.Errorf("dist: %s: record %q has no scenario", path, rec.Key)
			}
			if prev, ok := seen[rec.Key]; ok {
				if prev.Index != rec.Index {
					return nil, fmt.Errorf("dist: key %q at both index %d and %d",
						rec.Key, prev.Index, rec.Index)
				}
				continue // duplicate from a crash/resume cycle
			}
			seen[rec.Key] = rec
			recs = append(recs, rec)
		}
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].Index < recs[j].Index })
	for i := 1; i < len(recs); i++ {
		if recs[i].Index == recs[i-1].Index {
			return nil, fmt.Errorf("dist: two scenarios claim expansion index %d (%q and %q)",
				recs[i].Index, recs[i-1].Key, recs[i].Key)
		}
	}
	report := &campaign.Report{Name: name, Outcomes: make([]campaign.Outcome, len(recs))}
	for i, rec := range recs {
		report.Outcomes[i] = campaign.Outcome{
			Scenario: *rec.Scenario,
			Result:   rec.Result,
			Err:      rec.Err,
		}
	}
	return report, nil
}

// Schemes lists the distinct schemes of a report in first-appearance
// order — the column order of a comparison table rendered without the
// original spec in hand (the merge CLI path).
func Schemes(r *campaign.Report) []scenario.Scheme {
	var out []scenario.Scheme
	seen := map[scenario.Scheme]bool{}
	for _, o := range r.Outcomes {
		if !seen[o.Scenario.Scheme] {
			seen[o.Scenario.Scheme] = true
			out = append(out, o.Scenario.Scheme)
		}
	}
	return out
}
