package dist

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"contra/internal/campaign"
	"contra/internal/scenario"
)

// sweepSpec is a small multi-seed, multi-load matrix cheap enough to
// run several times per test: 1 topo × 2 schemes × 2 loads × 2 seeds.
func sweepSpec() *campaign.Spec {
	return &campaign.Spec{
		Name:    "sweep",
		Topos:   []string{"dc"},
		Schemes: []scenario.Scheme{scenario.SchemeECMP, scenario.SchemeSP},
		Loads:   []float64{0.2, 0.3},
		Seeds:   []int64{1, 2},
		Workload: scenario.Workload{
			Dist: "cache", DurationNs: 2_000_000, MaxFlows: 120,
		},
	}
}

// renderReport renders the deterministic JSON+CSV view of a report.
func renderReport(t *testing.T, r *campaign.Report) string {
	t.Helper()
	var j, c bytes.Buffer
	if err := r.WriteJSON(&j); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteCSV(&c); err != nil {
		t.Fatal(err)
	}
	return j.String() + "\n===\n" + c.String()
}

func TestParseShard(t *testing.T) {
	good := map[string]Shard{
		"":    {0, 1},
		"0/1": {0, 1},
		"2/4": {2, 4},
	}
	for in, want := range good {
		got, err := ParseShard(in)
		if err != nil || got != want {
			t.Errorf("ParseShard(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	for _, in := range []string{"3", "x/y", "4/4", "-1/2", "1/0", "1/2/3"} {
		if _, err := ParseShard(in); err == nil {
			t.Errorf("ParseShard(%q) accepted", in)
		}
	}
}

func TestShardsPartitionTheExpansion(t *testing.T) {
	for _, total := range []int{1, 2, 3, 4, 7} {
		for i := 0; i < 32; i++ {
			owners := 0
			for idx := 0; idx < total; idx++ {
				if (Shard{idx, total}).Owns(i) {
					owners++
				}
			}
			if owners != 1 {
				t.Fatalf("index %d owned by %d of %d shards", i, owners, total)
			}
		}
	}
}

// chaosSpec is a fixed-seed chaos campaign: whole-switch failure and
// reboot, seeded probe loss, and a live policy swap on a fattree. The
// CBR workload fixes the simulated horizon so every chaos event fires.
func chaosSpec() *campaign.Spec {
	return &campaign.Spec{
		Name:    "chaos",
		Topos:   []string{"fattree:4:1"},
		Schemes: []scenario.Scheme{scenario.SchemeContra},
		Seeds:   []int64{1, 2},
		Workload: scenario.Workload{
			Kind: scenario.WorkloadCBR, EndNs: 20_000_000,
		},
		Scripts: []campaign.Script{{
			Name: "chaos",
			Events: []scenario.Event{
				{Kind: scenario.ProbeLoss, AtNs: 500_000, Node: "auto", Rate: 0.25},
				{Kind: scenario.SwitchDown, AtNs: 6_000_000, Node: "auto"},
				{Kind: scenario.SwitchUp, AtNs: 9_000_000, Node: "auto"},
				{Kind: scenario.PolicySwap, AtNs: 13_000_000, NewPolicy: "minimize(path.len)"},
			},
		}},
	}
}

// TestChaosCampaignShardMergeDeterminism pins the chaos subsystem's
// determinism contract end to end: a fixed-seed chaos campaign must be
// byte-identical between a single-process run and a 2-shard merged
// run — probe-loss draws, switch reboots, and swap convergence windows
// included.
func TestChaosCampaignShardMergeDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	spec := chaosSpec()
	direct, err := campaign.Run(spec, campaign.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := renderReport(t, direct)
	// The campaign must actually measure chaos, not just run: every
	// outcome carries a converged swap window and realized probe loss.
	for _, o := range direct.Outcomes {
		if o.Result == nil {
			t.Fatalf("scenario %s failed: %s", o.Scenario.Name, o.Err)
		}
		if ns, ok := o.Result.SwapConvergenceNs(); !ok || ns <= 0 {
			t.Fatalf("scenario %s: empty swap convergence window (%d, %v)", o.Scenario.Name, ns, ok)
		}
		if o.Result.ProbeLossDropped == 0 {
			t.Fatalf("scenario %s: no probes dropped", o.Scenario.Name)
		}
	}

	dir := t.TempDir()
	var paths []string
	for idx := 0; idx < 2; idx++ {
		path := filepath.Join(dir, fmt.Sprintf("chaos%d.jsonl", idx))
		paths = append(paths, path)
		sink, err := CreateJSONL(path, false)
		if err != nil {
			t.Fatal(err)
		}
		st, err := Run(spec, Options{Workers: 2, Shard: Shard{idx, 2}}, sink)
		if err != nil {
			t.Fatal(err)
		}
		if err := sink.Close(); err != nil {
			t.Fatal(err)
		}
		if st.Failed > 0 {
			t.Fatalf("shard %d/2: %d scenarios failed", idx, st.Failed)
		}
	}
	merged, err := Merge(paths)
	if err != nil {
		t.Fatal(err)
	}
	if got := renderReport(t, merged); got != want {
		t.Fatalf("chaos 2-shard merge differs from single-process run:\n--- merged\n%.1500s\n--- direct\n%.1500s", got, want)
	}
}

func TestShardMergeIsByteIdenticalToSingleProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	spec := sweepSpec()
	direct, err := campaign.Run(spec, campaign.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	want := renderReport(t, direct)

	dir := t.TempDir()
	for _, total := range []int{1, 2, 4} {
		var paths []string
		for idx := 0; idx < total; idx++ {
			path := filepath.Join(dir, fmt.Sprintf("s%d_of_%d.jsonl", idx, total))
			paths = append(paths, path)
			sink, err := CreateJSONL(path, false)
			if err != nil {
				t.Fatal(err)
			}
			st, err := Run(spec, Options{Workers: 3, Shard: Shard{idx, total}}, sink)
			if err != nil {
				t.Fatal(err)
			}
			if err := sink.Close(); err != nil {
				t.Fatal(err)
			}
			if st.Failed > 0 {
				t.Fatalf("shard %d/%d: %d scenarios failed", idx, total, st.Failed)
			}
		}
		merged, err := Merge(paths)
		if err != nil {
			t.Fatal(err)
		}
		if got := renderReport(t, merged); got != want {
			t.Fatalf("%d-shard merge differs from single-process run:\n--- merged\n%.1500s\n--- direct\n%.1500s", total, got, want)
		}
	}
}

// failAfter simulates a crash: it forwards limit emits to the real
// sink, then errors, aborting the stream mid-campaign.
type failAfter struct {
	inner Sink
	n     int
	limit int
}

func (f *failAfter) Emit(r *Record) error {
	if f.n >= f.limit {
		return errors.New("simulated crash")
	}
	f.n++
	return f.inner.Emit(r)
}

func (f *failAfter) Close() error { return f.inner.Close() }

func TestCrashResumeMatchesUninterruptedRun(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	spec := sweepSpec()
	dir := t.TempDir()

	// Uninterrupted reference run.
	refPath := filepath.Join(dir, "ref.jsonl")
	refSink, err := CreateJSONL(refPath, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(spec, Options{Workers: 2}, refSink); err != nil {
		t.Fatal(err)
	}
	refSink.Close()
	refReport, err := Merge([]string{refPath})
	if err != nil {
		t.Fatal(err)
	}
	want := renderReport(t, refReport)

	// Interrupted run: 3 scenarios land, then the sink "crashes".
	streamPath := filepath.Join(dir, "run.jsonl")
	ckPath := filepath.Join(dir, "run.ck")
	ck, err := OpenCheckpoint(ckPath)
	if err != nil {
		t.Fatal(err)
	}
	sink, err := CreateJSONL(streamPath, false)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(spec, Options{Workers: 1, Checkpoint: ck, Shard: Shard{0, 1}},
		&failAfter{inner: sink, limit: 3})
	if err == nil {
		t.Fatal("interrupted run reported no error")
	}
	sink.Close()
	ck.Close()

	// Simulate the torn trailing writes of a hard kill.
	for _, p := range []string{streamPath, ckPath} {
		f, err := os.OpenFile(p, os.O_APPEND|os.O_WRONLY, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteString(`{"torn`); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}

	// Resume from the checkpoint: completed scenarios must not re-run.
	ck, err = OpenCheckpoint(ckPath)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Len() != 3 {
		t.Fatalf("checkpoint reloaded %d keys, want 3", ck.Len())
	}
	sink, err = CreateJSONL(streamPath, true)
	if err != nil {
		t.Fatal(err)
	}
	st, err := Run(spec, Options{Workers: 2, Checkpoint: ck}, sink)
	if err != nil {
		t.Fatal(err)
	}
	sink.Close()
	ck.Close()
	if st.Planned != spec.Size() || st.Skipped != 3 || st.Ran != spec.Size()-3 {
		t.Fatalf("resume stats = %+v, want planned=%d skipped=3", st, spec.Size())
	}

	merged, err := Merge([]string{streamPath})
	if err != nil {
		t.Fatal(err)
	}
	if got := renderReport(t, merged); got != want {
		t.Fatalf("crash/resume output differs from uninterrupted run:\n--- resumed\n%.1500s\n--- reference\n%.1500s", got, want)
	}
}

func TestRetainReRunsCheckpointedKeysWithLostRecords(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	spec := sweepSpec()
	spec.Loads = spec.Loads[:1] // 4 scenarios
	dir := t.TempDir()
	streamPath := filepath.Join(dir, "run.jsonl")
	ckPath := filepath.Join(dir, "run.ck")
	ck, err := OpenCheckpoint(ckPath)
	if err != nil {
		t.Fatal(err)
	}
	sink, err := CreateJSONL(streamPath, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(spec, Options{Workers: 1, Checkpoint: ck}, sink); err != nil {
		t.Fatal(err)
	}
	sink.Close()
	ck.Close()
	want := renderReport(t, mustMerge(t, streamPath))

	// Power-loss shape: the checkpoint flushed but one record did not.
	b, err := os.ReadFile(streamPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(b, []byte("\n"))
	if err := os.WriteFile(streamPath, bytes.Join(lines[1:], nil), 0o644); err != nil {
		t.Fatal(err)
	}

	ck, err = OpenCheckpoint(ckPath)
	if err != nil {
		t.Fatal(err)
	}
	keys, err := StreamKeys(streamPath)
	if err != nil {
		t.Fatal(err)
	}
	if dropped := ck.Retain(func(k string) bool { return keys[k] }); dropped != 1 {
		t.Fatalf("Retain dropped %d keys, want 1", dropped)
	}
	sink, err = CreateJSONL(streamPath, true)
	if err != nil {
		t.Fatal(err)
	}
	st, err := Run(spec, Options{Workers: 2, Checkpoint: ck}, sink)
	if err != nil {
		t.Fatal(err)
	}
	sink.Close()
	ck.Close()
	if st.Ran != 1 || st.Skipped != 3 {
		t.Fatalf("resume stats = %+v, want the lost scenario re-run", st)
	}
	if got := renderReport(t, mustMerge(t, streamPath)); got != want {
		t.Fatal("re-run after lost record did not restore the full report")
	}
}

func TestMergeDeduplicatesCrashWindowRecords(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	spec := sweepSpec()
	spec.Loads = spec.Loads[:1]
	spec.Seeds = spec.Seeds[:1] // 2 scenarios
	dir := t.TempDir()
	path := filepath.Join(dir, "run.jsonl")
	sink, err := CreateJSONL(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(spec, Options{Workers: 1}, sink); err != nil {
		t.Fatal(err)
	}
	sink.Close()
	want := renderReport(t, mustMerge(t, path))

	// A crash between stream-write and checkpoint-mark re-emits the
	// same record on resume: duplicate the first line.
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	first := b[:bytes.IndexByte(b, '\n')+1]
	if err := os.WriteFile(path, append(b, first...), 0o644); err != nil {
		t.Fatal(err)
	}
	if got := renderReport(t, mustMerge(t, path)); got != want {
		t.Fatal("duplicate record changed merged output")
	}
}

func mustMerge(t *testing.T, paths ...string) *campaign.Report {
	t.Helper()
	r, err := Merge(paths)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestMergeRejectsMixedCampaignsAndIndexConflicts(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, lines ...string) string {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	a := write("a.jsonl", `{"campaign":"x","key":"k1","index":0,"scenario":{"topo":"dc","scheme":"ecmp","workload":{}}}`)
	b := write("b.jsonl", `{"campaign":"y","key":"k2","index":1,"scenario":{"topo":"dc","scheme":"ecmp","workload":{}}}`)
	if _, err := Merge([]string{a, b}); err == nil || !strings.Contains(err.Error(), "mixes campaign") {
		t.Fatalf("mixed campaigns not rejected: %v", err)
	}
	c := write("c.jsonl",
		`{"campaign":"x","key":"k1","index":0,"scenario":{"topo":"dc","scheme":"ecmp","workload":{}}}`,
		`{"campaign":"x","key":"k3","index":0,"scenario":{"topo":"dc","scheme":"sp","workload":{}}}`)
	if _, err := Merge([]string{c}); err == nil || !strings.Contains(err.Error(), "index") {
		t.Fatalf("index conflict not rejected: %v", err)
	}
	d := write("d.jsonl",
		`{"campaign":"x","key":"k1","index":0,"scenario":{"topo":"dc","scheme":"ecmp","workload":{}}}`,
		`{"campaign":"x","key":"k1","index":4,"scenario":{"topo":"dc","scheme":"ecmp","workload":{}}}`)
	if _, err := Merge([]string{d}); err == nil || !strings.Contains(err.Error(), "index") {
		t.Fatalf("same key at two indices not rejected: %v", err)
	}
}

func TestReadRecordsToleratesTornFinalLineOnly(t *testing.T) {
	full := `{"campaign":"x","key":"k1","index":0,"scenario":{"topo":"dc","scheme":"ecmp","workload":{}}}`
	recs, err := ReadRecords(strings.NewReader(full + "\n" + `{"torn":`))
	if err != nil || len(recs) != 1 {
		t.Fatalf("torn final line: recs=%d err=%v, want 1 record", len(recs), err)
	}
	if _, err := ReadRecords(strings.NewReader(`{"torn":` + "\n" + full + "\n")); err == nil {
		t.Fatal("mid-file corruption silently skipped")
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	// Canonical-shaped keys (name#16hex): the loader only vouches for
	// lines of that shape, anything else is treated as torn debris.
	const (
		a = "a#1111111111111111"
		b = "b#2222222222222222"
		c = "c#3333333333333333"
	)
	path := filepath.Join(t.TempDir(), "ck")
	ck, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{a, b, a} {
		if err := ck.Mark(k); err != nil {
			t.Fatal(err)
		}
	}
	if ck.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (duplicate mark collapsed)", ck.Len())
	}
	ck.Close()
	ck, err = OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ck.Close()
	if !ck.Done(a) || !ck.Done(b) || ck.Done(c) {
		t.Fatal("reloaded key set wrong")
	}
	if err := ck.Mark("bad\nkey"); err == nil {
		t.Fatal("newline key accepted")
	}
}
