package dataplane

import (
	"testing"

	"contra/internal/core"
	"contra/internal/sim"
	"contra/internal/topo"
)

// TestPolicyAwareFlowletNeverZigzags reproduces Figure 8(a): the policy
// allows exactly the upper path S-C-E-F-D and the lower path S-A-E-B-D,
// never the zig-zags S-C-E-B-D or S-A-E-F-D. Naive flowlet switching
// violates this when S changes its preference mid-flowlet while E's
// pinned entry still points the old way; policy-aware flowlet switching
// keys pins by (tag, pid, flowlet) so the packet's tag keeps it on a
// compliant path (§5.3). We drive traffic while background load
// flips the preferred path and assert every delivered packet's visited
// set is exactly one of the two legal paths.
func TestPolicyAwareFlowletNeverZigzags(t *testing.T) {
	base := topo.Fig8Zigzag()
	g := withHosts(base, "S", "D", "C", "A")
	comp := compileOn(t, g, "minimize(if S C E F D + S A E B D then path.util else inf)", core.Options{})
	e := sim.NewEngine(17)
	n := sim.NewNetwork(e, g, sim.Config{TrackVisited: true})
	Deploy(n, comp)
	n.Start()

	upper := uint64(0)
	for _, name := range []string{"S", "C", "E", "F", "D"} {
		upper |= 1 << uint(g.MustNode(name))
	}
	lower := uint64(0)
	for _, name := range []string{"S", "A", "E", "B", "D"} {
		lower |= 1 << uint(g.MustNode(name))
	}
	switchMask := upper | lower

	var delivered, violations int
	n.OnHostRx = func(pkt *sim.Packet) {
		if pkt.Dst != g.MustNode("HD") {
			return
		}
		visited := pkt.Visited & switchMask
		// The packet's switch visits must be a subset of exactly one
		// legal path (it can be a subset when TrackVisited misses the
		// first hop... it cannot: every switch marks).
		if visited&^upper != 0 && visited&^lower != 0 {
			violations++
		}
		delivered++
	}

	warm := 12 * comp.Opts.ProbePeriodNs
	e.Run(warm)

	// Persistent S->D flow plus alternating background load that
	// flips which of the two paths is least utilized.
	n.StartFlows([]sim.FlowSpec{{
		ID: 1, Src: g.MustNode("HS"), Dst: g.MustNode("HD"), RateBps: 1e9, Start: warm,
	}})
	// Background bursts alternate: load C-E (upper) then A-E (lower).
	n.StartFlows([]sim.FlowSpec{
		{ID: 2, Src: g.MustNode("HC"), Dst: g.MustNode("HD"), RateBps: 6e9, Start: warm},
	})
	e.Run(warm + 40*comp.Opts.ProbePeriodNs)
	n.StartFlows([]sim.FlowSpec{
		{ID: 3, Src: g.MustNode("HA"), Dst: g.MustNode("HD"), RateBps: 6e9, Start: e.Now()},
	})
	e.Run(e.Now() + 80*comp.Opts.ProbePeriodNs)

	if delivered == 0 {
		t.Fatal("no traffic delivered")
	}
	if violations > 0 {
		t.Fatalf("%d of %d packets took a zig-zag (policy-violating) path", violations, delivered)
	}
}

// TestFlowletReordersBounded: flowlet switching exists to bound
// reordering. Count out-of-order arrivals at the receiver for one flow
// crossing a multipath fabric under churn; the fraction must stay
// small.
func TestFlowletReordersBounded(t *testing.T) {
	g := topo.PaperDataCenter()
	comp := compileOn(t, g, "minimize((path.len, path.util))", core.Options{})
	e := sim.NewEngine(23)
	n := sim.NewNetwork(e, g, sim.Config{})
	Deploy(n, comp)
	n.Start()
	warm := 12 * comp.Opts.ProbePeriodNs
	e.Run(warm)

	hosts := g.Hosts()
	var lastSeq int64 = -1
	var ooo, total int64
	n.OnHostRx = func(pkt *sim.Packet) {
		if pkt.FlowID != 99 {
			return
		}
		if pkt.Seq < lastSeq {
			ooo++
		} else {
			lastSeq = pkt.Seq
		}
		total++
	}
	// Background churn.
	var flows []sim.FlowSpec
	for i := 0; i < 8; i++ {
		flows = append(flows, sim.FlowSpec{
			ID: uint64(i + 1), Src: hosts[i], Dst: hosts[(i+9)%len(hosts)],
			RateBps: 1e9, Start: warm,
		})
	}
	flows = append(flows, sim.FlowSpec{
		ID: 99, Src: hosts[12], Dst: hosts[20], Size: 1_000_000, Start: warm,
	})
	n.StartFlows(flows)
	e.Run(warm + 3e8)
	if total == 0 {
		t.Fatal("flow 99 delivered nothing")
	}
	if frac := float64(ooo) / float64(total); frac > 0.02 {
		t.Fatalf("%.2f%% of packets reordered, want <= 2%%", frac*100)
	}
}
