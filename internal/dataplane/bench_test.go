package dataplane

import (
	"testing"

	"contra/internal/core"
	"contra/internal/metrics"
	"contra/internal/policy"
	"contra/internal/sim"
	"contra/internal/topo"
	"contra/internal/trace"
)

// BenchmarkProbeProcessing measures the switch runtime's probe hot
// path (PROCESSPROBE): the per-probe cost a P4 target would pay in
// pipeline stages shows up here as pure CPU.
func BenchmarkProbeProcessing(b *testing.B) {
	g := topo.Fattree(4, 0)
	pol := policy.MustParse("minimize(path.util)")
	comp, err := core.Compile(g, pol, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	e := sim.NewEngine(1)
	n := sim.NewNetwork(e, g, sim.Config{})
	routers := Deploy(n, comp)
	n.Start()
	e.Run(2 * comp.Opts.ProbePeriodNs) // tables warm

	sw := g.MustNode("e0_0")
	r := routers[sw]
	origin := g.MustNode("e1_0")
	send, _ := comp.PG.SendState(origin)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := n.NewPacket()
		p.Kind = sim.Probe
		p.Origin = origin
		p.Version = uint32(i + 10)
		p.Tag = int32(send)
		p.MV[0] = 0.25
		// Port 0 attaches an agg on e0_0.
		r.Handle(p, 0)
		// Drain whatever the multicast scheduled.
		e.Run(e.Now() + 1)
	}
}

// BenchmarkDataForwarding measures SWIFORWARDPKT with a warm flowlet
// table.
func BenchmarkDataForwarding(b *testing.B) {
	g := topo.PaperDataCenter()
	pol := policy.MustParse("minimize((path.len, path.util))")
	comp, err := core.Compile(g, pol, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	e := sim.NewEngine(1)
	n := sim.NewNetwork(e, g, sim.Config{})
	routers := Deploy(n, comp)
	n.Start()
	e.Run(12 * comp.Opts.ProbePeriodNs)

	l0 := g.MustNode("l0")
	r := routers[l0]
	srcHost := g.MustNode("h0_0")
	dstHost := g.MustNode("h1_0")
	hostPort := g.PortTo(l0, srcHost)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := n.NewPacket()
		p.Kind = sim.Data
		p.Size = 1500
		p.Src, p.Dst = srcHost, dstHost
		p.FlowID = 42
		p.Seq = int64(i)
		p.TTL = sim.InitialTTL
		p.Tag = -1
		r.Handle(p, hostPort)
		e.Run(e.Now() + 1)
	}
}

// BenchmarkDataForwardingTraced is BenchmarkDataForwarding with
// decision-level tracing attached (bounded by a decision ring, as a
// long campaign would run it): the measured delta against the plain
// benchmark is the observability tax on SWIFORWARDPKT, and the plain
// benchmark's own envelope — compared by scripts/bench.sh across
// commits — is what keeps the trace-off path at zero cost.
func BenchmarkDataForwardingTraced(b *testing.B) {
	g := topo.PaperDataCenter()
	pol := policy.MustParse("minimize((path.len, path.util))")
	comp, err := core.Compile(g, pol, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	e := sim.NewEngine(1)
	n := sim.NewNetwork(e, g, sim.Config{})
	routers := Deploy(n, comp)
	rec := trace.NewRecorder(trace.Decisions)
	rec.SetDecisionCap(4096)
	n.Trace = rec
	for _, r := range routers {
		r.SetTracer(rec)
	}
	n.Start()
	e.Run(12 * comp.Opts.ProbePeriodNs)

	l0 := g.MustNode("l0")
	r := routers[l0]
	srcHost := g.MustNode("h0_0")
	dstHost := g.MustNode("h1_0")
	hostPort := g.PortTo(l0, srcHost)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := n.NewPacket()
		p.Kind = sim.Data
		p.Size = 1500
		p.Src, p.Dst = srcHost, dstHost
		p.FlowID = 42
		p.Seq = int64(i)
		p.TTL = sim.InitialTTL
		p.Tag = -1
		r.Handle(p, hostPort)
		e.Run(e.Now() + 1)
	}
}

// BenchmarkDataForwardingMetrics is BenchmarkDataForwarding with the
// telemetry sampler attached (churn hooks live on every router, the
// periodic sampling timer armed, ring storage bounded as a campaign
// would run it): the delta against the plain benchmark is the
// telemetry tax on SWIFORWARDPKT. scripts/bench.sh holds it under the
// same 3x envelope as tracing and requires steady-state zero
// allocations (ring reuse after freeze).
func BenchmarkDataForwardingMetrics(b *testing.B) {
	g := topo.PaperDataCenter()
	pol := policy.MustParse("minimize((path.len, path.util))")
	comp, err := core.Compile(g, pol, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	e := sim.NewEngine(1)
	n := sim.NewNetwork(e, g, sim.Config{})
	routers := Deploy(n, comp)
	const intervalNs = 100_000
	m := metrics.NewRecorder(intervalNs)
	m.SetSampleCap(1024)
	n.AttachMetrics(m)
	for _, id := range g.Switches() {
		routers[id].SetChurn(m.RegisterRouter(g.Node(id).Name))
	}
	n.Start()
	e.Every(0, intervalNs, n.SampleMetrics)
	e.Run(12 * comp.Opts.ProbePeriodNs)

	l0 := g.MustNode("l0")
	r := routers[l0]
	srcHost := g.MustNode("h0_0")
	dstHost := g.MustNode("h1_0")
	hostPort := g.PortTo(l0, srcHost)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := n.NewPacket()
		p.Kind = sim.Data
		p.Size = 1500
		p.Src, p.Dst = srcHost, dstHost
		p.FlowID = 42
		p.Seq = int64(i)
		p.TTL = sim.InitialTTL
		p.Tag = -1
		r.Handle(p, hostPort)
		e.Run(e.Now() + 1)
	}
}

// BenchmarkProbeFanoutFattree8 measures one full probe period on a
// k=8 fat-tree (80 switches, the ROADMAP's profiling target): every
// origin emits a probe per pid x port and the fabric floods them along
// product-graph out-edges. The per-iteration cost is the whole
// period's event churn — originate bursts, calendar-queue scheduling,
// PROCESSPROBE — and must not allocate in steady state.
func BenchmarkProbeFanoutFattree8(b *testing.B) {
	g := topo.Fattree(8, 0)
	pol := policy.MustParse("minimize(path.util)")
	comp, err := core.Compile(g, pol, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	e := sim.NewEngine(1)
	n := sim.NewNetwork(e, g, sim.Config{})
	Deploy(n, comp)
	n.Start()
	e.Run(12 * comp.Opts.ProbePeriodNs) // tables warm, fwd maps sized
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Run(e.Now() + comp.Opts.ProbePeriodNs)
	}
}

// BenchmarkProbeFanoutFattree8Packed is BenchmarkProbeFanoutFattree8
// with multi-origin probe packing and delta suppression on: the same
// k=8 fat-tree probe period, but transit re-advertisements are batched
// into one packed probe per port and unchanged origins are suppressed
// between forced refreshes. The ratio to the unpacked benchmark is the
// PR 5 headline number (target >= 2x).
func BenchmarkProbeFanoutFattree8Packed(b *testing.B) {
	g := topo.Fattree(8, 0)
	pol := policy.MustParse("minimize(path.util)")
	comp, err := core.Compile(g, pol, core.Options{
		ProbePacking: true,
		SuppressEps:  0.01,
		RefreshEvery: 4,
	})
	if err != nil {
		b.Fatal(err)
	}
	e := sim.NewEngine(1)
	n := sim.NewNetwork(e, g, sim.Config{})
	Deploy(n, comp)
	n.Start()
	e.Run(12 * comp.Opts.ProbePeriodNs) // tables warm, fwd maps sized
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Run(e.Now() + comp.Opts.ProbePeriodNs)
	}
}

// BenchmarkPolicySwap measures the runtime-update hot path: atomically
// installing an already-compiled policy into every router of a warm
// k=8 fat-tree fleet (80 switches), plus the probe churn of the first
// post-swap period — the dominant cost of §5's live policy updates as
// the fabric re-converges under the new tag space. Recompilation is
// deliberately outside the loop (BenchmarkCompileFattreeMU covers it),
// matching how chaos pre-compiles swap targets at arm time.
func BenchmarkPolicySwap(b *testing.B) {
	g := topo.Fattree(8, 0)
	compA, err := core.Compile(g, policy.MustParse("minimize(path.util)"), core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	compB, err := compA.Recompile("minimize(path.len)")
	if err != nil {
		b.Fatal(err)
	}
	e := sim.NewEngine(1)
	n := sim.NewNetwork(e, g, sim.Config{})
	fleet := DeployFleet(n, compA)
	n.Start()
	e.Run(12 * compA.Opts.ProbePeriodNs) // tables warm
	targets := [2]*core.Compiled{compB, compA}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fleet.Install(targets[i&1])
		e.Run(e.Now() + compA.Opts.ProbePeriodNs)
	}
}

// BenchmarkCompileFattreeMU isolates the compiler on the figure 9
// mid-size point.
func BenchmarkCompileFattreeMU(b *testing.B) {
	g := topo.Fattree(10, 0)
	pol := policy.MustParse("minimize(path.util)")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Compile(g, pol, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
