package dataplane

import (
	"testing"

	"contra/internal/core"
	"contra/internal/sim"
	"contra/internal/topo"
)

// Unit tests for the §5.5 loop detector: TTL spread per packet hash.

func newTestContra(t *testing.T) *Contra {
	t.Helper()
	g := topo.Fig4Square()
	comp := compileOn(t, g, "minimize(path.util)", core.Options{})
	return New(comp, g.MustNode("S"))
}

func TestLoopDetectorFiresOnTTLSpread(t *testing.T) {
	c := newTestContra(t)
	delta := c.comp.Opts.LoopTTLDelta
	pkt := &sim.Packet{FlowID: 1, Dst: 99, Seq: 5}

	// Same packet seen with slowly decreasing TTLs: below the spread
	// threshold nothing fires.
	pkt.TTL = 60
	for i := 0; i < delta; i++ {
		pkt.TTL = uint8(60 - i)
		if c.loopDetect(pkt) && i < delta-1 {
			t.Fatalf("fired at spread %d < delta %d", i, delta)
		}
	}
	// One more revisit crosses the threshold.
	pkt.TTL = uint8(60 - delta)
	if !c.loopDetect(pkt) {
		t.Fatal("detector did not fire at threshold")
	}
	// Firing resets the slot: the next observation starts fresh.
	pkt.TTL = 55
	if c.loopDetect(pkt) {
		t.Fatal("slot was not reset after firing")
	}
}

func TestLoopDetectorDistinguishesPackets(t *testing.T) {
	c := newTestContra(t)
	a := &sim.Packet{FlowID: 1, Dst: 9, Seq: 1, TTL: 64}
	b := &sim.Packet{FlowID: 1, Dst: 9, Seq: 2, TTL: 30}
	c.loopDetect(a)
	// Packet b maps to a different signature: its much lower TTL must
	// not be attributed to packet a.
	if c.loopDetect(b) {
		t.Fatal("distinct packets shared a loop record")
	}
}

func TestLoopDetectorDirectionSensitive(t *testing.T) {
	// The same flow's data and acks (same FlowID and Seq, different
	// Dst) must not share a slot signature.
	h1 := pktHash(42, topo.NodeID(1), 7)
	h2 := pktHash(42, topo.NodeID(2), 7)
	if h1 == h2 {
		t.Fatal("pktHash ignores direction")
	}
	f1 := flowletHash(42, topo.NodeID(1))
	f2 := flowletHash(42, topo.NodeID(2))
	if f1 == f2 {
		t.Fatal("flowletHash ignores direction")
	}
}

func TestSweepEvictsStaleEntries(t *testing.T) {
	g := topo.Fig4Square()
	gh := withHosts(g, "S", "D")
	comp := compileOn(t, gh, "minimize(path.util)", core.Options{})
	e := sim.NewEngine(3)
	n := sim.NewNetwork(e, gh, sim.Config{})
	routers := Deploy(n, comp)
	n.Start()
	warm := 12 * comp.Opts.ProbePeriodNs
	e.Run(warm)
	n.StartFlows([]sim.FlowSpec{{
		ID: 1, Src: gh.MustNode("HS"), Dst: gh.MustNode("HD"), Size: 50_000, Start: warm,
	}})
	e.Run(warm + 4*comp.Opts.ProbePeriodNs)
	s := routers[gh.MustNode("S")]
	if len(s.srcPins) == 0 {
		t.Fatal("expected a source pin after traffic")
	}
	// After the flow ends and several sweep periods pass, the pin is
	// gone.
	e.Run(e.Now() + 64*comp.Opts.ProbePeriodNs)
	if len(s.srcPins) != 0 {
		t.Fatalf("stale source pins survived sweep: %d", len(s.srcPins))
	}
}
