package dataplane

import (
	"fmt"
	"testing"

	"contra/internal/core"
	"contra/internal/sim"
	"contra/internal/topo"
)

// deployOpts builds engine+network+routers under explicit options and
// runs the warmup.
func deployOpts(t *testing.T, g *topo.Graph, policySrc string, opts core.Options, warmupPeriods int) (*sim.Engine, *sim.Network, map[topo.NodeID]*Contra, *core.Compiled) {
	t.Helper()
	comp := compileOn(t, g, policySrc, opts)
	e := sim.NewEngine(42)
	n := sim.NewNetwork(e, g, sim.Config{})
	routers := Deploy(n, comp)
	n.Start()
	e.Run(int64(warmupPeriods) * comp.Opts.ProbePeriodNs)
	return e, n, routers, comp
}

// routeSnapshot captures every switch's source decision for every
// destination: the observable routing table. withPort includes the
// chosen egress port; callers comparing runs with a different probe
// arrival order leave it out, because the tie-break among equal-rank
// paths is arrival-order dependent (any of them is a correct table).
func routeSnapshot(g *topo.Graph, routers map[topo.NodeID]*Contra, withPort bool) map[string]string {
	out := make(map[string]string)
	for _, src := range g.Switches() {
		for _, dst := range g.Switches() {
			if src == dst {
				continue
			}
			k := g.Node(src).Name + "->" + g.Node(dst).Name
			vnode, pid, rank, ok := routers[src].BestEntry(dst)
			if !ok {
				out[k] = "none"
				continue
			}
			out[k] = fmt.Sprintf("v%d pid%d rank%s", vnode, pid, rank.String())
			if withPort {
				port, _ := routers[src].BestNextHop(dst)
				out[k] += fmt.Sprintf(" port%d", port)
			}
		}
	}
	return out
}

// TestSuppressionTablesMatchUnsuppressed is the suppression
// correctness property: with epsilon 0 (exact repeats only) the final
// routing tables after quiescence must be identical to the
// unsuppressed run, with and without packing. The property is stated
// over load-independent metrics (hop count, latency): a utilization
// policy legitimately diverges, because packing shrinks the probes'
// own bandwidth footprint and with it the measured utilization — that
// is the optimization working, not a table bug (the util case is
// covered by reachability below and the FCT-level scenario test).
func TestSuppressionTablesMatchUnsuppressed(t *testing.T) {
	aggVariants := []struct {
		opts core.Options
		// Packing batches re-advertisements, changing the arrival
		// order that breaks ties among equal-rank paths; only the
		// suppression-only run preserves the exact egress choice.
		withPort bool
	}{
		{core.Options{SuppressEps: 0, RefreshEvery: 4}, true},
		{core.Options{ProbePacking: true}, false},
		{core.Options{ProbePacking: true, SuppressEps: 0, RefreshEvery: 4}, false},
	}
	for _, pol := range []string{"minimize(path.len)", "minimize(path.lat)"} {
		for _, v := range aggVariants {
			g := topo.Fattree(4, 2)
			_, _, base, _ := deployOpts(t, g, pol, core.Options{}, 30)
			want := routeSnapshot(g, base, v.withPort)
			g2 := topo.Fattree(4, 2)
			_, _, routers, _ := deployOpts(t, g2, pol, v.opts, 30)
			got := routeSnapshot(g2, routers, v.withPort)
			for k, w := range want {
				if w == "none" {
					t.Fatalf("%s %+v: baseline has no route for %s", pol, v.opts, k)
				}
				if got[k] != w {
					t.Errorf("%s %+v: %s diverged: got %q want %q", pol, v.opts, k, got[k], w)
				}
			}
		}
	}
	// Utilization policy: ranks may differ (less probe self-traffic)
	// but every pair must still converge to a live route.
	for _, v := range aggVariants {
		g := topo.Fattree(4, 2)
		_, _, routers, _ := deployOpts(t, g, "minimize(path.util)", v.opts, 30)
		for k, val := range routeSnapshot(g, routers, false) {
			if val == "none" {
				t.Errorf("minimize(path.util) %+v: no route for %s", v.opts, k)
			}
		}
	}
}

// TestSuppressionSavesProbes proves the knobs actually reduce probe
// volume on an idle fabric: with suppression on, fabric probe bytes
// over a quiet window must drop well below the unsuppressed volume,
// and the suppression counter must account for skipped
// re-advertisements.
func TestSuppressionSavesProbes(t *testing.T) {
	run := func(opts core.Options) (probeBytes float64, saved, suppressed float64) {
		g := topo.Fattree(4, 2)
		e, n, _, comp := deployOpts(t, g, "minimize(path.util)", opts, 12)
		e.Run(e.Now() + 20*comp.Opts.ProbePeriodNs)
		n.FoldCounters()
		return n.Counters.Get("bytes_probe"), n.Counters.Get("probe_tx_saved"), n.Counters.Get("probe_suppressed")
	}
	plainBytes, _, _ := run(core.Options{})
	packedBytes, saved, suppressed := run(core.Options{ProbePacking: true, SuppressEps: 0.01})
	if packedBytes >= plainBytes/4 {
		t.Errorf("packed+suppressed probe bytes %.0f, want < 1/4 of unpacked %.0f", packedBytes, plainBytes)
	}
	if saved <= 0 {
		t.Errorf("probe_tx_saved = %.0f, want > 0", saved)
	}
	if suppressed <= 0 {
		t.Errorf("probe_suppressed = %.0f, want > 0", suppressed)
	}
}

// TestSuppressedOriginReadvertisesWithinRefresh is the forced-refresh
// regression: silence an origin with rate-1.0 probe loss on its fabric
// links until every remote route to it expires, then clear the loss.
// Upstream switches now hold entries whose metrics are unchanged since
// their last advertisement — exactly what a large epsilon suppresses —
// so only the forced refresh every RefreshEvery periods can carry the
// recovery downstream. Remote switches must re-learn the origin within
// a few refresh horizons; a suppression bug that skips the forced
// refresh leaves them dark forever.
func TestSuppressedOriginReadvertisesWithinRefresh(t *testing.T) {
	const refreshEvery = 4
	for _, packing := range []bool{false, true} {
		g := topo.Fattree(4, 2)
		opts := core.Options{ProbePacking: packing, SuppressEps: 1.0, RefreshEvery: refreshEvery}
		e, n, routers, comp := deployOpts(t, g, "minimize(path.util)", opts, 12)
		period := comp.Opts.ProbePeriodNs

		// The origin is the first edge switch; the observer the last.
		edges := []topo.NodeID{}
		for _, s := range g.Switches() {
			if g.Node(s).Role == topo.RoleEdge {
				edges = append(edges, s)
			}
		}
		origin, observer := edges[0], edges[len(edges)-1]
		if !routers[observer].HasRoute(origin) {
			t.Fatalf("packing=%v: observer has no route to origin after warmup", packing)
		}

		var lossLinks []topo.LinkID
		for _, p := range g.Ports(origin) {
			if g.Node(p.Peer).Kind == topo.Switch {
				lossLinks = append(lossLinks, p.Link)
			}
		}
		n.SetProbeLossSeed(7)
		start := e.Now()
		for _, id := range lossLinks {
			n.SetProbeLoss(id, 1.0, start)
		}
		// Expiry horizon is (failure-detect + refresh) periods + slack;
		// run well past it so every remote entry for the origin ages out.
		e.Run(start + 16*period)
		if routers[observer].HasRoute(origin) {
			t.Fatalf("packing=%v: observer still routes to silenced origin after 16 periods", packing)
		}
		clear := e.Now()
		for _, id := range lossLinks {
			n.SetProbeLoss(id, 0, clear)
		}
		// Recovery budget: one refresh horizon per hop of the 4-hop
		// fat-tree path, plus propagation slack.
		deadline := clear + int64(4*refreshEvery+4)*period
		recovered := int64(-1)
		for e.Now() < deadline {
			e.Run(e.Now() + period)
			if routers[observer].HasRoute(origin) {
				recovered = e.Now() - clear
				break
			}
		}
		if recovered < 0 {
			t.Fatalf("packing=%v: origin never re-advertised within %d periods of loss clearing",
				packing, 4*refreshEvery+4)
		}
		t.Logf("packing=%v: re-learned origin %.1f periods after loss cleared",
			packing, float64(recovered)/float64(period))
	}
}
