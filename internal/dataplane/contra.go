// Package dataplane is the Contra switch runtime: it interprets the
// compiler's per-switch programs exactly the way a P4 target would run
// the generated code. It implements PROCESSPROBE and SWIFORWARDPKT
// (Figure 7) with the paper's refinements: versioned probes (§5.1),
// policy-aware flowlet switching (§5.3), failure detection with metric
// expiration (§5.4), and lazy loop breaking via TTL spread (§5.5).
package dataplane

import (
	"contra/internal/analysis"
	"contra/internal/core"
	"contra/internal/metrics"
	"contra/internal/pg"
	"contra/internal/policy"
	"contra/internal/sim"
	"contra/internal/topo"
	"contra/internal/trace"
)

// fwdKey keys FwdT: destination switch, local virtual node, probe id.
type fwdKey struct {
	origin topo.NodeID
	vnode  pg.NodeID
	pid    uint8
}

// fwdEntry is one FwdT row: the best known metric vector for this key,
// where it came from, and when.
type fwdEntry struct {
	mv      [4]float64
	ntag    pg.NodeID // the upstream (probe-sender) virtual node: the packet's next tag
	nhop    int       // egress port toward it
	version uint32
	updated int64
	rank    policy.Rank // cached full-policy rank (recombination input)

	// Advertisement state (probe packing / delta suppression).
	// pending marks the entry queued for the next packed flush;
	// lastAdv* snapshot what was last re-advertised downstream, so
	// suppression can skip origins whose route and metrics are
	// unchanged — a route change (nhop/ntag) always re-advertises,
	// which is what keeps chaos scenarios converging.
	pending   bool
	advValid  bool
	advNhop   int
	advNtag   pg.NodeID
	lastAdvAt int64
	lastAdvMV [4]float64

	// alt is the runner-up shadow (decision tracing / counterfactual
	// replay): nil in normal runs and allocated lazily only when altOn,
	// so the probe hot path's cache footprint grows by one pointer, not
	// a whole shadow record.
	alt *altShadow
}

// altShadow retains the best live offer seen on a port other than the
// incumbent route's. Probe merging keeps one winner per key, so under
// a single-(vnode, pid) policy the losing offers — the alternatives a
// decision actually had — would otherwise be unobservable.
// shadow.nhop != entry.nhop is invariant.
type altShadow struct {
	nhop    int
	ntag    pg.NodeID
	updated int64
	rank    policy.Rank
}

// setRank stores a (possibly scratch-aliased) rank into the entry's
// own storage, reusing its component slice so the steady-state probe
// refresh never allocates.
func (e *fwdEntry) setRank(r policy.Rank) {
	e.rank.Inf = r.Inf
	e.rank.V = append(e.rank.V[:0], r.V...)
}

// flowKey keys the policy-aware flowlet table (§5.3): tag, pid and
// flowlet hash, so pinning never crosses a policy constraint.
type flowKey struct {
	vnode pg.NodeID
	pid   uint8
	fid   uint32
}

type flowletEntry struct {
	nhop    int
	ntag    pg.NodeID
	lastPkt int64
}

// srcKey keys the source-switch pin: destination switch + flowlet hash.
type srcKey struct {
	dst topo.NodeID
	fid uint32
}

type srcPin struct {
	nhop    int
	ntag    pg.NodeID
	pid     uint8
	lastPkt int64
}

// loopSlots is the size of the loop-detection register array (§5.5).
const loopSlots = 512

type loopSlot struct {
	sig    uint64
	minTTL uint8
	maxTTL uint8
	set    bool
}

// Contra is the per-switch router.
type Contra struct {
	comp *core.Compiled
	prog *core.SwitchProgram
	res  *analysis.Result
	sw   *sim.SwitchDev

	fwd      map[fwdKey]*fwdEntry
	best     map[topo.NodeID]fwdKey
	flowlets map[flowKey]*flowletEntry
	srcPins  map[srcKey]*srcPin
	loopTbl  [loopSlots]loopSlot

	// evCand/evCur are reusable rank evaluators (candidate vs
	// incumbent, so a pairwise comparison can hold both results); the
	// probe hot path evaluates ranks without allocating.
	evCand, evCur *analysis.Evaluator

	version   uint32
	lastProbe []int64 // per port: last probe arrival (failure detection)

	probeSize int

	// era is the policy generation this router's tables were computed
	// under; Fleet.Install bumps it on every hot swap. Probes and data
	// packets are stamped with it so tag state from a superseded
	// compilation is never misread against the new product graph.
	era uint8

	// originCancel stops the probe-origination timer; Install uses it
	// when a swap changes whether this switch originates probes.
	originCancel func()

	// Probe aggregation (§5.2 overhead reduction). With packing on,
	// transit re-advertisements are deferred to a once-per-period flush
	// that emits one packed multi-origin probe per egress port (plus a
	// liveness heartbeat on quiet ports), and probe origination rides
	// the same flush. With suppression on, an accepted update whose
	// route is unchanged and whose metric vector moved at most
	// suppressEps per component since the last advertisement is not
	// re-advertised at all; a forced refresh every refreshNs bounds
	// downstream staleness, and the failure/expiry horizons stretch by
	// the same bound so suppressed-but-alive routes never age out.
	packing     bool
	suppressOn  bool
	suppressEps float64
	refreshNs   int64      // forced-refresh horizon (RefreshEvery periods)
	expireNs    int64      // entry expiry horizon incl. suppression slack
	deadNs      int64      // port-liveness horizon incl. suppression slack
	pend        [][]fwdKey // per egress port: entries awaiting the packed flush
	advPorts    []int      // union of ProbeOut ports (flush/heartbeat targets)
	originPorts []bool     // per port: carries this switch's own origin entries

	// LoopBreaks counts §5.5 flowlet flushes (exported for tests and
	// the evaluation harness).
	LoopBreaks int64

	// tr, when non-nil, receives every fresh forwarding decision
	// (chosen and runner-up port + rank) at the decisions trace level;
	// ovr, when non-nil, pins matching flows to an alternative choice
	// during counterfactual replay. Both stay nil in normal runs so
	// the data path pays one pointer check each.
	tr  *trace.Recorder
	ovr *trace.Overrides
	// altOn enables runner-up shadow maintenance in probe merging; set
	// iff decision tracing or overrides will read the shadows.
	altOn bool

	// mx, when non-nil, accumulates probe-table churn (entries
	// added/replaced/expired) and route flaps (best next-hop changes
	// per destination) for the metrics sampler. Nil when telemetry is
	// off, so the probe path pays one pointer check.
	mx *metrics.Churn
}

// New builds the router for one switch.
func New(comp *core.Compiled, swID topo.NodeID) *Contra {
	c := &Contra{
		comp:      comp,
		prog:      comp.Switches[swID],
		res:       comp.Analysis,
		fwd:       make(map[fwdKey]*fwdEntry),
		best:      make(map[topo.NodeID]fwdKey),
		flowlets:  make(map[flowKey]*flowletEntry),
		srcPins:   make(map[srcKey]*srcPin),
		evCand:    comp.Analysis.NewEvaluator(),
		evCur:     comp.Analysis.NewEvaluator(),
		probeSize: comp.Stats.ProbeBytes + 18, // + minimal L2 framing
	}
	c.packing = comp.Opts.ProbePacking
	c.suppressOn = comp.Opts.SuppressOn()
	c.suppressEps = comp.Opts.SuppressEps
	c.setHorizons()
	return c
}

// setHorizons derives the expiry and failure-detection horizons from
// the compiled options. Suppression legitimately quiets re-advertise-
// ments, and the quiet window compounds across a hop: an upstream's
// forced refresh arriving just inside this switch's own refresh
// horizon is suppressed, so consecutive advertisements can be nearly
// 2x RefreshEvery periods apart. Both horizons stretch by that bound —
// except port liveness under packing, where the per-period heartbeat
// keeps ports fresh at the §5.4 horizon.
func (c *Contra) setHorizons() {
	period := c.comp.Opts.ProbePeriodNs
	k := int64(c.comp.Opts.FailureDetectPeriods)
	var slack int64
	if c.suppressOn {
		c.refreshNs = int64(c.comp.Opts.RefreshEvery) * period
		slack = 2 * int64(c.comp.Opts.RefreshEvery)
	}
	c.expireNs = (k+slack)*period + period
	if c.packing {
		slack = 0 // heartbeats refresh port liveness every period
	}
	c.deadNs = (k + slack) * period
}

// Attach implements sim.Router: initialize port state and start the
// probe generator (or, under packing, the per-period packed flush).
func (c *Contra) Attach(sw *sim.SwitchDev) {
	c.sw = sw
	c.lastProbe = make([]int64, sw.PortCount())
	period := c.comp.Opts.ProbePeriodNs
	switch {
	case c.packing:
		// Every switch flushes once per period: origin entries and
		// pending transit re-advertisements share the packed probes.
		c.pend = make([][]fwdKey, sw.PortCount())
		c.recomputeAdv()
		sw.Net.Eng.Every(originStagger(c.prog.Switch, period), period, c.flushPacked)
	case c.prog.Origin != nil:
		c.originCancel = sw.Net.Eng.Every(originStagger(c.prog.Switch, period), period, c.originate)
	}
	// Housekeeping: sweep expired flowlet entries.
	sw.Net.Eng.Every(period, 16*period, c.sweep)
}

// recomputeAdv rebuilds the packed-flush port sets from the current
// program: the union of product-graph out-ports (flush and heartbeat
// targets) and the ports carrying this switch's own origin entries.
// Called at attach and after every policy install.
func (c *Contra) recomputeAdv() {
	n := c.sw.PortCount()
	seen := make([]bool, n)
	for _, ports := range c.prog.ProbeOut {
		for _, p := range ports {
			seen[p] = true
		}
	}
	c.advPorts = c.advPorts[:0]
	for p := 0; p < n; p++ {
		if seen[p] {
			c.advPorts = append(c.advPorts, p)
		}
	}
	c.originPorts = make([]bool, n)
	if org := c.prog.Origin; org != nil {
		for _, p := range c.prog.ProbeOut[org.VNode] {
			c.originPorts[p] = true
		}
	}
}

// originate emits one probe per pid from the switch's probe-sending
// state (INITPROBE of Figure 7).
func (c *Contra) originate() {
	org := c.prog.Origin
	if org == nil {
		// A swap can retire this switch's origin role while a tick is
		// already queued; the timer is cancelled, the tick is a no-op.
		return
	}
	c.version++
	ports := c.prog.ProbeOut[org.VNode]
	for _, pid := range org.Pids {
		for _, port := range ports {
			p := c.sw.Net.NewPacket()
			p.Kind = sim.Probe
			p.Size = c.probeSize
			p.Origin = c.prog.Switch
			p.Pid = uint8(pid)
			p.Version = c.version
			p.Tag = int32(org.VNode)
			p.Era = c.era
			p.TTL = sim.InitialTTL
			c.sw.Send(port, p)
		}
	}
}

// Handle implements sim.Router.
func (c *Contra) Handle(pkt *sim.Packet, inPort int) {
	switch {
	case pkt.Kind == sim.Probe && pkt.IsPacked:
		c.handlePacked(pkt, inPort)
	case pkt.Kind == sim.Probe:
		c.handleProbe(pkt, inPort)
	default:
		c.handleData(pkt, inPort)
	}
}

// handleProbe is PROCESSPROBE (Figure 7) plus §5 refinements.
func (c *Contra) handleProbe(pkt *sim.Packet, inPort int) {
	now := c.sw.Now()
	c.lastProbe[inPort] = now

	// Probes never travel through their own origin: traffic for that
	// destination would already have been delivered here.
	if pkt.Origin == c.prog.Switch {
		c.sw.Net.Free(pkt)
		return
	}
	// A probe from a superseded policy era carries a tag and metric
	// layout from the old product graph; discard it rather than
	// misread it (§5.1's versioning, generalized to whole-policy
	// swaps). The lastProbe touch above still counts: port liveness is
	// a physical signal, independent of the policy generation.
	if pkt.Era != c.era {
		c.sw.Drop(pkt, sim.DropProbeStale)
		return
	}
	// NEXTPGNODE: the sender's virtual node determines ours.
	v, ok := c.prog.InTransition[pg.NodeID(pkt.Tag)]
	if !ok {
		c.sw.Drop(pkt, sim.DropProbeNoTrans)
		return
	}
	// UPDATEMVEC: fold the traffic-direction link metric. Probes flow
	// opposite to traffic, so the relevant direction is out of inPort.
	mv := pkt.MV
	for i, m := range c.res.MV {
		switch m {
		case policy.Util:
			if u := c.sw.TxUtil(inPort); u > mv[i] {
				mv[i] = u
			}
		case policy.Lat:
			mv[i] += float64(c.sw.PortDelay(inPort)) / 1e9
		case policy.Len:
			mv[i]++
		}
	}

	key := fwdKey{origin: pkt.Origin, vnode: v, pid: pkt.Pid}
	e := c.fwd[key]
	accept := false
	switch {
	case e == nil:
		accept = true
		if c.mx != nil {
			c.mx.Added++
		}
	case pkt.Version < e.version:
		// Outdated probe: discard (§5.1).
	case inPort == e.nhop && pg.NodeID(pkt.Tag) == e.ntag:
		// DSDV/Babel rule: the route's own upstream always refreshes
		// the entry, even when its metric worsened — stale good news
		// must not shadow fresh bad news.
		accept = true
	case c.expired(e):
		// §5.4 metric expiration: once the entry's upstream has gone
		// silent for k probe periods, any fresh alternative replaces
		// it — this is how switches route around failures.
		accept = true
		if c.mx != nil {
			c.mx.Expired++
		}
	default:
		// Live entries are displaced only by strict improvement, which
		// keeps route churn (and hence transient loops) bounded.
		accept = c.evCand.EvalRank(int(pkt.Pid), mv).Better(c.evCur.EvalRank(int(pkt.Pid), e.mv))
		if accept && c.mx != nil {
			c.mx.Replaced++
		}
	}
	if !accept {
		if c.altOn && e != nil && inPort != e.nhop {
			c.noteAlt(e, v, inPort, pg.NodeID(pkt.Tag), mv, now)
		}
		c.sw.Net.Free(pkt)
		return
	}
	// Flap detection reads the resolved best next hop before the entry
	// mutates (the accept may rewrite the incumbent best's own port).
	oldHop := -1
	if c.mx != nil {
		oldHop = c.bestHop(pkt.Origin)
	}
	if e == nil {
		e = &fwdEntry{}
		c.fwd[key] = e
	} else if c.altOn && inPort != e.nhop {
		demoteToAlt(e)
	}
	e.mv = mv
	e.ntag = pg.NodeID(pkt.Tag)
	e.nhop = inPort
	e.version = pkt.Version
	e.updated = now
	e.setRank(c.policyRank(v, mv))

	c.updateBest(pkt.Origin, key, e)
	if c.mx != nil && oldHop >= 0 && c.bestHop(pkt.Origin) != oldHop {
		c.mx.Flaps++
	}

	// Retag and multicast along product graph out-edges.
	outPorts := c.prog.ProbeOut[v]
	if len(outPorts) == 0 {
		c.sw.Net.Free(pkt)
		return
	}
	if c.suppressOn && c.suppressAdvert(e, now) {
		c.sw.Net.CountProbeSuppressed(1)
		c.sw.Net.CountProbeSaved(int64(len(outPorts)))
		c.sw.Net.Free(pkt)
		return
	}
	if c.suppressOn {
		c.recordAdvert(e, now)
	}
	pkt.Tag = int32(v)
	pkt.MV = mv
	for i, port := range outPorts {
		if i == len(outPorts)-1 {
			c.sw.Send(port, pkt)
		} else {
			c.sw.Send(port, c.sw.Net.Clone(pkt))
		}
	}
}

// suppressAdvert reports whether re-advertising entry e may be skipped
// under delta suppression: its route is unchanged since the last
// advertisement, the forced-refresh horizon has not elapsed, and every
// metric component moved by at most the configured epsilon. New
// entries, route changes (the bad-news path after failures and swaps)
// and stale advertisements always propagate.
func (c *Contra) suppressAdvert(e *fwdEntry, now int64) bool {
	if !e.advValid || e.advNhop != e.nhop || e.advNtag != e.ntag {
		return false
	}
	if now-e.lastAdvAt >= c.refreshNs {
		return false
	}
	for i := 0; i < len(c.res.MV); i++ {
		d := e.mv[i] - e.lastAdvMV[i]
		if d < 0 {
			d = -d
		}
		if d > c.suppressEps {
			return false
		}
	}
	return true
}

// recordAdvert snapshots what is being advertised for entry e.
func (c *Contra) recordAdvert(e *fwdEntry, now int64) {
	e.advValid = true
	e.advNhop = e.nhop
	e.advNtag = e.ntag
	e.lastAdvAt = now
	e.lastAdvMV = e.mv
}

// markPending queues entry e (at key, virtual node v) for the next
// packed flush on every product-graph out-port.
func (c *Contra) markPending(key fwdKey, e *fwdEntry, outPorts []int) {
	if e.pending {
		return
	}
	e.pending = true
	for _, port := range outPorts {
		c.pend[port] = append(c.pend[port], key)
	}
}

// handlePacked is PROCESSPROBE over a packed multi-origin probe: each
// entry runs the same accept/update logic as a standalone probe, but
// re-advertisement is deferred to the per-period flush instead of
// forwarding the packet. An empty packed probe is a pure liveness
// heartbeat. The loop is allocation-free: entries are read in place
// and both rank evaluations run on one reusable evaluator.
func (c *Contra) handlePacked(pkt *sim.Packet, inPort int) {
	now := c.sw.Now()
	c.lastProbe[inPort] = now
	if pkt.Era != c.era {
		c.sw.Drop(pkt, sim.DropProbeStale)
		return
	}
	// Link-metric folds shared by every entry on this port.
	util := c.sw.TxUtil(inPort)
	latAdd := float64(c.sw.PortDelay(inPort)) / 1e9
	for i := range pkt.Packed {
		en := &pkt.Packed[i]
		if en.Origin == c.prog.Switch {
			continue
		}
		v, ok := c.prog.InTransition[pg.NodeID(en.Tag)]
		if !ok {
			continue
		}
		mv := en.MV
		for j, m := range c.res.MV {
			switch m {
			case policy.Util:
				if util > mv[j] {
					mv[j] = util
				}
			case policy.Lat:
				mv[j] += latAdd
			case policy.Len:
				mv[j]++
			}
		}
		key := fwdKey{origin: en.Origin, vnode: v, pid: en.Pid}
		e := c.fwd[key]
		accept := false
		switch {
		case e == nil:
			accept = true
			if c.mx != nil {
				c.mx.Added++
			}
		case en.Version < e.version:
			// Outdated entry (§5.1).
		case inPort == e.nhop && pg.NodeID(en.Tag) == e.ntag:
			accept = true // DSDV/Babel upstream-refresh rule
		case c.expired(e):
			accept = true // §5.4 metric expiration
			if c.mx != nil {
				c.mx.Expired++
			}
		default:
			accept = c.evCand.BetterRank(int(en.Pid), mv, e.mv)
			if accept && c.mx != nil {
				c.mx.Replaced++
			}
		}
		if !accept {
			if c.altOn && e != nil && inPort != e.nhop {
				c.noteAlt(e, v, inPort, pg.NodeID(en.Tag), mv, now)
			}
			continue
		}
		oldHop := -1
		if c.mx != nil {
			oldHop = c.bestHop(en.Origin)
		}
		if e == nil {
			e = &fwdEntry{}
			c.fwd[key] = e
		} else if c.altOn && inPort != e.nhop {
			demoteToAlt(e)
		}
		e.mv = mv
		e.ntag = pg.NodeID(en.Tag)
		e.nhop = inPort
		e.version = en.Version
		e.updated = now
		e.setRank(c.policyRank(v, mv))
		c.updateBest(en.Origin, key, e)
		if c.mx != nil && oldHop >= 0 && c.bestHop(en.Origin) != oldHop {
			c.mx.Flaps++
		}

		outPorts := c.prog.ProbeOut[v]
		if len(outPorts) == 0 {
			continue
		}
		if e.pending {
			// Already queued: the flush emits the entry's latest mv, so
			// this refresh is advertised, not suppressed.
			continue
		}
		if c.suppressOn && c.suppressAdvert(e, now) {
			c.sw.Net.CountProbeSuppressed(1)
			continue
		}
		if c.suppressOn {
			c.recordAdvert(e, now)
		}
		c.markPending(key, e, outPorts)
	}
	c.sw.Net.Free(pkt)
}

// flushPacked is the per-period packed emission: one packed probe per
// advertisement port carrying this switch's own origin entries (INIT-
// PROBE riding the flush) plus every pending transit re-advertisement,
// or a bare heartbeat when the port has nothing to say — which is what
// keeps §5.4 port-liveness detection at its normal horizon even when
// suppression quiets the fabric.
func (c *Contra) flushPacked() {
	org := c.prog.Origin
	if org != nil {
		c.version++
	}
	for _, port := range c.advPorts {
		p := c.sw.Net.NewPacket()
		p.Kind = sim.Probe
		p.IsPacked = true
		p.Era = c.era
		p.TTL = sim.InitialTTL
		if org != nil && c.originPorts[port] {
			for _, pid := range org.Pids {
				p.Packed = append(p.Packed, sim.ProbeEntry{
					Origin: c.prog.Switch, Tag: int32(org.VNode),
					Version: c.version, Pid: uint8(pid),
				})
			}
		}
		for _, key := range c.pend[port] {
			e := c.fwd[key]
			if e == nil {
				continue
			}
			p.Packed = append(p.Packed, sim.ProbeEntry{
				Origin: key.origin, Tag: int32(key.vnode),
				Version: e.version, Pid: key.pid, MV: e.mv,
			})
		}
		if n := len(p.Packed); n > 1 {
			// n per-origin probes collapsed into one wire packet.
			c.sw.Net.CountProbeSaved(int64(n - 1))
		}
		p.Size = c.comp.PackedProbeBytes(len(p.Packed)) + 18
		c.sw.Send(port, p)
	}
	now := c.sw.Now()
	for port := range c.pend {
		for _, key := range c.pend[port] {
			if e := c.fwd[key]; e != nil {
				e.pending = false
				if c.suppressOn {
					// Re-snapshot from the metrics actually emitted: the
					// entry may have been refreshed again since it was
					// queued.
					c.recordAdvert(e, now)
				}
			}
		}
		c.pend[port] = c.pend[port][:0]
	}
}

// policyRank evaluates the full policy for an entry at virtual node v:
// the recombination step (the "asterisk" choice of §4.2). The result
// aliases evCand's scratch buffer; retain via fwdEntry.setRank.
func (c *Contra) policyRank(v pg.NodeID, mv [4]float64) policy.Rank {
	return c.evCand.EvalPolicy(mv, c.comp.PG.Node(v).Accept)
}

// updateBest maintains BestT for one origin given a just-updated entry.
func (c *Contra) updateBest(origin topo.NodeID, key fwdKey, e *fwdEntry) {
	cur, ok := c.best[origin]
	if !ok || cur == key {
		// No previous best, or the best itself changed (possibly for
		// the worse): rescan.
		c.rescanBest(origin)
		return
	}
	curE := c.fwd[cur]
	if curE == nil || !c.alive(cur, curE) || e.rank.Better(curE.rank) {
		c.rescanBest(origin)
	}
}

// rescanBest recomputes the best (tag, pid) for an origin across all
// live entries, evaluating the full policy per entry.
func (c *Contra) rescanBest(origin topo.NodeID) {
	bestRank := policy.Infinite()
	var bestKey fwdKey
	found := false
	for _, v := range c.prog.VNodes {
		for pid := 0; pid < c.res.NumPids(); pid++ {
			key := fwdKey{origin: origin, vnode: v, pid: uint8(pid)}
			e := c.fwd[key]
			if e == nil || !c.alive(key, e) {
				continue
			}
			if !found || e.rank.Better(bestRank) {
				bestRank = e.rank
				bestKey = key
				found = true
			}
		}
	}
	if found && !bestRank.IsInf() {
		c.best[origin] = bestKey
	} else {
		delete(c.best, origin)
	}
}

// bestHop resolves the current best next-hop port toward an origin, or
// -1 when no live best entry is cached. It backs route-flap detection
// for the metrics layer: a flap is a change in this value for a
// destination that already had one.
func (c *Contra) bestHop(origin topo.NodeID) int {
	if key, ok := c.best[origin]; ok {
		if e := c.fwd[key]; e != nil {
			return e.nhop
		}
	}
	return -1
}

// expired reports §5.4 metric expiration: the entry has not been
// refreshed for k probe periods (plus one period of slack for probe
// jitter, plus the forced-refresh bound when suppression legitimately
// quiets refreshes — see setHorizons).
func (c *Contra) expired(e *fwdEntry) bool {
	return c.sw.Now()-e.updated > c.expireNs
}

// alive reports whether an entry is usable: recently refreshed (§5.4
// metric expiration) and its port not presumed failed.
func (c *Contra) alive(key fwdKey, e *fwdEntry) bool {
	return !c.expired(e) && !c.portDead(e.nhop)
}

// portDead is the §5.4 failure detector: no probes on the port for k
// periods (stretched by the forced-refresh bound when suppression can
// quiet a port without packing's heartbeats — see setHorizons).
func (c *Contra) portDead(port int) bool {
	now := c.sw.Now()
	return now-c.lastProbe[port] > c.deadNs && now > c.deadNs
}

// handleData is SWIFORWARDPKT (Figure 7) with policy-aware flowlet
// switching, failure expiry, and lazy loop breaking.
func (c *Contra) handleData(pkt *sim.Packet, inPort int) {
	if pkt.TTL == 0 {
		c.sw.Drop(pkt, sim.DropTTL)
		return
	}
	pkt.TTL--

	dstEdge, ok := c.sw.Net.HostEdge(pkt.Dst)
	if !ok {
		c.sw.Drop(pkt, sim.DropNoHost)
		return
	}
	if dstEdge == c.prog.Switch {
		c.sw.DeliverLocal(pkt)
		return
	}
	now := c.sw.Now()
	fid := flowletHash(pkt.FlowID, pkt.Dst)

	// A tag stamped under a superseded era no longer names a virtual
	// node in the running product graph: make a fresh source-style
	// decision (any switch holds a BestT) instead of dropping traffic
	// caught in flight by a policy swap.
	if c.sw.IsHostPort(inPort) || !pkt.HasTag || pkt.Era != c.era {
		c.forwardFromSource(pkt, dstEdge, fid, now)
		return
	}
	c.forwardTransit(pkt, dstEdge, fid, now)
}

// forwardFromSource makes the source-switch decision: BestT selects
// the (tag, pid), pinned per flowlet.
func (c *Contra) forwardFromSource(pkt *sim.Packet, dstEdge topo.NodeID, fid uint32, now int64) {
	sk := srcKey{dst: dstEdge, fid: fid}
	pin := c.srcPins[sk]
	flowletNs := c.comp.Opts.FlowletTimeoutNs
	if pin != nil && now-pin.lastPkt < flowletNs && !c.portDead(pin.nhop) {
		// The pin freezes the resolved decision for the flowlet's
		// lifetime (§5.3): the first packet picked the then-best path
		// and the rest of the flowlet inherits it even as BestT moves.
		pin.lastPkt = now
		c.emit(pkt, pin.nhop, pin.ntag, pin.pid)
		return
	}
	key, ok := c.best[dstEdge]
	e := c.fwd[key]
	if !ok || e == nil || !c.alive(key, e) {
		// The dead incumbent's port is still the route traffic was
		// using: a rescan that lands elsewhere is a flap.
		oldHop := -1
		if c.mx != nil {
			oldHop = c.bestHop(dstEdge)
		}
		c.rescanBest(dstEdge)
		if c.mx != nil && oldHop >= 0 && c.bestHop(dstEdge) != oldHop {
			c.mx.Flaps++
		}
		key, ok = c.best[dstEdge]
		if !ok {
			c.sw.Drop(pkt, sim.DropNoRoute)
			return
		}
		e = c.fwd[key]
	}
	nhop, ntag, pid, rank := e.nhop, e.ntag, key.pid, e.rank
	if c.ovr != nil && c.ovr.Match(pkt.FlowID) {
		if a, ok2 := c.override(dstEdge, pkt.FlowID, e); ok2 {
			nhop, ntag, pid, rank = a.nhop, a.ntag, a.pid, a.rank
		}
	}
	if c.tr != nil && pkt.Kind == sim.Data && c.tr.DecisionsOn() {
		c.recordDecision(pkt.FlowID, "source", dstEdge, 0, false, pid, nhop, rank)
	}
	if pin == nil {
		pin = &srcPin{}
		c.srcPins[sk] = pin
	}
	pin.nhop = nhop
	pin.ntag = ntag
	pin.pid = pid
	pin.lastPkt = now
	c.emit(pkt, nhop, ntag, pid)
}

// emit tags and transmits a packet (the source-side half of
// SWIFORWARDPKT: set pid from BestT, tag from the entry).
func (c *Contra) emit(pkt *sim.Packet, nhop int, ntag pg.NodeID, pid uint8) {
	if !pkt.HasTag {
		pkt.HasTag = true
		pkt.Size += sim.TagHeaderBytes
	}
	pkt.Pid = pid
	pkt.Tag = int32(ntag)
	pkt.Era = c.era
	c.sw.Send(nhop, pkt)
}

// forwardTransit forwards an already-tagged packet: flowlet table
// first, falling back to FwdT, with loop breaking.
func (c *Contra) forwardTransit(pkt *sim.Packet, dstEdge topo.NodeID, fid uint32, now int64) {
	v := pg.NodeID(pkt.Tag)
	fk := flowKey{vnode: v, pid: pkt.Pid, fid: fid}

	// §5.5: lazy loop detection on TTL spread.
	if c.loopDetect(pkt) {
		delete(c.flowlets, fk)
		c.LoopBreaks++
		c.sw.Net.Counters.Add("loop_break", 1)
	}

	flowletNs := c.comp.Opts.FlowletTimeoutNs
	if fe := c.flowlets[fk]; fe != nil && now-fe.lastPkt < flowletNs && !c.portDead(fe.nhop) {
		fe.lastPkt = now
		pkt.Tag = int32(fe.ntag)
		c.sw.Send(fe.nhop, pkt)
		return
	}

	// FwdT lookup for this tag; try the packet's pid first, then the
	// other pids in ascending order (same tag keeps it
	// policy-compliant). No pid-order slice: the data path must not
	// allocate per packet.
	e, usedPid := c.lookupAlive(dstEdge, v, pkt.Pid)
	if e == nil {
		c.sw.Drop(pkt, sim.DropNoRoute)
		return
	}
	// Counterfactual overrides apply at the source only: the source
	// switch picks the path through the product graph (tag, pid) and
	// transit switches follow the tag, so re-pinning every transit hop
	// to its local runner-up would compose second choices into paths no
	// switch ever advertised (and, in practice, into loops).
	nhop, ntag, rank := e.nhop, e.ntag, e.rank
	if c.tr != nil && pkt.Kind == sim.Data && c.tr.DecisionsOn() {
		c.recordDecision(pkt.FlowID, "transit", dstEdge, v, true, usedPid, nhop, rank)
	}
	c.flowlets[fk] = &flowletEntry{nhop: nhop, ntag: ntag, lastPkt: now}
	pkt.Pid = usedPid
	pkt.Tag = int32(ntag)
	c.sw.Send(nhop, pkt)
}

// lookupAlive resolves the live FwdT entry for (dst, vnode), trying
// pid first and then the remaining pids in ascending order.
func (c *Contra) lookupAlive(dst topo.NodeID, v pg.NodeID, pid uint8) (*fwdEntry, uint8) {
	key := fwdKey{origin: dst, vnode: v, pid: pid}
	if e := c.fwd[key]; e != nil && c.alive(key, e) {
		return e, pid
	}
	for p := 0; p < c.res.NumPids(); p++ {
		if uint8(p) == pid {
			continue
		}
		key := fwdKey{origin: dst, vnode: v, pid: uint8(p)}
		if e := c.fwd[key]; e != nil && c.alive(key, e) {
			return e, uint8(p)
		}
	}
	return nil, pid
}

// SetTracer attaches a decision-trace recorder. The recorder's level
// gates what the router feeds it; a nil recorder restores the
// zero-cost path.
func (c *Contra) SetTracer(r *trace.Recorder) { c.tr = r; c.setAltOn() }

// SetChurn attaches this router's probe-table churn accumulator (nil
// detaches); Fleet.SetMetrics registers one per switch.
func (c *Contra) SetChurn(ch *metrics.Churn) { c.mx = ch }

// SetOverrides pins flows to an alternative forwarding choice for
// counterfactual replay (nil clears).
func (c *Contra) SetOverrides(o *trace.Overrides) { c.ovr = o; c.setAltOn() }

// setAltOn enables runner-up shadow maintenance exactly when someone
// will read the shadows: decision-level tracing or an override set.
func (c *Contra) setAltOn() {
	c.altOn = (c.tr != nil && c.tr.DecisionsOn()) || c.ovr != nil
}

// noteAlt records a losing probe offer (rejected by the merge, arriving
// on a port other than the incumbent route's) as the entry's runner-up
// shadow: refreshed in place when it is the shadow's own port, adopted
// when it beats the stored shadow or the shadow has gone stale.
func (c *Contra) noteAlt(e *fwdEntry, v pg.NodeID, inPort int, tag pg.NodeID, mv [4]float64, now int64) {
	r := c.policyRank(v, mv) // aliases evaluator scratch; copied below
	if r.IsInf() {
		return
	}
	a := e.alt
	if a != nil && a.nhop != inPort &&
		now-a.updated <= c.expireNs && !r.Better(a.rank) {
		return
	}
	if a == nil {
		a = &altShadow{}
		e.alt = a
	}
	a.nhop = inPort
	a.ntag = tag
	a.updated = now
	a.rank.Inf = r.Inf
	a.rank.V = append(a.rank.V[:0], r.V...)
}

// demoteToAlt moves the incumbent route into the runner-up shadow,
// called just before a different-port offer overwrites it: the path it
// names is still live, it merely stopped being preferred.
func demoteToAlt(e *fwdEntry) {
	a := e.alt
	if a == nil {
		a = &altShadow{}
		e.alt = a
	}
	a.nhop = e.nhop
	a.ntag = e.ntag
	a.updated = e.updated
	a.rank.Inf = e.rank.Inf
	a.rank.V = append(a.rank.V[:0], e.rank.V...)
}

// altChoice is one resolved forwarding alternative: a FwdT incumbent
// or a runner-up shadow, flattened to what SWIFORWARDPKT needs.
type altChoice struct {
	pid  uint8
	nhop int
	ntag pg.NodeID
	rank policy.Rank
}

// eachChoice visits every live forwarding choice for dst — FwdT
// incumbents and runner-up shadows — in deterministic table order,
// stopping when fn returns false. When restrict is set only choices at
// virtual node v are considered.
func (c *Contra) eachChoice(dst topo.NodeID, v pg.NodeID, restrict bool, now int64, fn func(altChoice) bool) {
	for _, vn := range c.prog.VNodes {
		if restrict && vn != v {
			continue
		}
		for pid := 0; pid < c.res.NumPids(); pid++ {
			key := fwdKey{origin: dst, vnode: vn, pid: uint8(pid)}
			e := c.fwd[key]
			if e == nil {
				continue
			}
			if c.alive(key, e) {
				if !fn(altChoice{pid: uint8(pid), nhop: e.nhop, ntag: e.ntag, rank: e.rank}) {
					return
				}
			}
			if a := e.alt; a != nil && now-a.updated <= c.expireNs && !c.portDead(a.nhop) {
				if !fn(altChoice{pid: uint8(pid), nhop: a.nhop, ntag: a.ntag, rank: a.rank}) {
					return
				}
			}
		}
	}
}

// scanAlt finds the best-ranked live choice for dst whose egress port
// differs from avoidPort — the runner-up a fresh decision had. When
// restrict is set only choices at virtual node v are considered, the
// policy-compliance constraint on transit alternatives.
func (c *Contra) scanAlt(dst topo.NodeID, v pg.NodeID, restrict bool, avoidPort int) (altChoice, bool) {
	bestRank := policy.Infinite()
	var out altChoice
	found := false
	c.eachChoice(dst, v, restrict, c.sw.Now(), func(a altChoice) bool {
		if a.nhop == avoidPort || a.rank.IsInf() {
			return true
		}
		if !found || a.rank.Better(bestRank) {
			bestRank, out, found = a.rank, a, true
		}
		return true
	})
	return out, found
}

// ecmpPick hash-spreads a flow over every live entry for dst, blind to
// rank — the ECMP counterfactual choice. The scan is two-pass (count,
// then index) so picking stays allocation-free.
func (c *Contra) ecmpPick(dst topo.NodeID, v pg.NodeID, restrict bool, flow uint64) (altChoice, bool) {
	now := c.sw.Now()
	count := uint32(0)
	c.eachChoice(dst, v, restrict, now, func(altChoice) bool { count++; return true })
	if count == 0 {
		return altChoice{}, false
	}
	pick := flowletHash(flow, dst) % count
	var out altChoice
	found := false
	c.eachChoice(dst, v, restrict, now, func(a altChoice) bool {
		if pick == 0 {
			out, found = a, true
			return false
		}
		pick--
		return true
	})
	return out, found
}

// override resolves the counterfactual replacement for a fresh source
// decision that chose cur. It returns false — leaving the policy's
// choice in place — when no live alternative exists.
func (c *Contra) override(dst topo.NodeID, flow uint64, cur *fwdEntry) (altChoice, bool) {
	if c.ovr.Mode() == trace.ModeECMP {
		return c.ecmpPick(dst, 0, false, flow)
	}
	return c.scanAlt(dst, 0, false, cur.nhop)
}

// recordDecision feeds one fresh forwarding decision to the tracer,
// with the runner-up computed against the same liveness view the
// decision itself used.
func (c *Contra) recordDecision(flow uint64, kind string, dst topo.NodeID, v pg.NodeID, restrict bool, pid uint8, port int, rank policy.Rank) {
	rPort := -1
	var rRank []float64
	if a, ok := c.scanAlt(dst, v, restrict, port); ok {
		rPort, rRank = a.nhop, a.rank.V
	}
	c.tr.Decision(c.sw.Now(), flow, c.sw.Name(), kind, port, rank.V, rPort, rRank, c.era, pid)
}

// loopDetect updates the TTL-range register for this packet and
// reports whether the spread exceeds the threshold (§5.5).
func (c *Contra) loopDetect(pkt *sim.Packet) bool {
	sig := pktHash(pkt.FlowID, pkt.Dst, pkt.Seq)
	slot := &c.loopTbl[sig%loopSlots]
	if !slot.set || slot.sig != sig {
		slot.set = true
		slot.sig = sig
		slot.minTTL = pkt.TTL
		slot.maxTTL = pkt.TTL
		return false
	}
	if pkt.TTL < slot.minTTL {
		slot.minTTL = pkt.TTL
	}
	if pkt.TTL > slot.maxTTL {
		slot.maxTTL = pkt.TTL
	}
	if int(slot.maxTTL)-int(slot.minTTL) >= c.comp.Opts.LoopTTLDelta {
		slot.set = false // reset after firing
		return true
	}
	return false
}

// sweep drops expired flowlet and source-pin entries to bound memory,
// mirroring hardware table aging.
func (c *Contra) sweep() {
	now := c.sw.Now()
	horizon := 4 * c.comp.Opts.FlowletTimeoutNs
	for k, fe := range c.flowlets {
		if now-fe.lastPkt > horizon {
			delete(c.flowlets, k)
		}
	}
	for k, pin := range c.srcPins {
		if now-pin.lastPkt > horizon {
			delete(c.srcPins, k)
		}
	}
}

// Install atomically replaces this router's compiled artifact with a
// freshly compiled policy: the per-switch program, analysis result,
// rank evaluators and probe wire size all swap together, and the soft
// tables (FwdT, BestT, flowlets, source pins, loop registers) are
// flushed because their tag space belongs to the old product graph.
// Port-liveness state (lastProbe) survives — probe arrival is a
// physical signal, not policy state — and the per-origin probe version
// keeps counting so receivers' §5.1 ordering is monotonic across swaps.
//
// The new artifact must be compiled against the same topology and
// Options (core.Recompile guarantees this); era is the fleet-wide
// policy generation that stamps every probe and data packet from now
// on. Callers swap every router in the fabric in one event-loop step —
// Fleet.Install does — mirroring an atomic control-plane push.
func (c *Contra) Install(comp *core.Compiled, era uint8) {
	id := c.prog.Switch
	hadOrigin := c.prog.Origin != nil
	c.comp = comp
	c.prog = comp.Switches[id]
	c.res = comp.Analysis
	c.evCand = comp.Analysis.NewEvaluator()
	c.evCur = comp.Analysis.NewEvaluator()
	c.probeSize = comp.Stats.ProbeBytes + 18
	c.era = era
	c.setHorizons()
	c.flushTables()
	if c.packing {
		// The packed flush reads the program each tick, so the timer
		// survives swaps unchanged; only the port sets need rebuilding.
		if c.sw != nil {
			c.recomputeAdv()
		}
		return
	}
	// The switch's origin role can change across policies (a waypoint
	// policy may prune a switch's send state entirely): start or stop
	// the probe generator to match.
	switch {
	case hadOrigin && c.prog.Origin == nil:
		if c.originCancel != nil {
			c.originCancel()
			c.originCancel = nil
		}
	case !hadOrigin && c.prog.Origin != nil && c.sw != nil:
		period := comp.Opts.ProbePeriodNs
		c.originCancel = c.sw.Net.Eng.Every(c.sw.Now()+originStagger(id, period), period, c.originate)
	}
}

// originStagger deterministically offsets a switch's probe generator
// within the period, so origins never burst in sync — the same phase
// whether the origin started at deploy time or at a policy swap.
func originStagger(id topo.NodeID, period int64) int64 {
	return (int64(id) * 7919) % period
}

// Reboot implements sim.Rebooter: a switch coming back from a
// whole-node failure restarts with empty tables, zeroed probe
// freshness (every port presumed dead until fresh probes arrive) and a
// reset probe version — the cold-start warm-up a real reboot pays.
// Its neighbors' entries through it age out via §5.4 expiration, so
// the fabric re-converges around the rebooted switch from scratch.
func (c *Contra) Reboot() {
	c.flushTables()
	for i := range c.lastProbe {
		c.lastProbe[i] = 0
	}
	c.version = 0
}

// flushTables drops every soft table: forwarding state, best-hop
// cache, flowlet pins, loop registers and any queued packed
// re-advertisements (their keys belong to the flushed tag space).
func (c *Contra) flushTables() {
	c.fwd = make(map[fwdKey]*fwdEntry)
	c.best = make(map[topo.NodeID]fwdKey)
	c.flowlets = make(map[flowKey]*flowletEntry)
	c.srcPins = make(map[srcKey]*srcPin)
	c.loopTbl = [loopSlots]loopSlot{}
	for i := range c.pend {
		c.pend[i] = c.pend[i][:0]
	}
}

// Era returns the policy generation this router currently runs.
func (c *Contra) Era() uint8 { return c.era }

// HasRoute reports whether the router holds a live source-switch
// decision for a destination switch (the chaos convergence monitor's
// probe).
func (c *Contra) HasRoute(dst topo.NodeID) bool {
	if key, ok := c.best[dst]; ok {
		if e := c.fwd[key]; e != nil && c.alive(key, e) {
			return true
		}
	}
	c.rescanBest(dst)
	key, ok := c.best[dst]
	if !ok {
		return false
	}
	e := c.fwd[key]
	return e != nil && c.alive(key, e)
}

// LiveRoutes returns the destination switches with a live best entry.
// The order is unspecified (callers treat it as a set).
func (c *Contra) LiveRoutes() []topo.NodeID {
	var out []topo.NodeID
	for dst, key := range c.best {
		if e := c.fwd[key]; e != nil && c.alive(key, e) {
			out = append(out, dst)
		}
	}
	return out
}

// cloneRank snapshots a rank whose V aliases entry-owned storage that
// the next probe refresh overwrites in place; the diagnostic accessors
// return copies so retained ranks stay stable, as they were when every
// update allocated afresh.
func cloneRank(r policy.Rank) policy.Rank {
	if r.V != nil {
		r.V = append([]float64(nil), r.V...)
	}
	return r
}

// BestNextHop exposes the current decision for a destination switch
// (diagnostics and tests): the neighbor the switch would send new
// flowlets toward, or -1.
func (c *Contra) BestNextHop(dst topo.NodeID) (port int, rank policy.Rank) {
	key, ok := c.best[dst]
	if !ok {
		c.rescanBest(dst)
		key, ok = c.best[dst]
		if !ok {
			return -1, policy.Infinite()
		}
	}
	e := c.fwd[key]
	if e == nil {
		return -1, policy.Infinite()
	}
	return e.nhop, cloneRank(e.rank)
}

// BestEntry returns the source-switch decision for a destination: the
// (virtual node, pid) a fresh flowlet would be tagged with, plus its
// rank. Walking entries from here reproduces the exact path a packet
// takes (tags included), unlike chaining per-switch BestNextHop calls.
func (c *Contra) BestEntry(dst topo.NodeID) (vnode pg.NodeID, pid uint8, rank policy.Rank, ok bool) {
	key, found := c.best[dst]
	if !found {
		c.rescanBest(dst)
		key, found = c.best[dst]
		if !found {
			return 0, 0, policy.Infinite(), false
		}
	}
	e := c.fwd[key]
	if e == nil {
		return 0, 0, policy.Infinite(), false
	}
	return key.vnode, key.pid, cloneRank(e.rank), true
}

// Entry resolves one FwdT row: the egress port and the next tag for a
// packet tagged (vnode, pid) heading to dst, preferring the given pid
// but falling back to other pids on the same tag, exactly as the
// forwarding path does.
func (c *Contra) Entry(dst topo.NodeID, vnode pg.NodeID, pid uint8) (nhop int, ntag pg.NodeID, ok bool) {
	if e, _ := c.lookupAlive(dst, vnode, pid); e != nil {
		return e.nhop, e.ntag, true
	}
	return -1, 0, false
}

// flowletHash maps a flow to a flowlet key: the stand-in for the
// 5-tuple hash of §5.3. The destination must participate so that a
// flow's data and its reverse-direction acks (same flow id) never
// share a flowlet entry at a switch both directions traverse.
func flowletHash(flowID uint64, dst topo.NodeID) uint32 {
	x := (flowID ^ uint64(dst)<<40) * 0x9e3779b97f4a7c15
	return uint32(x >> 32)
}

// pktHash is the per-packet CRC stand-in used by loop detection;
// direction-sensitive for the same reason as flowletHash.
func pktHash(flowID uint64, dst topo.NodeID, seq int64) uint64 {
	x := flowID ^ uint64(dst)<<40 ^ uint64(seq)*0xbf58476d1ce4e5b9
	x ^= x >> 31
	x *= 0x94d049bb133111eb
	x ^= x >> 29
	return x
}
