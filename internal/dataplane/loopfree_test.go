package dataplane

import (
	"math/rand"
	"testing"

	"contra/internal/core"
	"contra/internal/pg"
	"contra/internal/sim"
	"contra/internal/topo"
)

// TestNoPersistentLoopsAfterChurn exercises §5.1's guarantee: with
// versioned probes (and the DSDV-style update rule), forwarding state
// may loop transiently while probes are in flight, but once metrics
// stabilize the entries converge loop-free. We churn a random topology
// with bursty traffic, let it settle for a few probe rounds, and then
// verify every source's tag walk reaches every destination without
// cycling.
func TestNoPersistentLoopsAfterChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 4; trial++ {
		g := topo.RandomConnected(8+rng.Intn(8), 3, int64(trial+200))
		// Attach hosts to two random switches for churn traffic.
		gh := g.Clone()
		sw := gh.Switches()
		h1 := gh.AddNode("HX", topo.Host)
		gh.AddLink(sw[rng.Intn(len(sw))], h1, 10e9, 1000)
		h2 := gh.AddNode("HY", topo.Host)
		for {
			s := sw[rng.Intn(len(sw))]
			if gh.PortTo(s, h1) < 0 && gh.HostEdge(h1) != s {
				gh.AddLink(s, h2, 10e9, 1000)
				break
			}
		}

		comp := compileOn(t, gh, "minimize(path.util)", core.Options{})
		e := sim.NewEngine(int64(trial + 7))
		n := sim.NewNetwork(e, gh, sim.Config{})
		routers := Deploy(n, comp)
		n.Start()
		warm := 12 * comp.Opts.ProbePeriodNs
		e.Run(warm)

		// Churn: several staggered bursts.
		for i := 0; i < 5; i++ {
			n.StartFlows([]sim.FlowSpec{{
				ID: uint64(i + 1), Src: h1, Dst: h2,
				Size: 500_000, Start: warm + int64(i)*3*comp.Opts.ProbePeriodNs,
			}})
		}
		e.Run(warm + 30*comp.Opts.ProbePeriodNs)
		// Settle: traffic done, a few fresh probe rounds.
		e.Run(e.Now() + 8*comp.Opts.ProbePeriodNs)

		for _, src := range gh.Switches() {
			for _, dst := range gh.Switches() {
				if src == dst {
					continue
				}
				if !walkTerminates(t, gh, routers, comp, src, dst) {
					t.Fatalf("trial %d: persistent loop or missing route %s->%s",
						trial, gh.Node(src).Name, gh.Node(dst).Name)
				}
			}
		}
	}
}

// walkTerminates follows the tag walk from src's best entry and
// reports whether it reaches dst within a generous hop bound.
func walkTerminates(t *testing.T, g *topo.Graph, routers map[topo.NodeID]*Contra, comp *core.Compiled, src, dst topo.NodeID) bool {
	t.Helper()
	vnode, pid, _, ok := routers[src].BestEntry(dst)
	if !ok {
		return false
	}
	cur := src
	var v pg.NodeID = vnode
	for hops := 0; hops <= 3*g.NumNodes(); hops++ {
		if cur == dst {
			return true
		}
		nhop, ntag, ok := routers[cur].Entry(dst, v, pid)
		if !ok {
			return false
		}
		cur = g.Ports(cur)[nhop].Peer
		v = ntag
	}
	return false
}
