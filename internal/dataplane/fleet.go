package dataplane

import (
	"contra/internal/core"
	"contra/internal/metrics"
	"contra/internal/sim"
	"contra/internal/topo"
	"contra/internal/trace"
)

// The Contra router participates in both runtime-update seams: policy
// hot-swap (Fleet.Install) and whole-node reboot (sim.Rebooter).
var _ sim.Rebooter = (*Contra)(nil)

// Fleet is the swappable compiled-policy handle for a deployed Contra
// fabric: it owns the routers of every switch and the compiled
// artifact they currently run, and Install atomically replaces that
// artifact mid-simulation — the runtime-update path of §5. Everything
// that assumed the policy was fixed at deploy time goes through this
// seam instead of holding a *core.Compiled directly.
type Fleet struct {
	net     *sim.Network
	routers map[topo.NodeID]*Contra
	comp    *core.Compiled
	era     uint8
}

// DeployFleet attaches a Contra router built from comp to every switch
// in the network and returns the swappable handle. The routers share
// the compiled artifact but keep independent table state, exactly like
// distinct devices.
func DeployFleet(n *sim.Network, comp *core.Compiled) *Fleet {
	f := &Fleet{
		net:     n,
		routers: make(map[topo.NodeID]*Contra),
		comp:    comp,
	}
	for _, swID := range n.Topo.Switches() {
		r := New(comp, swID)
		f.routers[swID] = r
		n.SetRouter(swID, r)
	}
	return f
}

// Deploy is the fixed-policy entry point: DeployFleet without keeping
// the swap handle.
func Deploy(n *sim.Network, comp *core.Compiled) map[topo.NodeID]*Contra {
	return DeployFleet(n, comp).routers
}

// Routers exposes the per-switch routers (diagnostics and tests).
func (f *Fleet) Routers() map[topo.NodeID]*Contra { return f.routers }

// Router returns one switch's router.
func (f *Fleet) Router(id topo.NodeID) *Contra { return f.routers[id] }

// Compiled returns the artifact the fleet currently runs.
func (f *Fleet) Compiled() *core.Compiled { return f.comp }

// Era returns the current policy generation (0 until the first swap).
func (f *Fleet) Era() uint8 { return f.era }

// SetTracer attaches a decision-trace recorder to every router in the
// fleet (nil detaches).
func (f *Fleet) SetTracer(r *trace.Recorder) {
	for _, c := range f.routers {
		c.SetTracer(r)
	}
}

// SetMetrics registers every router in the fleet with a telemetry
// recorder, attaching one churn accumulator per switch under its
// topology name (nil detaches). Iteration is in topology order; the
// recorder sorts by name regardless, so the exported series order does
// not depend on the caller.
func (f *Fleet) SetMetrics(m *metrics.Recorder) {
	for _, swID := range f.net.Topo.Switches() {
		if m == nil {
			f.routers[swID].SetChurn(nil)
			continue
		}
		f.routers[swID].SetChurn(m.RegisterRouter(f.net.Topo.Node(swID).Name))
	}
}

// SetOverrides pins flows to an alternative forwarding choice on every
// router — the counterfactual replay hook (nil clears).
func (f *Fleet) SetOverrides(o *trace.Overrides) {
	for _, c := range f.routers {
		c.SetOverrides(o)
	}
}

// Install hot-swaps a freshly compiled policy into every router in one
// event-loop step: the fleet era is bumped, and each switch (in
// deterministic topology order) swaps its program, flushes tables
// whose tag space belonged to the old product graph, and re-stamps all
// future probes and packets with the new era. The new artifact must
// target the same topology and options — core.Recompile is the
// intended producer. Convergence is not instant: routes re-form as
// new-era probes propagate, which is exactly the window the chaos
// subsystem measures.
func (f *Fleet) Install(comp *core.Compiled) {
	f.era++
	f.comp = comp
	for _, swID := range f.net.Topo.Switches() {
		f.routers[swID].Install(comp, f.era)
	}
}
