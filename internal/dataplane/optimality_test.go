package dataplane

import (
	"fmt"
	"math/rand"
	"testing"

	"contra/internal/core"
	"contra/internal/pg"
	"contra/internal/policy"
	"contra/internal/sim"
	"contra/internal/topo"
)

func pgNodeID(i int) pg.NodeID { return pg.NodeID(i) }

// These tests check the paper's "Optimal" objective (Figure 1): under
// stable metrics the protocol converges to the best policy-compliant
// path for every source. Length- and latency-based policies have
// exactly known ground truth (no utilization noise), so the compiled
// protocol's converged choice must match the brute-force Oracle.

// convergedBest returns the protocol's converged (path, rank) for
// src->dst by walking tags, after warmupRounds probe periods.
func convergedBest(t *testing.T, g *topo.Graph, policySrc string, rounds int) (map[[2]topo.NodeID]policy.Rank, *core.Compiled) {
	t.Helper()
	comp := compileOn(t, g, policySrc, core.Options{})
	e := sim.NewEngine(12)
	n := sim.NewNetwork(e, g, sim.Config{})
	routers := Deploy(n, comp)
	n.Start()
	e.Run(int64(rounds) * comp.Opts.ProbePeriodNs)

	out := make(map[[2]topo.NodeID]policy.Rank)
	for _, src := range g.Switches() {
		for _, dst := range g.Switches() {
			if src == dst {
				continue
			}
			_, _, rank, ok := routers[src].BestEntry(dst)
			if !ok {
				rank = policy.Infinite()
			}
			out[[2]topo.NodeID{src, dst}] = rank
		}
	}
	return out, comp
}

func checkAgainstOracle(t *testing.T, g *topo.Graph, policySrc string) {
	t.Helper()
	got, comp := convergedBest(t, g, policySrc, 14)
	for _, src := range g.Switches() {
		for _, dst := range g.Switches() {
			if src == dst {
				continue
			}
			want := walkOracle(comp, src, dst)
			rank := got[[2]topo.NodeID{src, dst}]
			// Utilization components of the rank are probe-measured
			// (tiny but nonzero); allow small noise.
			if !ranksMatch(rank, want) {
				t.Errorf("%s: %s->%s protocol rank %v, oracle %v",
					policySrc, g.Node(src).Name, g.Node(dst).Name, rank, want)
			}
		}
	}
}

// walkOracle computes the true optimum over *walks* (the policy's
// regular-path semantics admit non-simple routes, e.g. hairpinning
// through a waypoint): per product-graph virtual node, the minimal hop
// count and latency of any walk from dst's probe-sending state, then
// the policy evaluated with that node's acceptance bits. Independent of
// the protocol: no probes, versions, or tables — just Dijkstra over
// the product graph.
func walkOracle(comp *core.Compiled, src, dst topo.NodeID) policy.Rank {
	pgr := comp.PG
	start, ok := pgr.SendState(dst)
	if !ok {
		return policy.Infinite()
	}
	const inf = int64(1) << 62
	type cost struct{ lenHops, latNs int64 }
	dist := make([]cost, pgr.NumNodes())
	for i := range dist {
		dist[i] = cost{inf, inf}
	}
	dist[start] = cost{0, 0}
	// Bellman-Ford style relaxation (graphs are small in tests);
	// len and lat are relaxed independently — each is the min over
	// walks of its own objective, which is what each probe class
	// would discover.
	for iter := 0; iter < pgr.NumNodes()+1; iter++ {
		changed := false
		for v := 0; v < pgr.NumNodes(); v++ {
			if dist[v].lenHops == inf && dist[v].latNs == inf {
				continue
			}
			vx := pgr.Node(pgNodeID(v)).Topo
			// Walks may not pass through the destination mid-path:
			// traffic is delivered the first time it reaches its
			// destination switch (and probes are dropped at their
			// origin accordingly). Only the probe-sending state
			// expands from dst.
			if vx == dst && pgNodeID(v) != start {
				continue
			}
			for _, u := range pgr.Out(pgNodeID(v)) {
				ux := pgr.Node(u).Topo
				link := comp.Topo.LinkBetween(vx, ux)
				if link == nil || link.Down {
					continue
				}
				if dist[v].lenHops+1 < dist[u].lenHops {
					dist[u].lenHops = dist[v].lenHops + 1
					changed = true
				}
				if dist[v].latNs+link.Delay < dist[u].latNs {
					dist[u].latNs = dist[v].latNs + link.Delay
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	best := policy.Infinite()
	for _, v := range pgr.VirtualNodes(src) {
		d := dist[v]
		if d.lenHops == inf {
			continue
		}
		mv := make([]float64, len(comp.Analysis.MV))
		for i, m := range comp.Analysis.MV {
			switch m {
			case policy.Len:
				mv[i] = float64(d.lenHops)
			case policy.Lat:
				mv[i] = float64(d.latNs) / 1e9
			case policy.Util:
				mv[i] = 0
			}
		}
		node := pgr.Node(v)
		r := comp.Analysis.EvalPolicy(mv, func(id int) bool { return node.Accept[id] })
		if r.Better(best) {
			best = r
		}
	}
	return best
}

// ranksMatch compares ranks allowing probe-measured noise below 1% in
// any component (probe traffic itself registers on the DRE).
func ranksMatch(a, b policy.Rank) bool {
	if a.IsInf() || b.IsInf() {
		return a.IsInf() == b.IsInf()
	}
	n := len(a.V)
	if len(b.V) > n {
		n = len(b.V)
	}
	for i := 0; i < n; i++ {
		var av, bv float64
		if i < len(a.V) {
			av = a.V[i]
		}
		if i < len(b.V) {
			bv = b.V[i]
		}
		d := av - bv
		if d < 0 {
			d = -d
		}
		if d > 0.01 {
			return false
		}
	}
	return true
}

func TestOptimalityShortestPathsOnPaperTopologies(t *testing.T) {
	topos := []*topo.Graph{
		topo.Fig4Square(), topo.Fig5Diamond(), topo.Fig6(), topo.Fig8Zigzag(), topo.Abilene(),
	}
	for _, g := range topos {
		checkAgainstOracle(t, g, "minimize(path.len)")
		checkAgainstOracle(t, g, "minimize(path.lat)")
	}
}

func TestOptimalityWithRegexConstraints(t *testing.T) {
	g := topo.Fig6()
	for _, src := range []string{
		"minimize(if .* B .* then path.len else inf)",
		"minimize(if .* C .* then path.len else inf)",
		"minimize(if A B D then 0 else if B .* D then path.len else inf)",
		"minimize((if .* B C .* then 10 else 0) + path.len)",
	} {
		checkAgainstOracle(t, g, src)
	}
}

func TestOptimalityRandomTopologiesRandomPolicies(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 6; trial++ {
		g := topo.RandomConnected(6+rng.Intn(5), 3, int64(trial+50))
		names := g.SortedNames()
		w := names[rng.Intn(len(names))]
		policies := []string{
			"minimize(path.len)",
			fmt.Sprintf("minimize(if .* %s .* then path.len else inf)", w),
			fmt.Sprintf("minimize((if .* %s .* then 5 else 0) + path.len)", w),
		}
		for _, src := range policies {
			checkAgainstOracle(t, g, src)
		}
	}
}

func TestCongestionAwareEndToEnd(t *testing.T) {
	// P9 on the square: with a saturated direct link (util >= 0.8) the
	// policy's else-branch (shortest paths) should govern; with idle
	// links the then-branch (min util) governs. Either way traffic
	// flows.
	base := topo.Fig4Square()
	g := withHosts(base, "S", "D")
	comp := compileOn(t, g, "minimize(if path.util < .8 then (1, 0, path.util) else (2, path.len, path.util))", core.Options{})
	if comp.Analysis.NumPids() != 2 {
		t.Fatalf("CA pids = %d, want 2", comp.Analysis.NumPids())
	}
	e := sim.NewEngine(21)
	n := sim.NewNetwork(e, g, sim.Config{})
	routers := Deploy(n, comp)
	n.Start()
	warm := 12 * comp.Opts.ProbePeriodNs
	e.Run(warm)

	s, d := g.MustNode("S"), g.MustNode("D")
	_, _, rank, ok := routers[s].BestEntry(d)
	if !ok {
		t.Fatal("no route")
	}
	if rank.IsInf() || rank.V[0] != 1 {
		t.Fatalf("idle network should take the util branch (1,...), got %v", rank)
	}

	// Saturate everything S can reach with three heavy flows.
	n.StartFlows([]sim.FlowSpec{{
		ID: 1, Src: g.MustNode("HS"), Dst: g.MustNode("HD"), RateBps: 9.5e9, Start: warm,
	}})
	e.Run(warm + 40*comp.Opts.ProbePeriodNs)
	_, _, rank, ok = routers[s].BestEntry(d)
	if !ok {
		t.Fatal("no route under load")
	}
	// The direct path carries ~0.95 util; alternates stay cool, so the
	// then-branch with a cool path should still win — the key check is
	// that recombination across the two pids keeps producing a finite,
	// well-formed rank.
	if rank.IsInf() {
		t.Fatalf("CA rank became inf under load")
	}
}
