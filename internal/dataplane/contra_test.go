package dataplane

import (
	"fmt"
	"testing"

	"contra/internal/core"
	"contra/internal/policy"
	"contra/internal/sim"
	"contra/internal/topo"
)

// withHosts clones a switch-only test topology and attaches one host
// per named switch.
func withHosts(g *topo.Graph, names ...string) *topo.Graph {
	c := g.Clone()
	for _, n := range names {
		h := c.AddNode("H"+n, topo.Host)
		c.AddLink(c.MustNode(n), h, 10e9, 1000)
	}
	return c
}

func compileOn(t *testing.T, g *topo.Graph, src string, opts core.Options) *core.Compiled {
	t.Helper()
	pol, err := policy.Parse(src, policy.ParseOptions{Symbols: g.SortedNames()})
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	c, err := core.Compile(g, pol, opts)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return c
}

// deploy builds engine+network+routers, runs the warmup, and returns
// everything.
func deploy(t *testing.T, g *topo.Graph, policySrc string, warmupPeriods int) (*sim.Engine, *sim.Network, map[topo.NodeID]*Contra, *core.Compiled) {
	t.Helper()
	comp := compileOn(t, g, policySrc, core.Options{})
	e := sim.NewEngine(42)
	n := sim.NewNetwork(e, g, sim.Config{TrackVisited: true})
	routers := Deploy(n, comp)
	n.Start()
	e.Run(int64(warmupPeriods) * comp.Opts.ProbePeriodNs)
	return e, n, routers, comp
}

func TestConvergesToShortestLatency(t *testing.T) {
	// minimize(path.lat) on Abilene: latency is static, so after a few
	// probe rounds every switch's best next hop must sit on a
	// Dijkstra-shortest path.
	g := topo.Abilene()
	_, _, routers, _ := deploy(t, g, "minimize(path.lat)", 12)
	for _, src := range g.Switches() {
		dist := g.LatencyFrom(src) // symmetric
		for _, dst := range g.Switches() {
			if src == dst {
				continue
			}
			port, rank := routers[src].BestNextHop(dst)
			if port < 0 {
				t.Fatalf("%s has no route to %s", g.Node(src).Name, g.Node(dst).Name)
			}
			peer := g.Ports(src)[port].Peer
			link := g.LinkBetween(src, peer)
			distDst := g.LatencyFrom(dst)
			want := dist[dst]
			got := link.Delay + distDst[peer]
			if got != want {
				t.Errorf("%s->%s: next hop %s gives latency %d, shortest is %d (rank %v)",
					g.Node(src).Name, g.Node(dst).Name, g.Node(peer).Name, got, want, rank)
			}
		}
	}
}

func TestConvergesToShortestHops(t *testing.T) {
	g := topo.Fattree(4, 0)
	_, _, routers, _ := deploy(t, g, "minimize(path.len)", 12)
	e00, e10 := g.MustNode("e0_0"), g.MustNode("e1_0")
	port, rank := routers[e00].BestNextHop(e10)
	if port < 0 {
		t.Fatal("no route across pods")
	}
	if !rank.Equal(policy.Finite(4)) {
		t.Fatalf("cross-pod rank = %v, want 4 hops", rank)
	}
	peer := g.Ports(e00)[port].Peer
	if g.Node(peer).Role != topo.RoleAgg {
		t.Fatalf("first hop should be an agg, got %s", g.Node(peer).Name)
	}
}

func TestEndToEndFlowsComplete(t *testing.T) {
	g := topo.PaperDataCenter()
	comp := compileOn(t, g, "minimize(path.util)", core.Options{})
	e := sim.NewEngine(7)
	n := sim.NewNetwork(e, g, sim.Config{})
	Deploy(n, comp)
	n.Start()
	warm := 10 * comp.Opts.ProbePeriodNs
	e.Run(warm)

	hosts := g.Hosts()
	var flows []sim.FlowSpec
	for i := 0; i < 24; i++ {
		src := hosts[i%len(hosts)]
		dst := hosts[(i+9)%len(hosts)]
		if g.HostEdge(src) == g.HostEdge(dst) {
			dst = hosts[(i+13)%len(hosts)]
		}
		flows = append(flows, sim.FlowSpec{
			ID: uint64(i + 1), Src: src, Dst: dst,
			Size: 200_000, Start: warm + int64(i)*5_000,
		})
	}
	n.StartFlows(flows)
	e.Run(warm + 2e9)
	n.FoldCounters()
	if got := n.CompletedFlows(); got != int64(len(flows)) {
		t.Fatalf("completed %d of %d flows; noroute=%v ttl=%v",
			got, len(flows), n.Counters.Get("drop_noroute"), n.Counters.Get("drop_ttl"))
	}
}

func TestWaypointCompliance(t *testing.T) {
	// All S->D traffic must pass through A.
	base := topo.Fig4Square()
	g := withHosts(base, "S", "D")
	comp := compileOn(t, g, "minimize(if .* A .* then path.util else inf)", core.Options{})
	e := sim.NewEngine(3)
	n := sim.NewNetwork(e, g, sim.Config{TrackVisited: true})
	Deploy(n, comp)
	n.Start()

	aBit := uint64(1) << uint(g.MustNode("A"))
	checked := 0
	n.OnHostRx = func(pkt *sim.Packet) {
		if pkt.Visited&aBit == 0 {
			t.Errorf("packet seq %d reached host without passing waypoint A", pkt.Seq)
		}
		checked++
	}
	warm := 10 * comp.Opts.ProbePeriodNs
	e.Run(warm)
	n.StartFlows([]sim.FlowSpec{{
		ID: 1, Src: g.MustNode("HS"), Dst: g.MustNode("HD"), Size: 500_000, Start: warm,
	}})
	e.Run(warm + 1e9)
	n.FoldCounters()
	if n.CompletedFlows() != 1 {
		t.Fatalf("flow incomplete; noroute=%v", n.Counters.Get("drop_noroute"))
	}
	if checked == 0 {
		t.Fatal("no packets checked")
	}
}

func TestFailureDetectionAndRecovery(t *testing.T) {
	// MU on the square: S->D uses some path; killing its first-hop
	// link must reroute within ~k probe periods + flowlet timeout.
	base := topo.Fig4Square()
	g := withHosts(base, "S", "D")
	comp := compileOn(t, g, "minimize(path.util)", core.Options{})
	e := sim.NewEngine(5)
	n := sim.NewNetwork(e, g, sim.Config{})
	routers := Deploy(n, comp)
	n.Start()

	period := comp.Opts.ProbePeriodNs
	warm := 10 * period
	e.Run(warm)

	s, d := g.MustNode("S"), g.MustNode("D")
	port, _ := routers[s].BestNextHop(d)
	if port < 0 {
		t.Fatal("no initial route")
	}
	firstHop := g.Ports(s)[port].Peer

	// Constant traffic S->D.
	n.StartFlows([]sim.FlowSpec{{
		ID: 1, Src: g.MustNode("HS"), Dst: g.MustNode("HD"), RateBps: 1e9, Start: warm,
	}})
	failAt := warm + 10*period
	link := g.LinkBetween(s, firstHop)
	n.FailLink(link.ID, failAt)

	// After k periods + slack the best next hop must avoid the dead
	// link.
	detect := failAt + int64(comp.Opts.FailureDetectPeriods+3)*period
	e.Run(detect)
	newPort, rank := routers[s].BestNextHop(d)
	if newPort < 0 {
		t.Fatal("no route after failure")
	}
	if g.Ports(s)[newPort].Peer == firstHop {
		t.Fatalf("still routing into the failed link (rank %v)", rank)
	}
	// Traffic keeps flowing: measure deliveries after detection.
	var delivered int64
	n.OnHostRx = func(pkt *sim.Packet) { delivered++ }
	e.Run(detect + 20*period)
	if delivered == 0 {
		t.Fatal("no traffic delivered after failover")
	}
}

func TestTwoPidRecombination(t *testing.T) {
	// P8: source-local preference decomposes into util and lat pids;
	// flows still complete and both probe classes populate tables.
	base := topo.Fig4Square()
	g := withHosts(base, "S", "D")
	comp := compileOn(t, g, "minimize(if S .* then path.util else path.lat)", core.Options{})
	if comp.Analysis.NumPids() != 2 {
		t.Fatalf("pids = %d, want 2", comp.Analysis.NumPids())
	}
	e := sim.NewEngine(9)
	n := sim.NewNetwork(e, g, sim.Config{})
	Deploy(n, comp)
	n.Start()
	warm := 10 * comp.Opts.ProbePeriodNs
	e.Run(warm)
	n.StartFlows([]sim.FlowSpec{
		{ID: 1, Src: g.MustNode("HS"), Dst: g.MustNode("HD"), Size: 200_000, Start: warm},
		{ID: 2, Src: g.MustNode("HD"), Dst: g.MustNode("HS"), Size: 200_000, Start: warm},
	})
	e.Run(warm + 1e9)
	n.FoldCounters()
	if n.CompletedFlows() != 2 {
		t.Fatalf("flows incomplete: %d/2; noroute=%v",
			n.CompletedFlows(), n.Counters.Get("drop_noroute"))
	}
}

func TestProbeTrafficBounded(t *testing.T) {
	// Probes must not multiply: per round, per origin, each PG edge
	// carries a bounded number of probes.
	g := topo.Fig4Square()
	comp := compileOn(t, g, "minimize(path.util)", core.Options{})
	e := sim.NewEngine(2)
	n := sim.NewNetwork(e, g, sim.Config{})
	Deploy(n, comp)
	n.Start()
	rounds := int64(50)
	e.Run(rounds * comp.Opts.ProbePeriodNs)
	n.FoldCounters()
	probeBytes := n.Counters.Get("bytes_probe")
	// Generous bound: origins x PG-edges x probes-per-edge-per-round(4).
	bound := float64(rounds) * float64(len(g.Switches())) * float64(2*g.NumLinks()) * 4 * float64(comp.Stats.ProbeBytes+18)
	if probeBytes > bound {
		t.Fatalf("probe traffic %v exceeds bound %v: probes are multiplying", probeBytes, bound)
	}
	if probeBytes == 0 {
		t.Fatal("no probes at all")
	}
}

func TestUtilizationAwareSteering(t *testing.T) {
	// Load the direct S-D path with background traffic; MU must steer
	// a new flow via an idle two-hop path while shortest-path routing
	// would stay on the hot link.
	base := topo.Fig4Square()
	g := withHosts(base, "S", "D", "A", "B")
	comp := compileOn(t, g, "minimize(path.util)", core.Options{})
	e := sim.NewEngine(4)
	n := sim.NewNetwork(e, g, sim.Config{})
	routers := Deploy(n, comp)
	n.Start()
	period := comp.Opts.ProbePeriodNs
	warm := 10 * period
	e.Run(warm)

	// Background: saturate S-D directly (it will pick the direct link
	// first since all utils start equal... keep it heavy).
	n.StartFlows([]sim.FlowSpec{{
		ID: 1, Src: g.MustNode("HS"), Dst: g.MustNode("HD"), RateBps: 8e9, Start: warm,
	}})
	e.Run(warm + 20*period)

	s, d := g.MustNode("S"), g.MustNode("D")
	port, rank := routers[s].BestNextHop(d)
	if port < 0 {
		t.Fatal("no route")
	}
	peer := g.Ports(s)[port].Peer
	// The chosen next hop must not be the saturated direct link.
	if peer == d {
		t.Fatalf("best next hop still the hot direct link (rank %v)", rank)
	}
}

func TestBestNextHopNamesStable(t *testing.T) {
	// Deterministic across identical runs.
	g := topo.Abilene()
	_, _, r1, _ := deploy(t, g, "minimize(path.lat)", 12)
	_, _, r2, _ := deploy(t, g, "minimize(path.lat)", 12)
	for _, src := range g.Switches() {
		for _, dst := range g.Switches() {
			if src == dst {
				continue
			}
			p1, _ := r1[src].BestNextHop(dst)
			p2, _ := r2[src].BestNextHop(dst)
			if p1 != p2 {
				t.Fatalf("nondeterministic next hop %s->%s: %d vs %d",
					g.Node(src).Name, g.Node(dst).Name, p1, p2)
			}
		}
	}
}

func TestNoRouteBeforeWarmup(t *testing.T) {
	// Before any probes, sources drop traffic as unroutable rather
	// than panicking or looping.
	base := topo.Fig4Square()
	g := withHosts(base, "S", "D")
	comp := compileOn(t, g, "minimize(path.util)", core.Options{})
	e := sim.NewEngine(6)
	n := sim.NewNetwork(e, g, sim.Config{})
	Deploy(n, comp)
	n.Start()
	n.StartFlows([]sim.FlowSpec{{
		ID: 1, Src: g.MustNode("HS"), Dst: g.MustNode("HD"), RateBps: 1e8, Start: 0,
	}})
	e.Run(5_000) // 5us: before the first probe round completes
	n.FoldCounters()
	if n.Counters.Get("drop_noroute") == 0 {
		t.Skip("first probes may already have arrived; acceptable")
	}
}

func ExampleContra_BestNextHop() {
	g := topo.Abilene()
	pol := policy.MustParse("minimize(path.lat)")
	comp, _ := core.Compile(g, pol, core.Options{})
	e := sim.NewEngine(1)
	n := sim.NewNetwork(e, g, sim.Config{})
	routers := Deploy(n, comp)
	n.Start()
	e.Run(12 * comp.Opts.ProbePeriodNs)
	sea, nyc := g.MustNode("SEA"), g.MustNode("NYC")
	port, _ := routers[sea].BestNextHop(nyc)
	fmt.Println("SEA reaches NYC via", g.Node(g.Ports(sea)[port].Peer).Name)
	// Output: SEA reaches NYC via DEN
}
