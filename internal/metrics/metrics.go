// Package metrics is the time-series telemetry layer: a sampling
// recorder that, at a configurable interval, snapshots per-port link
// utilization, queue occupancy, cumulative drops by reason, per-router
// probe-table churn, and route-flap counts into preallocated ring
// buffers, then exports them as versioned, deterministic JSONL/CSV
// time series.
//
// The discipline mirrors internal/trace: callers hold a nil *Recorder
// when metrics are off, every hook site gates on that nil, and a
// metrics-off run is byte-identical to a run without the hooks
// compiled in. When metrics are on, sampling only *peeks* at simulator
// state (see stats.DRE.UtilizationPeek) so two same-seed runs produce
// byte-identical series, and all per-sample storage is preallocated at
// freeze time so the steady-state sampling path allocates nothing.
package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// Version is the JSONL/CSV schema version stamped into the meta line.
const Version = 1

// DefaultSampleCap bounds the number of sample ticks retained; older
// ticks are overwritten ring-style and counted as dropped.
const DefaultSampleCap = 4096

// Churn accumulates one router's probe-table dynamics as cumulative
// counters. Routers bump the fields inline (behind a nil check on the
// pointer they hold); the Recorder snapshots deltas at each sample
// tick. Plain exported fields keep the hot-path cost at one predicted
// branch plus an increment.
type Churn struct {
	Added    int64 // forwarding entries created
	Replaced int64 // entries overwritten by a better/renewed route
	Expired  int64 // entries that aged out (§5.4 metric expiration)
	Flaps    int64 // best next-hop changes per destination
}

type routerReg struct {
	name  string
	churn *Churn
}

// Recorder collects sample ticks into preallocated ring buffers.
// Register links, drop reasons, and routers before the first sample;
// the first BeginSample freezes the registration and allocates all
// storage up front.
type Recorder struct {
	intervalNs int64
	ringCap    int
	frozen     bool

	linkNames   []string
	dropReasons []string
	routers     []routerReg

	// Ring of sample ticks: times holds the tick timestamps, head is
	// the oldest slot once the ring has wrapped, dropped counts
	// overwritten ticks (same convention as trace.Recorder).
	times   []int64
	head    int
	dropped int64

	// Flat per-tick storage, stride numLinks/numReasons/numRouters.
	util    []float64
	queue   []float64
	ldrops  []int64
	reasons []int64
	churn   []Churn
	prev    []Churn // cumulative snapshot at the previous tick

	cur int // slot being filled between BeginSample and EndSample
	li  int // link cursor within the current tick
}

// NewRecorder returns a Recorder sampling at the given interval (ns).
// The interval is metadata: the caller owns the timer that drives
// BeginSample/EndSample.
func NewRecorder(intervalNs int64) *Recorder {
	return &Recorder{intervalNs: intervalNs, ringCap: DefaultSampleCap}
}

// IntervalNs returns the configured sampling interval.
func (r *Recorder) IntervalNs() int64 { return r.intervalNs }

// SetSampleCap bounds the retained sample ticks. Must be called before
// the first sample.
func (r *Recorder) SetSampleCap(n int) {
	if r.frozen {
		panic("metrics: SetSampleCap after first sample")
	}
	if n < 1 {
		n = 1
	}
	r.ringCap = n
}

// RegisterLink names the next link column (registration order is the
// column order). Must be called before the first sample.
func (r *Recorder) RegisterLink(name string) {
	if r.frozen {
		panic("metrics: RegisterLink after first sample")
	}
	r.linkNames = append(r.linkNames, name)
}

// RegisterDropReasons installs the drop-reason labels, in the order the
// per-tick cumulative counts will be reported.
func (r *Recorder) RegisterDropReasons(labels []string) {
	if r.frozen {
		panic("metrics: RegisterDropReasons after first sample")
	}
	r.dropReasons = append(r.dropReasons[:0], labels...)
}

// RegisterRouter returns the Churn accumulator for a named router.
// Routers may register in any order (fleet maps iterate
// nondeterministically); the recorder sorts by name at freeze time so
// the exported series is deterministic.
func (r *Recorder) RegisterRouter(name string) *Churn {
	if r.frozen {
		panic("metrics: RegisterRouter after first sample")
	}
	c := &Churn{}
	r.routers = append(r.routers, routerReg{name: name, churn: c})
	return c
}

// freeze sorts router registrations and preallocates every buffer so
// steady-state sampling is allocation-free.
func (r *Recorder) freeze() {
	sort.Slice(r.routers, func(i, j int) bool { return r.routers[i].name < r.routers[j].name })
	nl, nr, nc := len(r.linkNames), len(r.dropReasons), len(r.routers)
	r.times = make([]int64, 0, r.ringCap)
	r.util = make([]float64, r.ringCap*nl)
	r.queue = make([]float64, r.ringCap*nl)
	r.ldrops = make([]int64, r.ringCap*nl)
	r.reasons = make([]int64, r.ringCap*nr)
	r.churn = make([]Churn, r.ringCap*nc)
	r.prev = make([]Churn, nc)
	r.frozen = true
}

// BeginSample opens a sample tick at time t. Follow with one Link call
// per registered link (in registration order), one Drops call, then
// EndSample.
func (r *Recorder) BeginSample(t int64) {
	if !r.frozen {
		r.freeze()
	}
	if len(r.times) < r.ringCap {
		r.cur = len(r.times)
		r.times = append(r.times, t)
	} else {
		r.cur = r.head
		r.times[r.head] = t
		r.head++
		if r.head == r.ringCap {
			r.head = 0
		}
		r.dropped++
	}
	r.li = 0
}

// Link records one link's utilization, queued bytes, and cumulative
// drop count for the current tick.
func (r *Recorder) Link(util, queuedBytes float64, drops int64) {
	idx := r.cur*len(r.linkNames) + r.li
	r.util[idx] = util
	r.queue[idx] = queuedBytes
	r.ldrops[idx] = drops
	r.li++
}

// Drops records the cumulative per-reason drop counts for the current
// tick.
func (r *Recorder) Drops(counts []int64) {
	copy(r.reasons[r.cur*len(r.dropReasons):], counts)
}

// EndSample closes the tick: snapshots each registered router's churn
// counters and stores the delta since the previous tick.
func (r *Recorder) EndSample() {
	base := r.cur * len(r.routers)
	for i := range r.routers {
		c := *r.routers[i].churn
		p := r.prev[i]
		r.churn[base+i] = Churn{
			Added:    c.Added - p.Added,
			Replaced: c.Replaced - p.Replaced,
			Expired:  c.Expired - p.Expired,
			Flaps:    c.Flaps - p.Flaps,
		}
		r.prev[i] = c
	}
}

// Samples returns the number of retained sample ticks.
func (r *Recorder) Samples() int { return len(r.times) }

// Dropped returns the number of ticks overwritten by ring wrap.
func (r *Recorder) Dropped() int64 { return r.dropped }

// Links returns the registered link names in column order.
func (r *Recorder) Links() []string { return r.linkNames }

// DropReasons returns the registered drop-reason labels.
func (r *Recorder) DropReasons() []string { return r.dropReasons }

// Routers returns the router names in series order (sorted; only valid
// after the first sample froze the registration).
func (r *Recorder) Routers() []string {
	out := make([]string, len(r.routers))
	for i, reg := range r.routers {
		out[i] = reg.name
	}
	return out
}

// Tick is one retained sample handed to EachSample: per-link parallel
// slices (registration order), cumulative per-reason drop counts, and
// per-router churn deltas (sorted-router order). The slices are views
// into the ring — valid only during the callback.
type Tick struct {
	T       int64
	Util    []float64
	Queue   []float64
	Drops   []int64
	Reasons []int64
	Churn   []Churn
}

// EachSample calls fn for every retained tick, oldest first.
func (r *Recorder) EachSample(fn func(tk Tick)) {
	nl, nr, nc := len(r.linkNames), len(r.dropReasons), len(r.routers)
	emit := func(slot int) {
		fn(Tick{
			T:       r.times[slot],
			Util:    r.util[slot*nl : (slot+1)*nl],
			Queue:   r.queue[slot*nl : (slot+1)*nl],
			Drops:   r.ldrops[slot*nl : (slot+1)*nl],
			Reasons: r.reasons[slot*nr : (slot+1)*nr],
			Churn:   r.churn[slot*nc : (slot+1)*nc],
		})
	}
	for slot := r.head; slot < len(r.times); slot++ {
		emit(slot)
	}
	for slot := 0; slot < r.head; slot++ {
		emit(slot)
	}
}

// JSONL line shapes. Type discriminates, matching internal/trace.
type metaLine struct {
	Type        string   `json:"type"`
	V           int      `json:"v"`
	IntervalNs  int64    `json:"interval_ns"`
	Samples     int      `json:"samples"`
	Dropped     int64    `json:"dropped,omitempty"`
	Links       []string `json:"links"`
	DropReasons []string `json:"drop_reasons"`
	Routers     []string `json:"routers"`
}

type linkLine struct {
	Type  string  `json:"type"`
	T     int64   `json:"t"`
	Link  int     `json:"link"`
	Util  float64 `json:"util"`
	Queue float64 `json:"queue"`
	Drops int64   `json:"drops"`
}

type dropsLine struct {
	Type   string  `json:"type"`
	T      int64   `json:"t"`
	Counts []int64 `json:"counts"`
}

type routerLine struct {
	Type     string `json:"type"`
	T        int64  `json:"t"`
	Router   int    `json:"router"`
	Added    int64  `json:"added"`
	Replaced int64  `json:"replaced"`
	Expired  int64  `json:"expired"`
	Flaps    int64  `json:"flaps"`
}

// WriteJSONL writes the recorded series as one JSON object per line: a
// meta line first (schema version, interval, name tables), then for
// each tick oldest-first one link line per link, one drops line, and
// one router line per router. Output is byte-deterministic for a
// deterministic simulation.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	if !r.frozen {
		r.freeze()
	}
	enc := json.NewEncoder(w)
	meta := metaLine{
		Type:        "meta",
		V:           Version,
		IntervalNs:  r.intervalNs,
		Samples:     len(r.times),
		Dropped:     r.dropped,
		Links:       r.linkNames,
		DropReasons: r.dropReasons,
		Routers:     r.Routers(),
	}
	if err := enc.Encode(meta); err != nil {
		return err
	}
	var err error
	r.EachSample(func(tk Tick) {
		if err != nil {
			return
		}
		for i := range tk.Util {
			if err = enc.Encode(linkLine{
				Type: "link", T: tk.T, Link: i,
				Util: tk.Util[i], Queue: tk.Queue[i], Drops: tk.Drops[i],
			}); err != nil {
				return
			}
		}
		if err = enc.Encode(dropsLine{Type: "drops", T: tk.T, Counts: tk.Reasons}); err != nil {
			return
		}
		for i := range tk.Churn {
			c := tk.Churn[i]
			if err = enc.Encode(routerLine{
				Type: "router", T: tk.T, Router: i,
				Added: c.Added, Replaced: c.Replaced, Expired: c.Expired, Flaps: c.Flaps,
			}); err != nil {
				return
			}
		}
	})
	return err
}

// WriteCSV writes the same series in a flat wide CSV: one row per
// (tick, object), with columns not applicable to the row's kind left
// blank (the campaign blank-not-zero convention).
func (r *Recorder) WriteCSV(w io.Writer) error {
	if !r.frozen {
		r.freeze()
	}
	if _, err := fmt.Fprintf(w, "v%d\nt_ns,kind,name,util,queue_bytes,drops,added,replaced,expired,flaps\n", Version); err != nil {
		return err
	}
	g := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	var err error
	r.EachSample(func(tk Tick) {
		if err != nil {
			return
		}
		for i := range tk.Util {
			if _, err = fmt.Fprintf(w, "%d,link,%s,%s,%s,%d,,,,\n",
				tk.T, r.linkNames[i], g(tk.Util[i]), g(tk.Queue[i]), tk.Drops[i]); err != nil {
				return
			}
		}
		for i, c := range tk.Reasons {
			if _, err = fmt.Fprintf(w, "%d,drops,%s,,,%d,,,,\n", tk.T, r.dropReasons[i], c); err != nil {
				return
			}
		}
		for i, c := range tk.Churn {
			if _, err = fmt.Fprintf(w, "%d,router,%s,,,,%d,%d,%d,%d\n",
				tk.T, r.routers[i].name, c.Added, c.Replaced, c.Expired, c.Flaps); err != nil {
				return
			}
		}
	})
	return err
}
