package metrics

import (
	"bytes"
	"strings"
	"testing"
)

var testCounts = []int64{1, 0}

func sampleOnce(r *Recorder, t int64, util float64) {
	r.BeginSample(t)
	for range r.Links() {
		r.Link(util, 1500, 2)
	}
	r.Drops(testCounts)
	r.EndSample()
}

func newTestRecorder() (*Recorder, *Churn, *Churn) {
	r := NewRecorder(500_000)
	r.RegisterLink("a->b")
	r.RegisterLink("b->a")
	r.RegisterDropReasons([]string{"drop_queue", "drop_linkdown"})
	// Register out of name order: freeze must sort.
	cz := r.RegisterRouter("z")
	ca := r.RegisterRouter("a")
	return r, cz, ca
}

func TestRouterOrderSortedAtFreeze(t *testing.T) {
	r, cz, ca := newTestRecorder()
	cz.Added = 3
	ca.Flaps = 1
	sampleOnce(r, 0, 0.5)
	got := r.Routers()
	if got[0] != "a" || got[1] != "z" {
		t.Fatalf("routers not sorted: %v", got)
	}
	var ticks []Tick
	r.EachSample(func(tk Tick) {
		cp := tk
		cp.Churn = append([]Churn(nil), tk.Churn...)
		ticks = append(ticks, cp)
	})
	if len(ticks) != 1 {
		t.Fatalf("samples = %d, want 1", len(ticks))
	}
	if ticks[0].Churn[0].Flaps != 1 || ticks[0].Churn[1].Added != 3 {
		t.Fatalf("churn not in sorted-router order: %+v", ticks[0].Churn)
	}
}

func TestChurnDeltasBetweenTicks(t *testing.T) {
	r, cz, _ := newTestRecorder()
	cz.Added = 2
	sampleOnce(r, 0, 0)
	cz.Added = 7
	cz.Expired = 1
	sampleOnce(r, 500_000, 0)
	var deltas []Churn
	r.EachSample(func(tk Tick) {
		deltas = append(deltas, tk.Churn[1]) // "z" sorts second
	})
	if deltas[0] != (Churn{Added: 2}) {
		t.Fatalf("tick 0 delta = %+v", deltas[0])
	}
	if deltas[1] != (Churn{Added: 5, Expired: 1}) {
		t.Fatalf("tick 1 delta = %+v", deltas[1])
	}
}

func TestRingWrapKeepsNewestTicks(t *testing.T) {
	r, _, _ := newTestRecorder()
	r.SetSampleCap(3)
	for i := 0; i < 5; i++ {
		sampleOnce(r, int64(i), 0)
	}
	if r.Samples() != 3 || r.Dropped() != 2 {
		t.Fatalf("samples=%d dropped=%d, want 3/2", r.Samples(), r.Dropped())
	}
	var ts []int64
	r.EachSample(func(tk Tick) { ts = append(ts, tk.T) })
	want := []int64{2, 3, 4}
	for i := range want {
		if ts[i] != want[i] {
			t.Fatalf("tick times = %v, want %v", ts, want)
		}
	}
}

func TestWriteJSONLDeterministicAndVersioned(t *testing.T) {
	build := func() *Recorder {
		r, cz, ca := newTestRecorder()
		cz.Added, ca.Flaps = 1, 2
		sampleOnce(r, 0, 0.25)
		sampleOnce(r, 500_000, 0.5)
		return r
	}
	var a, b bytes.Buffer
	if err := build().WriteJSONL(&a); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("same inputs produced different JSONL bytes")
	}
	lines := strings.Split(strings.TrimSpace(a.String()), "\n")
	if !strings.Contains(lines[0], `"type":"meta"`) || !strings.Contains(lines[0], `"v":1`) {
		t.Fatalf("first line is not a versioned meta line: %s", lines[0])
	}
	// 2 ticks x (2 links + 1 drops + 2 routers) + meta.
	if len(lines) != 1+2*5 {
		t.Fatalf("line count = %d, want %d", len(lines), 1+2*5)
	}
}

func TestWriteCSVBlankColumns(t *testing.T) {
	r, _, _ := newTestRecorder()
	sampleOnce(r, 0, 0.5)
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "v1" {
		t.Fatalf("missing version line: %q", lines[0])
	}
	for _, ln := range lines[2:] {
		cols := strings.Split(ln, ",")
		if len(cols) != 10 {
			t.Fatalf("row has %d cols, want 10: %q", len(cols), ln)
		}
		switch cols[1] {
		case "link":
			if cols[6] != "" || cols[9] != "" {
				t.Fatalf("link row churn columns not blank: %q", ln)
			}
		case "drops":
			if cols[3] != "" || cols[6] != "" {
				t.Fatalf("drops row has non-blank util/churn: %q", ln)
			}
		case "router":
			if cols[3] != "" || cols[5] != "" {
				t.Fatalf("router row has non-blank util/drops: %q", ln)
			}
		}
	}
}

func TestZeroAllocSampling(t *testing.T) {
	r, cz, _ := newTestRecorder()
	sampleOnce(r, 0, 0) // freeze + allocate
	allocs := testing.AllocsPerRun(100, func() {
		cz.Added++
		sampleOnce(r, 500_000, 0.5)
	})
	if allocs != 0 {
		t.Fatalf("steady-state sampling allocates: %v allocs/op", allocs)
	}
}
