package scenario

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"contra/internal/flowtrace"
	"contra/internal/workload"
)

// recordThenReplay runs live with recording on, writes the trace, and
// runs the replay twin (same scenario, workload swapped for the trace
// kind); both Result JSON encodings must be byte-identical.
func recordThenReplay(t *testing.T, live Scenario) (*Result, *Result) {
	t.Helper()
	live.RecordFlows = true
	liveRes, err := Run(live)
	if err != nil {
		t.Fatal(err)
	}
	if liveRes.FlowTrace == nil {
		t.Fatal("RecordFlows produced no trace artifact")
	}
	path := filepath.Join(t.TempDir(), flowtrace.FileName(live.Name))
	if err := liveRes.FlowTrace.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	rep := live
	rep.RecordFlows = false
	rep.Workload = Workload{Kind: WorkloadTrace, TracePath: path}
	repRes, err := Run(rep)
	if err != nil {
		t.Fatal(err)
	}
	a, err := json.Marshal(liveRes)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(repRes)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatalf("replayed Result differs from live run:\nlive:   %s\nreplay: %s", a, b)
	}
	return liveRes, repRes
}

func TestRecordReplayFCT(t *testing.T) {
	live := Scenario{
		Name: "rr-fct", TopoSpec: "fattree:4:2", Scheme: SchemeContra, Seed: 3,
		Workload:   Workload{Kind: WorkloadFCT, Dist: "websearch", Load: 0.3, DurationNs: 2_000_000, MaxFlows: 150},
		ClassStats: true,
		Events: []Event{
			{Kind: Surge, AtNs: 4_000_000, Load: 0.2, DurationNs: 1_000_000},
			{Kind: LinkDown, AtNs: 4_000_000, Link: "auto"},
		},
	}
	liveRes, _ := recordThenReplay(t, live)
	// The trace labels surge flows so attribution survives replay.
	classes := map[string]bool{}
	for _, f := range liveRes.FlowTrace.Flows {
		classes[f.Class] = true
	}
	if !classes["base"] || !classes["surge1"] {
		t.Fatalf("trace classes = %v, want base and surge1", classes)
	}
}

func TestRecordReplayCBR(t *testing.T) {
	live := Scenario{
		Name: "rr-cbr", TopoSpec: "fattree:4:2", Scheme: SchemeECMP, Seed: 1,
		Workload: Workload{Kind: WorkloadCBR, RateBps: 2e9, EndNs: 20_000_000},
		Events:   []Event{{Kind: LinkDown, AtNs: 10_000_000, Link: "auto"}},
	}
	liveRes, _ := recordThenReplay(t, live)
	if liveRes.FlowTrace.Meta.Kind != flowtrace.KindCBR || liveRes.FlowTrace.Meta.EndNs != 20_000_000 {
		t.Fatalf("cbr trace meta = %+v", liveRes.FlowTrace.Meta)
	}
}

func TestRecordReplayCohorts(t *testing.T) {
	live := Scenario{
		Name: "rr-cohorts", TopoSpec: "fattree:4:2", Scheme: SchemeContra, Seed: 7,
		Workload: Workload{
			Kind:       WorkloadCohorts,
			DurationNs: 2_000_000,
			MaxFlows:   200,
			Cohorts: []workload.CohortSpec{
				{Name: "web", Load: 0.2},
				{Name: "bulk", RateFPS: 3000, Process: workload.ProcGamma, Shape: 0.5,
					Size: workload.SizeSpec{Dist: workload.SizeLogNormal, MeanBytes: 5e5, Sigma: 1}},
			},
		},
		ClassStats: true,
	}
	liveRes, _ := recordThenReplay(t, live)
	classes := map[string]bool{}
	for _, f := range liveRes.FlowTrace.Flows {
		classes[f.Class] = true
	}
	if !classes["web"] || !classes["bulk"] {
		t.Fatalf("trace classes = %v, want the cohort names", classes)
	}
	if liveRes.Classes == nil || len(liveRes.Classes.Cohorts) < 2 {
		t.Fatalf("cohort class stats missing: %+v", liveRes.Classes)
	}
}

// TestReplayFromRecordDir exercises the campaign layout: traces live in
// a directory keyed by sanitized cell name, and a trace path naming the
// directory resolves each cell's own recording.
func TestReplayFromRecordDir(t *testing.T) {
	live := Scenario{
		Name: "fattree:4:2/ecmp/load0.3/steady/seed1", TopoSpec: "fattree:4:2",
		Scheme: SchemeECMP, Seed: 1,
		Workload: Workload{Kind: WorkloadFCT, Load: 0.3, DurationNs: 1_000_000, MaxFlows: 50},
	}
	live.RecordFlows = true
	liveRes, err := Run(live)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := liveRes.FlowTrace.WriteFile(filepath.Join(dir, flowtrace.FileName(live.Name))); err != nil {
		t.Fatal(err)
	}
	rep := live
	rep.RecordFlows = false
	rep.Workload = Workload{Kind: WorkloadTrace, TracePath: dir}
	repRes, err := Run(rep)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(liveRes)
	b, _ := json.Marshal(repRes)
	if string(a) != string(b) {
		t.Fatalf("record-dir replay differs:\nlive:   %s\nreplay: %s", a, b)
	}
}

// TestReplayErrors pins the trace-workload failure modes to precise
// one-line errors.
func TestReplayErrors(t *testing.T) {
	dir := t.TempDir()
	v2 := filepath.Join(dir, "v2.flow.jsonl")
	if err := os.WriteFile(v2, []byte(`{"type":"meta","v":2,"kind":"fct","topo":"fattree:4:2","seed":1,"flows":0}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	otherTopo := filepath.Join(dir, "other.flow.jsonl")
	tr := &flowtrace.Trace{
		Meta:  flowtrace.Meta{Kind: flowtrace.KindFCT, Topo: "leafspine:4:4:2", Seed: 1, DeadlineNs: 10},
		Flows: []flowtrace.Flow{{ID: 1, Src: "x", Dst: "y", Bytes: 10, StartNs: 1}},
	}
	if err := tr.WriteFile(otherTopo); err != nil {
		t.Fatal(err)
	}

	base := Scenario{Name: "re", TopoSpec: "fattree:4:2", Scheme: SchemeECMP, Seed: 1}
	cases := []struct {
		name string
		path string
		want string
	}{
		{"missing file", filepath.Join(dir, "nope.flow.jsonl"), "nope.flow.jsonl"},
		{"wrong version", v2, "unsupported trace version 2"},
		{"topo mismatch", otherTopo, `recorded on topo "leafspine:4:4:2"`},
	}
	for _, tc := range cases {
		s := base
		s.Workload = Workload{Kind: WorkloadTrace, TracePath: tc.path}
		_, err := Run(s)
		if err == nil {
			t.Errorf("%s: ran", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestWorkloadKindValidation pins the cross-kind spec errors.
func TestWorkloadKindValidation(t *testing.T) {
	mk := func(w Workload, evs ...Event) Scenario {
		return Scenario{Name: "v", TopoSpec: "fattree:4:2", Scheme: SchemeECMP, Workload: w, Events: evs}
	}
	cohort := []workload.CohortSpec{{Name: "web", Load: 0.2}}
	cases := []struct {
		name string
		s    Scenario
		want string
	}{
		{"unknown kind", mk(Workload{Kind: "voodoo"}), `unknown workload kind "voodoo"`},
		{"trace without path", mk(Workload{Kind: WorkloadTrace}), "trace workload needs a trace file"},
		{"trace with dist", mk(Workload{Kind: WorkloadTrace, TracePath: "x", Dist: "cache"}), "takes only a trace path"},
		{"cohorts without cohorts", mk(Workload{Kind: WorkloadCohorts}), "declares no cohorts"},
		{"cohorts with dist", mk(Workload{Kind: WorkloadCohorts, Dist: "cache", Cohorts: cohort}), "does not take dist"},
		{"cohorts with pattern", mk(Workload{Kind: WorkloadCohorts, Pattern: "incast", Cohorts: cohort}), "does not take pattern"},
		{"cohorts with pairs", mk(Workload{Kind: WorkloadCohorts, Pairs: [][2]string{{"a", "b"}}, Cohorts: cohort}), "does not take pairs"},
		{"cohorts on fct", mk(Workload{Kind: WorkloadFCT, Cohorts: cohort}), `cohorts require workload kind "cohorts"`},
		{"trace path on fct", mk(Workload{Kind: WorkloadFCT, TracePath: "x"}), `a trace path requires workload kind "trace"`},
		{"bad cohort bubbles", mk(Workload{Kind: WorkloadCohorts, Cohorts: []workload.CohortSpec{{Name: "w", RateFPS: -1, Load: 0.1}}}),
			"rate_fps -1 is negative"},
		{"surge on cohorts", mk(Workload{Kind: WorkloadCohorts, Cohorts: cohort},
			Event{Kind: Surge, AtNs: 1, Load: 0.1, DurationNs: 1}), "surge events require an fct workload"},
		{"ramp on cbr", mk(Workload{Kind: WorkloadCBR},
			Event{Kind: Ramp, AtNs: 1, Load: 0.1, DurationNs: 1}), "ramp events require an fct workload"},
	}
	for _, tc := range cases {
		err := tc.s.Validate()
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestNewWorkloadFieldsKeepKeysStable guards the checkpoint contract:
// scenarios that do not use the new fields must key exactly as before
// they existed (absent omitempty fields leave the canonical encoding
// untouched), and RecordFlows must never enter the key at all.
func TestNewWorkloadFieldsKeepKeysStable(t *testing.T) {
	s := Scenario{Name: "k", TopoSpec: "fattree:4:2", Scheme: SchemeContra, Seed: 1,
		Workload: Workload{Kind: WorkloadFCT, Load: 0.4}}
	base := s.Key()
	rec := s
	rec.RecordFlows = true
	if rec.Key() != base {
		t.Fatal("RecordFlows changed the scenario key")
	}
	enc, err := json.Marshal(&s.Workload)
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"cohorts", "trace"} {
		if strings.Contains(string(enc), field) {
			t.Fatalf("unused field %q leaks into the canonical encoding: %s", field, enc)
		}
	}
}
