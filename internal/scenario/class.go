package scenario

import (
	"sort"

	"contra/internal/sim"
	"contra/internal/stats"
)

// ClassFCT summarizes the completions of one flow class.
type ClassFCT struct {
	Flows  int64   `json:"flows"`
	MeanMs float64 `json:"mean_fct_ms"`
	P50Ms  float64 `json:"p50_fct_ms"`
	P95Ms  float64 `json:"p95_fct_ms"`
	P99Ms  float64 `json:"p99_fct_ms"`
}

// CohortStats summarizes one traffic cohort: the base workload is
// cohort 0 and each surge event i contributes cohort i+1 (flow IDs
// carry the cohort in their top 32 bits).
type CohortStats struct {
	Cohort uint64  `json:"cohort"`
	Flows  int64   `json:"flows"`
	MeanMs float64 `json:"mean_fct_ms"`
	P99Ms  float64 `json:"p99_fct_ms"`
}

// ClassStats is the per-class FCT attribution block of a Result:
// elephant vs. mice quantiles split at ElephantBytes, per-cohort
// stats, and Jain fairness indices over per-flow throughput
// (bytes/FCT) — overall and within each class.
type ClassStats struct {
	ElephantBytes int64         `json:"elephant_bytes"`
	Mice          ClassFCT      `json:"mice"`
	Elephants     ClassFCT      `json:"elephants"`
	Jain          float64       `json:"jain"`
	JainMice      float64       `json:"jain_mice,omitempty"`
	JainElephants float64       `json:"jain_elephants,omitempty"`
	Cohorts       []CohortStats `json:"cohorts,omitempty"`
}

// classCollector accumulates per-completion observations via the
// sim.Network FlowDone hook. Flows complete in deterministic simulator
// order, so everything derived here is byte-stable.
type classCollector struct {
	elephantBytes int64
	miceFCT       *stats.Sample
	elephFCT      *stats.Sample
	miceTh        []float64
	elephTh       []float64
	cohorts       map[uint64]*stats.Sample
}

func newClassCollector(elephantBytes int64) *classCollector {
	return &classCollector{
		elephantBytes: elephantBytes,
		miceFCT:       stats.NewSample(),
		elephFCT:      stats.NewSample(),
		cohorts:       make(map[uint64]*stats.Sample),
	}
}

// add is the FlowDone hook body.
func (cc *classCollector) add(f sim.FlowSpec, fctNs int64) {
	sec := float64(fctNs) / 1e9
	if sec <= 0 {
		return
	}
	th := float64(f.Size) / sec
	if f.Size >= cc.elephantBytes {
		cc.elephFCT.Add(sec)
		cc.elephTh = append(cc.elephTh, th)
	} else {
		cc.miceFCT.Add(sec)
		cc.miceTh = append(cc.miceTh, th)
	}
	co := f.ID >> 32
	s := cc.cohorts[co]
	if s == nil {
		s = stats.NewSample()
		cc.cohorts[co] = s
	}
	s.Add(sec)
}

func classOf(s *stats.Sample, n int64) ClassFCT {
	if n == 0 {
		return ClassFCT{}
	}
	return ClassFCT{
		Flows:  n,
		MeanMs: s.Mean() * 1e3,
		P50Ms:  s.Quantile(0.5) * 1e3,
		P95Ms:  s.Quantile(0.95) * 1e3,
		P99Ms:  s.Quantile(0.99) * 1e3,
	}
}

// stats folds the collected observations into the Result block.
func (cc *classCollector) stats() *ClassStats {
	out := &ClassStats{
		ElephantBytes: cc.elephantBytes,
		Mice:          classOf(cc.miceFCT, int64(len(cc.miceTh))),
		Elephants:     classOf(cc.elephFCT, int64(len(cc.elephTh))),
		JainMice:      stats.Jain(cc.miceTh),
		JainElephants: stats.Jain(cc.elephTh),
	}
	all := make([]float64, 0, len(cc.miceTh)+len(cc.elephTh))
	all = append(all, cc.miceTh...)
	all = append(all, cc.elephTh...)
	out.Jain = stats.Jain(all)

	ids := make([]uint64, 0, len(cc.cohorts))
	for co := range cc.cohorts {
		ids = append(ids, co)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, co := range ids {
		s := cc.cohorts[co]
		out.Cohorts = append(out.Cohorts, CohortStats{
			Cohort: co,
			Flows:  s.Count(),
			MeanMs: s.Mean() * 1e3,
			P99Ms:  s.Quantile(0.99) * 1e3,
		})
	}
	return out
}
