package scenario

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"contra/internal/trace"
)

// TestTraceOffLeavesResultIdentical is the zero-cost contract: an
// explicit trace_level "off" (and the absent default) must produce a
// byte-identical Result to a run that never heard of tracing.
func TestTraceOffLeavesResultIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	base := fastFCT(SchemeContra)
	off := base
	off.TraceLevel = "off"

	br, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	or, err := Run(off)
	if err != nil {
		t.Fatal(err)
	}
	bb, _ := json.Marshal(br)
	ob, _ := json.Marshal(or)
	if !bytes.Equal(bb, ob) {
		t.Fatalf("trace_level off perturbed the result:\n%s\n%s", bb, ob)
	}
	if br.Trace != nil || or.Trace != nil {
		t.Fatal("untraced runs must not carry a recorder")
	}
	// Key stability: "off" normalizes away, so checkpoints match.
	if base.Key() != off.Key() {
		t.Fatalf("explicit off changed the scenario key: %q vs %q", base.Key(), off.Key())
	}
}

// TestTraceDeterministicJSONL runs the same traced scenario twice and
// requires byte-identical JSONL, and requires that tracing does not
// perturb the simulation outcome.
func TestTraceDeterministicJSONL(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	plain, err := Run(fastFCT(SchemeContra))
	if err != nil {
		t.Fatal(err)
	}

	s := fastFCT(SchemeContra)
	s.TraceLevel = "decisions"
	var prev []byte
	for i := 0; i < 2; i++ {
		res, err := Run(s)
		if err != nil {
			t.Fatal(err)
		}
		if res.Trace == nil {
			t.Fatal("decisions run recorded no trace")
		}
		if res.MeanFCT != plain.MeanFCT || res.Completed != plain.Completed ||
			res.QueueDrops != plain.QueueDrops {
			t.Fatalf("tracing perturbed the run: traced mean=%v done=%d drops=%v, plain mean=%v done=%d drops=%v",
				res.MeanFCT, res.Completed, res.QueueDrops,
				plain.MeanFCT, plain.Completed, plain.QueueDrops)
		}
		var buf bytes.Buffer
		if err := res.Trace.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		if buf.Len() == 0 {
			t.Fatal("empty trace JSONL")
		}
		if prev != nil && !bytes.Equal(prev, buf.Bytes()) {
			t.Fatal("same seed, different trace JSONL")
		}
		prev = buf.Bytes()
		if res.TraceFlows == 0 || res.TraceDecisions == 0 {
			t.Fatalf("trace totals empty: flows=%d decisions=%d", res.TraceFlows, res.TraceDecisions)
		}
	}
}

// TestFlowsLevelRecordsSummariesOnly checks the cheaper level: flow
// summaries with paths and FCTs, but no decision stream.
func TestFlowsLevelRecordsSummariesOnly(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	s := fastFCT(SchemeContra)
	s.TraceLevel = "flows"
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil || res.TraceFlows == 0 {
		t.Fatalf("flows level recorded nothing: %+v", res)
	}
	if res.TraceDecisions != 0 {
		t.Fatalf("flows level must not record decisions, got %d", res.TraceDecisions)
	}
	done := 0
	for _, ft := range res.Trace.Flows() {
		if ft.FctNs > 0 {
			done++
			if len(ft.Path) == 0 || ft.Hops == 0 {
				t.Fatalf("completed flow %d has no path: %+v", ft.ID, ft)
			}
		}
	}
	if int64(done) != res.Completed {
		t.Fatalf("trace saw %d completions, result says %d", done, res.Completed)
	}
}

// TestClassStatsAttribution checks the per-class FCT block: every
// completion lands in exactly one class, and the fairness index is a
// valid Jain value.
func TestClassStatsAttribution(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	s := fastFCT(SchemeContra)
	s.ClassStats = true
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	c := res.Classes
	if c == nil {
		t.Fatal("class_stats on but Classes nil")
	}
	if c.ElephantBytes != 1_000_000 {
		t.Fatalf("default elephant threshold = %d, want 1MB", c.ElephantBytes)
	}
	if c.Mice.Flows+c.Elephants.Flows != res.Completed {
		t.Fatalf("classes cover %d flows, result completed %d",
			c.Mice.Flows+c.Elephants.Flows, res.Completed)
	}
	if c.Jain <= 0 || c.Jain > 1 {
		t.Fatalf("jain = %v out of (0, 1]", c.Jain)
	}
	if len(c.Cohorts) != 1 || c.Cohorts[0].Cohort != 0 {
		t.Fatalf("base workload should be a single cohort 0: %+v", c.Cohorts)
	}
	// Without class_stats the block stays absent.
	plain, err := Run(fastFCT(SchemeContra))
	if err != nil {
		t.Fatal(err)
	}
	if plain.Classes != nil {
		t.Fatal("Classes set without class_stats")
	}
}

// TestCounterfactualTopKDeterministic runs the replay twice on a
// scenario busy enough to have >= 10 divergent completed flows and
// requires identical reports.
func TestCounterfactualTopKDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	s := fastFCT(SchemeContra)
	s.Workload.Load = 0.5
	var prev *CounterfactualReport
	for i := 0; i < 2; i++ {
		rep, baseRes, err := Counterfactual(s, CounterfactualConfig{TopK: 10})
		if err != nil {
			t.Fatal(err)
		}
		if baseRes == nil || baseRes.Trace == nil {
			t.Fatal("counterfactual dropped the base result/trace")
		}
		if rep.Mode != trace.ModeRunnerUp {
			t.Fatalf("mode = %q", rep.Mode)
		}
		if len(rep.Flows) < 10 {
			t.Fatalf("pinned %d flows, want >= 10 (candidates %d, divergent %d)",
				len(rep.Flows), rep.Candidates, rep.BaseDivergent)
		}
		for _, f := range rep.Flows {
			if f.BaseFctNs <= 0 || f.Divergent == 0 {
				t.Fatalf("bad candidate: %+v", f)
			}
		}
		if prev != nil && !reflect.DeepEqual(prev, rep) {
			t.Fatalf("same seed, different counterfactual report:\n%+v\n%+v", prev, rep)
		}
		prev = rep
	}
}

// TestCounterfactualHulaMode replays the same workload under HULA and
// lines flow IDs up across schemes.
func TestCounterfactualHulaMode(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	s := fastFCT(SchemeContra)
	rep, _, err := Counterfactual(s, CounterfactualConfig{TopK: 5, Mode: "hula"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Flows) == 0 {
		t.Fatal("hula replay pinned no flows")
	}
	completedAlt := 0
	for _, f := range rep.Flows {
		if f.AltFctNs > 0 {
			completedAlt++
		}
	}
	if completedAlt == 0 {
		t.Fatal("no pinned flow completed under hula; flow IDs are misaligned across schemes")
	}
}

// TestCounterfactualRejectsInvalid covers the guard rails.
func TestCounterfactualRejectsInvalid(t *testing.T) {
	s := fastFCT(SchemeHula)
	if _, _, err := Counterfactual(s, CounterfactualConfig{}); err == nil {
		t.Fatal("accepted a non-contra base scheme")
	}
	s = fastFCT(SchemeContra)
	s.Workload = Workload{Kind: WorkloadCBR}
	if _, _, err := Counterfactual(s, CounterfactualConfig{}); err == nil {
		t.Fatal("accepted a CBR workload")
	}
	s = fastFCT(SchemeContra)
	if _, _, err := Counterfactual(s, CounterfactualConfig{Mode: "bogus"}); err == nil {
		t.Fatal("accepted a bogus mode")
	}
}

// TestOverridesRequireContra: pinning is a Contra-only mechanism.
func TestOverridesRequireContra(t *testing.T) {
	s := fastFCT(SchemeHula)
	s.Overrides = trace.NewOverrides(trace.ModeRunnerUp, []uint64{1})
	if err := s.Validate(); err == nil {
		t.Fatal("overrides accepted on a non-contra scheme")
	}
}

// TestResultStringIncludesP95 pins the satellite fix: the human
// rendering reports the p95 tail alongside mean and p99.
func TestResultStringIncludesP95(t *testing.T) {
	r := &Result{Scheme: SchemeContra, Dist: "cache", MeanFCT: 0.001, P95FCT: 0.004, P99FCT: 0.009}
	out := r.String()
	if !strings.Contains(out, "p95=4.000ms") {
		t.Fatalf("Result.String misses p95: %q", out)
	}
}
