package scenario

import (
	"fmt"
	"sort"

	"contra/internal/trace"
)

// CounterfactualConfig parameterizes a what-if replay.
type CounterfactualConfig struct {
	// TopK bounds how many divergent flows are pinned (default 10).
	// Flows are ranked by size descending (ties by id ascending), so
	// the replay answers the question for the flows that move the
	// most bytes.
	TopK int
	// Mode is the replacement choice: trace.ModeRunnerUp (default),
	// trace.ModeECMP, or "hula" — which re-runs the same scenario
	// under the HULA scheme instead of pinning (workload generation is
	// scheme-independent, so flow IDs line up across the two runs).
	Mode string
}

// FlowDelta is one pinned flow's outcome: its FCT under the policy's
// choices versus under the counterfactual.
type FlowDelta struct {
	Flow      uint64  `json:"flow"`
	Src       string  `json:"src"`
	Dst       string  `json:"dst"`
	SizeBytes int64   `json:"size_bytes"`
	Divergent int64   `json:"divergent"` // divergence points in the base run
	BaseFctNs int64   `json:"base_fct_ns"`
	AltFctNs  int64   `json:"alt_fct_ns"` // -1 when the flow never completed in the replay
	DeltaNs   int64   `json:"delta_ns"`   // alt - base; 0 when alt is incomplete
	DeltaPct  float64 `json:"delta_pct"`  // 100 * delta / base
}

// CounterfactualReport is the outcome of a replay: per-flow ΔFCT for
// the pinned flows, ranked as they were selected.
type CounterfactualReport struct {
	Mode          string      `json:"mode"`
	TopK          int         `json:"top_k"`
	BaseDecisions int64       `json:"base_decisions"`
	BaseDivergent int64       `json:"base_divergent"`
	Candidates    int         `json:"candidates"` // completed flows with >=1 divergence
	Flows         []FlowDelta `json:"flows"`
}

// Counterfactual answers "what did the policy's choices buy these
// flows?": it runs the scenario once with decision tracing to find the
// flows whose forwarding decisions had a live alternative, then
// re-runs it with the top-k of them pinned to that alternative (or
// under HULA outright) and reports per-flow ΔFCT. Both runs are
// deterministic, so the report is a pure function of the scenario.
// The base Result (with its trace recorder attached) is returned for
// callers that also want to emit the trace.
func Counterfactual(s Scenario, cfg CounterfactualConfig) (*CounterfactualReport, *Result, error) {
	if s.Scheme != "" && s.Scheme != SchemeContra {
		return nil, nil, fmt.Errorf("counterfactual: base scenario must run the contra scheme, got %q", s.Scheme)
	}
	if s.Workload.Kind == WorkloadCBR {
		return nil, nil, fmt.Errorf("counterfactual: needs an fct workload (CBR flows have no FCT)")
	}
	if cfg.TopK <= 0 {
		cfg.TopK = 10
	}
	mode := cfg.Mode
	if mode != "hula" {
		var err error
		if mode, err = trace.ParseMode(mode); err != nil {
			return nil, nil, err
		}
	}

	base := s
	base.TraceLevel = trace.Decisions.String()
	base.Overrides = nil
	baseRes, err := Run(base)
	if err != nil {
		return nil, nil, err
	}
	rec := baseRes.Trace

	// Candidates: completed flows with at least one divergence point,
	// largest first. Under "hula" every completed flow is a candidate —
	// the whole routing system changes, not just the divergent choices.
	var cands []*trace.FlowTrace
	for _, ft := range rec.Flows() {
		if ft.FctNs <= 0 {
			continue
		}
		if mode != "hula" && ft.Divergent == 0 {
			continue
		}
		cands = append(cands, ft)
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].Size != cands[j].Size {
			return cands[i].Size > cands[j].Size
		}
		return cands[i].ID < cands[j].ID
	})

	rep := &CounterfactualReport{Mode: mode, TopK: cfg.TopK, Candidates: len(cands)}
	_, rep.BaseDecisions, rep.BaseDivergent = rec.Totals()
	if len(cands) > cfg.TopK {
		cands = cands[:cfg.TopK]
	}
	if len(cands) == 0 {
		return rep, baseRes, nil
	}

	alt := s
	alt.TraceLevel = trace.Flows.String() // need per-flow FCT, not decisions
	if mode == "hula" {
		alt.Scheme = SchemeHula
	} else {
		ids := make([]uint64, len(cands))
		for i, ft := range cands {
			ids[i] = ft.ID
		}
		alt.Overrides = trace.NewOverrides(mode, ids)
	}
	altRes, err := Run(alt)
	if err != nil {
		return nil, nil, err
	}
	altRec := altRes.Trace

	for _, ft := range cands {
		d := FlowDelta{
			Flow: ft.ID, Src: ft.Src, Dst: ft.Dst,
			SizeBytes: ft.Size, Divergent: ft.Divergent,
			BaseFctNs: ft.FctNs, AltFctNs: -1,
		}
		if aft := altRec.Flow(ft.ID); aft != nil && aft.FctNs > 0 {
			d.AltFctNs = aft.FctNs
			d.DeltaNs = aft.FctNs - ft.FctNs
			d.DeltaPct = 100 * float64(d.DeltaNs) / float64(ft.FctNs)
		}
		rep.Flows = append(rep.Flows, d)
	}
	return rep, baseRes, nil
}
