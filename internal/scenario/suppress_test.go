package scenario

import (
	"math"
	"testing"
)

// TestSuppressionFCTMatchesUnsuppressed is the workload half of the
// suppression-correctness property: with epsilon 0, delta suppression
// may only skip re-advertisements that change nothing, so a steady
// fixed-seed FCT run must complete the same flows with an
// indistinguishable FCT distribution. Exact byte equality is not
// required — fewer probe frames on the wire shift queueing by
// nanoseconds — but the distribution must agree tightly. The property
// is stated over a steady script: suppression deliberately stretches
// the failure-detection horizons by the forced-refresh bound, so
// disruption scripts legitimately react on a different clock (chaos
// convergence under the knobs is covered separately below).
func TestSuppressionFCTMatchesUnsuppressed(t *testing.T) {
	base := Scenario{
		Name:     "suppress-equiv",
		TopoSpec: "fattree:4:2",
		Scheme:   SchemeContra,
		Seed:     3,
		Workload: Workload{Load: 0.3, DurationNs: 3_000_000, DrainNs: 100_000_000, MaxFlows: 200},
	}
	plain, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	sup := base
	sup.SuppressEps = 0
	sup.RefreshEvery = 4
	got, err := Run(sup)
	if err != nil {
		t.Fatal(err)
	}
	if got.Completed != plain.Completed || got.Flows != plain.Flows {
		t.Fatalf("completion diverged: suppressed %d/%d vs plain %d/%d",
			got.Completed, got.Flows, plain.Completed, plain.Flows)
	}
	within := func(name string, a, b, tol float64) {
		if b == 0 && a == 0 {
			return
		}
		if d := math.Abs(a-b) / math.Max(a, b); d > tol {
			t.Errorf("%s diverged by %.1f%%: suppressed %g vs plain %g", name, 100*d, a, b)
		}
	}
	within("mean FCT", got.MeanFCT, plain.MeanFCT, 0.10)
	within("p99 FCT", got.P99FCT, plain.P99FCT, 0.15)
}

// TestPackedCampaignKnobsConverge drives packing+suppression through
// the declarative layer with a whole-switch failure and reboot: the
// run must stay lossless at the flow level (everything completes after
// the fabric re-converges) and must report aggregation savings.
func TestPackedCampaignKnobsConverge(t *testing.T) {
	s := Scenario{
		Name:         "packed-chaos",
		TopoSpec:     "fattree:4:2",
		Scheme:       SchemeContra,
		Seed:         1,
		ProbePacking: true,
		SuppressEps:  0.02,
		RefreshEvery: 4,
		Workload:     Workload{Load: 0.3, DurationNs: 8_000_000, MaxFlows: 300},
		Events: []Event{
			{Kind: SwitchDown, AtNs: 5_000_000, Node: "auto"},
			{Kind: SwitchUp, AtNs: 9_000_000, Node: "auto"},
		},
	}
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != int64(res.Flows) {
		t.Fatalf("only %d/%d flows completed under packed chaos", res.Completed, res.Flows)
	}
	if res.ProbeTxSaved <= 0 {
		t.Errorf("probe_tx_saved = %g, want > 0", res.ProbeTxSaved)
	}
	if res.ProbeSuppressed <= 0 {
		t.Errorf("probe_suppressed = %g, want > 0", res.ProbeSuppressed)
	}
	if res.ProbeFrac() > 0.05 {
		t.Errorf("probe share %.2f%% with packing+suppression on, want well under 5%%", 100*res.ProbeFrac())
	}
}
