package scenario

import (
	"fmt"
	"sort"
	"time"

	"contra/internal/baseline"
	"contra/internal/chaos"
	"contra/internal/cliutil"
	"contra/internal/core"
	"contra/internal/dataplane"
	"contra/internal/flowtrace"
	"contra/internal/metrics"
	"contra/internal/policy"
	"contra/internal/sim"
	"contra/internal/stats"
	"contra/internal/topo"
	"contra/internal/trace"
	"contra/internal/workload"
)

// Result summarizes one scenario run. Every field that reaches JSON is
// a deterministic function of the Scenario, so a campaign's aggregated
// output is byte-identical however its runs are scheduled; wall-clock
// time and bulky artifacts (series, queue samples) stay out of the
// encoding.
type Result struct {
	Name    string  `json:"name,omitempty"`
	Topo    string  `json:"topo"`
	Scheme  Scheme  `json:"scheme"`
	Script  string  `json:"script,omitempty"`
	Dist    string  `json:"dist,omitempty"`
	Pattern string  `json:"pattern,omitempty"`
	Load    float64 `json:"load,omitempty"`
	RateBps float64 `json:"rate_bps,omitempty"`
	Seed    int64   `json:"seed"`

	Flows     int   `json:"flows"`
	Completed int64 `json:"completed"`

	MeanFCT float64 `json:"mean_fct,omitempty"` // seconds
	P50FCT  float64 `json:"p50_fct,omitempty"`
	// P95FCT comes from the O(1)-memory P² streaming tracker
	// (stats.Quantiles), deterministic for a given scenario; p50/p99
	// still read the exact retained Sample to keep historical values
	// byte-stable. The tracker follows all three so the Sample can be
	// dropped from this path wholesale once that compatibility window
	// closes.
	P95FCT float64 `json:"p95_fct,omitempty"`
	P99FCT float64 `json:"p99_fct,omitempty"`

	FabricBytes   float64 `json:"fabric_bytes"`
	DataBytes     float64 `json:"data_bytes"`
	AckBytes      float64 `json:"ack_bytes"`
	ProbeBytes    float64 `json:"probe_bytes"`
	TagBytes      float64 `json:"tag_bytes"`
	QueueDrops    float64 `json:"queue_drops"`
	LinkDownDrops float64 `json:"linkdown_drops"`
	LoopedFrac    float64 `json:"looped_frac,omitempty"`
	LoopBreaks    float64 `json:"loop_breaks,omitempty"`

	// Probe aggregation (probe_packing / suppress_eps / refresh_every):
	// on-wire probe transmissions avoided by packing and per-origin
	// re-advertisements skipped by delta suppression. Zero (and absent
	// from the JSON) when the knobs are off, so historical campaign
	// output is byte-identical. ProbeAggOn records that a knob was
	// enabled, so downstream aggregation can tell a genuine zero
	// saving apart from knobs-off.
	ProbeAggOn      bool    `json:"probe_agg_on,omitempty"`
	ProbeTxSaved    float64 `json:"probe_tx_saved,omitempty"`
	ProbeSuppressed float64 `json:"probe_suppressed,omitempty"`

	// Time-series telemetry (metrics_interval_ns): MetricsOn records
	// that the sampler ran (so downstream views can tell "no samples"
	// from "metrics off"), MetricsSamples counts retained ticks. Both
	// are absent from the JSON when metrics are off, keeping historical
	// campaign output byte-identical; the recorder itself is an
	// artifact (Metrics below, excluded from JSON).
	MetricsOn      bool `json:"metrics_on,omitempty"`
	MetricsSamples int  `json:"metrics_samples,omitempty"`

	// Decision tracing (trace_level): the summary counts ride the
	// deterministic encoding — absent when tracing is off, so
	// historical campaign output stays byte-identical. The recorder
	// itself is an artifact (Trace below, excluded from JSON).
	TraceLevel     string `json:"trace_level,omitempty"`
	TraceFlows     int64  `json:"trace_flows,omitempty"`
	TraceDecisions int64  `json:"trace_decisions,omitempty"`
	TraceDivergent int64  `json:"trace_divergent,omitempty"`

	// Per-class FCT attribution (class_stats): elephant vs. mice
	// quantiles, per-cohort stats, Jain fairness. Nil when off.
	Classes *ClassStats `json:"classes,omitempty"`

	// Failover analysis (BinNs > 0 and a runtime link_down/degrade
	// event): throughput before the first event, the deepest dip after
	// it, and how long delivered throughput stayed depressed. For
	// scripts with several disruptions these top-level fields keep
	// describing the first one (the historical single-failure report)
	// and Recoveries carries one window per disruption instant.
	BaselineBps float64          `json:"baseline_bps,omitempty"`
	MinBps      float64          `json:"min_bps,omitempty"`
	RecoveryNs  int64            `json:"recovery_ns,omitempty"`
	FailAtNs    int64            `json:"fail_at_ns,omitempty"`
	BinNs       int64            `json:"bin_ns,omitempty"` // Series bin width
	Recoveries  []RecoveryWindow `json:"recoveries,omitempty"`

	// Chaos measurements (switch failures, probe loss, policy swaps).
	// NodeDownDrops counts packets lost to whole-switch failures;
	// ProbeLossSeen/Dropped count probes offered to and discarded by
	// loss-injected channels (their ratio is ProbeLossFrac); Swaps
	// carries one convergence window per policy_swap event.
	NodeDownDrops    float64            `json:"nodedown_drops,omitempty"`
	ProbeLossSeen    int64              `json:"probe_loss_seen,omitempty"`
	ProbeLossDropped int64              `json:"probe_loss_dropped,omitempty"`
	ProbeLossFrac    float64            `json:"probe_loss_frac,omitempty"`
	Swaps            []chaos.SwapWindow `json:"swaps,omitempty"`

	SimulatedNs int64 `json:"simulated_ns"`

	// Artifacts excluded from the deterministic encoding.
	WallTime  time.Duration     `json:"-"`
	Series    []stats.Point     `json:"-"` // bin start ns -> delivered bits/sec
	QueueMSS  *stats.Sample     `json:"-"`
	Trace     *trace.Recorder   `json:"-"` // set when TraceLevel is active
	Metrics   *metrics.Recorder `json:"-"` // set when MetricsIntervalNs > 0
	FlowTrace *flowtrace.Trace  `json:"-"` // set when RecordFlows is on
}

// ProbeFrac returns probe bytes as a fraction of all fabric bytes.
func (r *Result) ProbeFrac() float64 {
	if r.FabricBytes <= 0 {
		return 0
	}
	return r.ProbeBytes / r.FabricBytes
}

// SwapConvergenceNs summarizes the policy-swap outcome for flat
// reports: no swaps (0, false); at least one swap that never converged
// before the run ended (-1, true); otherwise the widest convergence
// window across the scenario's swaps (ns, true).
func (r *Result) SwapConvergenceNs() (int64, bool) {
	if len(r.Swaps) == 0 {
		return 0, false
	}
	var widest int64
	for _, w := range r.Swaps {
		if w.ConvergenceNs < 0 {
			return -1, true
		}
		if w.ConvergenceNs > widest {
			widest = w.ConvergenceNs
		}
	}
	return widest, true
}

// String renders one result row.
func (r *Result) String() string {
	return fmt.Sprintf("%-7s load=%.0f%% %-9s flows=%d done=%d meanFCT=%.3fms p95=%.3fms p99=%.3fms probes=%.2f%% drops=%.0f",
		r.Scheme, r.Load*100, r.Dist, r.Flows, r.Completed,
		r.MeanFCT*1e3, r.P95FCT*1e3, r.P99FCT*1e3, 100*r.ProbeFrac(), r.QueueDrops)
}

// FabricCapacity sums edge-uplink bandwidth (edge/leaf to the rest of
// the fabric), the reference the paper's load fractions normalize
// against. Down links still count: the asymmetric experiments keep the
// symmetric load reference ("75% of capacity remains").
func FabricCapacity(g *topo.Graph) float64 {
	var total float64
	for _, l := range g.Links() {
		a, b := g.Node(l.A), g.Node(l.B)
		if a.Kind != topo.Switch || b.Kind != topo.Switch {
			continue
		}
		if a.Role == topo.RoleEdge || b.Role == topo.RoleEdge {
			total += l.Bandwidth
		}
	}
	if total == 0 {
		// Non-hierarchical (WAN) topology: use a single link's worth,
		// scaled by sender count elsewhere.
		for _, l := range g.Links() {
			if g.Node(l.A).Kind == topo.Switch && g.Node(l.B).Kind == topo.Switch {
				total = l.Bandwidth
				break
			}
		}
	}
	return total
}

// AutoFailLink picks the first edge-fabric link: the default target of
// "auto" link events and the link the paper's Figure 14 fails.
func AutoFailLink(g *topo.Graph) (topo.LinkID, error) {
	for _, l := range g.Links() {
		if g.Node(l.A).Kind == topo.Switch && g.Node(l.B).Kind == topo.Switch {
			if g.Node(l.A).Role == topo.RoleEdge || g.Node(l.B).Role == topo.RoleEdge {
				return l.ID, nil
			}
		}
	}
	return -1, fmt.Errorf("scenario: no fabric link to fail in %s", g.Name)
}

// AutoFailSwitch picks the default target of "auto" switch events: the
// first core switch (whole-spine failure, the classic node-failure
// experiment), falling back to the first aggregation switch and then
// any switch.
func AutoFailSwitch(g *topo.Graph) (topo.NodeID, error) {
	var firstAgg, firstAny topo.NodeID = -1, -1
	for _, id := range g.Switches() {
		switch g.Node(id).Role {
		case topo.RoleCore:
			return id, nil
		case topo.RoleAgg:
			if firstAgg < 0 {
				firstAgg = id
			}
		}
		if firstAny < 0 {
			firstAny = id
		}
	}
	if firstAgg >= 0 {
		return firstAgg, nil
	}
	if firstAny >= 0 {
		return firstAny, nil
	}
	return -1, fmt.Errorf("scenario: no switch to fail in %s", g.Name)
}

// findSwitch resolves a switch name ("auto"/empty via AutoFailSwitch).
func findSwitch(g *topo.Graph, name string) (topo.NodeID, error) {
	if name == "" || name == "auto" {
		return AutoFailSwitch(g)
	}
	id, ok := g.NodeByName(name)
	if !ok {
		return -1, fmt.Errorf("scenario: no node %q in %s", name, g.Name)
	}
	if g.Node(id).Kind != topo.Switch {
		return -1, fmt.Errorf("scenario: node %q in %s is a host, not a switch", name, g.Name)
	}
	return id, nil
}

// fabricLinksOf lists the switch-switch links attached to a switch
// (the per-switch probe_loss target set).
func fabricLinksOf(g *topo.Graph, id topo.NodeID) []topo.LinkID {
	var out []topo.LinkID
	for _, p := range g.Ports(id) {
		if g.Node(p.Peer).Kind == topo.Switch {
			out = append(out, p.Link)
		}
	}
	return out
}

// Deploy installs a scheme's routers on a network, returning the
// Contra fleet handle when applicable (diagnostics and runtime policy
// swaps; fleet.Routers() exposes the per-switch routers). A non-nil
// rec attaches decision tracing to the routers that capture decisions
// (contra and hula); a non-nil ovr pins flows for counterfactual
// replay (contra only — Validate enforces that); a non-nil mrec
// registers per-router churn accumulators with the telemetry recorder
// (contra and hula — static-table schemes have no probe tables to
// churn).
func Deploy(n *sim.Network, scheme Scheme, g *topo.Graph, policySrc string, opts core.Options, rec *trace.Recorder, ovr *trace.Overrides, mrec *metrics.Recorder) (*dataplane.Fleet, *core.Compiled, error) {
	switch scheme {
	case SchemeContra:
		pol, err := policy.Parse(policySrc, policy.ParseOptions{Symbols: g.SortedNames()})
		if err != nil {
			return nil, nil, err
		}
		comp, err := core.Compile(g, pol, opts)
		if err != nil {
			return nil, nil, err
		}
		fleet := dataplane.DeployFleet(n, comp)
		if rec != nil {
			fleet.SetTracer(rec)
		}
		if ovr != nil {
			fleet.SetOverrides(ovr)
		}
		if mrec != nil {
			fleet.SetMetrics(mrec)
		}
		return fleet, comp, nil
	case SchemeECMP:
		baseline.DeployECMP(n)
	case SchemeSP:
		baseline.DeploySP(n)
	case SchemeHula:
		routers := baseline.DeployHula(n, baseline.HulaConfig{
			ProbePeriodNs:    opts.ProbePeriodNs,
			FlowletTimeoutNs: opts.FlowletTimeoutNs,
			ProbePacking:     opts.ProbePacking,
			SuppressEps:      opts.SuppressEps,
			RefreshEvery:     opts.RefreshEvery,
		})
		if rec != nil {
			for _, r := range routers {
				r.SetTracer(rec)
			}
		}
		if mrec != nil {
			// Topology order for clarity; the recorder sorts by name.
			for _, id := range g.Switches() {
				routers[id].SetChurn(mrec.RegisterRouter(g.Node(id).Name))
			}
		}
	case SchemeSpain:
		baseline.DeploySpain(n, baseline.SpainConfig{})
	default:
		return nil, nil, fmt.Errorf("scenario: unknown scheme %q", scheme)
	}
	return nil, nil, nil
}

// resolveTopo materializes the scenario's topology. The caller owns
// the returned graph: it is cloned whenever pre-fail events would
// otherwise mutate a graph the scenario was handed.
func (s *Scenario) resolveTopo() (*topo.Graph, error) {
	g := s.Topo
	if g == nil {
		var err error
		g, err = cliutil.BuildTopology(s.TopoSpec)
		if err != nil {
			return nil, err
		}
		return g, nil
	}
	for _, ev := range s.Events {
		if ev.Kind == LinkDown && ev.AtNs <= 0 {
			return g.Clone(), nil
		}
	}
	return g, nil
}

// resolvedEvents splits the script into topology-level pre-fails,
// runtime link events for the sim injector, traffic surges, and the
// chaos plan (switch failures, probe loss, policy swaps) that
// chaos.Arm schedules.
func (s *Scenario) resolvedEvents(g *topo.Graph) (pre []topo.LinkID, net []sim.NetworkEvent, surges []Event, plan chaos.Plan, err error) {
	plan.Seed = s.Seed
	for _, ev := range s.Events {
		switch ev.Kind {
		case Surge:
			surges = append(surges, ev)
			continue
		case SwitchDown, SwitchUp:
			var node topo.NodeID
			node, err = findSwitch(g, ev.Node)
			if err != nil {
				return nil, nil, nil, plan, err
			}
			plan.Nodes = append(plan.Nodes, chaos.NodeEvent{
				At: ev.AtNs, Node: node, Up: ev.Kind == SwitchUp,
			})
			continue
		case PolicySwap:
			plan.Swaps = append(plan.Swaps, chaos.SwapEvent{At: ev.AtNs, Source: ev.NewPolicy})
			continue
		case ProbeLoss:
			var links []topo.LinkID
			if ev.Node != "" {
				var node topo.NodeID
				node, err = findSwitch(g, ev.Node)
				if err != nil {
					return nil, nil, nil, plan, err
				}
				links = fabricLinksOf(g, node)
				if len(links) == 0 {
					err = fmt.Errorf("scenario %q: switch %q has no fabric links for probe_loss", s.Name, ev.Node)
					return nil, nil, nil, plan, err
				}
			} else {
				var id topo.LinkID
				if ev.Link == "" || ev.Link == "auto" {
					id, err = AutoFailLink(g)
				} else {
					id, err = cliutil.FindLink(g, ev.Link)
				}
				if err != nil {
					return nil, nil, nil, plan, err
				}
				links = []topo.LinkID{id}
			}
			plan.Loss = append(plan.Loss, chaos.LossEvent{At: ev.AtNs, Links: links, Rate: ev.Rate})
			continue
		case LinkDown, LinkUp, Degrade:
		}
		var id topo.LinkID
		if ev.Link == "" || ev.Link == "auto" {
			id, err = AutoFailLink(g)
		} else {
			id, err = cliutil.FindLink(g, ev.Link)
		}
		if err != nil {
			return nil, nil, nil, plan, err
		}
		if ev.Kind == LinkDown && ev.AtNs <= 0 {
			pre = append(pre, id)
			continue
		}
		ne := sim.NetworkEvent{At: ev.AtNs, Link: id}
		switch ev.Kind {
		case LinkDown:
			ne.Kind = sim.EvLinkDown
		case LinkUp:
			ne.Kind = sim.EvLinkUp
		case Degrade:
			ne.Kind = sim.EvLinkScale
			ne.Scale = ev.Scale
		}
		net = append(net, ne)
	}
	return pre, net, surges, plan, nil
}

// Run executes a scenario and collects its Result. Execution is
// deterministic: the same scenario (including seed) produces an
// identical Result on every run, serial or inside a parallel campaign.
func Run(s Scenario) (*Result, error) {
	// Validate before fill: fill expands ramp sugar into surges, so a
	// malformed ramp (e.g. negative steps) must be rejected while it
	// is still visible — otherwise a Go-constructed scenario would
	// silently lose the event instead of failing like a decoded spec.
	if err := s.Validate(); err != nil {
		return nil, err
	}
	s.fill()
	if err := s.Validate(); err != nil {
		return nil, err
	}
	wallStart := time.Now()
	g, err := s.resolveTopo()
	if err != nil {
		return nil, err
	}
	pre, netEvents, surges, plan, err := s.resolvedEvents(g)
	if err != nil {
		return nil, err
	}
	for _, id := range pre {
		g.SetDown(id, true)
	}

	// A trace workload resolves and loads its recording up front: the
	// meta line decides the engine-seed offset, measurement deadline,
	// and (for CBR recordings) the default bin width before any
	// simulation state exists.
	var replay *flowtrace.Trace
	if s.Workload.Kind == WorkloadTrace {
		replay, err = loadReplay(&s, g)
		if err != nil {
			return nil, err
		}
		if replay.Meta.Kind == flowtrace.KindCBR && s.BinNs == 0 {
			s.BinNs = 500_000
		}
	}

	// Engine seeds are offset per workload kind to stay bit-compatible
	// with the harness this engine replaced (RunFCT used seed+1,
	// RunFailover seed+5), keeping historical runs reproducible; a
	// replay adopts its recording's offset so the two runs' event
	// streams align exactly.
	engSeed := s.Seed + 1
	if s.Workload.Kind == WorkloadCBR || (replay != nil && replay.Meta.Kind == flowtrace.KindCBR) {
		engSeed = s.Seed + 5
	}
	e := sim.NewEngine(engSeed)
	n := sim.NewNetwork(e, g, sim.Config{TrackVisited: s.TrackLoops})
	// TraceLevel was validated above; a non-off level attaches the
	// recorder to both the network (flow summaries) and, via Deploy,
	// the decision-capturing routers.
	var rec *trace.Recorder
	if lvl, _ := trace.ParseLevel(s.TraceLevel); lvl != trace.Off {
		rec = trace.NewRecorder(lvl)
		n.Trace = rec
	}
	// A positive metrics interval attaches the telemetry recorder (link
	// and drop registration here, per-router churn via Deploy) and
	// schedules the sampler timer. Off (0) schedules nothing and leaves
	// every hook nil, so the run is byte-identical to the seed.
	var mrec *metrics.Recorder
	if s.MetricsIntervalNs > 0 {
		mrec = metrics.NewRecorder(s.MetricsIntervalNs)
		n.AttachMetrics(mrec)
	}
	fleet, _, err := Deploy(n, s.Scheme, g, s.Policy, core.Options{
		ProbePeriodNs:        s.ProbePeriodNs,
		FlowletTimeoutNs:     s.FlowletTimeoutNs,
		FailureDetectPeriods: s.FailureDetectPeriods,
		ProbePacking:         s.ProbePacking,
		SuppressEps:          s.SuppressEps,
		RefreshEvery:         s.RefreshEvery,
	}, rec, s.Overrides, mrec)
	if err != nil {
		return nil, err
	}
	if mrec != nil {
		e.Every(0, s.MetricsIntervalNs, n.SampleMetrics)
	}
	if s.BinNs > 0 {
		n.RxSeries = stats.NewTimeseries(s.BinNs)
	}
	n.Start()
	// Arm the chaos plan (switch failures, probe loss, policy swaps)
	// before any simulated time passes, so its events land on the
	// calendar queue in script order. Scenarios without chaos events
	// schedule nothing here and replay their historical event streams
	// byte-identically.
	chaosRT, err := chaos.Arm(n, fleet, plan, s.ProbePeriodNs)
	if err != nil {
		return nil, err
	}

	warmup := 12 * s.ProbePeriodNs
	// Result.Topo carries the campaign's axis value (the spec string)
	// when there is one, so every downstream view — CSV rows, failed
	// outcomes, seed aggregation of either report JSON or shard JSONL —
	// keys topologies identically; graphs handed in as Go values fall
	// back to the graph's own name.
	topoName := s.TopoSpec
	if topoName == "" {
		topoName = g.Name
	}
	res := &Result{
		Name:   s.Name,
		Topo:   topoName,
		Scheme: s.Scheme,
		Script: s.Script,
		Seed:   s.Seed,
	}
	switch s.Workload.Kind {
	case WorkloadCBR:
		err = runCBR(&s, e, n, g, warmup, netEvents, res)
	case WorkloadCohorts:
		err = runCohorts(&s, e, n, g, warmup, netEvents, res)
	case WorkloadTrace:
		err = runReplay(&s, e, n, g, warmup, netEvents, replay, res)
	default:
		err = runFCT(&s, e, n, g, warmup, netEvents, surges, res)
	}
	if err != nil {
		return nil, err
	}

	n.FoldCounters()
	res.FabricBytes = n.FabricBytes()
	res.DataBytes = n.Counters.Get("bytes_data")
	res.AckBytes = n.Counters.Get("bytes_ack")
	res.ProbeBytes = n.Counters.Get("bytes_probe")
	res.TagBytes = n.Counters.Get("bytes_tag_overhead")
	res.QueueDrops = n.Counters.Get("drop_queue")
	res.LinkDownDrops = n.Counters.Get("drop_linkdown")
	res.NodeDownDrops = n.Counters.Get("drop_nodedown")
	res.LoopBreaks = n.Counters.Get("loop_break")
	res.ProbeAggOn = s.ProbePacking || s.SuppressEps > 0 || s.RefreshEvery > 0
	res.ProbeTxSaved = n.Counters.Get("probe_tx_saved")
	res.ProbeSuppressed = n.Counters.Get("probe_suppressed")
	if chaosRT != nil {
		rep := chaosRT.Report()
		res.Swaps = rep.Swaps
		res.ProbeLossSeen = rep.ProbeLossSeen
		res.ProbeLossDropped = rep.ProbeLossDropped
		res.ProbeLossFrac = rep.ProbeLossFrac()
	}
	if rec != nil {
		res.TraceLevel = rec.Level().String()
		res.TraceFlows, res.TraceDecisions, res.TraceDivergent = rec.Totals()
		res.Trace = rec
	}
	if mrec != nil {
		res.MetricsOn = true
		res.MetricsSamples = mrec.Samples()
		res.Metrics = mrec
	}
	if n.DataPkts > 0 {
		res.LoopedFrac = float64(n.LoopedPkts) / float64(n.DataPkts)
	}
	res.QueueMSS = n.QueueMSS
	res.SimulatedNs = e.Now()
	if n.RxSeries != nil {
		res.BinNs = s.BinNs
		pts := n.RxSeries.Points()
		res.Series = make([]stats.Point, len(pts))
		for i, p := range pts {
			res.Series[i] = stats.Point{T: p.T, V: n.RxSeries.Rate(p.V)}
		}
		analyzeRecovery(&s, res)
	}
	res.WallTime = time.Since(wallStart)
	return res, nil
}

// runFCT offers the Poisson workload (plus any surges), drains, and
// fills the FCT statistics. Events inject before the warmup run so a
// script can disrupt the control plane itself.
func runFCT(s *Scenario, e *sim.Engine, n *sim.Network, g *topo.Graph, warmup int64, netEvents []sim.NetworkEvent, surges []Event, res *Result) error {
	n.Inject(netEvents...)
	e.Run(warmup)
	w := s.Workload
	capacity := w.CapacityBps
	if capacity == 0 {
		capacity = FabricCapacity(g)
	}
	senders, receivers := workload.SplitHosts(g)
	pairs := s.PairIDs
	if len(pairs) == 0 && len(w.Pairs) > 0 {
		for _, p := range w.Pairs {
			a, ok := g.NodeByName(p[0])
			if !ok {
				return fmt.Errorf("scenario %q: unknown pair host %q", s.Name, p[0])
			}
			b, ok := g.NodeByName(p[1])
			if !ok {
				return fmt.Errorf("scenario %q: unknown pair host %q", s.Name, p[1])
			}
			pairs = append(pairs, [2]topo.NodeID{a, b})
		}
	}
	dist := w.DistObj
	if dist == nil {
		dist = mustDist(w.Dist)
	}
	flows := workload.Generate(g, workload.Config{
		Dist: dist, Senders: senders, Receivers: receivers,
		Pairs:   pairs,
		Pattern: w.Pattern, IncastTargets: w.IncastTargets,
		Load: w.Load, CapacityBps: capacity,
		StartNs: warmup, DurationNs: w.DurationNs,
		Seed: s.Seed, MaxFlows: w.MaxFlows,
	})
	if len(flows) == 0 {
		return fmt.Errorf("scenario %q: workload produced no flows (load %.2f)", s.Name, w.Load)
	}
	deadline := warmup + w.DurationNs + w.DrainNs
	// Surge traffic rides on the same host sets with distinct flow-ID
	// ranges and a seed derived from the base seed and the surge index,
	// so adding a surge never perturbs the base arrival sequence.
	for i, ev := range surges {
		extra := workload.Generate(g, workload.Config{
			Dist: dist, Senders: senders, Receivers: receivers,
			Pairs:   pairs,
			Pattern: w.Pattern, IncastTargets: w.IncastTargets,
			Load: ev.Load, CapacityBps: capacity,
			StartNs: ev.AtNs, DurationNs: ev.DurationNs,
			Seed: s.Seed + 101 + int64(i), MaxFlows: w.MaxFlows,
			FirstFlowID: uint64(i+1) << 32,
		})
		flows = append(flows, extra...)
		if end := ev.AtNs + ev.DurationNs + w.DrainNs; end > deadline {
			deadline = end
		}
	}
	var classes *classCollector
	if s.ClassStats {
		classes = newClassCollector(s.ElephantBytes)
		n.FlowDone = classes.add
	}
	n.StartFlows(flows)

	if s.SampleQueues {
		e.Every(warmup, 100_000, n.SampleQueues)
	}

	// Run until all flows complete or the drain budget expires; under
	// extreme load some flows stay incomplete and the FCT statistics
	// cover the completed ones, as in testbed practice.
	for e.Now() < deadline && n.CompletedFlows() < int64(len(flows)) {
		e.Run(e.Now() + 10_000_000)
	}

	res.Dist = dist.Name
	res.Pattern = w.Pattern
	res.Load = w.Load
	res.Flows = len(flows)
	res.Completed = n.CompletedFlows()
	res.MeanFCT = n.FCT.Mean()
	res.P50FCT = n.FCT.Quantile(0.5)
	res.P95FCT = n.FCTQuant.Quantile(0.95)
	res.P99FCT = n.FCT.Quantile(0.99)
	if classes != nil {
		res.Classes = classes.stats()
	}
	if s.RecordFlows {
		recordFlows(s, g, res, flows, flowtrace.Meta{
			Kind: flowtrace.KindFCT, Dist: dist.Name, Pattern: w.Pattern,
			Load: w.Load, DeadlineNs: deadline,
		}, func(f sim.FlowSpec) string {
			if co := f.ID >> 32; co > 0 {
				return fmt.Sprintf("surge%d", co)
			}
			return "base"
		})
	}
	return nil
}

// runCBR offers the Figure 14 constant-bit-rate workload: every sender
// streams to a receiver across the fabric until EndNs. Flow starts are
// scheduled before the event script — the ordering the legacy failover
// harness used — so historical seeds replay identically.
func runCBR(s *Scenario, e *sim.Engine, n *sim.Network, g *topo.Graph, warmup int64, netEvents []sim.NetworkEvent, res *Result) error {
	w := s.Workload
	senders, receivers := workload.SplitHosts(g)
	if len(senders) == 0 || len(receivers) == 0 {
		return fmt.Errorf("scenario %q: cbr workload needs hosts", s.Name)
	}
	per := w.RateBps / float64(len(senders))
	// Snap the per-flow packet gap to divide the measurement bin, so
	// bins hold an integral packet count: otherwise a slow beat between
	// the CBR period and the bin width shows up as phantom throughput
	// dips that drown the failure signal.
	pktBits := float64((sim.MSS + sim.FrameHeader) * 8)
	gapRaw := pktBits / per * 1e9
	divisions := int64(float64(s.BinNs)/gapRaw + 0.5)
	if divisions < 1 {
		divisions = 1
	}
	per = pktBits * float64(divisions) / float64(s.BinNs) * 1e9
	// Pair each sender with a receiver in a different part of the
	// fabric (offset by a quarter of the host set) so that every flow
	// crosses the core and a failed link actually carries traffic.
	var flows []sim.FlowSpec
	for i, src := range senders {
		dst := receivers[(i+len(receivers)/4+1)%len(receivers)]
		for tries := 0; g.HostEdge(src) == g.HostEdge(dst) && tries < len(receivers); tries++ {
			dst = receivers[(i+len(receivers)/4+1+tries)%len(receivers)]
		}
		flows = append(flows, sim.FlowSpec{
			ID: uint64(i + 1), Src: src, Dst: dst,
			RateBps: per, Start: warmup,
		})
	}
	n.StartFlows(flows)
	if s.SampleQueues {
		e.Every(warmup, 100_000, n.SampleQueues)
	}
	n.Inject(netEvents...)
	e.Run(w.EndNs)
	res.Flows = len(flows)
	res.RateBps = w.RateBps
	if s.RecordFlows {
		recordFlows(s, g, res, flows, flowtrace.Meta{
			Kind: flowtrace.KindCBR, RateBps: w.RateBps, EndNs: w.EndNs,
		}, func(sim.FlowSpec) string { return "cbr" })
	}
	return nil
}

// RecoveryWindow is the failover analysis of one disruption instant:
// the delivered-throughput baseline immediately before it, the deepest
// dip afterwards, and how long throughput stayed depressed. Disruptions
// scheduled at the same nanosecond (a multi-link failure) coalesce into
// one window.
type RecoveryWindow struct {
	Kind        EventKind `json:"kind"`
	AtNs        int64     `json:"at_ns"`
	BaselineBps float64   `json:"baseline_bps"`
	MinBps      float64   `json:"min_bps"`
	RecoveryNs  int64     `json:"recovery_ns"`
}

// disruptionSeverity orders coalescing: when several disruptions land
// on the same nanosecond, the merged window is labeled with the most
// severe kind — a whole-switch failure over a link failure over a
// degradation.
func disruptionSeverity(k EventKind) int {
	switch k {
	case SwitchDown:
		return 3
	case LinkDown:
		return 2
	case Degrade:
		return 1
	}
	return 0
}

// disruptions returns the runtime disruption instants in time order. A
// disruption is a switch_down, a link_down at AtNs > 0, or a degrade
// that actually shrinks bandwidth (0 < Scale < 1); switch_up, link_up
// and degrade-restores are recovery actions, not disruptions, so they
// bound the preceding window instead of opening one of their own.
//
// Overlapping disruptions merge by splitting the timeline: each
// disruption closes the previous window at its own instant and opens
// its own (analyzeRecovery bounds every window at the next disruption
// and anchors a nested disruption's baseline at the previous one), so
// a switch_down landing inside an open link_down window yields two
// windows — the link_down's, measured up to the switch failure, and
// the switch_down's, measured against the already-degraded throughput
// delivered between the two events. Disruptions at the same nanosecond
// coalesce into one window labeled with the most severe kind.
func (s *Scenario) disruptions() []RecoveryWindow {
	var ds []RecoveryWindow
	for _, ev := range s.Events {
		if ev.AtNs <= 0 {
			continue
		}
		switch {
		case ev.Kind == LinkDown || ev.Kind == SwitchDown:
		case ev.Kind == Degrade && ev.Scale > 0 && ev.Scale < 1:
		default:
			continue
		}
		ds = append(ds, RecoveryWindow{Kind: ev.Kind, AtNs: ev.AtNs})
	}
	sort.SliceStable(ds, func(i, j int) bool { return ds[i].AtNs < ds[j].AtNs })
	out := ds[:0]
	for _, d := range ds {
		if len(out) > 0 && out[len(out)-1].AtNs == d.AtNs {
			if disruptionSeverity(d.Kind) > disruptionSeverity(out[len(out)-1].Kind) {
				out[len(out)-1].Kind = d.Kind
			}
			continue
		}
		out = append(out, d)
	}
	return out
}

// analyzeRecovery derives the failover metrics from the throughput
// series, one window per disruption instant: pre-event baseline,
// deepest post-event dip, and the time the series stayed depressed
// below the pre-event floor. Each window is bounded by the next
// disruption, so a script with several failures reports each on its
// own (ROADMAP: generalize the one-disruption-per-run assumption).
func analyzeRecovery(s *Scenario, res *Result) {
	wins := s.disruptions()
	if len(wins) == 0 {
		return
	}
	end := s.Workload.EndNs
	if end == 0 {
		end = res.SimulatedNs
	}
	for i := range wins {
		w := &wins[i]
		// Baseline: mean and floor of the bins in the 10ms before the
		// disruption. Residual measurement noise shows up in the
		// pre-failure floor, so "depressed" means below that floor,
		// not below the mean. For a disruption that follows another
		// within 10ms the baseline starts at the previous disruption,
		// so it reflects the throughput actually delivered just before
		// this event rather than mixing in healthy bins whose floor
		// would mask the new dip.
		lo := w.AtNs - 10_000_000
		if i > 0 && wins[i-1].AtNs > lo {
			lo = wins[i-1].AtNs
		}
		var base, cnt float64
		floor := -1.0
		for _, p := range res.Series {
			if p.T >= lo && p.T < w.AtNs-s.BinNs {
				base += p.V
				cnt++
				if floor < 0 || p.V < floor {
					floor = p.V
				}
			}
		}
		if cnt > 0 {
			base /= cnt
		}
		w.BaselineBps = base
		w.MinBps = base
		// The window ends at the next disruption or the last full bin.
		limit := end - s.BinNs
		if i+1 < len(wins) && wins[i+1].AtNs < limit {
			limit = wins[i+1].AtNs
		}
		// Recovery: the end of the last bin still depressed below 99%
		// of the pre-disruption floor. A dip that never crosses the
		// threshold recovered within one bin.
		lastLow := int64(-1)
		for _, p := range res.Series {
			if p.T < w.AtNs || p.T >= limit {
				continue
			}
			if p.V < w.MinBps {
				w.MinBps = p.V
			}
			if p.V < 0.99*floor {
				lastLow = p.T + s.BinNs
			}
		}
		switch {
		case base <= 0:
			w.RecoveryNs = -1
		case lastLow < 0:
			w.RecoveryNs = s.BinNs
		default:
			w.RecoveryNs = lastLow - w.AtNs
		}
	}
	res.Recoveries = wins
	// The historical top-level fields report the first disruption.
	res.FailAtNs = wins[0].AtNs
	res.BaselineBps = wins[0].BaselineBps
	res.MinBps = wins[0].MinBps
	res.RecoveryNs = wins[0].RecoveryNs
}

// mustDist resolves a distribution name, defaulting to web-search on
// the empty string; Validate vets spec files, so an unknown name here
// is a programming error.
func mustDist(name string) *workload.Distribution {
	if name == "" {
		return workload.WebSearch()
	}
	d, err := workload.ByName(name)
	if err != nil {
		panic(err)
	}
	return d
}
