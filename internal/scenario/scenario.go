// Package scenario is the declarative experiment layer: a Scenario
// value describes one complete simulation — topology, routing scheme
// and policy, offered workload, and a timed script of network events
// (failures, recoveries, capacity degradations, traffic surges) — and
// Run executes it deterministically on the packet-level simulator.
//
// Scenarios are plain data: construct them in Go, or decode them from
// the JSON spec format used by campaign files. The same engine backs
// the legacy exp.RunFCT / exp.RunFailover entry points and the
// contracamp campaign runner, so every experiment in the repo flows
// through one code path.
package scenario

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"os"

	"contra/internal/topo"
	"contra/internal/trace"
	"contra/internal/workload"
)

// Scheme names a routing system under test.
type Scheme string

// Supported schemes.
const (
	SchemeContra Scheme = "contra"
	SchemeECMP   Scheme = "ecmp"
	SchemeHula   Scheme = "hula"
	SchemeSpain  Scheme = "spain"
	SchemeSP     Scheme = "sp"
)

// Schemes lists every supported scheme (CLI help, campaign specs).
func Schemes() []Scheme {
	return []Scheme{SchemeContra, SchemeECMP, SchemeHula, SchemeSpain, SchemeSP}
}

// EventKind names a scripted scenario event.
type EventKind string

// Scenario event kinds.
const (
	// LinkDown fails a link at AtNs. An event with AtNs <= 0 pre-fails
	// the link in the topology itself, before routers deploy: baselines
	// that compute static tables offline (sp, spain) see it, which is
	// how the paper's "asymmetric" setups are modeled.
	LinkDown EventKind = "link_down"
	// LinkUp restores a previously failed link.
	LinkUp EventKind = "link_up"
	// Degrade multiplies a link's nominal bandwidth by Scale
	// (0 < Scale < 1 degrades; Scale <= 0 restores nominal).
	Degrade EventKind = "degrade"
	// Surge injects extra FCT traffic at Load fraction of fabric
	// capacity over [AtNs, AtNs+DurationNs]. FCT workloads only.
	Surge EventKind = "surge"
	// SwitchDown fails a whole switch at AtNs: every attached port
	// goes dark, packets in flight toward it are lost, and anything it
	// transmits is dropped. Node selects the switch ("auto" picks the
	// first core switch, falling back to agg then any switch).
	SwitchDown EventKind = "switch_down"
	// SwitchUp reboots a failed switch: its links come back (unless
	// independently failed) and its learned forwarding/probe state is
	// flushed (Contra and HULA, via sim.Rebooter), so adaptive control
	// planes pay a cold-start warm-up; static-table baselines
	// (ecmp/sp/spain) resume with their offline-computed tables, which
	// is what those schemes model.
	SwitchUp EventKind = "switch_up"
	// ProbeLoss sets a probabilistic probe-drop rate (Rate in [0,1],
	// 0 clears) on a link (Link) or on every fabric link of a switch
	// (Node) from AtNs on. Drops are drawn from a dedicated RNG
	// deterministic in the scenario seed, so measurement noise
	// replays identically per seed. Only probes are affected.
	ProbeLoss EventKind = "probe_loss"
	// PolicySwap recompiles NewPolicy against the running topology at
	// arm time and atomically hot-swaps it into every Contra router at
	// AtNs, then measures the convergence window until every route
	// that was live just before the swap is live again under the new
	// policy (Result.Swaps). Contra scheme only.
	PolicySwap EventKind = "policy_swap"
	// Ramp is sugar for a diurnal load swell: it expands into a chain
	// of Surge steps rising linearly to Load over the first half of
	// DurationNs and falling back over the second half (Steps levels
	// each way, default 4). FCT workloads only.
	Ramp EventKind = "ramp"
)

// Event is one entry of a scenario's timed script. Times are absolute
// simulation nanoseconds; note that the workload starts only after the
// control-plane warmup (12 probe periods, ~3ms at the default probe
// period).
type Event struct {
	Kind EventKind `json:"kind"`
	AtNs int64     `json:"at_ns"`

	// Link selects the target of link events: "A-B" names two nodes,
	// and "auto" (or empty) picks the first edge-fabric link, the same
	// one the paper's Figure 14 experiment fails.
	Link string `json:"link,omitempty"`

	// Node selects the target switch of switch_down/switch_up, or the
	// switch whose fabric links a probe_loss covers; "auto" (or empty
	// for switch events) picks the first core switch.
	Node string `json:"node,omitempty"`

	// Scale is the Degrade bandwidth multiplier.
	Scale float64 `json:"scale,omitempty"`

	// Rate is the ProbeLoss drop probability in [0,1]; 0 clears.
	Rate float64 `json:"rate,omitempty"`

	// NewPolicy is the PolicySwap target policy source.
	NewPolicy string `json:"policy,omitempty"`

	// Load and DurationNs shape a Surge or a Ramp.
	Load       float64 `json:"load,omitempty"`
	DurationNs int64   `json:"duration_ns,omitempty"`

	// Steps is the Ramp resolution: load levels per ramp direction
	// (default 4, so a ramp expands into 7 surge segments).
	Steps int `json:"steps,omitempty"`
}

// Workload kinds.
const (
	// WorkloadFCT offers Poisson flow arrivals from an empirical size
	// distribution and measures flow completion times.
	WorkloadFCT = "fct"
	// WorkloadCBR offers steady constant-bit-rate (UDP-like) flows and
	// measures a delivered-throughput time series — the Figure 14
	// failover workload.
	WorkloadCBR = "cbr"
	// WorkloadCohorts composes named client cohorts — each with its own
	// interarrival process, size distribution, temporal profile, and
	// placement policy — into one FCT-measured load (docs/workloads.md).
	WorkloadCohorts = "cohorts"
	// WorkloadTrace replays a recorded v1 flow trace
	// (docs/trace-format.md) byte-deterministically: the trace's flows
	// are offered exactly as captured and the run is measured like the
	// recording's kind.
	WorkloadTrace = "trace"
)

// Workload describes a scenario's offered traffic.
type Workload struct {
	// Kind is "fct" (default) or "cbr".
	Kind string `json:"kind,omitempty"`

	// FCT knobs.
	Dist       string  `json:"dist,omitempty"`        // websearch (default) | cache
	Load       float64 `json:"load,omitempty"`        // fraction of fabric capacity
	DurationNs int64   `json:"duration_ns,omitempty"` // arrival window; default 20ms
	DrainNs    int64   `json:"drain_ns,omitempty"`    // post-arrival budget; default 1s
	MaxFlows   int     `json:"max_flows,omitempty"`   // default 4000

	// Pattern selects the traffic pattern: "random" (default),
	// "incast", or "all_to_all" (workload.Patterns). FCT workloads
	// only; ignored when Pairs is set.
	Pattern string `json:"pattern,omitempty"`

	// IncastTargets bounds the hot receiver set of the incast pattern
	// (<= 0 means 1).
	IncastTargets int `json:"incast_targets,omitempty"`

	// CapacityBps normalizes Load; 0 derives it from the topology's
	// fabric links.
	CapacityBps float64 `json:"capacity_bps,omitempty"`

	// Pairs restricts traffic to fixed sender-receiver host pairs
	// (§6.4's Abilene experiment), named by topology node.
	Pairs [][2]string `json:"pairs,omitempty"`

	// DistObj, when non-nil, overrides Dist with a custom distribution
	// built via workload.NewDistribution (Go construction only — not
	// expressible in JSON specs).
	DistObj *workload.Distribution `json:"-"`

	// CBR knobs.
	RateBps float64 `json:"rate_bps,omitempty"` // aggregate; default 4.25 Gbps
	EndNs   int64   `json:"end_ns,omitempty"`   // absolute end; default 80ms

	// Cohorts declares the cohorts workload's client populations
	// (kind "cohorts" only). Load, when set (the campaign load axis),
	// scales every cohort's rate together.
	Cohorts []workload.CohortSpec `json:"cohorts,omitempty"`

	// TracePath locates the recorded flow trace of a trace workload
	// (kind "trace" only): a trace file, or a record directory in which
	// each campaign cell resolves its own trace by cell name.
	TracePath string `json:"trace,omitempty"`
}

// Scenario is one declarative experiment.
type Scenario struct {
	Name string `json:"name,omitempty"`

	// TopoSpec builds the topology (the cliutil.BuildTopology syntax:
	// "dc", "fattree:8", "leafspine:4:4:2", "abilene+hosts", "@file").
	// A non-nil Topo overrides it.
	TopoSpec string      `json:"topo"`
	Topo     *topo.Graph `json:"-"`

	Scheme Scheme `json:"scheme"`
	Policy string `json:"policy,omitempty"` // Contra only; default minimize(path.util)
	Seed   int64  `json:"seed,omitempty"`

	Workload Workload `json:"workload"`
	Events   []Event  `json:"events,omitempty"`

	// Script labels the event script for campaign grouping.
	Script string `json:"script,omitempty"`

	// Protocol knobs (§6.3 defaults when zero).
	ProbePeriodNs        int64 `json:"probe_period_ns,omitempty"`
	FlowletTimeoutNs     int64 `json:"flowlet_timeout_ns,omitempty"`
	FailureDetectPeriods int   `json:"failure_detect_periods,omitempty"`

	// Probe aggregation knobs (contra and hula; no-ops for static
	// schemes). ProbePacking batches per-origin probes into one packed
	// probe per port per period. SuppressEps / RefreshEvery enable
	// delta suppression: setting either turns it on (RefreshEvery
	// defaults to 4 periods when only the epsilon is given), and
	// suppressed origins are force-refreshed every RefreshEvery
	// periods. Defaults-off preserves the historical byte-identical
	// probe protocol.
	ProbePacking bool    `json:"probe_packing,omitempty"`
	SuppressEps  float64 `json:"suppress_eps,omitempty"`
	RefreshEvery int     `json:"refresh_every,omitempty"`

	// BinNs enables the delivered-throughput time series (and, with a
	// link_down event, recovery analysis). CBR defaults to 500us.
	BinNs int64 `json:"bin_ns,omitempty"`

	SampleQueues bool `json:"sample_queues,omitempty"`
	TrackLoops   bool `json:"track_loops,omitempty"`

	// TraceLevel attaches the decision-trace recorder: "flows" keeps
	// per-flow summaries (path, hops, queueing, FCT), "decisions"
	// additionally records every fresh forwarding decision with its
	// chosen and runner-up rank. Empty and "off" (normalized away by
	// fill) record nothing and leave the simulation byte-identical.
	TraceLevel string `json:"trace_level,omitempty"`

	// MetricsIntervalNs enables the time-series telemetry sampler: every
	// interval the network snapshots per-fabric-link utilization and
	// backlog, cumulative drops by reason, and per-router probe-table
	// churn/route flaps into internal/metrics ring buffers. 0 (the
	// default) is off and leaves the simulation byte-identical — the
	// sampler timer is never scheduled and every hook stays nil.
	MetricsIntervalNs int64 `json:"metrics_interval_ns,omitempty"`

	// ClassStats enables per-class FCT attribution on fct workloads:
	// elephant vs. mice quantiles split at ElephantBytes (default
	// 1MB), per-cohort (surge) stats, and Jain fairness indices over
	// per-flow throughput.
	ClassStats    bool  `json:"class_stats,omitempty"`
	ElephantBytes int64 `json:"elephant_bytes,omitempty"`

	// RecordFlows captures the materialized workload as a v1 flow trace
	// (Result.FlowTrace), the -record / -record-dir hook. Go-only and
	// excluded from the Key: recording observes a run, it never changes
	// one, so a recorded cell keys (and checkpoints) identically to an
	// unrecorded one.
	RecordFlows bool `json:"-"`

	// Overrides pins flows to an alternative forwarding choice — the
	// counterfactual replay hook, honored by the Contra data plane.
	// Go-only: replay artifacts never enter the canonical encoding or
	// the scenario Key.
	Overrides *trace.Overrides `json:"-"`

	// Pairs resolved from Workload.Pairs, or set directly in Go.
	PairIDs [][2]topo.NodeID `json:"-"`
}

// fill applies the paper's defaults in place and expands event sugar.
func (s *Scenario) fill() {
	if s.Scheme == "" {
		s.Scheme = SchemeContra
	}
	s.expandRamps()
	if s.Policy == "" {
		s.Policy = "minimize(path.util)"
	}
	if s.ProbePeriodNs == 0 {
		s.ProbePeriodNs = 256_000 // §6.3
	}
	if s.TraceLevel == "off" {
		// "off" and absent are the same level; normalizing here keeps
		// an explicit -trace-level off run byte-identical to one that
		// never mentioned tracing.
		s.TraceLevel = ""
	}
	if s.ClassStats && s.ElephantBytes == 0 {
		s.ElephantBytes = 1_000_000
	}
	w := &s.Workload
	if w.Kind == "" {
		w.Kind = WorkloadFCT
	}
	switch w.Kind {
	case WorkloadFCT:
		if w.Dist == "" && w.DistObj == nil {
			w.Dist = "websearch"
		}
		if w.DurationNs == 0 {
			w.DurationNs = 20_000_000
		}
		if w.DrainNs == 0 {
			w.DrainNs = 1_000_000_000
		}
		if w.MaxFlows == 0 {
			w.MaxFlows = 4000
		}
	case WorkloadCohorts:
		// Cohort loads share the FCT window defaults; the size
		// distribution lives inside each cohort, so Dist stays empty.
		if w.DurationNs == 0 {
			w.DurationNs = 20_000_000
		}
		if w.DrainNs == 0 {
			w.DrainNs = 1_000_000_000
		}
		if w.MaxFlows == 0 {
			w.MaxFlows = 4000
		}
	case WorkloadCBR:
		if w.RateBps == 0 {
			w.RateBps = 4.25e9 // Figure 14
		}
		if w.EndNs == 0 {
			w.EndNs = 80_000_000
		}
		if s.BinNs == 0 {
			s.BinNs = 500_000
		}
	}
	// The trace kind fills nothing: its window, rates, and measurement
	// deadline all come from the recorded trace's meta line.
}

// Validate rejects malformed scenarios before they burn a worker.
func (s *Scenario) Validate() error {
	if s.Topo == nil && s.TopoSpec == "" {
		return fmt.Errorf("scenario %q: no topology", s.Name)
	}
	switch s.Scheme {
	case SchemeContra, SchemeECMP, SchemeHula, SchemeSpain, SchemeSP, "":
	default:
		return fmt.Errorf("scenario %q: unknown scheme %q", s.Name, s.Scheme)
	}
	switch s.Workload.Kind {
	case "", WorkloadFCT, WorkloadCBR, WorkloadCohorts, WorkloadTrace:
	default:
		return fmt.Errorf("scenario %q: unknown workload kind %q", s.Name, s.Workload.Kind)
	}
	if s.Workload.Dist != "" {
		if _, err := workload.ByName(s.Workload.Dist); err != nil {
			return fmt.Errorf("scenario %q: %v", s.Name, err)
		}
	}
	if !workload.ValidPattern(s.Workload.Pattern) {
		return fmt.Errorf("scenario %q: unknown traffic pattern %q (want one of %v)",
			s.Name, s.Workload.Pattern, workload.Patterns())
	}
	switch s.Workload.Kind {
	case WorkloadCohorts:
		// Cohorts own their sizes and placement; the flat FCT knobs
		// would silently be ignored, so reject them loudly.
		if s.Workload.Dist != "" {
			return fmt.Errorf("scenario %q: cohorts workload does not take dist %q (size distributions live in each cohort)", s.Name, s.Workload.Dist)
		}
		if s.Workload.Pattern != "" {
			return fmt.Errorf("scenario %q: cohorts workload does not take pattern %q (placement lives in each cohort)", s.Name, s.Workload.Pattern)
		}
		if len(s.Workload.Pairs) > 0 {
			return fmt.Errorf("scenario %q: cohorts workload does not take pairs", s.Name)
		}
		if err := workload.ValidateCohorts(s.Workload.Cohorts); err != nil {
			return fmt.Errorf("scenario %q: %v", s.Name, err)
		}
	case WorkloadTrace:
		if s.Workload.TracePath == "" {
			return fmt.Errorf("scenario %q: trace workload needs a trace file (workload.trace)", s.Name)
		}
		if s.Workload.Dist != "" || s.Workload.Pattern != "" || len(s.Workload.Pairs) > 0 || len(s.Workload.Cohorts) > 0 {
			return fmt.Errorf("scenario %q: trace workload takes only a trace path (generation knobs come from the recording)", s.Name)
		}
	default:
		if len(s.Workload.Cohorts) > 0 {
			return fmt.Errorf("scenario %q: cohorts require workload kind %q, not %q", s.Name, WorkloadCohorts, s.Workload.Kind)
		}
		if s.Workload.TracePath != "" {
			return fmt.Errorf("scenario %q: a trace path requires workload kind %q, not %q", s.Name, WorkloadTrace, s.Workload.Kind)
		}
	}
	if _, err := trace.ParseLevel(s.TraceLevel); err != nil {
		return fmt.Errorf("scenario %q: %v", s.Name, err)
	}
	if s.ElephantBytes < 0 {
		return fmt.Errorf("scenario %q: elephant_bytes %d is negative", s.Name, s.ElephantBytes)
	}
	if s.MetricsIntervalNs < 0 {
		return fmt.Errorf("scenario %q: metrics_interval_ns %d is negative", s.Name, s.MetricsIntervalNs)
	}
	if s.Overrides != nil && s.Scheme != SchemeContra && s.Scheme != "" {
		return fmt.Errorf("scenario %q: counterfactual overrides require the contra scheme", s.Name)
	}
	if s.SuppressEps < 0 {
		return fmt.Errorf("scenario %q: suppress_eps %g is negative", s.Name, s.SuppressEps)
	}
	if s.RefreshEvery < 0 {
		return fmt.Errorf("scenario %q: refresh_every %d is negative", s.Name, s.RefreshEvery)
	}
	for i, ev := range s.Events {
		switch ev.Kind {
		case LinkDown, LinkUp, Degrade:
		case Surge:
			// Trace replays keep surge events as script labels: the surge
			// traffic itself is already materialized in the recording, so
			// replay offers it from the trace, not from the event.
			if k := s.Workload.Kind; k != "" && k != WorkloadFCT && k != WorkloadTrace {
				return fmt.Errorf("scenario %q: surge events require an fct workload", s.Name)
			}
			if ev.Load <= 0 || ev.DurationNs <= 0 {
				return fmt.Errorf("scenario %q: surge event %d needs load and duration_ns", s.Name, i)
			}
		case Ramp:
			if k := s.Workload.Kind; k != "" && k != WorkloadFCT && k != WorkloadTrace {
				return fmt.Errorf("scenario %q: ramp events require an fct workload", s.Name)
			}
			if ev.Load <= 0 || ev.DurationNs <= 0 {
				return fmt.Errorf("scenario %q: ramp event %d needs load and duration_ns", s.Name, i)
			}
			if ev.Steps < 0 {
				return fmt.Errorf("scenario %q: ramp event %d has negative steps", s.Name, i)
			}
		case SwitchDown, SwitchUp:
			// No pre-fail form: a switch that never exists is a
			// different topology, not an event.
			if ev.AtNs <= 0 {
				return fmt.Errorf("scenario %q: %s event %d needs at_ns > 0", s.Name, ev.Kind, i)
			}
		case ProbeLoss:
			if ev.Rate < 0 || ev.Rate > 1 {
				return fmt.Errorf("scenario %q: probe_loss event %d rate %g outside [0,1]", s.Name, i, ev.Rate)
			}
			if ev.Link != "" && ev.Node != "" {
				return fmt.Errorf("scenario %q: probe_loss event %d sets both link and node", s.Name, i)
			}
			// at_ns 0 means "from the start"; a negative time is a spec
			// typo, not a pre-fail form (loss has none).
			if ev.AtNs < 0 {
				return fmt.Errorf("scenario %q: probe_loss event %d needs at_ns >= 0", s.Name, i)
			}
		case PolicySwap:
			if s.Scheme != SchemeContra && s.Scheme != "" {
				return fmt.Errorf("scenario %q: policy_swap requires the contra scheme, not %q", s.Name, s.Scheme)
			}
			if ev.NewPolicy == "" {
				return fmt.Errorf("scenario %q: policy_swap event %d needs a policy", s.Name, i)
			}
			if ev.AtNs <= 0 {
				return fmt.Errorf("scenario %q: policy_swap event %d needs at_ns > 0", s.Name, i)
			}
		default:
			return fmt.Errorf("scenario %q: unknown event kind %q", s.Name, ev.Kind)
		}
	}
	return nil
}

// expandRamps rewrites every Ramp event into its chain of Surge steps:
// Steps levels rising linearly to Load across the first half of
// DurationNs, then the mirror image falling back — 2*Steps-1 equal
// segments in all, the diurnal swell of the ROADMAP's time-varying
// load item. Non-ramp events pass through in order; the scenario's
// Events slice is replaced, never mutated in place (campaign cells
// share backing arrays).
func (s *Scenario) expandRamps() {
	any := false
	for _, ev := range s.Events {
		if ev.Kind == Ramp {
			any = true
			break
		}
	}
	if !any {
		return
	}
	out := make([]Event, 0, len(s.Events)+8)
	for _, ev := range s.Events {
		if ev.Kind != Ramp {
			out = append(out, ev)
			continue
		}
		steps := ev.Steps
		if steps <= 0 {
			// Validate rejects negatives before expansion runs; the
			// clamp keeps a defensive default for the zero value.
			steps = 4
		}
		segs := 2*steps - 1
		segNs := ev.DurationNs / int64(segs)
		if segNs <= 0 {
			segNs = 1
		}
		for i := 0; i < segs; i++ {
			level := i + 1
			if i >= steps {
				level = segs - i
			}
			out = append(out, Event{
				Kind:       Surge,
				AtNs:       ev.AtNs + int64(i)*segNs,
				Load:       ev.Load * float64(level) / float64(steps),
				DurationNs: segNs,
			})
		}
	}
	s.Events = out
}

// Key returns a stable canonical identifier for the scenario: its name
// followed by a short hash of every spec-expressible parameter that
// affects execution. Campaign checkpointing keys completed work on it,
// so it must not change across process restarts, shard layouts, or
// field reordering in spec files — it is computed from the scenario's
// canonical JSON encoding, not from the spec's raw bytes.
//
// Go-only fields that JSON cannot express (Topo, DistObj, PairIDs) do
// not enter the hash; checkpoint/resume is defined for spec-driven
// scenarios, which identify their topology by TopoSpec.
func (s *Scenario) Key() string {
	c := *s
	c.Name = "" // the name is a label; parameters are the identity
	if c.TraceLevel == "off" {
		c.TraceLevel = "" // same level as absent; see fill()
	}
	b, err := json.Marshal(&c)
	if err != nil {
		// Scenario has no unmarshalable fields; keep the signature clean.
		panic(fmt.Sprintf("scenario: key encoding failed: %v", err))
	}
	sum := sha256.Sum256(b)
	return fmt.Sprintf("%s#%x", s.Name, sum[:8])
}

// Decode parses a scenario JSON spec, rejecting unknown fields so a
// typo in a spec file fails loudly instead of silently running the
// default.
func Decode(data []byte) (*Scenario, error) {
	var s Scenario
	if err := strictUnmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("scenario: %v", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// LoadFile reads and decodes a scenario spec file.
func LoadFile(path string) (*Scenario, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(b)
}

// strictUnmarshal is json.Unmarshal with DisallowUnknownFields.
func strictUnmarshal(data []byte, v interface{}) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}
