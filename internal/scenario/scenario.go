// Package scenario is the declarative experiment layer: a Scenario
// value describes one complete simulation — topology, routing scheme
// and policy, offered workload, and a timed script of network events
// (failures, recoveries, capacity degradations, traffic surges) — and
// Run executes it deterministically on the packet-level simulator.
//
// Scenarios are plain data: construct them in Go, or decode them from
// the JSON spec format used by campaign files. The same engine backs
// the legacy exp.RunFCT / exp.RunFailover entry points and the
// contracamp campaign runner, so every experiment in the repo flows
// through one code path.
package scenario

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"os"

	"contra/internal/topo"
	"contra/internal/workload"
)

// Scheme names a routing system under test.
type Scheme string

// Supported schemes.
const (
	SchemeContra Scheme = "contra"
	SchemeECMP   Scheme = "ecmp"
	SchemeHula   Scheme = "hula"
	SchemeSpain  Scheme = "spain"
	SchemeSP     Scheme = "sp"
)

// Schemes lists every supported scheme (CLI help, campaign specs).
func Schemes() []Scheme {
	return []Scheme{SchemeContra, SchemeECMP, SchemeHula, SchemeSpain, SchemeSP}
}

// EventKind names a scripted scenario event.
type EventKind string

// Scenario event kinds.
const (
	// LinkDown fails a link at AtNs. An event with AtNs <= 0 pre-fails
	// the link in the topology itself, before routers deploy: baselines
	// that compute static tables offline (sp, spain) see it, which is
	// how the paper's "asymmetric" setups are modeled.
	LinkDown EventKind = "link_down"
	// LinkUp restores a previously failed link.
	LinkUp EventKind = "link_up"
	// Degrade multiplies a link's nominal bandwidth by Scale
	// (0 < Scale < 1 degrades; Scale <= 0 restores nominal).
	Degrade EventKind = "degrade"
	// Surge injects extra FCT traffic at Load fraction of fabric
	// capacity over [AtNs, AtNs+DurationNs]. FCT workloads only.
	Surge EventKind = "surge"
)

// Event is one entry of a scenario's timed script. Times are absolute
// simulation nanoseconds; note that the workload starts only after the
// control-plane warmup (12 probe periods, ~3ms at the default probe
// period).
type Event struct {
	Kind EventKind `json:"kind"`
	AtNs int64     `json:"at_ns"`

	// Link selects the target of link events: "A-B" names two nodes,
	// and "auto" (or empty) picks the first edge-fabric link, the same
	// one the paper's Figure 14 experiment fails.
	Link string `json:"link,omitempty"`

	// Scale is the Degrade bandwidth multiplier.
	Scale float64 `json:"scale,omitempty"`

	// Load and DurationNs shape a Surge.
	Load       float64 `json:"load,omitempty"`
	DurationNs int64   `json:"duration_ns,omitempty"`
}

// Workload kinds.
const (
	// WorkloadFCT offers Poisson flow arrivals from an empirical size
	// distribution and measures flow completion times.
	WorkloadFCT = "fct"
	// WorkloadCBR offers steady constant-bit-rate (UDP-like) flows and
	// measures a delivered-throughput time series — the Figure 14
	// failover workload.
	WorkloadCBR = "cbr"
)

// Workload describes a scenario's offered traffic.
type Workload struct {
	// Kind is "fct" (default) or "cbr".
	Kind string `json:"kind,omitempty"`

	// FCT knobs.
	Dist       string  `json:"dist,omitempty"`        // websearch (default) | cache
	Load       float64 `json:"load,omitempty"`        // fraction of fabric capacity
	DurationNs int64   `json:"duration_ns,omitempty"` // arrival window; default 20ms
	DrainNs    int64   `json:"drain_ns,omitempty"`    // post-arrival budget; default 1s
	MaxFlows   int     `json:"max_flows,omitempty"`   // default 4000

	// Pattern selects the traffic pattern: "random" (default),
	// "incast", or "all_to_all" (workload.Patterns). FCT workloads
	// only; ignored when Pairs is set.
	Pattern string `json:"pattern,omitempty"`

	// IncastTargets bounds the hot receiver set of the incast pattern
	// (<= 0 means 1).
	IncastTargets int `json:"incast_targets,omitempty"`

	// CapacityBps normalizes Load; 0 derives it from the topology's
	// fabric links.
	CapacityBps float64 `json:"capacity_bps,omitempty"`

	// Pairs restricts traffic to fixed sender-receiver host pairs
	// (§6.4's Abilene experiment), named by topology node.
	Pairs [][2]string `json:"pairs,omitempty"`

	// DistObj, when non-nil, overrides Dist with a custom distribution
	// built via workload.NewDistribution (Go construction only — not
	// expressible in JSON specs).
	DistObj *workload.Distribution `json:"-"`

	// CBR knobs.
	RateBps float64 `json:"rate_bps,omitempty"` // aggregate; default 4.25 Gbps
	EndNs   int64   `json:"end_ns,omitempty"`   // absolute end; default 80ms
}

// Scenario is one declarative experiment.
type Scenario struct {
	Name string `json:"name,omitempty"`

	// TopoSpec builds the topology (the cliutil.BuildTopology syntax:
	// "dc", "fattree:8", "leafspine:4:4:2", "abilene+hosts", "@file").
	// A non-nil Topo overrides it.
	TopoSpec string      `json:"topo"`
	Topo     *topo.Graph `json:"-"`

	Scheme Scheme `json:"scheme"`
	Policy string `json:"policy,omitempty"` // Contra only; default minimize(path.util)
	Seed   int64  `json:"seed,omitempty"`

	Workload Workload `json:"workload"`
	Events   []Event  `json:"events,omitempty"`

	// Script labels the event script for campaign grouping.
	Script string `json:"script,omitempty"`

	// Protocol knobs (§6.3 defaults when zero).
	ProbePeriodNs        int64 `json:"probe_period_ns,omitempty"`
	FlowletTimeoutNs     int64 `json:"flowlet_timeout_ns,omitempty"`
	FailureDetectPeriods int   `json:"failure_detect_periods,omitempty"`

	// BinNs enables the delivered-throughput time series (and, with a
	// link_down event, recovery analysis). CBR defaults to 500us.
	BinNs int64 `json:"bin_ns,omitempty"`

	SampleQueues bool `json:"sample_queues,omitempty"`
	TrackLoops   bool `json:"track_loops,omitempty"`

	// Pairs resolved from Workload.Pairs, or set directly in Go.
	PairIDs [][2]topo.NodeID `json:"-"`
}

// fill applies the paper's defaults in place.
func (s *Scenario) fill() {
	if s.Scheme == "" {
		s.Scheme = SchemeContra
	}
	if s.Policy == "" {
		s.Policy = "minimize(path.util)"
	}
	if s.ProbePeriodNs == 0 {
		s.ProbePeriodNs = 256_000 // §6.3
	}
	w := &s.Workload
	if w.Kind == "" {
		w.Kind = WorkloadFCT
	}
	switch w.Kind {
	case WorkloadFCT:
		if w.Dist == "" && w.DistObj == nil {
			w.Dist = "websearch"
		}
		if w.DurationNs == 0 {
			w.DurationNs = 20_000_000
		}
		if w.DrainNs == 0 {
			w.DrainNs = 1_000_000_000
		}
		if w.MaxFlows == 0 {
			w.MaxFlows = 4000
		}
	case WorkloadCBR:
		if w.RateBps == 0 {
			w.RateBps = 4.25e9 // Figure 14
		}
		if w.EndNs == 0 {
			w.EndNs = 80_000_000
		}
		if s.BinNs == 0 {
			s.BinNs = 500_000
		}
	}
}

// Validate rejects malformed scenarios before they burn a worker.
func (s *Scenario) Validate() error {
	if s.Topo == nil && s.TopoSpec == "" {
		return fmt.Errorf("scenario %q: no topology", s.Name)
	}
	switch s.Scheme {
	case SchemeContra, SchemeECMP, SchemeHula, SchemeSpain, SchemeSP, "":
	default:
		return fmt.Errorf("scenario %q: unknown scheme %q", s.Name, s.Scheme)
	}
	switch s.Workload.Kind {
	case "", WorkloadFCT, WorkloadCBR:
	default:
		return fmt.Errorf("scenario %q: unknown workload kind %q", s.Name, s.Workload.Kind)
	}
	if s.Workload.Dist != "" {
		if _, err := workload.ByName(s.Workload.Dist); err != nil {
			return fmt.Errorf("scenario %q: %v", s.Name, err)
		}
	}
	if !workload.ValidPattern(s.Workload.Pattern) {
		return fmt.Errorf("scenario %q: unknown traffic pattern %q (want one of %v)",
			s.Name, s.Workload.Pattern, workload.Patterns())
	}
	for i, ev := range s.Events {
		switch ev.Kind {
		case LinkDown, LinkUp, Degrade:
		case Surge:
			if s.Workload.Kind == WorkloadCBR {
				return fmt.Errorf("scenario %q: surge events require an fct workload", s.Name)
			}
			if ev.Load <= 0 || ev.DurationNs <= 0 {
				return fmt.Errorf("scenario %q: surge event %d needs load and duration_ns", s.Name, i)
			}
		default:
			return fmt.Errorf("scenario %q: unknown event kind %q", s.Name, ev.Kind)
		}
	}
	return nil
}

// Key returns a stable canonical identifier for the scenario: its name
// followed by a short hash of every spec-expressible parameter that
// affects execution. Campaign checkpointing keys completed work on it,
// so it must not change across process restarts, shard layouts, or
// field reordering in spec files — it is computed from the scenario's
// canonical JSON encoding, not from the spec's raw bytes.
//
// Go-only fields that JSON cannot express (Topo, DistObj, PairIDs) do
// not enter the hash; checkpoint/resume is defined for spec-driven
// scenarios, which identify their topology by TopoSpec.
func (s *Scenario) Key() string {
	c := *s
	c.Name = "" // the name is a label; parameters are the identity
	b, err := json.Marshal(&c)
	if err != nil {
		// Scenario has no unmarshalable fields; keep the signature clean.
		panic(fmt.Sprintf("scenario: key encoding failed: %v", err))
	}
	sum := sha256.Sum256(b)
	return fmt.Sprintf("%s#%x", s.Name, sum[:8])
}

// Decode parses a scenario JSON spec, rejecting unknown fields so a
// typo in a spec file fails loudly instead of silently running the
// default.
func Decode(data []byte) (*Scenario, error) {
	var s Scenario
	if err := strictUnmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("scenario: %v", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// LoadFile reads and decodes a scenario spec file.
func LoadFile(path string) (*Scenario, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(b)
}

// strictUnmarshal is json.Unmarshal with DisallowUnknownFields.
func strictUnmarshal(data []byte, v interface{}) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}
