package scenario

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"contra/internal/cliutil"
	"contra/internal/workload"
)

func TestSpecJSONRoundTrip(t *testing.T) {
	s := Scenario{
		Name:     "dc/contra/linkfail",
		TopoSpec: "dc",
		Scheme:   SchemeContra,
		Policy:   "minimize(path.util)",
		Seed:     7,
		Workload: Workload{
			Kind: WorkloadFCT, Dist: "cache", Load: 0.4,
			DurationNs: 5_000_000, MaxFlows: 300,
			Pairs: [][2]string{{"h0_0", "h3_1"}},
		},
		Events: []Event{
			{Kind: LinkDown, AtNs: 6_000_000, Link: "l0-s0"},
			{Kind: LinkUp, AtNs: 12_000_000, Link: "l0-s0"},
			{Kind: Degrade, AtNs: 8_000_000, Link: "auto", Scale: 0.25},
			{Kind: Surge, AtNs: 7_000_000, Load: 0.3, DurationNs: 2_000_000},
		},
		Script:        "everything",
		ProbePeriodNs: 128_000,
		BinNs:         500_000,
		TrackLoops:    true,
	}
	b, err := json.Marshal(&s)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*got, s) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", *got, s)
	}
}

func TestDecodeRejectsUnknownFieldsAndBadValues(t *testing.T) {
	cases := map[string]string{
		"unknown field":        `{"topo":"dc","scheme":"contra","worload":{}}`,
		"unknown scheme":       `{"topo":"dc","scheme":"ospf"}`,
		"unknown kind":         `{"topo":"dc","scheme":"ecmp","events":[{"kind":"meteor","at_ns":1}]}`,
		"unknown dist":         `{"topo":"dc","scheme":"ecmp","workload":{"dist":"uniform"}}`,
		"surge in cbr":         `{"topo":"dc","scheme":"ecmp","workload":{"kind":"cbr"},"events":[{"kind":"surge","at_ns":1,"load":0.1,"duration_ns":1}]}`,
		"empty surge":          `{"topo":"dc","scheme":"ecmp","events":[{"kind":"surge","at_ns":1}]}`,
		"no topology":          `{"scheme":"ecmp"}`,
		"pre-fail switch":      `{"topo":"dc","scheme":"contra","events":[{"kind":"switch_down","at_ns":0}]}`,
		"probe_loss rate":      `{"topo":"dc","scheme":"contra","events":[{"kind":"probe_loss","at_ns":1,"rate":1.5}]}`,
		"probe_loss two nodes": `{"topo":"dc","scheme":"contra","events":[{"kind":"probe_loss","at_ns":1,"rate":0.1,"link":"auto","node":"s0"}]}`,
		"swap on ecmp":         `{"topo":"dc","scheme":"ecmp","events":[{"kind":"policy_swap","at_ns":1,"policy":"minimize(path.len)"}]}`,
		"swap no policy":       `{"topo":"dc","scheme":"contra","events":[{"kind":"policy_swap","at_ns":1}]}`,
		"swap at zero":         `{"topo":"dc","scheme":"contra","events":[{"kind":"policy_swap","at_ns":0,"policy":"minimize(path.len)"}]}`,
		"empty ramp":           `{"topo":"dc","scheme":"ecmp","events":[{"kind":"ramp","at_ns":1}]}`,
		"ramp in cbr":          `{"topo":"dc","scheme":"ecmp","workload":{"kind":"cbr"},"events":[{"kind":"ramp","at_ns":1,"load":0.2,"duration_ns":1000}]}`,
		"probe_loss past":      `{"topo":"dc","scheme":"contra","events":[{"kind":"probe_loss","at_ns":-1,"rate":0.1}]}`,
	}
	for name, spec := range cases {
		if _, err := Decode([]byte(spec)); err == nil {
			t.Errorf("%s: decode accepted %s", name, spec)
		}
	}
}

func TestRampExpandsIntoSurgeChain(t *testing.T) {
	s := Scenario{
		TopoSpec: "dc",
		Events: []Event{
			{Kind: LinkDown, AtNs: 1_000_000, Link: "auto"},
			{Kind: Ramp, AtNs: 10_000_000, Load: 0.8, DurationNs: 7_000_000, Steps: 2},
		},
	}
	shared := s.Events
	s.fill()
	// Steps=2 -> 3 segments: up 0.4, peak 0.8, down 0.4.
	if len(s.Events) != 4 {
		t.Fatalf("expanded to %d events, want link_down + 3 surges: %+v", len(s.Events), s.Events)
	}
	want := []Event{
		{Kind: LinkDown, AtNs: 1_000_000, Link: "auto"},
		{Kind: Surge, AtNs: 10_000_000, Load: 0.4, DurationNs: 2_333_333},
		{Kind: Surge, AtNs: 12_333_333, Load: 0.8, DurationNs: 2_333_333},
		{Kind: Surge, AtNs: 14_666_666, Load: 0.4, DurationNs: 2_333_333},
	}
	if !reflect.DeepEqual(s.Events, want) {
		t.Fatalf("expansion mismatch:\n got %+v\nwant %+v", s.Events, want)
	}
	// The caller's slice must be untouched (campaign cells share it).
	if shared[1].Kind != Ramp {
		t.Fatal("expansion mutated the shared events slice")
	}
	// Default step count: 4 levels -> 7 segments.
	d := Scenario{TopoSpec: "dc", Events: []Event{{Kind: Ramp, AtNs: 1, Load: 0.6, DurationNs: 7000}}}
	d.fill()
	if len(d.Events) != 7 {
		t.Fatalf("default ramp expanded to %d segments, want 7", len(d.Events))
	}
	peak := d.Events[3]
	if peak.Load != 0.6 {
		t.Fatalf("ramp peak load %g, want 0.6", peak.Load)
	}
	if d.Events[0].Load != 0.15 || d.Events[6].Load != 0.15 {
		t.Fatalf("ramp edges %g/%g, want 0.15", d.Events[0].Load, d.Events[6].Load)
	}
}

func TestRunRejectsMalformedRampBeforeExpansion(t *testing.T) {
	// Go-constructed scenarios skip Decode, so Run itself must reject
	// a bad ramp before fill() expands (and would silently drop) it.
	s := fastFCT(SchemeECMP)
	s.Events = []Event{{Kind: Ramp, AtNs: 1, Load: 0.5, DurationNs: 1_000_000, Steps: -1}}
	if _, err := Run(s); err == nil {
		t.Fatal("Run accepted a negative-steps ramp")
	}
}

func TestRampAddsTraffic(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	base := fastFCT(SchemeECMP)
	plain, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	ramped := base
	ramped.Events = []Event{{Kind: Ramp, AtNs: 4_000_000, Load: 0.5, DurationNs: 3_000_000, Steps: 3}}
	got, err := Run(ramped)
	if err != nil {
		t.Fatal(err)
	}
	if got.Flows <= plain.Flows {
		t.Fatalf("ramp added no flows: %d vs %d", got.Flows, plain.Flows)
	}
}

func TestDisruptionSeverityCoalescing(t *testing.T) {
	s := Scenario{
		TopoSpec: "dc",
		Events: []Event{
			// Same instant: degrade + link_down + switch_down coalesce
			// into one window labeled with the most severe kind.
			{Kind: Degrade, AtNs: 5_000_000, Link: "auto", Scale: 0.1},
			{Kind: LinkDown, AtNs: 5_000_000, Link: "auto"},
			{Kind: SwitchDown, AtNs: 5_000_000, Node: "auto"},
			// A switch_down inside the open window: its own window.
			{Kind: SwitchDown, AtNs: 9_000_000, Node: "auto"},
			// Recovery actions never open windows.
			{Kind: SwitchUp, AtNs: 12_000_000, Node: "auto"},
			{Kind: LinkUp, AtNs: 13_000_000, Link: "auto"},
		},
	}
	ds := s.disruptions()
	if len(ds) != 2 {
		t.Fatalf("got %d windows, want 2: %+v", len(ds), ds)
	}
	if ds[0].AtNs != 5_000_000 || ds[0].Kind != SwitchDown {
		t.Fatalf("coalesced window = %+v, want switch_down at 5ms", ds[0])
	}
	if ds[1].AtNs != 9_000_000 || ds[1].Kind != SwitchDown {
		t.Fatalf("nested window = %+v, want switch_down at 9ms", ds[1])
	}
}

// TestChaosScenarioEndToEnd exercises the whole chaos stack through
// scenario.Run: a fattree CBR run scripting probe loss, a whole-core
// failure and reboot, and a live policy swap, checking every chaos
// metric the Result carries.
func TestChaosScenarioEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	s := Scenario{
		Name:     "chaos-e2e",
		TopoSpec: "fattree:4:1",
		Scheme:   SchemeContra,
		Seed:     3,
		Workload: Workload{Kind: WorkloadCBR, EndNs: 30_000_000},
		Events: []Event{
			{Kind: ProbeLoss, AtNs: 1_000_000, Node: "auto", Rate: 0.2},
			{Kind: SwitchDown, AtNs: 8_000_000, Node: "auto"},
			{Kind: SwitchUp, AtNs: 12_000_000, Node: "auto"},
			{Kind: PolicySwap, AtNs: 18_000_000, NewPolicy: "minimize(path.len)"},
		},
	}
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.ProbeLossSeen == 0 || res.ProbeLossDropped == 0 {
		t.Fatalf("probe loss idle: seen=%d dropped=%d", res.ProbeLossSeen, res.ProbeLossDropped)
	}
	if res.ProbeLossFrac < 0.1 || res.ProbeLossFrac > 0.3 {
		t.Fatalf("realized probe loss %.3f far from configured 0.2", res.ProbeLossFrac)
	}
	if res.NodeDownDrops == 0 {
		t.Fatal("whole-switch failure dropped nothing")
	}
	if len(res.Swaps) != 1 {
		t.Fatalf("got %d swap windows, want 1: %+v", len(res.Swaps), res.Swaps)
	}
	w := res.Swaps[0]
	if w.AtNs != 18_000_000 || w.Pairs == 0 {
		t.Fatalf("swap window %+v: wrong anchor or empty snapshot", w)
	}
	if w.ConvergenceNs <= 0 {
		t.Fatalf("swap never converged inside the run: %+v", w)
	}
	if ns, ok := res.SwapConvergenceNs(); !ok || ns != w.ConvergenceNs {
		t.Fatalf("SwapConvergenceNs = (%d,%v), want (%d,true)", ns, ok, w.ConvergenceNs)
	}
	// The switch failure must surface as a recovery window labeled
	// with its kind.
	var found bool
	for _, rw := range res.Recoveries {
		if rw.AtNs == 8_000_000 && rw.Kind == SwitchDown {
			found = true
		}
	}
	if !found {
		t.Fatalf("no switch_down recovery window at 8ms: %+v", res.Recoveries)
	}
}

// TestChaosScenarioDeterminism pins the acceptance bar: the same chaos
// scenario must produce byte-identical results on every run.
func TestChaosScenarioDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	s := Scenario{
		Name:     "chaos-det",
		TopoSpec: "fattree:4:1",
		Scheme:   SchemeContra,
		Seed:     5,
		Workload: Workload{Kind: WorkloadCBR, EndNs: 20_000_000},
		Events: []Event{
			{Kind: ProbeLoss, AtNs: 500_000, Link: "auto", Rate: 0.3},
			{Kind: SwitchDown, AtNs: 6_000_000, Node: "auto"},
			{Kind: SwitchUp, AtNs: 9_000_000, Node: "auto"},
			{Kind: PolicySwap, AtNs: 12_000_000, NewPolicy: "minimize((path.util, path.len))"},
		},
	}
	var prev []byte
	for i := 0; i < 2; i++ {
		res, err := Run(s)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		if prev != nil && !reflect.DeepEqual(prev, b) {
			t.Fatalf("same chaos scenario, different results:\n%s\n%s", prev, b)
		}
		prev = b
	}
}

// fastFCT is a small deterministic FCT scenario used across tests.
func fastFCT(scheme Scheme) Scenario {
	return Scenario{
		Name:     "test/" + string(scheme),
		TopoSpec: "dc",
		Scheme:   scheme,
		Seed:     3,
		Workload: Workload{
			Kind: WorkloadFCT, Dist: "cache", Load: 0.3,
			DurationNs: 4_000_000, MaxFlows: 200,
		},
	}
}

func TestRunDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	s := fastFCT(SchemeContra)
	s.Events = []Event{
		{Kind: LinkDown, AtNs: 5_000_000, Link: "auto"},
		{Kind: LinkUp, AtNs: 8_000_000, Link: "auto"},
	}
	var prev []byte
	for i := 0; i < 2; i++ {
		res, err := Run(s)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		if prev != nil && !reflect.DeepEqual(prev, b) {
			t.Fatalf("same scenario, different results:\n%s\n%s", prev, b)
		}
		prev = b
	}
}

func TestKeyIsStableAndParameterSensitive(t *testing.T) {
	s := fastFCT(SchemeContra)
	k1, k2 := s.Key(), s.Key()
	if k1 != k2 {
		t.Fatalf("Key not stable: %q vs %q", k1, k2)
	}
	// A decode round-trip (what checkpoint/resume sees across process
	// restarts) must preserve the key.
	b, err := json.Marshal(&s)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Key() != k1 {
		t.Fatalf("Key changed across JSON round trip: %q vs %q", got.Key(), k1)
	}
	// Every execution-relevant parameter must move the key.
	muts := map[string]func(*Scenario){
		"seed":    func(s *Scenario) { s.Seed++ },
		"scheme":  func(s *Scenario) { s.Scheme = SchemeECMP },
		"topo":    func(s *Scenario) { s.TopoSpec = "fattree:4:1" },
		"load":    func(s *Scenario) { s.Workload.Load = 0.7 },
		"pattern": func(s *Scenario) { s.Workload.Pattern = "incast" },
		"events":  func(s *Scenario) { s.Events = []Event{{Kind: LinkDown, AtNs: 1}} },
	}
	for name, mut := range muts {
		m := fastFCT(SchemeContra)
		mut(&m)
		if m.Key() == k1 {
			t.Errorf("mutating %s did not change the key", name)
		}
	}
	// The name is a label, not identity: only the readable prefix moves.
	renamed := fastFCT(SchemeContra)
	renamed.Name = "other"
	if ki, kj := k1[strings.IndexByte(k1, '#'):], renamed.Key(); !strings.HasSuffix(kj, ki) {
		t.Errorf("renaming changed the parameter hash: %q vs %q", k1, kj)
	}
}

func TestIncastScenarioRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	s := fastFCT(SchemeECMP)
	s.Workload.Pattern = "incast"
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pattern != "incast" {
		t.Fatalf("res.Pattern = %q", res.Pattern)
	}
	if res.Completed == 0 {
		t.Fatal("no incast flows completed")
	}
}

func TestPatternValidation(t *testing.T) {
	if _, err := Decode([]byte(`{"topo":"dc","scheme":"ecmp","workload":{"pattern":"hotspot"}}`)); err == nil {
		t.Fatal("decode accepted an unknown traffic pattern")
	}
	if _, err := Decode([]byte(`{"topo":"dc","scheme":"ecmp","workload":{"pattern":"all_to_all","incast_targets":2}}`)); err != nil {
		t.Fatal(err)
	}
}

func TestP95TracksBetweenP50AndP99(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res, err := Run(fastFCT(SchemeECMP))
	if err != nil {
		t.Fatal(err)
	}
	if res.P95FCT <= 0 {
		t.Fatal("no streaming p95")
	}
	// The streaming estimate must land in the exact tail neighbourhood.
	if res.P95FCT < res.P50FCT || res.P95FCT > 1.2*res.P99FCT {
		t.Fatalf("p95 %.6f outside [p50 %.6f, 1.2*p99 %.6f]", res.P95FCT, res.P50FCT, res.P99FCT)
	}
}

func TestMultiDisruptionRecoveryWindows(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	s := Scenario{
		TopoSpec: "dc",
		Scheme:   SchemeECMP,
		Seed:     2,
		Workload: Workload{Kind: WorkloadCBR, EndNs: 60_000_000},
		Events: []Event{
			// Two separate disruption instants; the same-time pair at
			// 15ms must coalesce into one window.
			{Kind: Degrade, AtNs: 15_000_000, Link: "l0-s0", Scale: 0.05},
			{Kind: Degrade, AtNs: 15_000_000, Link: "l0-s1", Scale: 0.05},
			{Kind: Degrade, AtNs: 20_000_000, Link: "l0-s0", Scale: 1}, // restore
			{Kind: Degrade, AtNs: 20_000_000, Link: "l0-s1", Scale: 1},
			{Kind: Degrade, AtNs: 40_000_000, Link: "l1-s0", Scale: 0.05},
			{Kind: Degrade, AtNs: 40_000_000, Link: "l1-s1", Scale: 0.05},
		},
	}
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	// Restores are recovery actions, not disruptions: two windows.
	if len(res.Recoveries) != 2 {
		t.Fatalf("got %d recovery windows, want 2 (15ms and 40ms): %+v",
			len(res.Recoveries), res.Recoveries)
	}
	w0, w2 := res.Recoveries[0], res.Recoveries[1]
	if w0.AtNs != 15_000_000 || w2.AtNs != 40_000_000 {
		t.Fatalf("window anchors wrong: %+v", res.Recoveries)
	}
	for i, w := range []RecoveryWindow{w0, w2} {
		if w.BaselineBps <= 0 {
			t.Fatalf("window %d: no baseline", i)
		}
		if w.MinBps > 0.95*w.BaselineBps {
			t.Fatalf("window %d: degradation invisible (min %.2f of %.2f Gbps)",
				i, w.MinBps/1e9, w.BaselineBps/1e9)
		}
	}
	// Legacy top-level fields must mirror the first window.
	if res.FailAtNs != w0.AtNs || res.BaselineBps != w0.BaselineBps ||
		res.MinBps != w0.MinBps || res.RecoveryNs != w0.RecoveryNs {
		t.Fatalf("top-level fields diverge from first window: %+v vs %+v", res, w0)
	}
	// The first disruption is undone at 20ms, so its recovery must
	// land shortly after that restore and, in any case, before the
	// second disruption bounds the window at 40ms.
	if w0.RecoveryNs < 4_000_000 || w0.RecoveryNs > 25_000_000 {
		t.Fatalf("first window recovery %.1fms, want ~5ms (restore at +5ms)",
			float64(w0.RecoveryNs)/1e6)
	}
}

func TestCloseSpacedDisruptionBaselineIsClipped(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	// Second disruption 5ms after the first (within the 10ms baseline
	// horizon) while the first is still in force: its baseline must be
	// measured on the already-depressed throughput, not on healthy
	// pre-15ms bins whose floor would mask the second dip.
	s := Scenario{
		TopoSpec: "dc",
		Scheme:   SchemeECMP,
		Seed:     2,
		Workload: Workload{Kind: WorkloadCBR, EndNs: 40_000_000},
		Events: []Event{
			{Kind: Degrade, AtNs: 15_000_000, Link: "l0-s0", Scale: 0.05},
			{Kind: Degrade, AtNs: 15_000_000, Link: "l0-s1", Scale: 0.05},
			{Kind: Degrade, AtNs: 20_000_000, Link: "l1-s0", Scale: 0.05},
			{Kind: Degrade, AtNs: 20_000_000, Link: "l1-s1", Scale: 0.05},
		},
	}
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Recoveries) != 2 {
		t.Fatalf("got %d windows, want 2: %+v", len(res.Recoveries), res.Recoveries)
	}
	w0, w1 := res.Recoveries[0], res.Recoveries[1]
	if w0.BaselineBps <= 0 || w1.BaselineBps <= 0 {
		t.Fatalf("missing baselines: %+v", res.Recoveries)
	}
	if w1.BaselineBps >= 0.95*w0.BaselineBps {
		t.Fatalf("second window baseline %.2f Gbps not clipped to the depressed regime (first baseline %.2f)",
			w1.BaselineBps/1e9, w0.BaselineBps/1e9)
	}
}

func TestDegradeEventDepressesThroughput(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	s := Scenario{
		TopoSpec: "dc",
		Scheme:   SchemeECMP, // static hashing keeps traffic on the slow link
		Seed:     2,
		Workload: Workload{Kind: WorkloadCBR, EndNs: 30_000_000},
		// Choke both of leaf 0's uplinks so its share of the CBR load
		// cannot fit whatever the hashing does.
		Events: []Event{
			{Kind: Degrade, AtNs: 15_000_000, Link: "l0-s0", Scale: 0.05},
			{Kind: Degrade, AtNs: 15_000_000, Link: "l0-s1", Scale: 0.05},
		},
	}
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.BaselineBps <= 0 {
		t.Fatal("no baseline throughput")
	}
	if res.MinBps > 0.95*res.BaselineBps {
		t.Fatalf("degradation invisible: min %.2f of baseline %.2f Gbps",
			res.MinBps/1e9, res.BaselineBps/1e9)
	}
	if res.FailAtNs != 15_000_000 {
		t.Fatalf("FailAtNs = %d, want the degrade time", res.FailAtNs)
	}
}

func TestSurgeAddsTraffic(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	base := fastFCT(SchemeECMP)
	plain, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	surged := base
	surged.Events = []Event{{Kind: Surge, AtNs: 4_000_000, Load: 0.4, DurationNs: 3_000_000}}
	got, err := Run(surged)
	if err != nil {
		t.Fatal(err)
	}
	if got.Flows <= plain.Flows {
		t.Fatalf("surge added no flows: %d vs %d", got.Flows, plain.Flows)
	}
	if got.Completed < int64(got.Flows)*9/10 {
		t.Fatalf("surge run completed only %d/%d", got.Completed, got.Flows)
	}
}

func TestPreFailAsymmetricTopology(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	// A link_down at t<=0 must reach the topology before deploy, so
	// even schemes with offline path computation route around it.
	s := fastFCT(SchemeSP)
	s.Events = []Event{{Kind: LinkDown, AtNs: 0, Link: "l0-s0"}}
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != int64(res.Flows) {
		t.Fatalf("completed %d/%d across the pre-failed fabric", res.Completed, res.Flows)
	}
	if res.LinkDownDrops > 0 {
		t.Fatalf("%v packets hit the pre-failed link", res.LinkDownDrops)
	}
}

func TestRunDoesNotMutateCallerTopology(t *testing.T) {
	s := fastFCT(SchemeSP)
	g, err := cliutil.BuildTopology("dc")
	if err != nil {
		t.Fatal(err)
	}
	s.Topo = g
	s.TopoSpec = ""
	s.Events = []Event{{Kind: LinkDown, AtNs: 0, Link: "l0-s0"}}
	if _, err := Run(s); err != nil {
		t.Fatal(err)
	}
	for _, l := range g.Links() {
		if l.Down {
			t.Fatal("pre-fail event mutated the caller's topology")
		}
	}
}

func TestCustomDistributionObject(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	s := fastFCT(SchemeECMP)
	s.Workload.Dist = ""
	s.Workload.DistObj = workload.NewDistribution("trace",
		[]float64{1000, 10000, 100000}, []float64{0.5, 0.9, 1})
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Dist != "trace" {
		t.Fatalf("res.Dist = %q, want the custom distribution's name", res.Dist)
	}
	if res.Completed == 0 {
		t.Fatal("no flows completed with a custom distribution")
	}
}
