package scenario

import (
	"encoding/json"
	"reflect"
	"testing"

	"contra/internal/cliutil"
	"contra/internal/workload"
)

func TestSpecJSONRoundTrip(t *testing.T) {
	s := Scenario{
		Name:     "dc/contra/linkfail",
		TopoSpec: "dc",
		Scheme:   SchemeContra,
		Policy:   "minimize(path.util)",
		Seed:     7,
		Workload: Workload{
			Kind: WorkloadFCT, Dist: "cache", Load: 0.4,
			DurationNs: 5_000_000, MaxFlows: 300,
			Pairs: [][2]string{{"h0_0", "h3_1"}},
		},
		Events: []Event{
			{Kind: LinkDown, AtNs: 6_000_000, Link: "l0-s0"},
			{Kind: LinkUp, AtNs: 12_000_000, Link: "l0-s0"},
			{Kind: Degrade, AtNs: 8_000_000, Link: "auto", Scale: 0.25},
			{Kind: Surge, AtNs: 7_000_000, Load: 0.3, DurationNs: 2_000_000},
		},
		Script:        "everything",
		ProbePeriodNs: 128_000,
		BinNs:         500_000,
		TrackLoops:    true,
	}
	b, err := json.Marshal(&s)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*got, s) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", *got, s)
	}
}

func TestDecodeRejectsUnknownFieldsAndBadValues(t *testing.T) {
	cases := map[string]string{
		"unknown field":  `{"topo":"dc","scheme":"contra","worload":{}}`,
		"unknown scheme": `{"topo":"dc","scheme":"ospf"}`,
		"unknown kind":   `{"topo":"dc","scheme":"ecmp","events":[{"kind":"meteor","at_ns":1}]}`,
		"unknown dist":   `{"topo":"dc","scheme":"ecmp","workload":{"dist":"uniform"}}`,
		"surge in cbr":   `{"topo":"dc","scheme":"ecmp","workload":{"kind":"cbr"},"events":[{"kind":"surge","at_ns":1,"load":0.1,"duration_ns":1}]}`,
		"empty surge":    `{"topo":"dc","scheme":"ecmp","events":[{"kind":"surge","at_ns":1}]}`,
		"no topology":    `{"scheme":"ecmp"}`,
	}
	for name, spec := range cases {
		if _, err := Decode([]byte(spec)); err == nil {
			t.Errorf("%s: decode accepted %s", name, spec)
		}
	}
}

// fastFCT is a small deterministic FCT scenario used across tests.
func fastFCT(scheme Scheme) Scenario {
	return Scenario{
		Name:     "test/" + string(scheme),
		TopoSpec: "dc",
		Scheme:   scheme,
		Seed:     3,
		Workload: Workload{
			Kind: WorkloadFCT, Dist: "cache", Load: 0.3,
			DurationNs: 4_000_000, MaxFlows: 200,
		},
	}
}

func TestRunDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	s := fastFCT(SchemeContra)
	s.Events = []Event{
		{Kind: LinkDown, AtNs: 5_000_000, Link: "auto"},
		{Kind: LinkUp, AtNs: 8_000_000, Link: "auto"},
	}
	var prev []byte
	for i := 0; i < 2; i++ {
		res, err := Run(s)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		if prev != nil && !reflect.DeepEqual(prev, b) {
			t.Fatalf("same scenario, different results:\n%s\n%s", prev, b)
		}
		prev = b
	}
}

func TestDegradeEventDepressesThroughput(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	s := Scenario{
		TopoSpec: "dc",
		Scheme:   SchemeECMP, // static hashing keeps traffic on the slow link
		Seed:     2,
		Workload: Workload{Kind: WorkloadCBR, EndNs: 30_000_000},
		// Choke both of leaf 0's uplinks so its share of the CBR load
		// cannot fit whatever the hashing does.
		Events: []Event{
			{Kind: Degrade, AtNs: 15_000_000, Link: "l0-s0", Scale: 0.05},
			{Kind: Degrade, AtNs: 15_000_000, Link: "l0-s1", Scale: 0.05},
		},
	}
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.BaselineBps <= 0 {
		t.Fatal("no baseline throughput")
	}
	if res.MinBps > 0.95*res.BaselineBps {
		t.Fatalf("degradation invisible: min %.2f of baseline %.2f Gbps",
			res.MinBps/1e9, res.BaselineBps/1e9)
	}
	if res.FailAtNs != 15_000_000 {
		t.Fatalf("FailAtNs = %d, want the degrade time", res.FailAtNs)
	}
}

func TestSurgeAddsTraffic(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	base := fastFCT(SchemeECMP)
	plain, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	surged := base
	surged.Events = []Event{{Kind: Surge, AtNs: 4_000_000, Load: 0.4, DurationNs: 3_000_000}}
	got, err := Run(surged)
	if err != nil {
		t.Fatal(err)
	}
	if got.Flows <= plain.Flows {
		t.Fatalf("surge added no flows: %d vs %d", got.Flows, plain.Flows)
	}
	if got.Completed < int64(got.Flows)*9/10 {
		t.Fatalf("surge run completed only %d/%d", got.Completed, got.Flows)
	}
}

func TestPreFailAsymmetricTopology(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	// A link_down at t<=0 must reach the topology before deploy, so
	// even schemes with offline path computation route around it.
	s := fastFCT(SchemeSP)
	s.Events = []Event{{Kind: LinkDown, AtNs: 0, Link: "l0-s0"}}
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != int64(res.Flows) {
		t.Fatalf("completed %d/%d across the pre-failed fabric", res.Completed, res.Flows)
	}
	if res.LinkDownDrops > 0 {
		t.Fatalf("%v packets hit the pre-failed link", res.LinkDownDrops)
	}
}

func TestRunDoesNotMutateCallerTopology(t *testing.T) {
	s := fastFCT(SchemeSP)
	g, err := cliutil.BuildTopology("dc")
	if err != nil {
		t.Fatal(err)
	}
	s.Topo = g
	s.TopoSpec = ""
	s.Events = []Event{{Kind: LinkDown, AtNs: 0, Link: "l0-s0"}}
	if _, err := Run(s); err != nil {
		t.Fatal(err)
	}
	for _, l := range g.Links() {
		if l.Down {
			t.Fatal("pre-fail event mutated the caller's topology")
		}
	}
}

func TestCustomDistributionObject(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	s := fastFCT(SchemeECMP)
	s.Workload.Dist = ""
	s.Workload.DistObj = workload.NewDistribution("trace",
		[]float64{1000, 10000, 100000}, []float64{0.5, 0.9, 1})
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Dist != "trace" {
		t.Fatalf("res.Dist = %q, want the custom distribution's name", res.Dist)
	}
	if res.Completed == 0 {
		t.Fatal("no flows completed with a custom distribution")
	}
}
