package scenario

import (
	"fmt"
	"os"
	"path/filepath"

	"contra/internal/flowtrace"
	"contra/internal/sim"
	"contra/internal/topo"
	"contra/internal/workload"
)

// This file holds the workload-engine halves of the run layer: the
// cohorts generator dispatch, flow-trace capture (scenario.RecordFlows),
// and byte-deterministic replay of recorded traces (workload kind
// "trace"). The replay paths mirror runFCT/runCBR operation for
// operation — any ordering drift between them shows up immediately as
// a byte diff in the record→replay CI check.

// runCohorts offers the composed cohort workload and measures it like
// an FCT run: warm up, inject the cohorts' flows, drain, report FCT
// quantiles. Cohort i's flow IDs carry i in their top 32 bits, so
// class_stats cohort rows line up with the spec's cohort order.
func runCohorts(s *Scenario, e *sim.Engine, n *sim.Network, g *topo.Graph, warmup int64, netEvents []sim.NetworkEvent, res *Result) error {
	n.Inject(netEvents...)
	e.Run(warmup)
	w := s.Workload
	capacity := w.CapacityBps
	if capacity == 0 {
		capacity = FabricCapacity(g)
	}
	senders, receivers := workload.SplitHosts(g)
	flows, err := workload.GenerateCohorts(g, workload.CohortConfig{
		Cohorts:     w.Cohorts,
		Senders:     senders,
		Receivers:   receivers,
		CapacityBps: capacity,
		StartNs:     warmup,
		DurationNs:  w.DurationNs,
		Seed:        s.Seed,
		LoadScale:   w.Load,
		MaxFlows:    w.MaxFlows,
	})
	if err != nil {
		return fmt.Errorf("scenario %q: %v", s.Name, err)
	}
	deadline := warmup + w.DurationNs + w.DrainNs
	var classes *classCollector
	if s.ClassStats {
		classes = newClassCollector(s.ElephantBytes)
		n.FlowDone = classes.add
	}
	n.StartFlows(flows)
	if s.SampleQueues {
		e.Every(warmup, 100_000, n.SampleQueues)
	}
	for e.Now() < deadline && n.CompletedFlows() < int64(len(flows)) {
		e.Run(e.Now() + 10_000_000)
	}
	res.Dist = "cohorts"
	res.Load = w.Load
	res.Flows = len(flows)
	res.Completed = n.CompletedFlows()
	res.MeanFCT = n.FCT.Mean()
	res.P50FCT = n.FCT.Quantile(0.5)
	res.P95FCT = n.FCTQuant.Quantile(0.95)
	res.P99FCT = n.FCT.Quantile(0.99)
	if classes != nil {
		res.Classes = classes.stats()
	}
	if s.RecordFlows {
		recordFlows(s, g, res, flows, flowtrace.Meta{
			Kind: flowtrace.KindCohorts, Dist: "cohorts",
			Load: w.Load, DeadlineNs: deadline,
		}, func(f sim.FlowSpec) string {
			return w.Cohorts[f.ID>>32].Name
		})
	}
	return nil
}

// recordFlows attaches the v1 flow-trace artifact for a materialized
// flow set: endpoints by node name (stable across processes), flows in
// injection order, meta carrying the scenario's identity.
func recordFlows(s *Scenario, g *topo.Graph, res *Result, flows []sim.FlowSpec, meta flowtrace.Meta, class func(sim.FlowSpec) string) {
	meta.Topo = res.Topo
	meta.Seed = s.Seed
	meta.Key = s.Key()
	t := &flowtrace.Trace{Meta: meta, Flows: make([]flowtrace.Flow, 0, len(flows))}
	for _, f := range flows {
		t.Flows = append(t.Flows, flowtrace.Flow{
			ID:      f.ID,
			Src:     g.Node(f.Src).Name,
			Dst:     g.Node(f.Dst).Name,
			Bytes:   f.Size,
			RateBps: f.RateBps,
			StartNs: f.Start,
			Class:   class(f),
		})
	}
	res.FlowTrace = t
}

// loadReplay resolves and loads a trace workload's recording. A
// directory path resolves per cell by sanitized scenario name — the
// record-dir layout — so one replay spec with the recording campaign's
// axes replays every cell against its own trace.
func loadReplay(s *Scenario, g *topo.Graph) (*flowtrace.Trace, error) {
	path := s.Workload.TracePath
	if st, err := os.Stat(path); err == nil && st.IsDir() {
		if s.Name == "" {
			return nil, fmt.Errorf("scenario: trace path %q is a directory, which resolves per campaign cell; name the scenario or point at a trace file", path)
		}
		path = filepath.Join(path, flowtrace.FileName(s.Name))
	}
	tr, err := flowtrace.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario %q: %v", s.Name, err)
	}
	topoName := s.TopoSpec
	if topoName == "" {
		topoName = g.Name
	}
	if tr.Meta.Topo != topoName {
		return nil, fmt.Errorf("scenario %q: trace %s was recorded on topo %q, this scenario runs %q", s.Name, path, tr.Meta.Topo, topoName)
	}
	return tr, nil
}

// runReplay offers a recorded trace's flows exactly as captured and
// measures the run the way the recording's kind was measured. The
// operation order mirrors runFCT / runCBR exactly: with the recording
// scenario's non-workload knobs (scheme, seed, probe timing, events),
// the replayed Result is byte-identical to the live one.
func runReplay(s *Scenario, e *sim.Engine, n *sim.Network, g *topo.Graph, warmup int64, netEvents []sim.NetworkEvent, tr *flowtrace.Trace, res *Result) error {
	if len(tr.Flows) == 0 {
		return fmt.Errorf("scenario %q: trace carries no flows", s.Name)
	}
	flows := make([]sim.FlowSpec, 0, len(tr.Flows))
	for i, tf := range tr.Flows {
		src, ok := g.NodeByName(tf.Src)
		if !ok {
			return fmt.Errorf("scenario %q: trace flow %d: no node %q in topo %s", s.Name, i, tf.Src, g.Name)
		}
		dst, ok := g.NodeByName(tf.Dst)
		if !ok {
			return fmt.Errorf("scenario %q: trace flow %d: no node %q in topo %s", s.Name, i, tf.Dst, g.Name)
		}
		flows = append(flows, sim.FlowSpec{
			ID:      tf.ID,
			Src:     src,
			Dst:     dst,
			Size:    tf.Bytes,
			RateBps: tf.RateBps,
			Start:   tf.StartNs,
		})
	}

	if tr.Meta.Kind == flowtrace.KindCBR {
		// Mirror runCBR: flow starts land on the calendar before the
		// event script, then run to the recorded end.
		n.StartFlows(flows)
		if s.SampleQueues {
			e.Every(warmup, 100_000, n.SampleQueues)
		}
		n.Inject(netEvents...)
		e.Run(tr.Meta.EndNs)
		res.Flows = len(flows)
		res.RateBps = tr.Meta.RateBps
	} else {
		// Mirror runFCT: events first, warm up, then offer the recorded
		// arrivals and drain to the recorded deadline.
		n.Inject(netEvents...)
		e.Run(warmup)
		var classes *classCollector
		if s.ClassStats {
			classes = newClassCollector(s.ElephantBytes)
			n.FlowDone = classes.add
		}
		n.StartFlows(flows)
		if s.SampleQueues {
			e.Every(warmup, 100_000, n.SampleQueues)
		}
		deadline := tr.Meta.DeadlineNs
		for e.Now() < deadline && n.CompletedFlows() < int64(len(flows)) {
			e.Run(e.Now() + 10_000_000)
		}
		res.Dist = tr.Meta.Dist
		res.Pattern = tr.Meta.Pattern
		res.Load = tr.Meta.Load
		res.Flows = len(flows)
		res.Completed = n.CompletedFlows()
		res.MeanFCT = n.FCT.Mean()
		res.P50FCT = n.FCT.Quantile(0.5)
		res.P95FCT = n.FCTQuant.Quantile(0.95)
		res.P99FCT = n.FCT.Quantile(0.99)
		if classes != nil {
			res.Classes = classes.stats()
		}
	}
	if s.RecordFlows {
		// Re-recording a replay passes the trace through (with this
		// scenario's identity), so record→replay→record is a fixpoint.
		meta := tr.Meta
		meta.Topo = res.Topo
		meta.Seed = s.Seed
		meta.Key = s.Key()
		res.FlowTrace = &flowtrace.Trace{Meta: meta, Flows: tr.Flows}
	}
	return nil
}
