package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"testing"
)

// refEngine is the historical scheduler this repo shipped before the
// calendar queue: a container/heap of closures ordered by (at, seq).
// The property test drives it and the real Engine with identical
// schedules and asserts identical execution order.
type refEngine struct {
	now   int64
	seq   uint64
	queue refHeap
}

type refEvent struct {
	at  int64
	seq uint64
	fn  func()
}

type refHeap []refEvent

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x interface{}) { *h = append(*h, x.(refEvent)) }
func (h *refHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

func (e *refEngine) At(t int64, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	heap.Push(&e.queue, refEvent{at: t, seq: e.seq, fn: fn})
}

func (e *refEngine) After(d int64, fn func()) { e.At(e.now+d, fn) }

func (e *refEngine) Every(start, period int64, fn func()) (cancel func()) {
	stopped := false
	var tick func()
	tick = func() {
		if stopped {
			return
		}
		fn()
		e.After(period, tick)
	}
	e.At(start, tick)
	return func() { stopped = true }
}

func (e *refEngine) Run(until int64) {
	for e.queue.Len() > 0 {
		ev := e.queue[0]
		if ev.at > until {
			e.now = until
			return
		}
		heap.Pop(&e.queue)
		e.now = ev.at
		ev.fn()
	}
	if e.now < until {
		e.now = until
	}
}

// scheduler is the surface the property test drives on both engines.
type scheduler interface {
	At(t int64, fn func())
	After(d int64, fn func())
	Every(start, period int64, fn func()) func()
	Run(until int64)
}

// engineAdapter narrows *Engine to the test surface.
type engineAdapter struct{ e *Engine }

func (a engineAdapter) At(t int64, fn func())    { a.e.At(t, fn) }
func (a engineAdapter) After(d int64, fn func()) { a.e.After(d, fn) }
func (a engineAdapter) Every(start, period int64, fn func()) func() {
	return a.e.Every(start, period, fn)
}
func (a engineAdapter) Run(until int64) { a.e.Run(until) }

// driveSchedule runs one randomized scenario against s and returns the
// execution trace. All randomness comes from the seeded PRNG, so both
// engines see byte-for-byte the same schedule: bursts of events at the
// same timestamp, At with past timestamps (clamped), chained After
// rescheduling from inside callbacks, recurring timers cancelled
// mid-run, and Run windows that pause between events.
func driveSchedule(s scheduler, seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	var trace []string
	record := func(tag string) { trace = append(trace, tag) }

	var spawn func(id int, depth int) func()
	spawn = func(id int, depth int) func() {
		return func() {
			record(fmt.Sprintf("ev%d@%d", id, depth))
			if depth < 3 {
				nkids := rng.Intn(3)
				for k := 0; k < nkids; k++ {
					child := id*10 + k
					switch rng.Intn(4) {
					case 0:
						s.After(int64(rng.Intn(500)), spawn(child, depth+1))
					case 1:
						// Same-timestamp burst: ties break by seq.
						s.After(0, spawn(child, depth+1))
					case 2:
						// Past timestamp: clamps to now.
						s.At(int64(rng.Intn(100)), spawn(child, depth+1))
					default:
						s.After(int64(rng.Intn(5000)), spawn(child, depth+1))
					}
				}
			}
		}
	}

	for i := 0; i < 40; i++ {
		at := int64(rng.Intn(10_000))
		if i%7 == 0 {
			at = 2500 // bursts at one instant across iterations
		}
		s.At(at, spawn(i, 0))
	}
	ticks := 0
	var cancel func()
	cancel = s.Every(100, 750, func() {
		ticks++
		record(fmt.Sprintf("tick%d", ticks))
		if ticks == 5 {
			cancel()
		}
	})
	cancel2 := s.Every(50, 300, func() { record("t2") })
	s.At(1200, func() { record("cancel2"); cancel2() })

	// Pause/resume windows exercise the cursor-restore path.
	s.Run(1000)
	s.Run(1001) // immediately re-enter with an empty window
	s.Run(6000)
	s.Run(50_000)
	return trace
}

// TestSchedulerOrderProperty drives the calendar-queue engine and the
// reference heap with identical randomized schedules and requires
// identical execution order — the invariant that keeps campaign output
// byte-stable across scheduler implementations.
func TestSchedulerOrderProperty(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		got := driveSchedule(engineAdapter{NewEngine(1)}, seed)
		want := driveSchedule(&refEngine{}, seed)
		if len(got) != len(want) {
			t.Fatalf("seed %d: trace lengths differ: engine %d, reference %d", seed, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("seed %d: execution order diverges at step %d: engine %q, reference %q",
					seed, i, got[i], want[i])
			}
		}
	}
}

// TestEveryCancelInPlace is the regression test for the stale-tick
// leak: cancelling a recurring timer must release its callback
// immediately, and the already-queued tick must drain without firing
// and free the slot for reuse.
func TestEveryCancelInPlace(t *testing.T) {
	e := NewEngine(1)
	fired := 0
	cancel := e.Every(0, 10, func() { fired++ })
	e.Run(25) // fires at t=0, 10, 20
	if fired != 3 {
		t.Fatalf("fired = %d, want 3", fired)
	}
	cancel()
	if got := e.timersInUse(); got != 0 {
		t.Fatalf("timersInUse after cancel = %d, want 0", got)
	}
	if e.timers[0].fn != nil {
		t.Fatal("cancel must release the callback immediately, not at the stale tick")
	}
	e.Run(100)
	if fired != 3 {
		t.Fatalf("cancelled timer fired again: %d", fired)
	}
	if e.Pending() != 0 {
		t.Fatalf("stale tick left %d events pending", e.Pending())
	}
	if len(e.freeTimers) != 1 {
		t.Fatalf("timer slot not freed: freelist = %v", e.freeTimers)
	}

	// The freed slot is reused under a new generation: the new timer
	// fires and the old cancel stays inert.
	fired2 := 0
	cancel2 := e.Every(e.Now()+5, 10, func() { fired2++ })
	cancel() // stale cancel of the recycled slot: must be a no-op
	e.Run(e.Now() + 16)
	if fired2 != 2 {
		t.Fatalf("recycled timer fired %d times, want 2", fired2)
	}
	cancel2()
	e.Run(e.Now() + 50)
	if fired2 != 2 {
		t.Fatalf("recycled timer fired after cancel: %d", fired2)
	}
}

// TestEveryCancelFromCallback covers a timer cancelling itself: no
// further tick is queued and the slot frees without a drain event.
func TestEveryCancelFromCallback(t *testing.T) {
	e := NewEngine(1)
	fired := 0
	var cancel func()
	cancel = e.Every(0, 10, func() {
		fired++
		if fired == 2 {
			cancel()
		}
	})
	e.Run(100)
	if fired != 2 {
		t.Fatalf("fired = %d, want 2", fired)
	}
	if e.Pending() != 0 {
		t.Fatalf("self-cancelled timer left %d events pending", e.Pending())
	}
	if len(e.freeTimers) != 1 {
		t.Fatal("self-cancelled timer slot not freed")
	}
}

// TestCalendarQueueResizeStress churns the queue through growth and
// shrink cycles with adversarial time distributions (dense bursts plus
// far-future stragglers) and checks global ordering end to end.
func TestCalendarQueueResizeStress(t *testing.T) {
	e := NewEngine(1)
	rng := rand.New(rand.NewSource(42))
	var lastAt int64 = -1
	var lastSeq int
	seq := 0
	check := func(at int64, id int) func() {
		seq++
		mySeq := seq
		return func() {
			if e.Now() != at {
				t.Fatalf("event %d executed at %d, scheduled for %d", id, e.Now(), at)
			}
			if at < lastAt {
				t.Fatalf("time went backwards: %d after %d", at, lastAt)
			}
			if at == lastAt && mySeq < lastSeq {
				t.Fatalf("tie at t=%d broke out of scheduling order", at)
			}
			lastAt, lastSeq = at, mySeq
		}
	}
	for i := 0; i < 5000; i++ {
		var at int64
		switch i % 3 {
		case 0:
			at = int64(rng.Intn(1000)) // dense near-term
		case 1:
			at = 500 // massive same-timestamp burst
		default:
			at = int64(rng.Intn(100_000_000)) // sparse far future
		}
		e.At(at, check(at, i))
	}
	e.Run(200_000_000)
	if e.Pending() != 0 {
		t.Fatalf("%d events never executed", e.Pending())
	}
}

// TestEveryFromTimerCallback grows the timer table from inside a tick:
// the firing slot must survive the reallocation (regression for a
// stale-pointer hazard in the typed-timer path).
func TestEveryFromTimerCallback(t *testing.T) {
	e := NewEngine(1)
	var spawned int
	cancel := e.Every(0, 10, func() {
		// Each tick registers more timers, forcing e.timers to grow
		// while the outer tick is mid-flight.
		for i := 0; i < 4; i++ {
			e.Every(e.Now()+1000, 1000, func() { spawned++ })
		}
	})
	e.Run(95) // 10 outer ticks, 40 spawned timers
	cancel()
	e.Run(2000)
	if spawned == 0 {
		t.Fatal("spawned timers never fired")
	}
	if got := e.timersInUse(); got != 40 {
		t.Fatalf("timersInUse = %d, want 40", got)
	}
}
