package sim

import (
	"math"
	"testing"

	"contra/internal/stats"
	"contra/internal/topo"
)

// hopRouter is a minimal static shortest-path router for tests.
type hopRouter struct {
	sw   *SwitchDev
	next map[topo.NodeID]int // destination host -> out port
}

func (r *hopRouter) Attach(sw *SwitchDev) {
	r.sw = sw
	r.next = make(map[topo.NodeID]int)
	g := sw.Net.Topo
	for _, h := range g.Hosts() {
		edge := g.HostEdge(h)
		if edge == sw.ID {
			r.next[h] = g.PortTo(sw.ID, h)
			continue
		}
		path := g.ShortestPath(sw.ID, edge)
		if path == nil {
			continue
		}
		r.next[h] = g.PortTo(sw.ID, path[1])
	}
}

func (r *hopRouter) Handle(pkt *Packet, inPort int) {
	port, ok := r.next[pkt.Dst]
	if !ok {
		r.sw.Drop(pkt, DropNoRoute)
		return
	}
	r.sw.Send(port, pkt)
}

// lineTopo: H0 - S0 - S1 - H1 with the given fabric bandwidth.
func lineTopo(bw float64) *topo.Graph {
	g := topo.New("line")
	s0 := g.AddNode("S0", topo.Switch)
	s1 := g.AddNode("S1", topo.Switch)
	h0 := g.AddNode("H0", topo.Host)
	h1 := g.AddNode("H1", topo.Host)
	g.AddLink(s0, s1, bw, 1000)
	g.AddLink(s0, h0, 10e9, 1000)
	g.AddLink(s1, h1, 10e9, 1000)
	return g
}

func runLine(t *testing.T, g *topo.Graph, flows []FlowSpec, untilNs int64) *Network {
	t.Helper()
	e := NewEngine(1)
	n := NewNetwork(e, g, Config{})
	for _, s := range g.Switches() {
		n.SetRouter(s, &hopRouter{})
	}
	n.Start()
	n.StartFlows(flows)
	e.Run(untilNs)
	n.FoldCounters()
	return n
}

func TestEngineOrderingAndEvery(t *testing.T) {
	e := NewEngine(1)
	var order []int
	e.At(100, func() { order = append(order, 2) })
	e.At(50, func() { order = append(order, 1) })
	e.At(100, func() { order = append(order, 3) }) // tie: insertion order
	ticks := 0
	cancel := e.Every(0, 10, func() { ticks++ })
	e.At(35, func() { cancel() })
	e.Run(1000)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if ticks != 4 { // t=0,10,20,30
		t.Fatalf("ticks = %d, want 4", ticks)
	}
	if e.Now() != 1000 {
		t.Fatalf("now = %d, want 1000", e.Now())
	}
}

func TestSingleFlowCompletes(t *testing.T) {
	g := lineTopo(10e9)
	flows := []FlowSpec{{
		ID: 1, Src: g.MustNode("H0"), Dst: g.MustNode("H1"),
		Size: 100_000, Start: 0,
	}}
	n := runLine(t, g, flows, 1e9)
	if n.CompletedFlows() != 1 {
		t.Fatalf("completed = %d, want 1", n.CompletedFlows())
	}
	fct := n.FCT.Quantile(0.5)
	// 100KB at 10 Gbps is 80us serialization + a few RTTs of windowing;
	// it must land well under 5ms and above the bare 80us.
	if fct < 80e-6/2 || fct > 5e-3 {
		t.Fatalf("FCT = %v s, implausible", fct)
	}
}

func TestManyFlowsAllComplete(t *testing.T) {
	g := lineTopo(10e9)
	var flows []FlowSpec
	for i := 0; i < 20; i++ {
		flows = append(flows, FlowSpec{
			ID: uint64(i + 1), Src: g.MustNode("H0"), Dst: g.MustNode("H1"),
			Size: 50_000, Start: int64(i) * 10_000,
		})
	}
	n := runLine(t, g, flows, 2e9)
	if n.CompletedFlows() != 20 {
		t.Fatalf("completed = %d, want 20", n.CompletedFlows())
	}
}

func TestBottleneckSharing(t *testing.T) {
	// Two large flows share a 1 Gbps bottleneck: each should finish in
	// roughly 2x the solo time, and total goodput should be near line
	// rate.
	g := lineTopo(1e9)
	size := int64(1_000_000)
	flows := []FlowSpec{
		{ID: 1, Src: g.MustNode("H0"), Dst: g.MustNode("H1"), Size: size, Start: 0},
		{ID: 2, Src: g.MustNode("H0"), Dst: g.MustNode("H1"), Size: size, Start: 0},
	}
	n := runLine(t, g, flows, 10e9)
	if n.CompletedFlows() != 2 {
		t.Fatalf("completed = %d, want 2", n.CompletedFlows())
	}
	// Serialized both flows: 2MB at 1Gbps = 16ms minimum.
	worst := n.FCT.Quantile(1)
	if worst < 15e-3 || worst > 200e-3 {
		t.Fatalf("worst FCT = %v s, want ~16-200ms", worst)
	}
}

func TestQueueDropsUnderOverload(t *testing.T) {
	// CBR overload: 2x line rate into a small buffer must drop.
	g := lineTopo(1e9)
	e := NewEngine(1)
	n := NewNetwork(e, g, Config{BufferBytes: 20 * 1500})
	for _, s := range g.Switches() {
		n.SetRouter(s, &hopRouter{})
	}
	n.Start()
	n.StartFlows([]FlowSpec{{
		ID: 1, Src: g.MustNode("H0"), Dst: g.MustNode("H1"), RateBps: 2e9, Start: 0,
	}})
	e.Run(20e6) // 20ms
	n.FoldCounters()
	if n.Counters.Get("drop_queue") == 0 {
		t.Fatal("expected queue drops under 2x overload")
	}
}

func TestLinkFailureDropsTraffic(t *testing.T) {
	g := lineTopo(10e9)
	e := NewEngine(1)
	n := NewNetwork(e, g, Config{})
	for _, s := range g.Switches() {
		n.SetRouter(s, &hopRouter{})
	}
	n.Start()
	l := g.LinkBetween(g.MustNode("S0"), g.MustNode("S1"))
	n.FailLink(l.ID, 1_000_000)
	n.StartFlows([]FlowSpec{{
		ID: 1, Src: g.MustNode("H0"), Dst: g.MustNode("H1"), RateBps: 1e9, Start: 0,
	}})
	e.Run(5_000_000)
	n.FoldCounters()
	if n.Counters.Get("drop_linkdown") == 0 {
		t.Fatal("expected link-down drops after failure")
	}
	// Recovery restores delivery.
	before := n.Counters.Get("drop_linkdown")
	n.RecoverLink(l.ID, e.Now())
	e.Run(e.Now() + 5_000_000)
	n.FoldCounters()
	after := n.Counters.Get("drop_linkdown")
	if after > before+1 { // in-flight packet may still count once
		t.Fatalf("drops kept growing after recovery: %v -> %v", before, after)
	}
}

func TestTxUtilReflectsLoad(t *testing.T) {
	g := lineTopo(1e9)
	e := NewEngine(1)
	n := NewNetwork(e, g, Config{DRETauNs: 100_000})
	for _, s := range g.Switches() {
		n.SetRouter(s, &hopRouter{})
	}
	n.Start()
	// Half line rate.
	n.StartFlows([]FlowSpec{{
		ID: 1, Src: g.MustNode("H0"), Dst: g.MustNode("H1"), RateBps: 0.5e9, Start: 0,
	}})
	e.Run(3_000_000)
	s0 := n.Switch(g.MustNode("S0"))
	port := g.PortTo(g.MustNode("S0"), g.MustNode("S1"))
	u := s0.TxUtil(port)
	if math.Abs(u-0.5) > 0.15 {
		t.Fatalf("TxUtil = %v, want ~0.5", u)
	}
	// Reverse direction should be idle.
	s1 := n.Switch(g.MustNode("S1"))
	rport := g.PortTo(g.MustNode("S1"), g.MustNode("S0"))
	if v := s1.TxUtil(rport); v > 0.05 {
		t.Fatalf("reverse TxUtil = %v, want ~0", v)
	}
}

func TestRetransmissionRecoversLoss(t *testing.T) {
	// Tiny buffer forces drops; the transport must still deliver all
	// bytes.
	g := lineTopo(1e9)
	e := NewEngine(1)
	n := NewNetwork(e, g, Config{BufferBytes: 8 * 1500})
	for _, s := range g.Switches() {
		n.SetRouter(s, &hopRouter{})
	}
	n.Start()
	n.StartFlows([]FlowSpec{{
		ID: 1, Src: g.MustNode("H0"), Dst: g.MustNode("H1"), Size: 3_000_000, Start: 0,
	}})
	e.Run(10e9)
	n.FoldCounters()
	if n.CompletedFlows() != 1 {
		t.Fatalf("flow did not complete; drops=%v rto=%v fast=%v",
			n.Counters.Get("drop_queue"), n.Counters.Get("rto"), n.Counters.Get("fast_retx"))
	}
	if n.Counters.Get("drop_queue") == 0 {
		t.Fatal("test expected loss to exercise retransmission")
	}
}

func TestQueueSampling(t *testing.T) {
	g := lineTopo(1e9)
	e := NewEngine(1)
	n := NewNetwork(e, g, Config{})
	for _, s := range g.Switches() {
		n.SetRouter(s, &hopRouter{})
	}
	n.Start()
	n.StartFlows([]FlowSpec{{
		ID: 1, Src: g.MustNode("H0"), Dst: g.MustNode("H1"), RateBps: 2e9, Start: 0,
	}})
	e.Every(0, 100_000, n.SampleQueues)
	e.Run(10_000_000)
	if n.QueueMSS.Len() == 0 {
		t.Fatal("no queue samples")
	}
	if n.QueueMSS.Quantile(1) <= 0 {
		t.Fatal("overloaded link should show queueing")
	}
}

func TestVisitedLoopAccounting(t *testing.T) {
	// A deliberately looping router: S0 and S1 bounce fabric packets
	// until TTL would run out; every revisit increments LoopedPkts.
	g := lineTopo(10e9)
	e := NewEngine(1)
	n := NewNetwork(e, g, Config{TrackVisited: true})
	bounce := func() Router { return &bounceRouter{} }
	for _, s := range g.Switches() {
		n.SetRouter(s, bounce())
	}
	n.Start()
	n.StartFlows([]FlowSpec{{
		ID: 1, Src: g.MustNode("H0"), Dst: g.MustNode("H1"), RateBps: 1e8, Start: 0,
	}})
	e.Run(1_000_000)
	if n.LoopedPkts == 0 {
		t.Fatal("bouncing packets should register as loops")
	}
}

type bounceRouter struct{ sw *SwitchDev }

func (r *bounceRouter) Attach(sw *SwitchDev) { r.sw = sw }
func (r *bounceRouter) Handle(pkt *Packet, inPort int) {
	if pkt.TTL == 0 {
		r.sw.Drop(pkt, DropTTL)
		return
	}
	pkt.TTL--
	// Always forward out the fabric port, ping-ponging between S0/S1.
	for p := 0; p < r.sw.PortCount(); p++ {
		if r.sw.IsSwitchPort(p) {
			r.sw.Send(p, pkt)
			return
		}
	}
	r.sw.Drop(pkt, DropNoRoute)
}

func TestCBRThroughputSeries(t *testing.T) {
	g := lineTopo(10e9)
	e := NewEngine(1)
	n := NewNetwork(e, g, Config{})
	n.RxSeries = stats.NewTimeseries(1_000_000)
	for _, s := range g.Switches() {
		n.SetRouter(s, &hopRouter{})
	}
	n.Start()
	n.StartFlows([]FlowSpec{{
		ID: 1, Src: g.MustNode("H0"), Dst: g.MustNode("H1"), RateBps: 1e9, Start: 0,
	}})
	e.Run(10_000_000)
	pts := n.RxSeries.Points()
	if len(pts) < 8 {
		t.Fatalf("series bins = %d, want >= 8", len(pts))
	}
	// Steady state bins should carry ~1 Gbps.
	mid := pts[len(pts)/2]
	rate := n.RxSeries.Rate(mid.V)
	if math.Abs(rate-1e9)/1e9 > 0.15 {
		t.Fatalf("mid-series rate = %v bps, want ~1e9", rate)
	}
}

func TestFabricBytesAccounting(t *testing.T) {
	g := lineTopo(10e9)
	n := runLine(t, g, []FlowSpec{{
		ID: 1, Src: g.MustNode("H0"), Dst: g.MustNode("H1"), Size: 100_000, Start: 0,
	}}, 1e9)
	data := n.Counters.Get("bytes_data")
	if data < 100_000 {
		t.Fatalf("fabric data bytes = %v, want >= payload", data)
	}
	if n.Counters.Get("bytes_ack") == 0 {
		t.Fatal("acks should cross the fabric")
	}
	if n.FabricBytes() <= data {
		t.Fatal("FabricBytes should include acks")
	}
}
