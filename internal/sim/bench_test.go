package sim

import (
	"testing"

	"contra/internal/topo"
)

// BenchmarkEventLoop measures raw scheduler throughput.
func BenchmarkEventLoop(b *testing.B) {
	e := NewEngine(1)
	var count int
	var tick func()
	tick = func() {
		count++
		if count < b.N {
			e.After(10, tick)
		}
	}
	e.After(0, tick)
	b.ResetTimer()
	e.Run(int64(b.N)*10 + 100)
}

// BenchmarkPacketTransit measures the full per-packet path: transmit,
// queue model, delivery, static forwarding, host receive.
func BenchmarkPacketTransit(b *testing.B) {
	g := topo.New("line")
	s0 := g.AddNode("S0", topo.Switch)
	s1 := g.AddNode("S1", topo.Switch)
	h0 := g.AddNode("H0", topo.Host)
	h1 := g.AddNode("H1", topo.Host)
	g.AddLink(s0, s1, 100e9, 1000)
	g.AddLink(s0, h0, 100e9, 1000)
	g.AddLink(s1, h1, 100e9, 1000)

	e := NewEngine(1)
	n := NewNetwork(e, g, Config{})
	for _, s := range g.Switches() {
		n.SetRouter(s, &benchRouter{})
	}
	n.Start()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := n.NewPacket()
		p.Kind = Data
		p.Size = 1500
		p.Src, p.Dst = h0, h1
		p.FlowID = 7
		p.TTL = InitialTTL
		n.transmit(h0, 0, p)
		e.Run(e.Now() + 10_000)
	}
}

type benchRouter struct{ sw *SwitchDev }

func (r *benchRouter) Attach(sw *SwitchDev) { r.sw = sw }
func (r *benchRouter) Handle(pkt *Packet, inPort int) {
	g := r.sw.Net.Topo
	if g.Node(pkt.Dst).Kind == topo.Host && g.HostEdge(pkt.Dst) == r.sw.ID {
		r.sw.DeliverLocal(pkt)
		return
	}
	for p := 0; p < r.sw.PortCount(); p++ {
		if p != inPort && r.sw.IsSwitchPort(p) {
			r.sw.Send(p, pkt)
			return
		}
	}
	r.sw.Drop(pkt, DropNoRoute)
}
