package sim

import (
	"testing"

	"contra/internal/topo"
)

// eventNet builds the H0 - S0 - S1 - H1 line with routers attached and
// returns the S0-S1 fabric link for channel-level assertions.
func eventNet(t *testing.T) (*Engine, *Network, topo.LinkID) {
	t.Helper()
	g := lineTopo(10e9)
	e := NewEngine(1)
	n := NewNetwork(e, g, Config{})
	for _, sw := range g.Switches() {
		n.SetRouter(sw, &hopRouter{next: map[topo.NodeID]int{}})
	}
	n.Start()
	mid := g.LinkBetween(g.MustNode("S0"), g.MustNode("S1"))
	return e, n, mid.ID
}

func TestInjectDownUpScale(t *testing.T) {
	e, n, mid := eventNet(t)
	n.Inject(
		NetworkEvent{At: 1000, Kind: EvLinkDown, Link: mid},
		NetworkEvent{At: 2000, Kind: EvLinkScale, Link: mid, Scale: 0.25},
		NetworkEvent{At: 2000, Kind: EvLinkUp, Link: mid},
	)
	ab, ba := &n.chans[int(mid)*2], &n.chans[int(mid)*2+1]
	if ab.down || ba.down {
		t.Fatal("link down before its event")
	}
	e.Run(1500)
	if !ab.down || !ba.down {
		t.Fatal("EvLinkDown did not take both directions down")
	}
	e.Run(2500)
	if ab.down || ba.down {
		t.Fatal("EvLinkUp did not restore the link")
	}
	want := 10e9 / 8 / 1e9 * 0.25
	if ab.bytesPerNs != want || ba.bytesPerNs != want {
		t.Fatalf("EvLinkScale rate = %v/%v, want %v", ab.bytesPerNs, ba.bytesPerNs, want)
	}
	// Scale is relative to the nominal bandwidth, not cumulative.
	n.ScaleLinkCapacity(mid, 0.5, 3000)
	e.Run(3500)
	if got, want := ab.bytesPerNs, 10e9/8/1e9*0.5; got != want {
		t.Fatalf("rescale rate = %v, want %v (relative to nominal)", got, want)
	}
	// Scale <= 0 restores nominal capacity.
	n.ScaleLinkCapacity(mid, 0, 4000)
	e.Run(4500)
	if got, want := ab.bytesPerNs, 10e9/8/1e9; got != want {
		t.Fatalf("scale<=0 rate = %v, want nominal %v", got, want)
	}
}

func TestFailRecoverLinkCompat(t *testing.T) {
	e, n, mid := eventNet(t)
	n.FailLink(mid, 100)
	n.RecoverLink(mid, 200)
	e.Run(150)
	if !n.chans[int(mid)*2].down {
		t.Fatal("FailLink did not fail the link")
	}
	e.Run(250)
	if n.chans[int(mid)*2].down {
		t.Fatal("RecoverLink did not recover the link")
	}
}

// rebootSpy is a hopRouter that records Reboot calls.
type rebootSpy struct {
	hopRouter
	reboots int
}

func (r *rebootSpy) Reboot() { r.reboots++ }

func TestNodeDownUpAndLinkStateCompose(t *testing.T) {
	g := lineTopo(10e9)
	e := NewEngine(1)
	n := NewNetwork(e, g, Config{})
	spies := map[topo.NodeID]*rebootSpy{}
	for _, sw := range g.Switches() {
		spy := &rebootSpy{}
		spies[sw] = spy
		n.SetRouter(sw, spy)
	}
	n.Start()
	s0, s1 := g.MustNode("S0"), g.MustNode("S1")
	mid := g.LinkBetween(s0, s1)
	ab := &n.chans[int(mid.ID)*2]

	n.Inject(
		NetworkEvent{At: 1000, Kind: EvNodeDown, Node: s1},
		// Link-level failure while the node is down...
		NetworkEvent{At: 2000, Kind: EvLinkDown, Link: mid.ID},
		// ...so the node's recovery must NOT revive the link.
		NetworkEvent{At: 3000, Kind: EvNodeUp, Node: s1},
		NetworkEvent{At: 4000, Kind: EvLinkUp, Link: mid.ID},
	)
	e.Run(1500)
	if !n.NodeDown(s1) {
		t.Fatal("EvNodeDown did not mark the node")
	}
	if !ab.down {
		t.Fatal("channel into the failed node is still up")
	}
	if spies[s1].reboots != 0 {
		t.Fatal("going down must not reboot")
	}
	e.Run(3500)
	if n.NodeDown(s1) {
		t.Fatal("EvNodeUp did not clear the node")
	}
	if spies[s1].reboots != 1 {
		t.Fatalf("reboots = %d after recovery, want 1", spies[s1].reboots)
	}
	if spies[s0].reboots != 0 {
		t.Fatal("a neighbor rebooted spuriously")
	}
	if !ab.down {
		t.Fatal("node recovery revived an admin-down link")
	}
	e.Run(4500)
	if ab.down {
		t.Fatal("EvLinkUp did not restore the link after both recoveries")
	}
	// Duplicate node-up is a no-op, not a second reboot.
	n.RecoverNode(s1, 5000)
	e.Run(5500)
	if spies[s1].reboots != 1 {
		t.Fatalf("duplicate recovery rebooted again: %d", spies[s1].reboots)
	}
}

func TestNodeDownDropsAreTyped(t *testing.T) {
	e, n, mid := eventNet(t)
	s1 := n.Topo.MustNode("S1")
	_ = mid
	n.FailNode(s1, 1000)
	n.StartFlows([]FlowSpec{{ID: 1, Src: n.Topo.MustNode("H0"), Dst: n.Topo.MustNode("H1"), Size: 40_000, Start: 2000}})
	e.Run(5_000_000)
	n.FoldCounters()
	if got := n.Counters.Get("drop_nodedown"); got == 0 {
		t.Fatal("transmissions toward a failed node not counted as drop_nodedown")
	}
	if got := n.Counters.Get("drop_linkdown"); got != 0 {
		t.Fatalf("node-failure drops misfiled as drop_linkdown: %v", got)
	}
}

func TestProbeLossOnlyDropsProbes(t *testing.T) {
	e, n, mid := eventNet(t)
	n.SetProbeLossSeed(9)
	n.SetProbeLoss(mid, 1.0, 0) // drop every probe on the fabric link
	// Data flow crosses the same link: must be untouched.
	n.StartFlows([]FlowSpec{{ID: 1, Src: n.Topo.MustNode("H0"), Dst: n.Topo.MustNode("H1"), Size: 40_000, Start: 1000}})
	// Inject probes by hand from S0 toward S1.
	s0 := n.Topo.MustNode("S0")
	e.At(2000, func() {
		for i := 0; i < 8; i++ {
			p := n.NewPacket()
			p.Kind = Probe
			p.Size = 64
			p.Origin = s0
			n.transmit(s0, int(n.Topo.PortTo(s0, n.Topo.MustNode("S1"))), p)
		}
	})
	e.Run(10_000_000)
	seen, dropped := n.ProbeLossStats()
	if seen != 8 || dropped != 8 {
		t.Fatalf("probe loss stats = (%d,%d), want (8,8) at rate 1.0", seen, dropped)
	}
	if n.CompletedFlows() != 1 {
		t.Fatal("probe loss affected the data flow")
	}
}
