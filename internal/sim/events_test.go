package sim

import (
	"testing"

	"contra/internal/topo"
)

// eventNet builds the H0 - S0 - S1 - H1 line with routers attached and
// returns the S0-S1 fabric link for channel-level assertions.
func eventNet(t *testing.T) (*Engine, *Network, topo.LinkID) {
	t.Helper()
	g := lineTopo(10e9)
	e := NewEngine(1)
	n := NewNetwork(e, g, Config{})
	for _, sw := range g.Switches() {
		n.SetRouter(sw, &hopRouter{next: map[topo.NodeID]int{}})
	}
	n.Start()
	mid := g.LinkBetween(g.MustNode("S0"), g.MustNode("S1"))
	return e, n, mid.ID
}

func TestInjectDownUpScale(t *testing.T) {
	e, n, mid := eventNet(t)
	n.Inject(
		NetworkEvent{At: 1000, Kind: EvLinkDown, Link: mid},
		NetworkEvent{At: 2000, Kind: EvLinkScale, Link: mid, Scale: 0.25},
		NetworkEvent{At: 2000, Kind: EvLinkUp, Link: mid},
	)
	ab, ba := &n.chans[int(mid)*2], &n.chans[int(mid)*2+1]
	if ab.down || ba.down {
		t.Fatal("link down before its event")
	}
	e.Run(1500)
	if !ab.down || !ba.down {
		t.Fatal("EvLinkDown did not take both directions down")
	}
	e.Run(2500)
	if ab.down || ba.down {
		t.Fatal("EvLinkUp did not restore the link")
	}
	want := 10e9 / 8 / 1e9 * 0.25
	if ab.bytesPerNs != want || ba.bytesPerNs != want {
		t.Fatalf("EvLinkScale rate = %v/%v, want %v", ab.bytesPerNs, ba.bytesPerNs, want)
	}
	// Scale is relative to the nominal bandwidth, not cumulative.
	n.ScaleLinkCapacity(mid, 0.5, 3000)
	e.Run(3500)
	if got, want := ab.bytesPerNs, 10e9/8/1e9*0.5; got != want {
		t.Fatalf("rescale rate = %v, want %v (relative to nominal)", got, want)
	}
	// Scale <= 0 restores nominal capacity.
	n.ScaleLinkCapacity(mid, 0, 4000)
	e.Run(4500)
	if got, want := ab.bytesPerNs, 10e9/8/1e9; got != want {
		t.Fatalf("scale<=0 rate = %v, want nominal %v", got, want)
	}
}

func TestFailRecoverLinkCompat(t *testing.T) {
	e, n, mid := eventNet(t)
	n.FailLink(mid, 100)
	n.RecoverLink(mid, 200)
	e.Run(150)
	if !n.chans[int(mid)*2].down {
		t.Fatal("FailLink did not fail the link")
	}
	e.Run(250)
	if n.chans[int(mid)*2].down {
		t.Fatal("RecoverLink did not recover the link")
	}
}
