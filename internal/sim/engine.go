// Package sim is a deterministic discrete-event, packet-level network
// simulator: the execution substrate standing in for the paper's ns-3
// setup. It models links with finite bandwidth, propagation delay and
// drop-tail queues, switches running pluggable forwarding logic (the
// Contra data plane or a baseline), hosts with a window-based AIMD
// transport, and the measurement plumbing the evaluation needs (flow
// completion times, queue length CDFs, traffic accounting, throughput
// time series, loop detection).
package sim

import (
	"container/heap"
	"math/rand"
)

// Engine is the event loop. Times are int64 nanoseconds. Execution is
// single-threaded and deterministic: ties in time break by scheduling
// order.
type Engine struct {
	now   int64
	seq   uint64
	queue eventHeap
	rng   *rand.Rand
}

// NewEngine returns an engine with a deterministic PRNG.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current simulation time in ns.
func (e *Engine) Now() int64 { return e.now }

// Rand returns the engine's deterministic PRNG.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// At schedules fn at absolute time t (>= now).
func (e *Engine) At(t int64, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	heap.Push(&e.queue, event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn d nanoseconds from now.
func (e *Engine) After(d int64, fn func()) { e.At(e.now+d, fn) }

// Every schedules fn every period ns starting at start, until the
// returned cancel function is called.
func (e *Engine) Every(start, period int64, fn func()) (cancel func()) {
	stopped := false
	var tick func()
	tick = func() {
		if stopped {
			return
		}
		fn()
		e.After(period, tick)
	}
	e.At(start, tick)
	return func() { stopped = true }
}

// Run processes events until the queue is empty or time exceeds until.
func (e *Engine) Run(until int64) {
	for e.queue.Len() > 0 {
		ev := e.queue[0]
		if ev.at > until {
			e.now = until
			return
		}
		heap.Pop(&e.queue)
		e.now = ev.at
		ev.fn()
	}
	if e.now < until {
		e.now = until
	}
}

// Pending returns the number of scheduled events (for tests).
func (e *Engine) Pending() int { return e.queue.Len() }

type event struct {
	at  int64
	seq uint64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
