// Package sim is a deterministic discrete-event, packet-level network
// simulator: the execution substrate standing in for the paper's ns-3
// setup. It models links with finite bandwidth, propagation delay and
// drop-tail queues, switches running pluggable forwarding logic (the
// Contra data plane or a baseline), hosts with a window-based AIMD
// transport, and the measurement plumbing the evaluation needs (flow
// completion times, queue length CDFs, traffic accounting, throughput
// time series, loop detection).
package sim

import (
	"math/rand"
	"sort"
)

// Engine is the event loop. Times are int64 nanoseconds. Execution is
// single-threaded and deterministic: ties in time break by scheduling
// order.
//
// Events are typed structs with inline operands on a calendar queue,
// not a heap of closures: the per-hop path (packet delivery, transport
// timers, probe ticks) schedules without allocating, which is where
// the simulator spends most of its wall time on large fabrics.
type Engine struct {
	now   int64
	seq   uint64
	queue calQueue
	rng   *rand.Rand

	// net receives typed deliver/RTO events. Set by NewNetwork; one
	// network per engine (everywhere in this repo), enforced there.
	net *Network

	// timers backs Every: recurring typed ticks that cancel in place.
	timers     []timerSlot
	freeTimers []int32
}

// timerSlot is one recurring timer. gen guards against a cancelled
// slot being recycled while its queued tick is still in flight: the
// stale tick's generation no longer matches, so it frees the slot
// without firing and without touching the new occupant.
type timerSlot struct {
	period int64
	fn     func()
	gen    uint32
	active bool
}

// evKind discriminates the typed events.
type evKind uint8

const (
	evFunc    evKind = iota // fn()
	evDeliver               // packet arrival at the far end of channel i32
	evTimer                 // recurring tick of timer slot i32 (generation u64)
	evRTO                   // transport retransmission timeout (flow, epoch u64)
)

// event is one scheduled occurrence. Operands are inline so the hot
// kinds carry no closure; fn is only populated for evFunc.
type event struct {
	at   int64
	seq  uint64
	u64  uint64 // evTimer: generation; evRTO: arm epoch
	pkt  *Packet
	flow *flowState
	fn   func()
	i32  int32 // evDeliver: channel index; evTimer: slot index
	kind evKind
}

// before is the engine's total order: time, then scheduling sequence.
func (e *event) before(o *event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// NewEngine returns an engine with a deterministic PRNG.
func NewEngine(seed int64) *Engine {
	e := &Engine{rng: rand.New(rand.NewSource(seed))}
	e.queue.init()
	return e
}

// Now returns the current simulation time in ns.
func (e *Engine) Now() int64 { return e.now }

// Rand returns the engine's deterministic PRNG.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// schedule enqueues a typed event at absolute time t (clamped to now),
// assigning the next sequence number.
func (e *Engine) schedule(t int64, ev event) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	ev.at = t
	ev.seq = e.seq
	e.queue.push(ev)
}

// At schedules fn at absolute time t (>= now).
func (e *Engine) At(t int64, fn func()) {
	e.schedule(t, event{kind: evFunc, fn: fn})
}

// After schedules fn d nanoseconds from now.
func (e *Engine) After(d int64, fn func()) { e.At(e.now+d, fn) }

// scheduleDeliver enqueues a packet arrival on directed channel ch.
func (e *Engine) scheduleDeliver(t int64, ch int32, pkt *Packet) {
	e.schedule(t, event{kind: evDeliver, i32: ch, pkt: pkt})
}

// scheduleRTO enqueues a retransmission timeout for a flow; epoch is
// the arm counter at scheduling time, so re-arming invalidates it.
func (e *Engine) scheduleRTO(t int64, st *flowState, epoch int64) {
	e.schedule(t, event{kind: evRTO, flow: st, u64: uint64(epoch)})
}

// Every schedules fn every period ns starting at start, until the
// returned cancel function is called. Cancelling releases the callback
// immediately; the already-queued tick drains as a no-op that frees
// the timer slot without firing.
func (e *Engine) Every(start, period int64, fn func()) (cancel func()) {
	var idx int32
	if n := len(e.freeTimers); n > 0 {
		idx = e.freeTimers[n-1]
		e.freeTimers = e.freeTimers[:n-1]
	} else {
		idx = int32(len(e.timers))
		e.timers = append(e.timers, timerSlot{})
	}
	slot := &e.timers[idx]
	slot.period = period
	slot.fn = fn
	slot.active = true
	gen := slot.gen
	e.schedule(start, event{kind: evTimer, i32: idx, u64: uint64(gen)})
	return func() {
		s := &e.timers[idx]
		if s.gen == gen && s.active {
			s.active = false
			s.fn = nil // release the callback now, not at the stale tick
		}
	}
}

// timersInUse counts live timer slots (tests).
func (e *Engine) timersInUse() int {
	n := 0
	for i := range e.timers {
		if e.timers[i].active {
			n++
		}
	}
	return n
}

// exec dispatches one event.
func (e *Engine) exec(ev *event) {
	switch ev.kind {
	case evFunc:
		ev.fn()
	case evDeliver:
		e.net.deliverChan(ev.i32, ev.pkt)
	case evTimer:
		slot := &e.timers[ev.i32]
		if slot.gen != uint32(ev.u64) {
			return // stale tick of a recycled slot
		}
		if !slot.active {
			// Cancelled: this queued tick is the last reference; free
			// the slot for reuse under a new generation.
			slot.gen++
			slot.fn = nil
			e.freeTimers = append(e.freeTimers, ev.i32)
			return
		}
		// Fire, then reschedule — in that order, so events the callback
		// schedules keep their historical sequence numbers (campaign
		// output is byte-compared across scheduler changes).
		slot.fn()
		// The callback may have created timers and grown e.timers;
		// re-resolve the slot before touching it again.
		slot = &e.timers[ev.i32]
		if slot.active && slot.gen == uint32(ev.u64) {
			e.schedule(e.now+slot.period, event{kind: evTimer, i32: ev.i32, u64: ev.u64})
		} else if !slot.active && slot.gen == uint32(ev.u64) {
			// Cancelled by its own callback: no tick remains queued, so
			// free the slot here.
			slot.gen++
			slot.fn = nil
			e.freeTimers = append(e.freeTimers, ev.i32)
		}
	case evRTO:
		st := ev.flow
		if st.rtoArmed != int64(ev.u64) || st.senderDone || st.done {
			return
		}
		e.net.hostOf(st.spec.Src).onRTO(st)
	}
}

// Run processes events until the queue is empty or time exceeds until.
func (e *Engine) Run(until int64) {
	for e.queue.size > 0 {
		ev, ok := e.queue.peek()
		if !ok {
			break
		}
		if ev.at > until {
			e.now = until
			// Restore the cursor invariant (no pending or future event
			// before the cursor) for events scheduled after this pause.
			e.queue.cursorTo(until)
			return
		}
		popped := e.queue.pop()
		e.now = popped.at
		e.exec(&popped)
	}
	if e.now < until {
		e.now = until
	}
}

// Pending returns the number of scheduled events (for tests).
func (e *Engine) Pending() int { return e.queue.size }

// calQueue is a calendar queue (Brown 1988): a ring of time buckets,
// each a slice sorted by (at, seq), with the dequeue cursor sweeping
// buckets in time order. Inserts append or binary-insert into one
// small bucket; dequeues pop the current bucket's head. The structure
// resizes (bucket count and width) as the event population changes, so
// both operations stay O(1) amortized with zero steady-state
// allocation — the container/heap it replaces boxed every event into
// an interface{} on push.
//
// Correctness does not depend on the width heuristic: any (at, seq)
// total order the buckets yield is the same order the old binary heap
// produced, which the scheduler property test asserts directly.
type calQueue struct {
	buckets []cqBucket
	mask    int   // len(buckets)-1; bucket count is a power of two
	width   int64 // ns of simulated time per bucket per lap
	size    int

	// Cursor: the next dequeue scans from curIdx, whose lap covers
	// times [curTop-width, curTop).
	curIdx int
	curTop int64

	lastAt  int64   // most recently dequeued time (width estimation)
	gapEWMA float64 // smoothed inter-dequeue gap

	scratch []event // resize spill buffer, reused across resizes
}

// cqBucket pops from the front via head (no memmove) and reuses its
// backing array once drained.
type cqBucket struct {
	evs  []event
	head int
}

const cqMinBuckets = 4

func (q *calQueue) init() {
	q.buckets = make([]cqBucket, cqMinBuckets)
	q.mask = cqMinBuckets - 1
	q.width = 1024
	q.cursorTo(0)
}

// cursorTo positions the sweep at time t. Callers guarantee no pending
// event and no future insert is earlier than t.
func (q *calQueue) cursorTo(t int64) {
	lap := t / q.width
	q.curIdx = int(lap) & q.mask
	q.curTop = (lap + 1) * q.width
}

// push inserts ev, keeping its bucket sorted by (at, seq).
func (q *calQueue) push(ev event) {
	b := &q.buckets[int(ev.at/q.width)&q.mask]
	n := len(b.evs)
	if n == b.head || ev.before(&b.evs[n-1]) {
		if n == b.head {
			// Empty bucket: restart at the front so head never creeps.
			b.evs = b.evs[:0]
			b.head = 0
		}
		b.evs = append(b.evs, ev)
		if n := len(b.evs); n > 1 && ev.before(&b.evs[n-2]) {
			// Out-of-order insert (rare: most events are the newest in
			// their bucket): walk back through the live region. Buckets
			// hold a handful of events, so the scan beats binary search.
			i := n - 1
			for i > b.head && ev.before(&b.evs[i-1]) {
				i--
			}
			copy(b.evs[i+1:], b.evs[i:n-1])
			b.evs[i] = ev
		}
	} else {
		b.evs = append(b.evs, ev)
	}
	q.size++
	if q.size > 2*len(q.buckets) {
		q.resize(2 * len(q.buckets))
	}
}

// peek returns a pointer to the earliest event without removing it,
// advancing the cursor to its bucket.
func (q *calQueue) peek() (*event, bool) {
	if q.size == 0 {
		return nil, false
	}
	for i := 0; i <= q.mask; i++ {
		b := &q.buckets[q.curIdx]
		if b.head < len(b.evs) && b.evs[b.head].at < q.curTop {
			return &b.evs[b.head], true
		}
		q.curIdx = (q.curIdx + 1) & q.mask
		q.curTop += q.width
	}
	// Nothing within one full lap: jump straight to the global minimum
	// (each bucket is sorted, so its head is its minimum).
	var min *event
	minIdx := 0
	for i := range q.buckets {
		b := &q.buckets[i]
		if b.head < len(b.evs) && (min == nil || b.evs[b.head].before(min)) {
			min = &b.evs[b.head]
			minIdx = i
		}
	}
	q.curIdx = minIdx
	q.curTop = (min.at/q.width + 1) * q.width
	return min, true
}

// pop removes and returns the earliest event. Must follow a successful
// peek (the cursor already points at it).
func (q *calQueue) pop() event {
	b := &q.buckets[q.curIdx]
	ev := b.evs[b.head]
	b.evs[b.head] = event{} // drop pkt/closure references promptly
	b.head++
	if b.head == len(b.evs) {
		b.evs = b.evs[:0]
		b.head = 0
	}
	q.size--
	// Width estimation: smoothed gap between consecutive dequeues.
	if gap := ev.at - q.lastAt; gap >= 0 {
		q.gapEWMA = 0.875*q.gapEWMA + 0.125*float64(gap)
	}
	q.lastAt = ev.at
	// Shrink with wide hysteresis (an eighth, not half) so a workload
	// that breathes across a size boundary — e.g. a periodic probe
	// burst draining every cycle — settles at the burst size instead
	// of resizing (and reallocating buckets) twice per period.
	if q.size < len(q.buckets)/8 && len(q.buckets) > cqMinBuckets {
		q.resize(len(q.buckets) / 2)
	}
	return ev
}

// resize rebuilds the ring with n buckets and a width matched to the
// observed event spacing, redistributing all pending events.
func (q *calQueue) resize(n int) {
	all := q.scratch[:0]
	for i := range q.buckets {
		b := &q.buckets[i]
		all = append(all, b.evs[b.head:]...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].before(&all[j]) })

	// Aim for a handful of dequeues per bucket per lap. The EWMA can
	// legitimately be 0 (same-timestamp bursts); clamp to keep width
	// positive. A bad estimate costs speed, never correctness.
	w := int64(q.gapEWMA * 4)
	if w < 1 {
		w = 1
	}
	q.width = w
	q.buckets = make([]cqBucket, n)
	q.mask = n - 1
	for _, ev := range all {
		b := &q.buckets[int(ev.at/q.width)&q.mask]
		b.evs = append(b.evs, ev) // sorted insert order is preserved
	}
	floor := q.lastAt
	if len(all) > 0 && all[0].at < floor {
		floor = all[0].at
	}
	q.cursorTo(floor)
	// Retain the spill buffer for the next resize, dropping the event
	// payload references it would otherwise pin.
	for i := range all {
		all[i] = event{}
	}
	q.scratch = all[:0]
}
