package sim

import (
	"fmt"

	"contra/internal/topo"
)

// FlowSpec describes one flow to simulate.
type FlowSpec struct {
	ID      uint64
	Src     topo.NodeID // source host
	Dst     topo.NodeID // destination host
	Size    int64       // bytes to deliver (TCP-like flows)
	Start   int64       // ns
	RateBps float64     // when > 0 the flow is constant-bit-rate UDP-like
}

// Transport constants: a NewReno-style window protocol, scaled for
// data center RTTs.
const (
	initCwnd        = 10.0
	defaultMinRTONs = 2_000_000 // 2ms: conservative, like real stacks
	initRTONs       = 4_000_000
	maxRTONs        = 100_000_000
	dupackThin      = 3
)

type flowState struct {
	spec  FlowSpec
	npkts int64

	// Sender.
	nextSeq    int64
	cumAck     int64
	cwnd       float64
	ssthresh   float64
	dupAcks    int
	srttNs     float64
	rttvarNs   float64
	rtoNs      float64
	rtoArmed   int64 // epoch of the armed timer; re-arming bumps it
	rttSeq     int64 // seq being timed, -1 if none
	rttSent    int64
	senderDone bool

	// Receiver.
	rcvBitmap []uint64
	rcvCum    int64
	rcvCount  int64
	done      bool
}

func (f *flowState) rcvHas(seq int64) bool {
	return f.rcvBitmap[seq>>6]&(1<<(uint(seq)&63)) != 0
}

func (f *flowState) rcvSet(seq int64) {
	f.rcvBitmap[seq>>6] |= 1 << (uint(seq) & 63)
}

// HostDev is an end host: it runs the sending and receiving sides of
// the transport for flows that start or end here.
type HostDev struct {
	net *Network
	id  topo.NodeID
}

// port returns the host's single uplink port (index 0).
func (h *HostDev) send(pkt *Packet) { h.net.transmit(h.id, 0, pkt) }

// StartFlows registers flows and schedules their start events.
func (n *Network) StartFlows(flows []FlowSpec) {
	for _, f := range flows {
		f := f
		if _, dup := n.flows[f.ID]; dup {
			panic(fmt.Sprintf("sim: duplicate flow id %d", f.ID))
		}
		if n.Topo.Node(f.Src).Kind != topo.Host || n.Topo.Node(f.Dst).Kind != topo.Host {
			panic("sim: flows connect hosts")
		}
		if n.Trace != nil {
			n.Trace.FlowMeta(f.ID, n.Topo.Node(f.Src).Name, n.Topo.Node(f.Dst).Name, f.Size, f.Start)
		}
		if f.RateBps > 0 {
			n.startCBR(f)
			continue
		}
		npkts := (f.Size + MSS - 1) / MSS
		if npkts == 0 {
			npkts = 1
		}
		st := &flowState{
			spec:      f,
			npkts:     npkts,
			cwnd:      initCwnd,
			ssthresh:  1 << 20,
			rtoNs:     initRTONs,
			rttSeq:    -1,
			rcvBitmap: make([]uint64, (npkts+63)/64),
		}
		n.flows[f.ID] = st
		src := n.hosts[f.Src]
		n.Eng.At(f.Start, func() { src.pump(st) })
	}
}

// startCBR emits fixed-size packets at a constant rate until the
// simulation ends (Figure 14's UDP workload).
func (n *Network) startCBR(f FlowSpec) {
	src := n.hosts[f.Src]
	size := MSS + FrameHeader
	gapNs := int64(float64(size*8) / f.RateBps * 1e9)
	if gapNs < 1 {
		gapNs = 1
	}
	var seq int64
	n.Eng.Every(f.Start, gapNs, func() {
		pkt := n.pool.get()
		pkt.Kind = Data
		pkt.Size = size
		pkt.Src, pkt.Dst = f.Src, f.Dst
		pkt.FlowID = f.ID
		pkt.Seq = seq
		pkt.TTL = InitialTTL
		pkt.Tag = -1
		seq++
		src.send(pkt)
	})
}

// pump sends as much of the window as allowed.
func (h *HostDev) pump(st *flowState) {
	if st.senderDone {
		return
	}
	for st.nextSeq < st.npkts && float64(st.nextSeq-st.cumAck) < st.cwnd {
		h.emit(st, st.nextSeq)
		if st.rttSeq < 0 {
			st.rttSeq = st.nextSeq
			st.rttSent = h.net.Eng.Now()
		}
		st.nextSeq++
	}
	h.armRTO(st)
}

func (h *HostDev) emit(st *flowState, seq int64) {
	payload := int64(MSS)
	if rem := st.spec.Size - seq*MSS; rem < payload {
		payload = rem
	}
	if payload <= 0 {
		payload = 1
	}
	pkt := h.net.pool.get()
	pkt.Kind = Data
	pkt.Size = int(payload) + FrameHeader
	pkt.Src, pkt.Dst = st.spec.Src, st.spec.Dst
	pkt.FlowID = st.spec.ID
	pkt.Seq = seq
	pkt.TTL = InitialTTL
	pkt.Tag = -1
	h.net.DataPkts++
	if h.net.Trace != nil {
		h.net.Trace.Sent(st.spec.ID, seq)
	}
	h.send(pkt)
}

func (h *HostDev) armRTO(st *flowState) {
	if st.senderDone || st.cumAck >= st.npkts {
		return
	}
	st.rtoArmed++
	// Typed timeout event: the engine re-checks the epoch at fire time,
	// so re-arming invalidates stale timers without closure state.
	h.net.Eng.scheduleRTO(h.net.Eng.Now()+int64(st.rtoNs), st, st.rtoArmed)
}

func (h *HostDev) onRTO(st *flowState) {
	// Timeout: multiplicative backoff, go-back-N from the last
	// cumulative ack.
	st.ssthresh = st.cwnd / 2
	if st.ssthresh < 2 {
		st.ssthresh = 2
	}
	st.cwnd = initCwnd / 2
	if st.cwnd < 1 {
		st.cwnd = 1
	}
	st.rtoNs *= 2
	if st.rtoNs > maxRTONs {
		st.rtoNs = maxRTONs
	}
	st.nextSeq = st.cumAck
	st.rttSeq = -1
	st.dupAcks = 0
	h.net.rtoCount++
	h.pump(st)
}

// receive dispatches an arriving packet on a host.
func (h *HostDev) receive(pkt *Packet) {
	if h.net.Trace != nil && pkt.Kind == Data {
		h.net.Trace.Delivered(pkt.FlowID, pkt.Seq, int(InitialTTL-pkt.TTL), pkt.QueueNs)
	}
	st := h.net.flows[pkt.FlowID]
	if st == nil {
		// CBR traffic or unknown: count throughput and discard.
		if pkt.Kind == Data {
			h.net.recordRx(pkt)
		}
		h.net.Free(pkt)
		return
	}
	switch pkt.Kind {
	case Data:
		h.onData(st, pkt)
	case Ack:
		h.onAck(st, pkt)
	default:
		h.net.Free(pkt)
	}
}

func (h *HostDev) onData(st *flowState, pkt *Packet) {
	h.net.recordRx(pkt)
	seq := pkt.Seq
	if seq < st.npkts && !st.rcvHas(seq) {
		st.rcvSet(seq)
		st.rcvCount++
		for st.rcvCum < st.npkts && st.rcvHas(st.rcvCum) {
			st.rcvCum++
		}
		if st.rcvCount == st.npkts && !st.done {
			st.done = true
			fct := h.net.Eng.Now() - st.spec.Start
			h.net.recordFCT(st.spec, fct)
		}
	}
	ack := h.net.pool.get()
	ack.Kind = Ack
	ack.Size = AckSize
	ack.Src, ack.Dst = st.spec.Dst, st.spec.Src
	ack.FlowID = st.spec.ID
	ack.Seq = seq
	ack.Ack = st.rcvCum
	ack.TTL = InitialTTL
	ack.Tag = -1
	h.net.Free(pkt)
	h.send(ack)
}

func (h *HostDev) onAck(st *flowState, pkt *Packet) {
	defer h.net.Free(pkt)
	if st.senderDone {
		return
	}
	// RTT sampling (Karn: only the untouched timed segment).
	if st.rttSeq >= 0 && pkt.Ack > st.rttSeq {
		sample := float64(h.net.Eng.Now() - st.rttSent)
		if st.srttNs == 0 {
			st.srttNs = sample
			st.rttvarNs = sample / 2
		} else {
			d := sample - st.srttNs
			if d < 0 {
				d = -d
			}
			st.rttvarNs = 0.75*st.rttvarNs + 0.25*d
			st.srttNs = 0.875*st.srttNs + 0.125*sample
		}
		st.rtoNs = st.srttNs + 4*st.rttvarNs
		if st.rtoNs < h.net.minRTO() {
			st.rtoNs = h.net.minRTO()
		}
		st.rttSeq = -1
	}
	if pkt.Ack > st.cumAck {
		newly := pkt.Ack - st.cumAck
		st.cumAck = pkt.Ack
		st.dupAcks = 0
		for i := int64(0); i < newly; i++ {
			if st.cwnd < st.ssthresh {
				st.cwnd++
			} else {
				st.cwnd += 1 / st.cwnd
			}
		}
		if st.cumAck >= st.npkts {
			st.senderDone = true
			st.rtoArmed++ // disarm
			return
		}
		h.pump(st)
		return
	}
	// Duplicate cumulative ack.
	st.dupAcks++
	if st.dupAcks == dupackThin {
		st.ssthresh = st.cwnd / 2
		if st.ssthresh < 2 {
			st.ssthresh = 2
		}
		st.cwnd = st.ssthresh
		st.dupAcks = 0
		h.net.fastRetx++
		h.emit(st, st.cumAck) // retransmit the missing segment
		h.armRTO(st)
	}
}

func (n *Network) recordRx(pkt *Packet) {
	if n.RxSeries != nil {
		n.RxSeries.Add(n.Eng.Now(), float64(pkt.Size))
	}
	if n.OnHostRx != nil {
		n.OnHostRx(pkt)
	}
}

func (n *Network) recordFCT(f FlowSpec, fctNs int64) {
	sec := float64(fctNs) / 1e9
	n.FCT.Add(sec)
	n.FCTQuant.Add(sec)
	if f.Size < 100_000 {
		n.FCTSmall.Add(sec)
	}
	if f.Size >= 1_000_000 {
		n.FCTLarge.Add(sec)
	}
	n.flowsDone++
	if n.Trace != nil {
		n.Trace.Done(f.ID, fctNs)
	}
	if n.FlowDone != nil {
		n.FlowDone(f, fctNs)
	}
}

// CompletedFlows returns the number of finished flows.
func (n *Network) CompletedFlows() int64 { return n.flowsDone }
