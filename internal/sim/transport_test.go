package sim

import (
	"testing"

	"contra/internal/topo"
)

func TestMinRTOGovernsLossRecovery(t *testing.T) {
	// A tail drop with no following traffic can only be repaired by
	// the retransmission timer, so the flow's completion time is at
	// least the configured minimum RTO.
	run := func(minRTO int64) float64 {
		g := lineTopo(1e9)
		e := NewEngine(1)
		n := NewNetwork(e, g, Config{BufferBytes: 4 * 1500, MinRTONs: minRTO})
		for _, s := range g.Switches() {
			n.SetRouter(s, &hopRouter{})
		}
		n.Start()
		n.StartFlows([]FlowSpec{{
			ID: 1, Src: g.MustNode("H0"), Dst: g.MustNode("H1"), Size: 400_000, Start: 0,
		}})
		e.Run(30e9)
		if n.CompletedFlows() != 1 {
			t.Fatalf("flow incomplete at minRTO=%d", minRTO)
		}
		return n.FCT.Quantile(1)
	}
	fast := run(300_000)   // 300us floor
	slow := run(8_000_000) // 8ms floor
	if slow <= fast {
		t.Fatalf("larger min RTO should slow lossy flows: %.3fms vs %.3fms",
			slow*1e3, fast*1e3)
	}
}

func TestDefaultMinRTOApplied(t *testing.T) {
	e := NewEngine(1)
	n := NewNetwork(e, lineTopo(1e9), Config{})
	if n.Cfg.MinRTONs != defaultMinRTONs {
		t.Fatalf("default min RTO = %d, want %d", n.Cfg.MinRTONs, defaultMinRTONs)
	}
}

func TestPacketPoolReuse(t *testing.T) {
	g := lineTopo(10e9)
	e := NewEngine(1)
	n := NewNetwork(e, g, Config{})
	p1 := n.NewPacket()
	p1.FlowID = 42
	p1.Visited = 0xff
	n.Free(p1)
	p2 := n.NewPacket()
	if p2.FlowID != 0 || p2.Visited != 0 {
		t.Fatal("pooled packet not zeroed on reuse")
	}
	if p2 != p1 {
		t.Fatal("pool did not reuse the freed packet")
	}
	// Clone copies every field but detaches from the freelist.
	p2.FlowID = 7
	p2.Seq = 9
	c := n.Clone(p2)
	if c.FlowID != 7 || c.Seq != 9 {
		t.Fatal("clone lost fields")
	}
	if c == p2 {
		t.Fatal("clone returned the same packet")
	}
}

func TestLastPacketShorterThanMSS(t *testing.T) {
	// A 1 byte flow still completes, with a single small packet.
	g := lineTopo(10e9)
	n := runLine(t, g, []FlowSpec{{
		ID: 1, Src: g.MustNode("H0"), Dst: g.MustNode("H1"), Size: 1, Start: 0,
	}}, 1e9)
	if n.CompletedFlows() != 1 {
		t.Fatal("tiny flow incomplete")
	}
}

func TestManySimultaneousSmallFlows(t *testing.T) {
	g := lineTopo(10e9)
	var flows []FlowSpec
	for i := 0; i < 200; i++ {
		flows = append(flows, FlowSpec{
			ID: uint64(i + 1), Src: g.MustNode("H0"), Dst: g.MustNode("H1"),
			Size: 3000, Start: 0,
		})
	}
	n := runLine(t, g, flows, 5e9)
	if n.CompletedFlows() != 200 {
		t.Fatalf("completed %d/200", n.CompletedFlows())
	}
}

func TestDuplicateFlowIDPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate flow id")
		}
	}()
	g := lineTopo(10e9)
	e := NewEngine(1)
	n := NewNetwork(e, g, Config{})
	for _, s := range g.Switches() {
		n.SetRouter(s, &hopRouter{})
	}
	n.Start()
	n.StartFlows([]FlowSpec{
		{ID: 1, Src: g.MustNode("H0"), Dst: g.MustNode("H1"), Size: 100, Start: 0},
		{ID: 1, Src: g.MustNode("H0"), Dst: g.MustNode("H1"), Size: 100, Start: 0},
	})
}

var _ = topo.Switch // keep the import if cases above change
