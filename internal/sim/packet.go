package sim

import (
	"contra/internal/topo"
)

// Kind classifies packets.
type Kind uint8

// Packet kinds.
const (
	Data Kind = iota
	Ack
	Probe
)

// Header sizes in bytes. Data and ack packets pay Ethernet+IP+TCP-ish
// framing; schemes that tag packets (Contra, SPAIN) pay TagHeaderBytes
// extra, which the traffic-overhead accounting of Figure 16 captures.
const (
	MSS            = 1460
	FrameHeader    = 58 // 14 eth + 20 ip + 20 tcp + 4 fcs
	AckSize        = FrameHeader + 6
	TagHeaderBytes = 4
	InitialTTL     = 64
)

// Packet is the single on-wire unit. One struct serves data, acks and
// probes to keep the hot path free of interface dispatch and type
// switches (a packet arrives every few hundred ns of simulated time).
type Packet struct {
	Kind Kind
	Size int // total bytes on the wire

	// Flow addressing: hosts for data/acks.
	Src, Dst topo.NodeID
	FlowID   uint64
	Seq      int64 // packet sequence within the flow (data), or echoed seq (ack)
	Ack      int64 // cumulative ack: next expected packet seq
	TTL      uint8

	// Scheme fields: Contra tag/pid, SPAIN vlan (in Tag), Hula origin.
	Tag    int32 // product-graph virtual node id, or -1
	Pid    uint8
	HasTag bool
	// Era is the policy generation the tag/pid/MV were computed under.
	// A runtime policy swap bumps the fleet era; packets and probes
	// stamped with a superseded era carry tags whose meaning changed,
	// so routers re-route (data) or discard (probes) them instead of
	// misinterpreting the stale tag space.
	Era uint8

	// Probe fields.
	Origin  topo.NodeID // destination switch the probe advertises
	Version uint32
	Up      bool       // Hula: probe still traveling upward
	MV      [4]float64 // metric vector, laid out per the compiled policy

	// Diagnostics.
	Hops    uint8
	Visited uint64 // bitmask of visited switches (loop accounting, <=64 switches)

	next *Packet // freelist
}

// pool is a trivial freelist; the simulator is single-threaded.
type pool struct{ head *Packet }

func (p *pool) get() *Packet {
	if p.head == nil {
		return &Packet{}
	}
	pkt := p.head
	p.head = pkt.next
	*pkt = Packet{}
	return pkt
}

func (p *pool) put(pkt *Packet) {
	pkt.next = p.head
	p.head = pkt
}

// NewPacket returns a zeroed packet from the pool.
func (n *Network) NewPacket() *Packet { return n.pool.get() }

// Clone copies a packet (for multicast).
func (n *Network) Clone(pkt *Packet) *Packet {
	c := n.pool.get()
	*c = *pkt
	c.next = nil
	return c
}

// Free returns a packet to the pool. Devices must not retain packets
// after freeing.
func (n *Network) Free(pkt *Packet) { n.pool.put(pkt) }
