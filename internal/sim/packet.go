package sim

import (
	"contra/internal/topo"
)

// Kind classifies packets.
type Kind uint8

// Packet kinds.
const (
	Data Kind = iota
	Ack
	Probe
)

// Header sizes in bytes. Data and ack packets pay Ethernet+IP+TCP-ish
// framing; schemes that tag packets (Contra, SPAIN) pay TagHeaderBytes
// extra, which the traffic-overhead accounting of Figure 16 captures.
const (
	MSS            = 1460
	FrameHeader    = 58 // 14 eth + 20 ip + 20 tcp + 4 fcs
	AckSize        = FrameHeader + 6
	TagHeaderBytes = 4
	InitialTTL     = 64
)

// ProbeEntry is one origin's advertisement inside a packed probe: the
// per-origin fields a standalone probe would carry in its own frame.
// Packing amortizes the L2 framing and — far more importantly — the
// per-packet event cost across every origin a switch re-advertises on
// a port in the same probe period (§5.2: probe volume dominates at
// fattree scale).
type ProbeEntry struct {
	Origin  topo.NodeID // destination switch the entry advertises
	Tag     int32       // sender's product-graph virtual node
	Version uint32
	Pid     uint8
	Up      bool       // HULA packed propagation state (still traveling upward)
	MV      [4]float64 // metric vector, laid out per the compiled policy
}

// Packet is the single on-wire unit. One struct serves data, acks and
// probes to keep the hot path free of interface dispatch and type
// switches (a packet arrives every few hundred ns of simulated time).
type Packet struct {
	Kind Kind
	Size int // total bytes on the wire

	// Flow addressing: hosts for data/acks.
	Src, Dst topo.NodeID
	FlowID   uint64
	Seq      int64 // packet sequence within the flow (data), or echoed seq (ack)
	Ack      int64 // cumulative ack: next expected packet seq
	TTL      uint8

	// Scheme fields: Contra tag/pid, SPAIN vlan (in Tag), Hula origin.
	Tag    int32 // product-graph virtual node id, or -1
	Pid    uint8
	HasTag bool
	// Era is the policy generation the tag/pid/MV were computed under.
	// A runtime policy swap bumps the fleet era; packets and probes
	// stamped with a superseded era carry tags whose meaning changed,
	// so routers re-route (data) or discard (probes) them instead of
	// misinterpreting the stale tag space.
	Era uint8

	// Probe fields.
	Origin  topo.NodeID // destination switch the probe advertises
	Version uint32
	Up      bool       // Hula: probe still traveling upward
	MV      [4]float64 // metric vector, laid out per the compiled policy

	// Packed multi-origin probe (probe packing, §5.2 overhead
	// reduction): when IsPacked is set, the per-origin probe fields
	// above are unused and Packed carries one entry per advertised
	// origin. An empty Packed with IsPacked set is a heartbeat: it
	// refreshes port liveness without advertising anything. The slice's
	// backing array survives pool recycling, so steady-state packed
	// fan-out allocates nothing.
	IsPacked bool
	Packed   []ProbeEntry

	// Diagnostics.
	Hops    uint8
	Visited uint64 // bitmask of visited switches (loop accounting, <=64 switches)
	// QueueNs accumulates the queueing delay this packet waited across
	// its path. Only maintained while a trace recorder is attached;
	// pool recycling zeroes it like every other field.
	QueueNs int64

	next *Packet // freelist
}

// pool is a trivial freelist; the simulator is single-threaded.
type pool struct{ head *Packet }

func (p *pool) get() *Packet {
	if p.head == nil {
		return &Packet{}
	}
	pkt := p.head
	p.head = pkt.next
	// Zero the packet but keep the packed-entry backing array: packed
	// probe fan-out reuses it instead of allocating per period.
	packed := pkt.Packed[:0]
	*pkt = Packet{}
	pkt.Packed = packed
	return pkt
}

func (p *pool) put(pkt *Packet) {
	pkt.next = p.head
	p.head = pkt
}

// NewPacket returns a zeroed packet from the pool.
func (n *Network) NewPacket() *Packet { return n.pool.get() }

// Clone copies a packet (for multicast). Packed entries are copied
// into the clone's own backing array, never aliased.
func (n *Network) Clone(pkt *Packet) *Packet {
	c := n.pool.get()
	packed := c.Packed
	*c = *pkt
	c.next = nil
	c.Packed = append(packed[:0], pkt.Packed...)
	return c
}

// Free returns a packet to the pool. Devices must not retain packets
// after freeing.
func (n *Network) Free(pkt *Packet) { n.pool.put(pkt) }
