package sim

import "contra/internal/topo"

// EventKind names a scripted network event.
type EventKind uint8

// Network event kinds.
const (
	// EvLinkDown takes both directions of a link down.
	EvLinkDown EventKind = iota
	// EvLinkUp restores a failed link.
	EvLinkUp
	// EvLinkScale multiplies a link's nominal bandwidth by Scale in
	// both directions (degradation when Scale < 1, upgrade when > 1).
	// The drop-tail buffer is unchanged: a degraded link drains its
	// backlog at the reduced rate, which is what makes degradation
	// visible to utilization-aware schemes.
	EvLinkScale
	// EvNodeDown fails a whole node: every channel touching it goes
	// dark in both directions, packets in flight toward it are lost,
	// and anything the node transmits (including probes its timers
	// keep emitting) is dropped at the port. Link-level admin state is
	// preserved underneath, so a node recovery never resurrects a link
	// that was independently failed with EvLinkDown.
	EvNodeDown
	// EvNodeUp reboots a failed node: its channels come back (unless
	// admin-down or the far endpoint is still down) and, if the node's
	// router implements Rebooter, its forwarding/probe state is
	// flushed so the control plane must warm back up — a reboot, not a
	// blip.
	EvNodeUp
	// EvProbeLoss sets a probabilistic probe-drop rate on both
	// directions of a link (Rate in [0,1]; 0 clears). Only Probe-kind
	// packets are affected: the event models noisy measurement, not
	// data loss. Draws come from the network's dedicated loss RNG
	// (SetProbeLossSeed), so the noise is deterministic per seed and
	// independent of every other randomness consumer.
	EvProbeLoss
)

// NetworkEvent is one entry of a timed event script: at absolute
// simulation time At, apply Kind to Link or Node. Events execute inside
// the deterministic event loop, so a script replays identically for a
// given engine seed regardless of host scheduling.
type NetworkEvent struct {
	At    int64
	Kind  EventKind
	Link  topo.LinkID
	Node  topo.NodeID // EvNodeDown / EvNodeUp
	Scale float64     // EvLinkScale only
	Rate  float64     // EvProbeLoss only
}

// Rebooter is the optional router seam node recovery uses: a router
// that implements it has its soft state (forwarding tables, probe
// freshness, flowlet pins) flushed when its switch comes back up, so
// recovery pays a realistic warm-up instead of resuming with tables
// frozen at failure time.
type Rebooter interface {
	Reboot()
}

// Inject schedules a timed event script. It may be called any time
// before or during the run; events in the past execute immediately
// (the engine clamps to now), preserving scheduling order.
func (n *Network) Inject(events ...NetworkEvent) {
	for _, ev := range events {
		ev := ev
		n.Eng.At(ev.At, func() { n.apply(ev) })
	}
}

// apply executes one event against the channel state.
func (n *Network) apply(ev NetworkEvent) {
	switch ev.Kind {
	case EvLinkDown, EvLinkUp:
		a, b := &n.chans[int(ev.Link)*2], &n.chans[int(ev.Link)*2+1]
		a.adminDown = ev.Kind == EvLinkDown
		b.adminDown = a.adminDown
		n.refreshDown(a)
		n.refreshDown(b)
	case EvLinkScale:
		a, b := &n.chans[int(ev.Link)*2], &n.chans[int(ev.Link)*2+1]
		scale := ev.Scale
		if scale <= 0 {
			scale = 1
		}
		rate := n.Topo.Link(ev.Link).Bandwidth / 8 / 1e9 * scale
		a.bytesPerNs, b.bytesPerNs = rate, rate
	case EvNodeDown, EvNodeUp:
		n.applyNode(ev.Node, ev.Kind == EvNodeDown)
	case EvProbeLoss:
		rate := ev.Rate
		if rate < 0 {
			rate = 0
		}
		if rate > 1 {
			rate = 1
		}
		n.chans[int(ev.Link)*2].probeLoss = rate
		n.chans[int(ev.Link)*2+1].probeLoss = rate
		if rate > 0 {
			n.probeLossOn = true
			if n.lossRng == nil {
				// A loss event without an explicit seed still needs a
				// deterministic source; derive one from nothing so the
				// run stays reproducible.
				n.SetProbeLossSeed(1)
			}
		}
	}
}

// applyNode fails or recovers a whole node: every channel touching it
// recomputes its effective down state, and a recovery flushes the
// router's soft state through the Rebooter seam.
func (n *Network) applyNode(node topo.NodeID, down bool) {
	if n.nodeDown[node] == down {
		return // duplicate event: nothing to do, and no spurious reboot
	}
	n.nodeDown[node] = down
	for _, chIdx := range n.portChan[node] {
		ch := &n.chans[chIdx]
		n.refreshDown(ch)
		// The reverse direction shares the link: linkID*2 ^ 1.
		rev := &n.chans[chIdx^1]
		n.refreshDown(rev)
	}
	if !down {
		if sw := n.switches[node]; sw != nil && sw.router != nil {
			if r, ok := sw.router.(Rebooter); ok {
				r.Reboot()
			}
		}
	}
}

// refreshDown recomputes a channel's effective down state from its
// admin flag and both endpoints' node state.
func (n *Network) refreshDown(ch *channel) {
	ch.down = ch.adminDown || n.nodeDown[ch.from] || n.nodeDown[ch.to]
}

// NodeDown reports whether a node is currently failed (tests and the
// chaos monitor).
func (n *Network) NodeDown(id topo.NodeID) bool { return n.nodeDown[id] }

// FailLink marks both directions of a link down at time t.
func (n *Network) FailLink(id topo.LinkID, at int64) {
	n.Inject(NetworkEvent{At: at, Kind: EvLinkDown, Link: id})
}

// RecoverLink brings a link back up at time t.
func (n *Network) RecoverLink(id topo.LinkID, at int64) {
	n.Inject(NetworkEvent{At: at, Kind: EvLinkUp, Link: id})
}

// ScaleLinkCapacity multiplies a link's nominal bandwidth by scale at
// time t (both directions).
func (n *Network) ScaleLinkCapacity(id topo.LinkID, scale float64, at int64) {
	n.Inject(NetworkEvent{At: at, Kind: EvLinkScale, Link: id, Scale: scale})
}

// FailNode takes a whole node down at time t.
func (n *Network) FailNode(id topo.NodeID, at int64) {
	n.Inject(NetworkEvent{At: at, Kind: EvNodeDown, Node: id})
}

// RecoverNode reboots a failed node at time t.
func (n *Network) RecoverNode(id topo.NodeID, at int64) {
	n.Inject(NetworkEvent{At: at, Kind: EvNodeUp, Node: id})
}

// SetProbeLoss sets the probe-drop rate of a link at time t (both
// directions; rate 0 clears).
func (n *Network) SetProbeLoss(id topo.LinkID, rate float64, at int64) {
	n.Inject(NetworkEvent{At: at, Kind: EvProbeLoss, Link: id, Rate: rate})
}
