package sim

import "contra/internal/topo"

// EventKind names a scripted network event.
type EventKind uint8

// Network event kinds.
const (
	// EvLinkDown takes both directions of a link down.
	EvLinkDown EventKind = iota
	// EvLinkUp restores a failed link.
	EvLinkUp
	// EvLinkScale multiplies a link's nominal bandwidth by Scale in
	// both directions (degradation when Scale < 1, upgrade when > 1).
	// The drop-tail buffer is unchanged: a degraded link drains its
	// backlog at the reduced rate, which is what makes degradation
	// visible to utilization-aware schemes.
	EvLinkScale
)

// NetworkEvent is one entry of a timed event script: at absolute
// simulation time At, apply Kind to Link. Events execute inside the
// deterministic event loop, so a script replays identically for a
// given engine seed regardless of host scheduling.
type NetworkEvent struct {
	At    int64
	Kind  EventKind
	Link  topo.LinkID
	Scale float64 // EvLinkScale only
}

// Inject schedules a timed event script. It may be called any time
// before or during the run; events in the past execute immediately
// (the engine clamps to now), preserving scheduling order.
func (n *Network) Inject(events ...NetworkEvent) {
	for _, ev := range events {
		ev := ev
		n.Eng.At(ev.At, func() { n.apply(ev) })
	}
}

// apply executes one event against the channel state.
func (n *Network) apply(ev NetworkEvent) {
	a, b := &n.chans[int(ev.Link)*2], &n.chans[int(ev.Link)*2+1]
	switch ev.Kind {
	case EvLinkDown:
		a.down, b.down = true, true
	case EvLinkUp:
		a.down, b.down = false, false
	case EvLinkScale:
		scale := ev.Scale
		if scale <= 0 {
			scale = 1
		}
		rate := n.Topo.Link(ev.Link).Bandwidth / 8 / 1e9 * scale
		a.bytesPerNs, b.bytesPerNs = rate, rate
	}
}

// FailLink marks both directions of a link down at time t.
func (n *Network) FailLink(id topo.LinkID, at int64) {
	n.Inject(NetworkEvent{At: at, Kind: EvLinkDown, Link: id})
}

// RecoverLink brings a link back up at time t.
func (n *Network) RecoverLink(id topo.LinkID, at int64) {
	n.Inject(NetworkEvent{At: at, Kind: EvLinkUp, Link: id})
}

// ScaleLinkCapacity multiplies a link's nominal bandwidth by scale at
// time t (both directions).
func (n *Network) ScaleLinkCapacity(id topo.LinkID, scale float64, at int64) {
	n.Inject(NetworkEvent{At: at, Kind: EvLinkScale, Link: id, Scale: scale})
}
