package sim

import (
	"fmt"
	"math/rand"

	"contra/internal/metrics"
	"contra/internal/stats"
	"contra/internal/topo"
	"contra/internal/trace"
)

// Config tunes the network model.
type Config struct {
	// BufferBytes is the per-direction link buffer; the paper uses
	// 1000 MSS (§6.3).
	BufferBytes int

	// DRETauNs is the utilization estimator time constant.
	DRETauNs float64

	// TrackVisited enables per-packet visited-switch bitmasks for loop
	// accounting (topologies up to 64 switches).
	TrackVisited bool

	// MinRTONs is the transport's minimum retransmission timeout;
	// 0 uses the conservative 2ms default of real TCP stacks. Packet
	// loss costs roughly this much, which is what makes congestion
	// expensive and load-aware routing valuable.
	MinRTONs int64
}

func (c *Config) fill() {
	if c.BufferBytes == 0 {
		c.BufferBytes = 1000 * 1500
	}
	if c.DRETauNs == 0 {
		c.DRETauNs = 200_000 // 200us, CONGA/HULA-style smoothing
	}
	if c.MinRTONs == 0 {
		c.MinRTONs = defaultMinRTONs
	}
}

// minRTO returns the configured transport floor.
func (n *Network) minRTO() float64 { return float64(n.Cfg.MinRTONs) }

// DropReason classifies discarded packets. Typed reasons keep the
// per-drop cost at an array increment; FoldCounters translates them to
// the historical string labels at run end.
type DropReason uint8

// Drop reasons.
const (
	DropQueue            DropReason = iota // drop-tail queue overflow
	DropLinkDown                           // transmit on / in flight over a down link
	DropTTL                                // TTL expired
	DropNoRoute                            // no usable forwarding entry
	DropNoHost                             // destination host unknown
	DropNoLocal                            // no local port for the destination
	DropProbeNoTrans                       // probe tag without a product-graph transition
	DropProbeUnsupported                   // scheme does not process probes
	DropNodeDown                           // endpoint node failed (switch_down)
	DropProbeLoss                          // injected probabilistic probe loss
	DropProbeStale                         // probe from a superseded policy era
	numDropReasons
)

var dropLabels = [numDropReasons]string{
	"drop_queue", "drop_linkdown", "drop_ttl", "drop_noroute",
	"drop_nohost", "drop_nolocal", "drop_probe_notrans", "drop_probe_unsupported",
	"drop_nodedown", "drop_probeloss", "drop_probe_stale",
}

// Router is the forwarding logic attached to a switch: the Contra data
// plane or one of the baselines. Handle owns the packet: it must either
// forward it via sw.Send, deliver it via sw.DeliverLocal, or drop it
// via sw.Drop.
type Router interface {
	Attach(sw *SwitchDev) // called once before the simulation starts
	Handle(pkt *Packet, inPort int)
}

// channel is one direction of a link: a rate limiter with a drop-tail
// virtual queue, a propagation delay, and a DRE utilization estimator.
// The delivery metadata (receiving device, ingress port) is resolved
// once in NewNetwork so the per-packet path never consults maps or
// scans port lists.
type channel struct {
	from, to   topo.NodeID
	bytesPerNs float64
	delayNs    int64
	capBytes   float64
	busyUntil  int64
	down       bool // effective: adminDown or either endpoint node failed
	adminDown  bool // link-level admin state (link_down / pre-failed topology)
	probeLoss  float64
	dre        *stats.DRE
	fabric     bool // switch-switch (vs host-attach) link

	toSwitch *SwitchDev // receiving switch, nil when to is a host
	toHost   *HostDev   // receiving host, nil when to is a switch
	inPort   int32      // ingress port index at to (switch delivery)

	txBytes   float64
	drops     int64
	dropBytes float64
}

// queuedBytes returns the backlog at time t.
func (ch *channel) queuedBytes(t int64) float64 {
	if ch.busyUntil <= t {
		return 0
	}
	return float64(ch.busyUntil-t) * ch.bytesPerNs
}

// Network couples an Engine with a topology instance: devices, links,
// and measurement.
type Network struct {
	Eng  *Engine
	Topo *topo.Graph
	Cfg  Config

	// Dense per-node device tables indexed by topo.NodeID (nil where
	// the node is the other kind).
	switches []*SwitchDev
	hosts    []*HostDev
	chans    []channel     // 2 per link: linkID*2 (A->B), linkID*2+1 (B->A)
	portChan [][]int32     // node -> local port -> directed channel index
	hostPort []int32       // host -> port index on its edge switch, -1 otherwise
	hostEdge []topo.NodeID // host -> its edge switch, -1 otherwise
	nodeDown []bool        // node-level failure state (EvNodeDown/EvNodeUp)

	// Probe-loss injection: a dedicated deterministic RNG, decoupled
	// from the engine's so arming loss never perturbs any other
	// randomness consumer; probeLossOn gates the per-delivery check so
	// runs without loss pay nothing.
	lossRng        *rand.Rand
	probeLossOn    bool
	probeLossSeen  int64 // probes offered to lossy channels
	probeLossDrops int64 // probes discarded by injected loss

	pool  pool
	flows map[uint64]*flowState

	// Hot-path accounting: typed fields bumped per packet, folded into
	// the string-keyed Counters by FoldCounters at run end.
	txData      float64
	txAck       float64
	txProbe     float64
	tagOverhead float64
	dropCounts  [numDropReasons]int64
	dropData    float64
	rtoCount    int64
	fastRetx    int64
	flowsDone   int64

	// Probe aggregation accounting (typed, folded at run end):
	// probeTxSaved counts on-wire probe transmissions avoided by
	// multi-origin packing; probeSuppressed counts per-origin
	// re-advertisements skipped by delta suppression.
	probeTxSaved    int64
	probeSuppressed int64

	// Measurement.
	Counters *stats.Counter
	FCT      *stats.Sample // seconds, all completed flows
	// FCTQuant tracks p50/p95/p99 FCT in O(1) memory via the P²
	// streaming estimator, fed in lockstep with the exact Sample:
	// p95 is reported from here today; p50/p99 are tracked so the
	// unbounded Sample can be retired from the quantile path without
	// changing this type's surface.
	FCTQuant   *stats.Quantiles
	FCTSmall   *stats.Sample // flows < 100KB
	FCTLarge   *stats.Sample // flows >= 1MB
	QueueMSS   *stats.Sample // sampled fabric queue lengths in MSS
	RxSeries   *stats.Timeseries
	LoopedPkts int64
	DataPkts   int64

	// Trace, when set, receives per-flow path/queueing/FCT summaries
	// for every data packet (routers additionally feed it forwarding
	// decisions at the decisions level). Nil means tracing is off, and
	// every hook site gates on that nil so the hot path pays one
	// pointer check and stays byte-identical.
	Trace *trace.Recorder

	// Metrics, when set, receives periodic network-state samples (link
	// utilization/backlog/drops plus drop-reason totals) from
	// SampleMetrics. Nil means telemetry is off; the sampler is never
	// scheduled and no hook costs more than a pointer check.
	Metrics *metrics.Recorder

	// FlowDone, when set, fires on each flow completion.
	FlowDone func(f FlowSpec, fctNs int64)

	// OnHostRx, when set, observes every data packet arriving at a
	// host (policy-compliance assertions in tests use the Visited
	// bitmask).
	OnHostRx func(pkt *Packet)
}

// NewNetwork builds the device and channel state for a topology. Call
// SetRouter for every switch, then Start.
func NewNetwork(e *Engine, g *topo.Graph, cfg Config) *Network {
	cfg.fill()
	if e.net != nil {
		panic("sim: engine already drives a network")
	}
	n := &Network{
		Eng:      e,
		Topo:     g,
		Cfg:      cfg,
		switches: make([]*SwitchDev, g.NumNodes()),
		hosts:    make([]*HostDev, g.NumNodes()),
		chans:    make([]channel, 2*g.NumLinks()),
		hostPort: make([]int32, g.NumNodes()),
		hostEdge: make([]topo.NodeID, g.NumNodes()),
		nodeDown: make([]bool, g.NumNodes()),
		flows:    make(map[uint64]*flowState),
		Counters: stats.NewCounter(),
		FCT:      stats.NewSample(),
		FCTQuant: stats.NewQuantiles(0.5, 0.95, 0.99),
		FCTSmall: stats.NewSample(),
		FCTLarge: stats.NewSample(),
		QueueMSS: stats.NewReservoir(1<<16, 11),
	}
	e.net = n
	for _, node := range g.Nodes() {
		n.hostPort[node.ID] = -1
		n.hostEdge[node.ID] = -1
		switch node.Kind {
		case topo.Switch:
			n.switches[node.ID] = &SwitchDev{Net: n, ID: node.ID}
		case topo.Host:
			n.hosts[node.ID] = &HostDev{net: n, id: node.ID}
		}
	}
	for _, l := range g.Links() {
		fabric := g.Node(l.A).Kind == topo.Switch && g.Node(l.B).Kind == topo.Switch
		for d := 0; d < 2; d++ {
			ch := &n.chans[int(l.ID)*2+d]
			ch.from, ch.to = l.A, l.B
			if d == 1 {
				ch.from, ch.to = l.B, l.A
			}
			ch.bytesPerNs = l.Bandwidth / 8 / 1e9
			ch.delayNs = l.Delay
			ch.capBytes = float64(cfg.BufferBytes)
			ch.dre = stats.NewDRE(cfg.DRETauNs)
			ch.fabric = fabric
			// Links marked down in the topology (pre-failed,
			// "asymmetric" setups) start down in the simulator too.
			ch.adminDown = l.Down
			ch.down = l.Down
			ch.toSwitch = n.switches[ch.to]
			ch.toHost = n.hosts[ch.to]
			ch.inPort = int32(g.PortTo(ch.to, ch.from))
		}
	}
	// Per-node port -> directed channel index, replacing the
	// Ports-slice walk plus Link lookup on every transmit.
	n.portChan = make([][]int32, g.NumNodes())
	for _, node := range g.Nodes() {
		ports := g.Ports(node.ID)
		row := make([]int32, len(ports))
		for i, p := range ports {
			d := 0
			if g.Link(p.Link).B == node.ID {
				d = 1
			}
			row[i] = int32(p.Link)*2 + int32(d)
		}
		n.portChan[node.ID] = row
		if node.Kind == topo.Host {
			edge := g.HostEdge(node.ID)
			n.hostEdge[node.ID] = edge
			n.hostPort[node.ID] = int32(g.PortTo(edge, node.ID))
		}
	}
	return n
}

// SetRouter installs forwarding logic on a switch.
func (n *Network) SetRouter(sw topo.NodeID, r Router) {
	dev := n.switches[sw]
	if dev == nil {
		panic(fmt.Sprintf("sim: %d is not a switch", sw))
	}
	dev.router = r
}

// Start attaches all routers. Every switch must have one.
func (n *Network) Start() {
	for _, id := range n.Topo.Switches() {
		if n.switches[id].router == nil {
			panic(fmt.Sprintf("sim: switch %s has no router", n.Topo.Node(id).Name))
		}
	}
	// Deterministic attach order.
	for _, id := range n.Topo.Switches() {
		n.switches[id].router.Attach(n.switches[id])
	}
}

// Switch returns a switch device.
func (n *Network) Switch(id topo.NodeID) *SwitchDev { return n.switches[id] }

// hostOf returns the host device for a node id.
func (n *Network) hostOf(id topo.NodeID) *HostDev { return n.hosts[id] }

// HostEdge returns the edge switch a host attaches to, from the dense
// table built in NewNetwork (routers use it on the per-packet path).
func (n *Network) HostEdge(id topo.NodeID) (topo.NodeID, bool) {
	if int(id) >= len(n.hostEdge) {
		return -1, false
	}
	e := n.hostEdge[id]
	return e, e >= 0
}

// channelFor returns the directed channel leaving `from` on local port
// index `port`.
func (n *Network) channelFor(from topo.NodeID, port int) *channel {
	return &n.chans[n.portChan[from][port]]
}

// transmit pushes a packet onto a directed channel, applying the
// drop-tail queue and scheduling delivery at the far end.
func (n *Network) transmit(from topo.NodeID, port int, pkt *Packet) {
	chIdx := n.portChan[from][port]
	ch := &n.chans[chIdx]
	now := n.Eng.Now()
	if ch.down {
		n.countDrop(ch, pkt, n.downReason(ch))
		n.Free(pkt)
		return
	}
	if ch.queuedBytes(now)+float64(pkt.Size) > ch.capBytes {
		n.countDrop(ch, pkt, DropQueue)
		n.Free(pkt)
		return
	}
	txStart := ch.busyUntil
	if txStart < now {
		txStart = now
	}
	if n.Trace != nil && pkt.Kind == Data {
		pkt.QueueNs += txStart - now
	}
	txDur := int64(float64(pkt.Size) / ch.bytesPerNs)
	if txDur < 1 {
		txDur = 1
	}
	ch.busyUntil = txStart + txDur
	ch.dre.Add(now, pkt.Size)
	ch.txBytes += float64(pkt.Size)
	n.accountTx(ch, pkt)

	n.Eng.scheduleDeliver(ch.busyUntil+ch.delayNs, chIdx, pkt)
}

func (n *Network) accountTx(ch *channel, pkt *Packet) {
	if !ch.fabric {
		return
	}
	switch pkt.Kind {
	case Data:
		n.txData += float64(pkt.Size)
	case Ack:
		n.txAck += float64(pkt.Size)
	case Probe:
		n.txProbe += float64(pkt.Size)
	}
	if pkt.HasTag && pkt.Kind == Data {
		n.tagOverhead += TagHeaderBytes
	}
}

func (n *Network) countDrop(ch *channel, pkt *Packet, reason DropReason) {
	ch.drops++
	ch.dropBytes += float64(pkt.Size)
	n.dropCounts[reason]++
	if pkt.Kind == Data {
		n.dropData += float64(pkt.Size)
	}
}

// downReason attributes a drop on a down channel: node failure when
// either endpoint is failed, plain link-down otherwise. Only reached on
// the already-down branch, so the healthy path pays nothing.
func (n *Network) downReason(ch *channel) DropReason {
	if n.nodeDown[ch.from] || n.nodeDown[ch.to] {
		return DropNodeDown
	}
	return DropLinkDown
}

// SetProbeLossSeed (re)seeds the dedicated probe-loss RNG. Chaos
// injection calls it with a scenario-derived seed before arming
// EvProbeLoss events, which is what makes measurement noise a
// deterministic function of the scenario seed.
func (n *Network) SetProbeLossSeed(seed int64) {
	n.lossRng = rand.New(rand.NewSource(seed))
}

// ProbeLossStats reports how many probes crossed loss-injected channels
// and how many of those the injection discarded.
func (n *Network) ProbeLossStats() (seen, dropped int64) {
	return n.probeLossSeen, n.probeLossDrops
}

// FoldCounters folds the typed hot-path accounting fields into the
// string-keyed Counters set. It is idempotent; call it after a run
// (scenario.Run does) before reading Counters.
func (n *Network) FoldCounters() {
	set := func(label string, v float64) {
		// Absent labels read as 0 from Counters; only materialize keys
		// that were actually incremented, matching the historical map.
		if v != 0 {
			n.Counters.Set(label, v)
		}
	}
	set("bytes_data", n.txData)
	set("bytes_ack", n.txAck)
	set("bytes_probe", n.txProbe)
	set("bytes_tag_overhead", n.tagOverhead)
	for r, c := range n.dropCounts {
		set(dropLabels[r], float64(c))
	}
	set("drop_data_bytes", n.dropData)
	set("rto", float64(n.rtoCount))
	set("fast_retx", float64(n.fastRetx))
	set("flows_done", float64(n.flowsDone))
	set("probe_tx_saved", float64(n.probeTxSaved))
	set("probe_suppressed", float64(n.probeSuppressed))
}

// CountProbeSaved records on-wire probe transmissions avoided by
// multi-origin packing (routers call it from their flush paths).
func (n *Network) CountProbeSaved(k int64) { n.probeTxSaved += k }

// CountProbeSuppressed records per-origin re-advertisements skipped by
// delta suppression.
func (n *Network) CountProbeSuppressed(k int64) { n.probeSuppressed += k }

// deliverChan hands the packet in flight on channel chIdx to the
// receiving device (the evDeliver event body).
func (n *Network) deliverChan(chIdx int32, pkt *Packet) {
	ch := &n.chans[chIdx]
	if ch.down {
		// Link (or an endpoint node) died while in flight.
		n.countDrop(ch, pkt, n.downReason(ch))
		n.Free(pkt)
		return
	}
	if n.probeLossOn && pkt.Kind == Probe && ch.probeLoss > 0 {
		n.probeLossSeen++
		if n.lossRng.Float64() < ch.probeLoss {
			n.probeLossDrops++
			n.countDrop(ch, pkt, DropProbeLoss)
			n.Free(pkt)
			return
		}
	}
	if sw := ch.toSwitch; sw != nil {
		if n.Trace != nil && pkt.Kind == Data {
			n.Trace.Hop(pkt.FlowID, pkt.Seq, n.Topo.Node(ch.to).Name)
		}
		if n.Cfg.TrackVisited && pkt.Kind == Data {
			to := ch.to
			bit := uint64(1) << (uint(to) & 63)
			if int(to) < 64 {
				if pkt.Visited&bit != 0 {
					n.LoopedPkts++
				}
				pkt.Visited |= bit
			}
		}
		sw.router.Handle(pkt, int(ch.inPort))
		return
	}
	if h := ch.toHost; h != nil {
		h.receive(pkt)
		return
	}
	n.Free(pkt)
}

// SampleQueues records the instantaneous backlog of every fabric
// channel, in MSS units (Figure 13).
func (n *Network) SampleQueues() {
	now := n.Eng.Now()
	for i := range n.chans {
		ch := &n.chans[i]
		if !ch.fabric {
			continue
		}
		n.QueueMSS.Add(ch.queuedBytes(now) / 1500)
	}
}

// AttachMetrics installs a telemetry recorder and registers every
// fabric channel (directed, "from->to") as a link series, plus the
// typed drop-reason labels. Routers register their churn accumulators
// separately via their SetMetrics hooks.
func (n *Network) AttachMetrics(m *metrics.Recorder) {
	for i := range n.chans {
		ch := &n.chans[i]
		if !ch.fabric {
			continue
		}
		m.RegisterLink(n.Topo.Node(ch.from).Name + "->" + n.Topo.Node(ch.to).Name)
	}
	m.RegisterDropReasons(dropLabels[:])
	n.Metrics = m
}

// SampleMetrics records one telemetry tick: per-fabric-channel
// utilization (via the non-mutating DRE peek — sampling must not
// perturb what probes measure), instantaneous backlog, and cumulative
// drops, plus the network-wide per-reason drop totals. It is the
// timer callback scenario.Run schedules at metrics_interval_ns.
func (n *Network) SampleMetrics() {
	m := n.Metrics
	if m == nil {
		return
	}
	now := n.Eng.Now()
	m.BeginSample(now)
	for i := range n.chans {
		ch := &n.chans[i]
		if !ch.fabric {
			continue
		}
		m.Link(ch.dre.UtilizationPeek(now, ch.bytesPerNs*8e9), ch.queuedBytes(now), ch.drops)
	}
	m.Drops(n.dropCounts[:])
	m.EndSample()
}

// FabricBytes returns total bytes transmitted on switch-switch links,
// the Figure 16 traffic-overhead metric.
func (n *Network) FabricBytes() float64 {
	return n.txData + n.txAck + n.txProbe
}

// SwitchDev is a switch instance: ports plus the attached Router.
type SwitchDev struct {
	Net    *Network
	ID     topo.NodeID
	router Router
}

// PortCount returns the number of ports.
func (s *SwitchDev) PortCount() int { return len(s.Net.portChan[s.ID]) }

// Peer returns the node on the far side of a port.
func (s *SwitchDev) Peer(port int) topo.NodeID {
	return s.Net.channelFor(s.ID, port).to
}

// IsHostPort reports whether a port attaches a host.
func (s *SwitchDev) IsHostPort(port int) bool {
	return s.Net.channelFor(s.ID, port).toHost != nil
}

// IsSwitchPort reports whether a port attaches another switch.
func (s *SwitchDev) IsSwitchPort(port int) bool { return !s.IsHostPort(port) }

// Send transmits a packet out a port.
func (s *SwitchDev) Send(port int, pkt *Packet) { s.Net.transmit(s.ID, port, pkt) }

// TxUtil returns the utilization of the outgoing direction of a port:
// what a Contra probe arriving on that port folds into its metric
// vector (traffic flows opposite to probes).
func (s *SwitchDev) TxUtil(port int) float64 {
	ch := s.Net.channelFor(s.ID, port)
	return ch.dre.Utilization(s.Net.Eng.Now(), ch.bytesPerNs*8e9)
}

// PortDelay returns the propagation delay of a port's link in ns.
func (s *SwitchDev) PortDelay(port int) int64 {
	return s.Net.channelFor(s.ID, port).delayNs
}

// PortDown reports whether the port's link is administratively down.
// Data planes cannot see this directly — they infer failures from
// missing probes (§5.4) — but baselines with static tables use it to
// model offline recomputation, and tests use it for assertions.
func (s *SwitchDev) PortDown(port int) bool {
	return s.Net.channelFor(s.ID, port).down
}

// DeliverLocal sends a packet to a locally attached host, stripping
// the scheme tag.
func (s *SwitchDev) DeliverLocal(pkt *Packet) {
	// hostPort is the port index on the destination's own edge switch;
	// it only names one of our ports if that edge switch is us.
	port := s.Net.hostPort[pkt.Dst]
	row := s.Net.portChan[s.ID]
	if port < 0 || int(port) >= len(row) || s.Net.chans[row[port]].to != pkt.Dst {
		s.Drop(pkt, DropNoLocal)
		return
	}
	if pkt.HasTag {
		pkt.Size -= TagHeaderBytes
		pkt.HasTag = false
	}
	s.Send(int(port), pkt)
}

// Drop discards a packet, counting the reason.
func (s *SwitchDev) Drop(pkt *Packet, reason DropReason) {
	s.Net.dropCounts[reason]++
	s.Net.Free(pkt)
}

// Now returns the simulation time.
func (s *SwitchDev) Now() int64 { return s.Net.Eng.Now() }

// Name returns the switch's topology name (for diagnostics).
func (s *SwitchDev) Name() string { return s.Net.Topo.Node(s.ID).Name }
