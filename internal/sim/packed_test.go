package sim

import (
	"testing"

	"contra/internal/topo"
)

func packedTestNet(t *testing.T) *Network {
	t.Helper()
	g := topo.New("packed")
	a := g.AddNode("A", topo.Switch)
	b := g.AddNode("B", topo.Switch)
	g.AddLink(a, b, 10e9, 1000)
	return NewNetwork(NewEngine(1), g, Config{})
}

// TestPacketPoolPreservesPackedBacking pins the allocation contract of
// packed probes: recycling a packet through the pool zeroes it but
// keeps the packed-entry backing array, so steady-state packed fan-out
// reuses storage instead of allocating per period.
func TestPacketPoolPreservesPackedBacking(t *testing.T) {
	n := packedTestNet(t)
	p := n.NewPacket()
	p.IsPacked = true
	for i := 0; i < 8; i++ {
		p.Packed = append(p.Packed, ProbeEntry{Origin: topo.NodeID(i)})
	}
	n.Free(p)
	q := n.NewPacket()
	if q != p {
		t.Fatalf("pool did not recycle the freed packet")
	}
	if q.IsPacked || len(q.Packed) != 0 {
		t.Fatalf("recycled packet not zeroed: IsPacked=%v len=%d", q.IsPacked, len(q.Packed))
	}
	if cap(q.Packed) < 8 {
		t.Fatalf("recycled packet lost its packed backing array (cap %d)", cap(q.Packed))
	}
}

// TestClonePackedIsDeepCopy guards against aliasing: a multicast clone
// must own its packed entries, so mutating one copy (retagging at the
// next hop) cannot corrupt the other.
func TestClonePackedIsDeepCopy(t *testing.T) {
	n := packedTestNet(t)
	p := n.NewPacket()
	p.IsPacked = true
	p.Packed = append(p.Packed, ProbeEntry{Origin: 1, Version: 7}, ProbeEntry{Origin: 2, Version: 9})
	c := n.Clone(p)
	if len(c.Packed) != 2 || c.Packed[0].Origin != 1 || c.Packed[1].Version != 9 {
		t.Fatalf("clone lost packed entries: %+v", c.Packed)
	}
	c.Packed[0].Version = 100
	if p.Packed[0].Version != 7 {
		t.Fatalf("clone aliases the original's packed entries")
	}
}
