// Package trace is the per-flow observability layer: a configurable-
// level decision-trace recorder the dataplane hot paths feed. At the
// "decisions" level every data-packet forwarding decision is recorded
// (time, flow, switch, chosen port + rank vector, runner-up port +
// rank vector, policy era); at the "flows" level only per-flow
// summaries (path taken, hop count, per-hop queueing, FCT) are kept;
// "off" records nothing, and the callers gate every hook on a nil
// recorder so the off path stays zero-cost and byte-identical.
//
// The package deliberately depends on nothing inside the repo: the
// simulator, the dataplane and the baselines all hand it plain ints
// and strings, so it can sit below every layer that wants to record.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Level selects how much the recorder keeps.
type Level uint8

// Trace levels.
const (
	// Off records nothing. Callers hold a nil *Recorder instead, so
	// the hot path pays a single pointer check.
	Off Level = iota
	// Flows keeps per-flow summaries only: path, hop count, queueing,
	// FCT.
	Flows
	// Decisions additionally records every forwarding decision with
	// its chosen and runner-up (port, rank vector) pair.
	Decisions
)

// ParseLevel resolves a CLI/spec trace-level name. The empty string
// and "off" both mean Off.
func ParseLevel(s string) (Level, error) {
	switch s {
	case "", "off":
		return Off, nil
	case "flows":
		return Flows, nil
	case "decisions":
		return Decisions, nil
	}
	return Off, fmt.Errorf("trace: unknown level %q (want off, flows or decisions)", s)
}

// String returns the level's spec name.
func (l Level) String() string {
	switch l {
	case Flows:
		return "flows"
	case Decisions:
		return "decisions"
	}
	return "off"
}

// Decision is one recorded forwarding decision: what the switch chose
// for the packet and what the best alternative next hop would have
// been at that instant. Field order fixes the JSONL key order.
type Decision struct {
	At     int64  `json:"at_ns"`
	Flow   uint64 `json:"flow"`
	Switch string `json:"switch"`
	// Kind is "source" (fresh BestT-style decision at the flow's first
	// fabric switch) or "transit" (tagged packet resolved mid-fabric).
	Kind string `json:"kind"`
	Port int    `json:"port"`
	// Rank is the chosen entry's policy rank vector (HULA records its
	// scalar path utilization as a one-element vector).
	Rank []float64 `json:"rank"`
	// RunnerPort is the best live alternative on a different egress
	// port, -1 when every live entry shares the chosen port.
	RunnerPort int       `json:"runner_port"`
	RunnerRank []float64 `json:"runner_rank,omitempty"`
	Era        uint8     `json:"era"`
	Pid        uint8     `json:"pid"`
}

// FlowTrace is one flow's summary: identity and size (from the flow
// table), the path its first packet took, delivery accounting, and the
// decision counters the decisions level maintains.
type FlowTrace struct {
	ID      uint64
	Src     string
	Dst     string
	Size    int64
	StartNs int64
	FctNs   int64 // 0 until the flow completes
	Hops    int   // fabric hops of the first packet
	Path    []string
	QueueNs int64 // summed per-hop queueing across delivered data packets
	Pkts    int64 // delivered data packets
	// Decisions counts recorded forwarding decisions for this flow;
	// Divergent counts those where a live runner-up existed on a
	// different egress port — the flow's counterfactual branch points.
	Decisions int64
	Divergent int64

	sealed bool // first packet delivered: path capture complete
}

// Recorder accumulates one scenario's trace. It is not safe for
// concurrent use; the simulator is single-threaded and campaigns give
// every scenario its own recorder.
type Recorder struct {
	level     Level
	decisions []Decision
	ringCap   int // 0 = unbounded
	head      int // ring start when the cap has wrapped
	dropped   int64
	flows     map[uint64]*FlowTrace
}

// NewRecorder builds a recorder for the given level. Off is allowed
// but pointless — callers should keep a nil recorder instead.
func NewRecorder(level Level) *Recorder {
	return &Recorder{level: level, flows: make(map[uint64]*FlowTrace)}
}

// SetDecisionCap bounds the decision store to a ring of the last n
// records (0 restores the unbounded default). With a cap, steady-state
// recording reuses ring slots and their rank slices instead of
// growing.
func (r *Recorder) SetDecisionCap(n int) { r.ringCap = n }

// Level returns the recorder's level.
func (r *Recorder) Level() Level { return r.level }

// DecisionsOn reports whether per-decision recording is active.
func (r *Recorder) DecisionsOn() bool { return r.level == Decisions }

// Dropped returns how many decisions the ring cap discarded.
func (r *Recorder) Dropped() int64 { return r.dropped }

func (r *Recorder) ensure(flow uint64) *FlowTrace {
	ft := r.flows[flow]
	if ft == nil {
		ft = &FlowTrace{ID: flow}
		r.flows[flow] = ft
	}
	return ft
}

// FlowMeta registers a flow's identity before it runs, so summaries
// carry src/dst/size even for flows that never complete.
func (r *Recorder) FlowMeta(flow uint64, src, dst string, size, startNs int64) {
	ft := r.ensure(flow)
	ft.Src, ft.Dst = src, dst
	ft.Size, ft.StartNs = size, startNs
}

// Sent observes a data packet leaving its source host. A fresh
// emission of sequence 0 restarts path capture: a retransmitted first
// packet must not append onto a partially captured path.
func (r *Recorder) Sent(flow uint64, seq int64) {
	if seq != 0 {
		return
	}
	ft := r.ensure(flow)
	if !ft.sealed {
		ft.Path = ft.Path[:0]
	}
}

// Hop observes a data packet arriving at a switch. Only the flow's
// first packet (sequence 0) defines the recorded path.
func (r *Recorder) Hop(flow uint64, seq int64, sw string) {
	if seq != 0 {
		return
	}
	ft := r.ensure(flow)
	if !ft.sealed {
		ft.Path = append(ft.Path, sw)
	}
}

// Delivered observes a data packet reaching its destination host:
// hops is the fabric hop count the packet's TTL witnessed, queueNs the
// queueing delay it accumulated across its path.
func (r *Recorder) Delivered(flow uint64, seq int64, hops int, queueNs int64) {
	ft := r.ensure(flow)
	ft.Pkts++
	ft.QueueNs += queueNs
	if seq == 0 && !ft.sealed {
		ft.Hops = hops
		ft.sealed = true
	}
}

// Done records a flow's completion time.
func (r *Recorder) Done(flow uint64, fctNs int64) {
	r.ensure(flow).FctNs = fctNs
}

// Decision records one forwarding decision. Rank slices are copied;
// callers may pass scratch storage. No-op below the decisions level.
func (r *Recorder) Decision(at int64, flow uint64, sw, kind string, port int, rank []float64, runnerPort int, runnerRank []float64, era, pid uint8) {
	if r.level != Decisions {
		return
	}
	var d *Decision
	if r.ringCap > 0 && len(r.decisions) == r.ringCap {
		d = &r.decisions[r.head]
		r.head++
		if r.head == r.ringCap {
			r.head = 0
		}
		r.dropped++
	} else {
		r.decisions = append(r.decisions, Decision{})
		d = &r.decisions[len(r.decisions)-1]
	}
	d.At, d.Flow, d.Switch, d.Kind = at, flow, sw, kind
	d.Port = port
	d.Rank = append(d.Rank[:0], rank...)
	d.RunnerPort = runnerPort
	d.RunnerRank = append(d.RunnerRank[:0], runnerRank...)
	d.Era, d.Pid = era, pid

	ft := r.ensure(flow)
	ft.Decisions++
	if runnerPort >= 0 && runnerPort != port {
		ft.Divergent++
	}
}

// Totals summarizes the recorder for result encoding: traced flows,
// recorded decisions (including any the ring cap dropped), and how
// many of those had a divergent runner-up.
func (r *Recorder) Totals() (flows, decisions, divergent int64) {
	decisions = int64(len(r.decisions)) + r.dropped
	for _, ft := range r.flows {
		flows++
		divergent += ft.Divergent
	}
	return flows, decisions, divergent
}

// Flow returns one flow's summary, nil when the flow was never seen.
func (r *Recorder) Flow(id uint64) *FlowTrace { return r.flows[id] }

// Flows returns every flow summary sorted by flow id (the emission
// order, and the deterministic order counterfactual selection ranks
// over).
func (r *Recorder) Flows() []*FlowTrace {
	out := make([]*FlowTrace, 0, len(r.flows))
	for _, ft := range r.flows {
		out = append(out, ft)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// decisionLine / flowLine fix the JSONL schema: every line carries a
// "type" discriminator first.
type decisionLine struct {
	Type string `json:"type"`
	Decision
}

type flowLine struct {
	Type      string   `json:"type"`
	Flow      uint64   `json:"flow"`
	Src       string   `json:"src,omitempty"`
	Dst       string   `json:"dst,omitempty"`
	SizeBytes int64    `json:"size_bytes,omitempty"`
	StartNs   int64    `json:"start_ns"`
	FctNs     int64    `json:"fct_ns,omitempty"`
	Hops      int      `json:"hops"`
	Path      []string `json:"path,omitempty"`
	QueueNs   int64    `json:"queue_ns"`
	Pkts      int64    `json:"pkts"`
	Decisions int64    `json:"decisions"`
	Divergent int64    `json:"divergent"`
}

// WriteJSONL emits the trace: decision lines in record order (the
// simulator is deterministic, so record order is reproducible), then
// one flow summary line per flow sorted by id. The output is a pure
// function of the simulated scenario: tracing the same seed twice
// yields byte-identical JSONL.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	emit := func(i int) error { return enc.Encode(decisionLine{Type: "decision", Decision: r.decisions[i]}) }
	if r.ringCap > 0 && r.dropped > 0 {
		// The ring has wrapped: oldest surviving record first.
		for i := r.head; i < len(r.decisions); i++ {
			if err := emit(i); err != nil {
				return err
			}
		}
		for i := 0; i < r.head; i++ {
			if err := emit(i); err != nil {
				return err
			}
		}
	} else {
		for i := range r.decisions {
			if err := emit(i); err != nil {
				return err
			}
		}
	}
	for _, ft := range r.Flows() {
		if err := enc.Encode(flowLine{
			Type: "flow", Flow: ft.ID, Src: ft.Src, Dst: ft.Dst,
			SizeBytes: ft.Size, StartNs: ft.StartNs, FctNs: ft.FctNs,
			Hops: ft.Hops, Path: ft.Path, QueueNs: ft.QueueNs,
			Pkts: ft.Pkts, Decisions: ft.Decisions, Divergent: ft.Divergent,
		}); err != nil {
			return err
		}
	}
	return nil
}
