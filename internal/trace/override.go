package trace

import (
	"fmt"
	"sort"
)

// Counterfactual override modes: what choice replaces the policy's
// source decision for a pinned flow. Overrides apply at the source
// switch only — the source picks the path (tag, pid) and transit
// switches follow the tag, so the replayed path is one some switch
// actually advertised.
const (
	// ModeRunnerUp replays pinned flows over the recorded runner-up:
	// the best live alternative on a different egress port.
	ModeRunnerUp = "runnerup"
	// ModeECMP replays pinned flows with a rank-blind deterministic
	// hash spread over every live candidate, approximating what ECMP
	// would have picked among the policy-compliant next hops.
	ModeECMP = "ecmp"
)

// ParseMode validates a counterfactual override mode name.
func ParseMode(s string) (string, error) {
	switch s {
	case "", ModeRunnerUp:
		return ModeRunnerUp, nil
	case ModeECMP:
		return ModeECMP, nil
	}
	return "", fmt.Errorf("trace: unknown override mode %q (want %s or %s)", s, ModeRunnerUp, ModeECMP)
}

// Overrides names the flows a counterfactual replay pins to an
// alternative forwarding choice, and which alternative. Routers
// consult it per fresh (non-flowlet-pinned) source decision; a nil
// *Overrides means no replay is active.
type Overrides struct {
	mode  string
	flows map[uint64]bool
}

// NewOverrides builds an override set. The mode must have been
// validated with ParseMode.
func NewOverrides(mode string, flows []uint64) *Overrides {
	o := &Overrides{mode: mode, flows: make(map[uint64]bool, len(flows))}
	for _, f := range flows {
		o.flows[f] = true
	}
	return o
}

// Mode returns the override mode.
func (o *Overrides) Mode() string { return o.mode }

// Match reports whether the flow is pinned.
func (o *Overrides) Match(flow uint64) bool { return o.flows[flow] }

// FlowIDs returns the pinned flows sorted ascending.
func (o *Overrides) FlowIDs() []uint64 {
	out := make([]uint64, 0, len(o.flows))
	for f := range o.flows {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
