package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestParseLevel(t *testing.T) {
	cases := []struct {
		in   string
		want Level
		err  bool
	}{
		{"", Off, false},
		{"off", Off, false},
		{"flows", Flows, false},
		{"decisions", Decisions, false},
		{"everything", Off, true},
		{"OFF", Off, true},
	}
	for _, c := range cases {
		got, err := ParseLevel(c.in)
		if (err != nil) != c.err || got != c.want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v, err=%v", c.in, got, err, c.want, c.err)
		}
	}
	for _, l := range []Level{Off, Flows, Decisions} {
		back, err := ParseLevel(l.String())
		if err != nil || back != l {
			t.Errorf("round trip %v -> %q -> %v, %v", l, l.String(), back, err)
		}
	}
}

func TestFlowSummaryAccumulation(t *testing.T) {
	r := NewRecorder(Flows)
	r.FlowMeta(7, "h0_0", "h1_0", 90_000, 1000)
	r.Sent(7, 0)
	r.Hop(7, 0, "t0")
	r.Hop(7, 0, "a0")
	r.Hop(7, 0, "t1")
	r.Delivered(7, 0, 3, 500)
	r.Delivered(7, 1, 3, 250)
	r.Done(7, 2_000_000)

	ft := r.Flow(7)
	if ft == nil {
		t.Fatal("flow 7 not recorded")
	}
	if got := strings.Join(ft.Path, ","); got != "t0,a0,t1" {
		t.Errorf("path = %q", got)
	}
	if ft.Hops != 3 || ft.Pkts != 2 || ft.QueueNs != 750 || ft.FctNs != 2_000_000 {
		t.Errorf("summary = %+v", ft)
	}
	if ft.Src != "h0_0" || ft.Dst != "h1_0" || ft.Size != 90_000 {
		t.Errorf("meta = %+v", ft)
	}
	// A retransmitted first packet after sealing must not disturb the path.
	r.Sent(7, 0)
	r.Hop(7, 0, "t9")
	if got := strings.Join(r.Flow(7).Path, ","); got != "t0,a0,t1" {
		t.Errorf("sealed path changed: %q", got)
	}
}

func TestSentResetsUnsealedPath(t *testing.T) {
	r := NewRecorder(Flows)
	r.Sent(3, 0)
	r.Hop(3, 0, "t0")
	r.Hop(3, 0, "a1") // first attempt lost mid-fabric
	r.Sent(3, 0)      // retransmit restarts capture
	r.Hop(3, 0, "t0")
	r.Hop(3, 0, "a0")
	r.Delivered(3, 0, 2, 0)
	if got := strings.Join(r.Flow(3).Path, ","); got != "t0,a0" {
		t.Errorf("path after retransmit = %q", got)
	}
}

func TestDecisionRecordingAndLevels(t *testing.T) {
	r := NewRecorder(Flows)
	r.Decision(10, 1, "t0", "source", 2, []float64{0.5}, 3, []float64{0.7}, 0, 0)
	if _, d, _ := r.Totals(); d != 0 {
		t.Fatalf("flows level recorded %d decisions", d)
	}

	r = NewRecorder(Decisions)
	rank := []float64{1, 0.25}
	r.Decision(10, 1, "t0", "source", 2, rank, 3, []float64{1, 0.5}, 1, 0)
	rank[1] = 99 // caller scratch must have been copied
	r.Decision(20, 1, "a0", "transit", 0, []float64{1, 0.3}, -1, nil, 1, 0)
	r.Decision(30, 2, "t0", "source", 2, []float64{1, 0.25}, 2, []float64{1, 0.25}, 1, 1)

	flows, decisions, divergent := r.Totals()
	if flows != 2 || decisions != 3 {
		t.Errorf("totals = %d flows, %d decisions", flows, decisions)
	}
	// Only the first decision diverges: the second has no runner-up and
	// the third's runner-up shares the chosen port.
	if divergent != 1 {
		t.Errorf("divergent = %d, want 1", divergent)
	}
	if r.Flow(1).Divergent != 1 || r.Flow(2).Divergent != 0 {
		t.Errorf("per-flow divergent: %d, %d", r.Flow(1).Divergent, r.Flow(2).Divergent)
	}

	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 5 { // 3 decisions + 2 flow summaries
		t.Fatalf("got %d lines:\n%s", len(lines), buf.String())
	}
	if !strings.Contains(lines[0], `"rank":[1,0.25]`) {
		t.Errorf("scratch rank not copied: %s", lines[0])
	}
}

func TestDecisionRingCap(t *testing.T) {
	r := NewRecorder(Decisions)
	r.SetDecisionCap(3)
	for i := 0; i < 10; i++ {
		r.Decision(int64(i), uint64(i), "t0", "source", i, []float64{float64(i)}, -1, nil, 0, 0)
	}
	if r.Dropped() != 7 {
		t.Fatalf("dropped = %d, want 7", r.Dropped())
	}
	if _, d, _ := r.Totals(); d != 10 {
		t.Fatalf("totals decisions = %d, want 10 (ring drops still counted)", d)
	}
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	var at []string
	for _, l := range strings.Split(strings.TrimRight(buf.String(), "\n"), "\n") {
		if strings.Contains(l, `"type":"decision"`) {
			at = append(at, l)
		}
	}
	if len(at) != 3 {
		t.Fatalf("ring emitted %d decisions", len(at))
	}
	// Oldest surviving record first: 7, 8, 9.
	for i, want := range []string{`"at_ns":7`, `"at_ns":8`, `"at_ns":9`} {
		if !strings.Contains(at[i], want) {
			t.Errorf("ring order: line %d = %s, want %s", i, at[i], want)
		}
	}
}

func TestWriteJSONLDeterministic(t *testing.T) {
	// Flow summaries must come out sorted by id regardless of the
	// order the map was populated in.
	build := func(order []uint64) *Recorder {
		r := NewRecorder(Decisions)
		for _, f := range order {
			r.FlowMeta(f, "a", "b", int64(f)*1000, 0)
			r.Done(f, int64(f)*10)
		}
		// Decision lines keep record order, which the deterministic
		// simulator reproduces — use one fixed order here.
		for _, f := range []uint64{1, 3, 5} {
			r.Decision(int64(f), f, "t0", "source", 1, []float64{0.1}, 2, []float64{0.2}, 0, 0)
		}
		return r
	}
	var b1, b2 bytes.Buffer
	if err := build([]uint64{5, 1, 3}).WriteJSONL(&b1); err != nil {
		t.Fatal(err)
	}
	if err := build([]uint64{3, 5, 1}).WriteJSONL(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Errorf("JSONL not reproducible:\n%s\nvs\n%s", b1.String(), b2.String())
	}
}
