package exp

import (
	"testing"

	"contra/internal/core"
	"contra/internal/policy"
	"contra/internal/topo"
	"contra/internal/workload"
)

func TestRunFCTWithPairs(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	g := topo.AbileneWithHostsScaled(0, 0.002)
	pairs := [][2]topo.NodeID{
		{g.MustNode("H_SEA"), g.MustNode("H_NYC")},
		{g.MustNode("H_LA"), g.MustNode("H_CHI")},
	}
	res, err := RunFCT(FCTConfig{
		Topo: g, Scheme: SchemeContra, PolicySrc: "minimize(path.util)",
		Dist: workload.Cache(), Load: 0.3, CapacityBps: 40e9,
		Pairs:      pairs,
		DurationNs: 4_000_000, MaxFlows: 200, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed < int64(res.Flows)*9/10 {
		t.Fatalf("completed %d/%d", res.Completed, res.Flows)
	}
}

func TestRunFCTDrainBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	g := topo.PaperDataCenter()
	// A tiny drain budget cuts the run short; the harness must still
	// return statistics for the flows that finished.
	res, err := RunFCT(FCTConfig{
		Topo: g, Scheme: SchemeECMP, Dist: workload.WebSearch(),
		Load: 0.5, DurationNs: 4_000_000, DrainNs: 10_000_000,
		MaxFlows: 300, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed == 0 {
		t.Fatal("no flows completed within the drain budget")
	}
	if res.SimulatedTime <= 0 {
		t.Fatal("no simulated time recorded")
	}
}

func TestFailoverBaselineSanity(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res, err := RunFailover(FailoverConfig{
		Topo: topo.PaperDataCenter(), Scheme: SchemeContra,
		PolicySrc: "minimize((path.len, path.util))",
		FailAtNs:  15_000_000, EndNs: 30_000_000, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The snapped CBR rate should land near the requested 4.25 Gbps.
	if res.BaselineBps < 3.8e9 || res.BaselineBps > 4.7e9 {
		t.Fatalf("baseline %.2f Gbps not near 4.25", res.BaselineBps/1e9)
	}
	// The failure must actually be visible: flows cross the fabric.
	if res.MinBps > 0.9*res.BaselineBps {
		t.Fatalf("failure invisible: dip only to %.2f of baseline", res.MinBps/res.BaselineBps)
	}
	if res.RecoveryNs <= 0 || res.RecoveryNs > 5_000_000 {
		t.Fatalf("recovery = %.2fms, want (0, 5ms]", float64(res.RecoveryNs)/1e6)
	}
}

func TestStandardPoliciesCompileEverywhere(t *testing.T) {
	for _, g := range []*topo.Graph{topo.Fattree(4, 0), topo.RandomConnected(30, 4, 3), topo.Abilene()} {
		for name, gen := range StandardPolicies() {
			src := gen(g)
			pol, err := policy.Parse(src, policy.ParseOptions{Symbols: g.SortedNames()})
			if err != nil {
				t.Fatalf("%s on %s: parse: %v", name, g.Name, err)
			}
			if _, err := core.Compile(g, pol, core.Options{}); err != nil {
				t.Fatalf("%s on %s: compile: %v", name, g.Name, err)
			}
		}
	}
}
