package exp

import (
	"testing"

	"contra/internal/topo"
	"contra/internal/workload"
)

func TestRunFCTAllSchemesOnDataCenter(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	g := topo.PaperDataCenter()
	for _, scheme := range []Scheme{SchemeContra, SchemeECMP, SchemeHula} {
		res, err := RunFCT(FCTConfig{
			Topo: g, Scheme: scheme, Dist: workload.Cache(),
			Load: 0.3, DurationNs: 5_000_000, MaxFlows: 300, Seed: 1,
		})
		if err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		if res.Completed < int64(res.Flows)*95/100 {
			t.Errorf("%s: only %d/%d flows completed", scheme, res.Completed, res.Flows)
		}
		if res.MeanFCT <= 0 {
			t.Errorf("%s: zero FCT", scheme)
		}
		t.Logf("%s", res)
	}
}

func TestRunFCTWANSchemes(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	g := topo.AbileneWithHosts(0)
	for _, scheme := range []Scheme{SchemeContra, SchemeSP, SchemeSpain} {
		res, err := RunFCT(FCTConfig{
			Topo: g, Scheme: scheme, Dist: workload.Cache(),
			Load: 0.3, CapacityBps: 40e9,
			DurationNs: 5_000_000, MaxFlows: 200, Seed: 2,
		})
		if err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		if res.Completed < int64(res.Flows)*9/10 {
			t.Errorf("%s: only %d/%d flows completed", scheme, res.Completed, res.Flows)
		}
	}
}

func TestContraProbeOverheadSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	g := topo.PaperDataCenter()
	res, err := RunFCT(FCTConfig{
		Topo: g, Scheme: SchemeContra, Dist: workload.WebSearch(),
		Load: 0.4, DurationNs: 10_000_000, MaxFlows: 500, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	frac := res.ProbeBytes / res.FabricBytes
	// §6.5: Contra's overhead over ECMP is ~0.8%; probes should be a
	// small share of fabric bytes.
	if frac > 0.05 {
		t.Fatalf("probe fraction = %.3f, want < 0.05", frac)
	}
	if res.ProbeBytes == 0 {
		t.Fatal("no probe traffic recorded")
	}
}

func TestRunFailoverContra(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	g := topo.PaperDataCenter()
	res, err := RunFailover(FailoverConfig{
		Topo: g, Scheme: SchemeContra,
		FailAtNs: 20_000_000, EndNs: 40_000_000, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.BaselineBps < 1e9 {
		t.Fatalf("baseline throughput %.2g bps too low", res.BaselineBps)
	}
	if res.RecoveryNs < 0 {
		t.Fatal("throughput never recovered after failure")
	}
	// Paper: recovery within ~1ms of detection (3 probe periods
	// ~768us); allow a few ms of slack for binning.
	if res.RecoveryNs > 10_000_000 {
		t.Fatalf("recovery took %dms, want < 10ms", res.RecoveryNs/1_000_000)
	}
}

func TestCompileSweepSmall(t *testing.T) {
	topos := []*topo.Graph{topo.Fattree(4, 0), topo.RandomConnected(50, 4, 1)}
	rows, err := CompileSweep(topos, StandardPolicies())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	for _, r := range rows {
		if r.CompileTime <= 0 || r.MaxStateKB <= 0 {
			t.Errorf("row %+v has empty measurements", r)
		}
		if r.Policy == "CA" && r.Pids != 2 {
			t.Errorf("CA pids = %d, want 2", r.Pids)
		}
		if r.Policy == "WP" && r.TagBits < 1 {
			t.Errorf("WP tag bits = %d, want >= 1", r.TagBits)
		}
	}
}

func TestFabricCapacity(t *testing.T) {
	g := topo.PaperDataCenter()
	// 4 leaves x 2 spines x 10G = 80G of leaf uplinks.
	if got := FabricCapacity(g); got != 80e9 {
		t.Fatalf("capacity = %g, want 80e9", got)
	}
	ab := topo.AbileneWithHosts(0)
	if got := FabricCapacity(ab); got != 40e9 {
		t.Fatalf("abilene reference = %g, want one 40G link", got)
	}
}

func TestDeployUnknownScheme(t *testing.T) {
	g := topo.PaperDataCenter()
	_, err := RunFCT(FCTConfig{Topo: g, Scheme: "bogus", Load: 0.1})
	if err == nil {
		t.Fatal("unknown scheme should fail")
	}
}
