// Package exp is the experiment harness: it assembles topology +
// scheme + workload into the runs behind every evaluation figure
// (Figures 9-16 and the §6.5 loop statistics), so the benchmark
// targets, the CLI driver, and tests all execute the same code.
//
// Since the scenario subsystem landed, RunFCT and RunFailover are thin
// wrappers: each translates its config into a scenario.Scenario and
// delegates to scenario.Run, which owns the simulation loop and the
// timed event script. New code should construct scenarios (or
// campaigns) directly; these entry points remain for the figure
// harness and compatibility.
package exp

import (
	"fmt"
	"time"

	"contra/internal/core"
	"contra/internal/dataplane"
	"contra/internal/policy"
	"contra/internal/scenario"
	"contra/internal/sim"
	"contra/internal/stats"
	"contra/internal/topo"
	"contra/internal/workload"
)

// Scheme names a routing system under test.
type Scheme = scenario.Scheme

// Supported schemes.
const (
	SchemeContra = scenario.SchemeContra
	SchemeECMP   = scenario.SchemeECMP
	SchemeHula   = scenario.SchemeHula
	SchemeSpain  = scenario.SchemeSpain
	SchemeSP     = scenario.SchemeSP
)

// FCTConfig drives one flow-completion-time run.
type FCTConfig struct {
	Topo      *topo.Graph
	Scheme    Scheme
	PolicySrc string // Contra only; default minimize(path.util)

	Dist        *workload.Distribution
	Load        float64
	CapacityBps float64 // 0: derived from the topology's fabric links
	DurationNs  int64   // arrival window; default 20ms
	DrainNs     int64   // post-arrival drain budget; default 1s
	MaxFlows    int     // cap on generated flows; default 4000
	Seed        int64

	ProbePeriodNs        int64 // Contra and HULA; default 256us (§6.3)
	FlowletTimeoutNs     int64 // default 200us (§6.3); ablation knob
	FailureDetectPeriods int   // Contra's k (§5.4); default 3

	// Pairs restricts traffic to fixed sender/receiver host pairs, as
	// in the Abilene experiment (§6.4: "randomly chose four pairs").
	Pairs [][2]topo.NodeID

	SampleQueues bool // record fabric queue lengths (Figure 13)
	TrackLoops   bool // record looped-packet fraction (§6.5)
}

// FabricCapacity sums edge-uplink bandwidth, the reference the paper's
// load fractions normalize against.
func FabricCapacity(g *topo.Graph) float64 { return scenario.FabricCapacity(g) }

// FCTResult summarizes one run.
type FCTResult struct {
	Scheme    Scheme
	Load      float64
	Dist      string
	Flows     int
	Completed int64

	MeanFCT float64 // seconds
	P50FCT  float64
	P99FCT  float64

	FabricBytes   float64
	DataBytes     float64
	AckBytes      float64
	ProbeBytes    float64
	TagBytes      float64
	QueueDrops    float64
	LoopedFrac    float64
	LoopBreaks    float64
	QueueMSS      *stats.Sample
	SimulatedTime time.Duration
	WallTime      time.Duration
}

// String renders one result row.
func (r *FCTResult) String() string {
	return fmt.Sprintf("%-7s load=%.0f%% %-9s flows=%d done=%d meanFCT=%.3fms p99=%.3fms probes=%.2f%% drops=%.0f",
		r.Scheme, r.Load*100, r.Dist, r.Flows, r.Completed,
		r.MeanFCT*1e3, r.P99FCT*1e3,
		100*r.ProbeBytes/maxf(r.FabricBytes, 1), r.QueueDrops)
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// Deploy installs a scheme's routers on a network, returning the
// Contra routers when applicable (for diagnostics).
func Deploy(n *sim.Network, scheme Scheme, g *topo.Graph, policySrc string, opts core.Options) (map[topo.NodeID]*dataplane.Contra, *core.Compiled, error) {
	fleet, comp, err := scenario.Deploy(n, scheme, g, policySrc, opts, nil, nil, nil)
	if fleet == nil {
		return nil, comp, err
	}
	return fleet.Routers(), comp, err
}

// RunFCT executes one FCT experiment: warm up the control plane,
// offer the workload, drain, and collect statistics.
func RunFCT(cfg FCTConfig) (*FCTResult, error) {
	dist := cfg.Dist
	if dist == nil {
		dist = workload.WebSearch()
	}
	res, err := scenario.Run(scenario.Scenario{
		Topo:   cfg.Topo,
		Scheme: cfg.Scheme,
		Policy: cfg.PolicySrc,
		Seed:   cfg.Seed,
		Workload: scenario.Workload{
			Kind:        scenario.WorkloadFCT,
			DistObj:     dist, // preserves custom distributions
			Load:        cfg.Load,
			CapacityBps: cfg.CapacityBps,
			DurationNs:  cfg.DurationNs,
			DrainNs:     cfg.DrainNs,
			MaxFlows:    cfg.MaxFlows,
		},
		PairIDs:              cfg.Pairs,
		ProbePeriodNs:        cfg.ProbePeriodNs,
		FlowletTimeoutNs:     cfg.FlowletTimeoutNs,
		FailureDetectPeriods: cfg.FailureDetectPeriods,
		SampleQueues:         cfg.SampleQueues,
		TrackLoops:           cfg.TrackLoops,
	})
	if err != nil {
		return nil, err
	}
	return &FCTResult{
		Scheme:        res.Scheme,
		Load:          res.Load,
		Dist:          res.Dist,
		Flows:         res.Flows,
		Completed:     res.Completed,
		MeanFCT:       res.MeanFCT,
		P50FCT:        res.P50FCT,
		P99FCT:        res.P99FCT,
		FabricBytes:   res.FabricBytes,
		DataBytes:     res.DataBytes,
		AckBytes:      res.AckBytes,
		ProbeBytes:    res.ProbeBytes,
		TagBytes:      res.TagBytes,
		QueueDrops:    res.QueueDrops,
		LoopedFrac:    res.LoopedFrac,
		LoopBreaks:    res.LoopBreaks,
		QueueMSS:      res.QueueMSS,
		SimulatedTime: time.Duration(res.SimulatedNs),
		WallTime:      res.WallTime,
	}, nil
}

// FailoverConfig drives the Figure 14 experiment: steady UDP load, a
// link failure mid-run, and a throughput time series around it.
type FailoverConfig struct {
	Topo                 *topo.Graph
	Scheme               Scheme // contra or hula
	PolicySrc            string
	RateBps              float64 // aggregate offered UDP rate; default 4.25 Gbps
	FailAtNs             int64   // default 50ms
	EndNs                int64   // default 80ms
	BinNs                int64   // default 500us
	ProbePeriodNs        int64   // default 256us
	FailureDetectPeriods int     // Contra's k (§5.4); default 3
	Seed                 int64
}

// FailoverResult reports the throughput series and the recovery time.
type FailoverResult struct {
	Series []stats.Point // bin start ns -> delivered bits/sec
	BinNs  int64

	FailAtNs    int64
	DetectNs    int64 // first bin after failure with >90% of baseline
	RecoveryNs  int64 // DetectNs - FailAtNs
	BaselineBps float64
	MinBps      float64 // deepest dip after failure
}

// RunFailover executes the Figure 14 experiment as a CBR scenario
// whose event script fails the first edge-fabric link at FailAtNs.
func RunFailover(cfg FailoverConfig) (*FailoverResult, error) {
	if cfg.FailAtNs == 0 {
		cfg.FailAtNs = 50_000_000
	}
	if cfg.BinNs == 0 {
		cfg.BinNs = 500_000
	}
	res, err := scenario.Run(scenario.Scenario{
		Topo:   cfg.Topo,
		Scheme: cfg.Scheme,
		Policy: cfg.PolicySrc,
		Seed:   cfg.Seed,
		Workload: scenario.Workload{
			Kind:    scenario.WorkloadCBR,
			RateBps: cfg.RateBps,
			EndNs:   cfg.EndNs,
		},
		Events: []scenario.Event{
			{Kind: scenario.LinkDown, AtNs: cfg.FailAtNs, Link: "auto"},
		},
		BinNs:                cfg.BinNs,
		ProbePeriodNs:        cfg.ProbePeriodNs,
		FailureDetectPeriods: cfg.FailureDetectPeriods,
	})
	if err != nil {
		return nil, err
	}
	return &FailoverResult{
		Series:      res.Series,
		BinNs:       cfg.BinNs,
		FailAtNs:    res.FailAtNs,
		DetectNs:    res.FailAtNs + res.RecoveryNs,
		RecoveryNs:  res.RecoveryNs,
		BaselineBps: res.BaselineBps,
		MinBps:      res.MinBps,
	}, nil
}

// CompileRow is one Figure 9/10 measurement.
type CompileRow struct {
	Topology    string
	Switches    int
	Policy      string
	CompileTime time.Duration
	MaxStateKB  float64
	MeanStateKB float64
	PGNodes     int
	TagBits     int
	Pids        int
}

// CompileSweep measures compilation across topologies and policies
// (Figures 9 and 10). The policies map names (MU/WP/CA) to source
// generators given the topology.
func CompileSweep(topos []*topo.Graph, policies map[string]func(g *topo.Graph) string) ([]CompileRow, error) {
	var rows []CompileRow
	for _, g := range topos {
		for name, gen := range policies {
			src := gen(g)
			pol, err := policy.Parse(src, policy.ParseOptions{Symbols: g.SortedNames()})
			if err != nil {
				return nil, fmt.Errorf("%s on %s: %v", name, g.Name, err)
			}
			comp, err := core.Compile(g, pol, core.Options{})
			if err != nil {
				return nil, fmt.Errorf("%s on %s: %v", name, g.Name, err)
			}
			rows = append(rows, CompileRow{
				Topology:    g.Name,
				Switches:    len(g.Switches()),
				Policy:      name,
				CompileTime: comp.Stats.CompileTime,
				MaxStateKB:  float64(comp.Stats.MaxStateBytes) / 1000,
				MeanStateKB: comp.Stats.MeanStateBytes / 1000,
				PGNodes:     comp.Stats.PGNodes,
				TagBits:     comp.Stats.TagBits,
				Pids:        comp.Stats.Pids,
			})
		}
	}
	return rows, nil
}

// StandardPolicies returns the MU / WP / CA policy generators used by
// the scalability experiments (§6.2): minimum utilization, a
// three-waypoint policy, and the non-isotonic congestion-aware policy.
func StandardPolicies() map[string]func(g *topo.Graph) string {
	return map[string]func(g *topo.Graph) string{
		"MU": func(*topo.Graph) string { return "minimize(path.util)" },
		"WP": func(g *topo.Graph) string {
			names := g.SortedNames()
			k := len(names) / 2
			w1, w2, w3 := names[k], names[k/2], names[len(names)-1]
			return fmt.Sprintf("minimize(if .* (%s + %s + %s) .* then path.util else inf)", w1, w2, w3)
		},
		"CA": func(*topo.Graph) string {
			return "minimize(if path.util < .8 then (1, 0, path.util) else (2, path.len, path.util))"
		},
	}
}
