// Package exp is the experiment harness: it assembles topology +
// scheme + workload into the runs behind every evaluation figure
// (Figures 9-16 and the §6.5 loop statistics), so the benchmark
// targets, the CLI driver, and tests all execute the same code.
package exp

import (
	"fmt"
	"time"

	"contra/internal/baseline"
	"contra/internal/core"
	"contra/internal/dataplane"
	"contra/internal/policy"
	"contra/internal/sim"
	"contra/internal/stats"
	"contra/internal/topo"
	"contra/internal/workload"
)

// Scheme names a routing system under test.
type Scheme string

// Supported schemes.
const (
	SchemeContra Scheme = "contra"
	SchemeECMP   Scheme = "ecmp"
	SchemeHula   Scheme = "hula"
	SchemeSpain  Scheme = "spain"
	SchemeSP     Scheme = "sp"
)

// FCTConfig drives one flow-completion-time run.
type FCTConfig struct {
	Topo      *topo.Graph
	Scheme    Scheme
	PolicySrc string // Contra only; default minimize(path.util)

	Dist        *workload.Distribution
	Load        float64
	CapacityBps float64 // 0: derived from the topology's fabric links
	DurationNs  int64   // arrival window; default 20ms
	DrainNs     int64   // post-arrival drain budget; default 1s
	MaxFlows    int     // cap on generated flows; default 4000
	Seed        int64

	ProbePeriodNs        int64 // Contra and HULA; default 256us (§6.3)
	FlowletTimeoutNs     int64 // default 200us (§6.3); ablation knob
	FailureDetectPeriods int   // Contra's k (§5.4); default 3

	// Pairs restricts traffic to fixed sender/receiver host pairs, as
	// in the Abilene experiment (§6.4: "randomly chose four pairs").
	Pairs [][2]topo.NodeID

	SampleQueues bool // record fabric queue lengths (Figure 13)
	TrackLoops   bool // record looped-packet fraction (§6.5)
}

func (c *FCTConfig) fill() {
	if c.PolicySrc == "" {
		c.PolicySrc = "minimize(path.util)"
	}
	if c.Dist == nil {
		c.Dist = workload.WebSearch()
	}
	if c.DurationNs == 0 {
		c.DurationNs = 20_000_000
	}
	if c.MaxFlows == 0 {
		c.MaxFlows = 4000
	}
	if c.ProbePeriodNs == 0 {
		c.ProbePeriodNs = 256_000
	}
	if c.CapacityBps == 0 {
		c.CapacityBps = FabricCapacity(c.Topo)
	}
}

// FabricCapacity sums edge-uplink bandwidth (edge/leaf to the rest of
// the fabric), the reference the paper's load fractions normalize
// against. Down links still count: the asymmetric experiments keep the
// symmetric load reference ("75% of capacity remains").
func FabricCapacity(g *topo.Graph) float64 {
	var total float64
	for _, l := range g.Links() {
		a, b := g.Node(l.A), g.Node(l.B)
		if a.Kind != topo.Switch || b.Kind != topo.Switch {
			continue
		}
		if a.Role == topo.RoleEdge || b.Role == topo.RoleEdge {
			total += l.Bandwidth
		}
	}
	if total == 0 {
		// Non-hierarchical (WAN) topology: use a single link's worth,
		// scaled by sender count elsewhere.
		for _, l := range g.Links() {
			if g.Node(l.A).Kind == topo.Switch && g.Node(l.B).Kind == topo.Switch {
				total = l.Bandwidth
				break
			}
		}
	}
	return total
}

// FCTResult summarizes one run.
type FCTResult struct {
	Scheme    Scheme
	Load      float64
	Dist      string
	Flows     int
	Completed int64

	MeanFCT float64 // seconds
	P50FCT  float64
	P99FCT  float64

	FabricBytes   float64
	DataBytes     float64
	AckBytes      float64
	ProbeBytes    float64
	TagBytes      float64
	QueueDrops    float64
	LoopedFrac    float64
	LoopBreaks    float64
	QueueMSS      *stats.Sample
	SimulatedTime time.Duration
	WallTime      time.Duration
}

// String renders one result row.
func (r *FCTResult) String() string {
	return fmt.Sprintf("%-7s load=%.0f%% %-9s flows=%d done=%d meanFCT=%.3fms p99=%.3fms probes=%.2f%% drops=%.0f",
		r.Scheme, r.Load*100, r.Dist, r.Flows, r.Completed,
		r.MeanFCT*1e3, r.P99FCT*1e3,
		100*r.ProbeBytes/maxf(r.FabricBytes, 1), r.QueueDrops)
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// Deploy installs a scheme's routers on a network, returning the
// Contra routers when applicable (for diagnostics).
func Deploy(n *sim.Network, scheme Scheme, g *topo.Graph, policySrc string, opts core.Options) (map[topo.NodeID]*dataplane.Contra, *core.Compiled, error) {
	switch scheme {
	case SchemeContra:
		pol, err := policy.Parse(policySrc, policy.ParseOptions{Symbols: g.SortedNames()})
		if err != nil {
			return nil, nil, err
		}
		comp, err := core.Compile(g, pol, opts)
		if err != nil {
			return nil, nil, err
		}
		routers := dataplane.Deploy(n, comp)
		return routers, comp, nil
	case SchemeECMP:
		baseline.DeployECMP(n)
	case SchemeSP:
		baseline.DeploySP(n)
	case SchemeHula:
		baseline.DeployHula(n, baseline.HulaConfig{
			ProbePeriodNs:    opts.ProbePeriodNs,
			FlowletTimeoutNs: opts.FlowletTimeoutNs,
		})
	case SchemeSpain:
		baseline.DeploySpain(n, baseline.SpainConfig{})
	default:
		return nil, nil, fmt.Errorf("exp: unknown scheme %q", scheme)
	}
	return nil, nil, nil
}

// RunFCT executes one FCT experiment: warm up the control plane,
// offer the workload, drain, and collect statistics.
func RunFCT(cfg FCTConfig) (*FCTResult, error) {
	cfg.fill()
	wallStart := time.Now()
	g := cfg.Topo
	e := sim.NewEngine(cfg.Seed + 1)
	n := sim.NewNetwork(e, g, sim.Config{TrackVisited: cfg.TrackLoops})
	_, _, err := Deploy(n, cfg.Scheme, g, cfg.PolicySrc, core.Options{
		ProbePeriodNs:        cfg.ProbePeriodNs,
		FlowletTimeoutNs:     cfg.FlowletTimeoutNs,
		FailureDetectPeriods: cfg.FailureDetectPeriods,
	})
	if err != nil {
		return nil, err
	}
	n.Start()

	warmup := 12 * cfg.ProbePeriodNs
	e.Run(warmup)

	senders, receivers := workload.SplitHosts(g)
	flows := workload.Generate(g, workload.Config{
		Dist: cfg.Dist, Senders: senders, Receivers: receivers,
		Pairs: cfg.Pairs,
		Load:  cfg.Load, CapacityBps: cfg.CapacityBps,
		StartNs: warmup, DurationNs: cfg.DurationNs,
		Seed: cfg.Seed, MaxFlows: cfg.MaxFlows,
	})
	if len(flows) == 0 {
		return nil, fmt.Errorf("exp: workload produced no flows (load %.2f)", cfg.Load)
	}
	n.StartFlows(flows)

	if cfg.SampleQueues {
		e.Every(warmup, 100_000, n.SampleQueues)
	}

	// Run until all flows complete or the drain budget expires; under
	// extreme load some flows stay incomplete and the FCT statistics
	// cover the completed ones, as in testbed practice.
	drain := cfg.DrainNs
	if drain == 0 {
		drain = 1_000_000_000
	}
	deadline := warmup + cfg.DurationNs + drain
	for e.Now() < deadline && n.CompletedFlows() < int64(len(flows)) {
		e.Run(e.Now() + 10_000_000)
	}

	res := &FCTResult{
		Scheme:        cfg.Scheme,
		Load:          cfg.Load,
		Dist:          cfg.Dist.Name,
		Flows:         len(flows),
		Completed:     n.CompletedFlows(),
		MeanFCT:       n.FCT.Mean(),
		P50FCT:        n.FCT.Quantile(0.5),
		P99FCT:        n.FCT.Quantile(0.99),
		FabricBytes:   n.FabricBytes(),
		DataBytes:     n.Counters.Get("bytes_data"),
		AckBytes:      n.Counters.Get("bytes_ack"),
		ProbeBytes:    n.Counters.Get("bytes_probe"),
		TagBytes:      n.Counters.Get("bytes_tag_overhead"),
		QueueDrops:    n.Counters.Get("drop_queue"),
		LoopBreaks:    n.Counters.Get("loop_break"),
		QueueMSS:      n.QueueMSS,
		SimulatedTime: time.Duration(e.Now()),
		WallTime:      time.Since(wallStart),
	}
	if n.DataPkts > 0 {
		res.LoopedFrac = float64(n.LoopedPkts) / float64(n.DataPkts)
	}
	return res, nil
}

// FailoverConfig drives the Figure 14 experiment: steady UDP load, a
// link failure mid-run, and a throughput time series around it.
type FailoverConfig struct {
	Topo                 *topo.Graph
	Scheme               Scheme // contra or hula
	PolicySrc            string
	RateBps              float64 // aggregate offered UDP rate; default 4.25 Gbps
	FailAtNs             int64   // default 50ms
	EndNs                int64   // default 80ms
	BinNs                int64   // default 500us
	ProbePeriodNs        int64   // default 256us
	FailureDetectPeriods int     // Contra's k (§5.4); default 3
	Seed                 int64
}

// FailoverResult reports the throughput series and the recovery time.
type FailoverResult struct {
	Series []stats.Point // bin start ns -> delivered bits/sec
	BinNs  int64

	FailAtNs    int64
	DetectNs    int64 // first bin after failure with >90% of baseline
	RecoveryNs  int64 // DetectNs - FailAtNs
	BaselineBps float64
	MinBps      float64 // deepest dip after failure
}

// RunFailover executes the Figure 14 experiment.
func RunFailover(cfg FailoverConfig) (*FailoverResult, error) {
	if cfg.RateBps == 0 {
		cfg.RateBps = 4.25e9
	}
	if cfg.FailAtNs == 0 {
		cfg.FailAtNs = 50_000_000
	}
	if cfg.EndNs == 0 {
		cfg.EndNs = 80_000_000
	}
	if cfg.BinNs == 0 {
		cfg.BinNs = 500_000
	}
	if cfg.ProbePeriodNs == 0 {
		cfg.ProbePeriodNs = 256_000
	}
	if cfg.PolicySrc == "" {
		cfg.PolicySrc = "minimize(path.util)"
	}
	g := cfg.Topo
	e := sim.NewEngine(cfg.Seed + 5)
	n := sim.NewNetwork(e, g, sim.Config{})
	routers, comp, err := Deploy(n, cfg.Scheme, g, cfg.PolicySrc, core.Options{
		ProbePeriodNs:        cfg.ProbePeriodNs,
		FailureDetectPeriods: cfg.FailureDetectPeriods,
	})
	if err != nil {
		return nil, err
	}
	_ = routers
	_ = comp
	n.RxSeries = stats.NewTimeseries(cfg.BinNs)
	n.Start()

	warmup := 12 * cfg.ProbePeriodNs
	senders, receivers := workload.SplitHosts(g)
	per := cfg.RateBps / float64(len(senders))
	// Snap the per-flow packet gap to divide the measurement bin, so
	// bins hold an integral packet count: otherwise a slow beat between
	// the CBR period and the bin width shows up as phantom throughput
	// dips that drown the failure signal.
	pktBits := float64((sim.MSS + sim.FrameHeader) * 8)
	gapRaw := pktBits / per * 1e9
	divisions := int64(float64(cfg.BinNs)/gapRaw + 0.5)
	if divisions < 1 {
		divisions = 1
	}
	per = pktBits * float64(divisions) / float64(cfg.BinNs) * 1e9
	// Pair each sender with a receiver in a different part of the
	// fabric (offset by a quarter of the host set) so that every flow
	// crosses the core and the failed link actually carries traffic.
	var flows []sim.FlowSpec
	for i, s := range senders {
		dst := receivers[(i+len(receivers)/4+1)%len(receivers)]
		for tries := 0; g.HostEdge(s) == g.HostEdge(dst) && tries < len(receivers); tries++ {
			dst = receivers[(i+len(receivers)/4+1+tries)%len(receivers)]
		}
		flows = append(flows, sim.FlowSpec{
			ID: uint64(i + 1), Src: s, Dst: dst,
			RateBps: per, Start: warmup,
		})
	}
	n.StartFlows(flows)

	// Fail the first edge-core (or edge-agg) fabric link of leaf 0.
	var fail topo.LinkID = -1
	for _, l := range g.Links() {
		if g.Node(l.A).Kind == topo.Switch && g.Node(l.B).Kind == topo.Switch {
			if g.Node(l.A).Role == topo.RoleEdge || g.Node(l.B).Role == topo.RoleEdge {
				fail = l.ID
				break
			}
		}
	}
	if fail < 0 {
		return nil, fmt.Errorf("exp: no fabric link to fail")
	}
	n.FailLink(fail, cfg.FailAtNs)
	e.Run(cfg.EndNs)

	res := &FailoverResult{BinNs: cfg.BinNs, FailAtNs: cfg.FailAtNs}
	pts := n.RxSeries.Points()
	res.Series = make([]stats.Point, len(pts))
	for i, p := range pts {
		res.Series[i] = stats.Point{T: p.T, V: n.RxSeries.Rate(p.V)}
	}
	// Baseline: mean and floor of the bins in the 10ms before the
	// failure. Residual measurement noise shows up in the pre-failure
	// floor, so "depressed" means below that floor, not below the
	// mean.
	var base, cnt float64
	floor := -1.0
	for _, p := range res.Series {
		if p.T >= cfg.FailAtNs-10_000_000 && p.T < cfg.FailAtNs-cfg.BinNs {
			base += p.V
			cnt++
			if floor < 0 || p.V < floor {
				floor = p.V
			}
		}
	}
	if cnt > 0 {
		base /= cnt
	}
	res.BaselineBps = base
	res.MinBps = base
	res.DetectNs = -1
	// Recovery: the end of the last bin still depressed below 99% of
	// the pre-failure floor. A failure whose dip never crosses the
	// threshold recovered within one bin.
	lastLow := int64(-1)
	for _, p := range res.Series {
		if p.T < cfg.FailAtNs || p.T >= cfg.EndNs-cfg.BinNs {
			continue
		}
		if p.V < res.MinBps {
			res.MinBps = p.V
		}
		if p.V < 0.99*floor {
			lastLow = p.T + cfg.BinNs
		}
	}
	if base <= 0 {
		res.RecoveryNs = -1
	} else if lastLow < 0 {
		res.RecoveryNs = cfg.BinNs
	} else {
		res.RecoveryNs = lastLow - cfg.FailAtNs
	}
	res.DetectNs = cfg.FailAtNs + res.RecoveryNs
	return res, nil
}

// CompileRow is one Figure 9/10 measurement.
type CompileRow struct {
	Topology    string
	Switches    int
	Policy      string
	CompileTime time.Duration
	MaxStateKB  float64
	MeanStateKB float64
	PGNodes     int
	TagBits     int
	Pids        int
}

// CompileSweep measures compilation across topologies and policies
// (Figures 9 and 10). The policies map names (MU/WP/CA) to source
// generators given the topology.
func CompileSweep(topos []*topo.Graph, policies map[string]func(g *topo.Graph) string) ([]CompileRow, error) {
	var rows []CompileRow
	for _, g := range topos {
		for name, gen := range policies {
			src := gen(g)
			pol, err := policy.Parse(src, policy.ParseOptions{Symbols: g.SortedNames()})
			if err != nil {
				return nil, fmt.Errorf("%s on %s: %v", name, g.Name, err)
			}
			comp, err := core.Compile(g, pol, core.Options{})
			if err != nil {
				return nil, fmt.Errorf("%s on %s: %v", name, g.Name, err)
			}
			rows = append(rows, CompileRow{
				Topology:    g.Name,
				Switches:    len(g.Switches()),
				Policy:      name,
				CompileTime: comp.Stats.CompileTime,
				MaxStateKB:  float64(comp.Stats.MaxStateBytes) / 1000,
				MeanStateKB: comp.Stats.MeanStateBytes / 1000,
				PGNodes:     comp.Stats.PGNodes,
				TagBits:     comp.Stats.TagBits,
				Pids:        comp.Stats.Pids,
			})
		}
	}
	return rows, nil
}

// StandardPolicies returns the MU / WP / CA policy generators used by
// the scalability experiments (§6.2): minimum utilization, a
// three-waypoint policy, and the non-isotonic congestion-aware policy.
func StandardPolicies() map[string]func(g *topo.Graph) string {
	return map[string]func(g *topo.Graph) string{
		"MU": func(*topo.Graph) string { return "minimize(path.util)" },
		"WP": func(g *topo.Graph) string {
			names := g.SortedNames()
			k := len(names) / 2
			w1, w2, w3 := names[k], names[k/2], names[len(names)-1]
			return fmt.Sprintf("minimize(if .* (%s + %s + %s) .* then path.util else inf)", w1, w2, w3)
		},
		"CA": func(*topo.Graph) string {
			return "minimize(if path.util < .8 then (1, 0, path.util) else (2, path.len, path.util))"
		},
	}
}
