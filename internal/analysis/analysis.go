// Package analysis implements Contra's static policy analyses (§2,
// §3 and appendix A of the paper):
//
//   - Monotonicity: a path's rank must not improve as the path grows,
//     or probes could circulate forever and forwarding loops form even
//     with versioned probes.
//   - Isotonicity: switches along a path must agree on preference
//     order, or greedy per-hop selection yields suboptimal paths.
//   - Decomposition: a non-isotonic policy is split into isotonic
//     subpolicies, one probe class (pid) each. Probes propagate
//     independently per pid, ordered by that pid's leaf expression,
//     and each switch recombines them by evaluating the full policy
//     over the best entry of every (tag, pid).
//
// Regular-expression conditionals are *not* decomposed here: the
// product graph handles them structurally (per-tag probes, §4.1).
// Decomposition splits on the distinct metric leaf expressions of the
// policy's conditional tree.
package analysis

import (
	"fmt"
	"sort"
	"strings"

	"contra/internal/policy"
)

// Subpolicy is one isotonic probe class produced by decomposition.
type Subpolicy struct {
	ID int // probe id (pid) carried by probes and table keys

	// Rank is the leaf expression ordering this pid's probes during
	// propagation: PROCESSPROBE's f(pid, mv). It contains no
	// conditionals and no regex matches.
	Rank policy.Expr

	// Sig is the ordering signature leaves were grouped by (additive
	// constants stripped); leaves with equal signatures share a pid.
	Sig string

	// Leaves are the original leaf expressions folded into this pid
	// (for diagnostics).
	Leaves []string

	// ConstOnly marks pids whose rank ignores metrics entirely: probes
	// then only discover reachability, and any compliant path ties.
	ConstOnly bool
}

// Result is the outcome of analyzing one policy.
type Result struct {
	Policy *policy.Policy

	// Monotone reports the conservative whole-policy monotonicity
	// check. Non-monotone policies compile but the paper's loop
	// freedom argument no longer holds; Warnings explains.
	Monotone bool

	// Isotone reports whether the policy is isotonic as written
	// (single pid, no metric conditionals, well-ordered tuples).
	// Non-isotonic policies are decomposed.
	Isotone bool

	// Subpolicies has one entry per pid, in pid order.
	Subpolicies []Subpolicy

	// MV is the metric vector layout carried by every probe: the
	// distinct attributes the policy reads, in Metric order. All pids
	// share the layout so that final evaluation can run on any entry.
	MV []policy.Metric

	// Warnings collects non-fatal findings (non-monotone conditionals,
	// approximated isotonicity, ...).
	Warnings []string
}

// NumPids returns the number of probe classes.
func (r *Result) NumPids() int { return len(r.Subpolicies) }

// Analyze runs all static analyses on p.
func Analyze(p *policy.Policy) (*Result, error) {
	res := &Result{Policy: p, MV: append([]policy.Metric(nil), p.Attrs...)}

	leaves := hoistLeaves(p.Body)
	if len(leaves) == 0 {
		return nil, fmt.Errorf("analysis: policy has no rank leaves")
	}

	// Group leaves by ordering signature.
	bySig := make(map[string]*Subpolicy)
	var order []string
	for _, leaf := range leaves {
		if err := checkLeafMonotone(leaf); err != nil {
			return nil, err
		}
		if containsInf(leaf) {
			// Inf is absorbing in tuples and arithmetic, so this leaf
			// ranks every path inf: no probes are needed for it —
			// such paths are simply never used.
			continue
		}
		if isConstExpr(leaf) {
			// Constant leaves (including inf) induce no ordering; fold
			// them all into one reachability-only pid keyed "const".
			sp, ok := bySig["const"]
			if !ok {
				sp = &Subpolicy{Rank: &policy.Const{X: 0}, Sig: "const", ConstOnly: true}
				bySig["const"] = sp
				order = append(order, "const")
			}
			sp.Leaves = append(sp.Leaves, leaf.String())
			continue
		}
		sig := orderSignature(leaf)
		sp, ok := bySig[sig]
		if !ok {
			sp = &Subpolicy{Rank: stripConstants(leaf), Sig: sig}
			bySig[sig] = sp
			order = append(order, sig)
		}
		sp.Leaves = append(sp.Leaves, leaf.String())
	}
	// Constant leaves need no probe class of their own when a metric
	// pid exists: probes of any pid flood the (pruned) product graph,
	// establishing the routes, and the constant rank is recovered at
	// decision time from the tag's acceptance bits. This is the
	// paper's Figure 6(e) observation that its example policy needs
	// only a single pid carrying utilization. A reachability-only pid
	// survives only for purely static policies.
	hasMetricPid := false
	for _, sig := range order {
		if sig != "const" {
			hasMetricPid = true
			break
		}
	}
	if hasMetricPid {
		filtered := order[:0]
		for _, sig := range order {
			if sig != "const" {
				filtered = append(filtered, sig)
			}
		}
		order = filtered
	}
	// Deterministic pid assignment in first-seen order.
	sort.SliceStable(order, func(i, j int) bool {
		if (order[i] == "const") != (order[j] == "const") {
			return order[j] == "const"
		}
		return false
	})
	for i, sig := range order {
		sp := bySig[sig]
		sp.ID = i
		res.Subpolicies = append(res.Subpolicies, *sp)
	}

	// Pure-inf policies admit no traffic anywhere; reject early.
	if len(res.Subpolicies) == 0 {
		return nil, fmt.Errorf("analysis: policy ranks every path inf; no traffic would be admitted")
	}

	res.Monotone = checkPolicyMonotone(p.Body, res)
	res.Isotone = checkIsotone(p.Body, res)
	return res, nil
}

// EvalRank computes a pid's propagation rank f(pid, mv) (Figure 7) for
// a metric vector laid out per Result.MV.
func (r *Result) EvalRank(pid int, mv []float64) policy.Rank {
	sp := &r.Subpolicies[pid]
	if sp.ConstOnly {
		return policy.Finite(0)
	}
	env := mvEnv{mv: mv, layout: r.MV}
	return evalPure(sp.Rank, env)
}

// EvalPolicy evaluates the full policy for a candidate entry: mv laid
// out per Result.MV and match bits per regex ID. This is the
// recombination step each switch runs to pick its overall best entry
// (the BestT asterisk).
func (r *Result) EvalPolicy(mv []float64, matches func(regexID int) bool) policy.Rank {
	return r.Policy.Eval(&fullEnv{mv: mv, layout: r.MV, matches: matches})
}

// MaxMV is the widest metric-vector layout a compiled policy can use
// (the data plane carries metric vectors as [MaxMV]float64).
const MaxMV = 4

// Evaluator computes ranks without heap allocation by reusing an
// environment and a component buffer across calls. One Evaluator
// serves one single-threaded consumer (e.g. one switch router); a
// returned Rank aliases the internal buffer and is valid only until
// the next call, so retained ranks must copy V.
type Evaluator struct {
	res *Result
	env fullEnv
	mv  [MaxMV]float64
	buf []float64
	// keep is the second scratch rank: BetterRank parks the candidate's
	// components here so evaluating the incumbent cannot clobber them,
	// letting one evaluator process a whole packed-probe batch of
	// origins entry by entry with zero allocation.
	keep []float64
}

// NewEvaluator returns a reusable rank evaluator over r.
func (r *Result) NewEvaluator() *Evaluator {
	return &Evaluator{res: r, buf: make([]float64, 0, 2*MaxMV), keep: make([]float64, 0, MaxMV)}
}

// BetterRank reports whether the candidate metric vector strictly
// outranks the incumbent under pid's propagation order. Both
// evaluations run on this evaluator's scratch state — the candidate's
// result is moved to the second scratch before the incumbent is
// evaluated — so the packed receive loop compares a batch of origins
// against one reusable evaluator without allocating or holding a
// second Evaluator.
func (ev *Evaluator) BetterRank(pid int, cand, inc [MaxMV]float64) bool {
	rc := ev.EvalRank(pid, cand)
	ev.keep = append(ev.keep[:0], rc.V...)
	rc.V = ev.keep
	return rc.Better(ev.EvalRank(pid, inc))
}

// zeroRank is the shared constant-subpolicy rank; comparisons never
// mutate V, so one instance serves every caller.
var zeroRank = policy.Finite(0)

// EvalRank is Result.EvalRank on the reused scratch state. mv passes
// by value so the caller's vector never escapes to the heap.
func (ev *Evaluator) EvalRank(pid int, mv [MaxMV]float64) policy.Rank {
	sp := &ev.res.Subpolicies[pid]
	if sp.ConstOnly {
		return zeroRank
	}
	ev.mv = mv
	ev.env = fullEnv{mv: ev.mv[:len(ev.res.MV)], layout: ev.res.MV}
	p := policy.Policy{Body: sp.Rank}
	out := p.EvalAppend(&ev.env, ev.buf[:0])
	if out.V != nil {
		ev.buf = out.V
	}
	return out
}

// EvalPolicy is Result.EvalPolicy with match bits supplied as a slice
// (one bool per regex ID) instead of a closure, on reused scratch.
func (ev *Evaluator) EvalPolicy(mv [MaxMV]float64, accept []bool) policy.Rank {
	ev.mv = mv
	ev.env = fullEnv{mv: ev.mv[:len(ev.res.MV)], layout: ev.res.MV, accept: accept}
	out := ev.res.Policy.EvalAppend(&ev.env, ev.buf[:0])
	if out.V != nil {
		ev.buf = out.V
	}
	return out
}

type mvEnv struct {
	mv     []float64
	layout []policy.Metric
}

func (e mvEnv) Attr(m policy.Metric) float64 {
	for i, a := range e.layout {
		if a == m {
			return e.mv[i]
		}
	}
	return 0
}

func (e mvEnv) Match(int) bool { return false }

type fullEnv struct {
	mv      []float64
	layout  []policy.Metric
	matches func(int) bool
	accept  []bool // when non-nil, match bits by regex ID (no closure)
}

func (e *fullEnv) Attr(m policy.Metric) float64 {
	for i, a := range e.layout {
		if a == m {
			return e.mv[i]
		}
	}
	return 0
}

func (e *fullEnv) Match(id int) bool {
	if e.accept != nil {
		return e.accept[id]
	}
	if e.matches == nil {
		return false // pure leaves carry no Match nodes (mvEnv semantics)
	}
	return e.matches(id)
}

// evalPure evaluates a leaf expression (no Match nodes) against an Env.
func evalPure(e policy.Expr, env policy.Env) policy.Rank {
	p := policy.Policy{Body: e}
	return p.Eval(env)
}

// ---- conditional hoisting ----

// hoistLeaves returns the pure metric expressions at the leaves of the
// policy's conditional tree, distributing arithmetic and tuples through
// conditionals:
//
//	(if c then a else b) + e  =>  leaves of (a+e) and (b+e)
//	(if c then a else b, e)   =>  leaves of (a,e) and (b,e)
func hoistLeaves(e policy.Expr) []policy.Expr {
	switch x := e.(type) {
	case *policy.Const, *policy.Inf, *policy.Attr:
		return []policy.Expr{e}
	case *policy.If:
		return append(hoistLeaves(x.Then), hoistLeaves(x.Else)...)
	case *policy.Bin:
		var out []policy.Expr
		for _, l := range hoistLeaves(x.L) {
			for _, r := range hoistLeaves(x.R) {
				out = append(out, &policy.Bin{Op: x.Op, L: l, R: r})
			}
		}
		return dedupExprs(out)
	case *policy.Tuple:
		// Cartesian product of element leaves.
		acc := [][]policy.Expr{nil}
		for _, el := range x.Elems {
			ls := hoistLeaves(el)
			var next [][]policy.Expr
			for _, prefix := range acc {
				for _, l := range ls {
					row := append(append([]policy.Expr(nil), prefix...), l)
					next = append(next, row)
				}
			}
			acc = next
		}
		var out []policy.Expr
		for _, row := range acc {
			out = append(out, &policy.Tuple{Elems: row})
		}
		return dedupExprs(out)
	}
	panic(fmt.Sprintf("analysis: unknown expr %T", e))
}

func dedupExprs(xs []policy.Expr) []policy.Expr {
	seen := make(map[string]bool)
	var out []policy.Expr
	for _, x := range xs {
		k := x.String()
		if !seen[k] {
			seen[k] = true
			out = append(out, x)
		}
	}
	return out
}

// ---- ordering signatures ----

// orderSignature canonicalizes a leaf so that leaves inducing the same
// preference order on metric vectors share a signature: additive
// constants vanish, positive multiplicative constants vanish, and
// constant tuple elements vanish. E.g. both (0, path.len, path.util)
// and (1, path.len, path.util) sign as "len,util", so a single probe
// class serves both conditional branches.
func orderSignature(e policy.Expr) string {
	parts := signatureParts(e)
	if len(parts) == 0 {
		return "const"
	}
	return strings.Join(parts, ",")
}

func signatureParts(e policy.Expr) []string {
	switch x := e.(type) {
	case *policy.Const, *policy.Inf:
		return nil
	case *policy.Attr:
		return []string{x.M.String()}
	case *policy.Bin:
		lc, lv := constValue(x.L)
		rc, rv := constValue(x.R)
		switch x.Op {
		case policy.Add:
			if lc {
				return signatureParts(x.R)
			}
			if rc {
				return signatureParts(x.L)
			}
		case policy.Sub:
			if rc {
				return signatureParts(x.L)
			}
			if lc && lv == 0 {
				// 0 - e reverses the order; keep it distinct.
				return []string{"-(" + strings.Join(signatureParts(x.R), ",") + ")"}
			}
		case policy.Mul:
			if lc && lv > 0 {
				return signatureParts(x.R)
			}
			if rc && rv > 0 {
				return signatureParts(x.L)
			}
		}
		// General case: keep the printed form (conservative: no
		// sharing).
		return []string{x.String()}
	case *policy.Tuple:
		var out []string
		for _, el := range x.Elems {
			out = append(out, signatureParts(el)...)
		}
		return out
	}
	panic(fmt.Sprintf("analysis: unknown expr %T", e))
}

// stripConstants removes constant tuple elements so the pid's rank
// expression matches its signature; scalar structure is kept.
func stripConstants(e policy.Expr) policy.Expr {
	t, ok := e.(*policy.Tuple)
	if !ok {
		return e
	}
	var elems []policy.Expr
	for _, el := range t.Elems {
		if isConstExpr(el) {
			continue
		}
		elems = append(elems, stripConstants(el))
	}
	if len(elems) == 0 {
		return &policy.Const{X: 0}
	}
	if len(elems) == 1 {
		return elems[0]
	}
	return &policy.Tuple{Elems: elems}
}

func isConstExpr(e policy.Expr) bool {
	c, _ := constValue(e)
	return c
}

// containsInf reports whether the leaf contains the infinite rank
// anywhere; by the eval rules (Inf absorbs through Bin and Tuple) such
// a leaf ranks every path inf.
func containsInf(e policy.Expr) bool {
	switch x := e.(type) {
	case *policy.Inf:
		return true
	case *policy.Bin:
		return containsInf(x.L) || containsInf(x.R)
	case *policy.Tuple:
		for _, el := range x.Elems {
			if containsInf(el) {
				return true
			}
		}
	}
	return false
}

// constValue evaluates e if it is metric-free. Inf reports constant
// with value +inf semantics (second return unused then).
func constValue(e policy.Expr) (bool, float64) {
	switch x := e.(type) {
	case *policy.Const:
		return true, x.X
	case *policy.Inf:
		return true, 0
	case *policy.Attr:
		return false, 0
	case *policy.Bin:
		lc, lv := constValue(x.L)
		rc, rv := constValue(x.R)
		if !lc || !rc {
			return false, 0
		}
		switch x.Op {
		case policy.Add:
			return true, lv + rv
		case policy.Sub:
			return true, lv - rv
		case policy.Mul:
			return true, lv * rv
		}
	case *policy.Tuple:
		for _, el := range x.Elems {
			if c, _ := constValue(el); !c {
				return false, 0
			}
		}
		return true, 0
	case *policy.If:
		return false, 0
	}
	return false, 0
}

// ---- monotonicity ----

// checkLeafMonotone verifies a leaf expression never decreases as its
// inputs (path metrics) grow: this is what bounds probe propagation.
func checkLeafMonotone(e policy.Expr) error {
	mono, _ := monotoneNonneg(e)
	if !mono {
		return fmt.Errorf("analysis: leaf %q is not monotone: extending a path could improve its rank, so probes could loop (use only +, * by non-negative constants, and attributes)", e.String())
	}
	return nil
}

// monotoneNonneg returns (monotone non-decreasing in every attribute,
// guaranteed non-negative).
func monotoneNonneg(e policy.Expr) (mono, nonneg bool) {
	switch x := e.(type) {
	case *policy.Const:
		return true, x.X >= 0
	case *policy.Inf:
		return true, true
	case *policy.Attr:
		return true, true // util in [0,1], lat and len non-negative
	case *policy.Bin:
		lm, ln := monotoneNonneg(x.L)
		rm, rn := monotoneNonneg(x.R)
		switch x.Op {
		case policy.Add:
			return lm && rm, ln && rn
		case policy.Sub:
			rc, rv := constValue(x.R)
			if rc {
				// e - const stays monotone; sign unknown.
				return lm, rc && rv <= 0 && ln
			}
			return false, false
		case policy.Mul:
			lc, lv := constValue(x.L)
			rc, rv := constValue(x.R)
			if lc && lv >= 0 {
				return rm, rn
			}
			if rc && rv >= 0 {
				return lm, ln
			}
			// attr * attr with both non-negative monotone is monotone.
			if lm && rm && ln && rn {
				return true, true
			}
			return false, false
		}
	case *policy.Tuple:
		mono, nonneg = true, true
		for _, el := range x.Elems {
			m, n := monotoneNonneg(el)
			mono = mono && m
			nonneg = nonneg && n
		}
		return mono, nonneg
	case *policy.If:
		// Leaves contain no conditionals; treated conservatively.
		return false, false
	}
	return false, false
}

// checkPolicyMonotone runs the conservative whole-policy check: every
// leaf monotone (already enforced) and every *metric* conditional can
// only move rank upward as metrics grow. Regex conditionals are
// excluded: the product graph gives each match outcome its own tag and
// probes never compare across tags.
func checkPolicyMonotone(e policy.Expr, res *Result) bool {
	ok := true
	var walk func(policy.Expr)
	walk = func(e policy.Expr) {
		x, isIf := e.(*policy.If)
		if !isIf {
			switch b := e.(type) {
			case *policy.Bin:
				walk(b.L)
				walk(b.R)
			case *policy.Tuple:
				for _, el := range b.Elems {
					walk(el)
				}
			}
			return
		}
		walk(x.Then)
		walk(x.Else)
		dir := condFlipDirection(x.Cond)
		if dir == flipNever {
			return // regex-only condition: handled by tags
		}
		lo, hi := x.Then, x.Else
		if dir == flipFalseToTrue {
			lo, hi = x.Else, x.Then
		}
		if dir == flipUnknown || !branchOrdered(lo, hi) {
			ok = false
			res.Warnings = append(res.Warnings, fmt.Sprintf(
				"conditional %q may rank a longer path better than its prefix; loop freedom is not guaranteed", x.Cond.String()))
		}
	}
	walk(e)
	return ok
}

type flipDir uint8

const (
	flipNever       flipDir = iota // regex-only: tags isolate outcomes
	flipTrueToFalse                // e.g. attr < c: true while small
	flipFalseToTrue                // e.g. attr > c
	flipUnknown
)

// condFlipDirection classifies how a condition can change as path
// metrics grow along an extension.
func condFlipDirection(c policy.Cond) flipDir {
	switch x := c.(type) {
	case *policy.Match:
		return flipNever
	case *policy.Cmp:
		lC, _ := constValue(x.L)
		rC, _ := constValue(x.R)
		lMono, _ := monotoneNonneg(x.L)
		rMono, _ := monotoneNonneg(x.R)
		switch {
		case rC && lMono: // metric OP const
			switch x.Op {
			case policy.LT, policy.LE:
				return flipTrueToFalse
			case policy.GT, policy.GE:
				return flipFalseToTrue
			}
		case lC && rMono: // const OP metric
			switch x.Op {
			case policy.LT, policy.LE:
				return flipFalseToTrue
			case policy.GT, policy.GE:
				return flipTrueToFalse
			}
		}
		return flipUnknown
	case *policy.Not:
		switch condFlipDirection(x.C) {
		case flipNever:
			return flipNever
		case flipTrueToFalse:
			return flipFalseToTrue
		case flipFalseToTrue:
			return flipTrueToFalse
		}
		return flipUnknown
	case *policy.And, *policy.Or:
		var l, r flipDir
		if a, ok := x.(*policy.And); ok {
			l, r = condFlipDirection(a.L), condFlipDirection(a.R)
		} else {
			o := x.(*policy.Or)
			l, r = condFlipDirection(o.L), condFlipDirection(o.R)
		}
		if l == flipNever {
			return r
		}
		if r == flipNever {
			return l
		}
		if l == r {
			return l
		}
		return flipUnknown
	}
	return flipUnknown
}

// branchOrdered conservatively checks that the branch active for small
// metrics (lo) never ranks above the branch active for large metrics
// (hi): it compares their leading constant components.
func branchOrdered(lo, hi policy.Expr) bool {
	lv, lok := leadConst(lo)
	hv, hok := leadConst(hi)
	if _, isInf := hi.(*policy.Inf); isInf {
		return true // anything <= inf
	}
	return lok && hok && lv <= hv
}

// leadConst extracts the first lexicographic component if constant.
func leadConst(e policy.Expr) (float64, bool) {
	switch x := e.(type) {
	case *policy.Const:
		return x.X, true
	case *policy.Tuple:
		if len(x.Elems) > 0 {
			return leadConst(x.Elems[0])
		}
	case *policy.If:
		lv, lok := leadConst(x.Then)
		hv, hok := leadConst(x.Else)
		if lok && hok && lv == hv {
			return lv, true
		}
	}
	return 0, false
}

// ---- isotonicity ----

// checkIsotone decides whether the policy as written is isotonic:
// a single metric ordering (one pid, no metric conditionals) whose
// tuple components are well-ordered — once a max-composed attribute
// (util) appears, no sum-composed attribute (lat, len) may follow it,
// since "widest-shortest" style orders famously violate isotonicity.
func checkIsotone(e policy.Expr, res *Result) bool {
	metricPids := 0
	for _, sp := range res.Subpolicies {
		if !sp.ConstOnly {
			metricPids++
		}
	}
	if metricPids > 1 {
		return false
	}
	if hasMetricCond(e) {
		return false
	}
	iso := true
	for _, sp := range res.Subpolicies {
		if sp.ConstOnly {
			continue
		}
		if !tupleIsotone(sp.Rank) {
			iso = false
			res.Warnings = append(res.Warnings, fmt.Sprintf(
				"ordering %q places a max-composed attribute before a sum-composed one; greedy per-hop selection may be suboptimal (paths are still policy-compliant)", sp.Rank.String()))
		}
	}
	return iso
}

func hasMetricCond(e policy.Expr) bool {
	switch x := e.(type) {
	case *policy.If:
		if condFlipDirection(x.Cond) != flipNever {
			return true
		}
		return hasMetricCond(x.Then) || hasMetricCond(x.Else)
	case *policy.Bin:
		return hasMetricCond(x.L) || hasMetricCond(x.R)
	case *policy.Tuple:
		for _, el := range x.Elems {
			if hasMetricCond(el) {
				return true
			}
		}
	}
	return false
}

// tupleIsotone checks component ordering: sum-composed attributes may
// precede max-composed ones but not the reverse.
func tupleIsotone(e policy.Expr) bool {
	comps := flattenComponents(e)
	sawMax := false
	for _, c := range comps {
		usesMax, usesSum := attrComposition(c)
		if sawMax && usesSum {
			return false
		}
		if usesMax {
			sawMax = true
		}
		if usesMax && usesSum {
			return false // mixed arithmetic like util+len in one component
		}
	}
	return true
}

func flattenComponents(e policy.Expr) []policy.Expr {
	if t, ok := e.(*policy.Tuple); ok {
		var out []policy.Expr
		for _, el := range t.Elems {
			out = append(out, flattenComponents(el)...)
		}
		return out
	}
	return []policy.Expr{e}
}

func attrComposition(e policy.Expr) (usesMax, usesSum bool) {
	switch x := e.(type) {
	case *policy.Attr:
		if x.M == policy.Util {
			return true, false
		}
		return false, true
	case *policy.Bin:
		lm, ls := attrComposition(x.L)
		rm, rs := attrComposition(x.R)
		return lm || rm, ls || rs
	case *policy.Tuple:
		for _, el := range x.Elems {
			m, s := attrComposition(el)
			usesMax = usesMax || m
			usesSum = usesSum || s
		}
	}
	return usesMax, usesSum
}

// Describe renders a human-readable analysis report (used by the
// compiler CLI).
func (r *Result) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "policy: %s\n", r.Policy.String())
	fmt.Fprintf(&b, "monotone: %v\nisotone: %v\n", r.Monotone, r.Isotone)
	fmt.Fprintf(&b, "metric vector: %v\n", r.MV)
	fmt.Fprintf(&b, "probe classes: %d\n", len(r.Subpolicies))
	for _, sp := range r.Subpolicies {
		kind := "metric"
		if sp.ConstOnly {
			kind = "reachability"
		}
		fmt.Fprintf(&b, "  pid %d (%s): order by %s  [leaves: %s]\n",
			sp.ID, kind, sp.Rank.String(), strings.Join(sp.Leaves, " | "))
	}
	for _, w := range r.Warnings {
		fmt.Fprintf(&b, "warning: %s\n", w)
	}
	return b.String()
}
