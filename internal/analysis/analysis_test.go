package analysis

import (
	"math/rand"
	"strings"
	"testing"

	"contra/internal/policy"
)

func analyze(t *testing.T, src string) *Result {
	t.Helper()
	p, err := policy.Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	res, err := Analyze(p)
	if err != nil {
		t.Fatalf("analyze %q: %v", src, err)
	}
	return res
}

func TestMinUtilIsotone(t *testing.T) {
	res := analyze(t, "minimize(path.util)")
	if !res.Isotone || !res.Monotone {
		t.Fatalf("MU should be isotone and monotone: %s", res.Describe())
	}
	if res.NumPids() != 1 {
		t.Fatalf("MU pids = %d, want 1", res.NumPids())
	}
	if res.Subpolicies[0].ConstOnly {
		t.Fatal("MU pid should carry metrics")
	}
}

func TestWaypointSinglePid(t *testing.T) {
	res := analyze(t, "minimize(if .* (F1 + F2) .* then path.util else inf)")
	if res.NumPids() != 1 {
		t.Fatalf("WP pids = %d, want 1 (inf leaf needs no probes): %s", res.NumPids(), res.Describe())
	}
	if !res.Monotone {
		t.Fatalf("WP should be monotone: %s", res.Describe())
	}
	if !res.Isotone {
		t.Fatalf("WP should be isotone (regexes handled by tags): %s", res.Describe())
	}
}

func TestCongestionAwareDecomposition(t *testing.T) {
	res := analyze(t, "minimize(if path.util < .8 then (1, 0, path.util) else (2, path.len, path.util))")
	if res.Isotone {
		t.Fatal("CA must be non-isotonic")
	}
	if !res.Monotone {
		t.Fatalf("CA is monotone (1 < 2 on branch flip): %s", res.Describe())
	}
	if res.NumPids() != 2 {
		t.Fatalf("CA pids = %d, want 2: %s", res.NumPids(), res.Describe())
	}
	// pid orderings: one by util, one by (len, util).
	sigs := map[string]bool{}
	for _, sp := range res.Subpolicies {
		sigs[sp.Sig] = true
	}
	if !sigs["util"] || !sigs["len,util"] {
		t.Fatalf("CA signatures = %v, want util and len,util", sigs)
	}
}

func TestSourceLocalDecomposition(t *testing.T) {
	res := analyze(t, "minimize(if X .* then path.util else path.lat)")
	if res.NumPids() != 2 {
		t.Fatalf("P8 pids = %d, want 2 (util and lat orderings): %s", res.NumPids(), res.Describe())
	}
	if res.Isotone {
		t.Fatal("P8 needs two orderings, so it is not isotone as one probe class")
	}
}

func TestLexicographicPreferenceSharesPid(t *testing.T) {
	// Both branches rank by (len, util); only the leading constant
	// differs, so one probe class serves both (§4.2's sharing).
	res := analyze(t, "minimize(if A .* B .* D then (0, path.len, path.util) else if A .* C .* D then (1, path.len, path.util) else inf)")
	if res.NumPids() != 1 {
		t.Fatalf("pids = %d, want 1: %s", res.NumPids(), res.Describe())
	}
	if res.Subpolicies[0].Sig != "len,util" {
		t.Fatalf("sig = %q, want len,util", res.Subpolicies[0].Sig)
	}
}

func TestWeightedLinkSharesPid(t *testing.T) {
	// (if .*XY.* then 10 else 0) + path.len: both leaves order by len.
	res := analyze(t, "minimize((if .* X Y .* then 10 else 0) + path.len)")
	if res.NumPids() != 1 {
		t.Fatalf("P7 pids = %d, want 1: %s", res.NumPids(), res.Describe())
	}
	if res.Subpolicies[0].Sig != "len" {
		t.Fatalf("P7 sig = %q, want len", res.Subpolicies[0].Sig)
	}
}

func TestStaticPreferenceConstOnly(t *testing.T) {
	// Propane-style failover: all leaves constant; one
	// reachability-only pid.
	res := analyze(t, "minimize(if A B D then 0 else if A C D then 1 else inf)")
	if res.NumPids() != 1 {
		t.Fatalf("pids = %d, want 1: %s", res.NumPids(), res.Describe())
	}
	if !res.Subpolicies[0].ConstOnly {
		t.Fatal("failover pid should be reachability-only")
	}
	if !res.Monotone || !res.Isotone {
		t.Fatalf("static policy should be monotone+isotone: %s", res.Describe())
	}
}

func TestWidestShortestNotIsotone(t *testing.T) {
	// (util, len): max-composed before sum-composed.
	res := analyze(t, "minimize((path.util, path.len))")
	if res.Isotone {
		t.Fatal("(util, len) must be flagged non-isotonic")
	}
	if len(res.Warnings) == 0 {
		t.Fatal("expected a warning for the approximation")
	}
	// (len, util) is fine.
	res2 := analyze(t, "minimize((path.len, path.util))")
	if !res2.Isotone {
		t.Fatalf("(len, util) should be isotone: %s", res2.Describe())
	}
}

func TestNonMonotoneLeafRejected(t *testing.T) {
	p := policy.MustParse("minimize(-path.len)")
	if _, err := Analyze(p); err == nil {
		t.Fatal("negated metric must be rejected as non-monotone")
	}
	p2 := policy.MustParse("minimize(10 - path.util)")
	if _, err := Analyze(p2); err == nil {
		t.Fatal("const - metric must be rejected")
	}
	// Subtracting a constant is fine.
	p3 := policy.MustParse("minimize(path.len - 1)")
	if _, err := Analyze(p3); err != nil {
		t.Fatalf("metric - const should pass: %v", err)
	}
}

func TestNonMonotoneConditionalWarned(t *testing.T) {
	// Large metric flips *down* to a smaller rank: non-monotone.
	res := analyze(t, "minimize(if path.util < .5 then 2 else 1)")
	if res.Monotone {
		t.Fatalf("downward flip should be non-monotone: %s", res.Describe())
	}
	if len(res.Warnings) == 0 {
		t.Fatal("expected a warning")
	}
	// Upward flip is monotone.
	res2 := analyze(t, "minimize(if path.util < .5 then 1 else 2)")
	if !res2.Monotone {
		t.Fatalf("upward flip should be monotone: %s", res2.Describe())
	}
	// Greater-than comparisons flip the branch roles.
	res3 := analyze(t, "minimize(if path.util > .5 then 2 else 1)")
	if !res3.Monotone {
		t.Fatalf("attr > const with larger then-branch is monotone: %s", res3.Describe())
	}
}

func TestAllInfRejected(t *testing.T) {
	p := policy.MustParse("minimize(inf)")
	if _, err := Analyze(p); err == nil {
		t.Fatal("pure inf policy must be rejected")
	}
}

func TestEvalRankAndPolicy(t *testing.T) {
	res := analyze(t, "minimize(if path.util < .8 then (1, 0, path.util) else (2, path.len, path.util))")
	// MV layout is [util, len].
	if len(res.MV) != 2 || res.MV[0] != policy.Util || res.MV[1] != policy.Len {
		t.Fatalf("MV = %v, want [util len]", res.MV)
	}
	var utilPid, lenPid int
	for _, sp := range res.Subpolicies {
		if sp.Sig == "util" {
			utilPid = sp.ID
		} else {
			lenPid = sp.ID
		}
	}
	mvA := []float64{0.3, 5} // util 0.3, len 5
	mvB := []float64{0.5, 2}
	if !res.EvalRank(utilPid, mvA).Better(res.EvalRank(utilPid, mvB)) {
		t.Fatal("util pid should prefer mvA (lower util)")
	}
	if !res.EvalRank(lenPid, mvB).Better(res.EvalRank(lenPid, mvA)) {
		t.Fatal("len pid should prefer mvB (shorter)")
	}
	// Full policy evaluation picks the conditional branch per entry.
	r := res.EvalPolicy(mvA, func(int) bool { return false })
	if !r.Equal(policy.Finite(1, 0, 0.3)) {
		t.Fatalf("policy(mvA) = %v, want (1,0,0.3)", r)
	}
	r = res.EvalPolicy([]float64{0.9, 2}, func(int) bool { return false })
	if !r.Equal(policy.Finite(2, 2, 0.9)) {
		t.Fatalf("policy(hot) = %v, want (2,2,0.9)", r)
	}
}

func TestEvalPolicyWithRegexBranches(t *testing.T) {
	res := analyze(t, "minimize(if A .* then path.util else path.lat)")
	mv := make([]float64, len(res.MV))
	for i, m := range res.MV {
		switch m {
		case policy.Util:
			mv[i] = 0.25
		case policy.Lat:
			mv[i] = 0.007
		}
	}
	r := res.EvalPolicy(mv, func(int) bool { return true })
	if !r.Equal(policy.Finite(0.25)) {
		t.Fatalf("matching branch = %v, want util 0.25", r)
	}
	r = res.EvalPolicy(mv, func(int) bool { return false })
	if !r.Equal(policy.Finite(0.007)) {
		t.Fatalf("else branch = %v, want lat 0.007", r)
	}
}

func TestDecompositionOptimalityProperty(t *testing.T) {
	// For the paper's P9: minimum over {full policy applied to the
	// util-minimal mv, full policy applied to the (len,util)-minimal
	// mv} must equal the minimum of the full policy over all candidate
	// paths. This is the soundness argument for recombination.
	res := analyze(t, "minimize(if path.util < .8 then (1, 0, path.util) else (2, path.len, path.util))")
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 2000; trial++ {
		n := 1 + rng.Intn(6)
		mvs := make([][]float64, n)
		for i := range mvs {
			mvs[i] = []float64{float64(rng.Intn(11)) / 10, float64(1 + rng.Intn(6))}
		}
		// Brute force optimum.
		best := policy.Infinite()
		for _, mv := range mvs {
			r := res.EvalPolicy(mv, func(int) bool { return false })
			if r.Better(best) {
				best = r
			}
		}
		// Protocol: keep only per-pid winners, then recombine.
		got := policy.Infinite()
		for pid := range res.Subpolicies {
			win := mvs[0]
			for _, mv := range mvs[1:] {
				if res.EvalRank(pid, mv).Better(res.EvalRank(pid, win)) {
					win = mv
				}
			}
			if r := res.EvalPolicy(win, func(int) bool { return false }); r.Better(got) {
				got = r
			}
		}
		if !got.Equal(best) {
			t.Fatalf("recombination lost the optimum: got %v want %v (mvs %v)", got, best, mvs)
		}
	}
}

func TestDescribe(t *testing.T) {
	res := analyze(t, "minimize(if path.util < .8 then (1, 0, path.util) else (2, path.len, path.util))")
	d := res.Describe()
	for _, want := range []string{"probe classes: 2", "monotone: true", "isotone: false"} {
		if !strings.Contains(d, want) {
			t.Errorf("Describe missing %q:\n%s", want, d)
		}
	}
}

func TestCatalogAnalyzes(t *testing.T) {
	for name, p := range policy.Catalog([]string{"A", "B", "F1", "F2"}) {
		res, err := Analyze(p)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if res.NumPids() < 1 {
			t.Errorf("%s: no pids", name)
		}
	}
}
