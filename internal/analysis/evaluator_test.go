package analysis

import (
	"testing"

	"contra/internal/policy"
)

// TestEvaluatorMatchesResult checks the scratch-buffer Evaluator
// against the allocating Result methods for every pid and a spread of
// metric vectors, including the regex-accept recombination path.
func TestEvaluatorMatchesResult(t *testing.T) {
	srcs := []string{
		"minimize(path.util)",
		"minimize((path.len, path.util))",
		"minimize(if path.util > 0.5 then (1, path.util) else (0, path.len))",
	}
	vectors := [][MaxMV]float64{
		{},
		{0.3, 2, 0.001},
		{0.9, 7, 0.05},
	}
	for _, src := range srcs {
		pol, err := policy.Parse(src, policy.ParseOptions{})
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		res, err := Analyze(pol)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		ev := res.NewEvaluator()
		for _, mv := range vectors {
			for pid := 0; pid < res.NumPids(); pid++ {
				want := res.EvalRank(pid, mv[:len(res.MV)])
				got := ev.EvalRank(pid, mv)
				if !got.Equal(want) {
					t.Errorf("%s pid %d mv %v: Evaluator rank %v, Result rank %v", src, pid, mv, got, want)
				}
			}
			accept := []bool{true}
			want := res.EvalPolicy(mv[:len(res.MV)], func(id int) bool { return accept[id] })
			got := ev.EvalPolicy(mv, accept)
			if !got.Equal(want) {
				t.Errorf("%s mv %v: Evaluator policy %v, Result policy %v", src, mv, got, want)
			}
		}
	}
}

// TestEvaluatorNoAlloc pins the property the probe fan-out relies on:
// steady-state rank evaluation does not touch the heap.
func TestEvaluatorNoAlloc(t *testing.T) {
	pol, err := policy.Parse("minimize((path.len, path.util))", policy.ParseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Analyze(pol)
	if err != nil {
		t.Fatal(err)
	}
	ev := res.NewEvaluator()
	mv := [MaxMV]float64{0.4, 3}
	ev.EvalRank(0, mv) // size the scratch buffer
	allocs := testing.AllocsPerRun(100, func() {
		ev.EvalRank(0, mv)
	})
	if allocs != 0 {
		t.Fatalf("Evaluator.EvalRank allocates %.1f per run, want 0", allocs)
	}
}
