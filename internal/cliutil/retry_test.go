package cliutil

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"
)

// recordSleep returns a Sleep seam that records every delay and never
// touches the wall clock.
func recordSleep(delays *[]time.Duration) func(context.Context, time.Duration) error {
	return func(ctx context.Context, d time.Duration) error {
		*delays = append(*delays, d)
		return ctx.Err()
	}
}

func TestRetrySucceedsAfterTransientFailures(t *testing.T) {
	var delays []time.Duration
	calls := 0
	err := Retry{Attempts: 5, Base: time.Millisecond, Jitter: NoJitter, Sleep: recordSleep(&delays)}.
		Do(context.Background(), func() error {
			calls++
			if calls < 3 {
				return errors.New("transient")
			}
			return nil
		})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
	want := []time.Duration{time.Millisecond, 2 * time.Millisecond}
	if !reflect.DeepEqual(delays, want) {
		t.Fatalf("delays = %v, want %v", delays, want)
	}
}

func TestRetryBackoffDoublesAndCaps(t *testing.T) {
	r := Retry{Base: 100 * time.Millisecond, Cap: 450 * time.Millisecond}
	want := []time.Duration{100, 200, 400, 450, 450}
	for i, w := range want {
		if got := r.Delay(i); got != w*time.Millisecond {
			t.Errorf("Delay(%d) = %v, want %v", i, got, w*time.Millisecond)
		}
	}
}

func TestRetryExhaustsAttempts(t *testing.T) {
	var delays []time.Duration
	calls := 0
	base := errors.New("still down")
	err := Retry{Attempts: 3, Jitter: NoJitter, Sleep: recordSleep(&delays)}.
		Do(context.Background(), func() error { calls++; return base })
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
	if !errors.Is(err, base) {
		t.Fatalf("err = %v, want wrapped %v", err, base)
	}
	if len(delays) != 2 {
		t.Fatalf("slept %d times, want 2 (no sleep after the last attempt)", len(delays))
	}
}

func TestRetryPermanentStopsImmediately(t *testing.T) {
	calls := 0
	base := errors.New("bad request")
	err := Retry{Attempts: 5, Jitter: NoJitter, Sleep: recordSleep(new([]time.Duration))}.
		Do(context.Background(), func() error { calls++; return Permanent(base) })
	if calls != 1 {
		t.Fatalf("calls = %d, want 1", calls)
	}
	if err != base {
		t.Fatalf("err = %v, want the unwrapped %v", err, base)
	}
	if Permanent(nil) != nil {
		t.Fatal("Permanent(nil) != nil")
	}
}

func TestRetryJitterIsDeterministicPerSeed(t *testing.T) {
	run := func(seed int64) []time.Duration {
		var delays []time.Duration
		_ = Retry{Attempts: 6, Base: time.Second, Seed: seed, Sleep: recordSleep(&delays)}.
			Do(context.Background(), func() error { return errors.New("x") })
		return delays
	}
	a, b, c := run(1), run(1), run(2)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different delays: %v vs %v", a, b)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatalf("different seeds, identical delays: %v", a)
	}
	// Default jitter is ±20% of the nominal doubling schedule.
	nominal := Retry{Base: time.Second}
	for i, d := range a {
		n := float64(nominal.Delay(i))
		if f := float64(d); f < 0.8*n || f >= 1.2*n {
			t.Errorf("delay %d = %v outside ±20%% of %v", i, d, nominal.Delay(i))
		}
	}
}

func TestRetryContextCancellation(t *testing.T) {
	t.Run("mid-sleep", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		err := Retry{Attempts: 5, Sleep: func(ctx context.Context, d time.Duration) error {
			cancel() // the context ends while the retry is waiting
			return ctx.Err()
		}}.Do(ctx, func() error { return errors.New("x") })
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	})
	t.Run("pre-cancelled", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		calls := 0
		err := Retry{Sleep: recordSleep(new([]time.Duration))}.Do(ctx, func() error { calls++; return nil })
		if !errors.Is(err, context.Canceled) || calls != 0 {
			t.Fatalf("err = %v, calls = %d; want context.Canceled and 0 calls", err, calls)
		}
	})
}

func TestRetryRealSleepHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- Retry{Attempts: 2, Base: time.Hour}.Do(ctx, func() error { return errors.New("x") })
	}()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Do did not return after cancellation (sleep ignores ctx)")
	}
}

func ExampleRetry_Do() {
	calls := 0
	err := Retry{Attempts: 3, Base: time.Microsecond, Jitter: NoJitter}.
		Do(context.Background(), func() error {
			calls++
			if calls < 2 {
				return fmt.Errorf("connection refused")
			}
			return nil
		})
	fmt.Println(err, calls)
	// Output: <nil> 2
}
