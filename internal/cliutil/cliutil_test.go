package cliutil

import (
	"os"
	"path/filepath"
	"testing"

	"contra/internal/topo"
)

func TestBuildTopologySpecs(t *testing.T) {
	cases := []struct {
		spec     string
		switches int
		hosts    int
	}{
		{"abilene", 11, 0},
		{"abilene+hosts", 11, 11},
		{"dc", 6, 32},
		{"fattree:4", 20, 0},
		{"fattree:4:2", 20, 16},
		{"leafspine:4:2:8", 6, 32},
		{"random:50", 50, 0},
		{"random:50:7", 50, 0},
	}
	for _, c := range cases {
		g, err := BuildTopology(c.spec)
		if err != nil {
			t.Errorf("%s: %v", c.spec, err)
			continue
		}
		if got := len(g.Switches()); got != c.switches {
			t.Errorf("%s: switches = %d, want %d", c.spec, got, c.switches)
		}
		if got := len(g.Hosts()); got != c.hosts {
			t.Errorf("%s: hosts = %d, want %d", c.spec, got, c.hosts)
		}
	}
}

func TestBuildTopologyErrors(t *testing.T) {
	for _, spec := range []string{"nope", "fattree", "leafspine:3", "random", "@/does/not/exist"} {
		if _, err := BuildTopology(spec); err == nil {
			t.Errorf("%s: expected error", spec)
		}
	}
}

func TestBuildTopologyFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "tiny.topo")
	src := "node A switch\nnode B switch\nlink A B 10G 1us\n"
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	g, err := BuildTopology("@" + path)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 2 || g.NumLinks() != 1 {
		t.Fatalf("parsed shape wrong: %s", g)
	}
}

func TestReadPolicyArg(t *testing.T) {
	if got, err := ReadPolicyArg("minimize(path.len)"); err != nil || got != "minimize(path.len)" {
		t.Fatalf("literal: %q, %v", got, err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "p.txt")
	if err := os.WriteFile(path, []byte("minimize(path.util)"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got, err := ReadPolicyArg("@" + path); err != nil || got != "minimize(path.util)" {
		t.Fatalf("file: %q, %v", got, err)
	}
	if _, err := ReadPolicyArg("@/does/not/exist"); err == nil {
		t.Fatal("missing file should error")
	}
}

func TestFindLink(t *testing.T) {
	g := topo.New("t")
	a := g.AddNode("spine-1", topo.Switch)
	b := g.AddNode("leaf-2", topo.Switch)
	c := g.AddNode("leaf-3", topo.Switch)
	want := g.AddLink(a, b, 10e9, 1000)
	g.AddLink(b, c, 10e9, 1000)

	// Dashed node names: every split position is tried.
	id, err := FindLink(g, "spine-1-leaf-2")
	if err != nil || id != want {
		t.Fatalf("FindLink = %v, %v; want %v", id, err, want)
	}
	// Reversed order matches the same undirected link.
	if id, err := FindLink(g, "leaf-2-spine-1"); err != nil || id != want {
		t.Fatalf("reversed FindLink = %v, %v; want %v", id, err, want)
	}
	// Two real nodes without a link is a distinct error.
	if _, err := FindLink(g, "spine-1-leaf-3"); err == nil {
		t.Fatal("unlinked nodes should error")
	}
	if _, err := FindLink(g, "nodash"); err == nil {
		t.Fatal("spec without dash should error")
	}
	if _, err := FindLink(g, "x-y"); err == nil {
		t.Fatal("unknown nodes should error")
	}
}
