package cliutil

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// Retry is a capped-exponential-backoff policy for transient failures:
// worker→coordinator RPCs in the campaign fabric, and any other call
// that should survive a flaky network or a restarting peer. The zero
// value is usable and retries 8 attempts from a 100ms base up to a 5s
// cap with ±20% jitter.
//
// Jitter is drawn from a private RNG seeded by Seed, so a fixed seed
// produces a fixed delay sequence — tests and reproducible campaign
// runs can pin the exact retry schedule while production callers vary
// Seed (e.g. by worker id) to decorrelate thundering herds.
type Retry struct {
	// Attempts is the maximum number of calls including the first;
	// <= 0 means 8.
	Attempts int

	// Base is the delay after the first failure; <= 0 means 100ms.
	// Each subsequent delay doubles, up to Cap.
	Base time.Duration

	// Cap bounds any single delay; <= 0 means 5s.
	Cap time.Duration

	// Jitter spreads each delay uniformly over ±Jitter fraction of its
	// nominal value. Negative means the default 0.2; 0 disables jitter
	// (set NoJitter for clarity).
	Jitter float64

	// Seed seeds the jitter RNG: the same Seed yields the same delay
	// sequence.
	Seed int64

	// Sleep, when set, replaces the context-aware wait between
	// attempts — the test seam that keeps retry tests off the wall
	// clock. It must return ctx.Err() if the context ends first.
	Sleep func(ctx context.Context, d time.Duration) error
}

// NoJitter is the Jitter value that disables jitter entirely (the
// field's zero value means "default", not "none").
const NoJitter = -1.0

func (r Retry) attempts() int {
	if r.Attempts <= 0 {
		return 8
	}
	return r.Attempts
}

func (r Retry) base() time.Duration {
	if r.Base <= 0 {
		return 100 * time.Millisecond
	}
	return r.Base
}

func (r Retry) cap() time.Duration {
	if r.Cap <= 0 {
		return 5 * time.Second
	}
	return r.Cap
}

func (r Retry) jitter() float64 {
	switch {
	case r.Jitter < 0:
		return 0
	case r.Jitter == 0:
		return 0.2
	default:
		return r.Jitter
	}
}

// Delay returns the backoff before attempt i+2 (i is the zero-based
// index of the attempt that just failed), without jitter: Base<<i
// capped at Cap.
func (r Retry) Delay(i int) time.Duration {
	d := r.base()
	cap := r.cap()
	for ; i > 0 && d < cap; i-- {
		d *= 2
	}
	return min(d, cap)
}

// Do calls op until it succeeds, permanently fails, runs out of
// attempts, or ctx ends. A transient error schedules another attempt
// after the next backoff delay; an error wrapped by Permanent returns
// immediately, unwrapped. Context cancellation wins over any pending
// sleep and returns ctx.Err.
func (r Retry) Do(ctx context.Context, op func() error) error {
	attempts := r.attempts()
	jitter := r.jitter()
	var rng *rand.Rand
	if jitter > 0 {
		rng = rand.New(rand.NewSource(r.Seed))
	}
	sleep := r.Sleep
	if sleep == nil {
		sleep = sleepCtx
	}
	var err error
	for i := 0; i < attempts; i++ {
		if e := ctx.Err(); e != nil {
			return e
		}
		if err = op(); err == nil {
			return nil
		}
		var perm *permanentError
		if errors.As(err, &perm) {
			return perm.err
		}
		if i == attempts-1 {
			break
		}
		d := r.Delay(i)
		if rng != nil {
			// ±jitter, uniformly: factor in [1-jitter, 1+jitter).
			d = time.Duration(float64(d) * (1 + jitter*(2*rng.Float64()-1)))
		}
		if e := sleep(ctx, d); e != nil {
			return e
		}
	}
	return fmt.Errorf("after %d attempts: %w", attempts, err)
}

// sleepCtx waits for d or until ctx ends, whichever comes first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// Permanent marks err as not worth retrying: Retry.Do returns the
// wrapped error immediately. A nil err stays nil.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err}
}
