// Package cliutil holds the small helpers shared by the command-line
// tools: topology specification parsing and text table rendering.
package cliutil

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"

	"contra/internal/topo"
)

// BuildTopology resolves a topology spec:
//
//	abilene            the Internet2 backbone (§6.4)
//	abilene+hosts      one host per switch
//	dc                 the paper's data center (32 hosts, §6.3)
//	fattree:K[:H]      k-ary fat-tree, H hosts per edge switch
//	leafspine:L:S[:H]  two-tier Clos
//	random:N[:SEED]    connected random graph, average degree 4
//	@file              the text format parsed by topo.Parse
func BuildTopology(spec string) (*topo.Graph, error) {
	if strings.HasPrefix(spec, "@") {
		f, err := os.Open(spec[1:])
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return topo.Parse(f, spec[1:])
	}
	parts := strings.Split(spec, ":")
	atoi := func(i, def int) int {
		if i >= len(parts) {
			return def
		}
		v, err := strconv.Atoi(parts[i])
		if err != nil {
			return def
		}
		return v
	}
	switch parts[0] {
	case "abilene":
		return topo.Abilene(), nil
	case "abilene+hosts":
		return topo.AbileneWithHosts(0), nil
	case "dc", "datacenter":
		return topo.PaperDataCenter(), nil
	case "fattree":
		if len(parts) < 2 {
			return nil, fmt.Errorf("fattree needs k, e.g. fattree:8")
		}
		return topo.Fattree(atoi(1, 4), atoi(2, 0)), nil
	case "leafspine":
		if len(parts) < 3 {
			return nil, fmt.Errorf("leafspine needs leaves:spines, e.g. leafspine:4:2")
		}
		return topo.LeafSpine(topo.LeafSpineConfig{
			Leaves: atoi(1, 4), Spines: atoi(2, 2), HostsPerLeaf: atoi(3, 0),
		}), nil
	case "random":
		if len(parts) < 2 {
			return nil, fmt.Errorf("random needs a size, e.g. random:100")
		}
		return topo.RandomConnected(atoi(1, 100), 4, int64(atoi(2, 1))), nil
	}
	return nil, fmt.Errorf("unknown topology spec %q", spec)
}

// FindLink resolves a link spec "A-B" against a topology. Node names
// may themselves contain dashes, so every split position is tried; the
// first one naming two nodes joined by a link wins.
func FindLink(g *topo.Graph, spec string) (topo.LinkID, error) {
	foundPair := false
	for i := 1; i < len(spec); i++ {
		if spec[i] != '-' {
			continue
		}
		a, ok := g.NodeByName(spec[:i])
		if !ok {
			continue
		}
		b, ok := g.NodeByName(spec[i+1:])
		if !ok {
			continue
		}
		if l := g.LinkBetween(a, b); l != nil {
			return l.ID, nil
		}
		foundPair = true // keep trying: a later split may name a real link
	}
	if foundPair {
		return -1, fmt.Errorf("no link %q in %s", spec, g.Name)
	}
	return -1, fmt.Errorf("bad link spec %q, want A-B with nodes of %s", spec, g.Name)
}

// Table renders rows with aligned columns to stdout.
func Table(header []string, rows [][]string) {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, strings.Join(header, "\t"))
	for _, r := range rows {
		fmt.Fprintln(w, strings.Join(r, "\t"))
	}
	w.Flush()
}

// ReadPolicyArg resolves a policy argument: literal source, or @file.
func ReadPolicyArg(arg string) (string, error) {
	if strings.HasPrefix(arg, "@") {
		b, err := os.ReadFile(arg[1:])
		if err != nil {
			return "", err
		}
		return string(b), nil
	}
	return arg, nil
}
