package cliutil

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartProfiles starts CPU profiling to cpuPath and arranges a heap
// profile at memPath, either may be empty. The returned stop function
// must run before exit (defer it): it stops the CPU profile and writes
// the heap profile. This is the -cpuprofile/-memprofile plumbing the
// simulator commands share, so probe fan-out on fattree:8+ can be
// profiled straight from a campaign run.
func StartProfiles(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpu profile: %v", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return err
			}
			runtime.GC() // materialize the steady-state live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				f.Close()
				return err
			}
			return f.Close()
		}
		return nil
	}, nil
}
