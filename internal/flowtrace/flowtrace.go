// Package flowtrace defines the versioned flow-trace format: a JSONL
// file whose first line is a meta record (format version, workload
// kind, topology, seed, rate knobs, flow count) and whose remaining
// lines are the materialized flows in injection order. A trace captures
// exactly what a scenario offered the network, so replaying it through
// the trace workload kind reproduces the original run byte-for-byte.
//
// The normative format spec lives in docs/trace-format.md. Unlike the
// dist record stream (which tolerates a torn final line, because a
// crashed shard must resume from a prefix), a flow trace is replay
// input: Read is strict — wrong version, malformed lines, or a flow
// count that disagrees with the meta line all fail loudly, because a
// silently truncated trace would replay a different experiment.
package flowtrace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
)

// Version is the trace format version this package reads and writes.
const Version = 1

// Workload kinds a trace can record (mirrors the scenario kinds; a
// cohorts trace replays through the same path as an fct trace).
const (
	KindFCT     = "fct"
	KindCBR     = "cbr"
	KindCohorts = "cohorts"
)

// Meta is the first line of a trace file.
type Meta struct {
	Type string `json:"type"` // always "meta"
	V    int    `json:"v"`    // format version
	Kind string `json:"kind"` // fct | cbr | cohorts
	Topo string `json:"topo"` // topology spec the flows were placed on
	Seed int64  `json:"seed"`

	// Key is the scenario.Key of the recording run — provenance that
	// survives renames and lets campaign tooling match a trace back to
	// the exact cell (and checkpoint entry) that produced it.
	Key string `json:"key,omitempty"`

	// Label knobs, carried so a replayed Result reports the original
	// workload's axes (dist/load for fct, rate_bps for cbr).
	Dist    string  `json:"dist,omitempty"`
	Pattern string  `json:"pattern,omitempty"`
	Load    float64 `json:"load,omitempty"`
	RateBps float64 `json:"rate_bps,omitempty"`

	// DeadlineNs is the absolute drain deadline of an fct/cohorts run;
	// EndNs is the absolute end of a cbr run. Exactly one is set, and
	// replay runs to it so simulated time matches the recording.
	DeadlineNs int64 `json:"deadline_ns,omitempty"`
	EndNs      int64 `json:"end_ns,omitempty"`

	// Flows is the number of flow lines that follow; Read enforces it,
	// so a truncated trace cannot silently replay a smaller experiment.
	Flows int `json:"flows"`
}

// Flow is one per-flow line: endpoints by node name (stable across
// process runs, unlike NodeIDs), size or rate, absolute start time,
// and the class label ("base", "surge1", a cohort name, "cbr") that
// attribution reports group by.
type Flow struct {
	Type    string  `json:"type"` // always "flow"
	ID      uint64  `json:"id"`
	Src     string  `json:"src"`
	Dst     string  `json:"dst"`
	Bytes   int64   `json:"bytes,omitempty"`    // fct/cohorts flows
	RateBps float64 `json:"rate_bps,omitempty"` // cbr flows
	StartNs int64   `json:"start_ns"`
	Class   string  `json:"class,omitempty"`
}

// Trace is a parsed trace: the meta line plus every flow in injection
// order. Order is normative — replay must offer flows exactly as
// recorded, and flow IDs must be preserved (class attribution lives in
// their top 32 bits).
type Trace struct {
	Meta  Meta
	Flows []Flow
}

// WriteJSONL writes the trace in the canonical encoding: one meta
// line, then one line per flow, in order. Encoding is deterministic —
// the same Trace always produces identical bytes.
func (t *Trace) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	m := t.Meta
	m.Type = "meta"
	m.V = Version
	m.Flows = len(t.Flows)
	if err := enc.Encode(&m); err != nil {
		return err
	}
	for i := range t.Flows {
		f := t.Flows[i]
		f.Type = "flow"
		if err := enc.Encode(&f); err != nil {
			return err
		}
	}
	return nil
}

// WriteFile writes the trace to path (0644, truncating).
func (t *Trace) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	if err := t.WriteJSONL(w); err != nil {
		f.Close()
		return err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Read parses a trace stream strictly: the first line must be a
// version-1 meta record, every following line a flow, and the flow
// count must match the meta's declaration. Any deviation is an error —
// a trace is replay input, and replaying a damaged trace would run a
// different experiment than the one recorded.
func Read(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("flowtrace: empty trace")
	}
	var meta Meta
	if err := json.Unmarshal(sc.Bytes(), &meta); err != nil {
		return nil, fmt.Errorf("flowtrace: bad meta line: %v", err)
	}
	if meta.Type != "meta" {
		return nil, fmt.Errorf("flowtrace: first line has type %q, want \"meta\"", meta.Type)
	}
	if meta.V != Version {
		return nil, fmt.Errorf("flowtrace: unsupported trace version %d (this build reads v%d)", meta.V, Version)
	}
	switch meta.Kind {
	case KindFCT, KindCBR, KindCohorts:
	default:
		return nil, fmt.Errorf("flowtrace: unknown workload kind %q in meta", meta.Kind)
	}
	t := &Trace{Meta: meta}
	if meta.Flows > 0 {
		t.Flows = make([]Flow, 0, meta.Flows)
	}
	line := 1
	for sc.Scan() {
		line++
		var f Flow
		if err := json.Unmarshal(sc.Bytes(), &f); err != nil {
			return nil, fmt.Errorf("flowtrace: line %d: %v", line, err)
		}
		if f.Type != "flow" {
			return nil, fmt.Errorf("flowtrace: line %d has type %q, want \"flow\"", line, f.Type)
		}
		if f.ID == 0 {
			return nil, fmt.Errorf("flowtrace: line %d: flow id 0 is reserved", line)
		}
		if f.Src == "" || f.Dst == "" {
			return nil, fmt.Errorf("flowtrace: line %d: flow needs src and dst", line)
		}
		if f.Bytes <= 0 && f.RateBps <= 0 {
			return nil, fmt.Errorf("flowtrace: line %d: flow needs bytes or rate_bps", line)
		}
		t.Flows = append(t.Flows, f)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(t.Flows) != meta.Flows {
		return nil, fmt.Errorf("flowtrace: trace is torn: meta declares %d flows, file carries %d", meta.Flows, len(t.Flows))
	}
	return t, nil
}

// ReadFile parses a trace file.
func ReadFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	t, err := Read(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return t, nil
}

// FileName maps a scenario or campaign-cell name to the canonical
// trace file name used by recording: every byte outside [A-Za-z0-9._-]
// becomes '_', and the ".flow.jsonl" suffix marks the format. Cell
// names embed every campaign axis (topo/scheme/load/script/seed), so
// sanitized names stay collision-free within one record dir — and
// identical between a recording campaign and its replay twin, which is
// how a replay cell finds its own trace.
func FileName(key string) string {
	var b strings.Builder
	for _, r := range key {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String() + ".flow.jsonl"
}
