package flowtrace

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func sample() *Trace {
	return &Trace{
		Meta: Meta{
			Kind: KindFCT, Topo: "fattree:4", Seed: 7,
			Dist: "websearch", Load: 0.4, DeadlineNs: 1_023_072_000,
		},
		Flows: []Flow{
			{ID: 1, Src: "h0", Dst: "h5", Bytes: 1200, StartNs: 3_100_000, Class: "base"},
			{ID: 2, Src: "h2", Dst: "h9", Bytes: 6_700_000, StartNs: 3_250_000, Class: "base"},
			{ID: 1<<32 + 1, Src: "h4", Dst: "h1", Bytes: 980, StartNs: 5_000_000, Class: "surge1"},
		},
	}
}

func TestRoundTrip(t *testing.T) {
	tr := sample()
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Meta.V != Version || got.Meta.Flows != 3 {
		t.Fatalf("meta not normalized: %+v", got.Meta)
	}
	if len(got.Flows) != 3 || got.Flows[2].ID != 1<<32+1 || got.Flows[2].Class != "surge1" {
		t.Fatalf("flows did not round-trip: %+v", got.Flows)
	}
}

func TestWriteDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := sample().WriteJSONL(&a); err != nil {
		t.Fatal(err)
	}
	if err := sample().WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two encodings of the same trace differ")
	}
}

func TestFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), FileName("cell#0123abcd"))
	if err := sample().WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Flows) != 3 {
		t.Fatalf("got %d flows", len(got.Flows))
	}
}

// TestReadStrictness pins the reject cases: a trace is replay input,
// so every corruption mode must fail with a precise error.
func TestReadStrictness(t *testing.T) {
	var buf bytes.Buffer
	if err := sample().WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")

	cases := []struct {
		name  string
		input string
		want  string
	}{
		{"empty", "", "empty trace"},
		{"bad version", strings.Replace(lines[0], `"v":1`, `"v":2`, 1) + "\n", "unsupported trace version 2"},
		{"flows first", lines[1] + "\n", `type "flow", want "meta"`},
		{"torn tail", lines[0] + "\n" + lines[1] + "\n", "meta declares 3 flows, file carries 1"},
		{"half line", strings.Join(lines[:3], "\n") + "\n" + lines[3][:20] + "\n", "line 4"},
		{"unknown kind", strings.Replace(lines[0], `"kind":"fct"`, `"kind":"voodoo"`, 1) + "\n", `unknown workload kind "voodoo"`},
		{"zero id", lines[0] + "\n" + strings.Replace(lines[1], `"id":1,`, `"id":0,`, 1) + "\n", "flow id 0 is reserved"},
	}
	for _, tc := range cases {
		_, err := Read(strings.NewReader(tc.input))
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestFileName(t *testing.T) {
	got := FileName("fattree:4/contra/load0.4/none/seed1#00ff00ff00ff00ff")
	want := "fattree_4_contra_load0.4_none_seed1_00ff00ff00ff00ff.flow.jsonl"
	if got != want {
		t.Fatalf("FileName = %q, want %q", got, want)
	}
}
