package agg

import (
	"bytes"
	"encoding/csv"
	"math"
	"strconv"
	"strings"
	"testing"

	"contra/internal/campaign"
	"contra/internal/scenario"
)

// outcomesFixture builds a synthetic 2-scheme × 2-load × 3-seed matrix
// with known FCT values so the aggregate columns can be checked
// exactly.
func outcomesFixture() []campaign.Outcome {
	var out []campaign.Outcome
	for _, scheme := range []scenario.Scheme{scenario.SchemeECMP, scenario.SchemeContra} {
		for _, load := range []float64{0.2, 0.6} {
			for seed := int64(1); seed <= 3; seed++ {
				// p99 in seconds: deterministic function of the cell
				// and seed, spread 1ms per seed.
				p99 := load/10 + float64(seed)*0.001
				res := &scenario.Result{
					Topo: "dc", Scheme: scheme, Script: "steady",
					Load: load, Seed: seed,
					Flows: 100, Completed: 100,
					MeanFCT: p99 / 4, P50FCT: p99 / 8, P95FCT: p99 / 2, P99FCT: p99,
					FabricBytes: 1e9, ProbeBytes: 1e7,
				}
				out = append(out, campaign.Outcome{
					Scenario: scenario.Scenario{TopoSpec: "dc", Scheme: scheme, Script: "steady",
						Workload: scenario.Workload{Load: load}, Seed: seed},
					Result: res,
				})
			}
		}
	}
	return out
}

func parseCSV(t *testing.T, s string) (header []string, rows [][]string) {
	t.Helper()
	recs, err := csv.NewReader(strings.NewReader(s)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	return recs[0], recs[1:]
}

func col(t *testing.T, header []string, name string) int {
	t.Helper()
	for i, h := range header {
		if h == name {
			return i
		}
	}
	t.Fatalf("no column %q in %v", name, header)
	return -1
}

func TestAggregateCollapsesSeeds(t *testing.T) {
	tab := FromOutcomes(outcomesFixture())
	if len(tab.Groups) != 4 {
		t.Fatalf("got %d groups, want 4 (2 schemes × 2 loads)", len(tab.Groups))
	}
	var buf bytes.Buffer
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	header, rows := parseCSV(t, buf.String())
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	seeds := col(t, header, "seeds")
	meanIdx := col(t, header, "p99_fct_ms_mean")
	sdIdx := col(t, header, "p99_fct_ms_stddev")
	minIdx := col(t, header, "p99_fct_ms_min")
	maxIdx := col(t, header, "p99_fct_ms_max")
	schemeIdx := col(t, header, "scheme")
	loadIdx := col(t, header, "load")
	for _, row := range rows {
		if row[seeds] != "3" {
			t.Fatalf("seeds = %s, want 3: %v", row[seeds], row)
		}
		load, _ := strconv.ParseFloat(row[loadIdx], 64)
		// Seeds contribute p99 = load/10 + {1,2,3}ms: mean at seed 2,
		// min at 1, max at 3, stddev exactly 1ms.
		wantMean := (load/10 + 0.002) * 1e3
		gotMean, _ := strconv.ParseFloat(row[meanIdx], 64)
		if math.Abs(gotMean-wantMean) > 1e-9*wantMean {
			t.Errorf("%s load %s: p99 mean %v, want %v", row[schemeIdx], row[loadIdx], gotMean, wantMean)
		}
		gotSD, _ := strconv.ParseFloat(row[sdIdx], 64)
		if math.Abs(gotSD-1) > 1e-6 {
			t.Errorf("p99 stddev %v, want 1ms", gotSD)
		}
		gotMin, _ := strconv.ParseFloat(row[minIdx], 64)
		gotMax, _ := strconv.ParseFloat(row[maxIdx], 64)
		if math.Abs(gotMax-gotMin-2) > 1e-6 {
			t.Errorf("p99 min/max spread %v..%v, want 2ms apart", gotMin, gotMax)
		}
	}
	// Deterministic group order: sorted by topo, script, load, scheme.
	var buf2 bytes.Buffer
	if err := FromOutcomes(outcomesFixture()).WriteCSV(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Fatal("aggregation is not deterministic")
	}
	if rows[0][schemeIdx] != "contra" || rows[1][schemeIdx] != "ecmp" {
		t.Fatalf("rows not sorted by scheme within load: %v", rows)
	}
}

func TestFCTCurveColumns(t *testing.T) {
	var buf bytes.Buffer
	if err := FromOutcomes(outcomesFixture()).WriteFCTCurve(&buf); err != nil {
		t.Fatal(err)
	}
	header, rows := parseCSV(t, buf.String())
	col(t, header, "p95_fct_ms_mean")
	col(t, header, "mean_fct_ms_stddev")
	if len(rows) != 4 {
		t.Fatalf("got %d curve rows, want 4", len(rows))
	}
	loadIdx := col(t, header, "load")
	if rows[0][loadIdx] != "0.2" || rows[2][loadIdx] != "0.6" {
		t.Fatalf("curve rows not ordered by load: %v", rows)
	}
}

func TestRecoveryCurveUsesPerEventWindows(t *testing.T) {
	mk := func(seed int64, recMs ...float64) campaign.Outcome {
		res := &scenario.Result{
			Topo: "dc", Scheme: scenario.SchemeContra, Script: "linkfail",
			Load: 0.4, Seed: seed, BaselineBps: 4e9, MinBps: 2e9,
		}
		for i, ms := range recMs {
			res.Recoveries = append(res.Recoveries, scenario.RecoveryWindow{
				Kind: scenario.LinkDown, AtNs: int64(i+1) * 1_000_000,
				BaselineBps: 4e9, MinBps: 2e9, RecoveryNs: int64(ms * 1e6),
			})
		}
		if len(recMs) > 0 {
			res.RecoveryNs = int64(recMs[0] * 1e6)
		}
		return campaign.Outcome{Result: res}
	}
	// Two seeds, two disruptions each: four observations in one cell.
	tab := FromOutcomes([]campaign.Outcome{mk(1, 2, 4), mk(2, 6, 8)})
	var buf bytes.Buffer
	if err := tab.WriteRecoveryCurve(&buf); err != nil {
		t.Fatal(err)
	}
	header, rows := parseCSV(t, buf.String())
	if len(rows) != 1 {
		t.Fatalf("got %d recovery rows, want 1", len(rows))
	}
	get := func(name string) float64 {
		v, _ := strconv.ParseFloat(rows[0][col(t, header, name)], 64)
		return v
	}
	if m := get("recovery_ms_mean"); math.Abs(m-5) > 1e-9 {
		t.Errorf("recovery mean %v, want 5 (per-event windows, not first-event only)", m)
	}
	if get("recovery_ms_min") != 2 || get("recovery_ms_max") != 8 {
		t.Errorf("recovery min/max = %v/%v, want 2/8", get("recovery_ms_min"), get("recovery_ms_max"))
	}
	// A steady-state cell writes no recovery row at all.
	steady := FromOutcomes(outcomesFixture())
	buf.Reset()
	if err := steady.WriteRecoveryCurve(&buf); err != nil {
		t.Fatal(err)
	}
	if _, rows := parseCSV(t, buf.String()); len(rows) != 0 {
		t.Fatalf("steady cells produced recovery rows: %v", rows)
	}
}

func TestFailedOutcomesAreCountedNotAggregated(t *testing.T) {
	outs := outcomesFixture()
	outs = append(outs, campaign.Outcome{
		Scenario: scenario.Scenario{TopoSpec: "dc", Scheme: scenario.SchemeECMP, Script: "steady",
			Workload: scenario.Workload{Load: 0.2}, Seed: 9},
		Err: "boom",
	})
	tab := FromOutcomes(outs)
	for _, g := range tab.Groups {
		if g.Scheme == scenario.SchemeECMP && g.Load == 0.2 {
			if g.Failed != 1 || g.Seeds != 3 {
				t.Fatalf("failed=%d seeds=%d, want 1/3", g.Failed, g.Seeds)
			}
			return
		}
	}
	t.Fatal("cell not found")
}

func TestLoadSniffsBothFormats(t *testing.T) {
	report := `{"name":"x","scenarios":[{"result":{"topo":"dc","scheme":"ecmp","seed":1,"flows":10,"completed":10,"mean_fct":0.001,"fabric_bytes":1,"data_bytes":1,"ack_bytes":0,"probe_bytes":0,"tag_bytes":0,"queue_drops":0,"linkdown_drops":0,"simulated_ns":5}}]}`
	outs, err := Load([]byte(report))
	if err != nil || len(outs) != 1 || outs[0].Result == nil {
		t.Fatalf("report load: %v, %d outcomes", err, len(outs))
	}
	jsonl := `{"campaign":"x","key":"k","index":0,"scenario":{"topo":"dc","scheme":"ecmp","workload":{}},"result":{"topo":"dc","scheme":"ecmp","seed":1,"flows":10,"completed":10,"fabric_bytes":1,"data_bytes":1,"ack_bytes":0,"probe_bytes":0,"tag_bytes":0,"queue_drops":0,"linkdown_drops":0,"simulated_ns":5}}` + "\n"
	outs, err = Load([]byte(jsonl))
	if err != nil || len(outs) != 1 || outs[0].Scenario.TopoSpec != "dc" {
		t.Fatalf("jsonl load: %v, %d outcomes", err, len(outs))
	}
	if _, err := Load([]byte("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
}
