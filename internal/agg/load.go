package agg

import (
	"bytes"
	"encoding/json"
	"fmt"

	"contra/internal/campaign"
	"contra/internal/dist"
)

// decodeReport strictly decodes a merged campaign report JSON. Strict
// field checking is what disambiguates the two input formats: a JSONL
// record line carries "key"/"index" fields a report does not have.
func decodeReport(data []byte) (*campaign.Report, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var r campaign.Report
	if err := dec.Decode(&r); err != nil {
		return nil, err
	}
	if dec.More() {
		return nil, fmt.Errorf("trailing data after report object")
	}
	return &r, nil
}

// decodeRecords decodes a JSONL record stream into outcomes.
func decodeRecords(data []byte) ([]campaign.Outcome, error) {
	recs, err := dist.ReadRecords(bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("no records")
	}
	outcomes := make([]campaign.Outcome, len(recs))
	for i, rec := range recs {
		if rec.Scenario != nil {
			outcomes[i].Scenario = *rec.Scenario
		}
		outcomes[i].Result = rec.Result
		outcomes[i].Err = rec.Err
	}
	return outcomes, nil
}
