// Package agg turns raw per-scenario campaign outcomes into the
// paper's figure data: it groups results by experiment cell —
// (topology, scheme, load, event script) — collapses the seed axis
// into mean/stddev/min/max columns via stats.Summary, and renders the
// aggregate as CSV, including the two curve families the evaluation
// plots: tail FCT versus offered load, and recovery time after
// disruptions.
//
// Aggregation is deterministic: groups are sorted by cell key and
// every column is a pure function of the input results, so the same
// merged campaign yields byte-identical figure data.
package agg

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"

	"contra/internal/campaign"
	"contra/internal/scenario"
	"contra/internal/stats"
)

// Key identifies one experiment cell: every axis of the campaign
// matrix except the seed, which aggregation collapses.
type Key struct {
	Topo   string
	Scheme scenario.Scheme
	Load   float64
	Script string
}

// metrics defines the aggregated columns in output order. Each metric
// extracts zero or more observations from one result — zero when the
// metric does not apply (no recovery analysis in a steady-state run),
// several when a script carries several disruptions.
var metrics = []struct {
	name string
	get  func(r *scenario.Result) []float64
}{
	{"mean_fct_ms", func(r *scenario.Result) []float64 { return fctMs(r, r.MeanFCT) }},
	{"p50_fct_ms", func(r *scenario.Result) []float64 { return fctMs(r, r.P50FCT) }},
	{"p95_fct_ms", func(r *scenario.Result) []float64 { return fctMs(r, r.P95FCT) }},
	{"p99_fct_ms", func(r *scenario.Result) []float64 { return fctMs(r, r.P99FCT) }},
	{"probe_frac", func(r *scenario.Result) []float64 { return []float64{r.ProbeFrac()} }},
	{"queue_drops", func(r *scenario.Result) []float64 { return []float64{r.QueueDrops} }},
	{"linkdown_drops", func(r *scenario.Result) []float64 { return []float64{r.LinkDownDrops} }},
	{"looped_frac", func(r *scenario.Result) []float64 { return []float64{r.LoopedFrac} }},
	{"baseline_gbps", func(r *scenario.Result) []float64 {
		if r.BaselineBps <= 0 {
			return nil
		}
		return []float64{r.BaselineBps / 1e9}
	}},
	{"min_gbps", func(r *scenario.Result) []float64 {
		if r.BaselineBps <= 0 {
			return nil
		}
		return []float64{r.MinBps / 1e9}
	}},
	// recovery_ms aggregates every per-disruption window a result
	// carries, so a script with three failures contributes three
	// observations per seed.
	{"recovery_ms", func(r *scenario.Result) []float64 {
		var out []float64
		for _, w := range r.Recoveries {
			if w.RecoveryNs >= 0 {
				out = append(out, float64(w.RecoveryNs)/1e6)
			}
		}
		if out == nil && r.RecoveryNs > 0 {
			// Results encoded before per-event windows existed.
			out = []float64{float64(r.RecoveryNs) / 1e6}
		}
		return out
	}},
	{"nodedown_drops", func(r *scenario.Result) []float64 {
		return []float64{r.NodeDownDrops}
	}},
	// probe_loss_frac observes the realized loss rate only where loss
	// was actually injected (probes crossed a lossy channel).
	{"probe_loss_frac", func(r *scenario.Result) []float64 {
		if r.ProbeLossSeen == 0 {
			return nil
		}
		return []float64{r.ProbeLossFrac}
	}},
	// swap_conv_ms aggregates every converged policy-swap window;
	// swaps the run ended on top of (ConvergenceNs < 0) are excluded,
	// like unconverged recovery windows.
	{"swap_conv_ms", func(r *scenario.Result) []float64 {
		var out []float64
		for _, w := range r.Swaps {
			if w.ConvergenceNs >= 0 {
				out = append(out, float64(w.ConvergenceNs)/1e6)
			}
		}
		return out
	}},
	// probe_tx_saved / probe_suppressed observe the probe-aggregation
	// savings only where a knob was actually on (ProbeAggOn), so
	// knobs-off cells stay blank while a knobs-on run that genuinely
	// saved nothing still contributes its zero.
	{"probe_tx_saved", func(r *scenario.Result) []float64 {
		if !r.ProbeAggOn {
			return nil
		}
		return []float64{r.ProbeTxSaved}
	}},
	{"probe_suppressed", func(r *scenario.Result) []float64 {
		if !r.ProbeAggOn {
			return nil
		}
		return []float64{r.ProbeSuppressed}
	}},
	// metrics_samples observes the telemetry sampler's retained tick
	// count only where sampling was on (MetricsOn), so metrics-off
	// cells stay blank — its cross-seed spread being zero is itself a
	// determinism signal.
	{"metrics_samples", func(r *scenario.Result) []float64 {
		if !r.MetricsOn {
			return nil
		}
		return []float64{float64(r.MetricsSamples)}
	}},
	// Per-class attribution metrics apply only when class_stats was on
	// (Classes non-nil), so existing campaigns aggregate identically.
	// The class quantiles additionally require a completion in that
	// class — a run whose elephants all timed out stays blank rather
	// than contributing a zero.
	{"mice_p99_fct_ms", func(r *scenario.Result) []float64 {
		if r.Classes == nil || r.Classes.Mice.Flows == 0 {
			return nil
		}
		return []float64{r.Classes.Mice.P99Ms}
	}},
	{"elephant_p99_fct_ms", func(r *scenario.Result) []float64 {
		if r.Classes == nil || r.Classes.Elephants.Flows == 0 {
			return nil
		}
		return []float64{r.Classes.Elephants.P99Ms}
	}},
	{"jain", func(r *scenario.Result) []float64 {
		if r.Classes == nil {
			return nil
		}
		return []float64{r.Classes.Jain}
	}},
}

func fctMs(r *scenario.Result, sec float64) []float64 {
	if r.Completed == 0 {
		return nil
	}
	return []float64{sec * 1e3}
}

// recoveryIdx locates the recovery_ms metric for the curve writers.
var recoveryIdx = func() int {
	for i, m := range metrics {
		if m.name == "recovery_ms" {
			return i
		}
	}
	panic("agg: no recovery metric")
}()

// Group is one experiment cell with its seed axis collapsed.
type Group struct {
	Key
	// Seeds counts the distinct successful results folded in.
	Seeds int
	// Failed counts outcomes that ended in a scenario error.
	Failed int
	// Sums holds one stats.Summary per entry of metrics.
	Sums []stats.Summary
}

// Table is a deterministic, sorted collection of groups.
type Table struct {
	Groups []*Group
}

// FromOutcomes aggregates campaign outcomes. Failed outcomes count
// toward Group.Failed when their scenario identifies a cell; bare
// report JSON carries no scenario column for failed outcomes (a
// failure has no Result either), so there they are dropped — run
// -aggregate on the shard JSONL files to account for failures.
func FromOutcomes(outcomes []campaign.Outcome) *Table {
	groups := map[Key]*Group{}
	get := func(k Key) *Group {
		g := groups[k]
		if g == nil {
			g = &Group{Key: k, Sums: make([]stats.Summary, len(metrics))}
			groups[k] = g
		}
		return g
	}
	for _, o := range outcomes {
		// Key on the campaign's axis values when the scenario is
		// available (merge records carry it), so failed and successful
		// seeds of one cell land in the same row; bare report JSON has
		// no scenario column and falls back to the result's resolved
		// topology name.
		var k Key
		switch {
		case o.Scenario.TopoSpec != "":
			k = Key{o.Scenario.TopoSpec, o.Scenario.Scheme, o.Scenario.Workload.Load, o.Scenario.Script}
		case o.Result != nil:
			k = Key{o.Result.Topo, o.Result.Scheme, o.Result.Load, o.Result.Script}
		default:
			continue // failed outcome with no scenario: unplaceable
		}
		if o.Result == nil {
			get(k).Failed++
			continue
		}
		r := o.Result
		g := get(k)
		g.Seeds++
		for i, m := range metrics {
			for _, v := range m.get(r) {
				g.Sums[i].Add(v)
			}
		}
	}
	t := &Table{}
	for _, g := range groups {
		t.Groups = append(t.Groups, g)
	}
	sort.Slice(t.Groups, func(i, j int) bool {
		a, b := t.Groups[i], t.Groups[j]
		if a.Topo != b.Topo {
			return a.Topo < b.Topo
		}
		if a.Script != b.Script {
			return a.Script < b.Script
		}
		if a.Load != b.Load {
			return a.Load < b.Load
		}
		return a.Scheme < b.Scheme
	})
	return t
}

// keyCols are the cell-identity columns of every CSV this package
// writes.
var keyCols = []string{"topo", "script", "load", "scheme", "seeds", "failed"}

func (g *Group) keyRow() []string {
	return []string{
		g.Topo, g.Script, trimFloat(g.Load), string(g.Scheme),
		strconv.Itoa(g.Seeds), strconv.Itoa(g.Failed),
	}
}

func trimFloat(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

func cell(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }

// summaryCols renders a stats.Summary as mean/stddev/min/max, blank
// when the metric never applied to the cell.
func summaryCols(s *stats.Summary) []string {
	if s.Count() == 0 {
		return []string{"", "", "", ""}
	}
	return []string{cell(s.Mean()), cell(s.Stddev()), cell(s.Min()), cell(s.Max())}
}

// WriteCSV renders the full aggregate: one row per cell, four columns
// (mean, stddev, min, max) per metric.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := append([]string{}, keyCols...)
	for _, m := range metrics {
		header = append(header,
			m.name+"_mean", m.name+"_stddev", m.name+"_min", m.name+"_max")
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, g := range t.Groups {
		row := g.keyRow()
		for i := range metrics {
			row = append(row, summaryCols(&g.Sums[i])...)
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFCTCurve renders the FCT-versus-load figure data: per cell, the
// mean and stddev across seeds of mean/p50/p95/p99 FCT. Plot load on
// the x axis, one line per (topo, script, scheme).
func (t *Table) WriteFCTCurve(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := append([]string{}, keyCols...)
	for _, m := range metrics[:4] {
		header = append(header, m.name+"_mean", m.name+"_stddev")
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, g := range t.Groups {
		if g.Sums[0].Count() == 0 {
			continue // no completed FCT flows in this cell (CBR, total failure)
		}
		row := g.keyRow()
		for i := range metrics[:4] {
			s := &g.Sums[i]
			row = append(row, cell(s.Mean()), cell(s.Stddev()))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteRecoveryCurve renders the recovery-time figure data: per cell
// with at least one disruption window, mean/stddev/min/max recovery
// time across every seed and disruption, plus the throughput context
// (baseline and dip).
func (t *Table) WriteRecoveryCurve(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := append([]string{}, keyCols...)
	header = append(header,
		"recovery_ms_mean", "recovery_ms_stddev", "recovery_ms_min", "recovery_ms_max",
		"baseline_gbps_mean", "min_gbps_mean")
	if err := cw.Write(header); err != nil {
		return err
	}
	var baseIdx, minIdx int
	for i, m := range metrics {
		switch m.name {
		case "baseline_gbps":
			baseIdx = i
		case "min_gbps":
			minIdx = i
		}
	}
	for _, g := range t.Groups {
		rec := &g.Sums[recoveryIdx]
		if rec.Count() == 0 {
			continue
		}
		row := append(g.keyRow(), summaryCols(rec)...)
		row = append(row, cell(g.Sums[baseIdx].Mean()), cell(g.Sums[minIdx].Mean()))
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Load reads campaign output for aggregation: a merged report JSON
// (decoded with the scenario column absent) or a JSONL record stream.
// The format is sniffed from the first non-space byte — a report is a
// JSON object spanning the whole file, a record stream is one object
// per line.
func Load(data []byte) ([]campaign.Outcome, error) {
	report, rerr := decodeReport(data)
	if rerr == nil {
		return report.Outcomes, nil
	}
	recs, lerr := decodeRecords(data)
	if lerr == nil {
		return recs, nil
	}
	return nil, fmt.Errorf("agg: input is neither a campaign report (%v) nor a record stream (%v)", rerr, lerr)
}
