// Package baseline implements the comparison systems of the paper's
// evaluation (§6.1): ECMP and shortest-path routing (static,
// load-oblivious), HULA (utilization-aware probes on Clos topologies),
// and SPAIN (offline multipath sets with static spreading). Each is a
// sim.Router, so they run on the identical substrate as Contra.
package baseline

import (
	"contra/internal/sim"
	"contra/internal/topo"
)

// base carries the plumbing shared by all baseline routers.
type base struct {
	sw *sim.SwitchDev
}

func (b *base) init(sw *sim.SwitchDev) {
	b.sw = sw
}

// pre handles TTL and local delivery; it returns the destination edge
// switch and false when the packet has been consumed.
func (b *base) pre(pkt *sim.Packet) (topo.NodeID, bool) {
	if pkt.TTL == 0 {
		b.sw.Drop(pkt, sim.DropTTL)
		return 0, false
	}
	pkt.TTL--
	dstEdge, ok := b.sw.Net.HostEdge(pkt.Dst)
	if !ok {
		b.sw.Drop(pkt, sim.DropNoHost)
		return 0, false
	}
	if dstEdge == b.sw.ID {
		b.sw.DeliverLocal(pkt)
		return 0, false
	}
	return dstEdge, true
}

// flowHash gives the per-flow hash used for static spreading.
func flowHash(flowID uint64) uint64 {
	x := flowID * 0x9e3779b97f4a7c15
	x ^= x >> 32
	x *= 0xd6e8feb86659fd93
	return x ^ (x >> 32)
}

// ECMP hashes each flow uniformly across the shortest-path next hops,
// with no load awareness: the paper's primary data center baseline.
type ECMP struct {
	base
	next map[topo.NodeID][]int // destination switch -> candidate ports
	// Single, when true, always uses the first candidate: shortest
	// path routing (the paper's SP baseline for general topologies).
	Single bool
}

// NewECMP returns an ECMP router.
func NewECMP() *ECMP { return &ECMP{} }

// NewSP returns a shortest-path router (ECMP restricted to one path).
func NewSP() *ECMP { return &ECMP{Single: true} }

// Attach implements sim.Router: precompute next-hop sets on the
// topology as currently up (static schemes recompute offline, so a
// failed-from-the-start link is excluded — §6.3's asymmetric setup).
func (r *ECMP) Attach(sw *sim.SwitchDev) {
	r.init(sw)
	r.next = make(map[topo.NodeID][]int)
	g := sw.Net.Topo
	for _, dst := range g.Switches() {
		if dst == sw.ID {
			continue
		}
		var ports []int
		for _, nh := range g.ECMPNextHops(dst)[sw.ID] {
			ports = append(ports, g.PortTo(sw.ID, nh))
		}
		if len(ports) > 0 {
			r.next[dst] = ports
		}
	}
}

// Handle implements sim.Router.
func (r *ECMP) Handle(pkt *sim.Packet, inPort int) {
	if pkt.Kind == sim.Probe {
		r.sw.Drop(pkt, sim.DropProbeUnsupported)
		return
	}
	dstEdge, ok := r.pre(pkt)
	if !ok {
		return
	}
	ports := r.next[dstEdge]
	if len(ports) == 0 {
		r.sw.Drop(pkt, sim.DropNoRoute)
		return
	}
	idx := 0
	if !r.Single && len(ports) > 1 {
		idx = int(flowHash(pkt.FlowID) % uint64(len(ports)))
	}
	r.sw.Send(ports[idx], pkt)
}

// DeployECMP installs ECMP on every switch.
func DeployECMP(n *sim.Network) {
	for _, s := range n.Topo.Switches() {
		n.SetRouter(s, NewECMP())
	}
}

// DeploySP installs single shortest-path routing on every switch.
func DeploySP(n *sim.Network) {
	for _, s := range n.Topo.Switches() {
		n.SetRouter(s, NewSP())
	}
}
