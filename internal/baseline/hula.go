package baseline

import (
	"contra/internal/sim"
	"contra/internal/topo"
)

// Hula reimplements HULA (Katta et al., SOSR 2016): utilization-aware
// load balancing specialized to Clos/fat-tree topologies. Every
// top-of-rack (edge) switch floods a probe per period along up-down
// paths; switches remember the best (least-utilized) next hop toward
// every ToR and pin flowlets to it. Unlike Contra it relies on the
// tree structure for loop freedom and path exploration, which is
// exactly the generality gap the paper highlights.
type Hula struct {
	base
	periodNs  int64
	flowletNs int64
	ageNs     int64

	level    map[topo.NodeID]int // 0 edge, 1 agg, 2 core
	bestPort map[topo.NodeID]int
	bestUtil map[topo.NodeID]float64
	updated  map[topo.NodeID]int64
	// updatedVia tracks freshness per (destination, port): a flowlet
	// pinned to a port whose probes stopped must expire even while the
	// destination stays reachable through other ports.
	updatedVia map[hulaVia]int64

	flowlets map[hulaFlowKey]*hulaFlowlet
	probeSz  int
}

type hulaVia struct {
	dst  topo.NodeID
	port int
}

type hulaFlowKey struct {
	dst topo.NodeID
	fid uint32
}

type hulaFlowlet struct {
	port    int
	lastPkt int64
}

// HulaConfig parameterizes the HULA deployment.
type HulaConfig struct {
	ProbePeriodNs    int64 // default 256us (§6.3)
	FlowletTimeoutNs int64 // default 200us
}

// NewHula builds one HULA switch router.
func NewHula(cfg HulaConfig) *Hula {
	if cfg.ProbePeriodNs == 0 {
		cfg.ProbePeriodNs = 256_000
	}
	if cfg.FlowletTimeoutNs == 0 {
		cfg.FlowletTimeoutNs = 200_000
	}
	return &Hula{
		periodNs:   cfg.ProbePeriodNs,
		flowletNs:  cfg.FlowletTimeoutNs,
		ageNs:      3*cfg.ProbePeriodNs + cfg.ProbePeriodNs,
		bestPort:   make(map[topo.NodeID]int),
		bestUtil:   make(map[topo.NodeID]float64),
		updated:    make(map[topo.NodeID]int64),
		updatedVia: make(map[hulaVia]int64),
		flowlets:   make(map[hulaFlowKey]*hulaFlowlet),
		probeSz:    64,
	}
}

// DeployHula installs HULA on every switch. The topology must carry
// Clos roles (edge/agg/core), as produced by topo.Fattree and
// topo.LeafSpine.
func DeployHula(n *sim.Network, cfg HulaConfig) map[topo.NodeID]*Hula {
	routers := make(map[topo.NodeID]*Hula)
	for _, s := range n.Topo.Switches() {
		r := NewHula(cfg)
		routers[s] = r
		n.SetRouter(s, r)
	}
	return routers
}

func roleLevel(r topo.Role) int {
	switch r {
	case topo.RoleEdge:
		return 0
	case topo.RoleAgg:
		return 1
	case topo.RoleCore:
		return 2
	}
	return -1
}

// Attach implements sim.Router.
func (r *Hula) Attach(sw *sim.SwitchDev) {
	r.init(sw)
	r.level = make(map[topo.NodeID]int)
	g := sw.Net.Topo
	for _, s := range g.Switches() {
		lvl := roleLevel(g.Node(s).Role)
		if lvl < 0 {
			panic("baseline: HULA requires a Clos topology with switch roles")
		}
		r.level[s] = lvl
	}
	if g.Node(sw.ID).Role == topo.RoleEdge {
		offset := (int64(sw.ID) * 7919) % r.periodNs
		sw.Net.Eng.Every(offset, r.periodNs, r.originate)
	}
}

var _ sim.Rebooter = (*Hula)(nil)

// Reboot implements sim.Rebooter: a HULA switch coming back from a
// whole-node failure restarts with its soft state (best-hop tables,
// probe freshness, flowlet pins) flushed, paying the same cold-start
// warm-up Contra pays — chaos scheme comparisons stay apples to
// apples. The level table is topology knowledge, not learned state,
// so it survives.
func (r *Hula) Reboot() {
	r.bestPort = make(map[topo.NodeID]int)
	r.bestUtil = make(map[topo.NodeID]float64)
	r.updated = make(map[topo.NodeID]int64)
	r.updatedVia = make(map[hulaVia]int64)
	r.flowlets = make(map[hulaFlowKey]*hulaFlowlet)
}

// originate floods a fresh probe from this ToR upward.
func (r *Hula) originate() {
	for port := 0; port < r.sw.PortCount(); port++ {
		if !r.sw.IsSwitchPort(port) {
			continue
		}
		p := r.sw.Net.NewPacket()
		p.Kind = sim.Probe
		p.Size = r.probeSz
		p.Origin = r.sw.ID
		p.Up = true
		p.TTL = sim.InitialTTL
		r.sw.Send(port, p)
	}
}

// Handle implements sim.Router.
func (r *Hula) Handle(pkt *sim.Packet, inPort int) {
	if pkt.Kind == sim.Probe {
		r.handleProbe(pkt, inPort)
		return
	}
	dstEdge, ok := r.pre(pkt)
	if !ok {
		return
	}
	now := r.sw.Now()
	// The flowlet key's fid must be direction-sensitive so a flow's
	// data and its acks never share an entry (see dataplane package).
	fid := uint32(flowHash(pkt.FlowID ^ uint64(pkt.Dst)<<40))
	key := hulaFlowKey{dst: dstEdge, fid: fid}
	if fe := r.flowlets[key]; fe != nil && now-fe.lastPkt < r.flowletNs && !r.stale(dstEdge, fe.port, now) {
		fe.lastPkt = now
		r.sw.Send(fe.port, pkt)
		return
	}
	port, ok := r.bestFresh(dstEdge, now)
	if !ok {
		r.sw.Drop(pkt, sim.DropNoRoute)
		return
	}
	r.flowlets[key] = &hulaFlowlet{port: port, lastPkt: now}
	r.sw.Send(port, pkt)
}

// stale reports whether routing toward dst via port relies on
// information older than the aging threshold: probes on that port have
// stopped, so the port is presumed failed for this destination.
func (r *Hula) stale(dst topo.NodeID, port int, now int64) bool {
	last, ok := r.updatedVia[hulaVia{dst: dst, port: port}]
	return !ok || now-last > r.ageNs
}

func (r *Hula) bestFresh(dst topo.NodeID, now int64) (int, bool) {
	port, ok := r.bestPort[dst]
	if !ok || now-r.updated[dst] > r.ageNs || r.stale(dst, port, now) {
		// The recorded best went stale; fall back to any fresh port.
		bestUtil := 2.0
		found := false
		for p := 0; p < r.sw.PortCount(); p++ {
			if !r.sw.IsSwitchPort(p) {
				continue
			}
			if last, ok := r.updatedVia[hulaVia{dst: dst, port: p}]; ok && now-last <= r.ageNs {
				u := r.sw.TxUtil(p)
				if !found || u < bestUtil {
					bestUtil = u
					port = p
					found = true
				}
			}
		}
		if !found {
			return 0, false
		}
		r.bestPort[dst] = port
		r.updated[dst] = now
		return port, true
	}
	return port, true
}

// handleProbe applies HULA's update rule and the up-down propagation
// constraint.
func (r *Hula) handleProbe(pkt *sim.Packet, inPort int) {
	if pkt.Origin == r.sw.ID {
		r.sw.Net.Free(pkt)
		return
	}
	now := r.sw.Now()
	// Path utilization toward the origin via inPort: max of probe's
	// bottleneck and our transmit utilization on that port.
	util := pkt.MV[0]
	if u := r.sw.TxUtil(inPort); u > util {
		util = u
	}
	r.updatedVia[hulaVia{dst: pkt.Origin, port: inPort}] = now
	cur, have := r.bestUtil[pkt.Origin]
	fresh := now-r.updated[pkt.Origin] <= r.ageNs
	better := !have || !fresh || util < cur || r.bestPort[pkt.Origin] == inPort
	if !better {
		r.sw.Net.Free(pkt)
		return
	}
	r.bestUtil[pkt.Origin] = util
	r.bestPort[pkt.Origin] = inPort
	r.updated[pkt.Origin] = now

	// Propagate along reverse up-down paths: a probe that has started
	// descending (arrived from a switch above us) may only continue
	// descending.
	fromLevel := r.level[r.sw.Peer(inPort)]
	myLevel := r.level[r.sw.ID]
	goingUpStill := pkt.Up && fromLevel < myLevel
	pkt.MV[0] = util
	sent := false
	for port := 0; port < r.sw.PortCount(); port++ {
		if port == inPort || !r.sw.IsSwitchPort(port) {
			continue
		}
		peerLevel := r.level[r.sw.Peer(port)]
		down := peerLevel < myLevel
		up := peerLevel > myLevel
		if !(down || (up && goingUpStill)) {
			continue
		}
		cp := r.sw.Net.Clone(pkt)
		cp.Up = goingUpStill && up
		r.sw.Send(port, cp)
		sent = true
	}
	_ = sent
	r.sw.Net.Free(pkt)
}

// BestNextHop exposes HULA's current decision (tests/diagnostics).
func (r *Hula) BestNextHop(dst topo.NodeID) (int, float64) {
	port, ok := r.bestFresh(dst, r.sw.Now())
	if !ok {
		return -1, 1
	}
	return port, r.bestUtil[dst]
}
