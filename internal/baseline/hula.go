package baseline

import (
	"contra/internal/metrics"
	"contra/internal/sim"
	"contra/internal/topo"
	"contra/internal/trace"
)

// Hula reimplements HULA (Katta et al., SOSR 2016): utilization-aware
// load balancing specialized to Clos/fat-tree topologies. Every
// top-of-rack (edge) switch floods a probe per period along up-down
// paths; switches remember the best (least-utilized) next hop toward
// every ToR and pin flowlets to it. Unlike Contra it relies on the
// tree structure for loop freedom and path exploration, which is
// exactly the generality gap the paper highlights.
type Hula struct {
	base
	periodNs  int64
	flowletNs int64
	ageNs     int64

	level    map[topo.NodeID]int // 0 edge, 1 agg, 2 core
	bestPort map[topo.NodeID]int
	bestUtil map[topo.NodeID]float64
	updated  map[topo.NodeID]int64
	// updatedVia tracks freshness per (destination, port): a flowlet
	// pinned to a port whose probes stopped must expire even while the
	// destination stays reachable through other ports.
	updatedVia map[hulaVia]int64

	flowlets map[hulaFlowKey]*hulaFlowlet
	probeSz  int

	// Probe aggregation (mirroring the Contra data plane, so scheme
	// comparisons stay apples to apples): packing defers transit
	// re-advertisement to a per-period flush emitting one packed
	// multi-origin probe per eligible port (with heartbeats on quiet
	// fabric ports); suppression skips re-advertising origins whose
	// best port and utilization are unchanged within eps, with a
	// forced refresh every refreshNs.
	packing    bool
	suppressOn bool
	eps        float64
	refreshNs  int64
	pend       map[topo.NodeID]*hulaPend
	pendList   []topo.NodeID // deterministic flush order
	lastAdv    map[topo.NodeID]*hulaAdv

	// tr, when non-nil, records fresh flowlet decisions at the
	// decisions trace level: HULA's rank is its scalar path
	// utilization, emitted as a one-element vector.
	tr *trace.Recorder

	// mx, when non-nil, accumulates probe-table churn and route flaps
	// for the metrics sampler (mirroring the Contra data plane so
	// scheme comparisons stay apples to apples).
	mx *metrics.Churn
}

// SetTracer attaches a decision-trace recorder (nil detaches).
func (r *Hula) SetTracer(t *trace.Recorder) { r.tr = t }

// SetChurn attaches this router's churn accumulator (nil detaches).
func (r *Hula) SetChurn(ch *metrics.Churn) { r.mx = ch }

// hulaPend is one origin's queued re-advertisement: the latest
// propagated utilization and the probe-path state it arrived with.
type hulaPend struct {
	util   float64
	up     bool
	inPort int
}

// hulaAdv snapshots what was last re-advertised for an origin.
type hulaAdv struct {
	util float64
	port int
	at   int64
}

type hulaVia struct {
	dst  topo.NodeID
	port int
}

type hulaFlowKey struct {
	dst topo.NodeID
	fid uint32
}

type hulaFlowlet struct {
	port    int
	lastPkt int64
}

// HulaConfig parameterizes the HULA deployment.
type HulaConfig struct {
	ProbePeriodNs    int64 // default 256us (§6.3)
	FlowletTimeoutNs int64 // default 200us

	// ProbePacking enables multi-origin probe packing; SuppressEps and
	// RefreshEvery enable delta suppression with the same semantics as
	// core.Options (setting either turns suppression on; RefreshEvery
	// defaults to 4 when only the epsilon is given).
	ProbePacking bool
	SuppressEps  float64
	RefreshEvery int
}

// NewHula builds one HULA switch router.
func NewHula(cfg HulaConfig) *Hula {
	if cfg.ProbePeriodNs == 0 {
		cfg.ProbePeriodNs = 256_000
	}
	if cfg.FlowletTimeoutNs == 0 {
		cfg.FlowletTimeoutNs = 200_000
	}
	if cfg.SuppressEps > 0 && cfg.RefreshEvery == 0 {
		cfg.RefreshEvery = 4
	}
	suppressOn := cfg.RefreshEvery > 0
	// Suppression legitimately quiets an origin, and the quiet window
	// compounds across a hop (an upstream forced refresh arriving just
	// inside this switch's own horizon is suppressed), so consecutive
	// advertisements can be nearly 2x RefreshEvery apart; stretch the
	// aging horizon by that bound so suppressed-but-alive routes never
	// expire.
	slack := int64(0)
	if suppressOn {
		slack = 2 * int64(cfg.RefreshEvery)
	}
	return &Hula{
		periodNs:   cfg.ProbePeriodNs,
		flowletNs:  cfg.FlowletTimeoutNs,
		ageNs:      (3+slack)*cfg.ProbePeriodNs + cfg.ProbePeriodNs,
		bestPort:   make(map[topo.NodeID]int),
		bestUtil:   make(map[topo.NodeID]float64),
		updated:    make(map[topo.NodeID]int64),
		updatedVia: make(map[hulaVia]int64),
		flowlets:   make(map[hulaFlowKey]*hulaFlowlet),
		probeSz:    64,
		packing:    cfg.ProbePacking,
		suppressOn: suppressOn,
		eps:        cfg.SuppressEps,
		refreshNs:  int64(cfg.RefreshEvery) * cfg.ProbePeriodNs,
		pend:       make(map[topo.NodeID]*hulaPend),
		lastAdv:    make(map[topo.NodeID]*hulaAdv),
	}
}

// DeployHula installs HULA on every switch. The topology must carry
// Clos roles (edge/agg/core), as produced by topo.Fattree and
// topo.LeafSpine.
func DeployHula(n *sim.Network, cfg HulaConfig) map[topo.NodeID]*Hula {
	routers := make(map[topo.NodeID]*Hula)
	for _, s := range n.Topo.Switches() {
		r := NewHula(cfg)
		routers[s] = r
		n.SetRouter(s, r)
	}
	return routers
}

func roleLevel(r topo.Role) int {
	switch r {
	case topo.RoleEdge:
		return 0
	case topo.RoleAgg:
		return 1
	case topo.RoleCore:
		return 2
	}
	return -1
}

// Attach implements sim.Router.
func (r *Hula) Attach(sw *sim.SwitchDev) {
	r.init(sw)
	r.level = make(map[topo.NodeID]int)
	g := sw.Net.Topo
	for _, s := range g.Switches() {
		lvl := roleLevel(g.Node(s).Role)
		if lvl < 0 {
			panic("baseline: HULA requires a Clos topology with switch roles")
		}
		r.level[s] = lvl
	}
	offset := (int64(sw.ID) * 7919) % r.periodNs
	if r.packing {
		// Every switch flushes once per period; edge origination rides
		// the packed flush instead of a separate probe burst.
		sw.Net.Eng.Every(offset, r.periodNs, r.flush)
		return
	}
	if g.Node(sw.ID).Role == topo.RoleEdge {
		sw.Net.Eng.Every(offset, r.periodNs, r.originate)
	}
}

var _ sim.Rebooter = (*Hula)(nil)

// Reboot implements sim.Rebooter: a HULA switch coming back from a
// whole-node failure restarts with its soft state (best-hop tables,
// probe freshness, flowlet pins) flushed, paying the same cold-start
// warm-up Contra pays — chaos scheme comparisons stay apples to
// apples. The level table is topology knowledge, not learned state,
// so it survives.
func (r *Hula) Reboot() {
	r.bestPort = make(map[topo.NodeID]int)
	r.bestUtil = make(map[topo.NodeID]float64)
	r.updated = make(map[topo.NodeID]int64)
	r.updatedVia = make(map[hulaVia]int64)
	r.flowlets = make(map[hulaFlowKey]*hulaFlowlet)
	r.pend = make(map[topo.NodeID]*hulaPend)
	r.pendList = r.pendList[:0]
	r.lastAdv = make(map[topo.NodeID]*hulaAdv)
}

// originate floods a fresh probe from this ToR upward.
func (r *Hula) originate() {
	for port := 0; port < r.sw.PortCount(); port++ {
		if !r.sw.IsSwitchPort(port) {
			continue
		}
		p := r.sw.Net.NewPacket()
		p.Kind = sim.Probe
		p.Size = r.probeSz
		p.Origin = r.sw.ID
		p.Up = true
		p.TTL = sim.InitialTTL
		r.sw.Send(port, p)
	}
}

// Handle implements sim.Router.
func (r *Hula) Handle(pkt *sim.Packet, inPort int) {
	if pkt.Kind == sim.Probe {
		if pkt.IsPacked {
			r.handlePacked(pkt, inPort)
		} else {
			r.handleProbe(pkt, inPort)
		}
		return
	}
	dstEdge, ok := r.pre(pkt)
	if !ok {
		return
	}
	now := r.sw.Now()
	// The flowlet key's fid must be direction-sensitive so a flow's
	// data and its acks never share an entry (see dataplane package).
	fid := uint32(flowHash(pkt.FlowID ^ uint64(pkt.Dst)<<40))
	key := hulaFlowKey{dst: dstEdge, fid: fid}
	if fe := r.flowlets[key]; fe != nil && now-fe.lastPkt < r.flowletNs && !r.stale(dstEdge, fe.port, now) {
		fe.lastPkt = now
		r.sw.Send(fe.port, pkt)
		return
	}
	port, ok := r.bestFresh(dstEdge, now)
	if !ok {
		r.sw.Drop(pkt, sim.DropNoRoute)
		return
	}
	if r.tr != nil && pkt.Kind == sim.Data && r.tr.DecisionsOn() {
		r.recordDecision(pkt, inPort, dstEdge, port, now)
	}
	r.flowlets[key] = &hulaFlowlet{port: port, lastPkt: now}
	r.sw.Send(port, pkt)
}

// recordDecision feeds one fresh HULA flowlet decision to the tracer.
// The rank vector is HULA's scalar: the best-known path utilization
// toward the destination ToR; the runner-up is the least-utilized
// other fresh port, mirroring bestFresh's fallback scan.
func (r *Hula) recordDecision(pkt *sim.Packet, inPort int, dst topo.NodeID, port int, now int64) {
	kind := "transit"
	if r.sw.IsHostPort(inPort) {
		kind = "source"
	}
	chosen := r.sw.TxUtil(port)
	if p, ok := r.bestPort[dst]; ok && p == port {
		if u, ok := r.bestUtil[dst]; ok {
			chosen = u
		}
	}
	rPort := -1
	var rRank []float64
	var rBuf [1]float64
	rBest := 2.0
	for p := 0; p < r.sw.PortCount(); p++ {
		if p == port || !r.sw.IsSwitchPort(p) {
			continue
		}
		if last, ok := r.updatedVia[hulaVia{dst: dst, port: p}]; ok && now-last <= r.ageNs {
			if u := r.sw.TxUtil(p); rPort < 0 || u < rBest {
				rPort, rBest = p, u
			}
		}
	}
	if rPort >= 0 {
		rBuf[0] = rBest
		rRank = rBuf[:]
	}
	var cBuf [1]float64
	cBuf[0] = chosen
	r.tr.Decision(now, pkt.FlowID, r.sw.Name(), kind, port, cBuf[:], rPort, rRank, 0, 0)
}

// stale reports whether routing toward dst via port relies on
// information older than the aging threshold: probes on that port have
// stopped, so the port is presumed failed for this destination.
func (r *Hula) stale(dst topo.NodeID, port int, now int64) bool {
	last, ok := r.updatedVia[hulaVia{dst: dst, port: port}]
	return !ok || now-last > r.ageNs
}

func (r *Hula) bestFresh(dst topo.NodeID, now int64) (int, bool) {
	port, ok := r.bestPort[dst]
	if !ok || now-r.updated[dst] > r.ageNs || r.stale(dst, port, now) {
		// The recorded best went stale; fall back to any fresh port.
		oldPort, hadOld := port, ok
		bestUtil := 2.0
		found := false
		for p := 0; p < r.sw.PortCount(); p++ {
			if !r.sw.IsSwitchPort(p) {
				continue
			}
			if last, ok := r.updatedVia[hulaVia{dst: dst, port: p}]; ok && now-last <= r.ageNs {
				u := r.sw.TxUtil(p)
				if !found || u < bestUtil {
					bestUtil = u
					port = p
					found = true
				}
			}
		}
		if !found {
			return 0, false
		}
		if r.mx != nil && hadOld && oldPort != port {
			r.mx.Flaps++
		}
		r.bestPort[dst] = port
		r.updated[dst] = now
		return port, true
	}
	return port, true
}

// handleProbe applies HULA's update rule and the up-down propagation
// constraint.
func (r *Hula) handleProbe(pkt *sim.Packet, inPort int) {
	if pkt.Origin == r.sw.ID {
		r.sw.Net.Free(pkt)
		return
	}
	now := r.sw.Now()
	// Path utilization toward the origin via inPort: max of probe's
	// bottleneck and our transmit utilization on that port.
	util := pkt.MV[0]
	if u := r.sw.TxUtil(inPort); u > util {
		util = u
	}
	accepted, goingUpStill := r.acceptProbe(pkt.Origin, util, pkt.Up, inPort, now)
	if !accepted {
		r.sw.Net.Free(pkt)
		return
	}
	if r.suppressOn && r.suppressAdvert(pkt.Origin, now) {
		r.sw.Net.CountProbeSuppressed(1)
		// Count the re-multicasts this skip avoids, mirroring the
		// Contra data plane's accounting so scheme comparisons of
		// probe_tx_saved stay apples to apples.
		saved := int64(0)
		for port := 0; port < r.sw.PortCount(); port++ {
			if _, ok := r.eligiblePort(port, inPort, goingUpStill); ok {
				saved++
			}
		}
		if saved > 0 {
			r.sw.Net.CountProbeSaved(saved)
		}
		r.sw.Net.Free(pkt)
		return
	}
	if r.suppressOn {
		r.recordAdvert(pkt.Origin, now)
	}
	pkt.MV[0] = util
	for port := 0; port < r.sw.PortCount(); port++ {
		up, ok := r.eligiblePort(port, inPort, goingUpStill)
		if !ok {
			continue
		}
		cp := r.sw.Net.Clone(pkt)
		cp.Up = up
		r.sw.Send(port, cp)
	}
	r.sw.Net.Free(pkt)
}

// acceptProbe runs HULA's update rule for one origin advertisement and
// reports whether it was accepted plus the outgoing propagation state.
func (r *Hula) acceptProbe(origin topo.NodeID, util float64, up bool, inPort int, now int64) (accepted, goingUpStill bool) {
	r.updatedVia[hulaVia{dst: origin, port: inPort}] = now
	cur, have := r.bestUtil[origin]
	fresh := now-r.updated[origin] <= r.ageNs
	if have && fresh && util >= cur && r.bestPort[origin] != inPort {
		return false, false
	}
	if r.mx != nil {
		switch {
		case !have:
			r.mx.Added++
		case !fresh:
			r.mx.Expired++
			if r.bestPort[origin] != inPort {
				r.mx.Flaps++
			}
		case r.bestPort[origin] != inPort:
			r.mx.Replaced++
			r.mx.Flaps++
		}
	}
	r.bestUtil[origin] = util
	r.bestPort[origin] = inPort
	r.updated[origin] = now
	// Propagate along reverse up-down paths: a probe that has started
	// descending (arrived from a switch above us) may only continue
	// descending.
	fromLevel := r.level[r.sw.Peer(inPort)]
	return true, up && fromLevel < r.level[r.sw.ID]
}

// eligiblePort reports whether a re-advertisement may leave on port
// under the up-down constraint, and whether it keeps traveling upward.
func (r *Hula) eligiblePort(port, inPort int, goingUpStill bool) (up, ok bool) {
	if port == inPort || !r.sw.IsSwitchPort(port) {
		return false, false
	}
	myLevel := r.level[r.sw.ID]
	peerLevel := r.level[r.sw.Peer(port)]
	down := peerLevel < myLevel
	upward := peerLevel > myLevel
	if !(down || (upward && goingUpStill)) {
		return false, false
	}
	return goingUpStill && upward, true
}

// suppressAdvert reports whether re-advertising origin may be skipped:
// best port unchanged, utilization within eps of the last
// advertisement, and the forced-refresh horizon not yet elapsed.
func (r *Hula) suppressAdvert(origin topo.NodeID, now int64) bool {
	adv := r.lastAdv[origin]
	if adv == nil || adv.port != r.bestPort[origin] {
		return false
	}
	if now-adv.at >= r.refreshNs {
		return false
	}
	d := r.bestUtil[origin] - adv.util
	if d < 0 {
		d = -d
	}
	return d <= r.eps
}

// recordAdvert snapshots the advertised state for origin.
func (r *Hula) recordAdvert(origin topo.NodeID, now int64) {
	adv := r.lastAdv[origin]
	if adv == nil {
		adv = &hulaAdv{}
		r.lastAdv[origin] = adv
	}
	adv.util = r.bestUtil[origin]
	adv.port = r.bestPort[origin]
	adv.at = now
}

// markPending queues an accepted advertisement for the packed flush;
// the latest accept within a period wins.
func (r *Hula) markPending(origin topo.NodeID, util float64, up bool, inPort int) {
	pe := r.pend[origin]
	if pe == nil {
		pe = &hulaPend{}
		r.pend[origin] = pe
		r.pendList = append(r.pendList, origin)
	}
	pe.util = util
	pe.up = up
	pe.inPort = inPort
}

// Packed HULA probe wire accounting: the single-probe frame is 64B;
// packing pays the frame plus a small header once and ~10B per packed
// origin entry.
const (
	hulaPackedBase  = 22
	hulaPackedEntry = 10
)

// handlePacked processes a packed multi-origin HULA probe: each entry
// runs the standard update rule, and accepted entries are queued for
// this switch's own per-period flush instead of being forwarded
// immediately. Empty packed probes are liveness heartbeats.
func (r *Hula) handlePacked(pkt *sim.Packet, inPort int) {
	now := r.sw.Now()
	txu := r.sw.TxUtil(inPort)
	for i := range pkt.Packed {
		en := &pkt.Packed[i]
		if en.Origin == r.sw.ID {
			continue
		}
		util := en.MV[0]
		if txu > util {
			util = txu
		}
		accepted, goingUpStill := r.acceptProbe(en.Origin, util, en.Up, inPort, now)
		if !accepted {
			continue
		}
		if r.pend[en.Origin] != nil {
			// Already queued: refresh the pending advertisement in place
			// (the flush emits the latest state, so nothing is suppressed).
			r.markPending(en.Origin, util, goingUpStill, inPort)
			continue
		}
		if r.suppressOn && r.suppressAdvert(en.Origin, now) {
			r.sw.Net.CountProbeSuppressed(1)
			continue
		}
		if r.suppressOn {
			r.recordAdvert(en.Origin, now)
		}
		r.markPending(en.Origin, util, goingUpStill, inPort)
	}
	r.sw.Net.Free(pkt)
}

// flush is the packed per-period emission: one packed probe per fabric
// port carrying this switch's own origination (edges only) plus every
// eligible pending re-advertisement. Unlike Contra, HULA keeps no
// port-level liveness table — freshness is per (dst, port) and the
// aging horizon is already stretched by the refresh bound — so quiet
// ports get no heartbeat.
func (r *Hula) flush() {
	isEdge := r.level[r.sw.ID] == 0
	for port := 0; port < r.sw.PortCount(); port++ {
		if !r.sw.IsSwitchPort(port) {
			continue
		}
		p := r.sw.Net.NewPacket()
		p.Kind = sim.Probe
		p.IsPacked = true
		p.TTL = sim.InitialTTL
		if isEdge {
			p.Packed = append(p.Packed, sim.ProbeEntry{Origin: r.sw.ID, Up: true})
		}
		for _, origin := range r.pendList {
			pe := r.pend[origin]
			up, ok := r.eligiblePort(port, pe.inPort, pe.up)
			if !ok {
				continue
			}
			p.Packed = append(p.Packed, sim.ProbeEntry{
				Origin: origin, Up: up, MV: [4]float64{pe.util},
			})
		}
		n := len(p.Packed)
		if n == 0 {
			r.sw.Net.Free(p)
			continue
		}
		if n > 1 {
			r.sw.Net.CountProbeSaved(int64(n - 1))
		}
		p.Size = hulaPackedBase + hulaPackedEntry*n
		r.sw.Send(port, p)
	}
	if r.suppressOn {
		// Re-snapshot from the state actually emitted: a pending
		// advertisement may have been refreshed in place after it was
		// recorded, and suppression must compare against what went out
		// on the wire (bestUtil/bestPort track the latest accept, which
		// is exactly what the flush advertised).
		now := r.sw.Now()
		for _, origin := range r.pendList {
			r.recordAdvert(origin, now)
		}
	}
	for _, origin := range r.pendList {
		delete(r.pend, origin)
	}
	r.pendList = r.pendList[:0]
}

// BestNextHop exposes HULA's current decision (tests/diagnostics).
func (r *Hula) BestNextHop(dst topo.NodeID) (int, float64) {
	port, ok := r.bestFresh(dst, r.sw.Now())
	if !ok {
		return -1, 1
	}
	return port, r.bestUtil[dst]
}
