package baseline

import (
	"contra/internal/sim"
	"contra/internal/topo"
)

// Spain reimplements SPAIN (Mudigonda et al., NSDI 2010): an offline
// algorithm precomputes a set of (near-)disjoint paths between every
// pair of edge switches and maps them onto VLANs; at runtime each flow
// is statically hashed onto one VLAN and follows that path. It gets
// multipath spreading on arbitrary topologies but — unlike Contra —
// cannot react to load.
type Spain struct {
	base
	k int
	// vlanNext[(vlan, dstEdge)] -> out port on this switch.
	vlanNext map[spainKey]int
	// numPaths[(srcEdge, dstEdge)] -> how many VLANs are usable.
	numPaths map[pairKey]int
	fallback map[topo.NodeID]int // shortest-path port per destination
}

type spainKey struct {
	vlan int32
	dst  topo.NodeID
}

type pairKey struct {
	src, dst topo.NodeID
}

// SpainConfig parameterizes path precomputation.
type SpainConfig struct {
	K int // paths per pair; default 4
}

// DeploySpain computes the VLAN path sets once (offline, on the
// topology as currently up) and installs per-switch routers.
func DeploySpain(n *sim.Network, cfg SpainConfig) map[topo.NodeID]*Spain {
	if cfg.K <= 0 {
		cfg.K = 4
	}
	g := n.Topo
	vlanNext := make(map[topo.NodeID]map[spainKey]int)
	numPaths := make(map[pairKey]int)
	for _, s := range g.Switches() {
		vlanNext[s] = make(map[spainKey]int)
	}
	switches := g.Switches()
	for _, src := range switches {
		for _, dst := range switches {
			if src == dst {
				continue
			}
			paths := g.KShortestPaths(src, dst, cfg.K)
			numPaths[pairKey{src, dst}] = len(paths)
			for vlan, p := range paths {
				for i := 0; i+1 < len(p); i++ {
					port := g.PortTo(p[i], p[i+1])
					vlanNext[p[i]][spainKey{vlan: int32(vlan), dst: dst}] = port
				}
			}
		}
	}
	routers := make(map[topo.NodeID]*Spain)
	for _, s := range switches {
		r := &Spain{k: cfg.K, vlanNext: vlanNext[s], numPaths: numPaths}
		routers[s] = r
		n.SetRouter(s, r)
	}
	return routers
}

// Attach implements sim.Router.
func (r *Spain) Attach(sw *sim.SwitchDev) {
	r.init(sw)
	r.fallback = make(map[topo.NodeID]int)
	g := sw.Net.Topo
	for _, dst := range g.Switches() {
		if dst == sw.ID {
			continue
		}
		if p := g.ShortestPath(sw.ID, dst); p != nil {
			r.fallback[dst] = g.PortTo(sw.ID, p[1])
		}
	}
}

// Handle implements sim.Router.
func (r *Spain) Handle(pkt *sim.Packet, inPort int) {
	if pkt.Kind == sim.Probe {
		r.sw.Drop(pkt, sim.DropProbeUnsupported)
		return
	}
	dstEdge, ok := r.pre(pkt)
	if !ok {
		return
	}
	if r.sw.IsHostPort(inPort) || !pkt.HasTag {
		// Source edge switch: hash the flow onto a VLAN.
		np := r.numPaths[pairKey{r.sw.ID, dstEdge}]
		if np == 0 {
			r.sw.Drop(pkt, sim.DropNoRoute)
			return
		}
		pkt.Tag = int32(flowHash(pkt.FlowID) % uint64(np))
		pkt.HasTag = true
		pkt.Size += sim.TagHeaderBytes
	}
	if port, ok := r.vlanNext[spainKey{vlan: pkt.Tag, dst: dstEdge}]; ok {
		r.sw.Send(port, pkt)
		return
	}
	// Not on this VLAN's path (e.g. after reroute); fall back to the
	// shortest path, as SPAIN falls back to VLAN 1.
	if port, ok := r.fallback[dstEdge]; ok {
		r.sw.Send(port, pkt)
		return
	}
	r.sw.Drop(pkt, sim.DropNoRoute)
}
