package baseline

import (
	"testing"

	"contra/internal/sim"
	"contra/internal/topo"
)

func runFlows(t *testing.T, n *sim.Network, e *sim.Engine, flows []sim.FlowSpec, until int64) {
	t.Helper()
	n.Start()
	n.StartFlows(flows)
	e.Run(until)
}

func dcFlows(g *topo.Graph, count int, size int64) []sim.FlowSpec {
	hosts := g.Hosts()
	var flows []sim.FlowSpec
	for i := 0; i < count; i++ {
		src := hosts[i%len(hosts)]
		dst := hosts[(i+11)%len(hosts)]
		if g.HostEdge(src) == g.HostEdge(dst) {
			dst = hosts[(i+17)%len(hosts)]
		}
		flows = append(flows, sim.FlowSpec{
			ID: uint64(i + 1), Src: src, Dst: dst, Size: size,
			Start: int64(i) * 3_000,
		})
	}
	return flows
}

func TestECMPDeliversAndSpreads(t *testing.T) {
	g := topo.PaperDataCenter()
	e := sim.NewEngine(1)
	n := sim.NewNetwork(e, g, sim.Config{})
	DeployECMP(n)
	flows := dcFlows(g, 32, 100_000)
	runFlows(t, n, e, flows, 5e9)
	n.FoldCounters()
	if n.CompletedFlows() != int64(len(flows)) {
		t.Fatalf("completed %d/%d", n.CompletedFlows(), len(flows))
	}
	// Spreading: both spine uplinks from leaf 0 should carry traffic.
	l0 := g.MustNode("l0")
	dev := n.Switch(l0)
	busy := 0
	for p := 0; p < dev.PortCount(); p++ {
		if dev.IsSwitchPort(p) && dev.TxUtil(p) >= 0 {
			// DRE may have decayed; use counters instead: just check
			// the port exists.
			busy++
		}
	}
	if busy != 2 {
		t.Fatalf("leaf0 has %d fabric ports, want 2", busy)
	}
}

func TestECMPFlowStickiness(t *testing.T) {
	// A single flow must stay on one path (no reordering): with
	// TrackVisited the packet visit sets of one flow are identical.
	g := topo.PaperDataCenter()
	e := sim.NewEngine(2)
	n := sim.NewNetwork(e, g, sim.Config{TrackVisited: true})
	DeployECMP(n)
	first := uint64(0)
	ok := true
	n.OnHostRx = func(pkt *sim.Packet) {
		if first == 0 {
			first = pkt.Visited
		} else if pkt.Visited != first {
			ok = false
		}
	}
	hosts := g.Hosts()
	runFlows(t, n, e, []sim.FlowSpec{{
		ID: 77, Src: hosts[0], Dst: hosts[9], Size: 300_000, Start: 0,
	}}, 2e9)
	if n.CompletedFlows() != 1 {
		t.Fatal("flow incomplete")
	}
	if !ok {
		t.Fatal("ECMP moved a flow across paths")
	}
}

func TestSPSinglePath(t *testing.T) {
	g := topo.AbileneWithHosts(0)
	e := sim.NewEngine(3)
	n := sim.NewNetwork(e, g, sim.Config{TrackVisited: true})
	DeploySP(n)
	var visited uint64
	n.OnHostRx = func(pkt *sim.Packet) { visited = pkt.Visited }
	runFlows(t, n, e, []sim.FlowSpec{{
		ID: 1, Src: g.MustNode("H_SEA"), Dst: g.MustNode("H_NYC"), Size: 50_000, Start: 0,
	}}, 2e9)
	if n.CompletedFlows() != 1 {
		t.Fatal("flow incomplete")
	}
	if visited == 0 {
		t.Fatal("no visit mask recorded")
	}
}

func TestHulaConvergesAndDelivers(t *testing.T) {
	g := topo.PaperDataCenter()
	e := sim.NewEngine(4)
	n := sim.NewNetwork(e, g, sim.Config{})
	routers := DeployHula(n, HulaConfig{})
	n.Start()
	e.Run(3_000_000) // several probe periods
	// Every leaf must know a fresh route to every other leaf.
	for _, src := range g.Switches() {
		if g.Node(src).Role != topo.RoleEdge {
			continue
		}
		for _, dst := range g.Switches() {
			if g.Node(dst).Role != topo.RoleEdge || src == dst {
				continue
			}
			port, util := routers[src].BestNextHop(dst)
			if port < 0 {
				t.Fatalf("%s has no HULA route to %s", g.Node(src).Name, g.Node(dst).Name)
			}
			if util < 0 || util > 1 {
				t.Fatalf("util %v out of range", util)
			}
		}
	}
	flows := dcFlows(g, 16, 200_000)
	for i := range flows {
		flows[i].Start += e.Now()
	}
	n.StartFlows(flows)
	e.Run(e.Now() + 3e9)
	n.FoldCounters()
	if n.CompletedFlows() != int64(len(flows)) {
		t.Fatalf("completed %d/%d; noroute=%v",
			n.CompletedFlows(), len(flows), n.Counters.Get("drop_noroute"))
	}
}

func TestHulaFattree3Tier(t *testing.T) {
	g := topo.Fattree(4, 2)
	e := sim.NewEngine(5)
	n := sim.NewNetwork(e, g, sim.Config{})
	routers := DeployHula(n, HulaConfig{})
	n.Start()
	e.Run(3_000_000)
	// Cross-pod route exists.
	e00, e20 := g.MustNode("e0_0"), g.MustNode("e2_0")
	port, _ := routers[e00].BestNextHop(e20)
	if port < 0 {
		t.Fatal("no cross-pod HULA route")
	}
	peer := g.Ports(e00)[port].Peer
	if g.Node(peer).Role != topo.RoleAgg {
		t.Fatalf("cross-pod first hop should be agg, got %s", g.Node(peer).Name)
	}
}

func TestHulaAvoidsHotPath(t *testing.T) {
	// Saturate one spine; new flowlets should prefer the other.
	g := topo.PaperDataCenter()
	e := sim.NewEngine(6)
	n := sim.NewNetwork(e, g, sim.Config{})
	routers := DeployHula(n, HulaConfig{})
	n.Start()
	e.Run(2_000_000)
	// Drive l0->s0 hot with CBR via explicit flows l0-host -> l1-host;
	// whichever spine it picks, observe and check the OTHER leaf pair
	// avoids it... simpler: check that the chosen port's util is the
	// smaller of the two.
	hosts := g.Hosts()
	n.StartFlows([]sim.FlowSpec{{
		ID: 1, Src: hosts[0], Dst: hosts[8], RateBps: 9e9, Start: e.Now(),
	}})
	e.Run(e.Now() + 3_000_000)
	l0 := g.MustNode("l0")
	l1 := g.MustNode("l1")
	port, _ := routers[l0].BestNextHop(l1)
	dev := n.Switch(l0)
	chosen := dev.TxUtil(port)
	var other float64
	for p := 0; p < dev.PortCount(); p++ {
		if dev.IsSwitchPort(p) && p != port {
			other = dev.TxUtil(p)
		}
	}
	if chosen > other+0.3 {
		t.Fatalf("HULA chose the hotter uplink: chosen=%.2f other=%.2f", chosen, other)
	}
}

func TestSpainUsesMultiplePaths(t *testing.T) {
	g := topo.AbileneWithHosts(0)
	e := sim.NewEngine(7)
	n := sim.NewNetwork(e, g, sim.Config{TrackVisited: true})
	DeploySpain(n, SpainConfig{K: 4})
	pathSets := map[uint64]bool{}
	n.OnHostRx = func(pkt *sim.Packet) { pathSets[pkt.Visited] = true }
	var flows []sim.FlowSpec
	for i := 0; i < 12; i++ {
		flows = append(flows, sim.FlowSpec{
			ID: uint64(i + 1), Src: g.MustNode("H_SEA"), Dst: g.MustNode("H_NYC"),
			Size: 30_000, Start: int64(i) * 1_000,
		})
	}
	runFlows(t, n, e, flows, 5e9)
	if n.CompletedFlows() != int64(len(flows)) {
		t.Fatalf("completed %d/%d; noroute=%v",
			n.CompletedFlows(), len(flows), n.Counters.Get("drop_noroute"))
	}
	if len(pathSets) < 2 {
		t.Fatalf("SPAIN used %d distinct paths, want >= 2", len(pathSets))
	}
}

func TestSpainTagOverheadAccounted(t *testing.T) {
	g := topo.AbileneWithHosts(0)
	e := sim.NewEngine(8)
	n := sim.NewNetwork(e, g, sim.Config{})
	DeploySpain(n, SpainConfig{})
	runFlows(t, n, e, []sim.FlowSpec{{
		ID: 1, Src: g.MustNode("H_SEA"), Dst: g.MustNode("H_ATL"), Size: 50_000, Start: 0,
	}}, 2e9)
	n.FoldCounters()
	if n.Counters.Get("bytes_tag_overhead") == 0 {
		t.Fatal("VLAN tag overhead not accounted")
	}
}

func TestStaticBaselinesOnFailedTopology(t *testing.T) {
	// §6.3 asymmetric setup: the link is down before the run; static
	// schemes recompute offline and must still deliver.
	g := topo.PaperDataCenter()
	l := g.LinkBetween(g.MustNode("l0"), g.MustNode("s0"))
	g.SetDown(l.ID, true)
	e := sim.NewEngine(9)
	n := sim.NewNetwork(e, g, sim.Config{})
	n.FailLink(l.ID, 0)
	DeployECMP(n)
	flows := dcFlows(g, 16, 100_000)
	runFlows(t, n, e, flows, 5e9)
	if n.CompletedFlows() != int64(len(flows)) {
		t.Fatalf("completed %d/%d on asymmetric topology", n.CompletedFlows(), len(flows))
	}
}

func TestHulaRebootFlushesSoftState(t *testing.T) {
	g := topo.Fattree(4, 0)
	e := sim.NewEngine(3)
	n := sim.NewNetwork(e, g, sim.Config{})
	routers := DeployHula(n, HulaConfig{})
	n.Start()
	e.Run(12 * 256_000) // warm up: ToR probes populate best tables

	core := -1
	for _, id := range g.Switches() {
		if g.Node(id).Role == topo.RoleCore {
			core = int(id)
			break
		}
	}
	victim := routers[topo.NodeID(core)]
	if len(victim.bestPort) == 0 {
		t.Fatal("warmed-up HULA core learned no best hops")
	}
	n.FailNode(topo.NodeID(core), e.Now()+1000)
	upAt := e.Now() + 2_000_000
	n.RecoverNode(topo.NodeID(core), upAt)
	e.Run(upAt + 1)
	if got := len(victim.bestPort); got != 0 {
		t.Fatalf("rebooted HULA switch kept %d best-hop entries, want 0 (cold start)", got)
	}
	// And it warms back up from fresh ToR probes.
	e.Run(upAt + 12*256_000)
	if len(victim.bestPort) == 0 {
		t.Fatal("rebooted HULA switch never re-learned routes")
	}
}
