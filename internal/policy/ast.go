// Package policy implements the Contra policy language of Figure 2:
// policies are path-ranking functions built from numeric ranks, path
// attributes, conditionals over regular path expressions and metric
// comparisons, and lexicographic tuples. The package provides the
// lexer, parser, static shape checks, rank semantics, and a
// ground-truth path evaluator used to validate the compiled protocol.
package policy

import (
	"fmt"
	"sort"
	"strings"
)

// Metric is a dynamic path attribute, written path.<attr> in policies.
type Metric uint8

// Supported path attributes.
const (
	Util Metric = iota // bottleneck utilization: max over links, in [0,1]
	Lat                // end-to-end latency: sum over links, in seconds
	Len                // hop count: number of links
	numMetrics
)

func (m Metric) String() string {
	switch m {
	case Util:
		return "util"
	case Lat:
		return "lat"
	case Len:
		return "len"
	}
	return fmt.Sprintf("metric(%d)", m)
}

// MetricByName maps the attribute name used in policy source to a
// Metric.
func MetricByName(s string) (Metric, bool) {
	switch s {
	case "util":
		return Util, true
	case "lat":
		return Lat, true
	case "len":
		return Len, true
	}
	return 0, false
}

// Combine folds one link's contribution into a partial path metric:
// max for utilization, sum for latency and hop count. This is the
// UPDATEMVEC operation probes apply per hop (§4.3).
func (m Metric) Combine(pathVal, linkVal float64) float64 {
	if m == Util {
		if linkVal > pathVal {
			return linkVal
		}
		return pathVal
	}
	return pathVal + linkVal
}

// Identity returns the metric's neutral element (probe initial value).
func (m Metric) Identity() float64 { return 0 }

// Expr is a rank-valued policy expression.
type Expr interface {
	exprNode()
	String() string
}

// Const is a numeric rank literal.
type Const struct{ X float64 }

// Inf is the infinite rank: no path is worse; traffic is dropped if
// every candidate path ranks Inf.
type Inf struct{}

// Attr references a dynamic path attribute (path.util etc.).
type Attr struct{ M Metric }

// BinOp is a binary arithmetic operator.
type BinOp uint8

// Binary operators.
const (
	Add BinOp = iota
	Sub
	Mul
)

func (o BinOp) String() string {
	switch o {
	case Add:
		return "+"
	case Sub:
		return "-"
	case Mul:
		return "*"
	}
	return "?"
}

// Bin is a binary arithmetic expression over scalar ranks.
type Bin struct {
	Op   BinOp
	L, R Expr
}

// If selects between two rank expressions based on a condition.
type If struct {
	Cond Cond
	Then Expr
	Else Expr
}

// Tuple ranks paths lexicographically by its elements.
type Tuple struct{ Elems []Expr }

func (*Const) exprNode() {}
func (*Inf) exprNode()   {}
func (*Attr) exprNode()  {}
func (*Bin) exprNode()   {}
func (*If) exprNode()    {}
func (*Tuple) exprNode() {}

func (e *Const) String() string {
	return trimFloat(e.X)
}

func trimFloat(x float64) string {
	s := fmt.Sprintf("%g", x)
	return s
}

func (e *Inf) String() string  { return "inf" }
func (e *Attr) String() string { return "path." + e.M.String() }
func (e *Bin) String() string {
	return fmt.Sprintf("(%s %s %s)", e.L.String(), e.Op, e.R.String())
}
func (e *If) String() string {
	// Always parenthesized so that printing inside a binary expression
	// reparses with the same structure.
	return fmt.Sprintf("(if %s then %s else %s)", e.Cond.String(), e.Then.String(), e.Else.String())
}
func (e *Tuple) String() string {
	parts := make([]string, len(e.Elems))
	for i, el := range e.Elems {
		parts[i] = el.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Cond is a boolean test.
type Cond interface {
	condNode()
	String() string
}

// Match tests whether the path matches a regular path expression. ID
// indexes Policy.Regexes after resolution (-1 before).
type Match struct {
	R  Regex
	ID int
}

// CmpOp is a comparison operator.
type CmpOp uint8

// Comparison operators.
const (
	LT CmpOp = iota
	LE
	GT
	GE
	EQ
	NE
)

func (o CmpOp) String() string {
	switch o {
	case LT:
		return "<"
	case LE:
		return "<="
	case GT:
		return ">"
	case GE:
		return ">="
	case EQ:
		return "=="
	case NE:
		return "!="
	}
	return "?"
}

// Eval applies the comparison to two floats.
func (o CmpOp) Eval(l, r float64) bool {
	switch o {
	case LT:
		return l < r
	case LE:
		return l <= r
	case GT:
		return l > r
	case GE:
		return l >= r
	case EQ:
		return l == r
	case NE:
		return l != r
	}
	return false
}

// Cmp compares two scalar expressions.
type Cmp struct {
	Op   CmpOp
	L, R Expr
}

// Not negates a condition.
type Not struct{ C Cond }

// And is conjunction.
type And struct{ L, R Cond }

// Or is disjunction.
type Or struct{ L, R Cond }

func (*Match) condNode() {}
func (*Cmp) condNode()   {}
func (*Not) condNode()   {}
func (*And) condNode()   {}
func (*Or) condNode()    {}

func (c *Match) String() string { return c.R.String() }
func (c *Cmp) String() string {
	return fmt.Sprintf("%s %s %s", c.L.String(), c.Op, c.R.String())
}
func (c *Not) String() string { return "not (" + c.C.String() + ")" }
func (c *And) String() string { return "(" + c.L.String() + " and " + c.R.String() + ")" }
func (c *Or) String() string  { return "(" + c.L.String() + " or " + c.R.String() + ")" }

// Regex is a regular path expression over switch names (Figure 2's
// "regular paths"). The symbol "." matches any single switch.
type Regex interface {
	regexNode()
	String() string
}

// RSym matches one specific switch by name.
type RSym struct{ Name string }

// RDot matches any single switch.
type RDot struct{}

// RCat is concatenation.
type RCat struct{ L, R Regex }

// RAlt is alternation (written + in the paper).
type RAlt struct{ L, R Regex }

// RStar is Kleene star.
type RStar struct{ X Regex }

func (*RSym) regexNode()  {}
func (*RDot) regexNode()  {}
func (*RCat) regexNode()  {}
func (*RAlt) regexNode()  {}
func (*RStar) regexNode() {}

func (r *RSym) String() string { return r.Name }
func (*RDot) String() string   { return "." }
func (r *RCat) String() string { return r.L.String() + " " + r.R.String() }
func (r *RAlt) String() string {
	return "(" + r.L.String() + " + " + r.R.String() + ")"
}
func (r *RStar) String() string {
	switch r.X.(type) {
	case *RSym, *RDot:
		return r.X.String() + "*"
	}
	return "(" + r.X.String() + ")*"
}

// Reverse returns the reversal of r. Probes travel from destination to
// sources, opposite to traffic, so the compiler matches probe paths
// against reversed regexes (§4.1).
func Reverse(r Regex) Regex {
	switch x := r.(type) {
	case *RSym, *RDot:
		return r
	case *RCat:
		return &RCat{L: Reverse(x.R), R: Reverse(x.L)}
	case *RAlt:
		return &RAlt{L: Reverse(x.L), R: Reverse(x.R)}
	case *RStar:
		return &RStar{X: Reverse(x.X)}
	}
	panic("policy: unknown regex node")
}

// Symbols returns the distinct switch names mentioned by r, sorted.
func Symbols(r Regex) []string {
	set := make(map[string]bool)
	var walk func(Regex)
	walk = func(r Regex) {
		switch x := r.(type) {
		case *RSym:
			set[x.Name] = true
		case *RCat:
			walk(x.L)
			walk(x.R)
		case *RAlt:
			walk(x.L)
			walk(x.R)
		case *RStar:
			walk(x.X)
		}
	}
	walk(r)
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Policy is a parsed, resolved minimize(...) policy.
type Policy struct {
	Body    Expr
	Regexes []Regex  // distinct regexes, indexed by Match.ID
	Attrs   []Metric // distinct dynamic attributes used, sorted
	Width   int      // maximum rank tuple width
	Src     string   // original source text, if parsed
}

// String renders the policy as source.
func (p *Policy) String() string {
	return "minimize(" + p.Body.String() + ")"
}

// UsesAttr reports whether the policy reads the given attribute.
func (p *Policy) UsesAttr(m Metric) bool {
	for _, a := range p.Attrs {
		if a == m {
			return true
		}
	}
	return false
}

// resolve walks the AST, interning distinct regexes (by printed form)
// into p.Regexes and assigning Match.ID, collecting attributes, and
// computing the rank width.
func (p *Policy) resolve() error {
	byStr := make(map[string]int)
	attrs := make(map[Metric]bool)

	var exprWidth func(Expr) (int, error)
	var walkCond func(Cond) error

	walkExprScalar := func(e Expr) error {
		w, err := exprWidth(e)
		if err != nil {
			return err
		}
		if w != 1 {
			return fmt.Errorf("policy: tuple used where scalar required: %s", e.String())
		}
		return nil
	}

	exprWidth = func(e Expr) (int, error) {
		switch x := e.(type) {
		case *Const:
			return 1, nil
		case *Inf:
			return 1, nil
		case *Attr:
			if x.M >= numMetrics {
				return 0, fmt.Errorf("policy: unknown attribute %v", x.M)
			}
			attrs[x.M] = true
			return 1, nil
		case *Bin:
			if err := walkExprScalar(x.L); err != nil {
				return 0, err
			}
			if err := walkExprScalar(x.R); err != nil {
				return 0, err
			}
			return 1, nil
		case *If:
			if err := walkCond(x.Cond); err != nil {
				return 0, err
			}
			wt, err := exprWidth(x.Then)
			if err != nil {
				return 0, err
			}
			we, err := exprWidth(x.Else)
			if err != nil {
				return 0, err
			}
			if we > wt {
				wt = we
			}
			return wt, nil
		case *Tuple:
			if len(x.Elems) == 0 {
				return 0, fmt.Errorf("policy: empty tuple")
			}
			w := 0
			for _, el := range x.Elems {
				ew, err := exprWidth(el)
				if err != nil {
					return 0, err
				}
				w += ew
			}
			return w, nil
		}
		return 0, fmt.Errorf("policy: unknown expression node %T", e)
	}

	walkCond = func(c Cond) error {
		switch x := c.(type) {
		case *Match:
			key := x.R.String()
			id, ok := byStr[key]
			if !ok {
				id = len(p.Regexes)
				byStr[key] = id
				p.Regexes = append(p.Regexes, x.R)
			}
			x.ID = id
			return nil
		case *Cmp:
			if err := walkExprScalar(x.L); err != nil {
				return err
			}
			return walkExprScalar(x.R)
		case *Not:
			return walkCond(x.C)
		case *And:
			if err := walkCond(x.L); err != nil {
				return err
			}
			return walkCond(x.R)
		case *Or:
			if err := walkCond(x.L); err != nil {
				return err
			}
			return walkCond(x.R)
		}
		return fmt.Errorf("policy: unknown condition node %T", c)
	}

	w, err := exprWidth(p.Body)
	if err != nil {
		return err
	}
	p.Width = w
	p.Attrs = p.Attrs[:0]
	for m := Metric(0); m < numMetrics; m++ {
		if attrs[m] {
			p.Attrs = append(p.Attrs, m)
		}
	}
	return nil
}

// New builds a policy from an already-constructed AST (used by the
// catalog and tests), running resolution and shape checks.
func New(body Expr) (*Policy, error) {
	p := &Policy{Body: body}
	if err := p.resolve(); err != nil {
		return nil, err
	}
	p.Src = p.String()
	return p, nil
}

// MustNew is New for known-good ASTs; it panics on error.
func MustNew(body Expr) *Policy {
	p, err := New(body)
	if err != nil {
		panic(err)
	}
	return p
}
