package policy

import (
	"fmt"
	"strings"
)

// ParseOptions configure parsing.
type ParseOptions struct {
	// Symbols, when non-empty, is the set of valid switch names (the
	// regex alphabet, normally the topology's switch names). Unknown
	// identifiers in regex position are then rejected — unless they can
	// be split into a concatenation of known names, supporting the
	// paper's compact notation ".*XY.*" for the link X→Y.
	Symbols []string
}

// Parse parses policy source such as
//
//	minimize(if A .* then path.util else path.lat)
//
// following the grammar of Figure 2.
func Parse(src string, opts ...ParseOptions) (*Policy, error) {
	var opt ParseOptions
	if len(opts) > 0 {
		opt = opts[0]
	}
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	pr := &parser{toks: toks, src: src}
	if len(opt.Symbols) > 0 {
		pr.symbols = make(map[string]bool, len(opt.Symbols))
		for _, s := range opt.Symbols {
			pr.symbols[s] = true
		}
	}
	body, err := pr.parsePolicy()
	if err != nil {
		return nil, err
	}
	p := &Policy{Body: body, Src: strings.TrimSpace(src)}
	if err := p.resolve(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustParse is Parse that panics on error, for tests and the catalog.
func MustParse(src string, opts ...ParseOptions) *Policy {
	p, err := Parse(src, opts...)
	if err != nil {
		panic(err)
	}
	return p
}

type parser struct {
	toks    []token
	pos     int
	src     string
	symbols map[string]bool // nil means any identifier is a symbol
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) expect(k tokKind) (token, error) {
	t := p.cur()
	if t.kind != k {
		return t, p.errorf("expected %s, found %s", k, describe(t))
	}
	p.pos++
	return t, nil
}

func describe(t token) string {
	if t.text != "" {
		return fmt.Sprintf("%s %q", t.kind, t.text)
	}
	return t.kind.String()
}

func (p *parser) errorf(format string, args ...interface{}) error {
	return fmt.Errorf("policy: offset %d: %s", p.cur().pos, fmt.Sprintf(format, args...))
}

// parsePolicy := "minimize" "(" expr ")" EOF
func (p *parser) parsePolicy() (Expr, error) {
	if _, err := p.expect(tokMinimize); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokEOF); err != nil {
		return nil, err
	}
	return e, nil
}

// parseExpr := mulExpr (('+'|'-') mulExpr)*
func (p *parser) parseExpr() (Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		switch p.cur().kind {
		case tokPlus:
			p.next()
			r, err := p.parseMul()
			if err != nil {
				return nil, err
			}
			l = &Bin{Op: Add, L: l, R: r}
		case tokMinus:
			p.next()
			r, err := p.parseMul()
			if err != nil {
				return nil, err
			}
			l = &Bin{Op: Sub, L: l, R: r}
		default:
			return l, nil
		}
	}
}

// parseMul := primary ('*' primary)*
func (p *parser) parseMul() (Expr, error) {
	l, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tokStar {
		p.next()
		r, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		l = &Bin{Op: Mul, L: l, R: r}
	}
	return l, nil
}

// parsePrimary := NUMBER | 'inf' | 'path' '.' attr
//
//	| '(' expr (',' expr)* ')' | 'if' cond 'then' expr 'else' expr
//	| '-' primary
func (p *parser) parsePrimary() (Expr, error) {
	switch t := p.cur(); t.kind {
	case tokNumber:
		p.next()
		return &Const{X: t.num}, nil
	case tokMinus:
		p.next()
		inner, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		return &Bin{Op: Sub, L: &Const{X: 0}, R: inner}, nil
	case tokInf:
		p.next()
		return &Inf{}, nil
	case tokPath:
		p.next()
		if _, err := p.expect(tokDot); err != nil {
			return nil, err
		}
		id, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		m, ok := MetricByName(id.text)
		if !ok {
			return nil, fmt.Errorf("policy: offset %d: unknown attribute path.%s (want util, lat, or len)", id.pos, id.text)
		}
		return &Attr{M: m}, nil
	case tokLParen:
		p.next()
		first, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if p.cur().kind == tokComma {
			elems := []Expr{first}
			for p.cur().kind == tokComma {
				p.next()
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				elems = append(elems, e)
			}
			if _, err := p.expect(tokRParen); err != nil {
				return nil, err
			}
			return &Tuple{Elems: elems}, nil
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return first, nil
	case tokIf:
		p.next()
		c, err := p.parseCond()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokThen); err != nil {
			return nil, err
		}
		thenE, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokElse); err != nil {
			return nil, err
		}
		elseE, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &If{Cond: c, Then: thenE, Else: elseE}, nil
	default:
		return nil, p.errorf("expected an expression, found %s", describe(t))
	}
}

// parseCond := andCond ('or' andCond)*
func (p *parser) parseCond() (Cond, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tokOr {
		p.next()
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &Or{L: l, R: r}
	}
	return l, nil
}

// parseAnd := notCond ('and' notCond)*
func (p *parser) parseAnd() (Cond, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tokAnd {
		p.next()
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &And{L: l, R: r}
	}
	return l, nil
}

// parseNot := 'not' parseNot | condAtom
func (p *parser) parseNot() (Cond, error) {
	if p.cur().kind == tokNot {
		p.next()
		c, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &Not{C: c}, nil
	}
	return p.parseCondAtom()
}

// parseCondAtom disambiguates between metric comparisons, regex
// matches, and parenthesized conditions by ordered backtracking:
//
//  1. expr cmpOp expr (e.g. "path.util < .8")
//  2. a regular path expression (e.g. "A .* B", "(F1+F2)", ".*XY.*")
//  3. '(' cond ')'
//
// The orders matter: "path.util < .8" must not be parsed as a regex
// (it cannot be: 'path' is a keyword), and "(A + B) .*" must be tried
// as a regex before "(cond)" so the trailing concatenation is kept.
func (p *parser) parseCondAtom() (Cond, error) {
	// Attempt 1: comparison.
	mark := p.pos
	if l, err := p.parseExpr(); err == nil {
		var op CmpOp
		ok := true
		switch p.cur().kind {
		case tokLT:
			op = LT
		case tokLE:
			op = LE
		case tokGT:
			op = GT
		case tokGE:
			op = GE
		case tokEQ:
			op = EQ
		case tokNE:
			op = NE
		default:
			ok = false
		}
		if ok {
			p.next()
			r, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			return &Cmp{Op: op, L: l, R: r}, nil
		}
	}
	p.pos = mark

	// Attempt 2: regular path expression.
	if r, err := p.parseRegex(); err == nil {
		return &Match{R: r, ID: -1}, nil
	}
	p.pos = mark

	// Attempt 3: parenthesized condition.
	if p.cur().kind == tokLParen {
		p.next()
		c, err := p.parseCond()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return c, nil
	}
	return nil, p.errorf("expected a condition, found %s", describe(p.cur()))
}

// Regex grammar (the paper's "regular paths"):
//
//	regex := cat ('+' cat)*
//	cat   := rep rep*
//	rep   := atom '*'*
//	atom  := IDENT | '.' | '(' regex ')'
func (p *parser) parseRegex() (Regex, error) {
	l, err := p.parseRegexCat()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tokPlus {
		p.next()
		r, err := p.parseRegexCat()
		if err != nil {
			return nil, err
		}
		l = &RAlt{L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseRegexCat() (Regex, error) {
	l, err := p.parseRegexRep()
	if err != nil {
		return nil, err
	}
	for p.regexAtomAhead() {
		r, err := p.parseRegexRep()
		if err != nil {
			return nil, err
		}
		l = &RCat{L: l, R: r}
	}
	return l, nil
}

// regexAtomAhead reports whether the next token could begin a regex
// atom (enabling concatenation by juxtaposition).
func (p *parser) regexAtomAhead() bool {
	switch p.cur().kind {
	case tokIdent, tokDot, tokLParen:
		return true
	}
	return false
}

func (p *parser) parseRegexRep() (Regex, error) {
	a, err := p.parseRegexAtom()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tokStar {
		p.next()
		a = &RStar{X: a}
	}
	return a, nil
}

func (p *parser) parseRegexAtom() (Regex, error) {
	switch t := p.cur(); t.kind {
	case tokIdent:
		p.next()
		return p.symbolRegex(t)
	case tokDot:
		p.next()
		return &RDot{}, nil
	case tokLParen:
		p.next()
		r, err := p.parseRegex()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return r, nil
	default:
		return nil, p.errorf("expected a regex atom, found %s", describe(t))
	}
}

// symbolRegex turns an identifier token into a symbol, splitting run-on
// names like "XY" into the concatenation X Y when an alphabet is known
// (supporting the paper's ".*XY.*" link notation).
func (p *parser) symbolRegex(t token) (Regex, error) {
	if p.symbols == nil || p.symbols[t.text] {
		return &RSym{Name: t.text}, nil
	}
	parts, ok := splitSymbols(t.text, p.symbols)
	if !ok {
		return nil, fmt.Errorf("policy: offset %d: %q is not a switch name (nor a concatenation of switch names)", t.pos, t.text)
	}
	var r Regex = &RSym{Name: parts[0]}
	for _, s := range parts[1:] {
		r = &RCat{L: r, R: &RSym{Name: s}}
	}
	return r, nil
}

// splitSymbols greedily decomposes s into known symbols, with
// backtracking so e.g. alphabet {A, AB, B} can split "AAB" as A AB.
func splitSymbols(s string, symbols map[string]bool) ([]string, bool) {
	if s == "" {
		return nil, false
	}
	// Try longer prefixes first for the common single-letter case this
	// degenerates to one char at a time.
	for n := len(s); n >= 1; n-- {
		prefix := s[:n]
		if !symbols[prefix] {
			continue
		}
		if n == len(s) {
			return []string{prefix}, true
		}
		rest, ok := splitSymbols(s[n:], symbols)
		if ok {
			return append([]string{prefix}, rest...), true
		}
	}
	return nil, false
}
