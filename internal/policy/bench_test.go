package policy

import "testing"

func BenchmarkParseSimple(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Parse("minimize(path.util)"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseComplex(b *testing.B) {
	src := "minimize(if A .* B .* D then (0, path.len, path.util) else if A .* C .* D then (1, path.len, path.util) else inf)"
	for i := 0; i < b.N; i++ {
		if _, err := Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvalRank(b *testing.B) {
	p := MustParse("minimize(if path.util < .8 then (1, 0, path.util) else (2, path.len, path.util))")
	env := &MapEnv{Attrs: map[Metric]float64{Util: 0.5, Len: 3}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.Eval(env)
	}
}

func BenchmarkRankCmp(b *testing.B) {
	x := Finite(1, 3, 0.5)
	y := Finite(1, 3, 0.6)
	for i := 0; i < b.N; i++ {
		_ = x.Cmp(y)
	}
}

func BenchmarkMatchPath(b *testing.B) {
	p := MustParse("minimize(if .* W .* then 0 else 1)")
	path := []string{"A", "B", "W", "C", "D"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = MatchPath(p.Regexes[0], path)
	}
}
