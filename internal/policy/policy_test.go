package policy

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseCatalogPolicies(t *testing.T) {
	for name, p := range Catalog([]string{"A", "B", "F1", "F2"}) {
		if p == nil {
			t.Fatalf("%s: nil policy", name)
		}
		// Round trip: printing and reparsing preserves semantics on a
		// couple of sample paths.
		q, err := Parse(p.String())
		if err != nil {
			t.Fatalf("%s: reparse of %q: %v", name, p.String(), err)
		}
		for _, path := range [][]string{{"A", "B"}, {"A", "F1", "B"}, {"B", "A"}} {
			info := PathInfo{Nodes: path, Util: 0.5, Lat: 0.001}
			if r1, r2 := p.RankPath(info), q.RankPath(info); !r1.Equal(r2) {
				t.Errorf("%s: rank changed after reparse on %v: %v vs %v", name, path, r1, r2)
			}
		}
	}
}

func TestParsePaperExamples(t *testing.T) {
	// Examples from §2 of the paper, lightly adapted to ASCII.
	srcs := []string{
		"minimize(if A .* then path.util else path.lat)",
		"minimize(if .* W .* then 0 else inf)",
		"minimize(if A B D then 0 else if A C D then 1 else inf)",
		"minimize(if A .* B .* D then (0, path.len, path.util) else if A .* C .* D then (1, path.len, path.util) else inf)",
		"minimize(if path.util < .8 then (1, 0, path.util) else (2, path.len, path.util))",
		"minimize((if .* A B .* then 10 else 0) + (if .* C D .* then 20 else 0) + path.len)",
		"minimize(if S .* D then path.util else inf)",
		"minimize(if .* B A .* then inf else path.util)",
		"minimize(if S C E F D + S A E B D then path.util else inf)",
	}
	for _, src := range srcs {
		if _, err := Parse(src); err != nil {
			t.Errorf("Parse(%q): %v", src, err)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"path.util",                           // missing minimize
		"minimize()",                          // empty
		"minimize(path.util",                  // unbalanced
		"minimize(path.frob)",                 // unknown attr
		"minimize(if A then 1)",               // missing else
		"minimize(1 = 2)",                     // single equals
		"minimize((path.util, path.len) + 1)", // tuple in scalar position
		"minimize(if (path.util, 1) < 2 then 0 else 1)", // tuple in comparison
		"minimize(1) extra",                             // trailing tokens
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestSymbolSplitting(t *testing.T) {
	opts := ParseOptions{Symbols: []string{"X", "Y", "A", "B"}}
	p, err := Parse("minimize(if .*XY.* then path.util else inf)", opts)
	if err != nil {
		t.Fatal(err)
	}
	// The regex should treat XY as concatenation X Y.
	if got := p.Regexes[0].String(); !strings.Contains(got, "X Y") {
		t.Fatalf("split failed: %s", got)
	}
	if !MatchPath(p.Regexes[0], []string{"A", "X", "Y", "B"}) {
		t.Fatal("should match path through link X-Y")
	}
	if MatchPath(p.Regexes[0], []string{"A", "Y", "X", "B"}) {
		t.Fatal("should not match reversed link")
	}
	// Unknown identifier that cannot be split is an error.
	if _, err := Parse("minimize(if .*QZ.* then 0 else 1)", opts); err == nil {
		t.Fatal("unknown symbol should fail with alphabet")
	}
	// Without an alphabet any identifier is accepted whole.
	p2, err := Parse("minimize(if .*XY.* then 0 else 1)")
	if err != nil {
		t.Fatal(err)
	}
	if p2.Regexes[0].String() != ". * X Y . *" && !MatchPath(p2.Regexes[0], []string{"XY"}) {
		t.Fatal("without alphabet, XY should be a single symbol")
	}
}

func TestRankCmp(t *testing.T) {
	cases := []struct {
		a, b Rank
		want int
	}{
		{Finite(1), Finite(2), -1},
		{Finite(2), Finite(1), 1},
		{Finite(1), Finite(1), 0},
		{Finite(1, 5), Finite(2, 0), -1},
		{Finite(1, 5), Finite(1, 6), -1},
		{Finite(3), Finite(3, 0), 0},  // zero padding
		{Finite(3), Finite(3, 1), -1}, // shorter == padded smaller
		{Finite(3, 1), Finite(3), 1},
		{Infinite(), Infinite(), 0},
		{Finite(1e18), Infinite(), -1},
		{Infinite(), Finite(-1e18), 1},
	}
	for _, c := range cases {
		if got := c.a.Cmp(c.b); got != c.want {
			t.Errorf("%v.Cmp(%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestRankCmpTotalOrderProperties(t *testing.T) {
	gen := func(r *rand.Rand) Rank {
		if r.Intn(8) == 0 {
			return Infinite()
		}
		n := r.Intn(4)
		v := make([]float64, n)
		for i := range v {
			v[i] = float64(r.Intn(5))
		}
		return Rank{V: v}
	}
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		a, b, c := gen(r), gen(r), gen(r)
		// Antisymmetry.
		if a.Cmp(b) != -b.Cmp(a) {
			t.Fatalf("antisymmetry failed: %v %v", a, b)
		}
		// Transitivity of <=.
		if a.Cmp(b) <= 0 && b.Cmp(c) <= 0 && a.Cmp(c) > 0 {
			t.Fatalf("transitivity failed: %v %v %v", a, b, c)
		}
		// Reflexivity.
		if a.Cmp(a) != 0 {
			t.Fatalf("reflexivity failed: %v", a)
		}
	}
}

func TestEvalPolicies(t *testing.T) {
	util, lat := 0.4, 0.002
	path := PathInfo{Nodes: []string{"A", "B", "D"}, Util: util, Lat: lat} // 2 hops

	cases := []struct {
		src  string
		want Rank
	}{
		{"minimize(path.len)", Finite(2)},
		{"minimize(path.util)", Finite(util)},
		{"minimize(path.lat)", Finite(lat)},
		{"minimize((path.util, path.len))", Finite(util, 2)},
		{"minimize(if A B D then 0 else inf)", Finite(0)},
		{"minimize(if A C D then 0 else inf)", Infinite()},
		{"minimize(if .* B .* then path.util else inf)", Finite(util)},
		{"minimize(if path.util < .8 then (1, 0, path.util) else (2, path.len, path.util))", Finite(1, 0, util)},
		{"minimize((if .* A B .* then 10 else 0) + path.len)", Finite(12)},
		{"minimize((if .* B A .* then 10 else 0) + path.len)", Finite(2)},
		{"minimize(2 * path.len + 1)", Finite(5)},
		{"minimize(if not (A B D) then 0 else 1)", Finite(1)},
		{"minimize(if A B D and path.util < .5 then 0 else 1)", Finite(0)},
		{"minimize(if A B D or A C D then 0 else 1)", Finite(0)},
		{"minimize(if path.util >= .4 then 0 else 1)", Finite(0)},
		{"minimize(if path.len == 2 then 7 else 8)", Finite(7)},
		{"minimize(if path.len != 2 then 7 else 8)", Finite(8)},
		{"minimize(-path.len)", Finite(-2)},
	}
	for _, c := range cases {
		p, err := Parse(c.src)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.src, err)
			continue
		}
		if got := p.RankPath(path); !got.Equal(c.want) {
			t.Errorf("%q on ABD = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestEvalHighUtilSwitchesBranch(t *testing.T) {
	p := CongestionAware()
	hot := PathInfo{Nodes: []string{"A", "B", "C", "D"}, Util: 0.9}
	if got := p.RankPath(hot); !got.Equal(Finite(2, 3, 0.9)) {
		t.Fatalf("hot path rank = %v, want (2,3,0.9)", got)
	}
}

func TestTupleWithInfComponent(t *testing.T) {
	p := MustParse("minimize((if A B then 0 else inf, path.len))")
	bad := PathInfo{Nodes: []string{"B", "A"}}
	if got := p.RankPath(bad); !got.IsInf() {
		t.Fatalf("tuple containing inf should be inf, got %v", got)
	}
	good := PathInfo{Nodes: []string{"A", "B"}}
	if got := p.RankPath(good); !got.Equal(Finite(0, 1)) {
		t.Fatalf("got %v, want (0,1)", got)
	}
}

func TestMatchPath(t *testing.T) {
	cases := []struct {
		regex string
		path  []string
		want  bool
	}{
		{"A B D", []string{"A", "B", "D"}, true},
		{"A B D", []string{"A", "B"}, false},
		{"A .*", []string{"A"}, true},
		{"A .*", []string{"A", "X", "Y"}, true},
		{"A .*", []string{"B", "A"}, false},
		{".* W .*", []string{"A", "W", "B"}, true},
		{".* W .*", []string{"W"}, true},
		{".* W .*", []string{"A", "B"}, false},
		{"(A + B) D", []string{"A", "D"}, true},
		{"(A + B) D", []string{"B", "D"}, true},
		{"(A + B) D", []string{"C", "D"}, false},
		{"A (B C)* D", []string{"A", "D"}, true},
		{"A (B C)* D", []string{"A", "B", "C", "D"}, true},
		{"A (B C)* D", []string{"A", "B", "C", "B", "C", "D"}, true},
		{"A (B C)* D", []string{"A", "B", "D"}, false},
		{".", []string{"X"}, true},
		{".", []string{"X", "Y"}, false},
		{"A**", []string{"A", "A", "A"}, true},
		{"A**", nil, true},
	}
	for _, c := range cases {
		p, err := Parse("minimize(if " + c.regex + " then 0 else 1)")
		if err != nil {
			t.Errorf("regex %q: %v", c.regex, err)
			continue
		}
		if got := MatchPath(p.Regexes[0], c.path); got != c.want {
			t.Errorf("MatchPath(%q, %v) = %v, want %v", c.regex, c.path, got, c.want)
		}
	}
}

func TestReverseProperty(t *testing.T) {
	// MatchPath(Reverse(r), reverse(path)) == MatchPath(r, path).
	regexes := []string{
		"A B D", "A .*", ".* W .*", "(A + B) D", "A (B C)* D", ". . .",
		".* A B .*", "A* B*",
	}
	syms := []string{"A", "B", "C", "D", "W"}
	r := rand.New(rand.NewSource(2))
	for _, src := range regexes {
		p := MustParse("minimize(if " + src + " then 0 else 1)")
		re := p.Regexes[0]
		rev := Reverse(re)
		for i := 0; i < 300; i++ {
			n := r.Intn(5)
			path := make([]string, n)
			for j := range path {
				path[j] = syms[r.Intn(len(syms))]
			}
			rpath := make([]string, n)
			for j := range path {
				rpath[n-1-j] = path[j]
			}
			if MatchPath(re, path) != MatchPath(rev, rpath) {
				t.Fatalf("reverse mismatch: regex %q path %v", src, path)
			}
		}
	}
}

func TestReverseInvolution(t *testing.T) {
	f := func(seed int64) bool {
		r := randomRegex(rand.New(rand.NewSource(seed)), 4)
		return Reverse(Reverse(r)).String() == r.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func randomRegex(r *rand.Rand, depth int) Regex {
	if depth == 0 || r.Intn(3) == 0 {
		if r.Intn(4) == 0 {
			return &RDot{}
		}
		return &RSym{Name: string(rune('A' + r.Intn(4)))}
	}
	switch r.Intn(3) {
	case 0:
		return &RCat{L: randomRegex(r, depth-1), R: randomRegex(r, depth-1)}
	case 1:
		return &RAlt{L: randomRegex(r, depth-1), R: randomRegex(r, depth-1)}
	default:
		return &RStar{X: randomRegex(r, depth-1)}
	}
}

func TestPolicyMetadata(t *testing.T) {
	p := MustParse("minimize(if A .* then path.util else path.lat)")
	if len(p.Regexes) != 1 {
		t.Fatalf("regexes = %d, want 1", len(p.Regexes))
	}
	if len(p.Attrs) != 2 || p.Attrs[0] != Util || p.Attrs[1] != Lat {
		t.Fatalf("attrs = %v, want [util lat]", p.Attrs)
	}
	if !p.UsesAttr(Util) || p.UsesAttr(Len) {
		t.Fatal("UsesAttr wrong")
	}
	if p.Width != 1 {
		t.Fatalf("width = %d, want 1", p.Width)
	}
	ca := CongestionAware()
	if ca.Width != 3 {
		t.Fatalf("CA width = %d, want 3", ca.Width)
	}
	// Duplicate regexes are interned once.
	p2 := MustParse("minimize(if A .* then 1 else if A .* then 2 else 3)")
	if len(p2.Regexes) != 1 {
		t.Fatalf("duplicate regex not interned: %d", len(p2.Regexes))
	}
}

func TestMetricCombine(t *testing.T) {
	if got := Util.Combine(0.3, 0.5); got != 0.5 {
		t.Fatalf("util combine = %v, want 0.5 (max)", got)
	}
	if got := Util.Combine(0.5, 0.3); got != 0.5 {
		t.Fatalf("util combine = %v, want 0.5 (max)", got)
	}
	if got := Lat.Combine(1.5, 2.5); got != 4.0 {
		t.Fatalf("lat combine = %v, want 4.0 (sum)", got)
	}
	if got := Len.Combine(3, 1); got != 4 {
		t.Fatalf("len combine = %v, want 4 (sum)", got)
	}
}

func TestFailoverPolicy(t *testing.T) {
	p := Failover([]string{"A", "B", "D"}, []string{"A", "C", "D"})
	if got := p.RankPath(PathInfo{Nodes: []string{"A", "B", "D"}}); !got.Equal(Finite(0)) {
		t.Fatalf("primary = %v, want 0", got)
	}
	if got := p.RankPath(PathInfo{Nodes: []string{"A", "C", "D"}}); !got.Equal(Finite(1)) {
		t.Fatalf("backup = %v, want 1", got)
	}
	if got := p.RankPath(PathInfo{Nodes: []string{"A", "D"}}); !got.IsInf() {
		t.Fatalf("other = %v, want inf", got)
	}
}

func TestLexerNumbers(t *testing.T) {
	toks, err := lex("0.5 .8 42 1e9 2.5e-3")
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.5, 0.8, 42, 1e9, 2.5e-3}
	var got []float64
	for _, tk := range toks {
		if tk.kind == tokNumber {
			got = append(got, tk.num)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("numbers = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("number %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestUnicodeInfinity(t *testing.T) {
	p, err := Parse("minimize(if A .* then 0 else ∞)")
	if err != nil {
		t.Fatal(err)
	}
	if got := p.RankPath(PathInfo{Nodes: []string{"B"}}); !got.IsInf() {
		t.Fatalf("got %v, want inf", got)
	}
}
