package policy

import (
	"fmt"
	"math"
	"strings"
)

// Rank is the value a policy assigns to a path: either the infinite
// rank or a lexicographically ordered vector of numbers. minimize()
// semantics: smaller ranks are better, and Inf is the unique worst
// rank (no path is preferred to it, and traffic is dropped rather than
// sent along an Inf path).
type Rank struct {
	Inf bool
	V   []float64
}

// Finite builds a finite rank from values.
func Finite(vals ...float64) Rank { return Rank{V: vals} }

// Infinite returns the infinite rank.
func Infinite() Rank { return Rank{Inf: true} }

// IsInf reports whether r is the infinite rank.
func (r Rank) IsInf() bool { return r.Inf }

// Cmp compares two ranks: -1 if r is better (smaller), +1 if worse,
// 0 if equal. Vectors of different lengths are compared by padding the
// shorter with zeros, so Finite(3) == Finite(3,0) < Finite(3,1).
func (r Rank) Cmp(o Rank) int {
	switch {
	case r.Inf && o.Inf:
		return 0
	case r.Inf:
		return 1
	case o.Inf:
		return -1
	}
	n := len(r.V)
	if len(o.V) > n {
		n = len(o.V)
	}
	for i := 0; i < n; i++ {
		var a, b float64
		if i < len(r.V) {
			a = r.V[i]
		}
		if i < len(o.V) {
			b = o.V[i]
		}
		if a < b {
			return -1
		}
		if a > b {
			return 1
		}
	}
	return 0
}

// Better reports whether r is strictly preferred to o.
func (r Rank) Better(o Rank) bool { return r.Cmp(o) < 0 }

// Equal reports rank equality.
func (r Rank) Equal(o Rank) bool { return r.Cmp(o) == 0 }

// String renders the rank.
func (r Rank) String() string {
	if r.Inf {
		return "inf"
	}
	if len(r.V) == 1 {
		return trimFloat(r.V[0])
	}
	parts := make([]string, len(r.V))
	for i, v := range r.V {
		parts[i] = trimFloat(v)
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Env supplies the dynamic inputs needed to evaluate a policy
// expression for one candidate path: the value of each path attribute
// and the outcome of each (resolved) regex match.
type Env interface {
	Attr(Metric) float64
	Match(regexID int) bool
}

// MapEnv is a simple Env backed by explicit values; the zero value has
// all attributes 0 and all matches false.
type MapEnv struct {
	Attrs   map[Metric]float64
	Matches map[int]bool
}

// Attr implements Env.
func (e *MapEnv) Attr(m Metric) float64 { return e.Attrs[m] }

// Match implements Env.
func (e *MapEnv) Match(id int) bool { return e.Matches[id] }

// Eval computes the rank of a path under the policy given its
// environment. It is the reference semantics: the compiled protocol
// must agree with it (tested by comparing against brute-force path
// enumeration).
func (p *Policy) Eval(env Env) Rank {
	return evalExpr(p.Body, env)
}

func evalExpr(e Expr, env Env) Rank {
	switch x := e.(type) {
	case *Const:
		return Finite(x.X)
	case *Inf:
		return Infinite()
	case *Attr:
		return Finite(env.Attr(x.M))
	case *Bin:
		l := evalExpr(x.L, env)
		r := evalExpr(x.R, env)
		if l.Inf || r.Inf {
			// Arithmetic with the infinite rank is absorbing, except
			// that inf - inf has no sensible value; treat it as inf.
			return Infinite()
		}
		a, b := l.V[0], r.V[0]
		switch x.Op {
		case Add:
			return Finite(a + b)
		case Sub:
			return Finite(a - b)
		case Mul:
			return Finite(a * b)
		}
		panic("policy: unknown binop")
	case *If:
		if evalCond(x.Cond, env) {
			return evalExpr(x.Then, env)
		}
		return evalExpr(x.Else, env)
	case *Tuple:
		var out []float64
		for _, el := range x.Elems {
			r := evalExpr(el, env)
			if r.Inf {
				// Any infinite component makes the whole tuple worst:
				// (1, inf) cannot beat any finite rank.
				return Infinite()
			}
			out = append(out, r.V...)
		}
		return Rank{V: out}
	}
	panic(fmt.Sprintf("policy: unknown expr %T", e))
}

// EvalAppend computes the same Rank as Eval without per-node heap
// allocation: scalar intermediates stay on the stack and tuple
// components append to buf (typically a reused scratch slice, passed
// with length 0). The returned Rank's V aliases buf's storage, so it
// is only valid until the buffer is reused; callers that retain the
// rank must copy V.
func (p *Policy) EvalAppend(env Env, buf []float64) Rank {
	out, inf := appendExpr(p.Body, env, buf)
	if inf {
		return Infinite()
	}
	return Rank{V: out}
}

// appendExpr appends e's rank components to buf, reporting inf-ness.
// It mirrors evalExpr exactly, including the inf short-circuits.
func appendExpr(e Expr, env Env, buf []float64) ([]float64, bool) {
	switch x := e.(type) {
	case *Const:
		return append(buf, x.X), false
	case *Inf:
		return buf, true
	case *Attr:
		return append(buf, env.Attr(x.M)), false
	case *Bin:
		a, ia := evalFirst(x.L, env)
		b, ib := evalFirst(x.R, env)
		if ia || ib {
			return buf, true
		}
		switch x.Op {
		case Add:
			return append(buf, a+b), false
		case Sub:
			return append(buf, a-b), false
		case Mul:
			return append(buf, a*b), false
		}
		panic("policy: unknown binop")
	case *If:
		if evalCond(x.Cond, env) {
			return appendExpr(x.Then, env, buf)
		}
		return appendExpr(x.Else, env, buf)
	case *Tuple:
		var inf bool
		for _, el := range x.Elems {
			buf, inf = appendExpr(el, env, buf)
			if inf {
				return buf, true
			}
		}
		return buf, false
	}
	panic(fmt.Sprintf("policy: unknown expr %T", e))
}

// evalFirst returns the first rank component of e and whether e is
// infinite, matching evalExpr's scalar contexts (binop and comparison
// operands read V[0]; a tuple is infinite if any component is).
func evalFirst(e Expr, env Env) (float64, bool) {
	switch x := e.(type) {
	case *Const:
		return x.X, false
	case *Inf:
		return 0, true
	case *Attr:
		return env.Attr(x.M), false
	case *Bin:
		a, ia := evalFirst(x.L, env)
		b, ib := evalFirst(x.R, env)
		if ia || ib {
			return 0, true
		}
		switch x.Op {
		case Add:
			return a + b, false
		case Sub:
			return a - b, false
		case Mul:
			return a * b, false
		}
		panic("policy: unknown binop")
	case *If:
		if evalCond(x.Cond, env) {
			return evalFirst(x.Then, env)
		}
		return evalFirst(x.Else, env)
	case *Tuple:
		var first float64
		for i, el := range x.Elems {
			v, inf := evalFirst(el, env)
			if inf {
				return 0, true
			}
			if i == 0 {
				first = v
			}
		}
		return first, false
	}
	panic(fmt.Sprintf("policy: unknown expr %T", e))
}

func evalCond(c Cond, env Env) bool {
	switch x := c.(type) {
	case *Match:
		return env.Match(x.ID)
	case *Cmp:
		lv, rv := math.Inf(1), math.Inf(1)
		if v, inf := evalFirst(x.L, env); !inf {
			lv = v
		}
		if v, inf := evalFirst(x.R, env); !inf {
			rv = v
		}
		return x.Op.Eval(lv, rv)
	case *Not:
		return !evalCond(x.C, env)
	case *And:
		return evalCond(x.L, env) && evalCond(x.R, env)
	case *Or:
		return evalCond(x.L, env) || evalCond(x.R, env)
	}
	panic(fmt.Sprintf("policy: unknown cond %T", c))
}

// PathInfo carries the ground-truth description of one concrete path in
// traffic direction (source first, destination last) for the reference
// evaluator.
type PathInfo struct {
	Nodes []string // switch names, source..destination
	Util  float64  // bottleneck (max) link utilization
	Lat   float64  // total latency, seconds
}

// pathEnv adapts PathInfo to Env using a backtracking regex matcher.
type pathEnv struct {
	p    *Policy
	info PathInfo
}

func (e pathEnv) Attr(m Metric) float64 {
	switch m {
	case Util:
		return e.info.Util
	case Lat:
		return e.info.Lat
	case Len:
		return float64(len(e.info.Nodes) - 1)
	}
	return 0
}

func (e pathEnv) Match(id int) bool {
	return MatchPath(e.p.Regexes[id], e.info.Nodes)
}

// RankPath evaluates the policy on a concrete path: the reference
// ("spec") semantics against which the compiled protocol is validated.
func (p *Policy) RankPath(info PathInfo) Rank {
	if len(info.Nodes) == 0 {
		return Infinite()
	}
	return p.Eval(pathEnv{p: p, info: info})
}

// MatchPath reports whether the switch-name sequence matches the
// regular path expression, using a simple NFA simulation (suitable for
// the short paths seen in tests; the compiler uses proper DFAs).
func MatchPath(r Regex, nodes []string) bool {
	states := map[int]bool{0: true}
	nfa := buildThompson(r)
	states = nfa.closure(states)
	for _, sym := range nodes {
		next := make(map[int]bool)
		for s := range states {
			for _, t := range nfa.states[s].trans {
				if t.matches(sym) {
					next[t.to] = true
				}
			}
		}
		states = nfa.closure(next)
		if len(states) == 0 {
			return false
		}
	}
	return states[nfa.accept]
}

// Minimal Thompson NFA used only by the reference matcher.

type nfaTrans struct {
	sym string // "" means dot (any symbol)
	dot bool
	to  int
}

func (t nfaTrans) matches(s string) bool { return t.dot || t.sym == s }

type nfaState struct {
	trans []nfaTrans
	eps   []int
}

type thompsonNFA struct {
	states []nfaState
	accept int
}

func (n *thompsonNFA) add() int {
	n.states = append(n.states, nfaState{})
	return len(n.states) - 1
}

func (n *thompsonNFA) closure(set map[int]bool) map[int]bool {
	stack := make([]int, 0, len(set))
	for s := range set {
		stack = append(stack, s)
	}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, t := range n.states[s].eps {
			if !set[t] {
				set[t] = true
				stack = append(stack, t)
			}
		}
	}
	return set
}

func buildThompson(r Regex) *thompsonNFA {
	n := &thompsonNFA{}
	start := n.add()
	accept := n.build(r, start)
	n.accept = accept
	return n
}

// build wires fragment for r starting at state `from`, returning its
// accepting state.
func (n *thompsonNFA) build(r Regex, from int) int {
	switch x := r.(type) {
	case *RSym:
		to := n.add()
		n.states[from].trans = append(n.states[from].trans, nfaTrans{sym: x.Name, to: to})
		return to
	case *RDot:
		to := n.add()
		n.states[from].trans = append(n.states[from].trans, nfaTrans{dot: true, to: to})
		return to
	case *RCat:
		mid := n.build(x.L, from)
		return n.build(x.R, mid)
	case *RAlt:
		l := n.build(x.L, from)
		r2 := n.build(x.R, from)
		to := n.add()
		n.states[l].eps = append(n.states[l].eps, to)
		n.states[r2].eps = append(n.states[r2].eps, to)
		return to
	case *RStar:
		loop := n.add()
		n.states[from].eps = append(n.states[from].eps, loop)
		end := n.build(x.X, loop)
		n.states[end].eps = append(n.states[end].eps, loop)
		return loop
	}
	panic("policy: unknown regex node")
}
