package policy

import (
	"testing"
)

// TestEvalAppendMatchesEval asserts the allocation-free evaluator
// agrees with the reference tree-walker across policy shapes: scalars,
// tuples, arithmetic, conditionals, and inf absorption.
func TestEvalAppendMatchesEval(t *testing.T) {
	srcs := []string{
		"minimize(path.util)",
		"minimize(path.len)",
		"minimize((path.len, path.util))",
		"minimize((path.util, path.len, path.lat))",
		"minimize(path.len + path.util)",
		"minimize(2 * path.util)",
		"minimize(if path.util > 0.5 then (1, path.util) else (0, path.len))",
		"minimize(if path.len > 3 then inf else path.util)",
	}
	envs := []*MapEnv{
		{Attrs: map[Metric]float64{Util: 0.25, Len: 2, Lat: 0.001}},
		{Attrs: map[Metric]float64{Util: 0.9, Len: 5, Lat: 0.01}},
		{Attrs: map[Metric]float64{}},
	}
	for _, src := range srcs {
		p := MustParse(src)
		for i, env := range envs {
			want := p.Eval(env)
			buf := make([]float64, 0, 8)
			got := p.EvalAppend(env, buf)
			if !got.Equal(want) || got.Inf != want.Inf {
				t.Errorf("%s env %d: EvalAppend = %v, Eval = %v", src, i, got, want)
			}
			// A second evaluation reusing the same buffer must not
			// corrupt results (the scratch contract).
			again := p.EvalAppend(env, got.V[:0])
			if !again.Equal(want) {
				t.Errorf("%s env %d: buffer reuse changed result: %v vs %v", src, i, again, want)
			}
		}
	}
}

// TestEvalAppendNoAlloc pins the zero-allocation property the probe
// hot path depends on.
func TestEvalAppendNoAlloc(t *testing.T) {
	p := MustParse("minimize((path.len, path.util))")
	env := &MapEnv{Attrs: map[Metric]float64{Util: 0.4, Len: 3}}
	buf := make([]float64, 0, 8)
	allocs := testing.AllocsPerRun(100, func() {
		r := p.EvalAppend(env, buf[:0])
		buf = r.V[:0]
	})
	if allocs != 0 {
		t.Fatalf("EvalAppend allocates %.1f per run, want 0", allocs)
	}
}
