package policy

import (
	"fmt"
	"strconv"
	"unicode"
)

// tokKind enumerates lexical token kinds.
type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokMinimize
	tokIf
	tokThen
	tokElse
	tokNot
	tokAnd
	tokOr
	tokInf
	tokPath
	tokDot
	tokStar
	tokPlus
	tokMinus
	tokLParen
	tokRParen
	tokComma
	tokLT
	tokLE
	tokGT
	tokGE
	tokEQ
	tokNE
)

func (k tokKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokNumber:
		return "number"
	case tokMinimize:
		return "'minimize'"
	case tokIf:
		return "'if'"
	case tokThen:
		return "'then'"
	case tokElse:
		return "'else'"
	case tokNot:
		return "'not'"
	case tokAnd:
		return "'and'"
	case tokOr:
		return "'or'"
	case tokInf:
		return "'inf'"
	case tokPath:
		return "'path'"
	case tokDot:
		return "'.'"
	case tokStar:
		return "'*'"
	case tokPlus:
		return "'+'"
	case tokMinus:
		return "'-'"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokComma:
		return "','"
	case tokLT:
		return "'<'"
	case tokLE:
		return "'<='"
	case tokGT:
		return "'>'"
	case tokGE:
		return "'>='"
	case tokEQ:
		return "'=='"
	case tokNE:
		return "'!='"
	}
	return "unknown token"
}

type token struct {
	kind tokKind
	text string
	num  float64
	pos  int // byte offset in source, for error messages
}

var keywords = map[string]tokKind{
	"minimize": tokMinimize,
	"if":       tokIf,
	"then":     tokThen,
	"else":     tokElse,
	"not":      tokNot,
	"and":      tokAnd,
	"or":       tokOr,
	"inf":      tokInf,
	"path":     tokPath,
}

// lex tokenizes policy source. The only context-sensitivity is '.'
// followed by a digit, which is lexed as a number (".8"); all other
// dots are tokDot (the regex wildcard and the path.attr separator).
func lex(src string) ([]token, error) {
	var toks []token
	runes := []rune(src)
	i := 0
	n := len(runes)
	for i < n {
		c := runes[i]
		switch {
		case unicode.IsSpace(c):
			i++
		case c == '(':
			toks = append(toks, token{kind: tokLParen, pos: i})
			i++
		case c == ')':
			toks = append(toks, token{kind: tokRParen, pos: i})
			i++
		case c == ',':
			toks = append(toks, token{kind: tokComma, pos: i})
			i++
		case c == '*':
			toks = append(toks, token{kind: tokStar, pos: i})
			i++
		case c == '+':
			toks = append(toks, token{kind: tokPlus, pos: i})
			i++
		case c == '-':
			toks = append(toks, token{kind: tokMinus, pos: i})
			i++
		case c == '∞':
			toks = append(toks, token{kind: tokInf, pos: i})
			i++
		case c == '<':
			if i+1 < n && runes[i+1] == '=' {
				toks = append(toks, token{kind: tokLE, pos: i})
				i += 2
			} else {
				toks = append(toks, token{kind: tokLT, pos: i})
				i++
			}
		case c == '>':
			if i+1 < n && runes[i+1] == '=' {
				toks = append(toks, token{kind: tokGE, pos: i})
				i += 2
			} else {
				toks = append(toks, token{kind: tokGT, pos: i})
				i++
			}
		case c == '=':
			if i+1 < n && runes[i+1] == '=' {
				toks = append(toks, token{kind: tokEQ, pos: i})
				i += 2
			} else {
				return nil, fmt.Errorf("policy: offset %d: single '=' (use '==')", i)
			}
		case c == '!':
			if i+1 < n && runes[i+1] == '=' {
				toks = append(toks, token{kind: tokNE, pos: i})
				i += 2
			} else {
				return nil, fmt.Errorf("policy: offset %d: unexpected '!'", i)
			}
		case c == '.':
			if i+1 < n && unicode.IsDigit(runes[i+1]) {
				start := i
				i++
				for i < n && unicode.IsDigit(runes[i]) {
					i++
				}
				text := string(runes[start:i])
				v, err := strconv.ParseFloat(text, 64)
				if err != nil {
					return nil, fmt.Errorf("policy: offset %d: bad number %q", start, text)
				}
				toks = append(toks, token{kind: tokNumber, text: text, num: v, pos: start})
			} else {
				toks = append(toks, token{kind: tokDot, pos: i})
				i++
			}
		case unicode.IsDigit(c):
			start := i
			for i < n && (unicode.IsDigit(runes[i]) || runes[i] == '.') {
				i++
			}
			// Scientific notation: 1e9, 2.5e-3.
			if i < n && (runes[i] == 'e' || runes[i] == 'E') {
				j := i + 1
				if j < n && (runes[j] == '+' || runes[j] == '-') {
					j++
				}
				if j < n && unicode.IsDigit(runes[j]) {
					i = j
					for i < n && unicode.IsDigit(runes[i]) {
						i++
					}
				}
			}
			text := string(runes[start:i])
			v, err := strconv.ParseFloat(text, 64)
			if err != nil {
				return nil, fmt.Errorf("policy: offset %d: bad number %q", start, text)
			}
			toks = append(toks, token{kind: tokNumber, text: text, num: v, pos: start})
		case unicode.IsLetter(c) || c == '_':
			start := i
			for i < n && (unicode.IsLetter(runes[i]) || unicode.IsDigit(runes[i]) || runes[i] == '_') {
				i++
			}
			text := string(runes[start:i])
			if kw, ok := keywords[text]; ok {
				toks = append(toks, token{kind: kw, text: text, pos: start})
			} else {
				toks = append(toks, token{kind: tokIdent, text: text, pos: start})
			}
		default:
			return nil, fmt.Errorf("policy: offset %d: unexpected character %q", i, string(c))
		}
	}
	toks = append(toks, token{kind: tokEOF, pos: len(src)})
	return toks, nil
}
