package policy

import (
	"fmt"
	"strings"
)

// This file provides the paper's Figure 3 policy catalog (P1-P9) as
// constructors, parameterized by the switch names they reference.

// ShortestPath is P1: classic shortest path routing (RIP).
func ShortestPath() *Policy {
	return MustParse("minimize(path.len)")
}

// MinUtil is P2: minimum utilization, the HULA policy. The paper's
// scalability experiments call this MU.
func MinUtil() *Policy {
	return MustParse("minimize(path.util)")
}

// WidestShortest is P3: rank by (utilization, length) lexicographically.
func WidestShortest() *Policy {
	return MustParse("minimize((path.util, path.len))")
}

// ShortestWidest is P4: rank by (length, utilization) lexicographically.
func ShortestWidest() *Policy {
	return MustParse("minimize((path.len, path.util))")
}

// Waypoint is P5: traffic must pass through one of the given waypoint
// switches; among compliant paths prefer least utilized. The paper's
// scalability experiments call the three-regex variant WP.
func Waypoint(waypoints ...string) *Policy {
	if len(waypoints) == 0 {
		panic("policy: Waypoint needs at least one waypoint")
	}
	alt := strings.Join(waypoints, " + ")
	return MustParse(fmt.Sprintf("minimize(if .* (%s) .* then path.util else inf)", alt))
}

// LinkPreference is P6: only paths traversing link X→Y are allowed,
// preferring least utilized.
func LinkPreference(x, y string) *Policy {
	return MustParse(fmt.Sprintf("minimize(if .* %s %s .* then path.util else inf)", x, y))
}

// WeightedLink is P7: add a penalty of w to paths crossing link X→Y,
// otherwise shortest paths.
func WeightedLink(x, y string, w float64) *Policy {
	return MustParse(fmt.Sprintf("minimize((if .* %s %s .* then %g else 0) + path.len)", x, y, w))
}

// SourceLocal is P8: traffic sourced at X minimizes utilization; all
// other traffic minimizes latency.
func SourceLocal(x string) *Policy {
	return MustParse(fmt.Sprintf("minimize(if %s .* then path.util else path.lat)", x))
}

// CongestionAware is P9: prefer least-utilized paths while the network
// is lightly loaded (< 80%% utilization), otherwise prefer shortest
// paths to save bandwidth globally. Non-isotonic; the compiler
// decomposes it into two probe types (§3 challenge 3). The paper's
// scalability experiments call this CA.
func CongestionAware() *Policy {
	return MustParse("minimize(if path.util < .8 then (1, 0, path.util) else (2, path.len, path.util))")
}

// Failover expresses Propane-style strict path preferences: the first
// path is used when available, then the second, and so on; traffic is
// dropped if none is available. Paths are given as node name sequences.
func Failover(paths ...[]string) *Policy {
	if len(paths) == 0 {
		panic("policy: Failover needs at least one path")
	}
	var b strings.Builder
	b.WriteString("minimize(")
	for i, p := range paths {
		fmt.Fprintf(&b, "if %s then %d else ", strings.Join(p, " "), i)
	}
	b.WriteString("inf")
	for range paths {
		// closing of nested ifs is implicit (no parens needed)
		_ = b
	}
	b.WriteString(")")
	return MustParse(b.String())
}

// Catalog returns every Figure 3 policy instantiated with placeholder
// switch names from the given alphabet (used by tests and the
// benchmark harness). Policies needing specific switches use the first
// few names.
func Catalog(names []string) map[string]*Policy {
	if len(names) < 2 {
		panic("policy: Catalog needs at least two switch names")
	}
	x, y := names[0], names[1]
	wp := []string{x}
	if len(names) >= 4 {
		wp = []string{names[2], names[3]}
	}
	return map[string]*Policy{
		"P1-shortest-path":    ShortestPath(),
		"P2-min-util":         MinUtil(),
		"P3-widest-shortest":  WidestShortest(),
		"P4-shortest-widest":  ShortestWidest(),
		"P5-waypoint":         Waypoint(wp...),
		"P6-link-preference":  LinkPreference(x, y),
		"P7-weighted-link":    WeightedLink(x, y, 10),
		"P8-source-local":     SourceLocal(x),
		"P9-congestion-aware": CongestionAware(),
	}
}
