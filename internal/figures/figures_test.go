package figures

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"contra/internal/campaign"
	"contra/internal/metrics"
	"contra/internal/scenario"
	"contra/internal/stats"
)

// sampledRecorder builds a recorder with two links and a few ticks.
func sampledRecorder() *metrics.Recorder {
	m := metrics.NewRecorder(1000)
	m.RegisterLink("a->b")
	m.RegisterLink("b->a")
	m.RegisterDropReasons([]string{"queue"})
	for i := 0; i < 3; i++ {
		m.BeginSample(int64(i) * 1000)
		m.Link(0.25*float64(i), 0, 0)
		m.Link(0.5*float64(i), 0, 0)
		m.Drops([]int64{0})
		m.EndSample()
	}
	return m
}

func figureReport() *campaign.Report {
	mk := func(name string, scheme scenario.Scheme, load, p99 float64) campaign.Outcome {
		return campaign.Outcome{
			Scenario: scenario.Scenario{Name: name},
			Result: &scenario.Result{
				Name: name, Scheme: scheme, Load: load, P99FCT: p99,
			},
		}
	}
	a := mk("cell-a", scenario.SchemeContra, 0.2, 0.004)
	a.Result.Metrics = sampledRecorder()
	a.Result.Series = []stats.Point{{T: 0, V: 1e9}, {T: 500000, V: 0.4e9}, {T: 1000000, V: 0.9e9}}
	a.Scenario.Events = []scenario.Event{{Kind: scenario.SwitchDown, AtNs: 400000}}
	b := mk("cell-b", scenario.SchemeHula, 0.6, 0.009)
	return &campaign.Report{Outcomes: []campaign.Outcome{a, b}}
}

func TestEmitWritesAllThreeFigures(t *testing.T) {
	dir := t.TempDir()
	written, err := Emit(dir, figureReport())
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"util_timeline.dat", "util_timeline.gp",
		"recovery_timeline.dat", "recovery_timeline.gp",
		"fct_vs_load.dat", "fct_vs_load.gp",
	}
	if strings.Join(written, " ") != strings.Join(want, " ") {
		t.Fatalf("written = %v, want %v", written, want)
	}
	util, err := os.ReadFile(filepath.Join(dir, "util_timeline.dat"))
	if err != nil {
		t.Fatal(err)
	}
	// Tick 2: links at 0.5 and 1.0 -> mean 0.75, max 1.0.
	if !strings.Contains(string(util), "0.002 0.7500 1.0000") {
		t.Errorf("util_timeline.dat missing mean/max row:\n%s", util)
	}
	rec, err := os.ReadFile(filepath.Join(dir, "recovery_timeline.gp"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(rec), "set arrow 1 from 0.400") {
		t.Errorf("recovery_timeline.gp missing event marker:\n%s", rec)
	}
	fct, err := os.ReadFile(filepath.Join(dir, "fct_vs_load.dat"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(fct), "# scheme: contra") || !strings.Contains(string(fct), "0.6 9.0000") {
		t.Errorf("fct_vs_load.dat content wrong:\n%s", fct)
	}
}

func TestEmitDeterministic(t *testing.T) {
	read := func(dir string) string {
		var b strings.Builder
		ents, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range ents {
			data, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			b.WriteString(e.Name() + "\n" + string(data))
		}
		return b.String()
	}
	d1, d2 := t.TempDir(), t.TempDir()
	if _, err := Emit(d1, figureReport()); err != nil {
		t.Fatal(err)
	}
	if _, err := Emit(d2, figureReport()); err != nil {
		t.Fatal(err)
	}
	if read(d1) != read(d2) {
		t.Fatal("Emit output differs across identical reports")
	}
}

func TestEmitNoDataErrors(t *testing.T) {
	r := &campaign.Report{Outcomes: []campaign.Outcome{
		{Scenario: scenario.Scenario{Name: "bare"}, Result: &scenario.Result{Name: "bare"}},
	}}
	if _, err := Emit(t.TempDir(), r); err == nil {
		t.Fatal("Emit succeeded on a report with no figure data")
	}
}
