// Package figures turns a completed campaign report into
// paper-figure inputs: gnuplot scripts paired with data files, ready
// for `gnuplot <name>.gp`. Three figures are supported — the link
// utilization timeline per scheme (from the telemetry sampler), the
// delivered-throughput recovery timeline around chaos events (from the
// binned rx series), and the FCT-vs-load curve (when the campaign
// swept more than one load). Each is emitted only when the report
// carries the data it needs; Emit reports what it wrote.
//
// Output is deterministic: cells appear in expansion order, numeric
// formatting is fixed, and nothing in the data files depends on
// scheduling, so figure data can be diffed across runs like every
// other campaign artifact.
package figures

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"contra/internal/campaign"
	"contra/internal/metrics"
	"contra/internal/scenario"
)

// Emit writes figure data and gnuplot scripts into dir (created if
// missing) and returns the filenames written, in emission order.
func Emit(dir string, report *campaign.Report) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	var written []string
	emit := func(name, content string) error {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			return err
		}
		written = append(written, name)
		return nil
	}
	if dat, gp, ok := utilTimeline(report); ok {
		if err := emit("util_timeline.dat", dat); err != nil {
			return written, err
		}
		if err := emit("util_timeline.gp", gp); err != nil {
			return written, err
		}
	}
	if dat, gp, ok := recoveryTimeline(report); ok {
		if err := emit("recovery_timeline.dat", dat); err != nil {
			return written, err
		}
		if err := emit("recovery_timeline.gp", gp); err != nil {
			return written, err
		}
	}
	if dat, gp, ok := fctVsLoad(report); ok {
		if err := emit("fct_vs_load.dat", dat); err != nil {
			return written, err
		}
		if err := emit("fct_vs_load.gp", gp); err != nil {
			return written, err
		}
	}
	if len(written) == 0 {
		return nil, fmt.Errorf("figures: report carries no figure data " +
			"(no metrics samples, no binned series, single load)")
	}
	return written, nil
}

// utilTimeline renders per-cell fabric utilization over time from the
// telemetry sampler: one gnuplot index block per cell with the mean
// and max utilization across fabric links at each sample tick.
func utilTimeline(report *campaign.Report) (dat, gp string, ok bool) {
	var b strings.Builder
	var titles []string
	for i := range report.Outcomes {
		o := &report.Outcomes[i]
		res := o.Result
		if res == nil || res.Metrics == nil || res.Metrics.Samples() == 0 {
			continue
		}
		if len(titles) > 0 {
			b.WriteString("\n\n") // gnuplot index separator
		}
		fmt.Fprintf(&b, "# cell: %s\n# t_ms mean_util max_util\n", o.Scenario.Name)
		res.Metrics.EachSample(func(tk metrics.Tick) {
			mean, peak := 0.0, 0.0
			for _, u := range tk.Util {
				mean += u
				if u > peak {
					peak = u
				}
			}
			if len(tk.Util) > 0 {
				mean /= float64(len(tk.Util))
			}
			fmt.Fprintf(&b, "%.3f %.4f %.4f\n", float64(tk.T)/1e6, mean, peak)
		})
		titles = append(titles, o.Scenario.Name)
	}
	if len(titles) == 0 {
		return "", "", false
	}
	return b.String(), utilGP(titles), true
}

func utilGP(titles []string) string {
	var b strings.Builder
	b.WriteString(`set terminal svg size 800,480
set output 'util_timeline.svg'
set title 'Fabric link utilization over time'
set xlabel 'time (ms)'
set ylabel 'utilization'
set yrange [0:1.05]
set key outside right
plot \
`)
	for i, t := range titles {
		sep := ", \\\n"
		if i == len(titles)-1 {
			sep = "\n"
		}
		fmt.Fprintf(&b, "  'util_timeline.dat' index %d using 1:2 with lines title '%s'%s",
			i, gpEscape(t), sep)
	}
	return b.String()
}

// recoveryTimeline renders delivered throughput per bin around the
// script's chaos events: one index block per cell, with every event
// instant marked by a vertical line in the script.
func recoveryTimeline(report *campaign.Report) (dat, gp string, ok bool) {
	var b strings.Builder
	var titles []string
	eventMs := map[float64]string{}
	for i := range report.Outcomes {
		o := &report.Outcomes[i]
		res := o.Result
		if res == nil || len(res.Series) == 0 {
			continue
		}
		if len(titles) > 0 {
			b.WriteString("\n\n")
		}
		fmt.Fprintf(&b, "# cell: %s\n# t_ms gbps\n", o.Scenario.Name)
		for _, p := range res.Series {
			fmt.Fprintf(&b, "%.3f %.4f\n", float64(p.T)/1e6, p.V/1e9)
		}
		titles = append(titles, o.Scenario.Name)
		for _, ev := range o.Scenario.Events {
			eventMs[float64(ev.AtNs)/1e6] = string(ev.Kind)
		}
	}
	if len(titles) == 0 {
		return "", "", false
	}
	return b.String(), recoveryGP(titles, eventMs), true
}

func recoveryGP(titles []string, eventMs map[float64]string) string {
	var b strings.Builder
	b.WriteString(`set terminal svg size 800,480
set output 'recovery_timeline.svg'
set title 'Delivered throughput around chaos events'
set xlabel 'time (ms)'
set ylabel 'delivered (Gbps)'
set key outside right
`)
	ts := make([]float64, 0, len(eventMs))
	for t := range eventMs {
		ts = append(ts, t)
	}
	sort.Float64s(ts)
	for i, t := range ts {
		fmt.Fprintf(&b, "set arrow %d from %.3f, graph 0 to %.3f, graph 1 nohead dashtype 2\n",
			i+1, t, t)
		fmt.Fprintf(&b, "set label %d '%s' at %.3f, graph 0.97 rotate by 90 right font ',8'\n",
			i+1, gpEscape(eventMs[t]), t)
	}
	b.WriteString("plot \\\n")
	for i, t := range titles {
		sep := ", \\\n"
		if i == len(titles)-1 {
			sep = "\n"
		}
		fmt.Fprintf(&b, "  'recovery_timeline.dat' index %d using 1:2 with lines title '%s'%s",
			i, gpEscape(t), sep)
	}
	return b.String()
}

// fctVsLoad renders the tail-latency curve: p99 FCT against offered
// load, one index block per scheme, averaged across seeds, topologies,
// and scripts at each load point. Needs at least two distinct loads.
func fctVsLoad(report *campaign.Report) (dat, gp string, ok bool) {
	type key struct {
		scheme scenario.Scheme
		load   float64
	}
	sum := map[key]float64{}
	n := map[key]int{}
	var schemes []scenario.Scheme
	seenScheme := map[scenario.Scheme]bool{}
	loads := map[float64]bool{}
	for i := range report.Outcomes {
		res := report.Outcomes[i].Result
		if res == nil || res.P99FCT <= 0 || res.Load <= 0 {
			continue
		}
		k := key{res.Scheme, res.Load}
		sum[k] += res.P99FCT
		n[k]++
		loads[res.Load] = true
		if !seenScheme[res.Scheme] {
			seenScheme[res.Scheme] = true
			schemes = append(schemes, res.Scheme)
		}
	}
	if len(loads) < 2 {
		return "", "", false
	}
	sorted := make([]float64, 0, len(loads))
	for l := range loads {
		sorted = append(sorted, l)
	}
	sort.Float64s(sorted)
	var b strings.Builder
	titles := make([]string, len(schemes))
	for i, s := range schemes {
		if i > 0 {
			b.WriteString("\n\n")
		}
		fmt.Fprintf(&b, "# scheme: %s\n# load p99_ms\n", s)
		for _, l := range sorted {
			k := key{s, l}
			if n[k] == 0 {
				continue
			}
			fmt.Fprintf(&b, "%g %.4f\n", l, sum[k]/float64(n[k])*1e3)
		}
		titles[i] = string(s)
	}
	return b.String(), fctGP(titles), true
}

func fctGP(titles []string) string {
	var b strings.Builder
	b.WriteString(`set terminal svg size 640,480
set output 'fct_vs_load.svg'
set title 'p99 FCT vs offered load'
set xlabel 'load'
set ylabel 'p99 FCT (ms)'
set key top left
plot \
`)
	for i, t := range titles {
		sep := ", \\\n"
		if i == len(titles)-1 {
			sep = "\n"
		}
		fmt.Fprintf(&b, "  'fct_vs_load.dat' index %d using 1:2 with linespoints title '%s'%s",
			i, gpEscape(t), sep)
	}
	return b.String()
}

// gpEscape makes a string safe inside gnuplot single quotes.
func gpEscape(s string) string { return strings.ReplaceAll(s, "'", "''") }
