package workload

import (
	"fmt"
	"strings"
	"testing"

	"contra/internal/sim"
	"contra/internal/topo"
)

func cohortTopo(t *testing.T) *topo.Graph {
	t.Helper()
	return topo.Fattree(4, 2)
}

func baseCohort() CohortSpec {
	return CohortSpec{Name: "web", Load: 0.3}
}

func cohortCfg(g *topo.Graph, cs ...CohortSpec) CohortConfig {
	s, r := SplitHosts(g)
	return CohortConfig{
		Cohorts: cs, Senders: s, Receivers: r,
		CapacityBps: 64e9, StartNs: 3_000_000, DurationNs: 20_000_000,
		Seed: 1, MaxFlows: 4000,
	}
}

// TestCohortValidationErrors pins the one-line error for each way a
// cohort spec can be malformed; every message must name the offending
// cohort and field.
func TestCohortValidationErrors(t *testing.T) {
	mod := func(f func(*CohortSpec)) []CohortSpec {
		c := baseCohort()
		f(&c)
		return []CohortSpec{c}
	}
	cases := []struct {
		name string
		cs   []CohortSpec
		want string
	}{
		{"no cohorts", nil, "declares no cohorts"},
		{"unnamed", mod(func(c *CohortSpec) { c.Name = "" }), "cohort 0: name is required"},
		{"dup name", []CohortSpec{baseCohort(), baseCohort()}, `cohort 1 reuses name "web"`},
		{"negative rate", mod(func(c *CohortSpec) { c.Load = 0; c.RateFPS = -5 }), "rate_fps -5 is negative"},
		{"negative load", mod(func(c *CohortSpec) { c.Load = -0.1 }), "load -0.1 is negative"},
		{"no rate", mod(func(c *CohortSpec) { c.Load = 0 }), "needs rate_fps or load"},
		{"both rates", mod(func(c *CohortSpec) { c.RateFPS = 10 }), "sets both rate_fps and load"},
		{"negative weight", mod(func(c *CohortSpec) { c.Weight = -1 }), "weight -1 is negative"},
		{"unknown process", mod(func(c *CohortSpec) { c.Process = "lomax" }), `unknown process "lomax"`},
		{"negative shape", mod(func(c *CohortSpec) { c.Shape = -2 }), "shape -2 is negative"},
		{"poisson shape", mod(func(c *CohortSpec) { c.Shape = 3 }), "shape 3 needs a gamma or weibull process"},
		{"unknown size dist", mod(func(c *CohortSpec) { c.Size.Dist = "zipf" }), `unknown size dist "zipf"`},
		{"lognormal no mean", mod(func(c *CohortSpec) { c.Size.Dist = SizeLogNormal }), "lognormal size needs mean_bytes > 0"},
		{"pareto alpha", mod(func(c *CohortSpec) { c.Size = SizeSpec{Dist: SizePareto, MinBytes: 100, Alpha: 0.9} }),
			"pareto alpha 0.9 must be > 1"},
		{"fixed no bytes", mod(func(c *CohortSpec) { c.Size.Dist = SizeFixed }), "fixed size needs bytes > 0"},
		{"zero-weight mix", mod(func(c *CohortSpec) {
			c.Size = SizeSpec{Mix: []SizeComponent{{SizeSpec: SizeSpec{Dist: "cache"}}}}
		}), "size mix weights sum to zero"},
		{"nested mix", mod(func(c *CohortSpec) {
			c.Size = SizeSpec{Mix: []SizeComponent{{Weight: 1, SizeSpec: SizeSpec{Mix: []SizeComponent{{Weight: 1}}}}}}
		}), "size mix component 0 nests a mix"},
		{"mix and dist", mod(func(c *CohortSpec) {
			c.Size = SizeSpec{Dist: "cache", Mix: []SizeComponent{{Weight: 1}}}
		}), `size sets both dist "cache" and mix`},
		{"unknown profile", mod(func(c *CohortSpec) { c.Profile = "sawtooth" }), `unknown profile "sawtooth"`},
		{"diurnal no period", mod(func(c *CohortSpec) { c.Profile = ProfileDiurnal }), "diurnal profile needs period_ns > 0"},
		{"bad depth", mod(func(c *CohortSpec) { c.Depth = 1.5 }), "depth 1.5 outside [0,1]"},
		{"bad duty", mod(func(c *CohortSpec) { c.Duty = -0.2 }), "duty -0.2 outside [0,1]"},
		{"unknown placement", mod(func(c *CohortSpec) { c.Placement = "rackety" }), `unknown placement "rackety"`},
		{"negative start", mod(func(c *CohortSpec) { c.StartNs = -1 }), "start_ns -1 is negative"},
		{"negative max", mod(func(c *CohortSpec) { c.MaxFlows = -4 }), "max_flows -4 is negative"},
	}
	for _, tc := range cases {
		err := ValidateCohorts(tc.cs)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
		if strings.Contains(err.Error(), "\n") {
			t.Errorf("%s: error is not one line: %q", tc.name, err)
		}
	}
}

func TestGenerateCohortsDeterministic(t *testing.T) {
	g := cohortTopo(t)
	cs := []CohortSpec{
		{Name: "web", Load: 0.2, Size: SizeSpec{Dist: "websearch"}},
		{Name: "bulk", RateFPS: 2000, Process: ProcGamma, Shape: 0.5,
			Size: SizeSpec{Dist: SizeLogNormal, MeanBytes: 2e6, Sigma: 1}},
		{Name: "burst", Load: 0.1, Profile: ProfileBurst, PeriodNs: 5_000_000, Duty: 0.2,
			Placement: PlaceIncast, IncastTargets: 2, Size: SizeSpec{Dist: "cache"}},
	}
	a, err := GenerateCohorts(g, cohortCfg(g, cs...))
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateCohorts(g, cohortCfg(g, cs...))
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 {
		t.Fatal("no flows generated")
	}
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatal("two generations with the same seed differ")
	}
	// Cohort attribution: every flow's top 32 bits name its cohort.
	counts := map[uint64]int{}
	for _, f := range a {
		counts[f.ID>>32]++
	}
	for i := range cs {
		if counts[uint64(i)] == 0 {
			t.Errorf("cohort %d (%s) produced no flows", i, cs[i].Name)
		}
	}
}

// TestCohortIndependence pins the per-cohort seed streams: editing one
// cohort's knobs must not perturb another cohort's flows.
func TestCohortIndependence(t *testing.T) {
	g := cohortTopo(t)
	web := CohortSpec{Name: "web", Load: 0.2}
	bulkA := CohortSpec{Name: "bulk", RateFPS: 500, Size: SizeSpec{Dist: SizeFixed, Bytes: 1e6}}
	bulkB := bulkA
	bulkB.RateFPS = 900

	flowsOf := func(cs ...CohortSpec) map[uint64]sim.FlowSpec {
		flows, err := GenerateCohorts(g, cohortCfg(g, cs...))
		if err != nil {
			t.Fatal(err)
		}
		out := map[uint64]sim.FlowSpec{}
		for _, f := range flows {
			if f.ID>>32 == 0 {
				out[f.ID] = f
			}
		}
		return out
	}
	a, b := flowsOf(web, bulkA), flowsOf(web, bulkB)
	if len(a) == 0 || fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatal("editing cohort 1 perturbed cohort 0's flows")
	}
}

func TestRackLocalPlacement(t *testing.T) {
	g := cohortTopo(t)
	cs := []CohortSpec{{Name: "local", Load: 0.3, Placement: PlaceRackLocal}}
	flows, err := GenerateCohorts(g, cohortCfg(g, cs...))
	if err != nil {
		t.Fatal(err)
	}
	local := 0
	for _, f := range flows {
		if g.HostEdge(f.Src) == g.HostEdge(f.Dst) {
			t.Fatalf("flow %d stays on one edge switch", f.ID)
		}
		if g.Node(f.Src).Pod >= 0 && g.Node(f.Src).Pod == g.Node(f.Dst).Pod {
			local++
		}
	}
	if local == 0 {
		t.Fatal("rack_local placement produced no pod-local flows")
	}
}

func TestBurstProfileGates(t *testing.T) {
	g := cohortTopo(t)
	period := int64(5_000_000)
	cs := []CohortSpec{{Name: "b", RateFPS: 200_000, Profile: ProfileBurst,
		PeriodNs: period, Duty: 0.2, Size: SizeSpec{Dist: SizeFixed, Bytes: 1000}}}
	cfg := cohortCfg(g, cs...)
	flows, err := GenerateCohorts(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range flows {
		phase := float64((f.Start-cfg.StartNs)%period) / float64(period)
		if phase >= 0.2 {
			t.Fatalf("flow at phase %.2f lands outside the burst duty window", phase)
		}
	}
}
