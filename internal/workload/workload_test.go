package workload

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"contra/internal/topo"
)

func TestSampleMeanMatchesAnalyticMean(t *testing.T) {
	for _, d := range []*Distribution{WebSearch(), Cache()} {
		rng := rand.New(rand.NewSource(1))
		var sum float64
		n := 300000
		for i := 0; i < n; i++ {
			sum += float64(d.Sample(rng))
		}
		got := sum / float64(n)
		want := d.Mean()
		if math.Abs(got-want)/want > 0.1 {
			t.Errorf("%s: sampled mean %.0f vs analytic %.0f", d.Name, got, want)
		}
	}
}

func TestDistributionShapes(t *testing.T) {
	// Cache flows are mostly tiny; web-search flows are much larger on
	// average.
	ws, ca := WebSearch(), Cache()
	if ws.Mean() < 10*ca.Mean() {
		t.Fatalf("web-search mean (%.0f) should dwarf cache mean (%.0f)", ws.Mean(), ca.Mean())
	}
	rng := rand.New(rand.NewSource(2))
	small := 0
	n := 10000
	for i := 0; i < n; i++ {
		if ca.Sample(rng) < 2000 {
			small++
		}
	}
	if frac := float64(small) / float64(n); frac < 0.6 {
		t.Fatalf("cache: only %.2f of flows under 2KB, want most", frac)
	}
}

func TestSampleDeterminism(t *testing.T) {
	d := WebSearch()
	a := rand.New(rand.NewSource(7))
	b := rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		if d.Sample(a) != d.Sample(b) {
			t.Fatal("same seed diverged")
		}
	}
}

func TestGenerateLoadCalibration(t *testing.T) {
	g := topo.PaperDataCenter()
	senders, receivers := SplitHosts(g)
	capacity := float64(len(senders)) * 10e9
	for _, load := range []float64{0.2, 0.6} {
		flows := Generate(g, Config{
			Dist: WebSearch(), Senders: senders, Receivers: receivers,
			Load: load, CapacityBps: capacity,
			DurationNs: 200_000_000, Seed: 3,
		})
		if len(flows) == 0 {
			t.Fatalf("load %.1f: no flows", load)
		}
		offered := OfferedBytes(flows) * 8 / 0.2 // bits per second over 200ms
		ratio := offered / (load * capacity)
		if ratio < 0.7 || ratio > 1.4 {
			t.Errorf("load %.1f: offered/target = %.2f (n=%d flows)", load, ratio, len(flows))
		}
	}
}

func TestGenerateProperties(t *testing.T) {
	g := topo.PaperDataCenter()
	senders, receivers := SplitHosts(g)
	flows := Generate(g, Config{
		Dist: Cache(), Senders: senders, Receivers: receivers,
		Load: 0.5, CapacityBps: 160e9, StartNs: 1_000_000,
		DurationNs: 50_000_000, Seed: 4, MaxFlows: 500,
	})
	if len(flows) == 0 {
		t.Fatal("no flows")
	}
	seen := map[uint64]bool{}
	last := int64(0)
	for _, f := range flows {
		if seen[f.ID] {
			t.Fatal("duplicate flow ID")
		}
		seen[f.ID] = true
		if f.Start < 1_000_000 {
			t.Fatal("flow before start window")
		}
		if f.Start < last {
			t.Fatal("arrivals out of order")
		}
		last = f.Start
		if f.Size <= 0 {
			t.Fatal("non-positive size")
		}
		if g.HostEdge(f.Src) == g.HostEdge(f.Dst) {
			t.Fatal("flow within one edge switch")
		}
	}
	// Determinism.
	again := Generate(g, Config{
		Dist: Cache(), Senders: senders, Receivers: receivers,
		Load: 0.5, CapacityBps: 160e9, StartNs: 1_000_000,
		DurationNs: 50_000_000, Seed: 4, MaxFlows: 500,
	})
	if len(again) != len(flows) {
		t.Fatal("same seed, different flow count")
	}
	for i := range again {
		if again[i] != flows[i] {
			t.Fatal("same seed, different flows")
		}
	}
}

func TestIncastPatternConvergesOnHotReceivers(t *testing.T) {
	g := topo.PaperDataCenter()
	senders, receivers := SplitHosts(g)
	flows := Generate(g, Config{
		Dist: Cache(), Senders: senders, Receivers: receivers,
		Pattern: PatternIncast, IncastTargets: 2,
		Load: 0.4, CapacityBps: 160e9,
		DurationNs: 20_000_000, Seed: 5, MaxFlows: 400,
	})
	if len(flows) == 0 {
		t.Fatal("no flows")
	}
	dsts := map[topo.NodeID]bool{}
	for _, f := range flows {
		dsts[f.Dst] = true
		if g.HostEdge(f.Src) == g.HostEdge(f.Dst) {
			t.Fatal("incast flow within one edge switch")
		}
	}
	if len(dsts) > 2 {
		t.Fatalf("incast with 2 targets hit %d receivers", len(dsts))
	}
	for d := range dsts {
		if d != receivers[0] && d != receivers[1] {
			t.Fatalf("incast receiver %v outside the hot set", d)
		}
	}
}

func TestAllToAllPatternUsesEveryHostBothWays(t *testing.T) {
	g := topo.PaperDataCenter()
	senders, receivers := SplitHosts(g)
	flows := Generate(g, Config{
		Dist: Cache(), Senders: senders, Receivers: receivers,
		Pattern: PatternAllToAll,
		Load:    0.5, CapacityBps: 160e9,
		DurationNs: 40_000_000, Seed: 6, MaxFlows: 2000,
	})
	if len(flows) == 0 {
		t.Fatal("no flows")
	}
	recvSet := map[topo.NodeID]bool{}
	for _, r := range receivers {
		recvSet[r] = true
	}
	// Under all-to-all, hosts from the "receivers" half must show up as
	// sources too (and vice versa) — that is the point of the pattern.
	srcFromRecvHalf, dstFromSendHalf := 0, 0
	for _, f := range flows {
		if recvSet[f.Src] {
			srcFromRecvHalf++
		}
		if !recvSet[f.Dst] {
			dstFromSendHalf++
		}
		if g.HostEdge(f.Src) == g.HostEdge(f.Dst) {
			t.Fatal("all-to-all flow within one edge switch")
		}
	}
	if srcFromRecvHalf == 0 || dstFromSendHalf == 0 {
		t.Fatalf("all_to_all did not mix halves: %d/%d", srcFromRecvHalf, dstFromSendHalf)
	}
}

func TestRandomPatternUnchangedByPatternField(t *testing.T) {
	// The explicit "random" name must produce byte-identical flows to
	// the legacy empty pattern, preserving historical seeds.
	g := topo.PaperDataCenter()
	senders, receivers := SplitHosts(g)
	base := Config{
		Dist: Cache(), Senders: senders, Receivers: receivers,
		Load: 0.5, CapacityBps: 160e9,
		DurationNs: 20_000_000, Seed: 4, MaxFlows: 300,
	}
	named := base
	named.Pattern = PatternRandom
	a, b := Generate(g, base), Generate(g, named)
	if len(a) != len(b) {
		t.Fatalf("flow counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("flow %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestValidPattern(t *testing.T) {
	for _, p := range append(Patterns(), "") {
		if !ValidPattern(p) {
			t.Errorf("ValidPattern(%q) = false", p)
		}
	}
	if ValidPattern("hotspot") {
		t.Error("unknown pattern accepted")
	}
}

func TestSplitHosts(t *testing.T) {
	g := topo.PaperDataCenter()
	s, r := SplitHosts(g)
	if len(s) != 16 || len(r) != 16 {
		t.Fatalf("split = %d/%d, want 16/16", len(s), len(r))
	}
}

func TestByName(t *testing.T) {
	if d, err := ByName("websearch"); err != nil || d.Name != "websearch" {
		t.Fatal("websearch lookup failed")
	}
	if d, err := ByName("cache"); err != nil || d.Name != "cache" {
		t.Fatal("cache lookup failed")
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown name should error")
	}
}

// TestByNameErrorListsRegistry pins the ByName error message to the
// registry: every registered name must appear in it, so adding a
// distribution can never leave the valid-name list stale again.
func TestByNameErrorListsRegistry(t *testing.T) {
	_, err := ByName("nope")
	if err == nil {
		t.Fatal("unknown name should error")
	}
	names := Names()
	if len(names) < 2 {
		t.Fatalf("registry lists %d names, want at least websearch and cache", len(names))
	}
	for _, name := range names {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not list registered distribution %q", err, name)
		}
	}
	for _, alias := range []string{"web-search", "web"} {
		if _, err := ByName(alias); err != nil {
			t.Errorf("alias %q stopped resolving: %v", alias, err)
		}
	}
}

func TestBadKnotsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for bad knots")
		}
	}()
	NewDistribution("bad", []float64{10, 5}, []float64{0.5, 1})
}
