// Package workload generates the paper's evaluation traffic (§6.1):
// flow sizes drawn from the empirical web-search (DCTCP, Alizadeh et
// al.) and cache (Facebook, Roy et al.) distributions, with Poisson
// arrivals tuned so the offered load matches a target fraction of
// network capacity.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"contra/internal/sim"
	"contra/internal/topo"
)

// Distribution is an empirical flow-size CDF sampled by inverse
// transform with log-linear interpolation between knots.
type Distribution struct {
	Name  string
	sizes []float64 // bytes at each knot
	cum   []float64 // cumulative probability at each knot
}

// NewDistribution builds a distribution from (bytes, cumulative
// probability) knots; the last knot must have probability 1.
func NewDistribution(name string, sizesBytes, cum []float64) *Distribution {
	if len(sizesBytes) != len(cum) || len(sizesBytes) == 0 {
		panic("workload: bad distribution knots")
	}
	for i := 1; i < len(cum); i++ {
		if cum[i] < cum[i-1] || sizesBytes[i] < sizesBytes[i-1] {
			panic("workload: knots must be non-decreasing")
		}
	}
	if cum[len(cum)-1] != 1 {
		panic("workload: last knot must have probability 1")
	}
	return &Distribution{Name: name, sizes: sizesBytes, cum: cum}
}

// WebSearch returns the DCTCP web-search flow size distribution: a mix
// of short queries and multi-megabyte background flows. Knots follow
// the published CDF.
func WebSearch() *Distribution {
	kb := 1000.0
	return NewDistribution("websearch",
		[]float64{1 * kb, 6 * kb, 13 * kb, 19 * kb, 33 * kb, 53 * kb, 133 * kb,
			667 * kb, 1333 * kb, 6667 * kb, 20000 * kb},
		[]float64{0, 0.15, 0.3, 0.45, 0.6, 0.7, 0.8, 0.9, 0.95, 0.98, 1})
}

// Cache returns the Facebook cache-follower flow size distribution:
// dominated by sub-kilobyte objects with a long heavy tail.
func Cache() *Distribution {
	kb := 1000.0
	return NewDistribution("cache",
		[]float64{0.07 * kb, 0.15 * kb, 0.3 * kb, 0.6 * kb, 1 * kb, 2 * kb,
			5 * kb, 10 * kb, 100 * kb, 1000 * kb, 10000 * kb},
		[]float64{0.1, 0.25, 0.4, 0.55, 0.7, 0.8, 0.9, 0.95, 0.98, 0.996, 1})
}

// registry maps canonical distribution names to constructors. ByName's
// error message lists these names, so adding a distribution here is the
// whole registration step — the valid-name list can never go stale.
var registry = map[string]func() *Distribution{
	"websearch": WebSearch,
	"cache":     Cache,
}

// aliases maps alternate CLI spellings onto canonical registry names.
var aliases = map[string]string{
	"web-search": "websearch",
	"web":        "websearch",
}

// Names returns the canonical distribution names, sorted (CLI help,
// error messages).
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// ByName resolves a distribution by its CLI name.
func ByName(name string) (*Distribution, error) {
	canon := name
	if a, ok := aliases[name]; ok {
		canon = a
	}
	if mk, ok := registry[canon]; ok {
		return mk(), nil
	}
	return nil, fmt.Errorf("workload: unknown distribution %q (want %s)", name, strings.Join(Names(), " or "))
}

// Sample draws one flow size in bytes.
func (d *Distribution) Sample(rng *rand.Rand) int64 {
	u := rng.Float64()
	i := sort.SearchFloat64s(d.cum, u)
	if i == 0 {
		return int64(d.sizes[0])
	}
	if i >= len(d.cum) {
		i = len(d.cum) - 1
	}
	lo, hi := d.sizes[i-1], d.sizes[i]
	cl, ch := d.cum[i-1], d.cum[i]
	if ch == cl || lo <= 0 {
		return int64(hi)
	}
	frac := (u - cl) / (ch - cl)
	// Log-linear interpolation suits the heavy tail.
	v := math.Exp(math.Log(lo) + frac*(math.Log(hi)-math.Log(lo)))
	if v < 1 {
		v = 1
	}
	return int64(v)
}

// Mean returns the distribution's expected flow size in bytes,
// integrated over the interpolated CDF.
func (d *Distribution) Mean() float64 {
	mean := d.sizes[0] * d.cum[0]
	for i := 1; i < len(d.sizes); i++ {
		p := d.cum[i] - d.cum[i-1]
		lo, hi := d.sizes[i-1], d.sizes[i]
		var segMean float64
		if lo <= 0 || hi <= lo {
			segMean = hi
		} else {
			// Mean of the log-linear segment.
			r := math.Log(hi / lo)
			if r < 1e-9 {
				segMean = lo
			} else {
				segMean = lo * (math.Expm1(r)) / r
			}
		}
		mean += p * segMean
	}
	return mean
}

// Traffic patterns: how each flow picks its endpoints.
const (
	// PatternRandom (the default, also "") draws the sender uniformly
	// from Senders and the receiver uniformly from Receivers — the
	// paper's §6.3 setup.
	PatternRandom = "random"
	// PatternIncast converges every flow on a small set of hot
	// receivers (Config.IncastTargets of them, default 1): the classic
	// partition-aggregate fan-in that stresses a single edge downlink.
	PatternIncast = "incast"
	// PatternAllToAll lets every host both send and receive: endpoints
	// are drawn uniformly from the union of Senders and Receivers, as
	// in shuffle-stage workloads.
	PatternAllToAll = "all_to_all"
)

// Patterns lists the supported traffic patterns (CLI help, spec
// validation).
func Patterns() []string {
	return []string{PatternRandom, PatternIncast, PatternAllToAll}
}

// ValidPattern reports whether name is a known traffic pattern ("" is
// the random default).
func ValidPattern(name string) bool {
	switch name {
	case "", PatternRandom, PatternIncast, PatternAllToAll:
		return true
	}
	return false
}

// Config drives flow generation.
type Config struct {
	Dist *Distribution

	// Senders and Receivers are host sets; flows pick one of each
	// uniformly (re-picking when they share an edge switch, since
	// such flows never cross the fabric).
	Senders   []topo.NodeID
	Receivers []topo.NodeID

	// Pattern selects how endpoints are drawn: PatternRandom (default),
	// PatternIncast, or PatternAllToAll. Ignored when Pairs is set.
	Pattern string

	// IncastTargets bounds the hot receiver set for PatternIncast
	// (<= 0 means 1).
	IncastTargets int

	// Pairs, when non-empty, overrides Senders/Receivers: each flow
	// picks one fixed (sender, receiver) pair uniformly. The paper's
	// Abilene experiment uses four such pairs (§6.4).
	Pairs [][2]topo.NodeID

	// Load is the target offered load as a fraction of CapacityBps.
	Load float64

	// CapacityBps normalizes load: the evaluation uses the hosts'
	// aggregate access bandwidth on the sending side.
	CapacityBps float64

	// StartNs and DurationNs bound the arrival window.
	StartNs    int64
	DurationNs int64

	// Seed makes generation deterministic.
	Seed int64

	// MaxFlows caps the number of generated flows (0 = unlimited).
	MaxFlows int

	// FirstFlowID numbers flows (IDs must be unique per simulation).
	FirstFlowID uint64
}

// Generate produces Poisson arrivals at the requested load.
func Generate(g *topo.Graph, cfg Config) []sim.FlowSpec {
	if cfg.Dist == nil || cfg.Load <= 0 || cfg.CapacityBps <= 0 || cfg.DurationNs <= 0 {
		panic("workload: incomplete config")
	}
	if len(cfg.Pairs) == 0 && (len(cfg.Senders) == 0 || len(cfg.Receivers) == 0) {
		panic("workload: no hosts")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	mean := cfg.Dist.Mean()
	lambda := cfg.Load * cfg.CapacityBps / 8 / mean // flows per second
	if cfg.FirstFlowID == 0 {
		cfg.FirstFlowID = 1
	}

	// Pattern shapes the endpoint pools; the random default keeps the
	// exact draw sequence of earlier releases so historical seeds
	// replay identically.
	senders, receivers := cfg.Senders, cfg.Receivers
	switch cfg.Pattern {
	case PatternIncast:
		k := cfg.IncastTargets
		if k <= 0 {
			k = 1
		}
		if k > len(receivers) {
			k = len(receivers)
		}
		receivers = receivers[:k]
	case PatternAllToAll:
		all := make([]topo.NodeID, 0, len(cfg.Senders)+len(cfg.Receivers))
		all = append(all, cfg.Senders...)
		all = append(all, cfg.Receivers...)
		senders, receivers = all, all
	}

	var flows []sim.FlowSpec
	t := float64(cfg.StartNs)
	end := float64(cfg.StartNs + cfg.DurationNs)
	id := cfg.FirstFlowID
	for {
		t += rng.ExpFloat64() / lambda * 1e9
		if t >= end {
			break
		}
		var src, dst topo.NodeID
		if len(cfg.Pairs) > 0 {
			p := cfg.Pairs[rng.Intn(len(cfg.Pairs))]
			src, dst = p[0], p[1]
		} else {
			src = senders[rng.Intn(len(senders))]
			dst = receivers[rng.Intn(len(receivers))]
			// Same-edge flows never cross the fabric; re-pick the end
			// the pattern leaves free (incast pins its hot receivers,
			// so there the sender moves).
			for tries := 0; g.HostEdge(src) == g.HostEdge(dst) && tries < 32; tries++ {
				if cfg.Pattern == PatternIncast {
					src = senders[rng.Intn(len(senders))]
				} else {
					dst = receivers[rng.Intn(len(receivers))]
				}
			}
		}
		if g.HostEdge(src) == g.HostEdge(dst) {
			continue // degenerate host sets
		}
		flows = append(flows, sim.FlowSpec{
			ID:    id,
			Src:   src,
			Dst:   dst,
			Size:  cfg.Dist.Sample(rng),
			Start: int64(t),
		})
		id++
		if cfg.MaxFlows > 0 && len(flows) >= cfg.MaxFlows {
			break
		}
	}
	return flows
}

// SplitHosts deterministically halves a topology's hosts into senders
// and receivers, as in §6.3 ("half of these hosts were configured as
// senders, and the other half receivers").
func SplitHosts(g *topo.Graph) (senders, receivers []topo.NodeID) {
	hosts := g.Hosts()
	for i, h := range hosts {
		if i%2 == 0 {
			senders = append(senders, h)
		} else {
			receivers = append(receivers, h)
		}
	}
	return senders, receivers
}

// OfferedBytes sums the generated flow sizes (for load verification).
func OfferedBytes(flows []sim.FlowSpec) float64 {
	var total float64
	for _, f := range flows {
		total += float64(f.Size)
	}
	return total
}
