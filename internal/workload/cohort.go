package workload

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"contra/internal/sim"
	"contra/internal/stats"
	"contra/internal/topo"
)

// The cohort layer composes several named client populations into one
// offered load: each cohort declares its own interarrival process,
// flow-size distribution, temporal profile, and placement policy, and
// the union of their flows drives a single scenario. A new workload
// becomes a spec, not a Go file.

// Interarrival processes.
const (
	// ProcPoisson (the default, also "") draws exponential gaps — the
	// classical memoryless arrival stream.
	ProcPoisson = "poisson"
	// ProcGamma draws Gamma(shape, scale) gaps with the scale chosen so
	// the mean gap matches the cohort rate; shape < 1 clusters arrivals
	// (burstier than Poisson), shape > 1 regularizes them.
	ProcGamma = "gamma"
	// ProcWeibull draws Weibull(shape, scale) gaps, again mean-matched;
	// shape < 1 yields heavy-tailed quiet periods between bursts.
	ProcWeibull = "weibull"
)

// Temporal profiles (applied by thinning the peak-rate arrival stream).
const (
	// ProfileFlat (the default, also "") offers the full rate across the
	// whole cohort window.
	ProfileFlat = "flat"
	// ProfileRamp rises linearly from zero to the full rate across the
	// cohort window.
	ProfileRamp = "ramp"
	// ProfileDiurnal modulates the rate sinusoidally with period
	// period_ns: troughs at 1-depth of the peak, peaks at the full rate.
	ProfileDiurnal = "diurnal"
	// ProfileBurst offers the full rate during the first duty fraction
	// of every period_ns and nothing in between.
	ProfileBurst = "burst"
)

// Placement policies.
const (
	// PlaceUniform (the default, also "") draws endpoints uniformly,
	// like PatternRandom.
	PlaceUniform = "uniform"
	// PlaceRackLocal keeps the receiver in the sender's pod (fattree
	// topologies; falls back to uniform where pods are undefined), still
	// forcing the flow across the fabric.
	PlaceRackLocal = "rack_local"
	// PlaceIncast converges the cohort on a small hot receiver set
	// (incast_targets of them), like PatternIncast.
	PlaceIncast = "incast"
)

// Size distribution kinds beyond the empirical registry.
const (
	SizeLogNormal = "lognormal"
	SizePareto    = "pareto"
	SizeFixed     = "fixed"
)

// SizeSpec declares a cohort's flow-size distribution: an empirical
// registry name (websearch, cache), a parametric family (lognormal,
// pareto, fixed), or a weighted mix of those.
type SizeSpec struct {
	// Dist names the distribution; default websearch. Must be empty
	// when Mix is set.
	Dist string `json:"dist,omitempty"`

	// MeanBytes and Sigma parameterize lognormal: the arithmetic mean
	// flow size and the log-domain sigma (0 degenerates to the mean).
	MeanBytes float64 `json:"mean_bytes,omitempty"`
	Sigma     float64 `json:"sigma,omitempty"`

	// MinBytes and Alpha parameterize pareto: the minimum flow size and
	// the tail index (> 1, so the mean is finite).
	MinBytes float64 `json:"min_bytes,omitempty"`
	Alpha    float64 `json:"alpha,omitempty"`

	// Bytes is the fixed flow size.
	Bytes int64 `json:"bytes,omitempty"`

	// Mix composes component distributions by weight; components cannot
	// themselves be mixes.
	Mix []SizeComponent `json:"mix,omitempty"`
}

// SizeComponent is one weighted entry of a size mix.
type SizeComponent struct {
	SizeSpec
	Weight float64 `json:"weight"`
}

// CohortSpec declares one client cohort.
type CohortSpec struct {
	// Name labels the cohort (required; unique within a workload).
	// Cohort i's flow IDs carry i in their top 32 bits, so class-stats
	// cohort i is this cohort.
	Name string `json:"name"`

	// Process selects the interarrival process: poisson (default),
	// gamma, or weibull. Shape parameterizes gamma/weibull (default 1,
	// which makes either exponential).
	Process string  `json:"process,omitempty"`
	Shape   float64 `json:"shape,omitempty"`

	// Exactly one of RateFPS (absolute flows per second) or Load (a
	// fraction of fabric capacity, converted through the mean flow
	// size) sets the cohort's peak rate. Weight scales it (default 1),
	// and the workload-level load axis scales every cohort together.
	RateFPS float64 `json:"rate_fps,omitempty"`
	Load    float64 `json:"load,omitempty"`
	Weight  float64 `json:"weight,omitempty"`

	// Size is the flow-size distribution (default websearch).
	Size SizeSpec `json:"size,omitempty"`

	// Profile shapes the rate over time: flat (default), ramp, diurnal,
	// or burst. PeriodNs is the diurnal/burst period; Depth is the
	// diurnal trough depth in [0,1] (default 1); Duty is the burst
	// on-fraction in (0,1] (default 0.1).
	Profile  string  `json:"profile,omitempty"`
	PeriodNs int64   `json:"period_ns,omitempty"`
	Depth    float64 `json:"depth,omitempty"`
	Duty     float64 `json:"duty,omitempty"`

	// Placement picks endpoints: uniform (default), rack_local, or
	// incast (IncastTargets hot receivers, <= 0 means 1).
	Placement     string `json:"placement,omitempty"`
	IncastTargets int    `json:"incast_targets,omitempty"`

	// StartNs offsets the cohort window from the workload start;
	// DurationNs bounds it (0 = the rest of the workload window).
	// MaxFlows caps this cohort (0 = the workload default).
	StartNs    int64 `json:"start_ns,omitempty"`
	DurationNs int64 `json:"duration_ns,omitempty"`
	MaxFlows   int   `json:"max_flows,omitempty"`
}

// Processes lists the supported interarrival processes.
func Processes() []string { return []string{ProcPoisson, ProcGamma, ProcWeibull} }

// Profiles lists the supported temporal profiles.
func Profiles() []string { return []string{ProfileFlat, ProfileRamp, ProfileDiurnal, ProfileBurst} }

// Placements lists the supported placement policies.
func Placements() []string { return []string{PlaceUniform, PlaceRackLocal, PlaceIncast} }

// ValidateCohorts rejects malformed cohort lists with one-line errors
// naming the offending cohort and field.
func ValidateCohorts(cs []CohortSpec) error {
	if len(cs) == 0 {
		return fmt.Errorf("workload: cohorts workload declares no cohorts")
	}
	seen := map[string]bool{}
	for i := range cs {
		if err := cs[i].validate(i); err != nil {
			return err
		}
		if seen[cs[i].Name] {
			return fmt.Errorf("workload: cohort %d reuses name %q", i, cs[i].Name)
		}
		seen[cs[i].Name] = true
	}
	return nil
}

func (c *CohortSpec) validate(i int) error {
	label := fmt.Sprintf("cohort %d", i)
	if c.Name == "" {
		return fmt.Errorf("workload: %s: name is required", label)
	}
	label = fmt.Sprintf("cohort %d (%q)", i, c.Name)
	switch c.Process {
	case "", ProcPoisson, ProcGamma, ProcWeibull:
	default:
		return fmt.Errorf("workload: %s: unknown process %q (want one of %v)", label, c.Process, Processes())
	}
	if c.Shape < 0 {
		return fmt.Errorf("workload: %s: shape %g is negative", label, c.Shape)
	}
	if (c.Process == "" || c.Process == ProcPoisson) && c.Shape != 0 && c.Shape != 1 {
		return fmt.Errorf("workload: %s: shape %g needs a gamma or weibull process", label, c.Shape)
	}
	if c.RateFPS < 0 {
		return fmt.Errorf("workload: %s: rate_fps %g is negative", label, c.RateFPS)
	}
	if c.Load < 0 {
		return fmt.Errorf("workload: %s: load %g is negative", label, c.Load)
	}
	if c.RateFPS == 0 && c.Load == 0 {
		return fmt.Errorf("workload: %s: needs rate_fps or load", label)
	}
	if c.RateFPS > 0 && c.Load > 0 {
		return fmt.Errorf("workload: %s: sets both rate_fps and load", label)
	}
	if c.Weight < 0 {
		return fmt.Errorf("workload: %s: weight %g is negative", label, c.Weight)
	}
	if err := c.Size.validate(label); err != nil {
		return err
	}
	switch c.Profile {
	case "", ProfileFlat:
	case ProfileRamp:
	case ProfileDiurnal, ProfileBurst:
		if c.PeriodNs <= 0 {
			return fmt.Errorf("workload: %s: %s profile needs period_ns > 0", label, c.Profile)
		}
	default:
		return fmt.Errorf("workload: %s: unknown profile %q (want one of %v)", label, c.Profile, Profiles())
	}
	if c.Depth < 0 || c.Depth > 1 {
		return fmt.Errorf("workload: %s: depth %g outside [0,1]", label, c.Depth)
	}
	if c.Duty < 0 || c.Duty > 1 {
		return fmt.Errorf("workload: %s: duty %g outside [0,1]", label, c.Duty)
	}
	switch c.Placement {
	case "", PlaceUniform, PlaceRackLocal, PlaceIncast:
	default:
		return fmt.Errorf("workload: %s: unknown placement %q (want one of %v)", label, c.Placement, Placements())
	}
	if c.IncastTargets < 0 {
		return fmt.Errorf("workload: %s: incast_targets %d is negative", label, c.IncastTargets)
	}
	if c.StartNs < 0 {
		return fmt.Errorf("workload: %s: start_ns %d is negative", label, c.StartNs)
	}
	if c.DurationNs < 0 {
		return fmt.Errorf("workload: %s: duration_ns %d is negative", label, c.DurationNs)
	}
	if c.MaxFlows < 0 {
		return fmt.Errorf("workload: %s: max_flows %d is negative", label, c.MaxFlows)
	}
	return nil
}

func (s *SizeSpec) validate(label string) error {
	if len(s.Mix) > 0 {
		if s.Dist != "" {
			return fmt.Errorf("workload: %s: size sets both dist %q and mix", label, s.Dist)
		}
		var total float64
		for j := range s.Mix {
			comp := &s.Mix[j]
			if len(comp.Mix) > 0 {
				return fmt.Errorf("workload: %s: size mix component %d nests a mix", label, j)
			}
			if comp.Weight < 0 {
				return fmt.Errorf("workload: %s: size mix component %d weight %g is negative", label, j, comp.Weight)
			}
			total += comp.Weight
			if err := comp.SizeSpec.validate(fmt.Sprintf("%s: size mix component %d", label, j)); err != nil {
				return err
			}
		}
		if total == 0 {
			return fmt.Errorf("workload: %s: size mix weights sum to zero", label)
		}
		return nil
	}
	switch s.Dist {
	case "": // default websearch
	case SizeLogNormal:
		if s.MeanBytes <= 0 {
			return fmt.Errorf("workload: %s: lognormal size needs mean_bytes > 0", label)
		}
		if s.Sigma < 0 {
			return fmt.Errorf("workload: %s: lognormal sigma %g is negative", label, s.Sigma)
		}
	case SizePareto:
		if s.MinBytes <= 0 {
			return fmt.Errorf("workload: %s: pareto size needs min_bytes > 0", label)
		}
		if s.Alpha <= 1 {
			return fmt.Errorf("workload: %s: pareto alpha %g must be > 1 for a finite mean", label, s.Alpha)
		}
	case SizeFixed:
		if s.Bytes <= 0 {
			return fmt.Errorf("workload: %s: fixed size needs bytes > 0", label)
		}
	default:
		if _, err := ByName(s.Dist); err != nil {
			return fmt.Errorf("workload: %s: unknown size dist %q (want %s, lognormal, pareto or fixed)",
				label, s.Dist, strings.Join(Names(), ", "))
		}
	}
	return nil
}

// sizeSampler is the resolved form of a SizeSpec.
type sizeSampler interface {
	sample(rng *rand.Rand) int64
	mean() float64
}

type distSampler struct{ d *Distribution }

func (s distSampler) sample(rng *rand.Rand) int64 { return s.d.Sample(rng) }
func (s distSampler) mean() float64               { return s.d.Mean() }

type logNormalSampler struct{ meanBytes, sigma float64 }

func (s logNormalSampler) sample(rng *rand.Rand) int64 {
	v := stats.SampleLogNormal(rng, s.meanBytes, s.sigma)
	if v < 1 {
		v = 1
	}
	return int64(v)
}
func (s logNormalSampler) mean() float64 { return s.meanBytes }

type paretoSampler struct{ minBytes, alpha float64 }

func (s paretoSampler) sample(rng *rand.Rand) int64 {
	return int64(stats.SamplePareto(rng, s.minBytes, s.alpha))
}
func (s paretoSampler) mean() float64 { return stats.ParetoMean(s.minBytes, s.alpha) }

type fixedSampler struct{ bytes int64 }

func (s fixedSampler) sample(*rand.Rand) int64 { return s.bytes }
func (s fixedSampler) mean() float64           { return float64(s.bytes) }

// mixSampler picks a component by cumulative weight, then samples it.
type mixSampler struct {
	cum   []float64 // normalized cumulative weights
	parts []sizeSampler
}

func (s mixSampler) sample(rng *rand.Rand) int64 {
	u := rng.Float64()
	for j, c := range s.cum {
		if u < c {
			return s.parts[j].sample(rng)
		}
	}
	return s.parts[len(s.parts)-1].sample(rng)
}

func (s mixSampler) mean() float64 {
	var m, prev float64
	for j, c := range s.cum {
		m += (c - prev) * s.parts[j].mean()
		prev = c
	}
	return m
}

// sampler resolves a validated SizeSpec.
func (s *SizeSpec) sampler() sizeSampler {
	if len(s.Mix) > 0 {
		var total float64
		for j := range s.Mix {
			total += s.Mix[j].Weight
		}
		ms := mixSampler{}
		var cum float64
		for j := range s.Mix {
			cum += s.Mix[j].Weight / total
			ms.cum = append(ms.cum, cum)
			ms.parts = append(ms.parts, s.Mix[j].SizeSpec.sampler())
		}
		return ms
	}
	switch s.Dist {
	case SizeLogNormal:
		return logNormalSampler{s.MeanBytes, s.Sigma}
	case SizePareto:
		return paretoSampler{s.MinBytes, s.Alpha}
	case SizeFixed:
		return fixedSampler{s.Bytes}
	}
	name := s.Dist
	if name == "" {
		name = "websearch"
	}
	d, err := ByName(name)
	if err != nil {
		panic(err) // validate vets the spec first
	}
	return distSampler{d}
}

// CohortConfig drives GenerateCohorts.
type CohortConfig struct {
	Cohorts []CohortSpec

	// Senders and Receivers are the host halves (SplitHosts).
	Senders   []topo.NodeID
	Receivers []topo.NodeID

	// CapacityBps normalizes per-cohort Load fractions.
	CapacityBps float64

	// StartNs and DurationNs bound the workload window; cohort windows
	// are relative to it.
	StartNs    int64
	DurationNs int64

	// Seed makes generation deterministic; cohort i derives its own
	// stream from it, so editing one cohort never perturbs another.
	Seed int64

	// LoadScale multiplies every cohort's rate (<= 0 means 1) — the
	// campaign load axis applied to a cohort workload.
	LoadScale float64

	// MaxFlows is the per-cohort cap for cohorts that set none
	// (0 = unlimited).
	MaxFlows int
}

// GenerateCohorts materializes every cohort's flows, concatenated in
// cohort order (arrival order within each cohort). Cohort i's flow IDs
// start at i<<32 + 1, so ID>>32 recovers the cohort index for
// class-stats attribution, mirroring surge numbering.
func GenerateCohorts(g *topo.Graph, cfg CohortConfig) ([]sim.FlowSpec, error) {
	if err := ValidateCohorts(cfg.Cohorts); err != nil {
		return nil, err
	}
	if len(cfg.Senders) == 0 || len(cfg.Receivers) == 0 {
		return nil, fmt.Errorf("workload: cohorts need hosts on both sides")
	}
	if cfg.CapacityBps <= 0 || cfg.DurationNs <= 0 {
		return nil, fmt.Errorf("workload: cohorts need capacity_bps and duration_ns")
	}
	scale := cfg.LoadScale
	if scale <= 0 {
		scale = 1
	}
	// Receivers by pod, for rack-local placement; pod -1 (no pod
	// structure) disables locality and falls back to uniform.
	byPod := map[int][]topo.NodeID{}
	for _, r := range cfg.Receivers {
		if pod := g.Node(r).Pod; pod >= 0 {
			byPod[pod] = append(byPod[pod], r)
		}
	}

	var flows []sim.FlowSpec
	for i := range cfg.Cohorts {
		c := &cfg.Cohorts[i]
		cf, err := generateCohort(g, c, i, cfg, scale, byPod)
		if err != nil {
			return nil, err
		}
		flows = append(flows, cf...)
	}
	if len(flows) == 0 {
		return nil, fmt.Errorf("workload: cohorts produced no flows")
	}
	return flows, nil
}

func generateCohort(g *topo.Graph, c *CohortSpec, i int, cfg CohortConfig, scale float64, byPod map[int][]topo.NodeID) ([]sim.FlowSpec, error) {
	// Each cohort owns an independent deterministic stream: a fixed
	// odd multiplier spreads cohort indices across seed space.
	rng := rand.New(rand.NewSource(cfg.Seed + 1_000_003*int64(i+1)))
	size := c.Size.sampler()

	weight := c.Weight
	if weight == 0 {
		weight = 1
	}
	rate := c.RateFPS // peak flows per second
	if rate == 0 {
		rate = c.Load * cfg.CapacityBps / 8 / size.mean()
	}
	rate *= weight * scale
	if rate <= 0 {
		return nil, fmt.Errorf("workload: cohort %d (%q): effective rate is zero", i, c.Name)
	}
	gap := gapSampler(c, rate)

	start := cfg.StartNs + c.StartNs
	dur := c.DurationNs
	if dur == 0 {
		dur = cfg.DurationNs - c.StartNs
	}
	if dur <= 0 {
		return nil, fmt.Errorf("workload: cohort %d (%q): window is empty (start_ns %d beyond duration)", i, c.Name, c.StartNs)
	}
	maxFlows := c.MaxFlows
	if maxFlows == 0 {
		maxFlows = cfg.MaxFlows
	}

	senders, receivers := cfg.Senders, cfg.Receivers
	if c.Placement == PlaceIncast {
		k := c.IncastTargets
		if k <= 0 {
			k = 1
		}
		if k > len(receivers) {
			k = len(receivers)
		}
		receivers = receivers[:k]
	}

	var flows []sim.FlowSpec
	id := uint64(i)<<32 + 1
	t := float64(start)
	end := float64(start + dur)
	for {
		t += gap(rng) * 1e9
		if t >= end {
			break
		}
		// Temporal profiles thin the peak-rate stream: accept each
		// candidate arrival with the profile's instantaneous factor.
		// Flat cohorts take the fast path and draw nothing extra.
		if f := profileFactor(c, int64(t)-start, dur); f < 1 {
			if f <= 0 || rng.Float64() >= f {
				continue
			}
		}
		src := senders[rng.Intn(len(senders))]
		var dst topo.NodeID
		local := byPod[g.Node(src).Pod]
		if c.Placement == PlaceRackLocal && g.Node(src).Pod >= 0 && len(local) > 0 {
			dst = local[rng.Intn(len(local))]
			for tries := 0; g.HostEdge(src) == g.HostEdge(dst) && tries < 32; tries++ {
				dst = local[rng.Intn(len(local))]
			}
			if g.HostEdge(src) == g.HostEdge(dst) {
				// The pod has no receiver past the sender's edge switch;
				// fall back to the fabric at large.
				dst = receivers[rng.Intn(len(receivers))]
			}
		} else {
			dst = receivers[rng.Intn(len(receivers))]
		}
		// Same-edge flows never cross the fabric; re-pick the end the
		// placement leaves free (incast pins its hot receivers).
		for tries := 0; g.HostEdge(src) == g.HostEdge(dst) && tries < 32; tries++ {
			if c.Placement == PlaceIncast {
				src = senders[rng.Intn(len(senders))]
			} else {
				dst = receivers[rng.Intn(len(receivers))]
			}
		}
		if g.HostEdge(src) == g.HostEdge(dst) {
			continue // degenerate host sets
		}
		flows = append(flows, sim.FlowSpec{
			ID:    id,
			Src:   src,
			Dst:   dst,
			Size:  size.sample(rng),
			Start: int64(t),
		})
		id++
		if maxFlows > 0 && len(flows) >= maxFlows {
			break
		}
	}
	return flows, nil
}

// gapSampler returns the interarrival draw (seconds) for a cohort's
// process at the given peak rate: every process is scaled so the mean
// gap is exactly 1/rate.
func gapSampler(c *CohortSpec, rate float64) func(*rand.Rand) float64 {
	shape := c.Shape
	if shape == 0 {
		shape = 1
	}
	switch c.Process {
	case ProcGamma:
		scale := 1 / (rate * shape) // mean shape*scale = 1/rate
		return func(rng *rand.Rand) float64 { return stats.SampleGamma(rng, shape, scale) }
	case ProcWeibull:
		scale := 1 / (rate * math.Gamma(1+1/shape)) // mean-matched
		return func(rng *rand.Rand) float64 { return stats.SampleWeibull(rng, shape, scale) }
	default:
		return func(rng *rand.Rand) float64 { return rng.ExpFloat64() / rate }
	}
}

// profileFactor is the instantaneous acceptance probability of a
// cohort's temporal profile at elapsed ns into its window.
func profileFactor(c *CohortSpec, elapsedNs, durNs int64) float64 {
	switch c.Profile {
	case ProfileRamp:
		if durNs <= 0 {
			return 1
		}
		return float64(elapsedNs) / float64(durNs)
	case ProfileDiurnal:
		depth := c.Depth
		if depth == 0 {
			depth = 1
		}
		u := float64(elapsedNs%c.PeriodNs) / float64(c.PeriodNs)
		return 1 - depth*(0.5+0.5*math.Cos(2*math.Pi*u))
	case ProfileBurst:
		duty := c.Duty
		if duty == 0 {
			duty = 0.1
		}
		u := float64(elapsedNs%c.PeriodNs) / float64(c.PeriodNs)
		if u < duty {
			return 1
		}
		return 0
	}
	return 1
}
