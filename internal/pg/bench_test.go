package pg

import (
	"fmt"
	"testing"

	"contra/internal/policy"
	"contra/internal/topo"
)

func BenchmarkBuildMU(b *testing.B) {
	for _, k := range []int{4, 10} {
		g := topo.Fattree(k, 0)
		pol := policy.MustParse("minimize(path.util)")
		b.Run(fmt.Sprintf("fattree-k%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Build(g, pol); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkBuildWaypoint(b *testing.B) {
	g := topo.Fattree(10, 0)
	pol := policy.MustParse("minimize(if .* (c0 + c1 + c2) .* then path.util else inf)",
		policy.ParseOptions{Symbols: g.SortedNames()})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(g, pol); err != nil {
			b.Fatal(err)
		}
	}
}
