// Package pg builds Contra's product graph (§4.1): the product of the
// network topology with one reversed DFA per policy regex. Product
// graph nodes ("virtual nodes") pair a physical switch with a vector of
// automaton states; probes flow along product graph edges from each
// destination's probe-sending state, and packets flow along the same
// edges in reverse, which is what makes forwarding policy-compliant by
// construction (§4.2).
package pg

import (
	"fmt"
	"sort"
	"strings"

	"contra/internal/automata"
	"contra/internal/policy"
	"contra/internal/topo"
)

// NodeID identifies a virtual node. It doubles as the global tag value
// carried by probes and packets in this implementation; the per-switch
// minimized tag (Node.LocalTag) is what a hardware target would encode
// in the packet header, and drives the state-size accounting.
type NodeID int32

// Node is a virtual node: a physical switch plus one automaton state
// per policy regex.
type Node struct {
	ID       NodeID
	Topo     topo.NodeID
	States   []int32 // automaton state per regex (reversed DFAs)
	Accept   []bool  // per regex: does the path this node represents match?
	LocalTag int32   // minimized per-switch tag index
	Origin   bool    // probe-sending state for its switch (§4.1)
}

// Graph is the product graph.
type Graph struct {
	Topo   *topo.Graph
	Policy *policy.Policy
	DFAs   []*automata.DFA // reversed, one per Policy.Regexes

	nodes  []Node
	out    [][]NodeID // probe-direction adjacency
	in     [][]NodeID
	byTopo map[topo.NodeID][]NodeID
	send   map[topo.NodeID]NodeID
	index  map[string]NodeID

	maxTagsPerSwitch int
}

// Build constructs the product graph for a topology and policy:
// reversed DFAs, breadth-first product exploration from every
// destination's probe-sending state, usefulness pruning, and local tag
// assignment.
func Build(t *topo.Graph, pol *policy.Policy) (*Graph, error) {
	alphabet := t.SortedNames()
	g := &Graph{
		Topo:   t,
		Policy: pol,
		byTopo: make(map[topo.NodeID][]NodeID),
		send:   make(map[topo.NodeID]NodeID),
		index:  make(map[string]NodeID),
	}
	for _, r := range pol.Regexes {
		g.DFAs = append(g.DFAs, automata.BuildReversed(r, alphabet))
	}

	// Probe-sending states: for destination X the automata have
	// consumed the single symbol X.
	switches := t.Switches()
	type work struct{ id NodeID }
	var queue []work
	for _, x := range switches {
		states := make([]int32, len(g.DFAs))
		name := t.Node(x).Name
		for i, d := range g.DFAs {
			states[i] = int32(d.StepName(d.Start, name))
		}
		id := g.intern(x, states)
		g.nodes[id].Origin = true
		g.send[x] = id
		queue = append(queue, work{id})
	}

	// BFS along probe edges: from (X, s) to (X', step(s, X')) for each
	// switch neighbor X'.
	for len(queue) > 0 {
		w := queue[0]
		queue = queue[1:]
		v := g.nodes[w.id]
		x := v.Topo
		for _, nb := range t.SwitchNeighbors(x) {
			nbName := t.Node(nb).Name
			next := make([]int32, len(g.DFAs))
			for i, d := range g.DFAs {
				next[i] = int32(d.StepName(int(v.States[i]), nbName))
			}
			key := stateKey(nb, next)
			to, exists := g.index[key]
			if !exists {
				to = g.intern(nb, next)
				queue = append(queue, work{to})
			}
			g.addEdge(w.id, to)
		}
	}

	g.prune()
	g.assignTags()
	return g, nil
}

func stateKey(x topo.NodeID, states []int32) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d", x)
	for _, s := range states {
		fmt.Fprintf(&b, ":%d", s)
	}
	return b.String()
}

func (g *Graph) intern(x topo.NodeID, states []int32) NodeID {
	key := stateKey(x, states)
	if id, ok := g.index[key]; ok {
		return id
	}
	id := NodeID(len(g.nodes))
	accept := make([]bool, len(g.DFAs))
	for i, d := range g.DFAs {
		accept[i] = d.Accept[states[i]]
	}
	g.nodes = append(g.nodes, Node{
		ID:     id,
		Topo:   x,
		States: append([]int32(nil), states...),
		Accept: accept,
	})
	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	g.index[key] = id
	g.byTopo[x] = append(g.byTopo[x], id)
	return id
}

func (g *Graph) addEdge(from, to NodeID) {
	for _, e := range g.out[from] {
		if e == to {
			return
		}
	}
	g.out[from] = append(g.out[from], to)
	g.in[to] = append(g.in[to], from)
}

// prune removes virtual nodes that can never contribute to a finite
// routing decision: a node is useful if the policy can rank a path
// with its acceptance bits below inf (it can serve as a source's
// decision state), or if a probe passing through it can reach such a
// node. Pruning keeps probe fan-out minimal (§4's "avoid sending a
// large number of probes").
func (g *Graph) prune() {
	useful := make([]bool, len(g.nodes))
	var stack []NodeID
	for i := range g.nodes {
		if g.possiblyFinite(g.nodes[i].Accept) {
			useful[i] = true
			stack = append(stack, NodeID(i))
		}
	}
	// A probe is useful at v if it can still become useful downstream
	// (probe direction): propagate usefulness backwards over out-edges.
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, u := range g.in[v] {
			if !useful[u] {
				useful[u] = true
				stack = append(stack, u)
			}
		}
	}

	// Compact.
	remap := make([]NodeID, len(g.nodes))
	for i := range remap {
		remap[i] = -1
	}
	var nodes []Node
	for i := range g.nodes {
		if useful[i] {
			remap[i] = NodeID(len(nodes))
			n := g.nodes[i]
			n.ID = remap[i]
			nodes = append(nodes, n)
		}
	}
	out := make([][]NodeID, len(nodes))
	in := make([][]NodeID, len(nodes))
	for i := range g.nodes {
		if remap[i] < 0 {
			continue
		}
		for _, to := range g.out[i] {
			if remap[to] >= 0 {
				out[remap[i]] = append(out[remap[i]], remap[to])
				in[remap[to]] = append(in[remap[to]], remap[i])
			}
		}
	}
	g.nodes, g.out, g.in = nodes, out, in
	g.index = make(map[string]NodeID, len(nodes))
	g.byTopo = make(map[topo.NodeID][]NodeID)
	oldSend := g.send
	g.send = make(map[topo.NodeID]NodeID)
	for i := range g.nodes {
		n := &g.nodes[i]
		g.index[stateKey(n.Topo, n.States)] = n.ID
		g.byTopo[n.Topo] = append(g.byTopo[n.Topo], n.ID)
	}
	for x, v := range oldSend {
		if remap[v] >= 0 {
			g.send[x] = remap[v]
		}
	}
}

// possiblyFinite reports whether the policy, with the given regex
// match outcomes fixed, can evaluate below inf for some metric values.
func (g *Graph) possiblyFinite(accept []bool) bool {
	return exprPossiblyFinite(g.Policy.Body, accept)
}

func exprPossiblyFinite(e policy.Expr, accept []bool) bool {
	switch x := e.(type) {
	case *policy.Const, *policy.Attr:
		return true
	case *policy.Inf:
		return false
	case *policy.Bin:
		return exprPossiblyFinite(x.L, accept) && exprPossiblyFinite(x.R, accept)
	case *policy.Tuple:
		for _, el := range x.Elems {
			if !exprPossiblyFinite(el, accept) {
				return false
			}
		}
		return true
	case *policy.If:
		val, known := condKnown(x.Cond, accept)
		if !known {
			return exprPossiblyFinite(x.Then, accept) || exprPossiblyFinite(x.Else, accept)
		}
		if val {
			return exprPossiblyFinite(x.Then, accept)
		}
		return exprPossiblyFinite(x.Else, accept)
	}
	return true
}

// condKnown evaluates a condition when it depends only on regex
// matches; metric comparisons are unknown at compile time.
func condKnown(c policy.Cond, accept []bool) (val, known bool) {
	switch x := c.(type) {
	case *policy.Match:
		if x.ID >= 0 && x.ID < len(accept) {
			return accept[x.ID], true
		}
		return false, false
	case *policy.Cmp:
		return false, false
	case *policy.Not:
		v, k := condKnown(x.C, accept)
		return !v, k
	case *policy.And:
		lv, lk := condKnown(x.L, accept)
		rv, rk := condKnown(x.R, accept)
		if lk && !lv || rk && !rv {
			return false, true
		}
		return lv && rv, lk && rk
	case *policy.Or:
		lv, lk := condKnown(x.L, accept)
		rv, rk := condKnown(x.R, accept)
		if lk && lv || rk && rv {
			return true, true
		}
		return lv || rv, lk && rk
	}
	return false, false
}

// assignTags gives each virtual node a per-switch local tag, ordered
// deterministically by state vector. A hardware target encodes
// ceil(log2(max tags per switch)) bits in the packet header.
func (g *Graph) assignTags() {
	g.maxTagsPerSwitch = 0
	for _, ids := range g.byTopo {
		sort.Slice(ids, func(a, b int) bool {
			return stateLess(g.nodes[ids[a]].States, g.nodes[ids[b]].States)
		})
		for i, id := range ids {
			g.nodes[id].LocalTag = int32(i)
		}
		if len(ids) > g.maxTagsPerSwitch {
			g.maxTagsPerSwitch = len(ids)
		}
	}
}

func stateLess(a, b []int32) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// NumNodes returns the number of virtual nodes after pruning.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// Node returns a virtual node.
func (g *Graph) Node(id NodeID) *Node { return &g.nodes[id] }

// Out returns v's probe-direction successors.
func (g *Graph) Out(v NodeID) []NodeID { return g.out[v] }

// In returns v's probe-direction predecessors.
func (g *Graph) In(v NodeID) []NodeID { return g.in[v] }

// VirtualNodes returns the virtual nodes of a physical switch.
func (g *Graph) VirtualNodes(x topo.NodeID) []NodeID { return g.byTopo[x] }

// SendState returns the probe-sending state for destination x, if x is
// a valid destination under the policy.
func (g *Graph) SendState(x topo.NodeID) (NodeID, bool) {
	v, ok := g.send[x]
	return v, ok
}

// Transition returns the product graph successor of v at neighbor
// switch nb, if the edge survived pruning. This is NEXTPGNODE from
// Figure 7, resolved from the receiving side.
func (g *Graph) Transition(v NodeID, nb topo.NodeID) (NodeID, bool) {
	for _, u := range g.out[v] {
		if g.nodes[u].Topo == nb {
			return u, true
		}
	}
	return 0, false
}

// MaxTagsPerSwitch returns the largest number of virtual nodes on any
// single switch: the quantity that sizes the packet tag field.
func (g *Graph) MaxTagsPerSwitch() int { return g.maxTagsPerSwitch }

// TagBits returns the packet header bits needed for the minimized tag.
func (g *Graph) TagBits() int {
	bits := 0
	for 1<<bits < g.maxTagsPerSwitch {
		bits++
	}
	return bits
}

// Accepts reports whether virtual node v's path matches regex id.
func (g *Graph) Accepts(v NodeID, regexID int) bool {
	return g.nodes[v].Accept[regexID]
}

// ProbeWalk simulates a probe traveling the reverse of the traffic
// path (destination first): it returns the virtual node reached, or
// false if the walk leaves the product graph. Used by tests to verify
// that every policy-compliant physical path is represented.
func (g *Graph) ProbeWalk(reversePath []topo.NodeID) (NodeID, bool) {
	if len(reversePath) == 0 {
		return 0, false
	}
	v, ok := g.SendState(reversePath[0])
	if !ok {
		return 0, false
	}
	for _, x := range reversePath[1:] {
		v, ok = g.Transition(v, x)
		if !ok {
			return 0, false
		}
	}
	return v, true
}

// String summarizes the product graph.
func (g *Graph) String() string {
	return fmt.Sprintf("product graph: %d virtual nodes over %d switches, %d regexes, max %d tags/switch (%d tag bits)",
		len(g.nodes), len(g.byTopo), len(g.DFAs), g.maxTagsPerSwitch, g.TagBits())
}

// Dump renders every virtual node and edge for debugging.
func (g *Graph) Dump() string {
	var b strings.Builder
	b.WriteString(g.String())
	b.WriteByte('\n')
	for i := range g.nodes {
		n := &g.nodes[i]
		mark := " "
		if n.Origin {
			mark = "!"
		}
		fmt.Fprintf(&b, "%s %s%d %v accept=%v ->", mark, g.Topo.Node(n.Topo).Name, n.LocalTag, n.States, n.Accept)
		for _, u := range g.out[i] {
			un := &g.nodes[u]
			fmt.Fprintf(&b, " %s%d", g.Topo.Node(un.Topo).Name, un.LocalTag)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
