package pg

import (
	"math/rand"
	"testing"

	"contra/internal/policy"
	"contra/internal/topo"
)

func build(t *testing.T, g *topo.Graph, src string) *Graph {
	t.Helper()
	pol, err := policy.Parse(src, policy.ParseOptions{Symbols: g.SortedNames()})
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	pgr, err := Build(g, pol)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return pgr
}

func TestMinUtilProductGraphIsTopology(t *testing.T) {
	// With no regexes there is exactly one virtual node per switch and
	// the product graph is the topology itself (both directions).
	g := topo.Fig4Square()
	pgr := build(t, g, "minimize(path.util)")
	if pgr.NumNodes() != len(g.Switches()) {
		t.Fatalf("virtual nodes = %d, want %d\n%s", pgr.NumNodes(), len(g.Switches()), pgr.Dump())
	}
	edges := 0
	for v := 0; v < pgr.NumNodes(); v++ {
		edges += len(pgr.Out(NodeID(v)))
	}
	if edges != 2*g.NumLinks() {
		t.Fatalf("PG edges = %d, want %d", edges, 2*g.NumLinks())
	}
	if pgr.MaxTagsPerSwitch() != 1 || pgr.TagBits() != 0 {
		t.Fatalf("MU needs 1 tag (0 bits), got %d (%d bits)", pgr.MaxTagsPerSwitch(), pgr.TagBits())
	}
	for _, x := range g.Switches() {
		if _, ok := pgr.SendState(x); !ok {
			t.Fatalf("switch %s should be a valid destination", g.Node(x).Name)
		}
	}
}

func TestFig6RunningExample(t *testing.T) {
	// The paper's running example (Figure 6): A may use exactly path
	// ABD; B may use any path to D, least utilized; everything else is
	// disallowed.
	g := topo.Fig6()
	pgr := build(t, g, "minimize(if A B D then 0 else if B .* D then path.util else inf)")

	count := func(name string) int {
		return len(pgr.VirtualNodes(g.MustNode(name)))
	}
	// Figure 6(d): C has C0; B has B0 and B1; A has A0, A1. D has its
	// sending state plus possibly a transit state for (non-simple)
	// B.*D paths that revisit D; the data plane never uses the latter
	// because probes are dropped at their origin switch.
	if count("C") != 1 || count("B") != 2 || count("A") != 2 {
		t.Fatalf("virtual node counts D=%d C=%d B=%d A=%d, want C=1 B=2 A=2\n%s",
			count("D"), count("C"), count("B"), count("A"), pgr.Dump())
	}
	if count("D") < 1 || count("D") > 2 {
		t.Fatalf("D virtual nodes = %d, want 1 or 2", count("D"))
	}
	// Only D is a valid destination: the regexes end at D.
	for _, name := range []string{"A", "B", "C"} {
		if _, ok := pgr.SendState(g.MustNode(name)); ok {
			t.Errorf("%s should not be a destination under this policy", name)
		}
	}
	if _, ok := pgr.SendState(g.MustNode("D")); !ok {
		t.Fatal("D must be a destination")
	}
	// Tag field: max 2 tags per switch = 1 bit.
	if pgr.TagBits() != 1 {
		t.Fatalf("tag bits = %d, want 1", pgr.TagBits())
	}
}

func TestProbeWalkMatchesCompliance(t *testing.T) {
	// For every simple path, the reverse probe walk exists iff it can
	// reach a decision, and the acceptance bits at the walked node
	// agree with reference regex matching.
	topos := []*topo.Graph{topo.Fig4Square(), topo.Fig5Diamond(), topo.Fig6(), topo.Fig8Zigzag()}
	policies := []string{
		"minimize(path.util)",
		"minimize(if A B D then 0 else if B .* D then path.util else inf)",
		"minimize(if .* B .* then path.util else inf)",
		"minimize(if .* B A .* then inf else path.util)",
		"minimize(if A .* then path.util else path.lat)",
	}
	for _, g := range topos {
		for _, src := range policies {
			pol, err := policy.Parse(src, policy.ParseOptions{Symbols: g.SortedNames()})
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			pgr, err := Build(g, pol)
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			sw := g.Switches()
			for _, src := range sw {
				for _, dst := range sw {
					if src == dst {
						continue
					}
					for _, path := range g.AllSimplePaths(src, dst, 6, 200) {
						names := g.Names(path)
						rank := pol.RankPath(policy.PathInfo{Nodes: names, Util: 0.5, Lat: 0.001})
						rev := make([]topo.NodeID, len(path))
						for i, n := range path {
							rev[len(path)-1-i] = n
						}
						v, ok := pgr.ProbeWalk(rev)
						if rank.IsInf() {
							// Non-compliant paths may or may not exist in
							// the PG (they can be prefixes of compliant
							// ones); nothing to check unless the walk
							// exists and claims acceptance that would
							// make it finite.
							if ok {
								finiteBits := pgr.possiblyFinite(pgr.Node(v).Accept)
								_ = finiteBits // acceptance simply reflects regex matches; verified below
							}
							continue
						}
						if !ok {
							t.Fatalf("%s / %s: compliant path %v missing from PG\n%s",
								g.Name, pol.String(), names, pgr.Dump())
						}
						for i, re := range pol.Regexes {
							want := policy.MatchPath(re, names)
							if got := pgr.Accepts(v, i); got != want {
								t.Fatalf("%s / %s: path %v regex %d accept=%v want %v",
									g.Name, pol.String(), names, i, got, want)
							}
						}
					}
				}
			}
		}
	}
}

func TestEdgesProjectToTopology(t *testing.T) {
	g := topo.Fig8Zigzag()
	pgr := build(t, g, "minimize(if S C E F D + S A E B D then path.util else inf)")
	for v := 0; v < pgr.NumNodes(); v++ {
		vx := pgr.Node(NodeID(v)).Topo
		for _, u := range pgr.Out(NodeID(v)) {
			ux := pgr.Node(u).Topo
			if g.LinkBetween(vx, ux) == nil {
				t.Fatalf("PG edge %d->%d does not project to a topology link", v, u)
			}
		}
	}
}

func TestZigzagExcluded(t *testing.T) {
	// Figure 8(a) policy: only the upper (SCEFD) and lower (SAEBD)
	// paths are allowed; the zig-zag SCEBD and SAEFD are not.
	g := topo.Fig8Zigzag()
	pgr := build(t, g, "minimize(if S C E F D + S A E B D then path.util else inf)")
	walk := func(names ...string) bool {
		rev := make([]topo.NodeID, len(names))
		for i, n := range names {
			rev[len(names)-1-i] = g.MustNode(n)
		}
		v, ok := pgr.ProbeWalk(rev)
		if !ok {
			return false
		}
		return pgr.possiblyFinite(pgr.Node(v).Accept)
	}
	if !walk("S", "C", "E", "F", "D") {
		t.Fatal("upper path should be representable and finite")
	}
	if !walk("S", "A", "E", "B", "D") {
		t.Fatal("lower path should be representable and finite")
	}
	if walk("S", "C", "E", "B", "D") {
		t.Fatal("zig-zag SCEBD must not evaluate finite")
	}
	if walk("S", "A", "E", "F", "D") {
		t.Fatal("zig-zag SAEFD must not evaluate finite")
	}
	// E needs separate tags to distinguish upper from lower traffic.
	if n := len(pgr.VirtualNodes(g.MustNode("E"))); n < 2 {
		t.Fatalf("E has %d virtual nodes, want >= 2 to separate the paths\n%s", n, pgr.Dump())
	}
}

func TestWaypointPruning(t *testing.T) {
	// Waypoint through B: only paths via B are useful. On the square,
	// destination D's send state exists, and no virtual node claims a
	// finite rank without having passed B.
	g := topo.Fig4Square()
	pgr := build(t, g, "minimize(if .* B .* then path.util else inf)")
	for v := 0; v < pgr.NumNodes(); v++ {
		n := pgr.Node(NodeID(v))
		if n.Accept[0] {
			continue
		}
		// Non-accepting nodes must still be able to reach an accepting
		// one (usefulness pruning).
		found := false
		var dfs func(NodeID, map[NodeID]bool)
		dfs = func(u NodeID, seen map[NodeID]bool) {
			if seen[u] || found {
				return
			}
			seen[u] = true
			if pgr.Node(u).Accept[0] {
				found = true
				return
			}
			for _, w := range pgr.Out(u) {
				dfs(w, seen)
			}
		}
		dfs(NodeID(v), map[NodeID]bool{})
		if !found {
			t.Fatalf("useless virtual node survived pruning: %s\n%s",
				g.Node(n.Topo).Name, pgr.Dump())
		}
	}
}

func TestTransitionDeterminism(t *testing.T) {
	// At most one PG successor per (node, neighbor): the DFA product is
	// deterministic.
	g := topo.Fig6()
	pgr := build(t, g, "minimize(if A B D then 0 else if B .* D then path.util else inf)")
	for v := 0; v < pgr.NumNodes(); v++ {
		seen := map[topo.NodeID]bool{}
		for _, u := range pgr.Out(NodeID(v)) {
			x := pgr.Node(u).Topo
			if seen[x] {
				t.Fatalf("node %d has two successors at switch %s", v, g.Node(x).Name)
			}
			seen[x] = true
		}
	}
}

func TestScaleFattree(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	g := topo.Fattree(4, 0)
	pgr := build(t, g, "minimize(path.util)")
	if pgr.NumNodes() != 20 {
		t.Fatalf("MU on fattree-4: %d virtual nodes, want 20", pgr.NumNodes())
	}
	// Waypoint through two cores.
	pgr2 := build(t, g, "minimize(if .* (c0 + c1) .* then path.util else inf)")
	if pgr2.NumNodes() < 20 {
		t.Fatalf("WP should have at least one node per switch, got %d", pgr2.NumNodes())
	}
	if pgr2.TagBits() < 1 {
		t.Fatal("WP needs at least 1 tag bit")
	}
}

func TestRandomGraphsNeverPanic(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 10; trial++ {
		g := topo.RandomConnected(10+rng.Intn(20), 3, int64(trial))
		names := g.SortedNames()
		w := names[rng.Intn(len(names))]
		for _, src := range []string{
			"minimize(path.util)",
			"minimize(if .* " + w + " .* then path.util else inf)",
			"minimize((path.len, path.util))",
		} {
			pgr := build(t, g, src)
			if pgr.NumNodes() == 0 {
				t.Fatalf("empty PG for %s on %s", src, g.Name)
			}
		}
	}
}
