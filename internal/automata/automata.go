// Package automata converts the policy language's regular path
// expressions into deterministic finite automata over a topology's
// switch alphabet. The Contra compiler builds one DFA per distinct
// regex — reversed, because probes travel opposite to traffic — and
// forms their product with the topology (§4.1 of the paper).
package automata

import (
	"fmt"
	"sort"
	"strings"

	"contra/internal/policy"
)

// DFA is a deterministic automaton over a fixed, finite alphabet of
// switch names. It is always complete: every (state, symbol) pair has
// a transition, with non-matching paths falling into a dead ("garbage")
// state.
type DFA struct {
	Alphabet []string // symbol index -> switch name
	Start    int
	Accept   []bool    // per state
	Trans    [][]int32 // Trans[state][symbol] -> state
	Live     []bool    // Live[state]: an accepting state is reachable

	symIndex map[string]int
}

// NumStates returns the number of DFA states.
func (d *DFA) NumStates() int { return len(d.Trans) }

// Sym returns the symbol index of a switch name.
func (d *DFA) Sym(name string) (int, bool) {
	i, ok := d.symIndex[name]
	return i, ok
}

// Step advances the automaton.
func (d *DFA) Step(state int, sym int) int { return int(d.Trans[state][sym]) }

// StepName advances by switch name; unknown names go to a dead state.
func (d *DFA) StepName(state int, name string) int {
	i, ok := d.symIndex[name]
	if !ok {
		// Unknown symbols can never match an RSym and match RDot only
		// if the alphabet covered them; with a topology-derived
		// alphabet this cannot happen. Fall to a dead state.
		for s := range d.Live {
			if !d.Live[s] {
				return s
			}
		}
		return state
	}
	return int(d.Trans[state][i])
}

// Match runs the automaton over a path of switch names.
func (d *DFA) Match(path []string) bool {
	s := d.Start
	for _, name := range path {
		i, ok := d.symIndex[name]
		if !ok {
			return false
		}
		s = int(d.Trans[s][i])
	}
	return d.Accept[s]
}

// String renders a compact description for debugging.
func (d *DFA) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "DFA %d states, start %d, alphabet %v\n", len(d.Trans), d.Start, d.Alphabet)
	for s := range d.Trans {
		mark := " "
		if d.Accept[s] {
			mark = "*"
		}
		live := " "
		if !d.Live[s] {
			live = "†"
		}
		fmt.Fprintf(&b, "%s%s%2d:", mark, live, s)
		for a, t := range d.Trans[s] {
			fmt.Fprintf(&b, " %s→%d", d.Alphabet[a], t)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Build compiles a regular path expression into a minimal complete DFA
// over the given alphabet. Symbols mentioned by the regex that are not
// in the alphabet make the corresponding branches unmatchable (they are
// simply absent from the topology).
func Build(r policy.Regex, alphabet []string) *DFA {
	n := buildNFA(r, alphabet)
	d := subsetConstruct(n, alphabet)
	d = minimize(d)
	d.computeLive()
	return d
}

// BuildReversed compiles the reversal of r, which is what probe
// propagation needs (§4.1: probes travel destination→sources).
func BuildReversed(r policy.Regex, alphabet []string) *DFA {
	return Build(policy.Reverse(r), alphabet)
}

// ---- Thompson NFA over symbol indices ----

type nfa struct {
	// trans[state] = per-symbol target sets; dotTrans for '.'.
	symTrans []map[int][]int // state -> symbol -> targets
	dotTrans [][]int         // state -> targets on any symbol
	eps      [][]int
	start    int
	accept   int
}

func (n *nfa) addState() int {
	n.symTrans = append(n.symTrans, nil)
	n.dotTrans = append(n.dotTrans, nil)
	n.eps = append(n.eps, nil)
	return len(n.symTrans) - 1
}

func (n *nfa) addSym(from, sym, to int) {
	if n.symTrans[from] == nil {
		n.symTrans[from] = make(map[int][]int)
	}
	n.symTrans[from][sym] = append(n.symTrans[from][sym], to)
}

func buildNFA(r policy.Regex, alphabet []string) *nfa {
	idx := make(map[string]int, len(alphabet))
	for i, s := range alphabet {
		idx[s] = i
	}
	n := &nfa{}
	n.start = n.addState()
	n.accept = n.fragment(r, n.start, idx)
	return n
}

// fragment wires the NFA fragment for r from state `from`, returning
// the fragment's accepting state.
func (n *nfa) fragment(r policy.Regex, from int, idx map[string]int) int {
	switch x := r.(type) {
	case *policy.RSym:
		to := n.addState()
		if sym, ok := idx[x.Name]; ok {
			n.addSym(from, sym, to)
		}
		// Symbol not in alphabet: no transition; fragment unmatchable.
		return to
	case *policy.RDot:
		to := n.addState()
		n.dotTrans[from] = append(n.dotTrans[from], to)
		return to
	case *policy.RCat:
		mid := n.fragment(x.L, from, idx)
		return n.fragment(x.R, mid, idx)
	case *policy.RAlt:
		l := n.fragment(x.L, from, idx)
		r2 := n.fragment(x.R, from, idx)
		to := n.addState()
		n.eps[l] = append(n.eps[l], to)
		n.eps[r2] = append(n.eps[r2], to)
		return to
	case *policy.RStar:
		hub := n.addState()
		n.eps[from] = append(n.eps[from], hub)
		end := n.fragment(x.X, hub, idx)
		n.eps[end] = append(n.eps[end], hub)
		return hub
	}
	panic("automata: unknown regex node")
}

func (n *nfa) closure(set []int) []int {
	seen := make(map[int]bool, len(set))
	stack := append([]int(nil), set...)
	for _, s := range set {
		seen[s] = true
	}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, t := range n.eps[s] {
			if !seen[t] {
				seen[t] = true
				stack = append(stack, t)
			}
		}
	}
	out := make([]int, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

// ---- subset construction ----

func setKey(set []int) string {
	var b strings.Builder
	for i, s := range set {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", s)
	}
	return b.String()
}

func subsetConstruct(n *nfa, alphabet []string) *DFA {
	d := &DFA{Alphabet: append([]string(nil), alphabet...)}
	d.symIndex = make(map[string]int, len(alphabet))
	for i, s := range alphabet {
		d.symIndex[s] = i
	}
	nsym := len(alphabet)

	startSet := n.closure([]int{n.start})
	index := map[string]int{setKey(startSet): 0}
	sets := [][]int{startSet}
	d.Trans = append(d.Trans, make([]int32, nsym))
	var queue = []int{0}

	accepts := func(set []int) bool {
		for _, s := range set {
			if s == n.accept {
				return true
			}
		}
		return false
	}
	d.Accept = append(d.Accept, accepts(startSet))

	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		set := sets[cur]
		for sym := 0; sym < nsym; sym++ {
			var next []int
			for _, s := range set {
				next = append(next, n.dotTrans[s]...)
				if n.symTrans[s] != nil {
					next = append(next, n.symTrans[s][sym]...)
				}
			}
			nset := n.closure(dedupInts(next))
			key := setKey(nset)
			to, ok := index[key]
			if !ok {
				to = len(sets)
				index[key] = to
				sets = append(sets, nset)
				d.Trans = append(d.Trans, make([]int32, nsym))
				d.Accept = append(d.Accept, accepts(nset))
				queue = append(queue, to)
			}
			d.Trans[cur][sym] = int32(to)
		}
	}
	d.Start = 0
	return d
}

func dedupInts(xs []int) []int {
	if len(xs) == 0 {
		return xs
	}
	sort.Ints(xs)
	out := xs[:1]
	for _, x := range xs[1:] {
		if x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}

// ---- Moore minimization ----

func minimize(d *DFA) *DFA {
	n := len(d.Trans)
	nsym := len(d.Alphabet)
	part := make([]int, n) // state -> partition id
	for s := 0; s < n; s++ {
		if d.Accept[s] {
			part[s] = 1
		}
	}
	numParts := 2
	// Handle all-accepting or none-accepting uniformly.
	for {
		// Signature: (part, parts of successors).
		type sigKey string
		sigOf := func(s int) sigKey {
			var b strings.Builder
			fmt.Fprintf(&b, "%d", part[s])
			for sym := 0; sym < nsym; sym++ {
				fmt.Fprintf(&b, ",%d", part[d.Trans[s][sym]])
			}
			return sigKey(b.String())
		}
		index := make(map[sigKey]int)
		newPart := make([]int, n)
		next := 0
		for s := 0; s < n; s++ {
			k := sigOf(s)
			id, ok := index[k]
			if !ok {
				id = next
				next++
				index[k] = id
			}
			newPart[s] = id
		}
		if next == numParts {
			part = newPart
			break
		}
		part, numParts = newPart, next
	}

	nd := &DFA{
		Alphabet: d.Alphabet,
		symIndex: d.symIndex,
		Start:    part[d.Start],
		Accept:   make([]bool, numParts),
		Trans:    make([][]int32, numParts),
	}
	for s := 0; s < n; s++ {
		p := part[s]
		if nd.Trans[p] == nil {
			nd.Trans[p] = make([]int32, nsym)
			for sym := 0; sym < nsym; sym++ {
				nd.Trans[p][sym] = int32(part[d.Trans[s][sym]])
			}
			nd.Accept[p] = d.Accept[s]
		}
	}
	return nd
}

// computeLive marks states from which some accepting state is
// reachable. Dead (non-live) states are the paper's "garbage" states:
// probes reaching an all-dead state vector are dropped.
func (d *DFA) computeLive() {
	n := len(d.Trans)
	rev := make([][]int32, n)
	for s := 0; s < n; s++ {
		for _, t := range d.Trans[s] {
			rev[t] = append(rev[t], int32(s))
		}
	}
	live := make([]bool, n)
	var stack []int32
	for s := 0; s < n; s++ {
		if d.Accept[s] {
			live[s] = true
			stack = append(stack, int32(s))
		}
	}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range rev[s] {
			if !live[p] {
				live[p] = true
				stack = append(stack, p)
			}
		}
	}
	d.Live = live
}
