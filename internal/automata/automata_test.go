package automata

import (
	"math/rand"
	"testing"

	"contra/internal/policy"
)

var alphabet = []string{"A", "B", "C", "D", "W"}

func regexOf(t *testing.T, src string) policy.Regex {
	t.Helper()
	p, err := policy.Parse("minimize(if " + src + " then 0 else 1)")
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return p.Regexes[0]
}

func TestDFAMatchesReference(t *testing.T) {
	// The DFA must agree with the reference NFA matcher on random
	// paths, for a spread of regex shapes.
	regexes := []string{
		"A B D",
		"A .*",
		".* W .*",
		"(A + B) D",
		"A (B C)* D",
		". . .",
		".* A B .*",
		"A* B*",
		".* (A + B) .* (C + D) .*",
		"A B D + A C D",
	}
	rng := rand.New(rand.NewSource(3))
	for _, src := range regexes {
		re := regexOf(t, src)
		d := Build(re, alphabet)
		for i := 0; i < 500; i++ {
			n := rng.Intn(6)
			path := make([]string, n)
			for j := range path {
				path[j] = alphabet[rng.Intn(len(alphabet))]
			}
			want := policy.MatchPath(re, path)
			if got := d.Match(path); got != want {
				t.Fatalf("regex %q path %v: DFA=%v reference=%v\n%s", src, path, got, want, d)
			}
		}
	}
}

func TestReversedDFA(t *testing.T) {
	// BuildReversed(r) must accept exactly the reversals of paths
	// accepted by Build(r).
	rng := rand.New(rand.NewSource(4))
	for _, src := range []string{"A B D", ".* W .*", "A .* D", "(A+B) C*"} {
		re := regexOf(t, src)
		fwd := Build(re, alphabet)
		rev := BuildReversed(re, alphabet)
		for i := 0; i < 300; i++ {
			n := rng.Intn(5)
			path := make([]string, n)
			rpath := make([]string, n)
			for j := range path {
				path[j] = alphabet[rng.Intn(len(alphabet))]
				rpath[n-1-j] = path[j]
			}
			if fwd.Match(path) != rev.Match(rpath) {
				t.Fatalf("regex %q: fwd(%v) != rev(reverse)", src, path)
			}
		}
	}
}

func TestMinimization(t *testing.T) {
	// (A + B) (A + B) and ". ." restricted to {A,B} are equivalent;
	// both should minimize to the same number of states.
	a := Build(regexOf(t, "(A + B) (A + B)"), []string{"A", "B"})
	b := Build(regexOf(t, ". ."), []string{"A", "B"})
	if a.NumStates() != b.NumStates() {
		t.Fatalf("equivalent DFAs with different sizes: %d vs %d", a.NumStates(), b.NumStates())
	}
	// Minimal DFA for ". ." over a 2-symbol alphabet: states for
	// lengths 0,1,2 plus dead = 4.
	if b.NumStates() != 4 {
		t.Fatalf("'. .' states = %d, want 4\n%s", b.NumStates(), b)
	}
}

func TestDotStarIsOneState(t *testing.T) {
	d := Build(regexOf(t, ".*"), alphabet)
	if d.NumStates() != 1 {
		t.Fatalf(".* states = %d, want 1\n%s", d.NumStates(), d)
	}
	if !d.Accept[d.Start] || !d.Live[d.Start] {
		t.Fatal(".* must accept everything")
	}
}

func TestLiveStates(t *testing.T) {
	d := Build(regexOf(t, "A B"), alphabet)
	// After seeing a non-A symbol first, we are dead.
	s := d.StepName(d.Start, "C")
	if d.Live[s] {
		t.Fatalf("state after C should be dead\n%s", d)
	}
	s = d.StepName(d.Start, "A")
	if !d.Live[s] {
		t.Fatal("state after A should be live")
	}
	s = d.StepName(s, "B")
	if !d.Accept[s] {
		t.Fatal("AB should accept")
	}
	// Extending past the accept kills it.
	s = d.StepName(s, "B")
	if d.Live[s] {
		t.Fatal("ABB should be dead")
	}
}

func TestSymbolsOutsideAlphabet(t *testing.T) {
	// Regex mentions W, which is not in this topology's alphabet: the
	// branch is simply unmatchable.
	d := Build(regexOf(t, ".* W .*"), []string{"A", "B"})
	if d.Match([]string{"A", "B"}) {
		t.Fatal("W branch should be unmatchable")
	}
	// Every state should be dead.
	for s := range d.Live {
		if d.Live[s] {
			t.Fatalf("state %d live in unmatchable DFA", s)
		}
	}
}

func TestEmptyPathMatch(t *testing.T) {
	d := Build(regexOf(t, "A*"), alphabet)
	if !d.Match(nil) {
		t.Fatal("A* should match the empty path")
	}
	d2 := Build(regexOf(t, "A"), alphabet)
	if d2.Match(nil) {
		t.Fatal("A should not match the empty path")
	}
}

func TestDFACompleteness(t *testing.T) {
	// Every state must have a transition for every symbol (complete
	// DFA), and all targets in range.
	for _, src := range []string{"A B D", ".* W .*", "A (B C)* D"} {
		d := Build(regexOf(t, src), alphabet)
		for s := range d.Trans {
			if len(d.Trans[s]) != len(alphabet) {
				t.Fatalf("%q state %d has %d transitions", src, s, len(d.Trans[s]))
			}
			for _, to := range d.Trans[s] {
				if int(to) < 0 || int(to) >= d.NumStates() {
					t.Fatalf("%q transition out of range", src)
				}
			}
		}
	}
}

func TestStepNameUnknownSymbol(t *testing.T) {
	d := Build(regexOf(t, "A .*"), []string{"A", "B"})
	s := d.StepName(d.Start, "ZZZ")
	if d.Live[s] {
		t.Fatal("unknown symbol should lead to a dead state")
	}
}

func TestRandomizedEquivalenceAfterMinimization(t *testing.T) {
	// Property: for random regexes, the minimized DFA agrees with the
	// reference matcher everywhere (sampled).
	rng := rand.New(rand.NewSource(5))
	var gen func(depth int) policy.Regex
	gen = func(depth int) policy.Regex {
		if depth == 0 || rng.Intn(3) == 0 {
			if rng.Intn(4) == 0 {
				return &policy.RDot{}
			}
			return &policy.RSym{Name: alphabet[rng.Intn(len(alphabet))]}
		}
		switch rng.Intn(3) {
		case 0:
			return &policy.RCat{L: gen(depth - 1), R: gen(depth - 1)}
		case 1:
			return &policy.RAlt{L: gen(depth - 1), R: gen(depth - 1)}
		default:
			return &policy.RStar{X: gen(depth - 1)}
		}
	}
	for trial := 0; trial < 60; trial++ {
		re := gen(3)
		d := Build(re, alphabet)
		for i := 0; i < 100; i++ {
			n := rng.Intn(5)
			path := make([]string, n)
			for j := range path {
				path[j] = alphabet[rng.Intn(len(alphabet))]
			}
			if d.Match(path) != policy.MatchPath(re, path) {
				t.Fatalf("mismatch: regex %s path %v", re.String(), path)
			}
		}
	}
}
