package topo

import (
	"fmt"
	"math/rand"
)

// Default link parameters used by the generators; callers can override
// via the Config struct.
const (
	DefaultFabricBW = 10e9  // 10 Gbps switch-switch
	DefaultHostBW   = 10e9  // 10 Gbps host-switch
	DefaultDelay    = 20000 // 20us one-way, a WAN-ish safe default
	DCDelay         = 1000  // 1us one-way inside a data center
)

// Fattree builds a canonical k-ary fat-tree (k even): k pods, each with
// k/2 edge and k/2 aggregation switches, and (k/2)^2 core switches —
// 5k^2/4 switches total. If hostsPerEdge > 0, that many hosts attach to
// every edge switch. Link parameters follow data center defaults.
//
// Sizes used by the paper's Figure 9/10 x-axis: k=4 → 20 switches,
// k=10 → 125, k=14 → 245, k=18 → 405, k=20 → 500.
func Fattree(k, hostsPerEdge int) *Graph {
	if k < 2 || k%2 != 0 {
		panic(fmt.Sprintf("topo: Fattree k must be even and >= 2, got %d", k))
	}
	g := New(fmt.Sprintf("fattree-k%d", k))
	half := k / 2
	edges := make([][]NodeID, k)
	aggs := make([][]NodeID, k)
	for p := 0; p < k; p++ {
		edges[p] = make([]NodeID, half)
		aggs[p] = make([]NodeID, half)
		for i := 0; i < half; i++ {
			edges[p][i] = g.AddNodeRole(fmt.Sprintf("e%d_%d", p, i), Switch, RoleEdge, p)
		}
		for i := 0; i < half; i++ {
			aggs[p][i] = g.AddNodeRole(fmt.Sprintf("a%d_%d", p, i), Switch, RoleAgg, p)
		}
	}
	cores := make([]NodeID, half*half)
	for i := range cores {
		cores[i] = g.AddNodeRole(fmt.Sprintf("c%d", i), Switch, RoleCore, -1)
	}
	for p := 0; p < k; p++ {
		// Full bipartite edge-agg inside the pod.
		for _, e := range edges[p] {
			for _, a := range aggs[p] {
				g.AddLink(e, a, DefaultFabricBW, DCDelay)
			}
		}
		// Agg i connects to cores [i*half, (i+1)*half).
		for i, a := range aggs[p] {
			for j := 0; j < half; j++ {
				g.AddLink(a, cores[i*half+j], DefaultFabricBW, DCDelay)
			}
		}
	}
	for p := 0; p < k; p++ {
		for i, e := range edges[p] {
			for h := 0; h < hostsPerEdge; h++ {
				hid := g.AddNodeRole(fmt.Sprintf("h%d_%d_%d", p, i, h), Host, RoleNone, p)
				g.AddLink(e, hid, DefaultHostBW, DCDelay)
			}
		}
	}
	return g
}

// FattreeSwitchCount returns the number of switches in a k-ary fat-tree.
func FattreeSwitchCount(k int) int { return 5 * k * k / 4 }

// LeafSpineConfig parameterizes LeafSpine.
type LeafSpineConfig struct {
	Leaves       int
	Spines       int
	HostsPerLeaf int
	HostBW       float64 // bits/s
	FabricBW     float64 // bits/s leaf-spine links
	DelayNs      int64
}

// LeafSpine builds a two-tier leaf-spine fabric. The paper's data center
// experiments (Figures 11-14) use 32 hosts at 10 Gbps with 40 Gbps
// bisection bandwidth and 4:1 oversubscription, which corresponds to
// 4 leaves x 8 hosts with 2 spines and 10 Gbps fabric links.
func LeafSpine(cfg LeafSpineConfig) *Graph {
	if cfg.Leaves <= 0 || cfg.Spines <= 0 {
		panic("topo: LeafSpine needs leaves and spines > 0")
	}
	if cfg.HostBW == 0 {
		cfg.HostBW = DefaultHostBW
	}
	if cfg.FabricBW == 0 {
		cfg.FabricBW = DefaultFabricBW
	}
	if cfg.DelayNs == 0 {
		cfg.DelayNs = DCDelay
	}
	g := New(fmt.Sprintf("leafspine-%dx%d", cfg.Leaves, cfg.Spines))
	leaves := make([]NodeID, cfg.Leaves)
	for i := range leaves {
		leaves[i] = g.AddNodeRole(fmt.Sprintf("l%d", i), Switch, RoleEdge, i)
	}
	for s := 0; s < cfg.Spines; s++ {
		sp := g.AddNodeRole(fmt.Sprintf("s%d", s), Switch, RoleCore, -1)
		for _, l := range leaves {
			g.AddLink(l, sp, cfg.FabricBW, cfg.DelayNs)
		}
	}
	for i, l := range leaves {
		for h := 0; h < cfg.HostsPerLeaf; h++ {
			hid := g.AddNodeRole(fmt.Sprintf("h%d_%d", i, h), Host, RoleNone, i)
			g.AddLink(l, hid, cfg.HostBW, cfg.DelayNs)
		}
	}
	return g
}

// PaperDataCenter returns the Figure 11 configuration: 32 hosts at
// 10 Gbps, 4:1 oversubscription, 40 Gbps bisection (4 leaves x 8 hosts,
// 2 spines).
func PaperDataCenter() *Graph {
	return LeafSpine(LeafSpineConfig{Leaves: 4, Spines: 2, HostsPerLeaf: 8})
}

// RandomConnected builds a connected random graph over n switches with
// approximately avgDegree average degree: a uniform random spanning tree
// (guaranteeing connectivity) plus random extra edges. Deterministic for
// a given seed. Used for the Figure 9b/10b compiler scalability sweep.
func RandomConnected(n int, avgDegree float64, seed int64) *Graph {
	if n < 2 {
		panic("topo: RandomConnected needs n >= 2")
	}
	rng := rand.New(rand.NewSource(seed))
	g := New(fmt.Sprintf("random-%d", n))
	ids := make([]NodeID, n)
	for i := 0; i < n; i++ {
		ids[i] = g.AddNode(fmt.Sprintf("r%d", i), Switch)
	}
	// Random spanning tree: attach each new node to a uniformly chosen
	// existing node (random recursive tree).
	type pair struct{ a, b NodeID }
	have := make(map[pair]bool)
	addEdge := func(a, b NodeID) bool {
		if a == b {
			return false
		}
		if a > b {
			a, b = b, a
		}
		if have[pair{a, b}] {
			return false
		}
		have[pair{a, b}] = true
		g.AddLink(a, b, DefaultFabricBW, DefaultDelay)
		return true
	}
	for i := 1; i < n; i++ {
		addEdge(ids[i], ids[rng.Intn(i)])
	}
	wantEdges := int(avgDegree * float64(n) / 2)
	for g.NumLinks() < wantEdges {
		a, b := ids[rng.Intn(n)], ids[rng.Intn(n)]
		addEdge(a, b)
	}
	return g
}

// Abilene returns the 11-node Internet2 Abilene backbone used by the
// paper's wide-area experiments (Figure 15), with the standard 14
// links. Links are 40 Gbps per §6.4 with propagation delays roughly
// proportional to geographic distance.
func Abilene() *Graph { return AbileneScaled(1) }

// AbileneScaled returns Abilene with propagation delays multiplied by
// scale. The paper's wide-area FCT experiments exhibit millisecond
// flow completion times, implying sub-geographic delays in their ns-3
// setup; scale 0.02 gives a coast-to-coast RTT near 1.2ms and makes
// flows bandwidth-bound so that the load sweep is meaningful.
func AbileneScaled(scale float64) *Graph {
	g := New("abilene")
	names := []string{
		"SEA", // Seattle
		"SNV", // Sunnyvale
		"LA",  // Los Angeles
		"DEN", // Denver
		"KC",  // Kansas City
		"HOU", // Houston
		"CHI", // Chicago
		"IND", // Indianapolis
		"ATL", // Atlanta
		"WDC", // Washington DC
		"NYC", // New York
	}
	for _, n := range names {
		g.AddNode(n, Switch)
	}
	if scale <= 0 {
		scale = 1
	}
	link := func(a, b string, delayUs int64) {
		d := int64(float64(delayUs*1000) * scale)
		if d < 1000 {
			d = 1000
		}
		g.AddLink(g.MustNode(a), g.MustNode(b), 40e9, d)
	}
	link("SEA", "SNV", 8000)
	link("SEA", "DEN", 10000)
	link("SNV", "LA", 3000)
	link("SNV", "DEN", 9000)
	link("LA", "HOU", 12000)
	link("DEN", "KC", 5000)
	link("KC", "HOU", 7000)
	link("KC", "IND", 4000)
	link("HOU", "ATL", 9000)
	link("ATL", "IND", 5000)
	link("ATL", "WDC", 6000)
	link("CHI", "IND", 2000)
	link("CHI", "NYC", 8000)
	link("NYC", "WDC", 3000)
	return g
}

// AbileneWithHosts returns Abilene with one host per switch, used for
// wide-area FCT simulations.
func AbileneWithHosts(hostBW float64) *Graph {
	return AbileneWithHostsScaled(hostBW, 1)
}

// AbileneWithHostsScaled is AbileneWithHosts over AbileneScaled.
func AbileneWithHostsScaled(hostBW, scale float64) *Graph {
	g := AbileneScaled(scale)
	if hostBW == 0 {
		hostBW = 40e9
	}
	for _, s := range append([]NodeID(nil), g.Switches()...) {
		h := g.AddNode("H_"+g.Node(s).Name, Host)
		g.AddLink(s, h, hostBW, 1000)
	}
	return g
}

// Paper example topologies used in unit tests.

// Fig4Strawman is Figure 4(a): leaf-spine square S,D with spines A,B.
func Fig4Strawman() *Graph {
	g := New("fig4a")
	for _, n := range []string{"S", "A", "B", "D"} {
		g.AddNode(n, Switch)
	}
	g.AddLink(g.MustNode("S"), g.MustNode("A"), DefaultFabricBW, DCDelay)
	g.AddLink(g.MustNode("S"), g.MustNode("B"), DefaultFabricBW, DCDelay)
	g.AddLink(g.MustNode("A"), g.MustNode("D"), DefaultFabricBW, DCDelay)
	g.AddLink(g.MustNode("B"), g.MustNode("D"), DefaultFabricBW, DCDelay)
	return g
}

// Fig4Square is Figure 4(b)-(h): S-A, A-B, B-S triangle, A-D, B-D, S-D.
func Fig4Square() *Graph {
	g := New("fig4b")
	for _, n := range []string{"S", "A", "B", "D"} {
		g.AddNode(n, Switch)
	}
	add := func(a, b string) {
		g.AddLink(g.MustNode(a), g.MustNode(b), DefaultFabricBW, DCDelay)
	}
	add("S", "A")
	add("S", "B")
	add("S", "D")
	add("A", "B")
	add("A", "D")
	add("B", "D")
	return g
}

// Fig5Diamond is Figure 5: A-B, B-C, B-D, C-D.
func Fig5Diamond() *Graph {
	g := New("fig5")
	for _, n := range []string{"A", "B", "C", "D"} {
		g.AddNode(n, Switch)
	}
	add := func(a, b string) {
		g.AddLink(g.MustNode(a), g.MustNode(b), DefaultFabricBW, DCDelay)
	}
	add("A", "B")
	add("B", "C")
	add("B", "D")
	add("C", "D")
	return g
}

// Fig6 is the running compilation example of Figure 6(a): A-B, A-C,
// B-C, B-D, C-D.
func Fig6() *Graph {
	g := New("fig6")
	for _, n := range []string{"A", "B", "C", "D"} {
		g.AddNode(n, Switch)
	}
	add := func(a, b string) {
		g.AddLink(g.MustNode(a), g.MustNode(b), DefaultFabricBW, DCDelay)
	}
	add("A", "B")
	add("A", "C")
	add("B", "C")
	add("B", "D")
	add("C", "D")
	return g
}

// Fig8Zigzag is Figure 8(a): two parallel 3-hop paths S-C-E-F-D (upper)
// and S-A-E-B-D (lower) sharing middle node E.
func Fig8Zigzag() *Graph {
	g := New("fig8a")
	for _, n := range []string{"S", "A", "B", "C", "D", "E", "F"} {
		g.AddNode(n, Switch)
	}
	add := func(a, b string) {
		g.AddLink(g.MustNode(a), g.MustNode(b), DefaultFabricBW, DCDelay)
	}
	add("S", "C")
	add("C", "E")
	add("E", "F")
	add("F", "D")
	add("S", "A")
	add("A", "E")
	add("E", "B")
	add("B", "D")
	return g
}
