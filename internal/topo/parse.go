package topo

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Parse reads a topology from a simple line-oriented text format used by
// the CLI tools:
//
//	# comment
//	node <name> switch|host
//	link <a> <b> [bandwidth] [delay]
//
// Bandwidth accepts suffixes K/M/G (bits per second, e.g. "10G");
// delay accepts ns/us/ms suffixes (e.g. "5us"). Defaults are 10G and
// 1us.
func Parse(r io.Reader, name string) (*Graph, error) {
	g := New(name)
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "node":
			if len(fields) < 2 {
				return nil, fmt.Errorf("line %d: node needs a name", lineNo)
			}
			kind := Switch
			if len(fields) >= 3 {
				switch fields[2] {
				case "switch":
					kind = Switch
				case "host":
					kind = Host
				default:
					return nil, fmt.Errorf("line %d: unknown node kind %q", lineNo, fields[2])
				}
			}
			if _, dup := g.NodeByName(fields[1]); dup {
				return nil, fmt.Errorf("line %d: duplicate node %q", lineNo, fields[1])
			}
			g.AddNode(fields[1], kind)
		case "link":
			if len(fields) < 3 {
				return nil, fmt.Errorf("line %d: link needs two endpoints", lineNo)
			}
			a, ok := g.NodeByName(fields[1])
			if !ok {
				return nil, fmt.Errorf("line %d: unknown node %q", lineNo, fields[1])
			}
			b, ok := g.NodeByName(fields[2])
			if !ok {
				return nil, fmt.Errorf("line %d: unknown node %q", lineNo, fields[2])
			}
			bw := DefaultFabricBW
			var delay int64 = DCDelay
			if len(fields) >= 4 {
				v, err := ParseBandwidth(fields[3])
				if err != nil {
					return nil, fmt.Errorf("line %d: %v", lineNo, err)
				}
				bw = v
			}
			if len(fields) >= 5 {
				v, err := ParseDuration(fields[4])
				if err != nil {
					return nil, fmt.Errorf("line %d: %v", lineNo, err)
				}
				delay = v
			}
			g.AddLink(a, b, bw, delay)
		default:
			return nil, fmt.Errorf("line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// ParseBandwidth parses "10G", "500M", "1.5G", or a bare bits/second
// number.
func ParseBandwidth(s string) (float64, error) {
	mult := 1.0
	switch {
	case strings.HasSuffix(s, "G"):
		mult, s = 1e9, strings.TrimSuffix(s, "G")
	case strings.HasSuffix(s, "M"):
		mult, s = 1e6, strings.TrimSuffix(s, "M")
	case strings.HasSuffix(s, "K"):
		mult, s = 1e3, strings.TrimSuffix(s, "K")
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad bandwidth %q", s)
	}
	if v <= 0 {
		return 0, fmt.Errorf("bandwidth must be positive, got %v", v)
	}
	return v * mult, nil
}

// ParseDuration parses "5us", "1ms", "300ns" or a bare nanosecond count
// into nanoseconds.
func ParseDuration(s string) (int64, error) {
	mult := 1.0
	switch {
	case strings.HasSuffix(s, "ms"):
		mult, s = 1e6, strings.TrimSuffix(s, "ms")
	case strings.HasSuffix(s, "us"):
		mult, s = 1e3, strings.TrimSuffix(s, "us")
	case strings.HasSuffix(s, "ns"):
		mult, s = 1, strings.TrimSuffix(s, "ns")
	case strings.HasSuffix(s, "s"):
		mult, s = 1e9, strings.TrimSuffix(s, "s")
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad duration %q", s)
	}
	if v < 0 {
		return 0, fmt.Errorf("duration must be non-negative, got %v", v)
	}
	return int64(v * mult), nil
}

// Format renders g in the Parse text format.
func Format(w io.Writer, g *Graph) error {
	for _, n := range g.Nodes() {
		if _, err := fmt.Fprintf(w, "node %s %s\n", n.Name, n.Kind); err != nil {
			return err
		}
	}
	for _, l := range g.Links() {
		_, err := fmt.Fprintf(w, "link %s %s %g %d\n",
			g.Node(l.A).Name, g.Node(l.B).Name, l.Bandwidth, l.Delay)
		if err != nil {
			return err
		}
	}
	return nil
}
