package topo

import (
	"container/heap"
	"math"
	"sort"
)

const infDist = int64(1) << 62

// HopsFrom returns the hop-count distance from src to every switch over
// the switch subgraph (up links only). Unreachable nodes and hosts get
// a large sentinel value.
func (g *Graph) HopsFrom(src NodeID) []int32 {
	dist := make([]int32, len(g.nodes))
	for i := range dist {
		dist[i] = math.MaxInt32
	}
	dist[src] = 0
	queue := []NodeID{src}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, m := range g.SwitchNeighbors(n) {
			if dist[m] == math.MaxInt32 {
				dist[m] = dist[n] + 1
				queue = append(queue, m)
			}
		}
	}
	return dist
}

// LatencyFrom returns shortest-latency distance (ns) from src to every
// switch over up links (Dijkstra). Unreachable entries are a large
// sentinel.
func (g *Graph) LatencyFrom(src NodeID) []int64 {
	dist := make([]int64, len(g.nodes))
	for i := range dist {
		dist[i] = infDist
	}
	dist[src] = 0
	pq := &nodeHeap{{src, 0}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(nodeDist)
		if it.d > dist[it.n] {
			continue
		}
		for _, p := range g.ports[it.n] {
			l := &g.links[p.Link]
			if l.Down || g.nodes[p.Peer].Kind != Switch {
				continue
			}
			nd := it.d + l.Delay
			if nd < dist[p.Peer] {
				dist[p.Peer] = nd
				heap.Push(pq, nodeDist{p.Peer, nd})
			}
		}
	}
	return dist
}

type nodeDist struct {
	n NodeID
	d int64
}

type nodeHeap []nodeDist

func (h nodeHeap) Len() int            { return len(h) }
func (h nodeHeap) Less(i, j int) bool  { return h[i].d < h[j].d }
func (h nodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x interface{}) { *h = append(*h, x.(nodeDist)) }
func (h *nodeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// ECMPNextHops returns, for every switch s, the set of neighbor switches
// of s that lie on some shortest (hop-count) path from s to dst. The
// result is indexed by node ID; entries for dst itself and for hosts
// are nil.
func (g *Graph) ECMPNextHops(dst NodeID) [][]NodeID {
	dist := g.HopsFrom(dst) // distance *to* dst == from dst (undirected)
	out := make([][]NodeID, len(g.nodes))
	for _, s := range g.Switches() {
		if s == dst || dist[s] == math.MaxInt32 {
			continue
		}
		var nh []NodeID
		for _, m := range g.SwitchNeighbors(s) {
			if dist[m] == dist[s]-1 {
				nh = append(nh, m)
			}
		}
		sort.Slice(nh, func(i, j int) bool { return nh[i] < nh[j] })
		out[s] = nh
	}
	return out
}

// Path is a sequence of switch node IDs from source to destination,
// inclusive.
type Path []NodeID

// Equal reports whether two paths are identical.
func (p Path) Equal(q Path) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// ShortestPath returns one shortest hop-count path from src to dst over
// up switch links, or nil if unreachable. Ties break toward lower node
// IDs, making the result deterministic.
func (g *Graph) ShortestPath(src, dst NodeID) Path {
	if src == dst {
		return Path{src}
	}
	dist := g.HopsFrom(dst)
	if dist[src] == math.MaxInt32 {
		return nil
	}
	path := Path{src}
	cur := src
	for cur != dst {
		next := NodeID(-1)
		for _, m := range g.SwitchNeighbors(cur) {
			if dist[m] == dist[cur]-1 && (next == -1 || m < next) {
				next = m
			}
		}
		if next == -1 {
			return nil
		}
		path = append(path, next)
		cur = next
	}
	return path
}

// pathWeight computes total latency of a path, or -1 if any hop is not
// a live link.
func (g *Graph) pathWeight(p Path) int64 {
	var w int64
	for i := 0; i+1 < len(p); i++ {
		l := g.LinkBetween(p[i], p[i+1])
		if l == nil || l.Down {
			return -1
		}
		w += l.Delay
	}
	return w
}

// dijkstraPath returns the minimum-latency path from src to dst over up
// switch links, avoiding banned links ("a-b" canonical keys) and banned
// nodes. Returns nil if none exists.
func (g *Graph) dijkstraPath(src, dst NodeID, bannedLink map[[2]NodeID]bool, bannedNode map[NodeID]bool) Path {
	dist := make(map[NodeID]int64)
	prev := make(map[NodeID]NodeID)
	dist[src] = 0
	pq := &nodeHeap{{src, 0}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(nodeDist)
		if d, ok := dist[it.n]; ok && it.d > d {
			continue
		}
		if it.n == dst {
			break
		}
		for _, p := range g.ports[it.n] {
			l := &g.links[p.Link]
			if l.Down || g.nodes[p.Peer].Kind != Switch {
				continue
			}
			if bannedNode[p.Peer] {
				continue
			}
			key := linkKey(it.n, p.Peer)
			if bannedLink[key] {
				continue
			}
			nd := it.d + l.Delay
			if d, ok := dist[p.Peer]; !ok || nd < d {
				dist[p.Peer] = nd
				prev[p.Peer] = it.n
				heap.Push(pq, nodeDist{p.Peer, nd})
			}
		}
	}
	if _, ok := dist[dst]; !ok {
		return nil
	}
	var rev Path
	for cur := dst; ; {
		rev = append(rev, cur)
		if cur == src {
			break
		}
		cur = prev[cur]
	}
	path := make(Path, len(rev))
	for i := range rev {
		path[i] = rev[len(rev)-1-i]
	}
	return path
}

func linkKey(a, b NodeID) [2]NodeID {
	if a > b {
		a, b = b, a
	}
	return [2]NodeID{a, b}
}

// KShortestPaths returns up to k loop-free minimum-latency paths from
// src to dst (Yen's algorithm). Used by the SPAIN baseline to build its
// static path sets.
func (g *Graph) KShortestPaths(src, dst NodeID, k int) []Path {
	if k <= 0 {
		return nil
	}
	first := g.dijkstraPath(src, dst, nil, nil)
	if first == nil {
		return nil
	}
	paths := []Path{first}
	var candidates []Path
	for len(paths) < k {
		last := paths[len(paths)-1]
		for i := 0; i+1 < len(last); i++ {
			spurNode := last[i]
			rootPath := last[:i+1]
			bannedLink := make(map[[2]NodeID]bool)
			bannedNode := make(map[NodeID]bool)
			for _, p := range paths {
				if len(p) > i && Path(p[:i+1]).Equal(rootPath) && len(p) > i+1 {
					bannedLink[linkKey(p[i], p[i+1])] = true
				}
			}
			for _, n := range rootPath[:len(rootPath)-1] {
				bannedNode[n] = true
			}
			spur := g.dijkstraPath(spurNode, dst, bannedLink, bannedNode)
			if spur == nil {
				continue
			}
			total := append(append(Path{}, rootPath[:len(rootPath)-1]...), spur...)
			dup := false
			for _, c := range candidates {
				if c.Equal(total) {
					dup = true
					break
				}
			}
			for _, p := range paths {
				if p.Equal(total) {
					dup = true
					break
				}
			}
			if !dup {
				candidates = append(candidates, total)
			}
		}
		if len(candidates) == 0 {
			break
		}
		sort.Slice(candidates, func(a, b int) bool {
			wa, wb := g.pathWeight(candidates[a]), g.pathWeight(candidates[b])
			if wa != wb {
				return wa < wb
			}
			return len(candidates[a]) < len(candidates[b])
		})
		paths = append(paths, candidates[0])
		candidates = candidates[1:]
	}
	return paths
}

// AllSimplePaths enumerates every loop-free switch path from src to dst
// with at most maxHops links, stopping after limit paths (0 = no
// limit). Exponential: intended for small test topologies and
// brute-force ground truth only.
func (g *Graph) AllSimplePaths(src, dst NodeID, maxHops, limit int) []Path {
	var out []Path
	onPath := make([]bool, len(g.nodes))
	var cur Path
	var rec func(n NodeID)
	rec = func(n NodeID) {
		if limit > 0 && len(out) >= limit {
			return
		}
		cur = append(cur, n)
		onPath[n] = true
		defer func() {
			cur = cur[:len(cur)-1]
			onPath[n] = false
		}()
		if n == dst {
			out = append(out, append(Path{}, cur...))
			return
		}
		if len(cur) > maxHops {
			return
		}
		for _, m := range g.SwitchNeighbors(n) {
			if !onPath[m] {
				rec(m)
			}
		}
	}
	rec(src)
	return out
}

// Names renders a path as node names (for tests and tracing).
func (g *Graph) Names(p Path) []string {
	out := make([]string, len(p))
	for i, n := range p {
		out[i] = g.nodes[n].Name
	}
	return out
}
