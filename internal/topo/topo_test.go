package topo

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestFattreeShape(t *testing.T) {
	for _, k := range []int{4, 10, 14, 18, 20} {
		g := Fattree(k, 0)
		want := FattreeSwitchCount(k)
		if got := len(g.Switches()); got != want {
			t.Errorf("Fattree(%d): %d switches, want %d", k, got, want)
		}
		// Link count: k pods * (k/2)^2 edge-agg + k * (k/2)^2 agg-core.
		half := k / 2
		wantLinks := 2 * k * half * half
		if got := g.NumLinks(); got != wantLinks {
			t.Errorf("Fattree(%d): %d links, want %d", k, got, wantLinks)
		}
		if err := g.Validate(); err != nil {
			t.Errorf("Fattree(%d): %v", k, err)
		}
	}
}

func TestFattreeHostsAndRoles(t *testing.T) {
	g := Fattree(4, 2)
	if got := len(g.Hosts()); got != 16 { // 8 edge switches * 2 hosts
		t.Fatalf("hosts = %d, want 16", got)
	}
	var edge, agg, core int
	for _, id := range g.Switches() {
		switch g.Node(id).Role {
		case RoleEdge:
			edge++
		case RoleAgg:
			agg++
		case RoleCore:
			core++
		}
	}
	if edge != 8 || agg != 8 || core != 4 {
		t.Fatalf("roles edge/agg/core = %d/%d/%d, want 8/8/4", edge, agg, core)
	}
	for _, h := range g.Hosts() {
		e := g.HostEdge(h)
		if g.Node(e).Role != RoleEdge {
			t.Fatalf("host %s attached to %s (role %s)", g.Node(h).Name, g.Node(e).Name, g.Node(e).Role)
		}
	}
}

func TestFattreeDiameterAndPaths(t *testing.T) {
	g := Fattree(4, 0)
	// Any two edge switches in different pods are exactly 4 hops apart.
	e00 := g.MustNode("e0_0")
	e10 := g.MustNode("e1_0")
	d := g.HopsFrom(e00)
	if d[e10] != 4 {
		t.Fatalf("cross-pod edge distance = %d, want 4", d[e10])
	}
	// Same pod: 2 hops via any agg.
	e01 := g.MustNode("e0_1")
	if d[e01] != 2 {
		t.Fatalf("same-pod edge distance = %d, want 2", d[e01])
	}
	// ECMP next hops from e0_0 toward e1_0 are both pod-0 aggs.
	nh := g.ECMPNextHops(e10)
	if len(nh[e00]) != 2 {
		t.Fatalf("ECMP next hops = %v, want 2 aggs", nh[e00])
	}
	for _, m := range nh[e00] {
		if g.Node(m).Role != RoleAgg || g.Node(m).Pod != 0 {
			t.Fatalf("unexpected next hop %s", g.Node(m).Name)
		}
	}
}

func TestPaperDataCenter(t *testing.T) {
	g := PaperDataCenter()
	if got := len(g.Hosts()); got != 32 {
		t.Fatalf("hosts = %d, want 32", got)
	}
	if got := len(g.Switches()); got != 6 {
		t.Fatalf("switches = %d, want 6 (4 leaves + 2 spines)", got)
	}
	// 4:1 oversubscription: 8 hosts x 10G down, 2 x 10G up per leaf.
	l0 := g.MustNode("l0")
	var up, down int
	for _, p := range g.Ports(l0) {
		if g.Node(p.Peer).Kind == Host {
			down++
		} else {
			up++
		}
	}
	if down != 8 || up != 2 {
		t.Fatalf("leaf0 down/up = %d/%d, want 8/2", down, up)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRandomConnected(t *testing.T) {
	for _, n := range []int{10, 100, 300} {
		g := RandomConnected(n, 4, 42)
		if err := g.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if got := g.NumNodes(); got != n {
			t.Fatalf("n=%d: nodes = %d", n, got)
		}
		wantEdges := int(4 * float64(n) / 2)
		if g.NumLinks() < n-1 || g.NumLinks() < wantEdges-1 {
			t.Fatalf("n=%d: links = %d, want >= %d", n, g.NumLinks(), wantEdges)
		}
	}
	// Determinism.
	a := RandomConnected(50, 4, 7)
	b := RandomConnected(50, 4, 7)
	if a.NumLinks() != b.NumLinks() {
		t.Fatal("same seed produced different graphs")
	}
	for i := 0; i < a.NumLinks(); i++ {
		la, lb := a.Link(LinkID(i)), b.Link(LinkID(i))
		if la.A != lb.A || la.B != lb.B {
			t.Fatal("same seed produced different edges")
		}
	}
}

func TestAbilene(t *testing.T) {
	g := Abilene()
	if g.NumNodes() != 11 {
		t.Fatalf("nodes = %d, want 11", g.NumNodes())
	}
	if g.NumLinks() != 14 {
		t.Fatalf("links = %d, want 14", g.NumLinks())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Coast-to-coast multipath: SEA to NYC has at least 2 disjoint paths.
	paths := g.KShortestPaths(g.MustNode("SEA"), g.MustNode("NYC"), 4)
	if len(paths) < 2 {
		t.Fatalf("SEA-NYC paths = %d, want >= 2", len(paths))
	}
	gh := AbileneWithHosts(0)
	if got := len(gh.Hosts()); got != 11 {
		t.Fatalf("AbileneWithHosts hosts = %d, want 11", got)
	}
}

func TestShortestPathDeterministicAndValid(t *testing.T) {
	g := Abilene()
	src, dst := g.MustNode("SEA"), g.MustNode("ATL")
	p := g.ShortestPath(src, dst)
	if p == nil || p[0] != src || p[len(p)-1] != dst {
		t.Fatalf("bad path %v", g.Names(p))
	}
	for i := 0; i+1 < len(p); i++ {
		if g.LinkBetween(p[i], p[i+1]) == nil {
			t.Fatalf("non-adjacent hop in %v", g.Names(p))
		}
	}
	q := g.ShortestPath(src, dst)
	if !p.Equal(q) {
		t.Fatal("ShortestPath not deterministic")
	}
	hops := g.HopsFrom(dst)
	if int32(len(p)-1) != hops[src] {
		t.Fatalf("path len %d != BFS dist %d", len(p)-1, hops[src])
	}
}

func TestLinkFailureAffectsPaths(t *testing.T) {
	g := Fig4Square()
	s, d := g.MustNode("S"), g.MustNode("D")
	if got := g.HopsFrom(d)[s]; got != 1 {
		t.Fatalf("S-D dist = %d, want 1", got)
	}
	l := g.LinkBetween(s, d)
	g.SetDown(l.ID, true)
	if got := g.HopsFrom(d)[s]; got != 2 {
		t.Fatalf("after failure S-D dist = %d, want 2", got)
	}
	g.SetDown(l.ID, false)
	if got := g.HopsFrom(d)[s]; got != 1 {
		t.Fatalf("after recovery S-D dist = %d, want 1", got)
	}
}

func TestKShortestPaths(t *testing.T) {
	g := Fig6()
	a, d := g.MustNode("A"), g.MustNode("D")
	paths := g.KShortestPaths(a, d, 10)
	// Simple paths from A to D in Fig6: ABD, ACD, ABCD, ACBD.
	if len(paths) != 4 {
		t.Fatalf("paths = %d, want 4: %v", len(paths), paths)
	}
	// Sorted by latency: 2-hop paths first.
	if len(paths[0]) != 3 || len(paths[1]) != 3 || len(paths[2]) != 4 {
		t.Fatalf("path lengths wrong: %v %v %v", paths[0], paths[1], paths[2])
	}
	seen := map[string]bool{}
	for _, p := range paths {
		key := strings.Join(g.Names(p), "")
		if seen[key] {
			t.Fatalf("duplicate path %s", key)
		}
		seen[key] = true
		if p[0] != a || p[len(p)-1] != d {
			t.Fatalf("bad endpoints in %s", key)
		}
		// Loop-free.
		nodes := map[NodeID]bool{}
		for _, n := range p {
			if nodes[n] {
				t.Fatalf("loop in %s", key)
			}
			nodes[n] = true
		}
	}
}

func TestAllSimplePaths(t *testing.T) {
	g := Fig6()
	a, d := g.MustNode("A"), g.MustNode("D")
	paths := g.AllSimplePaths(a, d, 10, 0)
	if len(paths) != 4 {
		t.Fatalf("paths = %d, want 4", len(paths))
	}
	// maxHops limits path length.
	short := g.AllSimplePaths(a, d, 2, 0)
	if len(short) != 2 {
		t.Fatalf("2-hop paths = %d, want 2", len(short))
	}
	// limit caps output.
	lim := g.AllSimplePaths(a, d, 10, 1)
	if len(lim) != 1 {
		t.Fatalf("limited paths = %d, want 1", len(lim))
	}
}

func TestCloneIndependence(t *testing.T) {
	g := Fig4Square()
	c := g.Clone()
	l := g.LinkBetween(g.MustNode("S"), g.MustNode("D"))
	c.SetDown(l.ID, true)
	if g.Link(l.ID).Down {
		t.Fatal("clone mutation leaked into original")
	}
	if c.NumNodes() != g.NumNodes() || c.NumLinks() != g.NumLinks() {
		t.Fatal("clone shape differs")
	}
}

func TestMaxSwitchRTT(t *testing.T) {
	g := Fig4Square() // all links 1us, diameter 1..2 hops
	rtt := g.MaxSwitchRTT()
	// Longest shortest-latency path is 1 hop = 1us, so RTT = 2us... but
	// S-A etc are direct; every pair adjacent except none. All pairs
	// adjacent? S-A,S-B,S-D,A-B,A-D,B-D: yes, complete graph. RTT=2us.
	if rtt != 2*DCDelay {
		t.Fatalf("rtt = %d, want %d", rtt, 2*DCDelay)
	}
	ab := Abilene()
	if ab.MaxSwitchRTT() <= 0 {
		t.Fatal("abilene rtt should be positive")
	}
}

func TestParseAndFormatRoundTrip(t *testing.T) {
	src := `
# tiny test topology
node A switch
node B switch
node H1 host
link A B 10G 5us
link A H1 1G 1us
`
	g, err := Parse(strings.NewReader(src), "tiny")
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 || g.NumLinks() != 2 {
		t.Fatalf("parsed shape wrong: %s", g)
	}
	l := g.LinkBetween(g.MustNode("A"), g.MustNode("B"))
	if l.Bandwidth != 10e9 || l.Delay != 5000 {
		t.Fatalf("link params wrong: %+v", l)
	}
	var buf bytes.Buffer
	if err := Format(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := Parse(strings.NewReader(buf.String()), "tiny2")
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, buf.String())
	}
	if g2.NumNodes() != 3 || g2.NumLinks() != 2 {
		t.Fatal("round trip shape wrong")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"node",                       // missing name
		"node A switch\nnode A host", // duplicate
		"link A B",                   // unknown nodes
		"node A switch\nlink A",      // missing endpoint
		"frobnicate",                 // unknown directive
		"node A switch\nnode B switch\nlink A B -5G", // bad bandwidth
	}
	for _, src := range cases {
		if _, err := Parse(strings.NewReader(src), "bad"); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestParseUnits(t *testing.T) {
	if v, err := ParseBandwidth("1.5G"); err != nil || v != 1.5e9 {
		t.Fatalf("1.5G -> %v, %v", v, err)
	}
	if v, err := ParseBandwidth("200M"); err != nil || v != 2e8 {
		t.Fatalf("200M -> %v, %v", v, err)
	}
	if v, err := ParseDuration("1ms"); err != nil || v != 1e6 {
		t.Fatalf("1ms -> %v, %v", v, err)
	}
	if v, err := ParseDuration("300ns"); err != nil || v != 300 {
		t.Fatalf("300ns -> %v, %v", v, err)
	}
	if v, err := ParseDuration("2s"); err != nil || v != 2e9 {
		t.Fatalf("2s -> %v, %v", v, err)
	}
}

func TestHopsUnreachable(t *testing.T) {
	g := New("two-islands")
	a := g.AddNode("A", Switch)
	b := g.AddNode("B", Switch)
	c := g.AddNode("C", Switch)
	g.AddLink(a, b, 1e9, 1000)
	d := g.HopsFrom(a)
	if d[c] != math.MaxInt32 {
		t.Fatalf("unreachable distance = %d, want MaxInt32", d[c])
	}
	if g.ShortestPath(a, c) != nil {
		t.Fatal("path to unreachable node should be nil")
	}
	if err := g.Validate(); err == nil {
		t.Fatal("Validate should fail on disconnected switch graph")
	}
}

// TestPortToIndexInvalidation checks the reverse-port table against
// the naive scan, including rebuilds after AddLink and on clones.
func TestPortToIndexInvalidation(t *testing.T) {
	g := New("idx")
	a := g.AddNode("A", Switch)
	b := g.AddNode("B", Switch)
	c := g.AddNode("C", Switch)
	g.AddLink(a, b, 1e9, 10)
	if got := g.PortTo(a, b); got != 0 {
		t.Fatalf("PortTo(a,b) = %d, want 0", got)
	}
	if got := g.PortTo(a, c); got != -1 {
		t.Fatalf("PortTo(a,c) = %d, want -1 before linking", got)
	}
	// Mutating after a lookup must invalidate the prebuilt index.
	g.AddLink(a, c, 1e9, 10)
	if got := g.PortTo(a, c); got != 1 {
		t.Fatalf("PortTo(a,c) = %d after AddLink, want 1", got)
	}
	// Parallel links: the lowest port index wins, like the old scan.
	g.AddLink(a, b, 1e9, 10)
	if got := g.PortTo(a, b); got != 0 {
		t.Fatalf("PortTo(a,b) = %d with parallel links, want 0", got)
	}
	// Clones rebuild their own index.
	cl := g.Clone()
	cl.AddLink(b, c, 1e9, 10)
	if got := cl.PortTo(b, c); got != 2 {
		t.Fatalf("clone PortTo(b,c) = %d, want 2", got)
	}
	if got := g.PortTo(b, c); got != -1 {
		t.Fatalf("original PortTo(b,c) = %d, want -1", got)
	}
	// Exhaustive agreement with the naive definition.
	for _, from := range []NodeID{a, b, c} {
		want := map[NodeID]int{}
		for i, p := range g.Ports(from) {
			if _, seen := want[p.Peer]; !seen {
				want[p.Peer] = i
			}
		}
		for _, to := range []NodeID{a, b, c} {
			exp, ok := want[to]
			if !ok {
				exp = -1
			}
			if got := g.PortTo(from, to); got != exp {
				t.Fatalf("PortTo(%d,%d) = %d, want %d", from, to, got, exp)
			}
		}
	}
}
