package topo

import (
	"math"
	"testing"
	"testing/quick"
)

// Property-based tests for the path algorithms over random connected
// graphs.

func quickGraph(seed int64) *Graph {
	n := 5 + int(uint64(seed)%12)
	return RandomConnected(n, 3, seed)
}

func TestQuickShortestPathMatchesBFS(t *testing.T) {
	f := func(seed int64, a, b uint8) bool {
		g := quickGraph(seed)
		sw := g.Switches()
		src := sw[int(a)%len(sw)]
		dst := sw[int(b)%len(sw)]
		if src == dst {
			return true
		}
		p := g.ShortestPath(src, dst)
		d := g.HopsFrom(dst)[src]
		if d == math.MaxInt32 {
			return p == nil
		}
		return p != nil && int32(len(p)-1) == d
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickKShortestSortedAndLoopFree(t *testing.T) {
	f := func(seed int64, a, b uint8) bool {
		g := quickGraph(seed)
		sw := g.Switches()
		src := sw[int(a)%len(sw)]
		dst := sw[int(b)%len(sw)]
		if src == dst {
			return true
		}
		paths := g.KShortestPaths(src, dst, 5)
		prev := int64(-1)
		seenKeys := map[string]bool{}
		for _, p := range paths {
			// Endpoints.
			if p[0] != src || p[len(p)-1] != dst {
				return false
			}
			// Adjacent hops and loop freedom.
			seen := map[NodeID]bool{}
			for i, node := range p {
				if seen[node] {
					return false
				}
				seen[node] = true
				if i > 0 && g.LinkBetween(p[i-1], node) == nil {
					return false
				}
			}
			// Sorted by total latency.
			w := g.pathWeight(p)
			if w < prev {
				return false
			}
			prev = w
			// Distinct.
			key := ""
			for _, n := range p {
				key += g.Node(n).Name + "/"
			}
			if seenKeys[key] {
				return false
			}
			seenKeys[key] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickECMPNextHopsDecreaseDistance(t *testing.T) {
	f := func(seed int64, b uint8) bool {
		g := quickGraph(seed)
		sw := g.Switches()
		dst := sw[int(b)%len(sw)]
		dist := g.HopsFrom(dst)
		nh := g.ECMPNextHops(dst)
		for _, s := range sw {
			for _, m := range nh[s] {
				if dist[m] != dist[s]-1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickAllSimplePathsAreSimpleAndCompliant(t *testing.T) {
	f := func(seed int64, a, b uint8) bool {
		g := quickGraph(seed)
		sw := g.Switches()
		src := sw[int(a)%len(sw)]
		dst := sw[int(b)%len(sw)]
		if src == dst {
			return true
		}
		for _, p := range g.AllSimplePaths(src, dst, 5, 100) {
			if p[0] != src || p[len(p)-1] != dst || len(p) > 6 {
				return false
			}
			seen := map[NodeID]bool{}
			for i, n := range p {
				if seen[n] {
					return false
				}
				seen[n] = true
				if i > 0 && g.LinkBetween(p[i-1], n) == nil {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
