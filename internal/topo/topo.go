// Package topo models network topologies: switches, hosts, links with
// bandwidth and propagation delay, plus the generators and path
// algorithms used by the Contra compiler, the simulator, and the
// baseline routing schemes.
package topo

import (
	"fmt"
	"sort"
)

// NodeID identifies a node within a Graph.
type NodeID int32

// LinkID identifies a link within a Graph.
type LinkID int32

// Kind distinguishes forwarding devices from end hosts.
type Kind uint8

// Node kinds.
const (
	Switch Kind = iota
	Host
)

func (k Kind) String() string {
	if k == Host {
		return "host"
	}
	return "switch"
}

// Role labels a switch's tier in hierarchical (data center) topologies.
// Non-hierarchical topologies leave it as RoleNone.
type Role uint8

// Switch roles in a Clos/Fattree hierarchy.
const (
	RoleNone Role = iota
	RoleEdge      // top-of-rack / leaf
	RoleAgg       // aggregation
	RoleCore      // core / spine
)

func (r Role) String() string {
	switch r {
	case RoleEdge:
		return "edge"
	case RoleAgg:
		return "agg"
	case RoleCore:
		return "core"
	}
	return "none"
}

// Node is a device in the topology.
type Node struct {
	ID   NodeID
	Name string
	Kind Kind
	Role Role
	Pod  int // pod index in Fattree topologies, -1 otherwise
}

// Link is an undirected link; the simulator models each direction
// independently (queues, utilization) but topologically the link is one
// edge. Bandwidth is bits/second and Delay is one-way propagation in
// nanoseconds.
type Link struct {
	ID        LinkID
	A, B      NodeID
	Bandwidth float64
	Delay     int64
	Down      bool
}

// Other returns the endpoint of l that is not n.
func (l *Link) Other(n NodeID) NodeID {
	if l.A == n {
		return l.B
	}
	return l.A
}

// Port is one attachment point of a node: the local port index is the
// position within Graph.Ports(node).
type Port struct {
	Link LinkID
	Peer NodeID
}

// Graph is an in-memory topology. The zero value is empty; use New.
type Graph struct {
	Name   string
	nodes  []Node
	links  []Link
	ports  [][]Port
	byName map[string]NodeID

	// portIdx is the reverse-port table: per node, its ports sorted by
	// peer id, so PortTo is a binary search instead of a linear scan.
	// Built lazily; portIdxLinks records the link count it was built
	// at, so AddLink invalidates it implicitly.
	portIdx      [][]portRef
	portIdxLinks int
}

// portRef is one reverse-port table row: the peer reached through
// local port index port.
type portRef struct {
	peer NodeID
	port int32
}

// New returns an empty graph with the given name.
func New(name string) *Graph {
	return &Graph{Name: name, byName: make(map[string]NodeID)}
}

// AddNode adds a node and returns its ID. Names must be unique and
// non-empty.
func (g *Graph) AddNode(name string, kind Kind) NodeID {
	return g.AddNodeRole(name, kind, RoleNone, -1)
}

// AddNodeRole adds a node with an explicit hierarchy role and pod.
func (g *Graph) AddNodeRole(name string, kind Kind, role Role, pod int) NodeID {
	if name == "" {
		panic("topo: empty node name")
	}
	if _, dup := g.byName[name]; dup {
		panic(fmt.Sprintf("topo: duplicate node name %q", name))
	}
	id := NodeID(len(g.nodes))
	g.nodes = append(g.nodes, Node{ID: id, Name: name, Kind: kind, Role: role, Pod: pod})
	g.ports = append(g.ports, nil)
	g.byName[name] = id
	return id
}

// AddLink connects a and b with the given bandwidth (bits/s) and one-way
// propagation delay (ns), returning the link ID.
func (g *Graph) AddLink(a, b NodeID, bandwidth float64, delayNs int64) LinkID {
	if a == b {
		panic("topo: self loop")
	}
	if int(a) >= len(g.nodes) || int(b) >= len(g.nodes) || a < 0 || b < 0 {
		panic("topo: AddLink with unknown node")
	}
	id := LinkID(len(g.links))
	g.links = append(g.links, Link{ID: id, A: a, B: b, Bandwidth: bandwidth, Delay: delayNs})
	g.ports[a] = append(g.ports[a], Port{Link: id, Peer: b})
	g.ports[b] = append(g.ports[b], Port{Link: id, Peer: a})
	return id
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumLinks returns the number of links.
func (g *Graph) NumLinks() int { return len(g.links) }

// Node returns the node with the given ID.
func (g *Graph) Node(id NodeID) *Node { return &g.nodes[id] }

// Link returns the link with the given ID.
func (g *Graph) Link(id LinkID) *Link { return &g.links[id] }

// Nodes returns all nodes in ID order. The slice must not be modified.
func (g *Graph) Nodes() []Node { return g.nodes }

// Links returns all links in ID order. The slice must not be modified.
func (g *Graph) Links() []Link { return g.links }

// Ports returns node n's ports; the local port index is the slice index.
func (g *Graph) Ports(n NodeID) []Port { return g.ports[n] }

// NodeByName returns the node ID for name.
func (g *Graph) NodeByName(name string) (NodeID, bool) {
	id, ok := g.byName[name]
	return id, ok
}

// MustNode returns the node ID for name or panics.
func (g *Graph) MustNode(name string) NodeID {
	id, ok := g.byName[name]
	if !ok {
		panic(fmt.Sprintf("topo: no node named %q", name))
	}
	return id
}

// PortTo returns the local port index on from that reaches neighbor to,
// or -1 if they are not adjacent. With parallel links it returns the
// first. Lookups binary-search the precomputed reverse-port table,
// which is rebuilt transparently after AddLink.
func (g *Graph) PortTo(from, to NodeID) int {
	if g.portIdxLinks != len(g.links) || len(g.portIdx) != len(g.nodes) {
		g.buildPortIndex()
	}
	row := g.portIdx[from]
	lo, hi := 0, len(row)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if row[mid].peer < to {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(row) && row[lo].peer == to {
		return int(row[lo].port)
	}
	return -1
}

// buildPortIndex (re)builds the reverse-port table from the port
// lists. Rows sort by (peer, port), so the lowest port index wins for
// parallel links — the same answer the historical linear scan gave.
func (g *Graph) buildPortIndex() {
	if cap(g.portIdx) < len(g.nodes) {
		g.portIdx = make([][]portRef, len(g.nodes))
	}
	g.portIdx = g.portIdx[:len(g.nodes)]
	for n, ps := range g.ports {
		row := g.portIdx[n][:0]
		for i, p := range ps {
			row = append(row, portRef{peer: p.Peer, port: int32(i)})
		}
		sort.Slice(row, func(i, j int) bool {
			if row[i].peer != row[j].peer {
				return row[i].peer < row[j].peer
			}
			return row[i].port < row[j].port
		})
		g.portIdx[n] = row
	}
	g.portIdxLinks = len(g.links)
}

// LinkBetween returns the first link joining a and b, or nil.
func (g *Graph) LinkBetween(a, b NodeID) *Link {
	for _, p := range g.ports[a] {
		if p.Peer == b {
			return &g.links[p.Link]
		}
	}
	return nil
}

// Switches returns the IDs of all switch nodes in ID order.
func (g *Graph) Switches() []NodeID {
	var out []NodeID
	for _, n := range g.nodes {
		if n.Kind == Switch {
			out = append(out, n.ID)
		}
	}
	return out
}

// Hosts returns the IDs of all host nodes in ID order.
func (g *Graph) Hosts() []NodeID {
	var out []NodeID
	for _, n := range g.nodes {
		if n.Kind == Host {
			out = append(out, n.ID)
		}
	}
	return out
}

// HostEdge returns the switch a host attaches to. Hosts are assumed
// single-homed; it panics otherwise.
func (g *Graph) HostEdge(h NodeID) NodeID {
	ps := g.ports[h]
	if g.nodes[h].Kind != Host || len(ps) != 1 {
		panic(fmt.Sprintf("topo: node %s is not a single-homed host", g.nodes[h].Name))
	}
	return ps[0].Peer
}

// SetDown marks a link up or down (failure injection). Path algorithms
// skip down links.
func (g *Graph) SetDown(id LinkID, down bool) { g.links[id].Down = down }

// SwitchNeighbors returns the switch neighbors of n over up links,
// in port order.
func (g *Graph) SwitchNeighbors(n NodeID) []NodeID {
	var out []NodeID
	for _, p := range g.ports[n] {
		if g.links[p.Link].Down {
			continue
		}
		if g.nodes[p.Peer].Kind == Switch {
			out = append(out, p.Peer)
		}
	}
	return out
}

// Validate checks structural invariants: every host single-homed to a
// switch, and the switch subgraph connected (over up links).
func (g *Graph) Validate() error {
	sw := g.Switches()
	if len(sw) == 0 {
		return fmt.Errorf("topo %s: no switches", g.Name)
	}
	for _, h := range g.Hosts() {
		ps := g.ports[h]
		if len(ps) != 1 {
			return fmt.Errorf("topo %s: host %s has %d links, want 1", g.Name, g.nodes[h].Name, len(ps))
		}
		if g.nodes[ps[0].Peer].Kind != Switch {
			return fmt.Errorf("topo %s: host %s attached to non-switch", g.Name, g.nodes[h].Name)
		}
	}
	seen := make([]bool, len(g.nodes))
	stack := []NodeID{sw[0]}
	seen[sw[0]] = true
	count := 1
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, m := range g.SwitchNeighbors(n) {
			if !seen[m] {
				seen[m] = true
				count++
				stack = append(stack, m)
			}
		}
	}
	if count != len(sw) {
		return fmt.Errorf("topo %s: switch graph disconnected (%d of %d reachable)", g.Name, count, len(sw))
	}
	return nil
}

// Clone returns a deep copy of the graph (used to derive failed-link
// variants without mutating the original).
func (g *Graph) Clone() *Graph {
	ng := &Graph{
		Name:   g.Name,
		nodes:  append([]Node(nil), g.nodes...),
		links:  append([]Link(nil), g.links...),
		ports:  make([][]Port, len(g.ports)),
		byName: make(map[string]NodeID, len(g.byName)),
	}
	for i, ps := range g.ports {
		ng.ports[i] = append([]Port(nil), ps...)
	}
	for k, v := range g.byName {
		ng.byName[k] = v
	}
	return ng
}

// String summarizes the graph.
func (g *Graph) String() string {
	return fmt.Sprintf("%s: %d nodes (%d switches, %d hosts), %d links",
		g.Name, len(g.nodes), len(g.Switches()), len(g.Hosts()), len(g.links))
}

// SortedNames returns all switch names sorted; this is the policy
// language's alphabet for this topology.
func (g *Graph) SortedNames() []string {
	var out []string
	for _, n := range g.nodes {
		if n.Kind == Switch {
			out = append(out, n.Name)
		}
	}
	sort.Strings(out)
	return out
}

// MaxSwitchRTT returns an upper bound on the round-trip time in ns
// between any pair of switches, assuming negligible queueing: twice the
// maximum over shortest-latency paths. Contra's probe period must be at
// least half this value (§5.2).
func (g *Graph) MaxSwitchRTT() int64 {
	var worst int64
	for _, s := range g.Switches() {
		dist := g.LatencyFrom(s)
		for _, t := range g.Switches() {
			if dist[t] > worst && dist[t] < int64(1)<<62 {
				worst = dist[t]
			}
		}
	}
	return 2 * worst
}
