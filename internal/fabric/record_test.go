package fabric

import (
	"bytes"
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"contra/internal/dist"
	"contra/internal/flowtrace"
)

// TestWorkerRecordDirWritesCellTraces pins the fabric half of flow
// recording: a worker given RecordDir turns recording on for every
// leased cell (the grant's scenario never carries the flag — it does
// not cross the wire) and leaves one valid v1 trace per cell, named by
// sanitized cell name, durable before the upload.
func TestWorkerRecordDirWritesCellTraces(t *testing.T) {
	spec := e2eSpec()
	spec.Loads = spec.Loads[:1]
	spec.Seeds = spec.Seeds[:1] // 2 cells
	var buf bytes.Buffer
	coord, err := New(spec, dist.NewJSONLSink(&buf), nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	recDir := filepath.Join(t.TempDir(), "traces")
	st, err := RunWorker(context.Background(), testClient(srv.URL, "w1"), WorkerOptions{
		Dir:          t.TempDir(),
		WaitInterval: 5 * time.Millisecond,
		RecordDir:    recDir,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Ran != spec.Size() || st.Failed != 0 {
		t.Fatalf("worker stats %+v, want %d ran and 0 failed", st, spec.Size())
	}

	jobs, err := spec.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		path := filepath.Join(recDir, flowtrace.FileName(j.Scenario.Name))
		tr, err := flowtrace.ReadFile(path)
		if err != nil {
			t.Fatalf("cell %s: %v", j.Scenario.Name, err)
		}
		if len(tr.Flows) == 0 {
			t.Fatalf("cell %s: trace carries no flows", j.Scenario.Name)
		}
	}
	entries, err := os.ReadDir(recDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != spec.Size() {
		t.Fatalf("record dir holds %d files, want one per cell (%d)", len(entries), spec.Size())
	}

	// The uploaded records must not grow: FlowTrace stays out of the
	// wire format (json:"-"), recording is a local artifact.
	if bytes.Contains(buf.Bytes(), []byte(`"flow_trace"`)) || bytes.Contains(buf.Bytes(), []byte(`"FlowTrace"`)) {
		t.Fatal("flow trace leaked into the coordinator record stream")
	}
}
