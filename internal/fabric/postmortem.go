package fabric

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// CellReport is one cell's post-mortem row: where its wall-clock went
// and how many grants it burned getting there.
type CellReport struct {
	Index      int
	Key        string
	Name       string
	Done       bool
	PreDone    bool // done before this journal started (resume)
	Worker     string
	Failed     bool
	Timeout    bool
	WaitNs     int64
	RunNs      int64
	Attempts   int
	Expiries   int
	Steals     int
	Duplicates int
	Heartbeats int
}

// WorkerReport is one worker's post-mortem row.
type WorkerReport struct {
	Worker     string
	Granted    int // leases received (incl. steals)
	Stolen     int // of those, steals this worker performed
	Delivered  int
	Duplicates int // deliveries dropped as duplicates
	Expiries   int // leases this worker lost to heartbeat silence
	Heartbeats int
	Telemetry  Telemetry // last reported payload
	HasTel     bool
}

// StealReport is one steal's efficacy row: whether breaking the
// holder's exclusivity actually produced the accepted result.
type StealReport struct {
	Index  int
	Name   string
	Thief  string
	Holder string
	TNs    int64 // journal timestamp of the steal
	Won    bool  // the thief delivered the accepted result
}

// Postmortem is a campaign's journal folded into an attribution
// report: per-cell queue-wait vs run-time, per-worker throughput,
// steal efficacy, and expiry/attempt histograms.
type Postmortem struct {
	Meta    *JournalMeta
	Cells   []CellReport
	Workers []WorkerReport
	Steals  []StealReport

	// AttemptHist counts cells by grants consumed; ExpiryHist counts
	// cells by leases lost to expiry (0-attempt cells are pre-done).
	AttemptHist map[int]int
	ExpiryHist  map[int]int

	Results    int
	Failed     int
	Timeouts   int
	Grants     int // non-stolen grants
	StolenN    int
	Expiries   int
	Duplicates int

	TotalWaitNs int64
	TotalRunNs  int64
	WastedNs    int64 // grant-to-duplicate time of dropped deliveries
	SpanNs      int64 // first to last journal timestamp
}

// BuildPostmortem folds a parsed journal into its report. It tolerates
// a truncated journal (crashed coordinator): cells with no result
// event simply report as not done.
func BuildPostmortem(meta *JournalMeta, events []JournalEvent) *Postmortem {
	pm := &Postmortem{
		Meta:        meta,
		Cells:       make([]CellReport, meta.Cells),
		AttemptHist: map[int]int{},
		ExpiryHist:  map[int]int{},
	}
	for i := range pm.Cells {
		pm.Cells[i].Index = i
		if i < len(meta.Keys) {
			pm.Cells[i].Key = meta.Keys[i]
		}
		if i < len(meta.Names) {
			pm.Cells[i].Name = meta.Names[i]
		}
	}
	for _, idx := range meta.PreDone {
		if idx >= 0 && idx < len(pm.Cells) {
			pm.Cells[idx].Done = true
			pm.Cells[idx].PreDone = true
		}
	}
	workers := map[string]*WorkerReport{}
	wk := func(name string) *WorkerReport {
		w, ok := workers[name]
		if !ok {
			w = &WorkerReport{Worker: name}
			workers[name] = w
		}
		return w
	}
	grantT := map[int64]int64{}  // lease id → grant t_ns
	leaseW := map[int64]string{} // lease id → worker
	var firstT, lastT int64
	for _, ev := range events {
		if firstT == 0 {
			firstT = ev.TNs
		}
		lastT = ev.TNs
		var cr *CellReport
		if ev.Cell >= 0 && ev.Cell < len(pm.Cells) {
			cr = &pm.Cells[ev.Cell]
		}
		switch ev.Type {
		case EventGrant, EventSteal:
			grantT[ev.Lease] = ev.TNs
			leaseW[ev.Lease] = ev.Worker
			w := wk(ev.Worker)
			w.Granted++
			if cr != nil {
				cr.Attempts++
			}
			if ev.Type == EventSteal {
				pm.StolenN++
				w.Stolen++
				if cr != nil {
					cr.Steals++
				}
				pm.Steals = append(pm.Steals, StealReport{
					Index: ev.Cell, Name: cellName(pm, ev.Cell),
					Thief: ev.Worker, Holder: ev.Holder, TNs: ev.TNs,
				})
			} else {
				pm.Grants++
			}
		case EventHeartbeat:
			w := wk(ev.Worker)
			w.Heartbeats++
			if ev.Telemetry != nil {
				w.Telemetry = *ev.Telemetry
				w.HasTel = true
			}
			if cr != nil {
				cr.Heartbeats++
			}
		case EventExpire:
			pm.Expiries++
			wk(ev.Worker).Expiries++
			if cr != nil {
				cr.Expiries++
			}
		case EventResult:
			pm.Results++
			w := wk(ev.Worker)
			w.Delivered++
			if cr != nil {
				cr.Done = true
				cr.Worker = ev.Worker
				cr.Failed = ev.Failed
				cr.Timeout = ev.Timeout
				cr.WaitNs = ev.WaitNs
				cr.RunNs = ev.RunNs
				if ev.Attempts > 0 {
					cr.Attempts = ev.Attempts
				}
			}
			if ev.Failed {
				pm.Failed++
			}
			if ev.Timeout {
				pm.Timeouts++
			}
			pm.TotalWaitNs += ev.WaitNs
			pm.TotalRunNs += ev.RunNs
		case EventDuplicate:
			pm.Duplicates++
			wk(ev.Worker).Duplicates++
			if cr != nil {
				cr.Duplicates++
			}
			if t, ok := grantT[ev.Lease]; ok && ev.Lease != 0 {
				pm.WastedNs += ev.TNs - t
			}
		case EventTimeout:
			// counted via the result's Timeout flag
		}
	}
	pm.SpanNs = lastT - firstT
	for i := range pm.Steals {
		s := &pm.Steals[i]
		if s.Index >= 0 && s.Index < len(pm.Cells) {
			c := &pm.Cells[s.Index]
			s.Won = c.Done && c.Worker == s.Thief
		}
	}
	for i := range pm.Cells {
		c := &pm.Cells[i]
		if c.PreDone {
			continue
		}
		pm.AttemptHist[c.Attempts]++
		pm.ExpiryHist[c.Expiries]++
	}
	names := make([]string, 0, len(workers))
	for n := range workers {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		pm.Workers = append(pm.Workers, *workers[n])
	}
	return pm
}

func cellName(pm *Postmortem, idx int) string {
	if idx >= 0 && idx < len(pm.Cells) {
		return pm.Cells[idx].Name
	}
	return ""
}

// stragglers returns the n slowest done cells by run time.
func (pm *Postmortem) stragglers(n int) []CellReport {
	done := make([]CellReport, 0, len(pm.Cells))
	for _, c := range pm.Cells {
		if c.Done && !c.PreDone {
			done = append(done, c)
		}
	}
	sort.Slice(done, func(i, j int) bool {
		if done[i].RunNs != done[j].RunNs {
			return done[i].RunNs > done[j].RunNs
		}
		return done[i].Index < done[j].Index
	})
	if len(done) > n {
		done = done[:n]
	}
	return done
}

func pmDur(ns int64) string {
	d := time.Duration(ns)
	switch {
	case d >= time.Minute:
		return fmt.Sprintf("%.1fm", d.Minutes())
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%dns", ns)
	}
}

func pmFlags(c *CellReport) string {
	switch {
	case c.Timeout:
		return "timeout"
	case c.Failed:
		return "failed"
	case c.PreDone:
		return "pre-done"
	case c.Done:
		return "ok"
	default:
		return "incomplete"
	}
}

// WriteMarkdown renders the post-mortem as a markdown report.
func (pm *Postmortem) WriteMarkdown(w io.Writer) error {
	name := pm.Meta.Campaign
	if name == "" {
		name = "(unnamed)"
	}
	fmt.Fprintf(w, "# Campaign post-mortem: %s\n\n", name)
	fmt.Fprintf(w, "%d cells · %d results (%d failed, %d timeouts) · span %s\n\n",
		pm.Meta.Cells, pm.Results, pm.Failed, pm.Timeouts, pmDur(pm.SpanNs))
	fmt.Fprintf(w, "| metric | value |\n|---|---|\n")
	fmt.Fprintf(w, "| grants | %d |\n", pm.Grants)
	fmt.Fprintf(w, "| steals | %d |\n", pm.StolenN)
	fmt.Fprintf(w, "| lease expiries | %d |\n", pm.Expiries)
	fmt.Fprintf(w, "| duplicate deliveries | %d |\n", pm.Duplicates)
	fmt.Fprintf(w, "| total queue wait | %s |\n", pmDur(pm.TotalWaitNs))
	fmt.Fprintf(w, "| total run time | %s |\n", pmDur(pm.TotalRunNs))
	fmt.Fprintf(w, "| duplicate work wasted | %s |\n", pmDur(pm.WastedNs))
	if len(pm.Meta.PreDone) > 0 {
		fmt.Fprintf(w, "| cells resumed as done | %d |\n", len(pm.Meta.PreDone))
	}
	fmt.Fprintln(w)

	if top := pm.stragglers(10); len(top) > 0 {
		fmt.Fprintf(w, "## Stragglers (slowest %d cells)\n\n", len(top))
		fmt.Fprintf(w, "| cell | scenario | wait | run | attempts | expiries | worker | state |\n")
		fmt.Fprintf(w, "|---|---|---|---|---|---|---|---|\n")
		for i := range top {
			c := &top[i]
			fmt.Fprintf(w, "| %d | %s | %s | %s | %d | %d | %s | %s |\n",
				c.Index, c.Name, pmDur(c.WaitNs), pmDur(c.RunNs),
				c.Attempts, c.Expiries, c.Worker, pmFlags(c))
		}
		fmt.Fprintln(w)
	}

	if len(pm.Workers) > 0 {
		fmt.Fprintf(w, "## Workers\n\n")
		fmt.Fprintf(w, "| worker | granted | stolen | delivered | dup | expiries | heartbeats | throughput |\n")
		fmt.Fprintf(w, "|---|---|---|---|---|---|---|---|\n")
		for i := range pm.Workers {
			wr := &pm.Workers[i]
			thr := "-"
			if wr.Delivered > 0 && pm.SpanNs > 0 {
				thr = fmt.Sprintf("%.2f cells/s", float64(wr.Delivered)/(float64(pm.SpanNs)/1e9))
			}
			fmt.Fprintf(w, "| %s | %d | %d | %d | %d | %d | %d | %s |\n",
				wr.Worker, wr.Granted, wr.Stolen, wr.Delivered,
				wr.Duplicates, wr.Expiries, wr.Heartbeats, thr)
		}
		fmt.Fprintln(w)
	}

	if len(pm.Steals) > 0 {
		won := 0
		for _, s := range pm.Steals {
			if s.Won {
				won++
			}
		}
		fmt.Fprintf(w, "## Steal efficacy\n\n")
		fmt.Fprintf(w, "%d steal(s), %d won (thief delivered the accepted result); duplicate work wasted %s.\n\n",
			len(pm.Steals), won, pmDur(pm.WastedNs))
		fmt.Fprintf(w, "| cell | scenario | thief | holder | outcome |\n|---|---|---|---|---|\n")
		for _, s := range pm.Steals {
			outcome := "lost"
			if s.Won {
				outcome = "won"
			}
			fmt.Fprintf(w, "| %d | %s | %s | %s | %s |\n", s.Index, s.Name, s.Thief, s.Holder, outcome)
		}
		fmt.Fprintln(w)
	}

	fmt.Fprintf(w, "## Attempt histogram\n\n| attempts | cells |\n|---|---|\n")
	writeHist(w, pm.AttemptHist)
	fmt.Fprintf(w, "\n## Expiry histogram\n\n| expiries | cells |\n|---|---|\n")
	writeHist(w, pm.ExpiryHist)
	return nil
}

func writeHist(w io.Writer, h map[int]int) {
	keys := make([]int, 0, len(h))
	for k := range h {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "| %d | %d |\n", k, h[k])
	}
}

// WriteCSV renders one row per cell for downstream tooling (the same
// shape the paper-figure pipeline consumes for FCT tables).
func (pm *Postmortem) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "cell,key,name,state,wait_ns,run_ns,attempts,expiries,steals,duplicates,heartbeats,worker,failed,timeout"); err != nil {
		return err
	}
	for i := range pm.Cells {
		c := &pm.Cells[i]
		if _, err := fmt.Fprintf(w, "%d,%s,%s,%s,%d,%d,%d,%d,%d,%d,%d,%s,%t,%t\n",
			c.Index, c.Key, csvEscape(c.Name), pmFlags(c), c.WaitNs, c.RunNs,
			c.Attempts, c.Expiries, c.Steals, c.Duplicates, c.Heartbeats,
			c.Worker, c.Failed, c.Timeout); err != nil {
			return err
		}
	}
	return nil
}

// csvEscape keeps scenario names CSV-safe; campaign expansion names
// contain no quotes, so replacing commas is sufficient.
func csvEscape(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		if s[i] == ',' {
			out = append(out, ';')
		} else {
			out = append(out, s[i])
		}
	}
	return string(out)
}
