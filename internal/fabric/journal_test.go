package fabric

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"contra/internal/dist"
)

// TestStatusIsReadOnly is the satellite regression for the old
// behavior where Status ran the lazy expiry sweep as a side effect: a
// monitoring poller hitting GET /v1/status could perturb lease-expiry
// timing. Status must observe an expired-but-unswept lease as still
// active; only a state-changing call (here Lease) may sweep it.
func TestStatusIsReadOnly(t *testing.T) {
	const ttl = 10 * time.Second
	clk := newFakeClock()
	c, _ := newTestCoordinator(t, Options{LeaseTTL: ttl, Clock: clk.Now})
	g := mustLease(t, c, "w1")
	clk.Advance(ttl + time.Second) // lease is past its TTL, unswept
	for i := 0; i < 3; i++ {
		st := c.Status()
		if st.ActiveLeases != 1 || st.ExpiredLeases != 0 || st.InFlight != 1 {
			t.Fatalf("poll %d: status %+v, want the expired-but-unswept lease still active", i, st)
		}
	}
	// The polls above must not have swept: the next Lease call is the
	// first to notice the expiry, and it hands the same cell back out.
	g2 := mustLease(t, c, "w2")
	if g2.Index != g.Index {
		t.Fatalf("after polls, w2 got index %d, want the expired cell %d", g2.Index, g.Index)
	}
	if st := c.Status(); st.ExpiredLeases != 1 {
		t.Fatalf("ExpiredLeases = %d after the sweeping Lease, want 1", st.ExpiredLeases)
	}
}

// TestCellsLifecycle walks one cell through pending → leased →
// running → done and checks the /v1/cells state machine and attempt
// history at each step. Cells, like Status, must be a pure read.
func TestCellsLifecycle(t *testing.T) {
	const ttl = 10 * time.Second
	clk := newFakeClock()
	c, _ := newTestCoordinator(t, Options{LeaseTTL: ttl, Clock: clk.Now})

	cells := c.Cells()
	if len(cells) != 4 {
		t.Fatalf("Cells() returned %d cells, want 4", len(cells))
	}
	for i, cs := range cells {
		if cs.State != CellPending || len(cs.Attempts) != 0 {
			t.Fatalf("cell %d initial state %q attempts %d, want pending/0", i, cs.State, len(cs.Attempts))
		}
	}

	clk.Advance(3 * time.Second) // queue wait before the first grant
	g := mustLease(t, c, "w1")
	cs := c.Cells()[g.Index]
	if cs.State != CellLeased {
		t.Fatalf("granted cell state %q, want leased", cs.State)
	}
	if len(cs.Attempts) != 1 || cs.Attempts[0].Worker != "w1" || cs.Attempts[0].Outcome != AttemptRunning {
		t.Fatalf("granted cell attempts %+v, want one running attempt by w1", cs.Attempts)
	}
	if cs.WaitNs != (3 * time.Second).Nanoseconds() {
		t.Fatalf("WaitNs = %d, want 3s", cs.WaitNs)
	}

	clk.Advance(time.Second)
	c.Heartbeat("w1", g.LeaseID, nil)
	cs = c.Cells()[g.Index]
	if cs.State != CellRunning || cs.Attempts[0].Heartbeats != 1 {
		t.Fatalf("heartbeated cell state %q beats %d, want running/1", cs.State, cs.Attempts[0].Heartbeats)
	}

	clk.Advance(time.Second)
	if _, err := c.Result("w1", g.LeaseID, fakeRecord(g)); err != nil {
		t.Fatal(err)
	}
	cs = c.Cells()[g.Index]
	if cs.State != CellDone || cs.Worker != "w1" || cs.Attempts[0].Outcome != AttemptDelivered {
		t.Fatalf("done cell %+v, want done, delivered by w1", cs)
	}
	if cs.RunNs != (2 * time.Second).Nanoseconds() {
		t.Fatalf("RunNs = %d, want 2s (grant to acceptance)", cs.RunNs)
	}
	// fakeRecord carries Err "fabricated" — failed, but not a timeout.
	if !cs.Failed || cs.Timeout {
		t.Fatalf("done cell failed=%v timeout=%v, want failed, no timeout", cs.Failed, cs.Timeout)
	}
}

// TestStatusWorkerTelemetry: heartbeat-reported telemetry surfaces in
// the per-worker Status rows, sorted by worker name.
func TestStatusWorkerTelemetry(t *testing.T) {
	const ttl = 10 * time.Second
	clk := newFakeClock()
	c, _ := newTestCoordinator(t, Options{LeaseTTL: ttl, Clock: clk.Now})
	ga := mustLease(t, c, "wa")
	gb := mustLease(t, c, "wb")
	clk.Advance(time.Second)
	c.Heartbeat("wb", gb.LeaseID, &Telemetry{CellsDone: 3, ElapsedNs: 42, UploadRetries: 2, Replayed: 1})
	c.Heartbeat("wa", ga.LeaseID, nil) // no payload: row keeps zero telemetry
	st := c.Status()
	if len(st.Workers) != 2 || st.Workers[0].Worker != "wa" || st.Workers[1].Worker != "wb" {
		t.Fatalf("worker rows %+v, want wa, wb sorted", st.Workers)
	}
	wb := st.Workers[1]
	if wb.Telemetry.CellsDone != 3 || wb.Telemetry.ElapsedNs != 42 ||
		wb.Telemetry.UploadRetries != 2 || wb.Telemetry.Replayed != 1 {
		t.Fatalf("wb telemetry %+v, want the heartbeat payload", wb.Telemetry)
	}
	if wb.Leases != 1 || wb.Heartbeats != 1 || wb.LastSeenNs != 0 {
		t.Fatalf("wb row %+v, want 1 lease, 1 beat, just seen", wb)
	}
	if st.Workers[0].Telemetry != (Telemetry{}) {
		t.Fatalf("wa telemetry %+v, want zero (no payload reported)", st.Workers[0].Telemetry)
	}
}

// journalScript drives one fixed fake-clock coordinator run against a
// journal buffer: grants, heartbeats, an expiry, a steal, a duplicate,
// and a timeout failure all occur at scripted instants.
func journalScript(t *testing.T) []byte {
	t.Helper()
	const ttl = 10 * time.Second
	clk := newFakeClock()
	var buf bytes.Buffer
	var out bytes.Buffer
	c, err := New(coordSpec(), dist.NewJSONLSink(&out), nil, Options{
		LeaseTTL: ttl, StealAfter: 2 * time.Second, Clock: clk.Now,
		Journal: NewJournal(&buf),
	})
	if err != nil {
		t.Fatal(err)
	}
	g0 := mustLease(t, c, "w1") // cell 0: will expire, then re-grant
	g1 := mustLease(t, c, "w2") // cell 1: clean delivery
	clk.Advance(HeartbeatInterval(ttl))
	c.Heartbeat("w2", g1.LeaseID, &Telemetry{CellsDone: 1})
	if _, err := c.Result("w2", g1.LeaseID, fakeRecord(g1)); err != nil {
		t.Fatal(err)
	}
	clk.Advance(ttl) // w1's lease (no heartbeats) is now expired
	g0b := mustLease(t, c, "w2")
	if g0b.Index != g0.Index {
		t.Fatalf("expiry re-grant gave index %d, want %d", g0b.Index, g0.Index)
	}
	g2 := mustLease(t, c, "w2")
	g3 := mustLease(t, c, "w3")
	rec3 := fakeRecord(g3)
	rec3.Err = "" // cell 3: a success
	if _, err := c.Result("w3", g3.LeaseID, rec3); err != nil {
		t.Fatal(err)
	}
	// w3 idles past StealAfter and steals w2's longest-running cell 0.
	clk.Advance(3 * time.Second)
	gs := mustLease(t, c, "w3")
	if !gs.Stolen {
		t.Fatalf("expected a steal, got %+v", gs)
	}
	// Thief delivers; the victim's late upload is a duplicate.
	if _, err := c.Result("w3", gs.LeaseID, fakeRecord(gs)); err != nil {
		t.Fatal(err)
	}
	if dup, err := c.Result("w2", g0b.LeaseID, fakeRecord(g0b)); err != nil || !dup {
		t.Fatalf("victim delivery: dup=%v err=%v, want duplicate", dup, err)
	}
	// Last cell fails with a timeout-prefixed error.
	rec2 := fakeRecord(g2)
	rec2.Err = "cell timeout after 1s"
	if _, err := c.Result("w2", g2.LeaseID, rec2); err != nil {
		t.Fatal(err)
	}
	select {
	case <-c.Done():
	default:
		t.Fatal("scripted campaign did not complete")
	}
	return buf.Bytes()
}

// TestJournalDeterministicBytes is the acceptance criterion: the same
// fake-clock schedule journals byte-identically across runs.
func TestJournalDeterministicBytes(t *testing.T) {
	a := journalScript(t)
	b := journalScript(t)
	if !bytes.Equal(a, b) {
		t.Fatalf("same-schedule journals differ:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", a, b)
	}
}

// TestJournalRecordsLifecycle parses the scripted journal and checks
// the event stream tells the story: meta first, dense seq, monotone
// time, and one of each interesting transition with correct fields.
func TestJournalRecordsLifecycle(t *testing.T) {
	raw := journalScript(t)
	meta, events, err := ReadJournal(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if meta.Cells != 4 || len(meta.Keys) != 4 || len(meta.Names) != 4 {
		t.Fatalf("meta %+v, want 4 cells with names and keys", meta)
	}
	if meta.LeaseTTLNs != int64(10*time.Second) || meta.StealAfterNs != int64(2*time.Second) {
		t.Fatalf("meta knobs %+v, want the configured TTL and StealAfter", meta)
	}
	count := map[string]int{}
	var lastSeq, lastT int64
	for i, ev := range events {
		if ev.Seq != lastSeq+1 {
			t.Fatalf("event %d seq %d, want dense (prev %d)", i, ev.Seq, lastSeq)
		}
		if ev.TNs < lastT {
			t.Fatalf("event %d time went backwards: %d < %d", i, ev.TNs, lastT)
		}
		lastSeq, lastT = ev.Seq, ev.TNs
		count[ev.Type]++
		switch ev.Type {
		case EventSteal:
			if ev.Holder != "w2" || ev.Worker != "w3" || ev.Cell != 0 {
				t.Fatalf("steal event %+v, want w3 stealing cell 0 from w2", ev)
			}
		case EventExpire:
			if ev.Worker != "w1" || ev.Cell != 0 || ev.Attempt != 1 {
				t.Fatalf("expire event %+v, want w1 losing attempt 1 of cell 0", ev)
			}
		case EventHeartbeat:
			if !ev.Live || ev.Telemetry == nil || ev.Telemetry.CellsDone != 1 {
				t.Fatalf("heartbeat event %+v, want live with telemetry", ev)
			}
		}
	}
	want := map[string]int{
		EventGrant: 5, EventSteal: 1, EventHeartbeat: 1, EventExpire: 1,
		EventResult: 4, EventDuplicate: 1, EventTimeout: 1,
	}
	for typ, n := range want {
		if count[typ] != n {
			t.Fatalf("journal has %d %s event(s), want %d\ncounts: %v", count[typ], typ, n, count)
		}
	}
	// The stolen cell's result consumed 3 attempts (grant, re-grant
	// after expiry, steal) and carries its wait/run split.
	for _, ev := range events {
		if ev.Type == EventResult && ev.Cell == 0 {
			if ev.Attempts != 3 || ev.Worker != "w3" {
				t.Fatalf("cell 0 result %+v, want 3 attempts delivered by w3", ev)
			}
			if ev.WaitNs != 0 || ev.RunNs <= 0 {
				t.Fatalf("cell 0 result wait=%d run=%d, want zero wait, positive run", ev.WaitNs, ev.RunNs)
			}
		}
	}
}

// TestJournalTornFinalLineTolerated: a journal whose writer died
// mid-line still parses, minus the torn tail — the same contract as
// the result stream.
func TestJournalTornFinalLineTolerated(t *testing.T) {
	raw := journalScript(t)
	_, whole, err := ReadJournal(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	torn := raw[:len(raw)-10] // amputate mid-final-line
	_, events, err := ReadJournal(bytes.NewReader(torn))
	if err != nil {
		t.Fatalf("torn journal rejected: %v", err)
	}
	if len(events) != len(whole)-1 {
		t.Fatalf("torn journal has %d events, want %d (one torn line dropped)", len(events), len(whole)-1)
	}
	// Corruption in the middle is NOT tolerated.
	bad := append([]byte{}, raw...)
	bad[len(raw)/2] = 0
	if _, _, err := ReadJournal(bytes.NewReader(bad)); err == nil {
		t.Fatal("mid-stream corruption accepted")
	}
	// A version this binary does not speak is refused.
	vbad := bytes.Replace(raw, []byte(`"v":1`), []byte(`"v":99`), 1)
	if _, _, err := ReadJournal(bytes.NewReader(vbad)); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("future journal version accepted (err %v)", err)
	}
}

// TestHeartbeatJournalingOffZeroAllocs pins the strictly-additive
// contract: with no Journal configured, the steady-state lease-path
// operation (heartbeat) performs zero heap allocations.
func TestHeartbeatJournalingOffZeroAllocs(t *testing.T) {
	clk := newFakeClock()
	c, _ := newTestCoordinator(t, Options{Clock: clk.Now})
	g := mustLease(t, c, "w1")
	if avg := testing.AllocsPerRun(1000, func() {
		if !c.Heartbeat("w1", g.LeaseID, nil) {
			t.Fatal("lease lost")
		}
	}); avg != 0 {
		t.Fatalf("journaling-off heartbeat allocates %.1f per op, want 0", avg)
	}
}
