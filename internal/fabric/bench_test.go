package fabric

import (
	"io"
	"testing"
	"time"

	"contra/internal/dist"
)

// benchCoordinator builds a coordinator with one live lease held by
// "w1", on a fake clock so nothing ever expires mid-benchmark.
func benchCoordinator(b *testing.B, journal *Journal) (*Coordinator, *Grant) {
	b.Helper()
	clk := newFakeClock()
	c, err := New(coordSpec(), dist.NewJSONLSink(io.Discard), nil, Options{
		LeaseTTL: time.Hour, Clock: clk.Now, Journal: journal,
	})
	if err != nil {
		b.Fatal(err)
	}
	g, done := c.Lease("w1")
	if done || g == nil {
		b.Fatal("no grant")
	}
	return c, g
}

// BenchmarkFabricHeartbeat is the journaling-off steady-state lease
// path — the bench gate pins it at zero allocations per op (the
// strictly-additive observability contract).
func BenchmarkFabricHeartbeat(b *testing.B) {
	c, g := benchCoordinator(b, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !c.Heartbeat("w1", g.LeaseID, nil) {
			b.Fatal("lease lost")
		}
	}
}

// BenchmarkFabricHeartbeatJournaled is the same op with the journal
// on: the cost of one JSON event line per heartbeat.
func BenchmarkFabricHeartbeatJournaled(b *testing.B) {
	c, g := benchCoordinator(b, NewJournal(io.Discard))
	tel := &Telemetry{CellsDone: 1, ElapsedNs: 1000}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !c.Heartbeat("w1", g.LeaseID, tel) {
			b.Fatal("lease lost")
		}
	}
}

// BenchmarkFabricStatus is the read-only monitoring snapshot a poller
// hits; it must never touch lease state.
func BenchmarkFabricStatus(b *testing.B) {
	c, _ := benchCoordinator(b, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := c.Status()
		if st.ActiveLeases != 1 {
			b.Fatal("lease lost")
		}
	}
}
