package fabric

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"contra/internal/campaign"
	"contra/internal/dist"
	"contra/internal/flowtrace"
)

// WorkerOptions tunes one worker process.
type WorkerOptions struct {
	// Dir is the worker's local durability directory (required): a
	// results.jsonl record stream and a done.ck key checkpoint. Every
	// completed cell is written there before it is uploaded, so a
	// worker killed at any instant re-sends finished results on
	// restart instead of re-running them. Reusing another (live)
	// worker's Dir is not supported.
	Dir string

	// CellTimeout overrides the campaign's per-cell wall-clock budget:
	// > 0 replaces it, 0 uses the grant's, < 0 forces no budget.
	CellTimeout time.Duration

	// WaitInterval is the idle poll interval when the coordinator has
	// nothing to lease; <= 0 defers to the coordinator's suggestion
	// (falling back to 500ms).
	WaitInterval time.Duration

	// Log, when set, receives one line per worker event.
	Log io.Writer

	// RecordDir, when set, turns on flow recording for every leased
	// cell and writes each cell's v1 trace there (<sanitized cell
	// name>.flow.jsonl) before the record is locally durable. The
	// grant's scenario never carries RecordFlows (it is json:"-" and
	// does not cross the wire), so the worker sets it here.
	RecordDir string

	// crash, when set (fault-injection tests only), is consulted at
	// the named stages; returning true makes the worker die on the
	// spot with ErrWorkerCrashed, exactly as abruptly as a kill -9
	// minus the process exit.
	crash func(stage crashStage, key string) bool
}

// crashStage names the fault-injection points of a worker's cell loop.
type crashStage string

const (
	// crashLeased: a cell is leased but nothing ran yet — the lease
	// must expire and the cell re-run elsewhere.
	crashLeased crashStage = "leased"
	// crashRecorded: the cell ran and its record is locally durable,
	// but the upload never happened — a restarted worker must re-send
	// it without re-running.
	crashRecorded crashStage = "recorded"
)

// ErrWorkerCrashed is returned by RunWorker when the test-only crash
// hook fires; real crashes don't return at all.
var ErrWorkerCrashed = errors.New("fabric: worker crashed (injected)")

// WorkerStats summarizes one worker incarnation.
type WorkerStats struct {
	// Ran is how many cells this incarnation executed.
	Ran int
	// Resent is how many locally-checkpointed results were delivered
	// without re-running (the crash/resume path).
	Resent int
	// Duplicates is how many uploads the coordinator reported as
	// already delivered (stolen cells, races, re-sends).
	Duplicates int
	// Failed is how many of Ran ended in a scenario error (including
	// cell timeouts).
	Failed int
}

// workerTel accumulates what this worker incarnation reports in its
// heartbeat telemetry: cells delivered, startup replays, and — while a
// cell runs — when it started. The heartbeat goroutine snapshots it
// concurrently with the main loop's updates.
type workerTel struct {
	mu        sync.Mutex
	done      int
	replayed  int
	cellStart time.Time
}

func (t *workerTel) delivered()           { t.mu.Lock(); t.done++; t.mu.Unlock() }
func (t *workerTel) replay()              { t.mu.Lock(); t.done++; t.replayed++; t.mu.Unlock() }
func (t *workerTel) cell(start time.Time) { t.mu.Lock(); t.cellStart = start; t.mu.Unlock() }
func (t *workerTel) snapshot(c *Client) *Telemetry {
	t.mu.Lock()
	defer t.mu.Unlock()
	tel := &Telemetry{
		CellsDone:     t.done,
		UploadRetries: c.UploadRetries(),
		Replayed:      t.replayed,
	}
	if !t.cellStart.IsZero() {
		tel.ElapsedNs = time.Since(t.cellStart).Nanoseconds()
	}
	return tel
}

// RunWorker drives one worker against a coordinator until the
// campaign completes, the context ends, or delivery permanently
// fails. The loop is: poll for a lease, run the cell (bounded by the
// cell timeout, heartbeating at half the lease TTL), write the record
// locally, then upload with retry. At-least-once is the contract: on
// any ambiguity (lost lease, retried upload, restart) the worker errs
// toward delivering again and lets the coordinator deduplicate.
func RunWorker(ctx context.Context, client *Client, opts WorkerOptions) (WorkerStats, error) {
	var st WorkerStats
	if opts.Dir == "" {
		return st, fmt.Errorf("fabric: worker needs a durability dir")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return st, err
	}
	if opts.RecordDir != "" {
		if err := os.MkdirAll(opts.RecordDir, 0o755); err != nil {
			return st, err
		}
	}
	streamPath := filepath.Join(opts.Dir, "results.jsonl")
	ckPath := filepath.Join(opts.Dir, "done.ck")

	// Load what previous incarnations finished; their records re-send
	// below (the coordinator may have restarted and lost them, or
	// deduplicate them in one round trip).
	local, err := loadLocalRecords(streamPath)
	if err != nil {
		return st, err
	}
	sink, err := dist.CreateJSONL(streamPath, true)
	if err != nil {
		return st, err
	}
	defer sink.Close()
	ck, err := dist.OpenCheckpoint(ckPath)
	if err != nil {
		return st, err
	}
	defer ck.Close()
	// Only keys whose records are actually durable count as done
	// (same cross-check as the shard resume path).
	ck.Retain(func(k string) bool { _, ok := local[k]; return ok })

	tel := &workerTel{}
	logf(opts.Log, "worker %s: %d locally completed cell(s) to re-send", client.Worker, len(local))
	for key, rec := range local {
		dup, err := client.Result(ctx, 0, rec)
		if err != nil {
			return st, fmt.Errorf("fabric: re-send %s: %w", key, err)
		}
		st.Resent++
		tel.replay()
		if dup {
			st.Duplicates++
		}
	}

	for {
		if err := ctx.Err(); err != nil {
			return st, err
		}
		resp, err := client.Lease(ctx)
		if err != nil {
			return st, err
		}
		switch resp.Status {
		case StatusDone:
			logf(opts.Log, "worker %s: campaign done (%d ran, %d re-sent, %d failed)",
				client.Worker, st.Ran, st.Resent, st.Failed)
			return st, nil
		case StatusWait:
			if err := waitCtx(ctx, opts.waitFor(resp.RetryNs)); err != nil {
				return st, err
			}
			continue
		case StatusLease:
			// handled below
		default:
			return st, fmt.Errorf("fabric: unknown lease status %q", resp.Status)
		}
		g := resp.Grant
		if g.Scenario == nil {
			return st, fmt.Errorf("fabric: grant %d carries no scenario", g.LeaseID)
		}
		if got := g.Scenario.Key(); got != g.Key {
			// Version skew between worker and coordinator binaries: the
			// scenario hashed differently here. Running it would poison
			// the campaign's determinism contract, so die loudly.
			return st, fmt.Errorf("fabric: cell %d key mismatch: coordinator %s, worker computes %s",
				g.Index, g.Key, got)
		}
		if rec, ok := local[g.Key]; ok {
			// A cell this worker already ran came back (the coordinator
			// restarted and its stream lost the record, or the earlier
			// re-send raced): deliver the stored record, don't re-run.
			dup, err := client.Result(ctx, g.LeaseID, rec)
			if err != nil {
				return st, fmt.Errorf("fabric: re-send %s: %w", g.Key, err)
			}
			st.Resent++
			tel.replay()
			if dup {
				st.Duplicates++
			}
			continue
		}
		if opts.crash != nil && opts.crash(crashLeased, g.Key) {
			return st, ErrWorkerCrashed
		}
		logf(opts.Log, "worker %s: lease %d cell %d %s%s",
			client.Worker, g.LeaseID, g.Index, g.Scenario.Name, stolenTag(g.Stolen))
		rec, err := runLeased(ctx, client, g, sink, ck, opts, tel)
		if err != nil {
			return st, err
		}
		local[g.Key] = rec
		if opts.crash != nil && opts.crash(crashRecorded, g.Key) {
			return st, ErrWorkerCrashed
		}
		dup, err := client.Result(ctx, g.LeaseID, rec)
		if err != nil {
			return st, fmt.Errorf("fabric: deliver %s: %w", g.Key, err)
		}
		st.Ran++
		tel.delivered()
		if dup {
			st.Duplicates++
		}
		if rec.Err != "" {
			st.Failed++
			logf(opts.Log, "worker %s: cell %d FAILED: %s", client.Worker, g.Index, rec.Err)
		}
	}
}

// runLeased executes one granted cell through the campaign.Stream /
// dist.Sink path, heartbeating (with telemetry) until the run
// completes, and returns the locally-durable record.
func runLeased(ctx context.Context, client *Client, g *Grant, sink dist.Sink, ck *dist.Checkpoint, opts WorkerOptions, tel *workerTel) (*dist.Record, error) {
	tel.cell(time.Now())
	defer tel.cell(time.Time{})
	hbStop := make(chan struct{})
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		interval := HeartbeatInterval(time.Duration(g.TTLNs))
		if interval <= 0 {
			interval = HeartbeatInterval(DefaultLeaseTTL)
		}
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-hbStop:
				return
			case <-ctx.Done():
				return
			case <-t.C:
				ok, err := client.Heartbeat(ctx, g.LeaseID, tel.snapshot(client))
				if err == nil && !ok {
					// The lease expired from the coordinator's view (e.g.
					// a long GC pause or partition): keep computing — the
					// result still uploads, and dedup resolves the race
					// with whoever re-leased the cell.
					logf(opts.Log, "worker %s: lease %d lost; finishing anyway", client.Worker, g.LeaseID)
				}
			}
		}
	}()
	defer func() { close(hbStop); <-hbDone }()

	var rec *dist.Record
	job := campaign.Job{Index: g.Index, Scenario: *g.Scenario}
	if opts.RecordDir != "" {
		job.Scenario.RecordFlows = true
	}
	err := campaign.Stream([]campaign.Job{job},
		campaign.Options{Workers: 1, CellTimeout: opts.cellTimeout(g)},
		func(j *campaign.Job, o *campaign.Outcome) error {
			rec = &dist.Record{
				Campaign: g.Campaign,
				Key:      g.Key,
				Index:    j.Index,
				Scenario: &j.Scenario,
				Result:   o.Result,
				Err:      o.Err,
			}
			// Local durability before any upload: trace first, record
			// second, mark third — same crash ordering as the shard
			// runner, so a marked cell always has both artifacts.
			if opts.RecordDir != "" && o.Result != nil && o.Result.FlowTrace != nil {
				path := filepath.Join(opts.RecordDir, flowtrace.FileName(j.Scenario.Name))
				if err := o.Result.FlowTrace.WriteFile(path); err != nil {
					return fmt.Errorf("fabric: writing trace for %s: %v", j.Scenario.Name, err)
				}
			}
			if err := sink.Emit(rec); err != nil {
				return err
			}
			return ck.Mark(g.Key)
		})
	if err != nil {
		return nil, err
	}
	if rec == nil {
		return nil, fmt.Errorf("fabric: cell %d emitted no outcome", g.Index)
	}
	return rec, nil
}

// cellTimeout resolves the effective per-cell budget for a grant.
func (o WorkerOptions) cellTimeout(g *Grant) time.Duration {
	switch {
	case o.CellTimeout > 0:
		return o.CellTimeout
	case o.CellTimeout < 0:
		return 0
	default:
		return time.Duration(g.CellNs)
	}
}

// waitFor resolves the idle poll delay from the coordinator's
// suggestion and the local override.
func (o WorkerOptions) waitFor(retryNs int64) time.Duration {
	if o.WaitInterval > 0 {
		return o.WaitInterval
	}
	if retryNs > 0 {
		return time.Duration(retryNs)
	}
	return 500 * time.Millisecond
}

// loadLocalRecords reads a worker's durable record stream into a
// by-key map; a missing file is an empty map.
func loadLocalRecords(path string) (map[string]*dist.Record, error) {
	recs, err := dist.ReadRecordsFile(path)
	if os.IsNotExist(err) {
		return map[string]*dist.Record{}, nil
	}
	if err != nil {
		return nil, err
	}
	out := make(map[string]*dist.Record, len(recs))
	for i := range recs {
		out[recs[i].Key] = &recs[i]
	}
	return out, nil
}

func waitCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func stolenTag(stolen bool) string {
	if stolen {
		return " (stolen)"
	}
	return ""
}

func logf(w io.Writer, format string, args ...any) {
	if w != nil {
		fmt.Fprintf(w, format+"\n", args...)
	}
}
