// Package fabric is the fault-tolerant distributed campaign layer: a
// coordinator that expands a campaign into cells keyed by
// scenario.Key, leases cells to worker processes over plain HTTP/JSON,
// and merges their streamed results back into the byte-deterministic
// output of internal/dist.
//
// The design goal is that no single fault serializes or loses a sweep:
//
//   - A worker that crashes, hangs, or partitions away simply stops
//     heartbeating; its leases expire and the cells are re-leased to
//     whoever asks next.
//   - Near the end of a campaign, when no unleased cells remain, idle
//     workers steal in-flight cells from stragglers (a second
//     concurrent lease), so one 500×-cost chaos cell cannot hold the
//     tail hostage behind a slow or dying worker.
//   - Workers checkpoint every completed cell locally before
//     uploading, so a kill -9'd worker re-sends finished results on
//     restart instead of re-running them.
//   - Execution is therefore at-least-once; the coordinator
//     deduplicates results by scenario.Key (dist.DedupSink) before
//     they reach the stream that dist.Merge folds into a report, so
//     the merged bytes are identical to a single-process run whatever
//     crashed, stole, or retried along the way.
//
// Time never advances on its own inside the Coordinator: every state
// transition (expiry sweep, steal eligibility) happens on a request,
// against an injectable clock — which is what lets the fault tests run
// on a fake clock with no wall-clock sleeps.
package fabric

import (
	"fmt"
	"sync"
	"time"

	"contra/internal/campaign"
	"contra/internal/dist"
	"contra/internal/scenario"
)

// DefaultLeaseTTL is the default lease lifetime. Workers heartbeat at
// half this interval (see HeartbeatInterval), so a dead worker's lease
// expires after two missed heartbeats.
const DefaultLeaseTTL = 10 * time.Second

// HeartbeatInterval derives the worker heartbeat period from a lease
// TTL: half the TTL, so reassignment happens within two missed
// heartbeat intervals of a worker dying.
func HeartbeatInterval(ttl time.Duration) time.Duration { return ttl / 2 }

// Options tunes a Coordinator.
type Options struct {
	// LeaseTTL is how long a lease lives without a heartbeat; <= 0
	// means DefaultLeaseTTL.
	LeaseTTL time.Duration

	// StealAfter is the minimum age of a cell's oldest live lease
	// before an idle worker may steal the cell (second concurrent
	// lease) when no unleased cells remain; <= 0 means LeaseTTL.
	StealAfter time.Duration

	// MaxLeasesPerCell caps concurrent leases on one cell during
	// end-of-campaign stealing; <= 0 means 2.
	MaxLeasesPerCell int

	// Clock overrides time.Now (fault tests drive a fake clock).
	Clock func() time.Time

	// Started, when set, fires under the coordinator lock whenever a
	// cell is leased (campaign.Options.Started shape — feeds the
	// progress Meter from coordinator state).
	Started func(*campaign.Job)

	// Progress, when set, fires under the coordinator lock when a
	// cell's first result is accepted (campaign.Options.Progress
	// shape).
	Progress func(done, total int, o *campaign.Outcome)
}

func (o Options) leaseTTL() time.Duration {
	if o.LeaseTTL <= 0 {
		return DefaultLeaseTTL
	}
	return o.LeaseTTL
}

func (o Options) stealAfter() time.Duration {
	if o.StealAfter <= 0 {
		return o.leaseTTL()
	}
	return o.StealAfter
}

func (o Options) maxLeases() int {
	if o.MaxLeasesPerCell <= 0 {
		return 2
	}
	return o.MaxLeasesPerCell
}

// lease is one worker's time-bounded claim on a cell.
type lease struct {
	id      int64
	worker  string
	cell    *cell
	granted time.Time
	expires time.Time
	stolen  bool
}

// cell is one unit of campaign work: a scenario plus its expansion
// index. A cell is pending (no leases), in flight (>= 1 lease), or
// done; expired leases silently return it to pending.
type cell struct {
	job     campaign.Job
	key     string
	done    bool
	leases  map[int64]*lease
	expired int // leases lost to expiry, for Status
}

// oldestLease returns the earliest-granted live lease, or nil.
func (c *cell) oldestLease() *lease {
	var oldest *lease
	for _, l := range c.leases {
		if oldest == nil || l.granted.Before(oldest.granted) ||
			(l.granted.Equal(oldest.granted) && l.id < oldest.id) {
			oldest = l
		}
	}
	return oldest
}

// Coordinator owns the authoritative campaign state: the cell table,
// the lease table, and the deduplicated result stream. All methods are
// safe for concurrent use; expiry is swept lazily at the head of every
// call, so tests can drive the full fault machinery through the
// injected clock alone.
type Coordinator struct {
	opts   Options
	name   string
	cellNs int64 // spec-level per-cell wall-clock budget, shipped in grants

	mu       sync.Mutex
	cells    []*cell
	byKey    map[string]*cell
	leases   map[int64]*lease
	sink     *dist.DedupSink
	nextID   int64
	done     int
	failed   int
	expired  int // total leases lost to expiry
	stolen   int // total stolen leases granted
	dups     int // total duplicate deliveries dropped
	finished chan struct{}
}

// New expands spec into cells and returns a Coordinator writing
// accepted results through sink (wrapped in a DedupSink seeded with
// alreadyDone). Cells whose keys appear in alreadyDone — typically
// dist.StreamKeys of the stream file a restarted coordinator is
// appending to — start out done, which is the coordinator-restart
// resume path.
func New(spec *campaign.Spec, sink dist.Sink, alreadyDone map[string]bool, opts Options) (*Coordinator, error) {
	if sink == nil {
		return nil, fmt.Errorf("fabric: nil sink")
	}
	jobs, err := spec.Jobs()
	if err != nil {
		return nil, err
	}
	if len(jobs) == 0 {
		return nil, fmt.Errorf("fabric: campaign %q expands to no cells", spec.Name)
	}
	if opts.Clock == nil {
		opts.Clock = time.Now
	}
	c := &Coordinator{
		opts:     opts,
		name:     spec.Name,
		cellNs:   spec.CellTimeoutNs,
		byKey:    make(map[string]*cell, len(jobs)),
		leases:   make(map[int64]*lease),
		sink:     dist.NewDedupSink(sink, alreadyDone),
		finished: make(chan struct{}),
	}
	for _, j := range jobs {
		cl := &cell{job: j, key: j.Scenario.Key(), leases: make(map[int64]*lease)}
		if alreadyDone[cl.key] {
			cl.done = true
			c.done++
		}
		c.cells = append(c.cells, cl)
		c.byKey[cl.key] = cl
	}
	if c.done == len(c.cells) {
		close(c.finished)
	}
	return c, nil
}

// Grant is a leased cell, the payload a worker runs. The scenario is
// carried in full (it round-trips through JSON losslessly for
// spec-driven scenarios), so workers need no copy of the campaign
// spec; the spec-level cell timeout rides along too.
type Grant struct {
	LeaseID  int64              `json:"lease_id"`
	Index    int                `json:"index"`
	Key      string             `json:"key"`
	Campaign string             `json:"campaign,omitempty"`
	Scenario *scenario.Scenario `json:"scenario"`
	TTLNs    int64              `json:"ttl_ns"`
	Stolen   bool               `json:"stolen,omitempty"`
	CellNs   int64              `json:"cell_timeout_ns,omitempty"`
}

// sweep drops every expired lease; a cell stripped of its last lease
// returns to pending. Callers hold mu.
func (c *Coordinator) sweep(now time.Time) {
	for id, l := range c.leases {
		if now.Before(l.expires) {
			continue
		}
		delete(c.leases, id)
		delete(l.cell.leases, id)
		l.cell.expired++
		c.expired++
	}
}

// grantLocked creates a lease on cl for worker. Callers hold mu.
func (c *Coordinator) grantLocked(cl *cell, worker string, now time.Time, stolen bool) *lease {
	c.nextID++
	l := &lease{
		id:      c.nextID,
		worker:  worker,
		cell:    cl,
		granted: now,
		expires: now.Add(c.opts.leaseTTL()),
		stolen:  stolen,
	}
	c.leases[l.id] = l
	cl.leases[l.id] = l
	if stolen {
		c.stolen++
	}
	if c.opts.Started != nil {
		job := cl.job
		c.opts.Started(&job)
	}
	return l
}

// Lease hands worker a cell to run. The three outcomes mirror the wire
// protocol: a grant, "wait" (nil grant — everything is leased and
// nothing is stealable yet), or campaign done (nil grant, done true).
//
// Pending cells are granted lowest-index first. With no pending cells
// left, the longest-in-flight cell whose oldest lease is at least
// StealAfter old — and which this worker doesn't already hold, and
// whose lease count is under MaxLeasesPerCell — is stolen.
func (c *Coordinator) Lease(worker string) (*Grant, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.opts.Clock()
	c.sweep(now)
	if c.done == len(c.cells) {
		return nil, true
	}
	// Lowest-index pending cell first: deterministic, and it keeps the
	// expansion's cheap/expensive interleaving intact.
	for _, cl := range c.cells {
		if cl.done || len(cl.leases) > 0 {
			continue
		}
		return c.wireGrant(c.grantLocked(cl, worker, now, false)), false
	}
	// Nothing pending: steal from the longest-running straggler.
	var victim *cell
	var victimOldest time.Time
	for _, cl := range c.cells {
		if cl.done || len(cl.leases) == 0 || len(cl.leases) >= c.opts.maxLeases() {
			continue
		}
		held := false
		for _, l := range cl.leases {
			if l.worker == worker {
				held = true
				break
			}
		}
		if held {
			continue
		}
		oldest := cl.oldestLease().granted
		if now.Sub(oldest) < c.opts.stealAfter() {
			continue
		}
		if victim == nil || oldest.Before(victimOldest) {
			victim, victimOldest = cl, oldest
		}
	}
	if victim != nil {
		return c.wireGrant(c.grantLocked(victim, worker, now, true)), false
	}
	return nil, false
}

// wireGrant renders a lease as its wire payload. Callers hold mu.
func (c *Coordinator) wireGrant(l *lease) *Grant {
	sc := l.cell.job.Scenario
	return &Grant{
		LeaseID:  l.id,
		Index:    l.cell.job.Index,
		Key:      l.cell.key,
		Campaign: c.name,
		Scenario: &sc,
		TTLNs:    int64(c.opts.leaseTTL()),
		Stolen:   l.stolen,
		CellNs:   c.cellNs,
	}
}

// Heartbeat extends worker's lease, reporting whether the lease is
// still live. False tells the worker its cell has been (or will be)
// re-leased — it may finish anyway; the result dedup makes that
// harmless.
func (c *Coordinator) Heartbeat(worker string, leaseID int64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.opts.Clock()
	c.sweep(now)
	l, ok := c.leases[leaseID]
	if !ok || l.worker != worker {
		return false
	}
	l.expires = now.Add(c.opts.leaseTTL())
	return true
}

// Result accepts one cell result from a worker. Delivery is
// at-least-once: duplicates (crash/resume re-sends, stolen cells
// finishing twice, retried uploads) are reported as dup and dropped
// before the stream. The record's scenario payload is replaced by the
// coordinator's own expansion of the cell, so the merged output is a
// pure function of the spec regardless of which worker delivered.
// leaseID 0 is a lease-less delivery (the resume re-send path).
func (c *Coordinator) Result(worker string, leaseID int64, rec *dist.Record) (dup bool, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.opts.Clock()
	c.sweep(now)
	cl, ok := c.byKey[rec.Key]
	if !ok {
		return false, fmt.Errorf("fabric: result for unknown cell key %q", rec.Key)
	}
	if rec.Index != cl.job.Index {
		return false, fmt.Errorf("fabric: key %q delivered at index %d, campaign expands it at %d",
			rec.Key, rec.Index, cl.job.Index)
	}
	if l, ok := c.leases[leaseID]; ok && l.worker == worker && l.cell == cl {
		delete(c.leases, leaseID)
		delete(cl.leases, leaseID)
	}
	if cl.done {
		c.dups++
		return true, nil
	}
	canon := &dist.Record{
		Campaign: c.name,
		Key:      cl.key,
		Index:    cl.job.Index,
		Scenario: &cl.job.Scenario,
		Result:   rec.Result,
		Err:      rec.Err,
	}
	if err := c.sink.Emit(canon); err != nil {
		return false, err
	}
	cl.done = true
	// Any other lease on this cell (a straggler or a thief) is moot.
	for id := range cl.leases {
		delete(c.leases, id)
		delete(cl.leases, id)
	}
	c.done++
	if rec.Err != "" {
		c.failed++
	}
	if c.opts.Progress != nil {
		c.opts.Progress(c.done, len(c.cells), &campaign.Outcome{
			Scenario: cl.job.Scenario, Result: rec.Result, Err: rec.Err,
		})
	}
	if c.done == len(c.cells) {
		close(c.finished)
	}
	return false, nil
}

// Status is a point-in-time snapshot of coordinator state.
type Status struct {
	Campaign         string `json:"campaign,omitempty"`
	Total            int    `json:"total"`
	Done             int    `json:"done"`
	Failed           int    `json:"failed"`
	Pending          int    `json:"pending"`
	InFlight         int    `json:"in_flight"`
	ActiveLeases     int    `json:"active_leases"`
	ExpiredLeases    int    `json:"expired_leases"`
	StolenLeases     int    `json:"stolen_leases"`
	DuplicateResults int    `json:"duplicate_results"`
}

// Status sweeps expiry and snapshots progress.
func (c *Coordinator) Status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sweep(c.opts.Clock())
	st := Status{
		Campaign:         c.name,
		Total:            len(c.cells),
		Done:             c.done,
		Failed:           c.failed,
		ActiveLeases:     len(c.leases),
		ExpiredLeases:    c.expired,
		StolenLeases:     c.stolen,
		DuplicateResults: c.dups + c.sink.Duplicates(),
	}
	for _, cl := range c.cells {
		switch {
		case cl.done:
		case len(cl.leases) > 0:
			st.InFlight++
		default:
			st.Pending++
		}
	}
	return st
}

// Done returns a channel closed when every cell has a result.
func (c *Coordinator) Done() <-chan struct{} { return c.finished }
