// Package fabric is the fault-tolerant distributed campaign layer: a
// coordinator that expands a campaign into cells keyed by
// scenario.Key, leases cells to worker processes over plain HTTP/JSON,
// and merges their streamed results back into the byte-deterministic
// output of internal/dist.
//
// The design goal is that no single fault serializes or loses a sweep:
//
//   - A worker that crashes, hangs, or partitions away simply stops
//     heartbeating; its leases expire and the cells are re-leased to
//     whoever asks next.
//   - Near the end of a campaign, when no unleased cells remain, idle
//     workers steal in-flight cells from stragglers (a second
//     concurrent lease), so one 500×-cost chaos cell cannot hold the
//     tail hostage behind a slow or dying worker.
//   - Workers checkpoint every completed cell locally before
//     uploading, so a kill -9'd worker re-sends finished results on
//     restart instead of re-running them.
//   - Execution is therefore at-least-once; the coordinator
//     deduplicates results by scenario.Key (dist.DedupSink) before
//     they reach the stream that dist.Merge folds into a report, so
//     the merged bytes are identical to a single-process run whatever
//     crashed, stole, or retried along the way.
//
// The fabric is also observable end to end: every state transition
// (grant, steal, heartbeat, expiry, result, duplicate, timeout) can be
// appended to a Journal, per-cell lifecycle state machines (pending →
// leased → running → done, with full attempt history) are kept in
// memory and served at GET /v1/cells, heartbeats carry worker
// telemetry surfaced in GET /v1/status, and a Postmortem renders the
// journal into a queue-wait/run-time, straggler, and steal-efficacy
// report. All of it is strictly additive: with no Journal configured
// the lease path allocates and emits nothing extra.
//
// Time never advances on its own inside the Coordinator: every state
// transition (expiry sweep, steal eligibility) happens on a request,
// against an injectable clock — which is what lets the fault tests run
// on a fake clock with no wall-clock sleeps.
package fabric

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"contra/internal/campaign"
	"contra/internal/dist"
	"contra/internal/scenario"
)

// DefaultLeaseTTL is the default lease lifetime. Workers heartbeat at
// half this interval (see HeartbeatInterval), so a dead worker's lease
// expires after two missed heartbeats.
const DefaultLeaseTTL = 10 * time.Second

// HeartbeatInterval derives the worker heartbeat period from a lease
// TTL: half the TTL, so reassignment happens within two missed
// heartbeat intervals of a worker dying.
func HeartbeatInterval(ttl time.Duration) time.Duration { return ttl / 2 }

// Telemetry is the worker payload riding every heartbeat: where this
// worker's wall-clock is going, so a stalled fleet can be read from
// /v1/status instead of ssh'ing into worker boxes.
type Telemetry struct {
	// CellsDone is how many cells this worker incarnation has
	// delivered (run or re-sent).
	CellsDone int `json:"cells_done"`
	// ElapsedNs is how long the worker has been running its current
	// cell; 0 when idle.
	ElapsedNs int64 `json:"elapsed_ns"`
	// UploadRetries counts result-upload attempts beyond the first
	// (transient coordinator failures survived so far).
	UploadRetries int64 `json:"upload_retries"`
	// Replayed is how many locally-durable results this incarnation
	// re-sent from its durability dir at startup instead of re-running
	// (the crash/resume path).
	Replayed int `json:"replayed"`
}

// Options tunes a Coordinator.
type Options struct {
	// LeaseTTL is how long a lease lives without a heartbeat; <= 0
	// means DefaultLeaseTTL.
	LeaseTTL time.Duration

	// StealAfter is the minimum age of a cell's oldest live lease
	// before an idle worker may steal the cell (second concurrent
	// lease) when no unleased cells remain; <= 0 means LeaseTTL.
	StealAfter time.Duration

	// MaxLeasesPerCell caps concurrent leases on one cell during
	// end-of-campaign stealing; <= 0 means 2.
	MaxLeasesPerCell int

	// Clock overrides time.Now (fault tests drive a fake clock).
	Clock func() time.Time

	// Journal, when set, receives every coordinator state transition
	// as one JSONL event. Nil keeps the lease path exactly as cheap as
	// it was without journaling (no event structs are even built).
	Journal *Journal

	// Started, when set, fires under the coordinator lock whenever a
	// cell is leased (campaign.Options.Started shape — feeds the
	// progress Meter from coordinator state).
	Started func(*campaign.Job)

	// Progress, when set, fires under the coordinator lock when a
	// cell's first result is accepted (campaign.Options.Progress
	// shape).
	Progress func(done, total int, o *campaign.Outcome)

	// Beat, when set, fires under the coordinator lock on every
	// heartbeat — the seam that keeps a live fleet progress line
	// updating between (possibly minutes-apart) cell completions.
	Beat func()
}

func (o Options) leaseTTL() time.Duration {
	if o.LeaseTTL <= 0 {
		return DefaultLeaseTTL
	}
	return o.LeaseTTL
}

func (o Options) stealAfter() time.Duration {
	if o.StealAfter <= 0 {
		return o.leaseTTL()
	}
	return o.StealAfter
}

func (o Options) maxLeases() int {
	if o.MaxLeasesPerCell <= 0 {
		return 2
	}
	return o.MaxLeasesPerCell
}

// lease is one worker's time-bounded claim on a cell.
type lease struct {
	id      int64
	worker  string
	cell    *cell
	granted time.Time
	expires time.Time
	stolen  bool
	attempt int // index into cell.attempts
}

// Attempt outcomes, the terminal states of one lease's slice of a
// cell's history.
const (
	AttemptRunning    = "running"    // lease live, no result yet
	AttemptExpired    = "expired"    // lease died of heartbeat silence
	AttemptDelivered  = "delivered"  // this lease's worker delivered the accepted result
	AttemptSuperseded = "superseded" // another delivery finished the cell first
)

// attempt is one grant's entry in a cell's lifecycle history.
type attempt struct {
	worker  string
	leaseID int64
	granted time.Time
	stolen  bool
	beats   int
	outcome string
}

// cell is one unit of campaign work: a scenario plus its expansion
// index. A cell is pending (no leases), in flight (>= 1 lease), or
// done; expired leases silently return it to pending. attempts is the
// cell's full lifecycle history — one entry per grant, kept forever,
// which is what /v1/cells and the post-mortem read.
type cell struct {
	job     campaign.Job
	key     string
	done    bool
	leases  map[int64]*lease
	expired int // leases lost to expiry, for Status

	attempts    []attempt
	firstGrant  time.Time
	doneAt      time.Time
	deliveredBy string
	failed      bool
	timeout     bool
}

// oldestLease returns the earliest-granted live lease, or nil.
func (c *cell) oldestLease() *lease {
	var oldest *lease
	for _, l := range c.leases {
		if oldest == nil || l.granted.Before(oldest.granted) ||
			(l.granted.Equal(oldest.granted) && l.id < oldest.id) {
			oldest = l
		}
	}
	return oldest
}

// workerInfo is the coordinator's view of one worker id: lease count,
// last contact, and the telemetry its heartbeats reported. Allocated
// once on first contact, updated in place after that, so the
// steady-state heartbeat path stays allocation-free.
type workerInfo struct {
	last      time.Time
	beats     int64
	leases    int
	delivered int
	tel       Telemetry
	hasTel    bool
}

// Coordinator owns the authoritative campaign state: the cell table,
// the lease table, the per-worker telemetry table, and the
// deduplicated result stream. All methods are safe for concurrent
// use. Expiry is swept lazily at the head of every state-changing
// call (Lease, Heartbeat, Result) — and only those: Status and Cells
// are pure reads, so a monitoring poller can never perturb
// lease-expiry timing.
type Coordinator struct {
	opts   Options
	name   string
	cellNs int64 // spec-level per-cell wall-clock budget, shipped in grants

	mu       sync.Mutex
	start    time.Time
	cells    []*cell
	byKey    map[string]*cell
	leases   map[int64]*lease
	workers  map[string]*workerInfo
	journal  *Journal
	sink     *dist.DedupSink
	nextID   int64
	done     int
	failed   int
	expired  int // total leases lost to expiry
	stolen   int // total stolen leases granted
	dups     int // total duplicate deliveries dropped
	finished chan struct{}
}

// New expands spec into cells and returns a Coordinator writing
// accepted results through sink (wrapped in a DedupSink seeded with
// alreadyDone). Cells whose keys appear in alreadyDone — typically
// dist.StreamKeys of the stream file a restarted coordinator is
// appending to — start out done, which is the coordinator-restart
// resume path.
func New(spec *campaign.Spec, sink dist.Sink, alreadyDone map[string]bool, opts Options) (*Coordinator, error) {
	if sink == nil {
		return nil, fmt.Errorf("fabric: nil sink")
	}
	jobs, err := spec.Jobs()
	if err != nil {
		return nil, err
	}
	if len(jobs) == 0 {
		return nil, fmt.Errorf("fabric: campaign %q expands to no cells", spec.Name)
	}
	if opts.Clock == nil {
		opts.Clock = time.Now
	}
	c := &Coordinator{
		opts:     opts,
		name:     spec.Name,
		cellNs:   spec.CellTimeoutNs,
		start:    opts.Clock(),
		byKey:    make(map[string]*cell, len(jobs)),
		leases:   make(map[int64]*lease),
		workers:  make(map[string]*workerInfo),
		journal:  opts.Journal,
		sink:     dist.NewDedupSink(sink, alreadyDone),
		finished: make(chan struct{}),
	}
	var preDone []int
	for _, j := range jobs {
		cl := &cell{job: j, key: j.Scenario.Key(), leases: make(map[int64]*lease)}
		if alreadyDone[cl.key] {
			cl.done = true
			c.done++
			preDone = append(preDone, j.Index)
		}
		c.cells = append(c.cells, cl)
		c.byKey[cl.key] = cl
	}
	if c.journal != nil {
		names := make([]string, len(c.cells))
		keys := make([]string, len(c.cells))
		for i, cl := range c.cells {
			names[i] = cl.job.Scenario.Name
			keys[i] = cl.key
		}
		c.journal.meta(JournalMeta{
			Campaign:     c.name,
			Cells:        len(c.cells),
			LeaseTTLNs:   int64(opts.leaseTTL()),
			StealAfterNs: int64(opts.stealAfter()),
			MaxLeases:    opts.maxLeases(),
			Names:        names,
			Keys:         keys,
			PreDone:      preDone,
		})
	}
	if c.done == len(c.cells) {
		close(c.finished)
	}
	return c, nil
}

// Grant is a leased cell, the payload a worker runs. The scenario is
// carried in full (it round-trips through JSON losslessly for
// spec-driven scenarios), so workers need no copy of the campaign
// spec; the spec-level cell timeout rides along too.
type Grant struct {
	LeaseID  int64              `json:"lease_id"`
	Index    int                `json:"index"`
	Key      string             `json:"key"`
	Campaign string             `json:"campaign,omitempty"`
	Scenario *scenario.Scenario `json:"scenario"`
	TTLNs    int64              `json:"ttl_ns"`
	Stolen   bool               `json:"stolen,omitempty"`
	CellNs   int64              `json:"cell_timeout_ns,omitempty"`
}

// workerLocked returns worker's info row, creating it on first
// contact, and stamps the contact time. Callers hold mu.
func (c *Coordinator) workerLocked(worker string, now time.Time) *workerInfo {
	w, ok := c.workers[worker]
	if !ok {
		w = &workerInfo{}
		c.workers[worker] = w
	}
	w.last = now
	return w
}

// sweep drops every expired lease; a cell stripped of its last lease
// returns to pending. Expiries are journaled in lease-id order so a
// fake-clock run's journal is byte-deterministic. Callers hold mu.
func (c *Coordinator) sweep(now time.Time) {
	var dead []*lease
	for _, l := range c.leases {
		if !now.Before(l.expires) {
			dead = append(dead, l)
		}
	}
	if len(dead) > 1 {
		sort.Slice(dead, func(i, j int) bool { return dead[i].id < dead[j].id })
	}
	for _, l := range dead {
		delete(c.leases, l.id)
		delete(l.cell.leases, l.id)
		l.cell.expired++
		l.cell.attempts[l.attempt].outcome = AttemptExpired
		c.expired++
		if w, ok := c.workers[l.worker]; ok {
			w.leases--
		}
		if c.journal != nil {
			c.journal.event(JournalEvent{
				Type: EventExpire, TNs: now.UnixNano(),
				Cell: l.cell.job.Index, Worker: l.worker, Lease: l.id, Attempt: l.attempt + 1,
			})
		}
	}
}

// grantLocked creates a lease on cl for worker. For steals, holder
// names the straggler whose exclusivity is being broken. Callers hold
// mu.
func (c *Coordinator) grantLocked(cl *cell, worker string, now time.Time, stolen bool, holder string) *lease {
	c.nextID++
	l := &lease{
		id:      c.nextID,
		worker:  worker,
		cell:    cl,
		granted: now,
		expires: now.Add(c.opts.leaseTTL()),
		stolen:  stolen,
		attempt: len(cl.attempts),
	}
	cl.attempts = append(cl.attempts, attempt{
		worker: worker, leaseID: l.id, granted: now, stolen: stolen, outcome: AttemptRunning,
	})
	if cl.firstGrant.IsZero() {
		cl.firstGrant = now
	}
	c.leases[l.id] = l
	cl.leases[l.id] = l
	c.workerLocked(worker, now).leases++
	if stolen {
		c.stolen++
	}
	if c.journal != nil {
		typ := EventGrant
		if stolen {
			typ = EventSteal
		}
		c.journal.event(JournalEvent{
			Type: typ, TNs: now.UnixNano(),
			Cell: cl.job.Index, Worker: worker, Lease: l.id,
			Attempt: len(cl.attempts), Holder: holder,
		})
	}
	if c.opts.Started != nil {
		job := cl.job
		c.opts.Started(&job)
	}
	return l
}

// Lease hands worker a cell to run. The three outcomes mirror the wire
// protocol: a grant, "wait" (nil grant — everything is leased and
// nothing is stealable yet), or campaign done (nil grant, done true).
//
// Pending cells are granted lowest-index first. With no pending cells
// left, the longest-in-flight cell whose oldest lease is at least
// StealAfter old — and which this worker doesn't already hold, and
// whose lease count is under MaxLeasesPerCell — is stolen.
func (c *Coordinator) Lease(worker string) (*Grant, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.opts.Clock()
	c.sweep(now)
	c.workerLocked(worker, now)
	if c.done == len(c.cells) {
		return nil, true
	}
	// Lowest-index pending cell first: deterministic, and it keeps the
	// expansion's cheap/expensive interleaving intact.
	for _, cl := range c.cells {
		if cl.done || len(cl.leases) > 0 {
			continue
		}
		return c.wireGrant(c.grantLocked(cl, worker, now, false, "")), false
	}
	// Nothing pending: steal from the longest-running straggler.
	var victim *cell
	var victimOldest time.Time
	for _, cl := range c.cells {
		if cl.done || len(cl.leases) == 0 || len(cl.leases) >= c.opts.maxLeases() {
			continue
		}
		held := false
		for _, l := range cl.leases {
			if l.worker == worker {
				held = true
				break
			}
		}
		if held {
			continue
		}
		oldest := cl.oldestLease().granted
		if now.Sub(oldest) < c.opts.stealAfter() {
			continue
		}
		if victim == nil || oldest.Before(victimOldest) {
			victim, victimOldest = cl, oldest
		}
	}
	if victim != nil {
		holder := victim.oldestLease().worker
		return c.wireGrant(c.grantLocked(victim, worker, now, true, holder)), false
	}
	return nil, false
}

// wireGrant renders a lease as its wire payload. Callers hold mu.
func (c *Coordinator) wireGrant(l *lease) *Grant {
	sc := l.cell.job.Scenario
	return &Grant{
		LeaseID:  l.id,
		Index:    l.cell.job.Index,
		Key:      l.cell.key,
		Campaign: c.name,
		Scenario: &sc,
		TTLNs:    int64(c.opts.leaseTTL()),
		Stolen:   l.stolen,
		CellNs:   c.cellNs,
	}
}

// Heartbeat extends worker's lease, folds the reported telemetry into
// the worker table, and reports whether the lease is still live.
// False tells the worker its cell has been (or will be) re-leased —
// it may finish anyway; the result dedup makes that harmless. tel may
// be nil (an old worker binary): the beat still counts, the telemetry
// row just keeps its last value.
func (c *Coordinator) Heartbeat(worker string, leaseID int64, tel *Telemetry) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.opts.Clock()
	c.sweep(now)
	w := c.workerLocked(worker, now)
	w.beats++
	if tel != nil {
		w.tel = *tel
		w.hasTel = true
	}
	l, ok := c.leases[leaseID]
	live := ok && l.worker == worker
	cellIdx := -1
	if live {
		l.expires = now.Add(c.opts.leaseTTL())
		l.cell.attempts[l.attempt].beats++
		cellIdx = l.cell.job.Index
	}
	if c.journal != nil {
		c.journal.event(JournalEvent{
			Type: EventHeartbeat, TNs: now.UnixNano(),
			Cell: cellIdx, Worker: worker, Lease: leaseID, Live: live, Telemetry: tel,
		})
	}
	if c.opts.Beat != nil {
		c.opts.Beat()
	}
	return live
}

// Result accepts one cell result from a worker. Delivery is
// at-least-once: duplicates (crash/resume re-sends, stolen cells
// finishing twice, retried uploads) are reported as dup and dropped
// before the stream. The record's scenario payload is replaced by the
// coordinator's own expansion of the cell, so the merged output is a
// pure function of the spec regardless of which worker delivered.
// leaseID 0 is a lease-less delivery (the resume re-send path).
func (c *Coordinator) Result(worker string, leaseID int64, rec *dist.Record) (dup bool, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.opts.Clock()
	c.sweep(now)
	cl, ok := c.byKey[rec.Key]
	if !ok {
		return false, fmt.Errorf("fabric: result for unknown cell key %q", rec.Key)
	}
	if rec.Index != cl.job.Index {
		return false, fmt.Errorf("fabric: key %q delivered at index %d, campaign expands it at %d",
			rec.Key, rec.Index, cl.job.Index)
	}
	w := c.workerLocked(worker, now)
	var own *lease
	if l, ok := c.leases[leaseID]; ok && l.worker == worker && l.cell == cl {
		own = l
		delete(c.leases, l.id)
		delete(cl.leases, l.id)
		w.leases--
	}
	if cl.done {
		if own != nil {
			cl.attempts[own.attempt].outcome = AttemptSuperseded
		}
		c.dups++
		if c.journal != nil {
			c.journal.event(JournalEvent{
				Type: EventDuplicate, TNs: now.UnixNano(),
				Cell: cl.job.Index, Worker: worker, Lease: leaseID, Key: cl.key,
			})
		}
		return true, nil
	}
	canon := &dist.Record{
		Campaign: c.name,
		Key:      cl.key,
		Index:    cl.job.Index,
		Scenario: &cl.job.Scenario,
		Result:   rec.Result,
		Err:      rec.Err,
	}
	if err := c.sink.Emit(canon); err != nil {
		return false, err
	}
	cl.done = true
	cl.doneAt = now
	cl.deliveredBy = worker
	cl.failed = rec.Err != ""
	cl.timeout = strings.HasPrefix(rec.Err, campaign.ErrCellTimeout)
	if own != nil {
		cl.attempts[own.attempt].outcome = AttemptDelivered
	}
	// Any other lease on this cell (a straggler or a thief) is moot.
	for id, l := range cl.leases {
		cl.attempts[l.attempt].outcome = AttemptSuperseded
		if lw, ok := c.workers[l.worker]; ok {
			lw.leases--
		}
		delete(c.leases, id)
		delete(cl.leases, id)
	}
	w.delivered++
	c.done++
	if rec.Err != "" {
		c.failed++
	}
	if c.journal != nil {
		var waitNs, runNs int64
		if !cl.firstGrant.IsZero() {
			waitNs = cl.firstGrant.Sub(c.start).Nanoseconds()
			runNs = now.Sub(cl.firstGrant).Nanoseconds()
		}
		c.journal.event(JournalEvent{
			Type: EventResult, TNs: now.UnixNano(),
			Cell: cl.job.Index, Worker: worker, Lease: leaseID, Key: cl.key,
			Failed: cl.failed, Timeout: cl.timeout,
			WaitNs: waitNs, RunNs: runNs, Attempts: len(cl.attempts),
		})
		if cl.timeout {
			c.journal.event(JournalEvent{
				Type: EventTimeout, TNs: now.UnixNano(),
				Cell: cl.job.Index, Worker: worker,
			})
		}
	}
	if c.opts.Progress != nil {
		c.opts.Progress(c.done, len(c.cells), &campaign.Outcome{
			Scenario: cl.job.Scenario, Result: rec.Result, Err: rec.Err,
		})
	}
	if c.done == len(c.cells) {
		close(c.finished)
	}
	return false, nil
}

// WorkerStatus is one worker's row in Status: coordinator-side lease
// accounting plus the worker's own heartbeat telemetry.
type WorkerStatus struct {
	Worker     string    `json:"worker"`
	Leases     int       `json:"leases"`
	Delivered  int       `json:"delivered"`
	Heartbeats int64     `json:"heartbeats"`
	LastSeenNs int64     `json:"last_seen_ns"` // age of the last contact
	Telemetry  Telemetry `json:"telemetry"`
}

// Status is a point-in-time snapshot of coordinator state.
type Status struct {
	Campaign         string         `json:"campaign,omitempty"`
	Total            int            `json:"total"`
	Done             int            `json:"done"`
	Failed           int            `json:"failed"`
	Pending          int            `json:"pending"`
	InFlight         int            `json:"in_flight"`
	ActiveLeases     int            `json:"active_leases"`
	ExpiredLeases    int            `json:"expired_leases"`
	StolenLeases     int            `json:"stolen_leases"`
	DuplicateResults int            `json:"duplicate_results"`
	Workers          []WorkerStatus `json:"workers,omitempty"`
}

// Status snapshots progress without touching lease state: it runs no
// expiry sweep, so a monitoring poller hammering GET /v1/status can
// never shift when a lease actually dies (sweeps happen on Lease,
// Heartbeat, and Result only). A lease past its TTL therefore still
// counts as active here until the next state-changing call notices it.
func (c *Coordinator) Status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.opts.Clock()
	st := Status{
		Campaign:         c.name,
		Total:            len(c.cells),
		Done:             c.done,
		Failed:           c.failed,
		ActiveLeases:     len(c.leases),
		ExpiredLeases:    c.expired,
		StolenLeases:     c.stolen,
		DuplicateResults: c.dups + c.sink.Duplicates(),
	}
	for _, cl := range c.cells {
		switch {
		case cl.done:
		case len(cl.leases) > 0:
			st.InFlight++
		default:
			st.Pending++
		}
	}
	if len(c.workers) > 0 {
		names := make([]string, 0, len(c.workers))
		for name := range c.workers {
			names = append(names, name)
		}
		sort.Strings(names)
		st.Workers = make([]WorkerStatus, 0, len(names))
		for _, name := range names {
			w := c.workers[name]
			st.Workers = append(st.Workers, WorkerStatus{
				Worker:     name,
				Leases:     w.leases,
				Delivered:  w.delivered,
				Heartbeats: w.beats,
				LastSeenNs: now.Sub(w.last).Nanoseconds(),
				Telemetry:  w.tel,
			})
		}
	}
	return st
}

// Cell lifecycle states, as served by Cells.
const (
	CellPending = "pending" // no live lease
	CellLeased  = "leased"  // granted, no heartbeat yet
	CellRunning = "running" // granted and heartbeating
	CellDone    = "done"    // result accepted
)

// AttemptStatus is one entry of a cell's lifecycle history.
type AttemptStatus struct {
	Worker     string `json:"worker"`
	Lease      int64  `json:"lease"`
	GrantedNs  int64  `json:"granted_ns"` // since coordinator start
	Stolen     bool   `json:"stolen,omitempty"`
	Heartbeats int    `json:"heartbeats"`
	Outcome    string `json:"outcome"`
}

// CellStatus is one cell's lifecycle snapshot: its state machine
// position, full attempt history, and — once done — where its
// wall-clock went (queue wait vs run time) and who delivered it.
type CellStatus struct {
	Index    int             `json:"index"`
	Key      string          `json:"key"`
	Name     string          `json:"name"`
	State    string          `json:"state"`
	Attempts []AttemptStatus `json:"attempts,omitempty"`
	WaitNs   int64           `json:"wait_ns,omitempty"` // pending before the first grant
	RunNs    int64           `json:"run_ns,omitempty"`  // first grant to acceptance (done cells)
	Worker   string          `json:"worker,omitempty"`  // delivered by
	Expired  int             `json:"expired,omitempty"` // leases lost to expiry
	Failed   bool            `json:"failed,omitempty"`
	Timeout  bool            `json:"timeout,omitempty"`
}

// Cells snapshots every cell's lifecycle, in expansion order. Like
// Status it is a pure read: no sweep, no state change.
func (c *Coordinator) Cells() []CellStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]CellStatus, len(c.cells))
	for i, cl := range c.cells {
		cs := CellStatus{
			Index:   cl.job.Index,
			Key:     cl.key,
			Name:    cl.job.Scenario.Name,
			State:   CellPending,
			Expired: cl.expired,
			Failed:  cl.failed,
			Timeout: cl.timeout,
			Worker:  cl.deliveredBy,
		}
		switch {
		case cl.done:
			cs.State = CellDone
		case len(cl.leases) > 0:
			cs.State = CellLeased
			for _, l := range cl.leases {
				if cl.attempts[l.attempt].beats > 0 {
					cs.State = CellRunning
					break
				}
			}
		}
		if !cl.firstGrant.IsZero() {
			cs.WaitNs = cl.firstGrant.Sub(c.start).Nanoseconds()
		}
		if cl.done && !cl.firstGrant.IsZero() {
			cs.RunNs = cl.doneAt.Sub(cl.firstGrant).Nanoseconds()
		}
		if len(cl.attempts) > 0 {
			cs.Attempts = make([]AttemptStatus, len(cl.attempts))
			for ai, a := range cl.attempts {
				cs.Attempts[ai] = AttemptStatus{
					Worker:     a.worker,
					Lease:      a.leaseID,
					GrantedNs:  a.granted.Sub(c.start).Nanoseconds(),
					Stolen:     a.stolen,
					Heartbeats: a.beats,
					Outcome:    a.outcome,
				}
			}
		}
		out[i] = cs
	}
	return out
}

// Done returns a channel closed when every cell has a result.
func (c *Coordinator) Done() <-chan struct{} { return c.finished }
