package fabric

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// JournalVersion is the schema version stamped into every journal's
// meta line. Bump it when a line shape changes incompatibly;
// scripts/journalcheck.go refuses versions it does not know.
const JournalVersion = 1

// Journal event types, one per coordinator state transition. Every
// event line carries a monotonic sequence number and an
// injectable-clock timestamp, so a fake-clock test run produces
// byte-identical journals and a real run totally orders the fleet's
// history without trusting worker clocks.
const (
	EventMeta      = "meta"      // first line: schema + campaign shape
	EventGrant     = "grant"     // a pending cell leased to a worker
	EventSteal     = "steal"     // an in-flight cell leased to a second worker
	EventHeartbeat = "heartbeat" // a worker checked in (with telemetry)
	EventExpire    = "expire"    // a lease died of heartbeat silence
	EventResult    = "result"    // a cell result accepted into the stream
	EventDuplicate = "duplicate" // a delivery for an already-done cell, dropped
	EventTimeout   = "timeout"   // the accepted result was a cell-timeout failure
)

// JournalMeta is the journal's first line: enough campaign shape that
// a post-mortem needs no spec file — per-cell names and keys indexed
// by expansion index, the timing knobs in force, and which cells a
// resumed coordinator started with already done.
type JournalMeta struct {
	Type         string   `json:"type"` // EventMeta
	V            int      `json:"v"`
	Campaign     string   `json:"campaign,omitempty"`
	Cells        int      `json:"cells"`
	LeaseTTLNs   int64    `json:"lease_ttl_ns"`
	StealAfterNs int64    `json:"steal_after_ns"`
	MaxLeases    int      `json:"max_leases"`
	Names        []string `json:"names"`
	Keys         []string `json:"keys"`
	PreDone      []int    `json:"pre_done,omitempty"` // expansion indices done at start (resume)
}

// JournalEvent is every non-meta journal line. Type decides which of
// the optional fields are present; the always-on trio is Seq (dense,
// starting at 1), TNs (coordinator clock, unix nanoseconds), and Cell
// (expansion index; -1 when the event could not be tied to a cell,
// e.g. a heartbeat for a lease that no longer exists).
type JournalEvent struct {
	Type string `json:"type"`
	Seq  int64  `json:"seq"`
	TNs  int64  `json:"t_ns"`
	Cell int    `json:"cell"`

	Worker  string `json:"worker,omitempty"`
	Lease   int64  `json:"lease,omitempty"`
	Attempt int    `json:"attempt,omitempty"` // grant/steal/expire: 1-based attempt number
	Holder  string `json:"holder,omitempty"`  // steal: the straggler losing exclusivity

	Live      bool       `json:"live,omitempty"`      // heartbeat: the lease was still held
	Telemetry *Telemetry `json:"telemetry,omitempty"` // heartbeat: worker-reported payload

	Key      string `json:"key,omitempty"`      // result: the cell's scenario key
	Failed   bool   `json:"failed,omitempty"`   // result: the record carried an error
	Timeout  bool   `json:"timeout,omitempty"`  // result: the error was a cell timeout
	WaitNs   int64  `json:"wait_ns,omitempty"`  // result: pending before the first grant
	RunNs    int64  `json:"run_ns,omitempty"`   // result: first grant to acceptance
	Attempts int    `json:"attempts,omitempty"` // result: grants consumed (incl. steals)
}

// Journal appends coordinator events as JSONL: one meta line, then
// one line per event, each written with a single Write so a crash
// tears at most the final line (the same contract as dist.JSONLSink).
// The Coordinator emits under its own lock, so Journal itself needs
// none; the first write or encode failure is latched and returned by
// Close — observability must never fail the campaign it observes.
type Journal struct {
	w   io.Writer
	c   io.Closer
	seq int64
	err error
}

// NewJournal journals to w.
func NewJournal(w io.Writer) *Journal {
	j := &Journal{w: w}
	if c, ok := w.(io.Closer); ok {
		j.c = c
	}
	return j
}

// CreateJournal journals to a fresh file at path.
func CreateJournal(path string) (*Journal, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return NewJournal(f), nil
}

// Close closes the underlying writer (when closable) and reports the
// first emission error, if any.
func (j *Journal) Close() error {
	var cerr error
	if j.c != nil {
		cerr = j.c.Close()
	}
	if j.err != nil {
		return j.err
	}
	return cerr
}

// meta writes the journal's first line.
func (j *Journal) meta(m JournalMeta) {
	m.Type = EventMeta
	m.V = JournalVersion
	j.write(&m)
}

// event stamps the next sequence number onto ev and appends it.
func (j *Journal) event(ev JournalEvent) {
	j.seq++
	ev.Seq = j.seq
	j.write(&ev)
}

func (j *Journal) write(v any) {
	if j.err != nil {
		return
	}
	b, err := json.Marshal(v)
	if err != nil {
		j.err = fmt.Errorf("fabric: encode journal line: %v", err)
		return
	}
	b = append(b, '\n')
	if _, err := j.w.Write(b); err != nil {
		j.err = fmt.Errorf("fabric: write journal line: %v", err)
	}
}

// ReadJournal parses a journal stream back into its meta line and
// events. A torn final line (no trailing newline — a crashed
// coordinator) is dropped; corruption anywhere else is an error.
func ReadJournal(r io.Reader) (*JournalMeta, []JournalEvent, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var meta *JournalMeta
	var events []JournalEvent
	for lineNo := 1; ; lineNo++ {
		line, err := br.ReadBytes('\n')
		terminated := err == nil
		if trimmed := bytes.TrimSpace(line); len(trimmed) > 0 {
			var probe struct {
				Type string `json:"type"`
			}
			uerr := json.Unmarshal(trimmed, &probe)
			if uerr == nil && lineNo == 1 {
				if probe.Type != EventMeta {
					return nil, nil, fmt.Errorf("fabric: journal line 1 is %q, want meta", probe.Type)
				}
				var m JournalMeta
				uerr = json.Unmarshal(trimmed, &m)
				meta = &m
			} else if uerr == nil {
				var ev JournalEvent
				if uerr = json.Unmarshal(trimmed, &ev); uerr == nil {
					events = append(events, ev)
				}
			}
			if uerr != nil {
				if !terminated {
					break // torn final line: the coordinator died mid-write
				}
				return nil, nil, fmt.Errorf("fabric: journal line %d: %v", lineNo, uerr)
			}
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, nil, err
		}
	}
	if meta == nil {
		return nil, nil, fmt.Errorf("fabric: journal has no meta line")
	}
	if meta.V != JournalVersion {
		return nil, nil, fmt.Errorf("fabric: journal version %d, this binary reads %d", meta.V, JournalVersion)
	}
	return meta, events, nil
}

// ReadJournalFile reads a journal from disk.
func ReadJournalFile(path string) (*JournalMeta, []JournalEvent, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	meta, events, err := ReadJournal(f)
	if err != nil {
		return nil, nil, fmt.Errorf("%s: %v", path, err)
	}
	return meta, events, nil
}
