package fabric

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"contra/internal/campaign"
	"contra/internal/dist"
	"contra/internal/scenario"
)

// fakeClock is the injectable time source of the fault tests: leases
// expire and steals unlock only when a test advances it, so no unit
// test here sleeps on the wall clock.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1000, 0)} }

func (f *fakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

func (f *fakeClock) Advance(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.t = f.t.Add(d)
}

// coordSpec is a 4-cell campaign (2 schemes × 2 loads). Coordinator
// unit tests never execute the scenarios, so cost is irrelevant; it
// only has to validate.
func coordSpec() *campaign.Spec {
	return &campaign.Spec{
		Name:    "coord",
		Topos:   []string{"dc"},
		Schemes: []scenario.Scheme{scenario.SchemeECMP, scenario.SchemeSP},
		Loads:   []float64{0.2, 0.3},
		Workload: scenario.Workload{
			Dist: "cache", DurationNs: 1_000_000, MaxFlows: 40,
		},
	}
}

func newTestCoordinator(t *testing.T, opts Options) (*Coordinator, *bytes.Buffer) {
	t.Helper()
	var buf bytes.Buffer
	c, err := New(coordSpec(), dist.NewJSONLSink(&buf), nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	return c, &buf
}

// fakeRecord fabricates a delivery for a granted cell without running
// the scenario.
func fakeRecord(g *Grant) *dist.Record {
	return &dist.Record{
		Campaign: g.Campaign,
		Key:      g.Key,
		Index:    g.Index,
		Scenario: g.Scenario,
		Err:      "fabricated",
	}
}

// mustLease asserts the worker receives a grant.
func mustLease(t *testing.T, c *Coordinator, worker string) *Grant {
	t.Helper()
	g, done := c.Lease(worker)
	if done || g == nil {
		t.Fatalf("Lease(%s) = grant %v, done %v; want a grant", worker, g, done)
	}
	return g
}

func TestLeaseGrantsLowestPendingIndexFirst(t *testing.T) {
	clk := newFakeClock()
	c, _ := newTestCoordinator(t, Options{Clock: clk.Now})
	for want := 0; want < 4; want++ {
		g := mustLease(t, c, "w1")
		if g.Index != want {
			t.Fatalf("grant %d has index %d, want %d", want+1, g.Index, want)
		}
		if g.Scenario == nil || g.Scenario.Key() != g.Key {
			t.Fatalf("grant %d scenario/key mismatch", want+1)
		}
	}
	if g, done := c.Lease("w2"); g != nil || done {
		t.Fatalf("all cells leased: Lease = %v, %v; want wait", g, done)
	}
}

// TestExpiredLeaseReassignedWithinTwoHeartbeatIntervals is the
// acceptance-criteria timing bound: a worker that stops heartbeating
// loses its cell after exactly two heartbeat intervals (= one lease
// TTL), and the next asking worker inherits it.
func TestExpiredLeaseReassignedWithinTwoHeartbeatIntervals(t *testing.T) {
	const ttl = 10 * time.Second
	hb := HeartbeatInterval(ttl)
	if hb*2 != ttl {
		t.Fatalf("HeartbeatInterval(%v) = %v, want ttl/2", ttl, hb)
	}
	clk := newFakeClock()
	c, _ := newTestCoordinator(t, Options{LeaseTTL: ttl, Clock: clk.Now})
	g := mustLease(t, c, "w1") // cell 0 leased at t0
	// One heartbeat interval in: w1's last-ever heartbeat. The lease is
	// alive, so the cell is not up for grabs (w2 gets cell 1, not 0).
	clk.Advance(hb)
	if !c.Heartbeat("w1", g.LeaseID, nil) {
		t.Fatal("live lease refused a heartbeat")
	}
	g2 := mustLease(t, c, "w2")
	if g2.Index != 1 {
		t.Fatalf("live cell reassigned: w2 got index %d", g2.Index)
	}
	// One interval later w1 has missed one heartbeat — not yet expired.
	clk.Advance(hb)
	if !c.Heartbeat("w2", g2.LeaseID, nil) {
		t.Fatal("w2 heartbeat refused")
	}
	if g3 := mustLease(t, c, "w3"); g3.Index != 2 {
		t.Fatalf("cell 0 reassigned after one missed heartbeat: w3 got index %d", g3.Index)
	}
	// Two heartbeat intervals after w1's last heartbeat, its lease is
	// expired and the very next asking worker inherits cell 0.
	clk.Advance(hb)
	if !c.Heartbeat("w2", g2.LeaseID, nil) {
		t.Fatal("w2 heartbeat refused")
	}
	g4 := mustLease(t, c, "w4")
	if g4.Index != 0 {
		t.Fatalf("expired cell not reassigned: w4 got index %d, want 0", g4.Index)
	}
	if c.Heartbeat("w1", g.LeaseID, nil) {
		t.Fatal("expired lease accepted a heartbeat")
	}
	if st := c.Status(); st.ExpiredLeases != 1 {
		t.Fatalf("ExpiredLeases = %d, want 1 (w1's only)", st.ExpiredLeases)
	}
}

func TestHeartbeatKeepsLeaseAliveIndefinitely(t *testing.T) {
	const ttl = 10 * time.Second
	clk := newFakeClock()
	c, _ := newTestCoordinator(t, Options{LeaseTTL: ttl, Clock: clk.Now})
	g := mustLease(t, c, "w1")
	for i := 0; i < 10; i++ {
		clk.Advance(HeartbeatInterval(ttl))
		if !c.Heartbeat("w1", g.LeaseID, nil) {
			t.Fatalf("lease died despite heartbeats (interval %d)", i)
		}
	}
	if c.Status().ExpiredLeases != 0 {
		t.Fatal("heartbeated lease expired")
	}
}

// TestStealNearEndOfCampaign: once no pending cells remain, an idle
// worker steals the longest-in-flight cell — but only after
// StealAfter, never from itself, and never beyond MaxLeasesPerCell.
func TestStealNearEndOfCampaign(t *testing.T) {
	const (
		ttl        = 20 * time.Second
		stealAfter = 4 * time.Second
	)
	clk := newFakeClock()
	c, _ := newTestCoordinator(t, Options{LeaseTTL: ttl, StealAfter: stealAfter, MaxLeasesPerCell: 2, Clock: clk.Now})

	// w1 takes cell 0 (the future straggler) at t0; the remaining
	// three cells go to w2 a second later and complete immediately.
	gStraggler := mustLease(t, c, "w1")
	clk.Advance(time.Second)
	for i := 0; i < 3; i++ {
		g := mustLease(t, c, "w2")
		if dup, err := c.Result("w2", g.LeaseID, fakeRecord(g)); err != nil || dup {
			t.Fatalf("result: dup=%v err=%v", dup, err)
		}
	}
	// Campaign tail: only cell 0 is in flight. Too early to steal.
	if g, done := c.Lease("w3"); g != nil || done {
		t.Fatalf("steal granted before StealAfter: %+v", g)
	}
	// Stealing from yourself is never allowed, even past StealAfter.
	clk.Advance(stealAfter)
	if g, _ := c.Lease("w1"); g != nil {
		t.Fatalf("worker stole its own cell: %+v", g)
	}
	// w3 is idle past StealAfter: it steals cell 0.
	stolen := mustLease(t, c, "w3")
	if stolen.Index != gStraggler.Index || !stolen.Stolen {
		t.Fatalf("steal grant = %+v, want stolen cell %d", stolen, gStraggler.Index)
	}
	// The per-cell lease cap (2) blocks a third concurrent runner.
	if g, _ := c.Lease("w4"); g != nil {
		t.Fatalf("lease cap ignored: %+v", g)
	}
	if st := c.Status(); st.StolenLeases != 1 {
		t.Fatalf("StolenLeases = %d, want 1", st.StolenLeases)
	}

	// The thief finishes first; the straggler's late result is a
	// harmless duplicate; the campaign completes exactly once.
	if dup, err := c.Result("w3", stolen.LeaseID, fakeRecord(stolen)); err != nil || dup {
		t.Fatalf("thief result: dup=%v err=%v", dup, err)
	}
	dup, err := c.Result("w1", gStraggler.LeaseID, fakeRecord(gStraggler))
	if err != nil || !dup {
		t.Fatalf("straggler result: dup=%v err=%v; want duplicate", dup, err)
	}
	select {
	case <-c.Done():
	default:
		t.Fatal("campaign not done after all cells completed")
	}
}

// TestDuplicateResultDeliveredTwiceMergesOnce is the fabric-level
// dedup regression: the same scenario.Key delivered twice reaches the
// stream once, whatever lease it rides in on.
func TestDuplicateResultDeliveredTwiceMergesOnce(t *testing.T) {
	clk := newFakeClock()
	c, buf := newTestCoordinator(t, Options{Clock: clk.Now})
	g := mustLease(t, c, "w1")
	rec := fakeRecord(g)
	if dup, err := c.Result("w1", g.LeaseID, rec); err != nil || dup {
		t.Fatalf("first delivery: dup=%v err=%v", dup, err)
	}
	// Same record again — a retried upload whose first attempt landed.
	if dup, err := c.Result("w1", g.LeaseID, rec); err != nil || !dup {
		t.Fatalf("second delivery: dup=%v err=%v; want duplicate", dup, err)
	}
	recs, err := dist.ReadRecords(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Key != g.Key {
		t.Fatalf("stream holds %d records, want exactly one for %s", len(recs), g.Key)
	}
	if st := c.Status(); st.DuplicateResults != 1 || st.Done != 1 {
		t.Fatalf("status %+v, want 1 duplicate, 1 done", st)
	}
}

func TestResultRejectsUnknownKeyAndWrongIndex(t *testing.T) {
	clk := newFakeClock()
	c, _ := newTestCoordinator(t, Options{Clock: clk.Now})
	g := mustLease(t, c, "w1")
	bad := fakeRecord(g)
	bad.Key = "nonsense#0000000000000000"
	if _, err := c.Result("w1", g.LeaseID, bad); err == nil {
		t.Fatal("unknown key accepted")
	}
	wrong := fakeRecord(g)
	wrong.Index = g.Index + 1
	if _, err := c.Result("w1", g.LeaseID, wrong); err == nil {
		t.Fatal("wrong index accepted")
	}
}

// TestCoordinatorResume: cells whose keys are already in the output
// stream (a restarted coordinator) start done and are never re-leased.
func TestCoordinatorResume(t *testing.T) {
	spec := coordSpec()
	jobs, err := spec.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	pre := map[string]bool{
		jobs[0].Scenario.Key(): true,
		jobs[2].Scenario.Key(): true,
	}
	var buf bytes.Buffer
	clk := newFakeClock()
	c, err := New(spec, dist.NewJSONLSink(&buf), pre, Options{Clock: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	if st := c.Status(); st.Done != 2 || st.Pending != 2 {
		t.Fatalf("resume status %+v, want 2 done / 2 pending", st)
	}
	for _, want := range []int{1, 3} {
		if g := mustLease(t, c, "w"); g.Index != want {
			t.Fatalf("resumed coordinator leased index %d, want %d", g.Index, want)
		}
	}
	// Re-delivery of an already-done cell (a worker that outlived the
	// old coordinator re-sending) is a duplicate, not a re-run.
	if dup, err := c.Result("w", 0, &dist.Record{
		Campaign: spec.Name, Key: jobs[0].Scenario.Key(), Index: 0,
		Scenario: &jobs[0].Scenario, Err: "stale",
	}); err != nil || !dup {
		t.Fatalf("re-delivery: dup=%v err=%v, want duplicate", dup, err)
	}
	if buf.Len() != 0 {
		t.Fatal("duplicate of a pre-done cell reached the stream")
	}
}

// TestMeterHooksFireFromCoordinatorState: Started on every grant,
// Progress on first acceptance — the seam the live progress Meter
// hangs off in serve mode.
func TestMeterHooksFireFromCoordinatorState(t *testing.T) {
	clk := newFakeClock()
	var started, completed []int
	var buf bytes.Buffer
	c, err := New(coordSpec(), dist.NewJSONLSink(&buf), nil, Options{
		Clock:   clk.Now,
		Started: func(j *campaign.Job) { started = append(started, j.Index) },
		Progress: func(done, total int, o *campaign.Outcome) {
			if total != 4 {
				t.Errorf("Progress total = %d, want 4", total)
			}
			completed = append(completed, done)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		g := mustLease(t, c, "w1")
		if _, err := c.Result("w1", g.LeaseID, fakeRecord(g)); err != nil {
			t.Fatal(err)
		}
	}
	if len(started) != 4 || len(completed) != 4 {
		t.Fatalf("started %v completed %v, want 4 each", started, completed)
	}
}
