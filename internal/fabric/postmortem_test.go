package fabric

import (
	"bytes"
	"strings"
	"testing"
)

// postmortemFromScript builds the post-mortem of the scripted
// fake-clock run (see journalScript): 4 cells, one expiry, one steal
// won by the thief, one duplicate, one timeout failure.
func postmortemFromScript(t *testing.T) *Postmortem {
	t.Helper()
	meta, events, err := ReadJournal(bytes.NewReader(journalScript(t)))
	if err != nil {
		t.Fatal(err)
	}
	return BuildPostmortem(meta, events)
}

func TestPostmortemAttribution(t *testing.T) {
	pm := postmortemFromScript(t)
	if pm.Results != 4 || pm.Failed != 3 || pm.Timeouts != 1 {
		t.Fatalf("totals %d results / %d failed / %d timeouts, want 4/3/1", pm.Results, pm.Failed, pm.Timeouts)
	}
	if pm.Grants != 5 || pm.StolenN != 1 || pm.Expiries != 1 || pm.Duplicates != 1 {
		t.Fatalf("grants=%d steals=%d expiries=%d dups=%d, want 5/1/1/1",
			pm.Grants, pm.StolenN, pm.Expiries, pm.Duplicates)
	}
	// Cell 0 burned three attempts; every cell is accounted for in the
	// attempt histogram.
	if pm.AttemptHist[3] != 1 || pm.AttemptHist[1] != 3 {
		t.Fatalf("attempt histogram %v, want {1:3, 3:1}", pm.AttemptHist)
	}
	if pm.ExpiryHist[1] != 1 || pm.ExpiryHist[0] != 3 {
		t.Fatalf("expiry histogram %v, want {0:3, 1:1}", pm.ExpiryHist)
	}
	c0 := pm.Cells[0]
	if !c0.Done || c0.Worker != "w3" || c0.Attempts != 3 || c0.Expiries != 1 || c0.Steals != 1 || c0.Duplicates != 1 {
		t.Fatalf("cell 0 report %+v, want w3's 3-attempt stolen delivery with 1 expiry + 1 dup", c0)
	}
	// The steal won: the thief (w3) delivered the accepted result. The
	// victim's wasted duplicate time is attributed.
	if len(pm.Steals) != 1 || !pm.Steals[0].Won || pm.Steals[0].Thief != "w3" || pm.Steals[0].Holder != "w2" {
		t.Fatalf("steal report %+v, want w3 winning a steal from w2", pm.Steals)
	}
	if pm.WastedNs <= 0 {
		t.Fatalf("WastedNs = %d, want positive (victim's duplicate delivery)", pm.WastedNs)
	}
	// Per-worker rows are name-sorted and balance the grant totals.
	if len(pm.Workers) != 3 {
		t.Fatalf("%d worker rows, want 3", len(pm.Workers))
	}
	granted := 0
	for _, w := range pm.Workers {
		granted += w.Granted
	}
	if granted != pm.Grants+pm.StolenN {
		t.Fatalf("worker grants sum %d, want %d", granted, pm.Grants+pm.StolenN)
	}
}

func TestPostmortemRendering(t *testing.T) {
	pm := postmortemFromScript(t)
	var md bytes.Buffer
	if err := pm.WriteMarkdown(&md); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# Campaign post-mortem: coord",
		"## Stragglers",
		"## Workers",
		"## Steal efficacy",
		"1 steal(s), 1 won",
		"## Attempt histogram",
		"## Expiry histogram",
	} {
		if !strings.Contains(md.String(), want) {
			t.Fatalf("markdown missing %q:\n%s", want, md.String())
		}
	}
	var csv bytes.Buffer
	if err := pm.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != 5 { // header + 4 cells
		t.Fatalf("CSV has %d lines, want 5:\n%s", len(lines), csv.String())
	}
	if !strings.HasPrefix(lines[0], "cell,key,name,state,wait_ns,run_ns,attempts") {
		t.Fatalf("CSV header %q", lines[0])
	}
	// Cell 0's row carries the steal/expiry/duplicate attribution.
	if !strings.Contains(lines[1], ",w3,") || !strings.Contains(lines[1], ",3,1,1,1,") {
		t.Fatalf("cell 0 CSV row %q, want w3 with attempts=3 expiries=1 steals=1 dups=1", lines[1])
	}
}
