package fabric

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"

	"contra/internal/dist"
)

// The wire protocol: four plain HTTP/JSON endpoints. Every request
// carries the worker's self-chosen id, used only to bind leases to
// their holders and to label status — there is no registration step,
// so a restarted worker (same or new id) just starts calling.
//
//	POST /v1/lease     {"worker":w}                → {"status":"lease","grant":{…}}
//	                                              | {"status":"wait","retry_ns":n}
//	                                              | {"status":"done"}
//	POST /v1/heartbeat {"worker":w,"lease_id":id,"telemetry":{…}} → {"ok":bool}
//	POST /v1/result    {"worker":w,"lease_id":id,"record":{…}} → {"duplicate":bool}
//	GET  /v1/status                               → Status
//	GET  /v1/cells                                → CellsResponse
//
// 4xx responses mark permanent protocol errors (malformed request,
// unknown cell key); 5xx responses are transient (a sink write failed)
// and workers retry them with backoff.

// Lease response statuses.
const (
	StatusLease = "lease" // grant holds a cell to run
	StatusWait  = "wait"  // all cells leased, nothing stealable yet: poll again
	StatusDone  = "done"  // campaign complete: exit
)

type leaseRequest struct {
	Worker string `json:"worker"`
}

// LeaseResponse is the wire answer to a lease poll.
type LeaseResponse struct {
	Status  string `json:"status"`
	Grant   *Grant `json:"grant,omitempty"`
	RetryNs int64  `json:"retry_ns,omitempty"`
}

type heartbeatRequest struct {
	Worker    string     `json:"worker"`
	LeaseID   int64      `json:"lease_id"`
	Telemetry *Telemetry `json:"telemetry,omitempty"`
}

type heartbeatResponse struct {
	OK bool `json:"ok"`
}

type resultRequest struct {
	Worker  string       `json:"worker"`
	LeaseID int64        `json:"lease_id,omitempty"`
	Record  *dist.Record `json:"record"`
}

type resultResponse struct {
	Duplicate bool `json:"duplicate"`
}

// CellsResponse is the wire shape of GET /v1/cells: every cell's
// lifecycle snapshot, in expansion order.
type CellsResponse struct {
	Campaign string       `json:"campaign,omitempty"`
	Total    int          `json:"total"`
	Cells    []CellStatus `json:"cells"`
}

// Handler returns the coordinator's HTTP API.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/lease", func(w http.ResponseWriter, r *http.Request) {
		var req leaseRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		grant, done := c.Lease(req.Worker)
		resp := LeaseResponse{Status: StatusWait, RetryNs: int64(HeartbeatInterval(c.opts.leaseTTL()))}
		switch {
		case done:
			resp = LeaseResponse{Status: StatusDone}
		case grant != nil:
			resp = LeaseResponse{Status: StatusLease, Grant: grant}
		}
		writeJSON(w, &resp)
	})
	mux.HandleFunc("POST /v1/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		var req heartbeatRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		writeJSON(w, &heartbeatResponse{OK: c.Heartbeat(req.Worker, req.LeaseID, req.Telemetry)})
	})
	mux.HandleFunc("POST /v1/result", func(w http.ResponseWriter, r *http.Request) {
		var req resultRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		if req.Record == nil {
			http.Error(w, "fabric: result without a record", http.StatusBadRequest)
			return
		}
		dup, err := c.Result(req.Worker, req.LeaseID, req.Record)
		if err != nil {
			status := http.StatusBadRequest // protocol error: do not retry
			if !isProtocolError(err) {
				status = http.StatusInternalServerError // sink trouble: retry
			}
			http.Error(w, err.Error(), status)
			return
		}
		writeJSON(w, &resultResponse{Duplicate: dup})
	})
	mux.HandleFunc("GET /v1/status", func(w http.ResponseWriter, r *http.Request) {
		st := c.Status()
		writeJSON(w, &st)
	})
	mux.HandleFunc("GET /v1/cells", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, &CellsResponse{Campaign: c.name, Total: len(c.cells), Cells: c.Cells()})
	})
	return mux
}

// isProtocolError separates "the request itself is wrong" (permanent,
// 4xx) from "the coordinator failed to act on it" (transient, 5xx).
// Coordinator.Result returns exactly two error shapes: its own
// protocol errors (prefixed "fabric:") and sink write errors.
func isProtocolError(err error) bool {
	return strings.HasPrefix(err.Error(), "fabric:")
}

func decodeJSON(w http.ResponseWriter, r *http.Request, into any) bool {
	if err := json.NewDecoder(r.Body).Decode(into); err != nil {
		http.Error(w, fmt.Sprintf("fabric: bad request body: %v", err), http.StatusBadRequest)
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	// An encode failure here means the response is already committed;
	// the worker's decode error surfaces it as a transient retry.
	_ = json.NewEncoder(w).Encode(v)
}
