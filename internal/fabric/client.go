package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"

	"contra/internal/cliutil"
	"contra/internal/dist"
)

// Client is the worker side of the wire protocol. Every call retries
// transient failures — transport errors (the coordinator is
// restarting, the network blipped) and 5xx responses — with the
// configured backoff; 4xx responses are permanent and fail
// immediately.
type Client struct {
	// Base is the coordinator URL, e.g. "http://127.0.0.1:7070".
	Base string

	// Worker is this worker's self-chosen id, sent with every call.
	Worker string

	// Retry is the backoff policy for transient failures; the zero
	// value is the cliutil.Retry default (8 attempts, 100ms base, 5s
	// cap, ±20% jitter).
	Retry cliutil.Retry

	// HTTP overrides http.DefaultClient.
	HTTP *http.Client

	// uploadRetries counts result-upload attempts beyond the first,
	// cumulatively — the telemetry answer to "how flaky is this
	// worker's path to the coordinator".
	uploadRetries atomic.Int64
}

// UploadRetries reports how many result-upload attempts beyond the
// first this client has made (transient failures survived).
func (c *Client) UploadRetries() int64 { return c.uploadRetries.Load() }

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// call POSTs req as JSON to path and decodes the response into resp,
// classifying failures for the retry policy. attempts reports how many
// tries the call consumed (>= 1 unless it never got off the ground).
func (c *Client) call(ctx context.Context, method, path string, req, resp any) (attempts int, _ error) {
	err := c.Retry.Do(ctx, func() error {
		attempts++
		var body io.Reader
		if req != nil {
			b, err := json.Marshal(req)
			if err != nil {
				return cliutil.Permanent(err)
			}
			body = bytes.NewReader(b)
		}
		hreq, err := http.NewRequestWithContext(ctx, method,
			strings.TrimSuffix(c.Base, "/")+path, body)
		if err != nil {
			return cliutil.Permanent(err)
		}
		if req != nil {
			hreq.Header.Set("Content-Type", "application/json")
		}
		hresp, err := c.httpClient().Do(hreq)
		if err != nil {
			return err // transport error: transient
		}
		defer hresp.Body.Close()
		if hresp.StatusCode != http.StatusOK {
			msg, _ := io.ReadAll(io.LimitReader(hresp.Body, 4<<10))
			err := fmt.Errorf("%s %s: %s: %s", method, path, hresp.Status, bytes.TrimSpace(msg))
			if hresp.StatusCode >= 400 && hresp.StatusCode < 500 {
				return cliutil.Permanent(err)
			}
			return err
		}
		if err := json.NewDecoder(hresp.Body).Decode(resp); err != nil {
			return fmt.Errorf("%s %s: decode response: %v", method, path, err)
		}
		return nil
	})
	return attempts, err
}

// Lease polls the coordinator for a cell.
func (c *Client) Lease(ctx context.Context) (*LeaseResponse, error) {
	var resp LeaseResponse
	if _, err := c.call(ctx, http.MethodPost, "/v1/lease", &leaseRequest{Worker: c.Worker}, &resp); err != nil {
		return nil, err
	}
	if resp.Status == StatusLease && resp.Grant == nil {
		return nil, fmt.Errorf("fabric: lease response without a grant")
	}
	return &resp, nil
}

// Heartbeat extends a lease, shipping the worker's telemetry payload
// (may be nil); ok=false means the lease is gone (the cell may have
// been re-leased or completed elsewhere).
func (c *Client) Heartbeat(ctx context.Context, leaseID int64, tel *Telemetry) (bool, error) {
	var resp heartbeatResponse
	_, err := c.call(ctx, http.MethodPost, "/v1/heartbeat",
		&heartbeatRequest{Worker: c.Worker, LeaseID: leaseID, Telemetry: tel}, &resp)
	if err != nil {
		return false, err
	}
	return resp.OK, nil
}

// Result uploads one cell record; leaseID 0 is a lease-less delivery
// (resume re-sends).
func (c *Client) Result(ctx context.Context, leaseID int64, rec *dist.Record) (duplicate bool, err error) {
	var resp resultResponse
	attempts, err := c.call(ctx, http.MethodPost, "/v1/result",
		&resultRequest{Worker: c.Worker, LeaseID: leaseID, Record: rec}, &resp)
	if attempts > 1 {
		c.uploadRetries.Add(int64(attempts - 1))
	}
	if err != nil {
		return false, err
	}
	return resp.Duplicate, nil
}

// Status fetches the coordinator's progress snapshot.
func (c *Client) Status(ctx context.Context) (*Status, error) {
	var st Status
	if _, err := c.call(ctx, http.MethodGet, "/v1/status", nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Cells fetches every cell's lifecycle snapshot.
func (c *Client) Cells(ctx context.Context) (*CellsResponse, error) {
	var resp CellsResponse
	if _, err := c.call(ctx, http.MethodGet, "/v1/cells", nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}
