package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"contra/internal/cliutil"
	"contra/internal/dist"
)

// Client is the worker side of the wire protocol. Every call retries
// transient failures — transport errors (the coordinator is
// restarting, the network blipped) and 5xx responses — with the
// configured backoff; 4xx responses are permanent and fail
// immediately.
type Client struct {
	// Base is the coordinator URL, e.g. "http://127.0.0.1:7070".
	Base string

	// Worker is this worker's self-chosen id, sent with every call.
	Worker string

	// Retry is the backoff policy for transient failures; the zero
	// value is the cliutil.Retry default (8 attempts, 100ms base, 5s
	// cap, ±20% jitter).
	Retry cliutil.Retry

	// HTTP overrides http.DefaultClient.
	HTTP *http.Client
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// call POSTs req as JSON to path and decodes the response into resp,
// classifying failures for the retry policy.
func (c *Client) call(ctx context.Context, method, path string, req, resp any) error {
	return c.Retry.Do(ctx, func() error {
		var body io.Reader
		if req != nil {
			b, err := json.Marshal(req)
			if err != nil {
				return cliutil.Permanent(err)
			}
			body = bytes.NewReader(b)
		}
		hreq, err := http.NewRequestWithContext(ctx, method,
			strings.TrimSuffix(c.Base, "/")+path, body)
		if err != nil {
			return cliutil.Permanent(err)
		}
		if req != nil {
			hreq.Header.Set("Content-Type", "application/json")
		}
		hresp, err := c.httpClient().Do(hreq)
		if err != nil {
			return err // transport error: transient
		}
		defer hresp.Body.Close()
		if hresp.StatusCode != http.StatusOK {
			msg, _ := io.ReadAll(io.LimitReader(hresp.Body, 4<<10))
			err := fmt.Errorf("%s %s: %s: %s", method, path, hresp.Status, bytes.TrimSpace(msg))
			if hresp.StatusCode >= 400 && hresp.StatusCode < 500 {
				return cliutil.Permanent(err)
			}
			return err
		}
		if err := json.NewDecoder(hresp.Body).Decode(resp); err != nil {
			return fmt.Errorf("%s %s: decode response: %v", method, path, err)
		}
		return nil
	})
}

// Lease polls the coordinator for a cell.
func (c *Client) Lease(ctx context.Context) (*LeaseResponse, error) {
	var resp LeaseResponse
	if err := c.call(ctx, http.MethodPost, "/v1/lease", &leaseRequest{Worker: c.Worker}, &resp); err != nil {
		return nil, err
	}
	if resp.Status == StatusLease && resp.Grant == nil {
		return nil, fmt.Errorf("fabric: lease response without a grant")
	}
	return &resp, nil
}

// Heartbeat extends a lease; ok=false means the lease is gone (the
// cell may have been re-leased or completed elsewhere).
func (c *Client) Heartbeat(ctx context.Context, leaseID int64) (bool, error) {
	var resp heartbeatResponse
	err := c.call(ctx, http.MethodPost, "/v1/heartbeat",
		&heartbeatRequest{Worker: c.Worker, LeaseID: leaseID}, &resp)
	if err != nil {
		return false, err
	}
	return resp.OK, nil
}

// Result uploads one cell record; leaseID 0 is a lease-less delivery
// (resume re-sends).
func (c *Client) Result(ctx context.Context, leaseID int64, rec *dist.Record) (duplicate bool, err error) {
	var resp resultResponse
	err = c.call(ctx, http.MethodPost, "/v1/result",
		&resultRequest{Worker: c.Worker, LeaseID: leaseID, Record: rec}, &resp)
	if err != nil {
		return false, err
	}
	return resp.Duplicate, nil
}

// Status fetches the coordinator's progress snapshot.
func (c *Client) Status(ctx context.Context) (*Status, error) {
	var st Status
	if err := c.call(ctx, http.MethodGet, "/v1/status", nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}
