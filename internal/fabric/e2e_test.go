package fabric

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"contra/internal/campaign"
	"contra/internal/cliutil"
	"contra/internal/dist"
	"contra/internal/scenario"
)

// e2eSpec is a real (cheap) 8-cell campaign: 2 schemes × 2 loads × 2
// seeds on the dc topology.
func e2eSpec() *campaign.Spec {
	return &campaign.Spec{
		Name:    "fabric-e2e",
		Topos:   []string{"dc"},
		Schemes: []scenario.Scheme{scenario.SchemeECMP, scenario.SchemeSP},
		Loads:   []float64{0.2, 0.3},
		Seeds:   []int64{1, 2},
		Workload: scenario.Workload{
			Dist: "cache", DurationNs: 2_000_000, MaxFlows: 60,
		},
	}
}

// reportBytes renders a report exactly as the CLI would.
func reportBytes(t *testing.T, r *campaign.Report) (jsonOut, csvOut []byte) {
	t.Helper()
	var j, c bytes.Buffer
	if err := r.WriteJSON(&j); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteCSV(&c); err != nil {
		t.Fatal(err)
	}
	return j.Bytes(), c.Bytes()
}

func testClient(url, worker string) *Client {
	return &Client{
		Base:   url,
		Worker: worker,
		Retry:  cliutil.Retry{Attempts: 5, Base: time.Millisecond, Cap: 20 * time.Millisecond, Jitter: cliutil.NoJitter},
	}
}

// TestCrashFleetByteIdenticalToSingleProcess is the determinism
// contract end to end: a 3-worker fleet over a real HTTP coordinator,
// with workers crashing at seeded-random fault points (both before
// running a cell and after recording but before uploading) and
// restarting into the same durability dir, must merge to byte-for-byte
// the JSON and CSV of a plain single-process campaign.Run.
func TestCrashFleetByteIdenticalToSingleProcess(t *testing.T) {
	spec := e2eSpec()
	ref, err := campaign.Run(spec, campaign.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	refJSON, refCSV := reportBytes(t, ref)

	for _, seed := range []int64{1, 7, 42} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			gotJSON, gotCSV, crashes := runCrashFleet(t, spec, seed)
			if !bytes.Equal(gotJSON, refJSON) {
				t.Errorf("merged JSON differs from single-process run (%d injected crashes)", crashes)
			}
			if !bytes.Equal(gotCSV, refCSV) {
				t.Errorf("merged CSV differs from single-process run (%d injected crashes)", crashes)
			}
		})
	}
}

// runCrashFleet runs spec to completion on a crash-injected 3-worker
// fleet and returns the merged report bytes plus the number of
// injected crashes.
func runCrashFleet(t *testing.T, spec *campaign.Spec, seed int64) (jsonOut, csvOut []byte, crashes int) {
	t.Helper()
	dir := t.TempDir()
	streamPath := filepath.Join(dir, "coord.jsonl")
	sink, err := dist.CreateJSONL(streamPath, false)
	if err != nil {
		t.Fatal(err)
	}
	// Journal the whole run; its invariants are checked after the dust
	// settles (crashes, expiries, and steals included).
	var jbuf bytes.Buffer
	coord, err := New(spec, sink, nil, Options{
		LeaseTTL:   200 * time.Millisecond,
		StealAfter: 50 * time.Millisecond,
		Journal:    NewJournal(&jbuf),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	// Seeded fault injection: each crash decision consumes the shared
	// RNG; at most maxCrashes fire so the run always terminates fast.
	const maxCrashes = 6
	rng := rand.New(rand.NewSource(seed))
	var faultMu sync.Mutex
	decide := func(stage crashStage, key string) bool {
		faultMu.Lock()
		defer faultMu.Unlock()
		if crashes >= maxCrashes || rng.Float64() >= 0.3 {
			return false
		}
		crashes++
		return true
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const workers = 3
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			wdir := filepath.Join(dir, fmt.Sprintf("w%d", i))
			// Restart loop: an injected crash kills the incarnation;
			// the next one reuses the same durability dir, exactly like
			// a respawned process.
			for {
				client := testClient(srv.URL, fmt.Sprintf("w%d", i))
				_, err := RunWorker(ctx, client, WorkerOptions{
					Dir:          wdir,
					WaitInterval: 5 * time.Millisecond,
					crash:        decide,
				})
				if errors.Is(err, ErrWorkerCrashed) {
					continue
				}
				if err != nil && ctx.Err() == nil {
					t.Errorf("worker w%d: %v", i, err)
				}
				return
			}
		}(i)
	}

	fleetDone := make(chan struct{})
	go func() { wg.Wait(); close(fleetDone) }()
	select {
	case <-fleetDone:
	case <-time.After(60 * time.Second):
		cancel()
		t.Fatalf("fleet did not finish: %+v", coord.Status())
	}
	select {
	case <-coord.Done():
	default:
		t.Fatalf("fleet exited but campaign not done: %+v", coord.Status())
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	st := coord.Status()
	if st.Done != st.Total || st.Failed != 0 {
		t.Fatalf("campaign state %+v, want all %d done, none failed", st, st.Total)
	}
	report, err := dist.Merge([]string{streamPath})
	if err != nil {
		t.Fatal(err)
	}
	checkJournalInvariants(t, jbuf.Bytes(), st.Total)
	jsonOut, csvOut = reportBytes(t, report)
	return jsonOut, csvOut, crashes
}

// checkJournalInvariants replays a journal and asserts the structural
// invariants that must hold however the run crashed, expired, and
// stole: dense sequence numbers, monotone time, exactly one
// result-accept per cell, result attempt counts equal to the grants
// the cell actually consumed, concurrent leases within the cap, steal
// counts within the cap, and expiries/duplicates only where they make
// sense.
func checkJournalInvariants(t *testing.T, raw []byte, totalCells int) {
	t.Helper()
	meta, events, err := ReadJournal(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("journal: %v", err)
	}
	if meta.Cells != totalCells || len(meta.Keys) != totalCells || len(meta.Names) != totalCells {
		t.Fatalf("journal meta %+v, want %d cells with names and keys", meta, totalCells)
	}
	grants := make([]int, totalCells) // grants + steals consumed per cell
	steals := make([]int, totalCells)
	results := make([]int, totalCells)
	leaseCell := map[int64]int{} // live lease id → cell
	liveCount := make([]int, totalCells)
	var lastSeq, lastT int64
	for i, ev := range events {
		if ev.Seq != lastSeq+1 {
			t.Fatalf("event %d: seq %d not dense (prev %d)", i, ev.Seq, lastSeq)
		}
		if ev.TNs < lastT {
			t.Fatalf("event %d: time went backwards (%d < %d)", i, ev.TNs, lastT)
		}
		lastSeq, lastT = ev.Seq, ev.TNs
		if ev.Type != EventHeartbeat && (ev.Cell < 0 || ev.Cell >= totalCells) {
			t.Fatalf("event %d (%s): cell %d out of range", i, ev.Type, ev.Cell)
		}
		switch ev.Type {
		case EventGrant, EventSteal:
			if results[ev.Cell] > 0 {
				t.Fatalf("event %d: cell %d granted after its result", i, ev.Cell)
			}
			leaseCell[ev.Lease] = ev.Cell
			grants[ev.Cell]++
			liveCount[ev.Cell]++
			if liveCount[ev.Cell] > meta.MaxLeases {
				t.Fatalf("event %d: cell %d has %d concurrent leases, cap %d",
					i, ev.Cell, liveCount[ev.Cell], meta.MaxLeases)
			}
			if ev.Attempt != grants[ev.Cell] {
				t.Fatalf("event %d: cell %d attempt numbered %d, want %d", i, ev.Cell, ev.Attempt, grants[ev.Cell])
			}
			if ev.Type == EventSteal {
				steals[ev.Cell]++
				if ev.Holder == "" || ev.Holder == ev.Worker {
					t.Fatalf("event %d: steal holder %q vs thief %q", i, ev.Holder, ev.Worker)
				}
			}
		case EventExpire:
			cell, ok := leaseCell[ev.Lease]
			if !ok || cell != ev.Cell {
				t.Fatalf("event %d: expire of unknown lease %d on cell %d", i, ev.Lease, ev.Cell)
			}
			delete(leaseCell, ev.Lease)
			liveCount[ev.Cell]--
		case EventResult:
			results[ev.Cell]++
			if results[ev.Cell] > 1 {
				t.Fatalf("event %d: cell %d accepted a second result", i, ev.Cell)
			}
			if ev.Attempts != grants[ev.Cell] {
				t.Fatalf("event %d: cell %d result reports %d attempts, journal granted %d",
					i, ev.Cell, ev.Attempts, grants[ev.Cell])
			}
			if ev.Key != meta.Keys[ev.Cell] {
				t.Fatalf("event %d: cell %d result key %q, meta says %q", i, ev.Cell, ev.Key, meta.Keys[ev.Cell])
			}
			// Acceptance releases every lease on the cell.
			for id, cell := range leaseCell {
				if cell == ev.Cell {
					delete(leaseCell, id)
				}
			}
			liveCount[ev.Cell] = 0
		case EventDuplicate:
			if results[ev.Cell] == 0 {
				t.Fatalf("event %d: duplicate for cell %d before any result", i, ev.Cell)
			}
		}
	}
	for cell := 0; cell < totalCells; cell++ {
		if results[cell] != 1 {
			t.Errorf("cell %d has %d result-accepted events, want exactly 1", cell, results[cell])
		}
		if steals[cell] > meta.MaxLeases {
			t.Errorf("cell %d stolen %d times, cap %d", cell, steals[cell], meta.MaxLeases)
		}
	}
}

// TestWorkerResendsCheckpointedResultAfterCrash pins the local resume
// path in isolation: a worker killed after recording a cell but before
// uploading must, on restart into the same dir, deliver the stored
// record without re-running the scenario.
func TestWorkerResendsCheckpointedResultAfterCrash(t *testing.T) {
	spec := e2eSpec()
	spec.Schemes = spec.Schemes[:1]
	spec.Loads = spec.Loads[:1]
	spec.Seeds = spec.Seeds[:1] // one cell
	var buf bytes.Buffer
	coord, err := New(spec, dist.NewJSONLSink(&buf), nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	dir := t.TempDir()
	crashed := false
	opts := WorkerOptions{
		Dir:          dir,
		WaitInterval: 5 * time.Millisecond,
		crash: func(stage crashStage, key string) bool {
			if stage == crashRecorded && !crashed {
				crashed = true
				return true
			}
			return false
		},
	}
	ctx := context.Background()
	if _, err := RunWorker(ctx, testClient(srv.URL, "w1"), opts); !errors.Is(err, ErrWorkerCrashed) {
		t.Fatalf("first incarnation: err = %v, want ErrWorkerCrashed", err)
	}
	if buf.Len() != 0 {
		t.Fatal("record reached the coordinator before the crash")
	}
	st, err := RunWorker(ctx, testClient(srv.URL, "w1"), opts)
	if err != nil {
		t.Fatalf("second incarnation: %v", err)
	}
	if st.Ran != 0 || st.Resent != 1 {
		t.Fatalf("second incarnation stats %+v, want 0 ran / 1 re-sent", st)
	}
	select {
	case <-coord.Done():
	default:
		t.Fatal("campaign not done after re-send")
	}
	recs, err := dist.ReadRecords(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("coordinator stream holds %d records, want 1", len(recs))
	}
}
