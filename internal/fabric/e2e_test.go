package fabric

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"contra/internal/campaign"
	"contra/internal/cliutil"
	"contra/internal/dist"
	"contra/internal/scenario"
)

// e2eSpec is a real (cheap) 8-cell campaign: 2 schemes × 2 loads × 2
// seeds on the dc topology.
func e2eSpec() *campaign.Spec {
	return &campaign.Spec{
		Name:    "fabric-e2e",
		Topos:   []string{"dc"},
		Schemes: []scenario.Scheme{scenario.SchemeECMP, scenario.SchemeSP},
		Loads:   []float64{0.2, 0.3},
		Seeds:   []int64{1, 2},
		Workload: scenario.Workload{
			Dist: "cache", DurationNs: 2_000_000, MaxFlows: 60,
		},
	}
}

// reportBytes renders a report exactly as the CLI would.
func reportBytes(t *testing.T, r *campaign.Report) (jsonOut, csvOut []byte) {
	t.Helper()
	var j, c bytes.Buffer
	if err := r.WriteJSON(&j); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteCSV(&c); err != nil {
		t.Fatal(err)
	}
	return j.Bytes(), c.Bytes()
}

func testClient(url, worker string) *Client {
	return &Client{
		Base:   url,
		Worker: worker,
		Retry:  cliutil.Retry{Attempts: 5, Base: time.Millisecond, Cap: 20 * time.Millisecond, Jitter: cliutil.NoJitter},
	}
}

// TestCrashFleetByteIdenticalToSingleProcess is the determinism
// contract end to end: a 3-worker fleet over a real HTTP coordinator,
// with workers crashing at seeded-random fault points (both before
// running a cell and after recording but before uploading) and
// restarting into the same durability dir, must merge to byte-for-byte
// the JSON and CSV of a plain single-process campaign.Run.
func TestCrashFleetByteIdenticalToSingleProcess(t *testing.T) {
	spec := e2eSpec()
	ref, err := campaign.Run(spec, campaign.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	refJSON, refCSV := reportBytes(t, ref)

	for _, seed := range []int64{1, 7, 42} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			gotJSON, gotCSV, crashes := runCrashFleet(t, spec, seed)
			if !bytes.Equal(gotJSON, refJSON) {
				t.Errorf("merged JSON differs from single-process run (%d injected crashes)", crashes)
			}
			if !bytes.Equal(gotCSV, refCSV) {
				t.Errorf("merged CSV differs from single-process run (%d injected crashes)", crashes)
			}
		})
	}
}

// runCrashFleet runs spec to completion on a crash-injected 3-worker
// fleet and returns the merged report bytes plus the number of
// injected crashes.
func runCrashFleet(t *testing.T, spec *campaign.Spec, seed int64) (jsonOut, csvOut []byte, crashes int) {
	t.Helper()
	dir := t.TempDir()
	streamPath := filepath.Join(dir, "coord.jsonl")
	sink, err := dist.CreateJSONL(streamPath, false)
	if err != nil {
		t.Fatal(err)
	}
	coord, err := New(spec, sink, nil, Options{
		LeaseTTL:   200 * time.Millisecond,
		StealAfter: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	// Seeded fault injection: each crash decision consumes the shared
	// RNG; at most maxCrashes fire so the run always terminates fast.
	const maxCrashes = 6
	rng := rand.New(rand.NewSource(seed))
	var faultMu sync.Mutex
	decide := func(stage crashStage, key string) bool {
		faultMu.Lock()
		defer faultMu.Unlock()
		if crashes >= maxCrashes || rng.Float64() >= 0.3 {
			return false
		}
		crashes++
		return true
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const workers = 3
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			wdir := filepath.Join(dir, fmt.Sprintf("w%d", i))
			// Restart loop: an injected crash kills the incarnation;
			// the next one reuses the same durability dir, exactly like
			// a respawned process.
			for {
				client := testClient(srv.URL, fmt.Sprintf("w%d", i))
				_, err := RunWorker(ctx, client, WorkerOptions{
					Dir:          wdir,
					WaitInterval: 5 * time.Millisecond,
					crash:        decide,
				})
				if errors.Is(err, ErrWorkerCrashed) {
					continue
				}
				if err != nil && ctx.Err() == nil {
					t.Errorf("worker w%d: %v", i, err)
				}
				return
			}
		}(i)
	}

	fleetDone := make(chan struct{})
	go func() { wg.Wait(); close(fleetDone) }()
	select {
	case <-fleetDone:
	case <-time.After(60 * time.Second):
		cancel()
		t.Fatalf("fleet did not finish: %+v", coord.Status())
	}
	select {
	case <-coord.Done():
	default:
		t.Fatalf("fleet exited but campaign not done: %+v", coord.Status())
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	st := coord.Status()
	if st.Done != st.Total || st.Failed != 0 {
		t.Fatalf("campaign state %+v, want all %d done, none failed", st, st.Total)
	}
	report, err := dist.Merge([]string{streamPath})
	if err != nil {
		t.Fatal(err)
	}
	jsonOut, csvOut = reportBytes(t, report)
	return jsonOut, csvOut, crashes
}

// TestWorkerResendsCheckpointedResultAfterCrash pins the local resume
// path in isolation: a worker killed after recording a cell but before
// uploading must, on restart into the same dir, deliver the stored
// record without re-running the scenario.
func TestWorkerResendsCheckpointedResultAfterCrash(t *testing.T) {
	spec := e2eSpec()
	spec.Schemes = spec.Schemes[:1]
	spec.Loads = spec.Loads[:1]
	spec.Seeds = spec.Seeds[:1] // one cell
	var buf bytes.Buffer
	coord, err := New(spec, dist.NewJSONLSink(&buf), nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	dir := t.TempDir()
	crashed := false
	opts := WorkerOptions{
		Dir:          dir,
		WaitInterval: 5 * time.Millisecond,
		crash: func(stage crashStage, key string) bool {
			if stage == crashRecorded && !crashed {
				crashed = true
				return true
			}
			return false
		},
	}
	ctx := context.Background()
	if _, err := RunWorker(ctx, testClient(srv.URL, "w1"), opts); !errors.Is(err, ErrWorkerCrashed) {
		t.Fatalf("first incarnation: err = %v, want ErrWorkerCrashed", err)
	}
	if buf.Len() != 0 {
		t.Fatal("record reached the coordinator before the crash")
	}
	st, err := RunWorker(ctx, testClient(srv.URL, "w1"), opts)
	if err != nil {
		t.Fatalf("second incarnation: %v", err)
	}
	if st.Ran != 0 || st.Resent != 1 {
		t.Fatalf("second incarnation stats %+v, want 0 ran / 1 re-sent", st)
	}
	select {
	case <-coord.Done():
	default:
		t.Fatal("campaign not done after re-send")
	}
	recs, err := dist.ReadRecords(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("coordinator stream holds %d records, want 1", len(recs))
	}
}
